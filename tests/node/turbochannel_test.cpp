/**
 * @file
 * Unit tests of the TurboChannel arbitrated-bus model.
 */

#include <gtest/gtest.h>

#include <vector>

#include "node/turbochannel.hpp"
#include "sim/system.hpp"

namespace tg::node {
namespace {

class TcTest : public ::testing::Test
{
  protected:
    TcTest() : sys(Config{}), tc(sys, "tc") {}
    System sys;
    TurboChannel tc;
};

TEST_F(TcTest, SingleTransactionCompletesAfterHold)
{
    Tick done_at = 0;
    tc.transact(100, [&] { done_at = sys.now(); });
    sys.events().run();
    EXPECT_EQ(done_at, 100u);
    EXPECT_EQ(tc.transactions(), 1u);
    EXPECT_EQ(tc.busyTicks(), 100u);
}

TEST_F(TcTest, FifoArbitration)
{
    std::vector<int> order;
    tc.transact(50, [&] { order.push_back(1); });
    tc.transact(50, [&] { order.push_back(2); });
    tc.transact(50, [&] { order.push_back(3); });
    sys.events().run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sys.now(), 150u);
}

TEST_F(TcTest, ContentionAccruesWaitTime)
{
    tc.transact(100, [] {});
    tc.transact(100, [] {});
    sys.events().run();
    EXPECT_EQ(tc.waitTicks(), 100u); // second waited for the first
}

TEST_F(TcTest, TransactionsCanChain)
{
    Tick second_done = 0;
    tc.transact(10, [&] {
        tc.transact(10, [&] { second_done = sys.now(); });
    });
    sys.events().run();
    EXPECT_EQ(second_done, 20u);
}

TEST(TcConfig, TransactionCostsMatchBusCycles)
{
    Config cfg;
    // Write of 2 words: (3 setup + 2 word) * 80 ns.
    EXPECT_EQ(cfg.tcWriteTxn(2), Tick(5 * 80));
    // Read request: (3 setup + 16 wait) * 80 ns.
    EXPECT_EQ(cfg.tcReadTxn(), Tick(19 * 80));
}

} // namespace
} // namespace tg::node

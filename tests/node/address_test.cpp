/**
 * @file
 * Unit tests of the global address layout and shadow addressing helpers.
 */

#include <gtest/gtest.h>

#include "node/address.hpp"

namespace tg::node {
namespace {

TEST(Address, ComposeDecompose)
{
    const PAddr pa = makePAddr(7, kShmBase + 0x1238);
    EXPECT_EQ(nodeOf(pa), 7u);
    EXPECT_EQ(offsetOf(pa), kShmBase + 0x1238);
    EXPECT_FALSE(isShadow(pa));
}

TEST(Address, ShadowBitIsIndependent)
{
    const PAddr pa = makePAddr(3, kShmBase + 8);
    const PAddr sh = pa | kShadowBit;
    EXPECT_TRUE(isShadow(sh));
    EXPECT_EQ(nodeOf(sh), 3u);      // node id survives the shadow flag
    EXPECT_EQ(stripShadow(sh), pa); // stripping restores the original
}

TEST(Address, Regions)
{
    EXPECT_EQ(regionOf(0x1000), Region::Main);
    EXPECT_EQ(regionOf(kShmBase), Region::Shm);
    EXPECT_EQ(regionOf(kShmBase + 0xfff), Region::Shm);
    EXPECT_EQ(regionOf(kHibRegBase), Region::HibReg);
    EXPECT_EQ(regionOf(kRegContextBase + 3 * kContextStride),
              Region::HibReg);
}

TEST(Address, ContextPagesDoNotOverlapSpecialRegs)
{
    // Special-mode registers live in the first HIB register page;
    // contexts start in their own pages (one per context).
    EXPECT_GE(kRegContextBase, kHibRegBase + 0x2000);
    EXPECT_EQ(kContextStride % 0x2000, 0u);
}

TEST(Address, ToStringIsInformative)
{
    const std::string s = paddrToString(makePAddr(2, kShmBase + 0x40));
    EXPECT_NE(s.find("n2"), std::string::npos);
    EXPECT_NE(s.find("shm"), std::string::npos);
    const std::string sh =
        paddrToString(makePAddr(2, kShmBase) | kShadowBit);
    EXPECT_EQ(sh.front(), '~');
}

} // namespace
} // namespace tg::node

/**
 * @file
 * Tests of the CPU write buffer: uncached stores complete into it, the
 * drain preserves program order, uncached loads and fences drain first,
 * and a full buffer stalls the processor.
 */

#include <gtest/gtest.h>

#include <vector>

#include "api/cluster.hpp"
#include "api/context.hpp"
#include "api/segment.hpp"

namespace tg {
namespace {

TEST(WriteBuffer, StoresCompleteFasterThanTheBus)
{
    ClusterSpec spec = ClusterSpec::star(2);
    Cluster c(spec);
    Segment &seg = c.allocShared("s", 8192, 0);

    Tick store_time = 0;
    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        co_await ctx.write(seg.word(0), 0); // warm the TLB
        co_await ctx.fence();
        const Tick t0 = ctx.now();
        co_await ctx.write(seg.word(1), 1);
        store_time = ctx.now() - t0;
        co_await ctx.fence();
    });
    c.run(10'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
    // Buffer insert (~35 ns) vs a full TC transaction (400 ns).
    EXPECT_LT(store_time, 100u);
}

TEST(WriteBuffer, FullBufferStallsUntilDrain)
{
    ClusterSpec spec = ClusterSpec::star(2);
    spec.config.writeBufferEntries = 2;
    Cluster c(spec);
    Segment &seg = c.allocShared("s", 8192, 0);

    std::vector<Tick> store_times;
    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        co_await ctx.write(seg.word(0), 0);
        co_await ctx.fence();
        for (int i = 0; i < 6; ++i) {
            const Tick t0 = ctx.now();
            co_await ctx.write(seg.word(i), Word(i));
            store_times.push_back(ctx.now() - t0);
        }
        co_await ctx.fence();
    });
    c.run(10'000'000'000ULL);
    ASSERT_TRUE(c.allDone());

    // First two fit in the buffer; later ones stall at the TC drain rate.
    EXPECT_LT(store_times[0], 100u);
    EXPECT_LT(store_times[1], 100u);
    EXPECT_GT(store_times[4], 200u);
    EXPECT_GT(store_times[5], 200u);
}

TEST(WriteBuffer, ProgramOrderOfStoresIsPreserved)
{
    // Two stores to the SAME remote word must land in program order,
    // even through the buffer and the network.
    ClusterSpec spec = ClusterSpec::star(2);
    Cluster c(spec);
    Segment &seg = c.allocShared("s", 8192, 0);

    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        for (int i = 0; i < 50; ++i)
            co_await ctx.write(seg.word(0), Word(i));
        co_await ctx.fence();
    });
    c.run(10'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
    EXPECT_EQ(seg.peek(0), 49u);
}

TEST(WriteBuffer, UncachedReadDrainsBufferedStores)
{
    // A read that follows buffered stores to the same device must see
    // their effect (launch sequences depend on this ordering).
    ClusterSpec spec = ClusterSpec::star(2);
    Cluster c(spec);
    Segment &seg = c.allocShared("s", 8192, 0);

    Word read_back = 0;
    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        co_await ctx.write(seg.word(2), 777); // buffered
        read_back = co_await ctx.read(seg.word(2)); // drains first
    });
    c.run(10'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
    EXPECT_EQ(read_back, 777u);
}

TEST(WriteBuffer, FenceDrainsBufferBeforeCountingOutstanding)
{
    ClusterSpec spec = ClusterSpec::star(2);
    Cluster c(spec);
    Segment &seg = c.allocShared("s", 8192, 0);

    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        for (int i = 0; i < 10; ++i)
            co_await ctx.write(seg.word(i), Word(i + 1));
        co_await ctx.fence();
        // Everything must be globally visible now.
        for (int i = 0; i < 10; ++i)
            EXPECT_EQ(seg.peek(i), Word(i + 1));
    });
    c.run(10'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
}

TEST(WriteBuffer, PrivateStoresBypassTheBuffer)
{
    // Cacheable local stores never enter the uncached write buffer.
    ClusterSpec spec = ClusterSpec::star(1);
    Cluster c(spec);
    const VAddr priv = c.allocPrivate(0, 8192);

    c.spawn(0, [&](Ctx &ctx) -> Task<void> {
        co_await ctx.write(priv, 5);
        // An immediate read hits the cache, no drain needed.
        EXPECT_EQ(co_await ctx.read(priv), 5u);
    });
    c.run(1'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
    EXPECT_EQ(c.hibOf(0).outstanding().total(), 0u);
}

} // namespace
} // namespace tg

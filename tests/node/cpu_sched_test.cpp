/**
 * @file
 * Tests of CPU thread scheduling: round-robin fairness, quantum-based
 * preemption with context-switch charges, PAL preemption masking, and
 * progress guarantees when threads block at different rates.
 */

#include <gtest/gtest.h>

#include <vector>

#include "api/cluster.hpp"
#include "api/context.hpp"
#include "api/segment.hpp"

namespace tg {
namespace {

TEST(CpuSched, SingleThreadNeverContextSwitches)
{
    ClusterSpec spec = ClusterSpec::star(1);
    spec.config.cpuQuantum = 1000; // tiny quantum, nobody to switch to
    Cluster c(spec);

    c.spawn(0, [&](Ctx &ctx) -> Task<void> {
        for (int i = 0; i < 100; ++i)
            co_await ctx.compute(5000);
    });
    c.run(10'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
    EXPECT_EQ(c.node(0).cpu().contextSwitches(), 0u);
}

TEST(CpuSched, TwoThreadsInterleaveUnderSmallQuantum)
{
    ClusterSpec spec = ClusterSpec::star(1);
    spec.config.cpuQuantum = 10'000;
    Cluster c(spec);

    // Record interleaving: each thread appends its id per step.
    std::vector<int> order;
    for (int t = 0; t < 2; ++t) {
        c.spawn(0, [&, t](Ctx &ctx) -> Task<void> {
            for (int i = 0; i < 20; ++i) {
                co_await ctx.compute(4000);
                order.push_back(t);
            }
        });
    }
    c.run(100'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
    EXPECT_GT(c.node(0).cpu().contextSwitches(), 4u);

    // Fairness: neither thread finishes all its steps before the other
    // starts (true round-robin, not run-to-completion).
    int first_of_t1 = -1, last_of_t0 = -1;
    for (std::size_t i = 0; i < order.size(); ++i) {
        if (order[i] == 1 && first_of_t1 < 0)
            first_of_t1 = int(i);
        if (order[i] == 0)
            last_of_t0 = int(i);
    }
    EXPECT_LT(first_of_t1, last_of_t0);
}

TEST(CpuSched, ContextSwitchCostIsCharged)
{
    auto run_with_quantum = [](Tick quantum) {
        ClusterSpec spec = ClusterSpec::star(1);
        spec.config.cpuQuantum = quantum;
        Cluster c(spec);
        for (int t = 0; t < 2; ++t) {
            c.spawn(0, [](Ctx &ctx) -> Task<void> {
                for (int i = 0; i < 50; ++i)
                    co_await ctx.compute(4000);
            });
        }
        return c.run(100'000'000'000ULL);
    };
    // Aggressive slicing pays more context-switch overhead.
    const Tick sliced = run_with_quantum(5'000);
    const Tick coarse = run_with_quantum(10'000'000);
    EXPECT_GT(sliced, coarse + 10 * Config{}.contextSwitch);
}

TEST(CpuSched, CacheIsPollutedAcrossSwitches)
{
    ClusterSpec spec = ClusterSpec::star(1);
    spec.config.cpuQuantum = 20'000;
    Cluster c(spec);
    const VAddr a = c.allocPrivate(0, 8192);
    const VAddr b = c.allocPrivate(0, 8192);

    for (const VAddr va : {a, b}) {
        c.spawn(0, [&, va](Ctx &ctx) -> Task<void> {
            for (int round = 0; round < 30; ++round) {
                for (int i = 0; i < 8; ++i)
                    (void)co_await ctx.read(va + i * 8);
                co_await ctx.compute(15'000);
            }
        });
    }
    c.run(100'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
    // Switch-induced invalidations force repeated misses on data that
    // would otherwise stay resident.
    EXPECT_GT(c.node(0).cpu().contextSwitches(), 5u);
    EXPECT_GT(c.node(0).cache().misses(), 16u);
}

TEST(CpuSched, ThreeProcessesAllFinish)
{
    ClusterSpec spec = ClusterSpec::star(2);
    spec.config.cpuQuantum = 30'000;
    Cluster c(spec);
    Segment &seg = c.allocShared("s", 8192, 0);

    for (int t = 0; t < 3; ++t) {
        c.spawn(1, [&, t](Ctx &ctx) -> Task<void> {
            for (int i = 0; i < 10; ++i) {
                co_await ctx.fetchAdd(seg.word(0), 1);
                co_await ctx.compute(Tick(1000) * Tick(t + 1));
            }
        });
    }
    c.run(400'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
    EXPECT_EQ(seg.peek(0), 30u);
}

} // namespace
} // namespace tg

/**
 * @file
 * Unit tests of page tables, the TLB, protection and shadow translation
 * (the mapping-based protection story of paper sections 2.1 / 2.2.4).
 */

#include <gtest/gtest.h>

#include "node/mmu.hpp"
#include "sim/system.hpp"

namespace tg::node {
namespace {

class MmuTest : public ::testing::Test
{
  protected:
    MmuTest() : sys(Config{}), mmu(sys, "mmu"), as(1, sys.config().pageBytes)
    {
        mmu.setAddressSpace(&as);
    }

    Pte
    pte(PAddr frame, PageMode mode, bool write = true)
    {
        Pte p;
        p.frame = frame;
        p.mode = mode;
        p.write = write;
        return p;
    }

    System sys;
    Mmu mmu;
    AddressSpace as;
};

TEST_F(MmuTest, TranslateMappedPage)
{
    as.map(0x10000, pte(makePAddr(2, kShmBase), PageMode::SharedRemote));
    const Translation t = mmu.translate(0x10008, false);
    ASSERT_TRUE(t.ok);
    EXPECT_EQ(t.paddr, makePAddr(2, kShmBase) + 8);
    EXPECT_EQ(t.pte.mode, PageMode::SharedRemote);
}

TEST_F(MmuTest, UnmappedFaults)
{
    const Translation t = mmu.translate(0xdead0000, false);
    EXPECT_FALSE(t.ok);
}

TEST_F(MmuTest, WriteProtectionEnforced)
{
    as.map(0x10000, pte(makePAddr(0, 0x2000), PageMode::Private, false));
    EXPECT_TRUE(mmu.translate(0x10000, false).ok);
    EXPECT_FALSE(mmu.translate(0x10000, true).ok);
}

TEST_F(MmuTest, TlbMissChargesThenHits)
{
    as.map(0x10000, pte(makePAddr(0, 0x2000), PageMode::Private));
    const Translation miss = mmu.translate(0x10000, false);
    EXPECT_EQ(miss.ticks, sys.config().tlbMiss);
    const Translation hit = mmu.translate(0x10100, false);
    EXPECT_EQ(hit.ticks, 0u);
    EXPECT_EQ(mmu.hits(), 1u);
    EXPECT_EQ(mmu.misses(), 1u);
}

TEST_F(MmuTest, TlbCapacityEvictsFifo)
{
    const std::uint32_t n = sys.config().tlbEntries;
    for (std::uint32_t i = 0; i <= n; ++i)
        as.map(0x10000 + VAddr(i) * 8192,
               pte(makePAddr(0, 0x2000), PageMode::Private));
    for (std::uint32_t i = 0; i <= n; ++i)
        mmu.translate(0x10000 + VAddr(i) * 8192, false);
    // First page was evicted: translating it misses again.
    const auto misses = mmu.misses();
    mmu.translate(0x10000, false);
    EXPECT_EQ(mmu.misses(), misses + 1);
}

TEST_F(MmuTest, StaleTlbEntryUsedUntilFlushed)
{
    as.map(0x10000, pte(makePAddr(2, kShmBase), PageMode::SharedRemote));
    mmu.translate(0x10000, false); // cached

    // OS remaps the page (replication) but forgets the TLB flush:
    as.map(0x10000, pte(makePAddr(0, kShmBase), PageMode::SharedLocal));
    EXPECT_EQ(mmu.translate(0x10000, false).pte.mode,
              PageMode::SharedRemote); // stale!

    mmu.flushPage(as.asid(), 0x10000);
    EXPECT_EQ(mmu.translate(0x10000, false).pte.mode,
              PageMode::SharedLocal);
}

TEST_F(MmuTest, ShadowTranslationSetsFlag)
{
    as.map(0x10000, pte(makePAddr(2, kShmBase), PageMode::SharedRemote));
    const VAddr shadow_va = 0x10008 | kShadowBit;
    const Translation t = mmu.translate(shadow_va, true);
    ASSERT_TRUE(t.ok);
    EXPECT_TRUE(t.shadow);
    EXPECT_TRUE(isShadow(t.paddr));
    EXPECT_EQ(stripShadow(t.paddr), makePAddr(2, kShmBase) + 8);
}

TEST_F(MmuTest, ShadowLoadsFault)
{
    as.map(0x10000, pte(makePAddr(2, kShmBase), PageMode::SharedRemote));
    EXPECT_FALSE(mmu.translate(0x10000 | kShadowBit, false).ok);
}

TEST_F(MmuTest, ShadowOfUnmappedFaults)
{
    // The protection property of shadow addressing: no base mapping, no
    // way to communicate the physical address (section 2.2.4).
    EXPECT_FALSE(mmu.translate(0x77000 | kShadowBit, true).ok);
}

TEST_F(MmuTest, ShadowOfPrivatePageFaults)
{
    as.map(0x10000, pte(makePAddr(0, 0x2000), PageMode::Private));
    EXPECT_FALSE(mmu.translate(0x10000 | kShadowBit, true).ok);
}

TEST_F(MmuTest, AsidsAreIsolated)
{
    AddressSpace other(2, sys.config().pageBytes);
    as.map(0x10000, pte(makePAddr(0, 0x2000), PageMode::Private));
    mmu.translate(0x10000, false);

    mmu.setAddressSpace(&other);
    EXPECT_FALSE(mmu.translate(0x10000, false).ok); // no leakage via TLB
}

TEST_F(MmuTest, MapRangeCoversConsecutiveFrames)
{
    Pte p = pte(makePAddr(1, kShmBase), PageMode::SharedRemote);
    as.mapRange(0x40000, 3, p);
    const auto page = sys.config().pageBytes;
    EXPECT_EQ(mmu.translate(0x40000, false).paddr, makePAddr(1, kShmBase));
    EXPECT_EQ(mmu.translate(0x40000 + page, false).paddr,
              makePAddr(1, kShmBase) + page);
    EXPECT_EQ(mmu.translate(0x40000 + 2 * page + 16, false).paddr,
              makePAddr(1, kShmBase) + 2 * page + 16);
}

} // namespace
} // namespace tg::node

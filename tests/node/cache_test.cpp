/**
 * @file
 * Unit tests of the direct-mapped cache model.
 */

#include <gtest/gtest.h>

#include "node/cache.hpp"
#include "sim/system.hpp"

namespace tg::node {
namespace {

class CacheTest : public ::testing::Test
{
  protected:
    CacheTest() : sys(Config{}), cache(sys, "cache") {}
    System sys;
    Cache cache;
};

TEST_F(CacheTest, MissThenHit)
{
    const Tick miss = cache.access(0x1000, false);
    EXPECT_EQ(miss, sys.config().memAccess);
    const Tick hit = cache.access(0x1000, false);
    EXPECT_EQ(hit, sys.config().cacheHit);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST_F(CacheTest, SameLineHits)
{
    cache.access(0x1000, false);
    EXPECT_EQ(cache.access(0x1008, false), sys.config().cacheHit);
    EXPECT_EQ(cache.access(0x1018, true), sys.config().cacheHit);
}

TEST_F(CacheTest, ConflictEviction)
{
    // Direct-mapped 8 KB: addresses 8 KB apart conflict.
    cache.access(0x0000, false);
    cache.access(0x2000, false); // evicts line 0
    EXPECT_EQ(cache.access(0x0000, false), sys.config().memAccess);
}

TEST_F(CacheTest, InvalidatePage)
{
    cache.access(0x1000, false);
    cache.access(0x1100, false);
    cache.invalidatePage(0x1000);
    EXPECT_EQ(cache.access(0x1000, false), sys.config().memAccess);
    EXPECT_EQ(cache.access(0x1100, false), sys.config().memAccess);
}

TEST_F(CacheTest, InvalidateAll)
{
    cache.access(0x1000, false);
    cache.invalidateAll();
    EXPECT_EQ(cache.access(0x1000, false), sys.config().memAccess);
}

TEST(CacheDisabled, ZeroSizeAlwaysMissCost)
{
    Config cfg;
    cfg.cacheBytes = 0;
    System sys{cfg};
    Cache cache(sys, "nc");
    EXPECT_EQ(cache.access(0x1000, false), cfg.memAccess);
    EXPECT_EQ(cache.access(0x1000, false), cfg.memAccess);
}

} // namespace
} // namespace tg::node

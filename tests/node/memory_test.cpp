/**
 * @file
 * Unit tests of the sparse main-memory store.
 */

#include <gtest/gtest.h>

#include "node/main_memory.hpp"
#include "sim/system.hpp"

namespace tg::node {
namespace {

class MemoryTest : public ::testing::Test
{
  protected:
    MemoryTest() : sys(Config{}), mem(sys, "mem") {}
    System sys;
    MainMemory mem;
};

TEST_F(MemoryTest, ReadsZeroWhenUntouched)
{
    EXPECT_EQ(mem.read(0x1000), 0u);
    EXPECT_EQ(mem.read(kShmBase + 0x88), 0u);
}

TEST_F(MemoryTest, WriteThenRead)
{
    mem.write(0x2000, 0xdeadbeefULL);
    EXPECT_EQ(mem.read(0x2000), 0xdeadbeefULL);
    mem.write(0x2000, 1);
    EXPECT_EQ(mem.read(0x2000), 1u);
}

TEST_F(MemoryTest, SparseRegionsAreIndependent)
{
    mem.write(0x0, 1);
    mem.write(kShmBase, 2);
    mem.write(kShmBase + 0x10'0000, 3);
    EXPECT_EQ(mem.read(0x0), 1u);
    EXPECT_EQ(mem.read(kShmBase), 2u);
    EXPECT_EQ(mem.read(kShmBase + 0x10'0000), 3u);
}

TEST_F(MemoryTest, CopyMovesBlocks)
{
    for (PAddr i = 0; i < 16; ++i)
        mem.write(0x1000 + i * 8, 100 + i);
    mem.copy(kShmBase, 0x1000, 16);
    for (PAddr i = 0; i < 16; ++i)
        EXPECT_EQ(mem.read(kShmBase + i * 8), 100 + i);
}

TEST_F(MemoryTest, ChunkBoundaryCrossing)
{
    // Chunks are 8 KB: write across a boundary.
    const PAddr boundary = 8192;
    mem.write(boundary - 8, 11);
    mem.write(boundary, 22);
    EXPECT_EQ(mem.read(boundary - 8), 11u);
    EXPECT_EQ(mem.read(boundary), 22u);
}

TEST_F(MemoryTest, TouchedBytesGrows)
{
    const std::size_t before = mem.touchedBytes();
    mem.write(0x100'0000, 1);
    EXPECT_GT(mem.touchedBytes(), before);
}

using MemoryDeathTest = MemoryTest;

TEST_F(MemoryDeathTest, UnalignedAccessPanics)
{
    EXPECT_DEATH(mem.read(3), "unaligned");
    EXPECT_DEATH(mem.write(0x1001, 1), "unaligned");
}

} // namespace
} // namespace tg::node

/**
 * @file
 * Tests of the naive (ownerless) eager-multicast protocol — including the
 * Figure 2 inconsistency it exists to demonstrate.
 */

#include <gtest/gtest.h>

#include "api/cluster.hpp"
#include "api/context.hpp"
#include "api/segment.hpp"

namespace tg {
namespace {

using coherence::ProtocolKind;

TEST(NaiveMulticast, SingleWriterPropagatesToAllCopies)
{
    ClusterSpec spec = ClusterSpec::star(3);
    Cluster c(spec);
    Segment &seg = c.allocShared("s", 8192, 0);
    seg.replicate(1, ProtocolKind::Naive);
    seg.replicate(2, ProtocolKind::Naive);

    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        for (int i = 0; i < 8; ++i)
            co_await ctx.write(seg.word(i), Word(10 + i));
        co_await ctx.fence();
    });
    c.run(10'000'000'000ULL);
    ASSERT_TRUE(c.allDone());

    for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(seg.peek(i), Word(10 + i));
        EXPECT_EQ(seg.peekCopy(1, i), Word(10 + i));
        EXPECT_EQ(seg.peekCopy(2, i), Word(10 + i));
    }
}

TEST(NaiveMulticast, Figure2ConcurrentWritersDiverge)
{
    // Figure 2 of the paper: two processors update their local copies of
    // the same word simultaneously and multicast; each applies the
    // other's (older) update on top of its own — the copies end up
    // *permanently different*.
    ClusterSpec spec = ClusterSpec::star(2);
    Cluster c(spec);
    Segment &seg = c.allocShared("s", 8192, 0);
    seg.replicate(1, ProtocolKind::Naive);

    c.spawn(0, [&](Ctx &ctx) -> Task<void> {
        co_await ctx.write(seg.word(0), 1);
        co_await ctx.fence();
    });
    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        co_await ctx.write(seg.word(0), 2);
        co_await ctx.fence();
    });
    c.run(10'000'000'000ULL);
    ASSERT_TRUE(c.allDone());

    // Node 0 wrote 1 then received 2; node 1 wrote 2 then received 1.
    EXPECT_EQ(seg.peekCopy(0, 0), 2u);
    EXPECT_EQ(seg.peekCopy(1, 0), 1u);
    EXPECT_NE(seg.peekCopy(0, 0), seg.peekCopy(1, 0));
}

TEST(NaiveMulticast, SynchronizedWritersStayConsistent)
{
    // With a lock separating the writes (the discipline Telegraphos I
    // requires), the naive protocol is safe.
    ClusterSpec spec = ClusterSpec::star(2);
    Cluster c(spec);
    Segment &lock = c.allocShared("lock", 8192, 0);
    Segment &seg = c.allocShared("s", 8192, 0);
    seg.replicate(1, ProtocolKind::Naive);

    for (NodeId n = 0; n < 2; ++n) {
        c.spawn(n, [&, n](Ctx &ctx) -> Task<void> {
            co_await ctx.lock(lock.word(0));
            co_await ctx.write(seg.word(0), Word(n) + 1);
            co_await ctx.fence();
            co_await ctx.unlock(lock.word(0));
        });
    }
    c.run(60'000'000'000ULL);
    ASSERT_TRUE(c.allDone());

    EXPECT_EQ(seg.peekCopy(0, 0), seg.peekCopy(1, 0));
}

} // namespace
} // namespace tg

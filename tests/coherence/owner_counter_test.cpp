/**
 * @file
 * Tests of the paper's owner-based counter protocol (sections 2.3.1-2.3.4):
 * convergence under concurrent writers, read-your-writes, the 2.3.2
 * overwrite hazard with counters disabled, and counter-cache stalling.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "api/cluster.hpp"
#include "api/context.hpp"
#include "api/segment.hpp"
#include "coherence/owner_counter.hpp"

namespace tg {
namespace {

using coherence::ProtocolKind;

ClusterSpec
spec3(Prototype proto = Prototype::TelegraphosII)
{
    ClusterSpec spec = ClusterSpec::star(3);
    spec.config.prototype = proto;
    return spec;
}

TEST(OwnerCounter, ConcurrentWritersConverge)
{
    Cluster c(spec3());
    Segment &seg = c.allocShared("s", 8192, 0);
    seg.replicate(1, ProtocolKind::OwnerCounter);
    seg.replicate(2, ProtocolKind::OwnerCounter);

    // Nodes 1 and 2 write the same word with no synchronization.
    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        co_await ctx.write(seg.word(0), 111);
        co_await ctx.fence();
    });
    c.spawn(2, [&](Ctx &ctx) -> Task<void> {
        co_await ctx.write(seg.word(0), 222);
        co_await ctx.fence();
    });
    c.run(10'000'000'000ULL);
    ASSERT_TRUE(c.allDone());

    // All copies identical: the owner's arrival order decided.
    const Word home = seg.peek(0);
    EXPECT_TRUE(home == 111 || home == 222);
    EXPECT_EQ(seg.peekCopy(1, 0), home);
    EXPECT_EQ(seg.peekCopy(2, 0), home);
}

TEST(OwnerCounter, ReadYourWritesAlwaysHolds)
{
    // Section 2.3.2: a non-owner writes M=2 then M=3 back-to-back and
    // must never read anything but its latest value, even while the
    // reflected updates are in flight.
    Cluster c(spec3());
    Segment &seg = c.allocShared("s", 8192, 0);
    seg.replicate(1, ProtocolKind::OwnerCounter);

    bool ok = true;
    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        for (int r = 0; r < 20; ++r) {
            co_await ctx.write(seg.word(0), Word(r) * 10 + 2);
            co_await ctx.write(seg.word(0), Word(r) * 10 + 3);
            // Read immediately: reflected "2" must not be visible.
            const Word v = co_await ctx.read(seg.word(0));
            if (v != Word(r) * 10 + 3)
                ok = false;
            // Let reflections drain; the value must STILL be 3.
            co_await ctx.fence();
            const Word v2 = co_await ctx.read(seg.word(0));
            if (v2 != Word(r) * 10 + 3)
                ok = false;
        }
    });
    c.run(60'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
    EXPECT_TRUE(ok);
}

TEST(OwnerCounter, WithoutCountersTheOverwriteHazardAppears)
{
    // Telegraphos I (no counter cache): the reflected old value lands on
    // top of the newer local value — the exact scenario of section 2.3.2.
    ClusterSpec spec = spec3(Prototype::TelegraphosI);
    Cluster c(spec);
    Segment &seg = c.allocShared("s", 8192, 0);
    seg.replicate(1, ProtocolKind::OwnerCounter);

    // Observe the value sequence at node 1 for word 0.
    std::vector<Word> applied;
    c.observeWrites([&](const coherence::ApplyEvent &ev) {
        if (ev.node == 1 && ev.homeAddr == seg.homeWord(0))
            applied.push_back(ev.value);
    });

    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        co_await ctx.write(seg.word(0), 2);
        co_await ctx.write(seg.word(0), 3);
        co_await ctx.fence();
    });
    c.run(10'000'000'000ULL);
    ASSERT_TRUE(c.allDone());

    // Local sequence shows the regression: 2, 3, then the reflected 2
    // overwrites the 3 (then reflected 3 restores it).
    ASSERT_GE(applied.size(), 4u);
    EXPECT_EQ(applied[0], 2u);
    EXPECT_EQ(applied[1], 3u);
    EXPECT_EQ(applied[2], 2u); // the hazard
    EXPECT_EQ(applied.back(), 3u);
}

TEST(OwnerCounter, WithCountersNoRegressionIsEverApplied)
{
    Cluster c(spec3(Prototype::TelegraphosII));
    Segment &seg = c.allocShared("s", 8192, 0);
    seg.replicate(1, ProtocolKind::OwnerCounter);

    std::vector<Word> applied;
    c.observeWrites([&](const coherence::ApplyEvent &ev) {
        if (ev.node == 1 && ev.homeAddr == seg.homeWord(0))
            applied.push_back(ev.value);
    });

    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        co_await ctx.write(seg.word(0), 2);
        co_await ctx.write(seg.word(0), 3);
        co_await ctx.fence();
    });
    c.run(10'000'000'000ULL);
    ASSERT_TRUE(c.allDone());

    // Rules 2+3: both reflections are ignored; node 1 sees exactly 2, 3.
    EXPECT_EQ(applied, (std::vector<Word>{2, 3}));
    EXPECT_EQ(seg.peekCopy(1, 0), 3u);
    EXPECT_EQ(seg.peek(0), 3u);
}

TEST(OwnerCounter, CounterCacheStallsAndRecovers)
{
    ClusterSpec spec = spec3(Prototype::TelegraphosII);
    spec.config.counterCacheEntries = 2; // tiny CAM forces stalls
    Cluster c(spec);
    Segment &seg = c.allocShared("s", 8192, 0);
    seg.replicate(1, ProtocolKind::OwnerCounter);

    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        // Burst of writes to distinct words: each needs its own counter.
        for (int i = 0; i < 16; ++i)
            co_await ctx.write(seg.word(i), Word(100 + i));
        co_await ctx.fence();
    });
    c.run(20'000'000'000ULL);
    ASSERT_TRUE(c.allDone());

    EXPECT_GT(c.hibOf(1).counterCache().stallEvents(), 0u);
    EXPECT_EQ(c.hibOf(1).counterCache().used(), 0u); // fully drained
    for (int i = 0; i < 16; ++i) {
        EXPECT_EQ(seg.peek(i), Word(100 + i));
        EXPECT_EQ(seg.peekCopy(1, i), Word(100 + i));
    }
}

TEST(OwnerCounter, OwnersOwnWritesReflectToAllCopies)
{
    Cluster c(spec3());
    Segment &seg = c.allocShared("s", 8192, 0);
    seg.replicate(1, ProtocolKind::OwnerCounter);
    seg.replicate(2, ProtocolKind::OwnerCounter);

    c.spawn(0, [&](Ctx &ctx) -> Task<void> {
        co_await ctx.write(seg.word(5), 55);
        co_await ctx.fence();
    });
    c.run(10'000'000'000ULL);
    ASSERT_TRUE(c.allDone());

    EXPECT_EQ(seg.peek(5), 55u);
    EXPECT_EQ(seg.peekCopy(1, 5), 55u);
    EXPECT_EQ(seg.peekCopy(2, 5), 55u);
}

TEST(OwnerCounter, IndependentWordsDoNotInterfere)
{
    // Counters are per *word*: concurrent writers to different words
    // must never suppress each other's updates (rule 3 keys on the
    // word address, not the page).
    Cluster c(spec3());
    Segment &seg = c.allocShared("s", 8192, 0);
    seg.replicate(1, ProtocolKind::OwnerCounter);
    seg.replicate(2, ProtocolKind::OwnerCounter);

    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        for (int i = 0; i < 10; ++i)
            co_await ctx.write(seg.word(0), Word(100 + i));
        co_await ctx.fence();
    });
    c.spawn(2, [&](Ctx &ctx) -> Task<void> {
        for (int i = 0; i < 10; ++i)
            co_await ctx.write(seg.word(1), Word(200 + i));
        co_await ctx.fence();
    });
    c.run(60'000'000'000ULL);
    ASSERT_TRUE(c.allDone());

    for (NodeId n = 0; n < 3; ++n) {
        EXPECT_EQ(seg.peekCopy(n, 0), 109u) << "node " << unsigned(n);
        EXPECT_EQ(seg.peekCopy(n, 1), 209u) << "node " << unsigned(n);
    }
}

TEST(OwnerCounter, ReaderCopyObservesOwnersOrderAsSubsequence)
{
    // Section 2.3.3's guarantee restated: a passive reader's copy sees
    // a subsequence of the owner's value sequence, in the same order.
    Cluster c(spec3());
    Segment &seg = c.allocShared("s", 8192, 0);
    seg.replicate(1, ProtocolKind::OwnerCounter);
    seg.replicate(2, ProtocolKind::OwnerCounter);

    std::vector<Word> at_owner, at_reader;
    c.observeWrites([&](const coherence::ApplyEvent &ev) {
        if (ev.homeAddr != seg.homeWord(0))
            return;
        if (ev.node == 0)
            at_owner.push_back(ev.value);
        if (ev.node == 2)
            at_reader.push_back(ev.value);
    });

    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        for (int i = 0; i < 12; ++i) {
            co_await ctx.write(seg.word(0), Word(1000 + i));
            if (i % 3 == 0)
                co_await ctx.fence();
        }
        co_await ctx.fence();
    });
    c.run(60'000'000'000ULL);
    ASSERT_TRUE(c.allDone());

    // at_reader must be a subsequence of at_owner.
    std::size_t j = 0;
    for (const Word v : at_reader) {
        while (j < at_owner.size() && at_owner[j] != v)
            ++j;
        ASSERT_LT(j, at_owner.size()) << "reader saw a value out of the "
                                         "owner's order";
        ++j;
    }
}

TEST(OwnerCounter, NonHolderRemoteWriteIsReflected)
{
    // Node 2 has no copy; its plain remote write reaches the home and
    // must still be multicast to the copy holders.
    Cluster c(spec3());
    Segment &seg = c.allocShared("s", 8192, 0);
    seg.replicate(1, ProtocolKind::OwnerCounter);

    c.spawn(2, [&](Ctx &ctx) -> Task<void> {
        co_await ctx.write(seg.word(7), 77);
        co_await ctx.fence();
    });
    c.run(10'000'000'000ULL);
    ASSERT_TRUE(c.allDone());

    EXPECT_EQ(seg.peek(7), 77u);
    EXPECT_EQ(seg.peekCopy(1, 7), 77u);
}

} // namespace
} // namespace tg

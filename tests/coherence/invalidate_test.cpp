/**
 * @file
 * Tests of the page-level invalidate protocol (the section 2.3.6
 * software alternative).
 */

#include <gtest/gtest.h>

#include "api/cluster.hpp"
#include "api/context.hpp"
#include "api/segment.hpp"
#include "coherence/invalidate.hpp"

namespace tg {
namespace {

using coherence::ProtocolKind;

TEST(Invalidate, WriteRemovesOtherCopies)
{
    ClusterSpec spec = ClusterSpec::star(3);
    Cluster c(spec);
    Segment &seg = c.allocShared("s", 8192, 0);
    seg.replicate(1, ProtocolKind::Invalidate);
    seg.replicate(2, ProtocolKind::Invalidate);

    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        co_await ctx.write(seg.word(0), 99);
        co_await ctx.fence();
    });
    c.run(20'000'000'000ULL);
    ASSERT_TRUE(c.allDone());

    coherence::PageEntry *e = c.directory().byHome(seg.homePage(0));
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->copies.size(), 1u);
    EXPECT_TRUE(e->hasCopy(1));
    EXPECT_EQ(seg.peekCopy(1, 0), 99u);

    auto &proto = static_cast<coherence::InvalidateProtocol &>(
        c.protocol(ProtocolKind::Invalidate));
    EXPECT_EQ(proto.invalidations(), 1u);
}

TEST(Invalidate, InvalidatedReaderFallsBackToRemoteReads)
{
    ClusterSpec spec = ClusterSpec::star(2);
    Cluster c(spec);
    Segment &seg = c.allocShared("s", 8192, 0);
    seg.replicate(1, ProtocolKind::Invalidate);

    Word observed = 0;
    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        co_await ctx.write(seg.word(0), 5); // invalidates node 0's copy
        co_await ctx.fence();
    });
    c.spawn(0, [&](Ctx &ctx) -> Task<void> {
        // Wait out the invalidation, then read: the access must succeed
        // remotely (Telegraphos remote read), no replication needed.
        co_await ctx.compute(5'000'000);
        observed = co_await ctx.read(seg.word(0));
    });
    c.run(60'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
    EXPECT_EQ(observed, 5u);
}

TEST(Invalidate, ExclusiveWriterPaysNothing)
{
    ClusterSpec spec = ClusterSpec::star(2);
    Cluster c(spec);
    Segment &seg = c.allocShared("s", 8192, 0);
    seg.replicate(1, ProtocolKind::Invalidate);

    // First write invalidates; subsequent writes are free (exclusive).
    Tick first = 0, second = 0;
    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        Tick t0 = ctx.now();
        co_await ctx.write(seg.word(0), 1);
        first = ctx.now() - t0;
        t0 = ctx.now();
        co_await ctx.write(seg.word(0), 2);
        second = ctx.now() - t0;
    });
    c.run(20'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
    EXPECT_GT(first, second * 10); // invalidation round vs plain store
}

} // namespace
} // namespace tg

/**
 * @file
 * Tests of the Galactica-ring baseline (paper section 2.4): convergence
 * via back-off, and the invalid "1,2,1" value sequence a third processor
 * can observe — which the owner-counter protocol never produces.
 */

#include <gtest/gtest.h>

#include <vector>

#include "api/cluster.hpp"
#include "api/context.hpp"
#include "api/segment.hpp"
#include "coherence/galactica_ring.hpp"

namespace tg {
namespace {

using coherence::ProtocolKind;

TEST(Galactica, SingleWriterCirculatesToAllCopies)
{
    ClusterSpec spec = ClusterSpec::star(3);
    Cluster c(spec);
    Segment &seg = c.allocShared("s", 8192, 0);
    seg.replicate(1, ProtocolKind::GalacticaRing);
    seg.replicate(2, ProtocolKind::GalacticaRing);

    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        co_await ctx.write(seg.word(0), 42);
        co_await ctx.fence();
    });
    c.run(10'000'000'000ULL);
    ASSERT_TRUE(c.allDone());

    EXPECT_EQ(seg.peek(0), 42u);
    EXPECT_EQ(seg.peekCopy(1, 0), 42u);
    EXPECT_EQ(seg.peekCopy(2, 0), 42u);
}

TEST(Galactica, ConflictBacksOffAndConverges)
{
    ClusterSpec spec = ClusterSpec::star(3);
    Cluster c(spec);
    Segment &seg = c.allocShared("s", 8192, 0);
    // Ring order: 0 (owner), then 2, then 1.
    seg.replicate(2, ProtocolKind::GalacticaRing);
    seg.replicate(1, ProtocolKind::GalacticaRing);

    c.spawn(0, [&](Ctx &ctx) -> Task<void> {
        co_await ctx.write(seg.word(0), 1);
        co_await ctx.fence();
    });
    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        co_await ctx.compute(1000); // overlap, but B starts slightly later
        co_await ctx.write(seg.word(0), 2);
        co_await ctx.fence();
    });
    c.run(60'000'000'000ULL);
    ASSERT_TRUE(c.allDone());

    auto &proto = static_cast<coherence::GalacticaRingProtocol &>(
        c.protocol(ProtocolKind::GalacticaRing));
    EXPECT_GE(proto.backoffs(), 1u);

    // Node 0 has priority: every copy converges to 1.
    EXPECT_EQ(seg.peekCopy(0, 0), 1u);
    EXPECT_EQ(seg.peekCopy(1, 0), 1u);
    EXPECT_EQ(seg.peekCopy(2, 0), 1u);
}

TEST(Galactica, ThreeConcurrentWritersStillConverge)
{
    ClusterSpec spec = ClusterSpec::star(4);
    Cluster c(spec);
    Segment &seg = c.allocShared("s", 8192, 0);
    for (NodeId n = 1; n < 4; ++n)
        seg.replicate(n, ProtocolKind::GalacticaRing);

    for (NodeId n = 0; n < 4; ++n) {
        c.spawn(n, [&, n](Ctx &ctx) -> Task<void> {
            co_await ctx.compute(Tick(n) * 400);
            co_await ctx.write(seg.word(0), Word(n) + 10);
            co_await ctx.fence();
        });
    }
    c.run(200'000'000'000ULL);
    ASSERT_TRUE(c.allDone());

    const Word home = seg.peekCopy(0, 0);
    for (NodeId n = 1; n < 4; ++n)
        EXPECT_EQ(seg.peekCopy(n, 0), home) << "node " << unsigned(n);
}

TEST(Galactica, ThirdNodeObservesInvalid121Sequence)
{
    // The paper: "it is possible that a third processor sees the
    // sequence 1,2,1 which is a sequence that is not a valid program
    // sequence under any memory consistency model."
    ClusterSpec spec = ClusterSpec::star(3);
    Cluster c(spec);
    Segment &seg = c.allocShared("s", 8192, 0);
    seg.replicate(2, ProtocolKind::GalacticaRing); // ring: 0, 2, 1
    seg.replicate(1, ProtocolKind::GalacticaRing);

    std::vector<Word> seen_at_2;
    c.observeWrites([&](const coherence::ApplyEvent &ev) {
        if (ev.node == 2 && ev.homeAddr == seg.homeWord(0))
            seen_at_2.push_back(ev.value);
    });

    c.spawn(0, [&](Ctx &ctx) -> Task<void> {
        co_await ctx.write(seg.word(0), 1);
        co_await ctx.fence();
    });
    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        co_await ctx.compute(1000);
        co_await ctx.write(seg.word(0), 2);
        co_await ctx.fence();
    });
    c.run(60'000'000'000ULL);
    ASSERT_TRUE(c.allDone());

    EXPECT_EQ(seen_at_2, (std::vector<Word>{1, 2, 1}));
}

} // namespace
} // namespace tg

/**
 * @file
 * Tests of the workload library: each generator runs to completion and
 * produces the behaviour it advertises.
 */

#include <gtest/gtest.h>

#include "api/cluster.hpp"
#include "api/collectives.hpp"
#include "api/context.hpp"
#include "api/segment.hpp"
#include <set>

#include "workload/chaotic.hpp"
#include "workload/hotspot.hpp"
#include "workload/producer_consumer.hpp"
#include "workload/remote_paging.hpp"
#include "workload/stencil.hpp"
#include "workload/traffic.hpp"
#include "workload/trace_replay.hpp"

namespace tg {
namespace {

TEST(Workloads, ProducerConsumerWithFenceHasNoStaleReads)
{
    ClusterSpec spec = ClusterSpec::star(2);
    Cluster c(spec);
    Segment &data = c.allocShared("data", 8192, 1); // homed at consumer
    Segment &flag = c.allocShared("flag", 8192, 1);

    workload::PcConfig cfg;
    cfg.words = 8;
    cfg.rounds = 6;
    cfg.fenceBeforeFlag = true;
    workload::PcStats stats;
    c.spawn(0, workload::producer(data, flag, cfg, &stats));
    c.spawn(1, workload::consumer(data, flag, cfg, &stats));
    c.run(400'000'000'000ULL);
    ASSERT_TRUE(c.allDone());

    EXPECT_EQ(stats.staleReads, 0u);
    EXPECT_EQ(stats.totalReads, std::uint64_t(cfg.words) * cfg.rounds);
    EXPECT_GT(stats.producerDone, 0u);
    EXPECT_GT(stats.consumerDone, 0u);
}

TEST(Workloads, HotspotCountsExactly)
{
    ClusterSpec spec = ClusterSpec::star(3);
    Cluster c(spec);
    Segment &ctr = c.allocShared("ctr", 8192, 0);

    workload::HotspotConfig cfg;
    cfg.increments = 15;
    cfg.thinkTime = 500;
    for (NodeId n = 0; n < 3; ++n)
        c.spawn(n, workload::hotspotWorker(ctr, cfg));
    c.run(2'000'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
    EXPECT_EQ(ctr.peek(0), Word(3 * 15));
}

TEST(Workloads, StencilConvergesTowardsMean)
{
    ClusterSpec spec = ClusterSpec::star(3);
    Cluster c(spec);
    std::vector<Segment *> blocks;
    for (NodeId n = 0; n < 3; ++n)
        blocks.push_back(&c.allocShared("b" + std::to_string(n), 8192, n));
    Communicator &comm = c.communicator("sync", {0, 1, 2});

    workload::StencilConfig cfg;
    cfg.cellsPerNode = 8;
    cfg.iterations = 12;
    for (NodeId n = 0; n < 3; ++n)
        c.spawn(n, workload::stencilWorker(blocks, comm, n, cfg));
    c.run(8'000'000'000'000ULL);
    ASSERT_TRUE(c.allDone());

    // Initial values are 0, 100, 200; smoothing pulls everything into
    // (0, 200) and shrinks the spread.
    Word lo = ~Word(0), hi = 0;
    for (NodeId n = 0; n < 3; ++n) {
        for (std::size_t i = 0; i < cfg.cellsPerNode; ++i) {
            const Word v = blocks[n]->peek(i);
            lo = std::min(lo, v);
            hi = std::max(hi, v);
        }
    }
    EXPECT_GT(lo, 0u);
    EXPECT_LT(hi, 200u);
    EXPECT_LT(hi - lo, 200u);
}

TEST(Workloads, ChaoticWritersDrainCompletely)
{
    ClusterSpec spec = ClusterSpec::star(2);
    Cluster c(spec);
    Segment &seg = c.allocShared("s", 8192, 0);
    seg.replicate(1, coherence::ProtocolKind::OwnerCounter);

    workload::ChaoticConfig cfg;
    cfg.writes = 40;
    cfg.words = 8;
    cfg.burst = true;
    c.spawn(0, workload::chaoticWriter(seg, cfg));
    c.spawn(1, workload::chaoticWriter(seg, cfg));
    c.run(2'000'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
    for (NodeId n = 0; n < 2; ++n)
        EXPECT_EQ(c.hibOf(n).outstanding().current(), 0u);
}

TEST(Workloads, TrafficRespectsReadFraction)
{
    ClusterSpec spec = ClusterSpec::star(2);
    Cluster c(spec);
    std::vector<Segment *> segs{&c.allocShared("a", 8192, 0),
                                &c.allocShared("b", 8192, 1)};

    workload::TrafficConfig cfg;
    cfg.ops = 200;
    cfg.readFraction = 0.0; // writes only
    c.spawn(0, workload::randomTraffic(segs, cfg));
    c.run(2'000'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
    // Every op was a tracked write.
    EXPECT_EQ(c.hibOf(0).outstanding().total(), 200u);
}

TEST(Workloads, TraceGeneratorIsDeterministicAndLayoutAware)
{
    workload::TraceConfig cfg;
    cfg.accesses = 50;
    cfg.aligned = true;
    const auto a = workload::generateTrace(cfg, 1, 3);
    const auto b = workload::generateTrace(cfg, 1, 3);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].word, b[i].word);
        EXPECT_EQ(a[i].isWrite, b[i].isWrite);
    }

    // Aligned: all writes of node 1 land in page 1.
    for (const auto &op : a) {
        if (op.isWrite) {
            EXPECT_GE(op.word, 1024u);
            EXPECT_LT(op.word, 2048u);
        }
    }

    // Interleaved: node 1's writes span several pages.
    cfg.aligned = false;
    const auto c = workload::generateTrace(cfg, 1, 3);
    std::set<std::size_t> pages;
    for (const auto &op : c) {
        if (op.isWrite)
            pages.insert(op.word / 1024);
    }
    EXPECT_GT(pages.size(), 1u);
}

TEST(Workloads, TraceReplayRunsCleanly)
{
    ClusterSpec spec = ClusterSpec::star(2);
    Cluster c(spec);
    Segment &seg = c.allocShared("t", 2 * 8192, 0);
    seg.replicate(1, coherence::ProtocolKind::OwnerCounter);

    workload::TraceConfig cfg;
    cfg.accesses = 60;
    cfg.gap = 300;
    for (NodeId n = 0; n < 2; ++n)
        c.spawn(n, workload::traceReplayer(
                       seg, workload::generateTrace(cfg, n, 2), cfg.gap));
    c.run(2'000'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
    for (NodeId n = 0; n < 2; ++n)
        EXPECT_EQ(c.hibOf(n).outstanding().current(), 0u);
}

TEST(Workloads, PagingMissRateTracksLocality)
{
    ClusterSpec spec = ClusterSpec::star(2);
    Cluster c(spec);
    Segment &backing = c.allocShared("back", 8 * 8192, 0);
    Segment &buf = c.allocShared("buf", 4 * 8192, 1);

    workload::PagingConfig cfg;
    cfg.pages = 8;
    cfg.residentPages = 4;
    cfg.accesses = 80;
    cfg.locality = 0.9;
    workload::PagingStats high_loc;
    c.spawn(1, workload::pagingApp(backing, buf, cfg, &high_loc));
    c.run(800'000'000'000'000ULL);
    ASSERT_TRUE(c.allDone());

    EXPECT_EQ(high_loc.touches, 80u);
    EXPECT_GT(high_loc.misses, 0u);
    EXPECT_LT(high_loc.misses, 40u); // locality keeps it well under 50%
}

} // namespace
} // namespace tg

/**
 * @file
 * Tests of the OS layer: fault dispatch, kill semantics, alarm-driven
 * replication policy end to end (section 2.2.6 + ref [5]).
 */

#include <gtest/gtest.h>

#include "api/cluster.hpp"
#include "api/context.hpp"
#include "api/segment.hpp"
#include "os/replication_policy.hpp"

namespace tg {
namespace {

TEST(Os, UnhandledFaultKillsWithTrapCharge)
{
    ClusterSpec spec = ClusterSpec::star(1);
    Cluster c(spec);

    Tick start = 0;
    c.spawn(0, [&](Ctx &ctx) -> Task<void> {
        start = ctx.now();
        co_await ctx.read(0xbad'0000);
    });
    c.run(1'000'000'000ULL);
    EXPECT_TRUE(c.anyKilled());
    EXPECT_EQ(c.os(0).faults(), 1u);
}

TEST(Os, FaultServicesAreTriedInOrder)
{
    ClusterSpec spec = ClusterSpec::star(1);
    Cluster c(spec);
    const VAddr priv = c.allocPrivate(0, 8192);

    int first = 0, second = 0;
    c.os(0).addFaultService([&](VAddr, bool, std::function<void()>,
                                std::function<void(std::string)>) {
        ++first;
        return false; // decline
    });
    c.os(0).addFaultService(
        [&](VAddr va, bool, std::function<void()> retry,
            std::function<void(std::string)>) {
            ++second;
            // "Fix" the fault by mapping the page, then retry.
            node::Pte pte;
            pte.frame = node::makePAddr(0, 0x8000);
            pte.mode = node::PageMode::Private;
            c.node(0).defaultAddressSpace().map(va, pte);
            retry();
            return true;
        });

    Word v = 99;
    c.spawn(0, [&](Ctx &ctx) -> Task<void> {
        (void)priv;
        v = co_await ctx.read(0x5550'0000); // unmapped -> fixed by svc 2
    });
    c.run(1'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
    EXPECT_FALSE(c.anyKilled());
    EXPECT_EQ(first, 1);
    EXPECT_EQ(second, 1);
    EXPECT_EQ(v, 0u);
}

TEST(Os, AlarmReplicatorReplicatesHotPage)
{
    ClusterSpec spec = ClusterSpec::star(2);
    Cluster c(spec);
    Segment &seg = c.allocShared("s", 8192, 0);
    seg.poke(0, 7);

    os::AlarmReplicator repl(c.os(1), /*threshold=*/8,
                             [&](PAddr page, bool) {
                                 c.replicatePageLive(1, page);
                             });
    seg.armCounters(1, 8, 8);
    repl.arm(seg.homePage(0));

    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        // Hammer the remote page until the alarm replicates it locally.
        for (int i = 0; i < 200; ++i) {
            (void)co_await ctx.read(seg.word(0));
            co_await ctx.compute(2000);
        }
    });
    c.run(100'000'000'000ULL);
    ASSERT_TRUE(c.allDone());

    EXPECT_EQ(repl.replications(), 1u);
    auto *e = c.directory().byHome(seg.homePage(0));
    ASSERT_NE(e, nullptr);
    EXPECT_TRUE(e->hasCopy(1));
    EXPECT_EQ(c.node(1).defaultAddressSpace().lookup(seg.base()).mode,
              node::PageMode::SharedLocal);
    EXPECT_EQ(seg.peekCopy(1, 0), 7u);
}

TEST(Os, AlarmRepliesOnlyOncePerPage)
{
    ClusterSpec spec = ClusterSpec::star(2);
    Cluster c(spec);
    Segment &seg = c.allocShared("s", 8192, 0);

    int calls = 0;
    os::AlarmReplicator repl(c.os(1), 2, [&](PAddr, bool) { ++calls; });
    repl.arm(seg.homePage(0));
    seg.armCounters(1, 2, 2);

    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        for (int i = 0; i < 10; ++i)
            co_await ctx.write(seg.word(0), 1);
        co_await ctx.fence();
    });
    c.run(10'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
    EXPECT_EQ(calls, 1);
}

} // namespace
} // namespace tg

/**
 * @file
 * Unit tests for tglint: every rule must fire on its fixture, the
 * allow() / shard() escape hatches must silence findings, clean code
 * must pass, the baseline ratchet must admit exactly the triaged
 * findings, and rule disabling / output rendering (human, JSON, SARIF)
 * must behave.
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "index.hpp"
#include "tglint.hpp"

namespace {

using tglint::Baseline;
using tglint::BaselineEntry;
using tglint::Finding;
using tglint::Options;
using tglint::Report;
using tglint::ShardAnnotation;

std::string
fixture(const std::string &name)
{
    return std::string(TGLINT_FIXTURE_DIR) + "/" + name;
}

std::vector<Finding>
lintFixture(const std::string &name, const Options &opts = {})
{
    std::vector<Finding> out;
    EXPECT_TRUE(tglint::lintPath(fixture(name), opts, out))
        << "fixture unreadable: " << name;
    return out;
}

std::set<std::string>
rulesOf(const std::vector<Finding> &fs)
{
    std::set<std::string> r;
    for (const Finding &f : fs)
        r.insert(f.rule);
    return r;
}

TEST(TglintTest, BannedApiFixtureFires)
{
    auto fs = lintFixture("banned_api.cpp");
    EXPECT_EQ(rulesOf(fs), std::set<std::string>{"banned-api"});
    // rand, time, system_clock, getenv, srand.
    EXPECT_EQ(fs.size(), 5u);
}

TEST(TglintTest, UnorderedIterFixtureFires)
{
    auto fs = lintFixture("unordered_iter.cpp");
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].rule, "unordered-iter");
    EXPECT_NE(fs[0].message.find("table"), std::string::npos);
}

TEST(TglintTest, TickFloatFixtureFires)
{
    auto fs = lintFixture("tick_float.cpp");
    EXPECT_EQ(rulesOf(fs), std::set<std::string>{"tick-float"});
    EXPECT_EQ(fs.size(), 2u); // init form + static_cast form
}

TEST(TglintTest, RawNewFixtureFires)
{
    auto fs = lintFixture("raw_new.cpp");
    EXPECT_EQ(rulesOf(fs), std::set<std::string>{"raw-new"});
    EXPECT_EQ(fs.size(), 2u); // new + delete
}

TEST(TglintTest, FileDocFixtureFires)
{
    auto fs = lintFixture("file_doc.cpp");
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].rule, "file-doc");
    EXPECT_EQ(fs[0].line, 1);
}

TEST(TglintTest, HotStdFunctionFixtureFires)
{
    auto fs = lintFixture("hot_std_function.cpp");
    EXPECT_EQ(rulesOf(fs), std::set<std::string>{"hot-path-std-function"});
    // Member + parameter fire; the allow()-ed member is suppressed.
    EXPECT_EQ(fs.size(), 2u);
}

TEST(TglintTest, HotHeapAllocFixtureFires)
{
    auto fs = lintFixture("hot_heap_alloc.cpp");
    EXPECT_EQ(rulesOf(fs), std::set<std::string>{"hot-path-heap-alloc"});
    // deque + list members fire; the allow()-ed member is suppressed.
    EXPECT_EQ(fs.size(), 2u);
}

TEST(TglintTest, HotHeapAllocIgnoresColdNamespaces)
{
    // Setup/OS layers may keep node-based containers: they are not on
    // the per-packet path.
    std::vector<Finding> out;
    tglint::lintSource("src/os/os_kernel.hpp",
                       "/** @file os */\n"
                       "#include <deque>\n"
                       "namespace tg::os {\n"
                       "struct Q { std::deque<int> waiters; };\n"
                       "}\n",
                       Options{}, out);
    EXPECT_TRUE(out.empty());
}

TEST(TglintTest, HotStdFunctionIgnoresColdNamespaces)
{
    // The OS / api layers may keep std::function: faults and setup are
    // not per-event paths.
    std::vector<Finding> out;
    tglint::lintSource("src/os/os_kernel.hpp",
                       "/** @file os */\n"
                       "#include <functional>\n"
                       "namespace tg::os {\n"
                       "using Policy = std::function<void(int)>;\n"
                       "}\n",
                       Options{}, out);
    EXPECT_TRUE(out.empty());
}

TEST(TglintTest, AllowCommentSuppressesEveryRule)
{
    // suppressed.cpp contains a banned call, a float->Tick cast, raw
    // new/delete and an unordered range-for — each carrying an allow().
    EXPECT_TRUE(lintFixture("suppressed.cpp").empty());
}

TEST(TglintTest, CleanFixtureIsClean)
{
    EXPECT_TRUE(lintFixture("clean.cpp").empty());
}

TEST(TglintTest, DisabledRuleIsSkipped)
{
    Options opts;
    opts.disabledRules.push_back("banned-api");
    EXPECT_TRUE(lintFixture("banned_api.cpp", opts).empty());
}

TEST(TglintTest, DirectoryScanCoversAllFixtures)
{
    std::vector<Finding> out;
    ASSERT_TRUE(tglint::lintPath(TGLINT_FIXTURE_DIR, Options{}, out));
    // Every rule in the catalogue is represented by some fixture finding.
    auto seen = rulesOf(out);
    for (const std::string &rule : tglint::allRules())
        EXPECT_TRUE(seen.count(rule)) << "no fixture fires rule " << rule;
    // Directory order must be deterministic: findings sorted by path.
    EXPECT_TRUE(std::is_sorted(out.begin(), out.end(),
                               [](const Finding &a, const Finding &b) {
                                   return a.file < b.file ||
                                          (a.file == b.file &&
                                           a.line < b.line);
                               }));
}

TEST(TglintTest, GetenvExemptPathIsAllowed)
{
    // The config loader is the one legal getenv site.
    std::vector<Finding> out;
    tglint::lintSource("src/sim/config.cpp",
                       "/** @file config */\n"
                       "const char *v = std::getenv(\"TG_SEED\");\n",
                       Options{}, out);
    EXPECT_TRUE(out.empty());
}

TEST(TglintTest, OrderInsensitiveNamespaceMayIterateUnordered)
{
    // node/ and os/ are outside the determinism contract: the same
    // range-for that fires in tg::net must pass in tg::node.
    std::vector<Finding> out;
    tglint::lintSource("src/node/cache.cpp",
                       "/** @file cache */\n"
                       "#include <unordered_map>\n"
                       "namespace tg::node {\n"
                       "int f() {\n"
                       "  std::unordered_map<int,int> m;\n"
                       "  int s = 0;\n"
                       "  for (auto &kv : m) s += kv.second;\n"
                       "  return s;\n"
                       "}\n"
                       "}\n",
                       Options{}, out);
    EXPECT_TRUE(out.empty());
}

TEST(TglintTest, GlobalMutableStateFixtureFires)
{
    auto fs = lintFixture("global_mutable_state.cpp");
    EXPECT_EQ(rulesOf(fs), std::set<std::string>{"global-mutable-state"});
    // Namespace-scope variable + function-local static + static member;
    // const/constexpr/thread_local and the allow()/shard() forms pass.
    EXPECT_EQ(fs.size(), 3u);
}

TEST(TglintTest, ShardAnnotationIsRecordedNotReported)
{
    tglint::ProjectIndex index;
    ASSERT_TRUE(index.addPath(fixture("global_mutable_state.cpp"),
                              Options{}));
    index.finalize();

    std::vector<Finding> out;
    std::vector<ShardAnnotation> ann;
    tglint::runRules(index, Options{}, out, &ann);

    EXPECT_EQ(out.size(), 3u); // the annotated decl is not among them
    ASSERT_EQ(ann.size(), 1u);
    EXPECT_EQ(ann[0].symbol, "g_traceMask");
    EXPECT_EQ(ann[0].kind, "shared-guarded");
    EXPECT_NE(ann[0].file.find("global_mutable_state.cpp"),
              std::string::npos);
}

TEST(TglintTest, PointerKeyedOrderFixtureFires)
{
    auto fs = lintFixture("pointer_keyed_order.cpp");
    EXPECT_EQ(rulesOf(fs), std::set<std::string>{"pointer-keyed-order"});
    // map<Port*,...> + set<const Port*> + comparator-less sort; the
    // stable-id map, comparator sort and allow() form pass.
    EXPECT_EQ(fs.size(), 3u);
}

TEST(TglintTest, IncludeCycleIsReportedOncePerCycle)
{
    tglint::ProjectIndex index;
    ASSERT_TRUE(index.addPath(fixture("cycle_a.hpp"), Options{}));
    ASSERT_TRUE(index.addPath(fixture("cycle_b.hpp"), Options{}));
    index.finalize();

    std::vector<Finding> out;
    tglint::runRules(index, Options{}, out);

    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].rule, "include-cycle");
    // Anchored on the cycle's lexicographically-smallest file, at its
    // include line.
    EXPECT_NE(out[0].file.find("cycle_a.hpp"), std::string::npos);
    EXPECT_EQ(out[0].line, 10);
    EXPECT_NE(out[0].message.find("cycle_b.hpp"), std::string::npos);
}

TEST(TglintTest, IncludeCycleNeedsBothFilesInIndex)
{
    // A single file whose include target is outside the index (system
    // header, unscanned tree) cannot form a cycle.
    EXPECT_TRUE(lintFixture("cycle_a.hpp").empty());
}

TEST(TglintTest, RawStringContentsAreNotTokens)
{
    // Plain, prefixed (u8R/LR), custom-delimited and multi-line raw
    // literals all wrap banned tokens; nothing may fire.
    EXPECT_TRUE(lintFixture("raw_string.cpp").empty());
}

TEST(TglintTest, DigitSeparatorsStayIntegral)
{
    EXPECT_TRUE(lintFixture("digit_sep.cpp").empty());
}

TEST(TglintTest, SkipSubstringExcludesFiles)
{
    Options opts;
    opts.skipSubstrings.push_back("banned_api");
    EXPECT_TRUE(lintFixture("banned_api.cpp", opts).empty());
}

TEST(TglintTest, RelaxedPathsDisableOnlyTheRelaxedRules)
{
    Options opts;
    opts.relaxedPathSubstrings.push_back("fixtures/");
    opts.relaxedRules.push_back("file-doc");
    EXPECT_TRUE(lintFixture("file_doc.cpp", opts).empty());
    // Other rules keep firing on relaxed paths.
    EXPECT_EQ(lintFixture("raw_new.cpp", opts).size(), 2u);
}

// ---------------------------------------------------------------------
// Baseline ratchet
// ---------------------------------------------------------------------

TEST(TglintBaselineTest, BaselinedFindingsPassNewOnesFail)
{
    auto fs = lintFixture("raw_new.cpp"); // 2 raw-new findings
    Baseline base;
    base.entries.push_back({"raw_new.cpp", "raw-new", 1});

    Report rep = tglint::applyBaseline(fs, base);
    EXPECT_EQ(rep.baselined.size(), 1u); // entry absorbs one
    ASSERT_EQ(rep.fresh.size(), 1u);     // the second is NEW -> fails
    EXPECT_EQ(rep.fresh[0].rule, "raw-new");
    EXPECT_TRUE(rep.stale.empty());
}

TEST(TglintBaselineTest, FullyBaselinedRunIsClean)
{
    auto fs = lintFixture("raw_new.cpp");
    Baseline base;
    base.entries.push_back({"raw_new.cpp", "raw-new", 2});

    Report rep = tglint::applyBaseline(fs, base);
    EXPECT_TRUE(rep.fresh.empty());
    EXPECT_EQ(rep.baselined.size(), 2u);
    EXPECT_TRUE(rep.stale.empty());
}

TEST(TglintBaselineTest, UnusedCapacityIsReportedStale)
{
    auto fs = lintFixture("raw_new.cpp");
    Baseline base;
    base.entries.push_back({"raw_new.cpp", "raw-new", 5});
    base.entries.push_back({"gone/file.cpp", "banned-api", 1});

    Report rep = tglint::applyBaseline(fs, base);
    EXPECT_TRUE(rep.fresh.empty());
    ASSERT_EQ(rep.stale.size(), 2u);
    EXPECT_EQ(rep.stale[0].file, "raw_new.cpp");
    EXPECT_EQ(rep.stale[0].count, 3); // 5 triaged, only 2 still fire
    EXPECT_EQ(rep.stale[1].file, "gone/file.cpp");
}

TEST(TglintBaselineTest, EntryPathMatchesAsSuffix)
{
    // Committed baselines use repo-relative paths; ctest and CI hand the
    // scanner absolute paths.  "fixtures/raw_new.cpp" must match
    // "<abs>/tests/tools/fixtures/raw_new.cpp".
    auto fs = lintFixture("raw_new.cpp");
    Baseline base;
    base.entries.push_back({"fixtures/raw_new.cpp", "raw-new", 2});
    EXPECT_TRUE(tglint::applyBaseline(fs, base).fresh.empty());

    // A suffix of the filename alone must NOT match.
    Baseline wrong;
    wrong.entries.push_back({"new.cpp", "raw-new", 2});
    EXPECT_EQ(tglint::applyBaseline(fs, wrong).fresh.size(), 2u);
}

TEST(TglintBaselineTest, LoadParsesSchemaAndEntries)
{
    const std::string path =
        ::testing::TempDir() + "/tglint_baseline_ok.json";
    {
        std::ofstream f(path);
        f << "{\n  \"schema\": \"tglint-baseline-v1\",\n"
             "  \"entries\": [\n"
             "    {\"file\": \"src/a.cpp\", \"rule\": \"raw-new\", "
             "\"count\": 2},\n"
             "    {\"file\": \"src/b.cpp\", \"rule\": \"banned-api\", "
             "\"count\": 1}\n  ]\n}\n";
    }
    Baseline base;
    std::string err;
    ASSERT_TRUE(tglint::loadBaseline(path, base, err)) << err;
    ASSERT_EQ(base.entries.size(), 2u);
    EXPECT_EQ(base.entries[0].file, "src/a.cpp");
    EXPECT_EQ(base.entries[0].rule, "raw-new");
    EXPECT_EQ(base.entries[0].count, 2);
    std::remove(path.c_str());
}

TEST(TglintBaselineTest, LoadRejectsWrongSchemaAndMalformedJson)
{
    const std::string path =
        ::testing::TempDir() + "/tglint_baseline_bad.json";
    Baseline base;
    std::string err;

    {
        std::ofstream f(path);
        f << "{\"schema\": \"tglint-baseline-v9\", \"entries\": []}";
    }
    EXPECT_FALSE(tglint::loadBaseline(path, base, err));
    EXPECT_NE(err.find("schema"), std::string::npos);

    {
        std::ofstream f(path);
        f << "{\"entries\": [";
    }
    EXPECT_FALSE(tglint::loadBaseline(path, base, err));

    EXPECT_FALSE(tglint::loadBaseline(path + ".missing", base, err));
    std::remove(path.c_str());
}

TEST(TglintBaselineTest, CommittedBaselineAdmitsNoFreshSrcFindings)
{
    // The acceptance gate of the ratchet itself: a finding the baseline
    // does not know about must surface as fresh.
    Baseline base;
    base.entries.push_back(
        {"tests/sim/event_fn_test.cpp", "hot-path-std-function", 2});
    std::vector<Finding> fs;
    fs.push_back({"/repo/src/sim/queue.cpp", 10, "pointer-keyed-order",
                  "restored pointer-keyed map"});
    Report rep = tglint::applyBaseline(fs, base);
    ASSERT_EQ(rep.fresh.size(), 1u);
    EXPECT_EQ(rep.fresh[0].rule, "pointer-keyed-order");
}

// ---------------------------------------------------------------------
// Report rendering
// ---------------------------------------------------------------------

TEST(TglintReportTest, ReportJsonCarriesAnnotationsAndStale)
{
    Report rep;
    rep.fresh.push_back({"a.cpp", 3, "raw-new", "msg"});
    rep.baselined.push_back({"b.cpp", 7, "banned-api", "old"});
    rep.stale.push_back({"gone.cpp", "tick-float", 2});
    rep.shardAnnotations.push_back({"c.cpp", 9, "g_x", "shared-guarded"});

    std::ostringstream os;
    tglint::printJson(rep, os);
    const std::string j = os.str();
    EXPECT_NE(j.find("\"count\":1"), std::string::npos);
    EXPECT_NE(j.find("\"baselinedCount\":1"), std::string::npos);
    EXPECT_NE(j.find("\"file\":\"gone.cpp\""), std::string::npos);
    EXPECT_NE(j.find("\"symbol\":\"g_x\""), std::string::npos);
    EXPECT_NE(j.find("\"kind\":\"shared-guarded\""), std::string::npos);
}

TEST(TglintReportTest, SarifSmoke)
{
    Report rep;
    rep.fresh.push_back({"src/a.cpp", 3, "raw-new", "fresh \"msg\""});
    rep.baselined.push_back({"src/b.cpp", 7, "banned-api", "old"});

    std::ostringstream os;
    tglint::printSarif(rep, os);
    const std::string s = os.str();

    EXPECT_NE(s.find("\"version\":\"2.1.0\""), std::string::npos);
    EXPECT_NE(s.find("sarif-2.1.0.json"), std::string::npos);
    EXPECT_NE(s.find("\"name\":\"tglint\""), std::string::npos);
    // Every rule in the catalogue is declared in the driver metadata.
    for (const std::string &rule : tglint::allRules())
        EXPECT_NE(s.find("\"id\":\"" + rule + "\""), std::string::npos)
            << rule;
    EXPECT_NE(s.find("\"baselineState\":\"new\""), std::string::npos);
    EXPECT_NE(s.find("\"baselineState\":\"unchanged\""), std::string::npos);
    EXPECT_NE(s.find("\"startLine\":3"), std::string::npos);
    // Quotes inside messages are escaped: the document stays valid JSON.
    EXPECT_NE(s.find("fresh \\\"msg\\\""), std::string::npos);
}

TEST(TglintReportTest, HumanReportSummarizesCounts)
{
    Report rep;
    rep.baselined.push_back({"b.cpp", 7, "banned-api", "old"});
    rep.shardAnnotations.push_back({"c.cpp", 9, "g_x", "local"});
    std::ostringstream os;
    tglint::printHuman(rep, os);
    EXPECT_NE(os.str().find("clean"), std::string::npos);
    EXPECT_NE(os.str().find("1 baselined"), std::string::npos);
    EXPECT_NE(os.str().find("1 shard annotation"), std::string::npos);
}

TEST(TglintTest, JsonOutputIsWellFormed)
{
    auto fs = lintFixture("raw_new.cpp");
    std::ostringstream os;
    tglint::printJson(fs, os);
    const std::string j = os.str();
    EXPECT_NE(j.find("\"count\":2"), std::string::npos);
    EXPECT_NE(j.find("\"rule\":\"raw-new\""), std::string::npos);
}

TEST(TglintTest, HumanOutputNamesFileLineRule)
{
    auto fs = lintFixture("file_doc.cpp");
    std::ostringstream os;
    tglint::printHuman(fs, os);
    EXPECT_NE(os.str().find("file_doc.cpp:1: [file-doc]"),
              std::string::npos);
}

} // namespace

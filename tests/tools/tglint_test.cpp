/**
 * @file
 * Unit tests for tglint: every rule must fire on its fixture, the
 * allow() escape hatch must silence findings, clean code must pass,
 * and rule disabling / output rendering must behave.
 */

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tglint.hpp"

namespace {

using tglint::Finding;
using tglint::Options;

std::string
fixture(const std::string &name)
{
    return std::string(TGLINT_FIXTURE_DIR) + "/" + name;
}

std::vector<Finding>
lintFixture(const std::string &name, const Options &opts = {})
{
    std::vector<Finding> out;
    EXPECT_TRUE(tglint::lintPath(fixture(name), opts, out))
        << "fixture unreadable: " << name;
    return out;
}

std::set<std::string>
rulesOf(const std::vector<Finding> &fs)
{
    std::set<std::string> r;
    for (const Finding &f : fs)
        r.insert(f.rule);
    return r;
}

TEST(TglintTest, BannedApiFixtureFires)
{
    auto fs = lintFixture("banned_api.cpp");
    EXPECT_EQ(rulesOf(fs), std::set<std::string>{"banned-api"});
    // rand, time, system_clock, getenv, srand.
    EXPECT_EQ(fs.size(), 5u);
}

TEST(TglintTest, UnorderedIterFixtureFires)
{
    auto fs = lintFixture("unordered_iter.cpp");
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].rule, "unordered-iter");
    EXPECT_NE(fs[0].message.find("table"), std::string::npos);
}

TEST(TglintTest, TickFloatFixtureFires)
{
    auto fs = lintFixture("tick_float.cpp");
    EXPECT_EQ(rulesOf(fs), std::set<std::string>{"tick-float"});
    EXPECT_EQ(fs.size(), 2u); // init form + static_cast form
}

TEST(TglintTest, RawNewFixtureFires)
{
    auto fs = lintFixture("raw_new.cpp");
    EXPECT_EQ(rulesOf(fs), std::set<std::string>{"raw-new"});
    EXPECT_EQ(fs.size(), 2u); // new + delete
}

TEST(TglintTest, FileDocFixtureFires)
{
    auto fs = lintFixture("file_doc.cpp");
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].rule, "file-doc");
    EXPECT_EQ(fs[0].line, 1);
}

TEST(TglintTest, HotStdFunctionFixtureFires)
{
    auto fs = lintFixture("hot_std_function.cpp");
    EXPECT_EQ(rulesOf(fs), std::set<std::string>{"hot-path-std-function"});
    // Member + parameter fire; the allow()-ed member is suppressed.
    EXPECT_EQ(fs.size(), 2u);
}

TEST(TglintTest, HotStdFunctionIgnoresColdNamespaces)
{
    // The OS / api layers may keep std::function: faults and setup are
    // not per-event paths.
    std::vector<Finding> out;
    tglint::lintSource("src/os/os_kernel.hpp",
                       "/** @file os */\n"
                       "#include <functional>\n"
                       "namespace tg::os {\n"
                       "using Policy = std::function<void(int)>;\n"
                       "}\n",
                       Options{}, out);
    EXPECT_TRUE(out.empty());
}

TEST(TglintTest, AllowCommentSuppressesEveryRule)
{
    // suppressed.cpp contains a banned call, a float->Tick cast, raw
    // new/delete and an unordered range-for — each carrying an allow().
    EXPECT_TRUE(lintFixture("suppressed.cpp").empty());
}

TEST(TglintTest, CleanFixtureIsClean)
{
    EXPECT_TRUE(lintFixture("clean.cpp").empty());
}

TEST(TglintTest, DisabledRuleIsSkipped)
{
    Options opts;
    opts.disabledRules.push_back("banned-api");
    EXPECT_TRUE(lintFixture("banned_api.cpp", opts).empty());
}

TEST(TglintTest, DirectoryScanCoversAllFixtures)
{
    std::vector<Finding> out;
    ASSERT_TRUE(tglint::lintPath(TGLINT_FIXTURE_DIR, Options{}, out));
    // Every rule in the catalogue is represented by some fixture finding.
    auto seen = rulesOf(out);
    for (const std::string &rule : tglint::allRules())
        EXPECT_TRUE(seen.count(rule)) << "no fixture fires rule " << rule;
    // Directory order must be deterministic: findings sorted by path.
    EXPECT_TRUE(std::is_sorted(out.begin(), out.end(),
                               [](const Finding &a, const Finding &b) {
                                   return a.file < b.file ||
                                          (a.file == b.file &&
                                           a.line < b.line);
                               }));
}

TEST(TglintTest, GetenvExemptPathIsAllowed)
{
    // The config loader is the one legal getenv site.
    std::vector<Finding> out;
    tglint::lintSource("src/sim/config.cpp",
                       "/** @file config */\n"
                       "const char *v = std::getenv(\"TG_SEED\");\n",
                       Options{}, out);
    EXPECT_TRUE(out.empty());
}

TEST(TglintTest, OrderInsensitiveNamespaceMayIterateUnordered)
{
    // node/ and os/ are outside the determinism contract: the same
    // range-for that fires in tg::net must pass in tg::node.
    std::vector<Finding> out;
    tglint::lintSource("src/node/cache.cpp",
                       "/** @file cache */\n"
                       "#include <unordered_map>\n"
                       "namespace tg::node {\n"
                       "int f() {\n"
                       "  std::unordered_map<int,int> m;\n"
                       "  int s = 0;\n"
                       "  for (auto &kv : m) s += kv.second;\n"
                       "  return s;\n"
                       "}\n"
                       "}\n",
                       Options{}, out);
    EXPECT_TRUE(out.empty());
}

TEST(TglintTest, JsonOutputIsWellFormed)
{
    auto fs = lintFixture("raw_new.cpp");
    std::ostringstream os;
    tglint::printJson(fs, os);
    const std::string j = os.str();
    EXPECT_NE(j.find("\"count\":2"), std::string::npos);
    EXPECT_NE(j.find("\"rule\":\"raw-new\""), std::string::npos);
}

TEST(TglintTest, HumanOutputNamesFileLineRule)
{
    auto fs = lintFixture("file_doc.cpp");
    std::ostringstream os;
    tglint::printHuman(fs, os);
    EXPECT_NE(os.str().find("file_doc.cpp:1: [file-doc]"),
              std::string::npos);
}

} // namespace

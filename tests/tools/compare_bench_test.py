#!/usr/bin/env python3
"""Unit tests for tools/compare_bench.py on fixture JSON.

Run directly or via ctest (compare_bench_unit).  Exercises both input
schemas and the missing-bench / missing-metric hard-fail paths added
after a bench that stopped emitting a gated counter slipped through CI.
"""

import json
import os
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
SCRIPT = os.path.join(REPO, "tools", "compare_bench.py")


def gb_doc(benches):
    """google-benchmark document: {name: {counter: value}}."""
    return {
        "benchmarks": [
            dict({"name": name, "run_type": "iteration"}, **counters)
            for name, counters in benches.items()
        ]
    }


def tg_doc(bench, metrics):
    """tg-bench-v1 document: [(name, value, unit), ...]."""
    return {
        "schema": "tg-bench-v1",
        "bench": bench,
        "metrics": [
            {"name": n, "value": v, "unit": u} for n, v, u in metrics
        ],
    }


def run_compare(tmpdir, baseline, candidate, *extra):
    bpath = os.path.join(tmpdir, "baseline.json")
    cpath = os.path.join(tmpdir, "candidate.json")
    with open(bpath, "w", encoding="utf-8") as fh:
        json.dump(baseline, fh)
    with open(cpath, "w", encoding="utf-8") as fh:
        json.dump(candidate, fh)
    proc = subprocess.run(
        [sys.executable, SCRIPT, bpath, cpath, *extra],
        capture_output=True,
        text=True,
    )
    return proc.returncode, proc.stdout + proc.stderr


FAILURES = []


def check(name, cond, detail=""):
    status = "ok" if cond else "FAIL"
    print(f"{status:4} {name}" + (f"  [{detail}]" if detail and not cond else ""))
    if not cond:
        FAILURES.append(name)


def main():
    with tempfile.TemporaryDirectory() as tmp:
        base = gb_doc(
            {
                "BM_A": {"items_per_second": 1000.0},
                "BM_B": {"events_per_s": 500.0},
            }
        )

        # Identical candidate passes.
        rc, out = run_compare(tmp, base, base)
        check("identical run passes", rc == 0, out)

        # A >threshold drop on a gated counter fails.
        worse = gb_doc(
            {
                "BM_A": {"items_per_second": 100.0},
                "BM_B": {"events_per_s": 500.0},
            }
        )
        rc, out = run_compare(tmp, base, worse)
        check("regression fails", rc == 1 and "regressed" in out, out)

        # A whole bench missing from the candidate must fail, not warn.
        dropped_bench = gb_doc({"BM_A": {"items_per_second": 1000.0}})
        rc, out = run_compare(tmp, base, dropped_bench)
        check(
            "missing bench fails",
            rc == 1 and "BM_B" in out and "missing" in out,
            out,
        )

        # A bench that stops emitting one gated counter must also fail.
        base_two = gb_doc(
            {"BM_A": {"items_per_second": 1000.0, "events_per_s": 800.0}}
        )
        dropped_metric = gb_doc({"BM_A": {"items_per_second": 1000.0}})
        rc, out = run_compare(tmp, base_two, dropped_metric)
        check(
            "missing metric fails",
            rc == 1 and "events_per_s" in out and "missing" in out,
            out,
        )

        # New benches in the candidate never fail.
        grown = gb_doc(
            {
                "BM_A": {"items_per_second": 1000.0},
                "BM_B": {"events_per_s": 500.0},
                "BM_NEW": {"events_per_s": 1.0},
            }
        )
        rc, out = run_compare(tmp, base, grown)
        check("new benches pass", rc == 0, out)

        # tg-bench-v1: rates gate on drops, latencies gate on increases.
        tbase = tg_doc("n1", [("goodput", 100.0, "MB/s"), ("p99", 10.0, "us")])
        rc, out = run_compare(tmp, tbase, tbase)
        check("tg schema identical passes", rc == 0, out)

        tlat = tg_doc("n1", [("goodput", 100.0, "MB/s"), ("p99", 20.0, "us")])
        rc, out = run_compare(tmp, tbase, tlat)
        check("tg latency increase fails", rc == 1, out)

        tmiss = tg_doc("n1", [("goodput", 100.0, "MB/s")])
        rc, out = run_compare(tmp, tbase, tmiss)
        check("tg missing metric fails", rc == 1 and "p99" in out, out)

        # Empty intersection without missing entries is an input error.
        rc, out = run_compare(tmp, gb_doc({}), gb_doc({}))
        check("no comparable metrics errors", rc == 2, out)

        # --metric-filter: a candidate that ran only one tier of the
        # baseline sweep (e.g. bench_collectives --nodes=64) passes when
        # the other tiers are filtered out of both sides...
        tcoll = tg_doc(
            "coll",
            [
                ("torus2d.n64.barrier.nic_us", 30.0, "us"),
                ("torus2d.n1024.barrier.nic_us", 90.0, "us"),
            ],
        )
        tcoll_64 = tg_doc(
            "coll", [("torus2d.n64.barrier.nic_us", 31.0, "us")]
        )
        rc, out = run_compare(tmp, tcoll, tcoll_64)
        check("subset tier without filter fails", rc == 1 and "n1024" in out, out)
        rc, out = run_compare(tmp, tcoll, tcoll_64, "--metric-filter=.n64.")
        check("metric filter passes subset tier", rc == 0, out)

        # ...but a regression inside the filtered window still fails.
        tcoll_bad = tg_doc(
            "coll", [("torus2d.n64.barrier.nic_us", 300.0, "us")]
        )
        rc, out = run_compare(
            tmp, tcoll, tcoll_bad, "--metric-filter=.n64."
        )
        check("metric filter still gates", rc == 1, out)

        # A filter matching nothing is an input error, not a silent pass.
        rc, out = run_compare(
            tmp, tcoll, tcoll_64, "--metric-filter=nonesuch"
        )
        check("vacuous filter errors", rc == 2, out)

        # Threshold flag is honored (40% drop passes at --threshold=0.5).
        half = gb_doc(
            {
                "BM_A": {"items_per_second": 600.0},
                "BM_B": {"events_per_s": 500.0},
            }
        )
        rc, out = run_compare(tmp, base, half, "--threshold=0.5")
        check("threshold flag honored", rc == 0, out)

    if FAILURES:
        print(f"\n{len(FAILURES)} check(s) failed: {', '.join(FAILURES)}")
        return 1
    print("\nall compare_bench checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

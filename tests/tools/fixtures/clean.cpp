/**
 * @file
 * tglint fixture: idiomatic, fully deterministic code — zero findings.
 */

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

using Tick = std::uint64_t;

namespace tg::net {

Tick
sumOrdered(const std::map<int, Tick> &table)
{
    Tick sum = 0;
    for (const auto &kv : table)
        sum += kv.second;
    return sum;
}

std::unique_ptr<std::vector<int>>
makeBuffer(std::size_t n)
{
    return std::make_unique<std::vector<int>>(n);
}

} // namespace tg::net

/**
 * @file
 * tglint lexer fixture: C++14 digit separators.  Separated integer
 * literals are single Number tokens — integral Tick arithmetic with
 * them must NOT fire tick-float, and the separator must not swallow an
 * adjacent character literal.
 */

#include <cstdint>

using Tick = std::uint64_t;

namespace tg::sim {

constexpr Tick kTicksPerUs = 1'000;
constexpr Tick kTicksPerSec = 1'000'000'000;
constexpr std::uint32_t kAddrMask = 0xff'ff'00'00;
constexpr unsigned kPage = 0x1'000;

inline Tick
toTicks(Tick us)
{
    return us * kTicksPerUs; // integral scaling: clean
}

inline char
sepThenCharLiteral()
{
    const int n = 1'000;
    const char c = 'x'; // must remain a separate char literal
    return n > 0 ? c : ' ';
}

} // namespace tg::sim

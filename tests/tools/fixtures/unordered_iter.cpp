/**
 * @file
 * tglint fixture: iterating an unordered container inside an
 * order-sensitive namespace (tg::net).  Find-only use is fine;
 * the range-for is the hazard.
 */

#include <cstdint>
#include <unordered_map>

namespace tg::net {

std::uint64_t
sumAll()
{
    std::unordered_map<int, std::uint64_t> table;
    table[1] = 10;
    std::uint64_t sum = 0;
    for (const auto &kv : table) // unordered-iter
        sum += kv.second;
    return sum;
}

} // namespace tg::net

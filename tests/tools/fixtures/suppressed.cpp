/**
 * @file
 * tglint fixture: every hazard carries an allow() justification, so the
 * file must lint clean.
 */

#include <cstdint>
#include <cstdlib>
#include <unordered_map>

using Tick = std::uint64_t;

namespace tg::net {

Tick
allSuppressed()
{
    // tglint: allow(banned-api)  fixture exercises same-line-above form
    int x = std::rand();
    Tick t = static_cast<Tick>(x * 0.5); // tglint: allow(tick-float)
    int *p = new int(1);                 // tglint: allow(raw-new) pool shim
    std::unordered_map<int, int> m;
    m[1] = 2;
    // tglint: allow(unordered-iter)  single-element table, order moot
    for (const auto &kv : m)
        t += kv.second;
    delete p; // tglint: allow(raw-new)
    return t;
}

} // namespace tg::net

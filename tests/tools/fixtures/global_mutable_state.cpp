/**
 * @file
 * tglint fixture: mutable state visible across shards.  Three findings
 * fire (namespace-scope variable, function-local static, static data
 * member); const / constexpr / thread_local declarations pass, and the
 * allow() and shard() escape hatches silence the rest.
 */

#include <cstdint>

namespace tg::sim {

int g_eventsFired = 0; // global-mutable-state

const int kLimit = 64;            // const: clean
constexpr std::uint64_t kMask = 0xff; // constexpr: clean
thread_local int tl_depth = 0;    // per-shard by construction: clean

// tglint: allow(global-mutable-state)  fixture exercises allow() form
int g_allowListed = 0;

int g_traceMask = 0; // tglint: shard(shared-guarded) setup-time only

std::uint64_t
nextSeq()
{
    static std::uint64_t seq = 0; // global-mutable-state
    return ++seq;
}

class Pool
{
  public:
    static inline int liveBlocks = 0; // global-mutable-state

  private:
    int _unused = 0;
};

} // namespace tg::sim

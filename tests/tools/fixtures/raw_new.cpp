/**
 * @file
 * tglint fixture: raw new / delete outside an allocator shim.
 */

int
leaky()
{
    int *p = new int(7); // raw-new
    int v = *p;
    delete p;            // raw-new
    return v;
}

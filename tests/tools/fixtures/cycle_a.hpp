/**
 * @file
 * tglint fixture (pair with cycle_b.hpp): two headers including each
 * other form the include cycle the include-cycle rule must report.
 */

#ifndef TGLINT_FIXTURE_CYCLE_A_HPP
#define TGLINT_FIXTURE_CYCLE_A_HPP

#include "cycle_b.hpp" // include-cycle (reported on the cycle's lead file)

namespace tg::net {
struct A
{
    int b = 0;
};
} // namespace tg::net

#endif // TGLINT_FIXTURE_CYCLE_A_HPP

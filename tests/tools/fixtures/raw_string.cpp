/**
 * @file
 * tglint lexer fixture: raw string literals.  Every banned token below
 * lives INSIDE a raw literal — plain, prefixed, custom-delimited and
 * multi-line — so the file must lint clean.  A lexer that mishandles
 * raw strings leaks `rand()` / `new` / unordered iteration into the
 * token stream and fires spurious findings.
 */

namespace tg::net {

const char *kPlain = R"(std::rand() time(nullptr) new int[4])";
const char *kPrefixed = u8R"(srand(42) delete p)";
const char *kWide = LR"(std::chrono::system_clock::now())";
const char *kDelimited = R"xy(quote " paren ) std::getenv("HOME"))xy";
const char *kMultiLine = R"(line one
for (auto &kv : table) std::rand();
line three)";

// Adjacency matters: a lone R identifier before a plain string is NOT a
// raw literal; the string body is still dropped like any literal.
inline int
R(const char *)
{
    return 0;
}
const int kNotRaw = R("plain string, not raw");

} // namespace tg::net

/**
 * @file
 * tglint fixture: floating-point arithmetic feeding a Tick value.
 */

#include <cstdint>

using Tick = std::uint64_t;

Tick
scaled(Tick base)
{
    Tick bad = 1.5;                          // tick-float
    bad += static_cast<Tick>(base * 0.75);   // tick-float
    return bad;
}

/**
 * @file
 * tglint fixture (pair with cycle_a.hpp): the back edge of the include
 * cycle.
 */

#ifndef TGLINT_FIXTURE_CYCLE_B_HPP
#define TGLINT_FIXTURE_CYCLE_B_HPP

#include "cycle_a.hpp"

namespace tg::net {
struct B
{
    int a = 0;
};
} // namespace tg::net

#endif // TGLINT_FIXTURE_CYCLE_B_HPP

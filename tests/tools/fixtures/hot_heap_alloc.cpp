/**
 * @file
 * tglint fixture: per-element-allocating containers in a hot-path
 * namespace (tg::net).  Every push on a deque/list is a heap allocation
 * on the packet path; the arena + ring-buffer storage discipline
 * (DESIGN.md section 14) exists precisely to remove those.
 */

#include <deque>
#include <list>

namespace tg::net {

struct Port
{
    std::deque<int> queue;                    // hot-path-heap-alloc
    std::list<long> retired;                  // hot-path-heap-alloc

    std::deque<int> slow; // tglint: allow(hot-path-heap-alloc)
};

} // namespace tg::net

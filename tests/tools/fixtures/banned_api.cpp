/**
 * @file
 * tglint fixture: every call here is a banned source of nondeterminism.
 */

#include <chrono>
#include <cstdlib>
#include <ctime>

int
entropy()
{
    int x = std::rand();                                  // banned-api
    x += static_cast<int>(time(nullptr));                 // banned-api
    auto t = std::chrono::system_clock::now();            // banned-api
    (void)t;
    const char *home = std::getenv("HOME");               // banned-api
    (void)home;
    std::srand(42);                                       // banned-api
    return x;
}

/**
 * @file
 * tglint fixture: std::function in a hot-path namespace (tg::hib).
 * Every schedule()d closure allocates through it, so the hot schedulers
 * must use tg::Fn / tg::Event instead.
 */

#include <functional>

namespace tg::hib {

struct Unit
{
    std::function<void()> onDone;                 // hot-path-std-function

    void arm(std::function<void(int)> cb);        // hot-path-std-function

    std::function<void()> allowed; // tglint: allow(hot-path-std-function)
};

} // namespace tg::hib

/**
 * @file
 * Fixture: raw ClusterSpec topology field writes (deprecated-api).
 */

struct TopoSpec
{
    int kind, nodes, nodesPerSwitch;
};
struct Spec
{
    TopoSpec topology;
};

int
build()
{
    Spec spec;
    spec.topology.nodes = 4;          // finding: raw field write
    spec.topology.kind = 1;           // finding: raw field write
    spec.topology.nodesPerSwitch = 2; // tglint: allow(deprecated-api)
    if (spec.topology.nodes == 4)     // comparison: no finding
        return spec.topology.kind;    // read: no finding
    return 0;
}

// Ordinary line comment, not a @file header: the file-doc rule fires.

int
undocumented()
{
    return 0;
}

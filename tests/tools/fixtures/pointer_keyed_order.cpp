/**
 * @file
 * tglint fixture: containers ordered by pointer values.  The pointer-
 * keyed map and set and the comparator-less pointer sort fire; keying
 * by a stable id, sorting through an explicit comparator, and the
 * allow() escape hatch pass.
 */

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

namespace tg::net {

struct Port
{
    std::uint32_t id = 0;
};

std::size_t
routeAll()
{
    std::map<Port *, int> credits; // pointer-keyed-order
    std::set<const Port *> blocked; // pointer-keyed-order

    std::map<std::uint32_t, Port *> byId; // stable key: clean

    std::vector<Port *> ports;
    std::sort(ports.begin(), ports.end()); // pointer-keyed-order
    std::sort(ports.begin(), ports.end(),
              [](const Port *a, const Port *b) {
                  return a->id < b->id; // explicit stable order: clean
              });

    // tglint: allow(pointer-keyed-order)  fixture exercises allow() form
    std::map<Port *, int> triaged;

    return credits.size() + blocked.size() + byId.size() + triaged.size();
}

} // namespace tg::net

/**
 * @file
 * Unit tests of the individual HIB building blocks (Table 1):
 * outstanding-op counter, counter cache, page counters, multicast list,
 * atomic unit, special-ops register file.
 */

#include <gtest/gtest.h>

#include "hib/atomic_unit.hpp"
#include "hib/counter_cache.hpp"
#include "hib/multicast_unit.hpp"
#include "hib/outstanding.hpp"
#include "hib/page_counters.hpp"
#include "hib/special_ops.hpp"
#include "node/main_memory.hpp"
#include "sim/system.hpp"

namespace tg::hib {
namespace {

// ---------------------------------------------------------------------
// Outstanding
// ---------------------------------------------------------------------

TEST(Outstanding, WaitersFireAtZero)
{
    System sys{Config{}};
    Outstanding o(sys, "o");
    int fired = 0;

    o.waitDrain([&] { ++fired; }); // already zero: immediate
    EXPECT_EQ(fired, 1);

    o.add(2);
    o.waitDrain([&] { ++fired; });
    EXPECT_EQ(fired, 1);
    o.complete();
    EXPECT_EQ(fired, 1);
    o.complete();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(o.peak(), 2u);
    EXPECT_EQ(o.total(), 2u);
}

TEST(OutstandingDeathTest, UnderflowPanics)
{
    System sys{Config{}};
    Outstanding o(sys, "o");
    EXPECT_DEATH(o.complete(), "outstanding");
}

// ---------------------------------------------------------------------
// CounterCache
// ---------------------------------------------------------------------

TEST(CounterCache, IncrementDecrementLifecycle)
{
    System sys{Config{}};
    CounterCache cc(sys, "cc", 4);
    int granted = 0;
    cc.increment(0x100, [&] { ++granted; });
    cc.increment(0x100, [&] { ++granted; });
    sys.events().run();
    EXPECT_EQ(granted, 2);
    EXPECT_EQ(cc.count(0x100), 2u);
    EXPECT_EQ(cc.used(), 1u);

    cc.decrement(0x100);
    EXPECT_EQ(cc.count(0x100), 1u);
    cc.decrement(0x100);
    EXPECT_EQ(cc.count(0x100), 0u);
    EXPECT_EQ(cc.used(), 0u); // slot freed at zero
}

TEST(CounterCache, FullCamStallsUntilDecrement)
{
    System sys{Config{}};
    CounterCache cc(sys, "cc", 2);
    int granted = 0;
    cc.increment(0x100, [&] { ++granted; });
    cc.increment(0x200, [&] { ++granted; });
    cc.increment(0x300, [&] { ++granted; }); // stalls
    sys.events().run();
    EXPECT_EQ(granted, 2);
    EXPECT_EQ(cc.stallEvents(), 1u);

    cc.decrement(0x100); // frees a slot -> waiter granted
    sys.events().run();
    EXPECT_EQ(granted, 3);
    EXPECT_EQ(cc.count(0x300), 1u);
}

TEST(CounterCache, ExistingEntryNeverStalls)
{
    System sys{Config{}};
    CounterCache cc(sys, "cc", 1);
    int granted = 0;
    cc.increment(0x100, [&] { ++granted; });
    cc.increment(0x100, [&] { ++granted; }); // same word: no new slot
    sys.events().run();
    EXPECT_EQ(granted, 2);
    EXPECT_EQ(cc.stallEvents(), 0u);
}

TEST(CounterCacheDeathTest, DecrementAbsentPanics)
{
    System sys{Config{}};
    CounterCache cc(sys, "cc", 2);
    EXPECT_DEATH(cc.decrement(0x999), "absent");
}

// ---------------------------------------------------------------------
// PageCounters
// ---------------------------------------------------------------------

TEST(PageCounters, AlarmOnTransitionToZero)
{
    System sys{Config{}};
    PageCounters pc(sys, "pc");
    pc.set(0x4000, /*reads=*/2, /*writes=*/1);

    EXPECT_FALSE(pc.onAccess(0x4000, false)); // reads: 2 -> 1
    EXPECT_TRUE(pc.onAccess(0x4000, false));  // reads: 1 -> 0: alarm
    EXPECT_FALSE(pc.onAccess(0x4000, false)); // saturated
    EXPECT_TRUE(pc.onAccess(0x4000, true));   // writes: 1 -> 0: alarm
    EXPECT_EQ(pc.alarms(), 2u);
    EXPECT_EQ(pc.accesses(), 4u);
}

TEST(PageCounters, UntrackedPagesNeverAlarm)
{
    System sys{Config{}};
    PageCounters pc(sys, "pc");
    EXPECT_FALSE(pc.onAccess(0x8000, true));
}

TEST(PageCounters, LargeValuesActAsProfilingCounters)
{
    System sys{Config{}};
    PageCounters pc(sys, "pc");
    pc.set(0x4000, 60000, 60000);
    for (int i = 0; i < 100; ++i)
        pc.onAccess(0x4000, i % 2 == 0);
    EXPECT_EQ(pc.get(0x4000).reads, 60000 - 50);
    EXPECT_EQ(pc.get(0x4000).writes, 60000 - 50);
}

// ---------------------------------------------------------------------
// MulticastUnit
// ---------------------------------------------------------------------

TEST(MulticastUnit, AddLookupRemove)
{
    System sys{Config{}};
    MulticastUnit mc(sys, "mc");
    mc.addEntry(0x2000, 1, 0x9000);
    mc.addEntry(0x2000, 2, 0xa000);
    ASSERT_NE(mc.lookup(0x2000), nullptr);
    EXPECT_EQ(mc.lookup(0x2000)->size(), 2u);
    EXPECT_EQ(mc.used(), 2u);

    mc.removeEntry(0x2000, 1);
    EXPECT_EQ(mc.lookup(0x2000)->size(), 1u);
    mc.removePage(0x2000);
    EXPECT_EQ(mc.lookup(0x2000), nullptr);
    EXPECT_EQ(mc.used(), 0u);
}

TEST(MulticastUnitDeathTest, CapacityIsFatal)
{
    Config cfg;
    cfg.multicastEntries = 2;
    System sys{cfg};
    MulticastUnit mc(sys, "mc");
    mc.addEntry(0x2000, 1, 0x9000);
    mc.addEntry(0x2000, 2, 0xa000);
    EXPECT_DEATH(mc.addEntry(0x3000, 1, 0xb000), "exhausted");
}

// ---------------------------------------------------------------------
// AtomicUnit
// ---------------------------------------------------------------------

class AtomicUnitTest : public ::testing::Test
{
  protected:
    AtomicUnitTest()
        : sys(Config{}), mem(sys, "mem"), au(sys, "au", mem)
    {
    }
    System sys;
    node::MainMemory mem;
    AtomicUnit au;
};

TEST_F(AtomicUnitTest, FetchAndStore)
{
    mem.write(0x100, 7);
    Word old = 99;
    au.request(net::AtomicOp::FetchAndStore, 0x100, 42, 0,
               [&](Word v) { old = v; });
    sys.events().run();
    EXPECT_EQ(old, 7u);
    EXPECT_EQ(mem.read(0x100), 42u);
}

TEST_F(AtomicUnitTest, FetchAndInc)
{
    Word old = 99;
    au.request(net::AtomicOp::FetchAndInc, 0x100, 5, 0,
               [&](Word v) { old = v; });
    sys.events().run();
    EXPECT_EQ(old, 0u);
    EXPECT_EQ(mem.read(0x100), 5u);
}

TEST_F(AtomicUnitTest, CompareAndSwap)
{
    mem.write(0x100, 10);
    Word old = 0;
    au.request(net::AtomicOp::CompareAndSwap, 0x100, 10, 20,
               [&](Word v) { old = v; });
    sys.events().run();
    EXPECT_EQ(old, 10u);
    EXPECT_EQ(mem.read(0x100), 20u); // swapped

    au.request(net::AtomicOp::CompareAndSwap, 0x100, 10, 30,
               [&](Word v) { old = v; });
    sys.events().run();
    EXPECT_EQ(old, 20u);
    EXPECT_EQ(mem.read(0x100), 20u); // compare failed: unchanged
}

TEST_F(AtomicUnitTest, OperationsSerialize)
{
    // 10 concurrent fetch&incs: final value exactly 10, each op charged.
    for (int i = 0; i < 10; ++i)
        au.request(net::AtomicOp::FetchAndInc, 0x100, 1, 0, [](Word) {});
    sys.events().run();
    EXPECT_EQ(mem.read(0x100), 10u);
    EXPECT_EQ(sys.now(), 10 * sys.config().hibAtomic);
    EXPECT_EQ(au.executed(), 10u);
}

// ---------------------------------------------------------------------
// SpecialOpsUnit
// ---------------------------------------------------------------------

TEST(SpecialOpsUnit, ContextAssemblyAndLaunchArgs)
{
    System sys{Config{}};
    SpecialOpsUnit so(sys, "so");
    so.assignKey(3, 0xabcd);

    const PAddr base = SpecialOpsUnit::contextRegBase(3);
    EXPECT_TRUE(so.ctxWrite(base + node::kCtxOp,
                            static_cast<Word>(SpecialOp::FetchInc)));
    EXPECT_TRUE(so.ctxWrite(base + node::kCtxDatum, 5));
    EXPECT_TRUE(so.shadowCapture(0x1234560, shadowStoreArg(3, false, 0xabcd)));

    const LaunchArgs a = so.args(3);
    EXPECT_EQ(a.op, SpecialOp::FetchInc);
    EXPECT_EQ(a.datum, 5u);
    EXPECT_EQ(a.srcPa, 0x1234560u);
    EXPECT_TRUE(a.srcValid);

    std::uint32_t idx = 0;
    EXPECT_TRUE(so.isGo(base + node::kCtxGo, idx));
    EXPECT_EQ(idx, 3u);
    so.consume(3);
    EXPECT_FALSE(so.args(3).srcValid);
}

TEST(SpecialOpsUnit, WrongKeyIsRejectedAndCounted)
{
    System sys{Config{}};
    SpecialOpsUnit so(sys, "so");
    so.assignKey(1, 0x1111);
    EXPECT_FALSE(so.shadowCapture(0x100, shadowStoreArg(1, false, 0x2222)));
    EXPECT_EQ(so.keyViolations(), 1u);
    EXPECT_FALSE(so.args(1).srcValid);
}

TEST(SpecialOpsUnit, SpecialModeCapturesTwoAddresses)
{
    System sys{Config{}};
    SpecialOpsUnit so(sys, "so");
    so.setSpecialMode(true);
    so.specialRegWrite(node::kRegSpecialOp,
                       static_cast<Word>(SpecialOp::Copy));
    so.specialRegWrite(node::kRegSpecialDatum, 64);
    so.captureAddress(0xaaa0);
    so.captureAddress(0xbbb0);

    const LaunchArgs a = so.specialArgs();
    EXPECT_EQ(a.op, SpecialOp::Copy);
    EXPECT_EQ(a.srcPa, 0xaaa0u);
    EXPECT_EQ(a.dstPa, 0xbbb0u);
    EXPECT_TRUE(a.srcValid && a.dstValid);

    so.resetSpecial();
    EXPECT_FALSE(so.specialMode());
    EXPECT_FALSE(so.specialArgs().srcValid);
}

} // namespace
} // namespace tg::hib

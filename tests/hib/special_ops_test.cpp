/**
 * @file
 * Tests of special-operation launching (paper sections 2.2.4-2.2.5):
 * all three launch paths produce correct results; Telegraphos II
 * contexts survive preemption; keys reject forgers; Telegraphos I
 * sequences are protected by PAL preemption-disable.
 */

#include <gtest/gtest.h>

#include "api/cluster.hpp"
#include "api/context.hpp"
#include "api/segment.hpp"

namespace tg {
namespace {

class LaunchModes
    : public ::testing::TestWithParam<std::pair<Prototype, LaunchMode>>
{
};

TEST_P(LaunchModes, AtomicsWorkThroughEveryLaunchPath)
{
    const auto [proto, mode] = GetParam();
    ClusterSpec spec = ClusterSpec::star(2);
    spec.config.prototype = proto;
    Cluster c(spec);
    Segment &seg = c.allocShared("s", 8192, 0);
    seg.poke(0, 5);

    c.spawn(1, [&, mode](Ctx &ctx) -> Task<void> {
        ctx.setLaunchMode(mode);
        EXPECT_EQ(co_await ctx.fetchAdd(seg.word(0), 3), 5u);
        EXPECT_EQ(co_await ctx.fetchStore(seg.word(1), 77), 0u);
        EXPECT_EQ(co_await ctx.cas(seg.word(1), 77, 88), 77u);
        EXPECT_EQ(co_await ctx.cas(seg.word(1), 77, 99), 88u); // fails
    });
    c.run(60'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
    EXPECT_FALSE(c.anyKilled());
    EXPECT_EQ(seg.peek(0), 8u);
    EXPECT_EQ(seg.peek(1), 88u);
}

INSTANTIATE_TEST_SUITE_P(
    AllPaths, LaunchModes,
    ::testing::Values(
        std::make_pair(Prototype::TelegraphosI, LaunchMode::Pal),
        std::make_pair(Prototype::TelegraphosI, LaunchMode::OsTrap),
        std::make_pair(Prototype::TelegraphosII, LaunchMode::Contexts),
        std::make_pair(Prototype::TelegraphosII, LaunchMode::OsTrap)),
    [](const auto &info) {
        std::string n = info.param.first == Prototype::TelegraphosI
                            ? "TeleI_"
                            : "TeleII_";
        switch (info.param.second) {
          case LaunchMode::Pal: return n + "Pal";
          case LaunchMode::Contexts: return n + "Contexts";
          case LaunchMode::OsTrap: return n + "OsTrap";
          default: return n + "Default";
        }
    });

TEST(SpecialOps, ContextsSurvivePreemption)
{
    // Two compute-heavy threads share node 1's CPU with a small quantum;
    // the launching thread is preempted mid-sequence, but the Telegraphos
    // context preserves its arguments (section 2.2.4).
    ClusterSpec spec = ClusterSpec::star(2);
    spec.config.prototype = Prototype::TelegraphosII;
    spec.config.cpuQuantum = 3000; // preempt aggressively
    Cluster c(spec);
    Segment &seg = c.allocShared("s", 8192, 0);

    bool ok = false;
    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        for (int i = 0; i < 20; ++i) {
            const Word old = co_await ctx.fetchAdd(seg.word(0), 1);
            if (old != Word(i))
                co_return;
        }
        ok = true;
    });
    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        // Interference: keeps stealing the CPU.
        for (int i = 0; i < 400; ++i)
            co_await ctx.compute(2000);
    });
    c.run(200'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
    EXPECT_TRUE(ok);
    EXPECT_EQ(seg.peek(0), 20u);
    EXPECT_GT(c.node(1).cpu().contextSwitches(), 0u);
}

TEST(SpecialOps, ForgedKeyIsRejected)
{
    ClusterSpec spec = ClusterSpec::star(2);
    Cluster c(spec);
    Segment &seg = c.allocShared("s", 8192, 0);

    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        // Forge a capture into context 0 with a bogus key: the HIB must
        // drop it (authenticity, section 2.2.5).
        co_await ctx.write(shadowOf(seg.word(0)),
                           hib::shadowStoreArg(0, false, 0xbad));
        co_await ctx.fence();
    });
    c.run(10'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
    EXPECT_EQ(c.hibOf(1).specialOps().keyViolations(), 1u);
}

TEST(SpecialOps, ShadowStoreToUnmappedAddressKills)
{
    // "an application that attempts to write to a Telegraphos context it
    // is not allowed to, will immediately take a page fault" — same for
    // shadow space without a base mapping.
    ClusterSpec spec = ClusterSpec::star(2);
    Cluster c(spec);
    c.allocShared("s", 8192, 0);

    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        co_await ctx.write(shadowOf(0x7777'0000), 1);
    });
    c.run(10'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
    EXPECT_TRUE(c.anyKilled());
}

TEST(SpecialOps, PalDisablesPreemptionDuringSequence)
{
    // With PAL protection, the Telegraphos I sequence is atomic even
    // under aggressive time slicing (the paper's whole point for using
    // PAL code).
    ClusterSpec spec = ClusterSpec::star(2);
    spec.config.prototype = Prototype::TelegraphosI;
    spec.config.cpuQuantum = 3000;
    Cluster c(spec);
    Segment &seg = c.allocShared("s", 8192, 0);

    bool ok = false;
    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        for (int i = 0; i < 10; ++i) {
            const Word old = co_await ctx.fetchAdd(seg.word(0), 1);
            if (old != Word(i))
                co_return;
        }
        ok = true;
    });
    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        for (int i = 0; i < 200; ++i)
            co_await ctx.compute(2000);
    });
    c.run(200'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
    EXPECT_TRUE(ok);
    EXPECT_EQ(seg.peek(0), 10u);
}

TEST(SpecialOps, FlashPidWorksWithOsSupport)
{
    // FLASH-style launches are correct when the OS saves/restores the
    // PID register on every context switch (section 2.2.5).
    ClusterSpec spec = ClusterSpec::star(2);
    spec.config.cpuQuantum = 3000;
    Cluster c(spec);
    c.enableFlashOsSupport();
    Segment &seg = c.allocShared("s", 8192, 0);

    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        ctx.setLaunchMode(LaunchMode::FlashPid);
        for (int i = 0; i < 10; ++i)
            co_await ctx.fetchAdd(seg.word(0), 1);
    });
    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        for (int i = 0; i < 200; ++i)
            co_await ctx.compute(2000);
    });
    c.run(200'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
    EXPECT_EQ(seg.peek(0), 10u);
}

TEST(SpecialOps, FlashPidSilentlyMisfiresOnStockOs)
{
    // Without the modified OS the PID register names the wrong context:
    // the shadow store lands elsewhere and the launch loses its target —
    // exactly why Telegraphos uses keys ("most potential Telegraphos
    // users just want a device driver", section 2.2.5).
    ClusterSpec spec = ClusterSpec::star(2);
    Cluster c(spec);
    Segment &seg = c.allocShared("s", 8192, 0);

    // Some other process occupies context 0...
    c.spawn(1, [](Ctx &ctx) -> Task<void> { co_await ctx.compute(100); });
    // ...so this launcher (context 1) never matches the stale PID of 0.
    Word got = 999;
    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        ctx.setLaunchMode(LaunchMode::FlashPid);
        got = co_await ctx.fetchAdd(seg.word(0), 1);
    });
    c.run(200'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
    EXPECT_EQ(seg.peek(0), 0u); // the increment never happened
    EXPECT_EQ(got, 0u);         // and the launch returned a junk result
}

TEST(SpecialOps, CopyLaunchIsNonBlocking)
{
    ClusterSpec spec = ClusterSpec::star(2);
    Cluster c(spec);
    Segment &src = c.allocShared("src", 8192, 0);
    Segment &dst = c.allocShared("dst", 8192, 1);
    src.poke(0, 123);

    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        const Tick t0 = ctx.now();
        co_await ctx.copy(src.word(0), dst.word(0), 8);
        const Tick launch = ctx.now() - t0;
        // "it returns control to the processor without waiting for the
        // completion of the operation" (2.2.2): launching is much
        // cheaper than a blocking remote read (~7 us).
        EXPECT_LT(launch, 6000u);
        co_await ctx.fence();
        EXPECT_EQ(co_await ctx.read(dst.word(0)), 123u);
    });
    c.run(60'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
}

} // namespace
} // namespace tg

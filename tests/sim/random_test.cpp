/**
 * @file
 * Unit tests of the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <set>

#include "sim/random.hpp"

namespace tg {
namespace {

TEST(Rng, SameSeedSameStream)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 5);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, BelowCoversRange)
{
    Rng r(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(r.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(3);
    bool lo = false, hi = false;
    for (int i = 0; i < 1000; ++i) {
        const auto v = r.range(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        lo |= (v == -2);
        hi |= (v == 2);
    }
    EXPECT_TRUE(lo);
    EXPECT_TRUE(hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceIsCalibrated)
{
    Rng r(13);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += r.chance(0.3);
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Rng, ExponentialHasRequestedMean)
{
    Rng r(17);
    double sum = 0;
    for (int i = 0; i < 20000; ++i)
        sum += r.exponential(50.0);
    EXPECT_NEAR(sum / 20000, 50.0, 2.0);
}

TEST(Rng, ForkIsIndependentButDeterministic)
{
    Rng a(5);
    Rng fork1 = a.fork();
    Rng b(5);
    Rng fork2 = b.fork();
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(fork1.next(), fork2.next());
}

} // namespace
} // namespace tg

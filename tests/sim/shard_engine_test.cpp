/**
 * @file
 * Unit tests of the barrier-epoch PDES engine (tg::ShardedEngine).
 *
 * The suite pins the determinism contract at the engine level with a
 * synthetic LP workload (token rings + local self-traffic): the merged
 * trace hash, executed-event count and epoch count must be identical at
 * every shard count and every worker-thread count.  Suite names carry
 * "Shard" so the tsan CI preset (filter Event|Ladder|TraceHash|Shard)
 * races the multi-threaded legs under ThreadSanitizer.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/sharded_engine.hpp"

namespace tg {
namespace {

TEST(ShardPlan, ContiguousBalancedBlocks)
{
    const ShardPlan p = ShardPlan::contiguous(10, 4);
    ASSERT_EQ(p.shards, 4u);
    ASSERT_EQ(p.lps(), 10u);

    // Monotone non-decreasing map => contiguous blocks.
    for (std::size_t lp = 1; lp < p.lps(); ++lp)
        EXPECT_LE(p.lpShard[lp - 1], p.lpShard[lp]);

    // Balanced: block sizes differ by at most one and every shard is
    // non-empty.
    std::vector<int> sizes(p.shards, 0);
    for (std::uint32_t s : p.lpShard)
        ++sizes[s];
    int lo = sizes[0], hi = sizes[0];
    for (int s : sizes) {
        lo = std::min(lo, s);
        hi = std::max(hi, s);
    }
    EXPECT_GE(lo, 1);
    EXPECT_LE(hi - lo, 1);
}

TEST(ShardPlan, ContiguousClampsShardCount)
{
    EXPECT_EQ(ShardPlan::contiguous(3, 8).shards, 3u);
    EXPECT_EQ(ShardPlan::contiguous(3, 0).shards, 1u);
    EXPECT_EQ(ShardPlan::contiguous(0, 4).shards, 1u);
    const ShardPlan p = ShardPlan::contiguous(5, 1);
    for (std::uint32_t s : p.lpShard)
        EXPECT_EQ(s, 0u);
}

TEST(ShardEngine, SingleShardFiresInOrder)
{
    ShardedEngine eng(ShardPlan::contiguous(1, 1), {.epochTicks = 10});
    std::vector<int> order;
    eng.schedule(0, 25, Event([&] { order.push_back(2); }));
    eng.schedule(0, 5, Event([&] { order.push_back(1); }));
    eng.schedule(0, 25, Event([&] { order.push_back(3); })); // same tick: seq order
    EXPECT_EQ(eng.run(), 3u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eng.executed(), 3u);
}

TEST(ShardEngine, RunStopsAtMaxTick)
{
    ShardedEngine eng(ShardPlan::contiguous(2, 2), {.epochTicks = 100});
    int fired = 0;
    eng.schedule(0, 50, Event([&] { ++fired; }));
    eng.schedule(1, 5'000'000, Event([&] { ++fired; }));
    eng.run(1000);
    EXPECT_EQ(fired, 1);
}

TEST(ShardEngine, EpochSkipJumpsIdleStretches)
{
    // Two events 10^7 ticks apart with a lookahead of 100 must take a
    // handful of epochs, not 10^5: the coordinator re-bases onto the
    // epoch holding the next pending event.
    ShardedEngine eng(ShardPlan::contiguous(2, 2), {.epochTicks = 100});
    int fired = 0;
    eng.schedule(0, 1, Event([&] { ++fired; }));
    eng.schedule(1, 10'000'000, Event([&] { ++fired; }));
    EXPECT_EQ(eng.run(), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_LE(eng.epochs(), 4u);
}

TEST(ShardEngine, CrossShardDrainFollowsCanonicalOrder)
{
    // Three source LPs on distinct shards all send to LP 0 at the same
    // tick.  Delivery order must be (dstLp, srcLp, srcIdx) — source-LP
    // index order, then per-source FIFO — regardless of which shard
    // staged first.
    constexpr Tick kL = 50;
    ShardedEngine eng(ShardPlan::contiguous(4, 4), {.epochTicks = kL});
    std::vector<int> order;
    for (LpId src = 1; src <= 3; ++src) {
        // Stagger the send times within one epoch (the when of the
        // staged message is what matters, not the staging moment).
        eng.schedule(src, 4 - src, Event([&eng, &order, src] {
                         const Tick at = 2 * kL;
                         eng.send(src, 0, at, Event([&order, src] {
                                      order.push_back(int(src) * 10);
                                  }));
                         eng.send(src, 0, at, Event([&order, src] {
                                      order.push_back(int(src) * 10 + 1);
                                  }));
                     }));
    }
    eng.run();
    EXPECT_EQ(order, (std::vector<int>{10, 11, 20, 21, 30, 31}));
}

// ---------------------------------------------------------------------
// Determinism: token rings + local self-traffic, every (shards, threads)
// combination must produce the same merged digest.
// ---------------------------------------------------------------------

struct RingResult
{
    std::uint64_t hash;
    std::uint64_t traceLen;
    std::uint64_t executed;
    std::uint64_t epochs;
};

RingResult
runTokenRings(std::uint32_t shards, std::uint32_t threads)
{
    constexpr std::uint32_t kLps = 8;
    constexpr Tick kL = 64;
    constexpr int kHops = 200;

    auto eng = std::make_shared<ShardedEngine>(
        ShardPlan::contiguous(kLps, shards),
        ShardedEngine::Options{kL, threads});

    // One token starts on every LP and circles the ring; each arrival
    // also schedules a local echo event two ticks later.
    struct Hop
    {
        std::shared_ptr<ShardedEngine> eng;
        LpId lp;
        int hop;
        Tick at;

        void
        operator()() const
        {
            audit::TraceHash &h = eng->lpTrace(lp);
            h.mix(lp);
            h.mix(std::uint64_t(hop));
            h.mix(at);
            auto &e = *eng;
            e.schedule(lp, at + 2, Event([h2 = &e.lpTrace(lp), lp = lp] {
                           h2->mix(0xEC0ULL + lp);
                       }));
            if (hop < kHops) {
                const LpId next = (lp + 1) % kLps;
                const Tick then = at + kL;
                e.send(lp, next, then,
                       Event(Hop{eng, next, hop + 1, then}));
            }
        }
    };

    for (LpId lp = 0; lp < kLps; ++lp) {
        const Tick t0 = lp + 1;
        eng->schedule(lp, t0, Event(Hop{eng, lp, 0, t0}));
    }
    eng->run();
    return RingResult{eng->mergedTraceHash(), eng->mergedTraceLength(),
                      eng->executed(), eng->epochs()};
}

TEST(ShardEngine, TraceHashInvariantAcrossShardCounts)
{
    const RingResult one = runTokenRings(1, 1);
    ASSERT_GT(one.traceLen, 0u);
    for (std::uint32_t shards : {2u, 4u, 8u}) {
        const RingResult r = runTokenRings(shards, 1);
        EXPECT_EQ(r.hash, one.hash) << "shards=" << shards;
        EXPECT_EQ(r.traceLen, one.traceLen) << "shards=" << shards;
        EXPECT_EQ(r.executed, one.executed) << "shards=" << shards;
        EXPECT_EQ(r.epochs, one.epochs) << "shards=" << shards;
    }
}

TEST(ShardEngine, TraceHashInvariantAcrossThreadCounts)
{
    const RingResult base = runTokenRings(4, 1);
    for (std::uint32_t threads : {2u, 4u}) {
        const RingResult r = runTokenRings(4, threads);
        EXPECT_EQ(r.hash, base.hash) << "threads=" << threads;
        EXPECT_EQ(r.executed, base.executed) << "threads=" << threads;
    }
}

TEST(ShardEngine, MergedLedgerSumsPerLpLedgers)
{
    ShardedEngine eng(ShardPlan::contiguous(4, 2), {.epochTicks = 10});
    eng.schedule(0, 1, Event([&] {
                     eng.lpLedger(0).onInjected();
                     eng.lpLedger(0).onDelivered();
                 }));
    eng.schedule(3, 1, Event([&] {
                     eng.lpLedger(3).onInjected();
                     eng.lpLedger(3).onDropped();
                 }));
    eng.run();
    const audit::PacketLedger sum = eng.mergedLedger();
    EXPECT_EQ(sum.injected, 2u);
    EXPECT_EQ(sum.delivered, 1u);
    EXPECT_EQ(sum.dropped, 1u);
    EXPECT_TRUE(sum.quiescent());
}

} // namespace
} // namespace tg

/**
 * @file
 * Unit tests of the coroutine Task type (lazy start, nesting via
 * symmetric transfer, values, exceptions, completion callbacks).
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/task.hpp"

namespace tg {
namespace {

Task<int>
fortyTwo()
{
    co_return 42;
}

Task<int>
addOne(int x)
{
    co_return x + 1;
}

Task<int>
nested()
{
    const int a = co_await fortyTwo();
    const int b = co_await addOne(a);
    co_return b;
}

Task<void>
throws()
{
    throw std::runtime_error("boom");
    co_return;
}

TEST(Task, LazyUntilStarted)
{
    bool ran = false;
    auto make = [&]() -> Task<void> {
        ran = true;
        co_return;
    };
    Task<void> t = make();
    EXPECT_FALSE(ran);
    bool done = false;
    t.start([&] { done = true; });
    EXPECT_TRUE(ran);
    EXPECT_TRUE(done);
}

TEST(Task, ValueIsReturned)
{
    Task<int> t = fortyTwo();
    bool done = false;
    t.start([&] { done = true; });
    ASSERT_TRUE(done);
    EXPECT_EQ(t.result(), 42);
}

TEST(Task, NestedAwaitsCompleteSynchronouslyWhenNothingSuspends)
{
    Task<int> t = nested();
    bool done = false;
    t.start([&] { done = true; });
    ASSERT_TRUE(done);
    EXPECT_EQ(t.result(), 43);
}

TEST(Task, DeepNestingDoesNotBlowUp)
{
    // Sequential child awaits must not accumulate stack quadratically.
    // (Kept moderate: GCC's debug/ASAN builds do not tail-call the
    // symmetric transfer, so each await costs a bounded stack frame.)
    auto chain = [](int depth) -> Task<int> {
        int acc = 0;
        for (int i = 0; i < depth; ++i)
            acc += co_await addOne(0);
        co_return acc;
    };
    Task<int> t = chain(8'000);
    bool done = false;
    t.start([&] { done = true; });
    ASSERT_TRUE(done);
    EXPECT_EQ(t.result(), 8'000);
}

TEST(Task, ExceptionsPropagateToResult)
{
    Task<void> t = throws();
    bool done = false;
    t.start([&] { done = true; });
    ASSERT_TRUE(done); // final suspend still reached
    EXPECT_THROW(t.result(), std::runtime_error);
}

TEST(Task, ExceptionsPropagateThroughAwait)
{
    auto outer = []() -> Task<int> {
        try {
            co_await throws();
        } catch (const std::runtime_error &) {
            co_return 7;
        }
        co_return 0;
    };
    Task<int> t = outer();
    t.start([] {});
    EXPECT_EQ(t.result(), 7);
}

TEST(Task, MoveTransfersOwnership)
{
    Task<int> a = fortyTwo();
    Task<int> b = std::move(a);
    EXPECT_FALSE(a.valid());
    ASSERT_TRUE(b.valid());
    b.start([] {});
    EXPECT_EQ(b.result(), 42);
}

TEST(Task, DestroyingUnstartedTaskIsSafe)
{
    {
        Task<int> t = fortyTwo();
        (void)t;
    }
    SUCCEED();
}

} // namespace
} // namespace tg

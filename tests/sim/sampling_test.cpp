/**
 * @file
 * Scale-proof observability tests (DESIGN.md section 14.4): deterministic
 * 1-in-N trace sampling, bounded tracer memory, and the sampler's
 * spill-to-sketch quantiles.
 *
 * The sampling contract: the sampled subset is a pure function of the
 * operation id (hashed, not modulo), operation ids are consumed whether
 * or not an operation is sampled, and recording never perturbs the
 * simulated schedule — so the audit trace hash is invariant across
 * tracing off / full tracing / any sampling shift.
 */

#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "api/cluster.hpp"
#include "api/context.hpp"
#include "api/segment.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"

namespace {

using namespace tg;

struct SampledRun
{
    std::uint64_t hash = 0;
    Tick end = 0;
    std::uint64_t opsBegun = 0;
    std::uint64_t events = 0;
};

/** Mixed workload at a given sampling shift (shift 0 = trace all,
 *  tracing off when @p traced is false). */
SampledRun
runWorkload(std::uint64_t seed, bool traced, std::uint32_t shift)
{
    ClusterSpec spec = ClusterSpec::star(3)
                           .seed(seed)
                           .trace(traced)
                           .traceSample(shift);
    Cluster c(spec);
    Segment &seg = c.allocShared("data", 8192, 0);

    for (NodeId n = 1; n <= 2; ++n) {
        c.spawn(n, [&seg, n](Ctx &ctx) -> Task<void> {
            for (int i = 0; i < 24; ++i)
                co_await ctx.write(seg.word(std::size_t(n) * 24 + i),
                                   Word(i));
            co_await ctx.fence();
            for (int i = 0; i < 6; ++i)
                (void)co_await ctx.read(seg.word(std::size_t(n) * 24 + i));
            co_await ctx.fetchAdd(seg.word(0), 1);
            co_await ctx.fence();
        });
    }

    SampledRun r;
    r.end = c.run();
    r.hash = c.traceHash();
    r.opsBegun = c.tracer().opsBegun();
    r.events = c.tracer().events().size();
    return r;
}

TEST(Sampling, TraceHashInvariantAcrossShiftsAndTracingOff)
{
    const SampledRun off = runWorkload(99, false, 0);
    const SampledRun full = runWorkload(99, true, 0);
    const SampledRun half = runWorkload(99, true, 1);
    const SampledRun eighth = runWorkload(99, true, 3);

    EXPECT_EQ(full.hash, off.hash);
    EXPECT_EQ(half.hash, off.hash);
    EXPECT_EQ(eighth.hash, off.hash);
    EXPECT_EQ(full.end, off.end);
    EXPECT_EQ(half.end, off.end);
    EXPECT_EQ(eighth.end, off.end);
}

TEST(Sampling, OpIdsConsumedIndependentOfShift)
{
    const SampledRun full = runWorkload(7, true, 0);
    const SampledRun sampled = runWorkload(7, true, 2);

    // Numbering is schedule-coupled, not sampling-coupled: every op
    // consumes an id whether or not it is recorded.
    EXPECT_EQ(sampled.opsBegun, full.opsBegun);
    EXPECT_GT(full.opsBegun, 0u);
    // The sampled run records strictly less raw event data.
    EXPECT_LT(sampled.events, full.events);
}

TEST(Sampling, SubsetIsPureFunctionOfId)
{
    // sampled() is static and seed-free: the kept subset for a given
    // shift is identical no matter who asks, which makes it shard- and
    // run-invariant by construction.
    std::set<std::uint64_t> kept2;
    for (std::uint64_t id = 1; id <= 4096; ++id) {
        if (trace::Tracer::sampled(id, 2))
            kept2.insert(id);
    }
    // Roughly 1 in 4 (hashed, so not exact), and never empty.
    EXPECT_GT(kept2.size(), 4096u / 8);
    EXPECT_LT(kept2.size(), 4096u / 2);
    // Shift 0 keeps everything; deeper shifts keep nested subsets of
    // measure 2^-shift on average.
    EXPECT_TRUE(trace::Tracer::sampled(12345, 0));
    std::size_t kept4 = 0;
    for (std::uint64_t id = 1; id <= 4096; ++id)
        kept4 += trace::Tracer::sampled(id, 4);
    EXPECT_GT(kept4, 0u);
    EXPECT_LT(kept4, kept2.size());
}

TEST(Sampling, TracerMemoryStaysBoundedUnderCaps)
{
    ClusterSpec spec = ClusterSpec::star(3).seed(5).trace(true);
    Cluster c(spec);
    Segment &seg = c.allocShared("data", 65536, 0);
    // Tiny caps so a modest workload overflows every bound.
    c.tracer().setRetainedEventCap(256);
    c.tracer().setOpenOpCap(32);
    c.tracer().setLifetimeSampleCap(16);

    for (NodeId n = 1; n <= 2; ++n) {
        c.spawn(n, [&seg, n](Ctx &ctx) -> Task<void> {
            for (int i = 0; i < 400; ++i)
                co_await ctx.write(seg.word(std::size_t(n) * 512 + i),
                                   Word(i));
            co_await ctx.fence();
        });
    }
    c.run();

    // Far more events were recorded than retained...
    EXPECT_GT(c.tracer().recordedEvents(), 256u);
    EXPECT_LE(c.tracer().events().size(), 256u);
    EXPECT_GT(c.tracer().droppedEvents(), 0u);
    // ...and the breakdown still aggregates every retired operation.
    const trace::Breakdown b = c.tracer().breakdown();
    std::uint64_t ops = 0;
    for (const auto &k : b.ops)
        ops += k.ops;
    EXPECT_GT(ops, 700u);
    // The whole structure stays small despite ~800 traced operations.
    EXPECT_LT(c.tracer().approxBytes(), 256u * 1024u);
}

TEST(Sampling, SamplerSpillsToSketchWithExactMoments)
{
    Sampler s;
    s.setSampleCap(128);
    const std::size_t n = 10'000;
    double sum = 0;
    for (std::size_t i = 1; i <= n; ++i) {
        s.sample(double(i));
        sum += double(i);
    }
    EXPECT_TRUE(s.spilled());
    // Streaming moments are exact regardless of the spill.
    EXPECT_EQ(s.count(), n);
    EXPECT_DOUBLE_EQ(s.mean(), sum / double(n));
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), double(n));
    // Quantiles are approximate but rank-correct within a power-of-two
    // bucket: p50 of 1..10000 lies in [4096, 8192), p99 in [8192, 10000].
    const double p50 = s.quantile(0.5);
    EXPECT_GE(p50, 4096.0);
    EXPECT_LE(p50, 8192.0);
    const double p99 = s.quantile(0.99);
    EXPECT_GE(p99, 8192.0);
    EXPECT_LE(p99, double(n));
    // Extremes are exact.
    EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(s.quantile(1.0), double(n));
    // Memory stays with the cap, not the sample count.
    EXPECT_LT(s.approxBytes(), 16u * 1024u);
}

TEST(Sampling, SamplerExactBelowCap)
{
    Sampler s;
    for (int i = 1; i <= 100; ++i)
        s.sample(double(i));
    EXPECT_FALSE(s.spilled());
    // Exact interpolated quantiles, identical to the pre-overhaul
    // behaviour for small experiments.
    EXPECT_DOUBLE_EQ(s.quantile(0.5), 50.5);
    EXPECT_NEAR(s.quantile(0.99), 99.01, 1e-9);
}

TEST(Sampling, ThousandNodeTracedRunStaysBounded)
{
    // The scale target from the roadmap: a 1024-node traced run whose
    // tracer footprint is bounded by its caps, not by traffic volume.
    ClusterSpec spec = ClusterSpec::fatTree(1024, 8).seed(11).trace(true);
    Cluster c(spec);
    Segment &seg = c.allocShared("data", 1 << 20, 0);
    c.tracer().setRetainedEventCap(1 << 12);
    c.tracer().setOpenOpCap(1 << 10);
    c.tracer().setLifetimeSampleCap(512);

    // 64 writers spread across the tree, 8 writes + fence each.
    for (NodeId n = 1; n <= 64; ++n) {
        const NodeId src = NodeId((std::size_t(n) * 16) % 1024);
        if (src == 0)
            continue;
        c.spawn(src, [&seg, n](Ctx &ctx) -> Task<void> {
            for (int i = 0; i < 8; ++i)
                co_await ctx.write(seg.word(std::size_t(n) * 16 + i),
                                   Word(i));
            co_await ctx.fence();
        });
    }
    c.run();
    ASSERT_TRUE(c.allDone());
    ASSERT_TRUE(c.auditQuiescent());

    EXPECT_GT(c.tracer().recordedEvents(), 0u);
    // Hard bound: caps (4096 events * 32B, 1024 open ops, 512 lifetimes
    // per kind) keep the tracer under 2 MB however large the run is.
    EXPECT_LT(c.tracer().approxBytes(), 2u * 1024u * 1024u);
}

} // namespace

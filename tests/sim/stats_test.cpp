/**
 * @file
 * Unit tests of the statistics package.
 */

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "sim/stats.hpp"

namespace tg {
namespace {

TEST(Scalar, Accumulates)
{
    Scalar s;
    ++s;
    s += 4.5;
    EXPECT_DOUBLE_EQ(s.value(), 5.5);
    s -= 0.5;
    EXPECT_DOUBLE_EQ(s.value(), 5.0);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Sampler, BasicMoments)
{
    Sampler s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.sample(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_NEAR(s.stddev(), 2.138, 0.01);
    EXPECT_DOUBLE_EQ(s.total(), 40.0);
}

TEST(Sampler, ExactQuantiles)
{
    Sampler s;
    for (int i = 1; i <= 100; ++i)
        s.sample(i);
    EXPECT_NEAR(s.quantile(0.5), 50, 1);
    EXPECT_NEAR(s.quantile(0.99), 99, 1);
    EXPECT_DOUBLE_EQ(s.quantile(0.0), 1);
    EXPECT_DOUBLE_EQ(s.quantile(1.0), 100);
}

TEST(Sampler, QuantileLinearInterpolation)
{
    // Regression: quantile() used nearest-rank rounding, so quantiles
    // between sample points snapped to one of them.  With linear
    // interpolation the values are exact.
    Sampler s;
    for (double v : {10.0, 20.0, 30.0, 40.0})
        s.sample(v);
    EXPECT_DOUBLE_EQ(s.quantile(0.0), 10.0);
    EXPECT_DOUBLE_EQ(s.quantile(0.25), 17.5); // pos 0.75 between 10 and 20
    EXPECT_DOUBLE_EQ(s.quantile(0.5), 25.0);  // midpoint of 20 and 30
    EXPECT_DOUBLE_EQ(s.quantile(0.75), 32.5);
    EXPECT_DOUBLE_EQ(s.quantile(1.0), 40.0);

    Sampler two;
    two.sample(0.0);
    two.sample(100.0);
    EXPECT_DOUBLE_EQ(two.quantile(0.5), 50.0);
    EXPECT_DOUBLE_EQ(two.quantile(0.99), 99.0);
}

TEST(Sampler, StddevStableUnderLargeOffset)
{
    // Regression: stddev() accumulated sum-of-squares, which cancels
    // catastrophically when the mean dwarfs the spread.  Welford's
    // update keeps full precision.
    Sampler s;
    const double base = 1e9;
    for (double v : {base + 1, base + 2, base + 3})
        s.sample(v);
    EXPECT_NEAR(s.stddev(), 1.0, 1e-6);
    EXPECT_DOUBLE_EQ(s.mean(), base + 2);

    // Same spread without the offset must agree.
    Sampler small;
    for (double v : {1.0, 2.0, 3.0})
        small.sample(v);
    EXPECT_NEAR(s.stddev(), small.stddev(), 1e-6);
}

TEST(Sampler, QuantileInterleavedWithSampling)
{
    Sampler s;
    s.sample(3);
    s.sample(1);
    EXPECT_DOUBLE_EQ(s.quantile(1.0), 3);
    s.sample(10); // re-sorts lazily
    EXPECT_DOUBLE_EQ(s.quantile(1.0), 10);
}

TEST(Sampler, EmptyIsSafe)
{
    Sampler s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Sampler, QuantileClampsOutOfRangeQ)
{
    // Regression: q outside [0,1] fed the interpolation index arithmetic
    // directly; it must clamp to the extremes instead.
    Sampler s;
    for (double v : {10.0, 20.0, 30.0})
        s.sample(v);
    EXPECT_DOUBLE_EQ(s.quantile(0.0), 10.0);
    EXPECT_DOUBLE_EQ(s.quantile(1.0), 30.0);
    EXPECT_DOUBLE_EQ(s.quantile(1.5), 30.0);
    EXPECT_DOUBLE_EQ(s.quantile(42.0), 30.0);
    EXPECT_DOUBLE_EQ(s.quantile(-0.5), 10.0);
    const double nan = std::numeric_limits<double>::quiet_NaN();
    EXPECT_DOUBLE_EQ(s.quantile(nan), 10.0);
}

TEST(Sampler, QuantileSingleSample)
{
    // Regression: n == 1 is its own case — every quantile is the sample,
    // with no interpolation index arithmetic involved.
    Sampler s;
    s.sample(7.5);
    for (double q : {0.0, 0.25, 0.5, 0.99, 1.0, 1.5, -1.0})
        EXPECT_DOUBLE_EQ(s.quantile(q), 7.5) << "q=" << q;
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(10.0, 4); // [0,10) [10,20) [20,30) [30,inf)
    h.sample(5);
    h.sample(15);
    h.sample(25);
    h.sample(1000);
    h.sample(-3); // clamps to first bucket
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.buckets()[0], 2u);
    EXPECT_EQ(h.buckets()[1], 1u);
    EXPECT_EQ(h.buckets()[2], 1u);
    EXPECT_EQ(h.buckets()[3], 1u);
}

TEST(StatRegistry, DumpAndLookup)
{
    StatRegistry reg;
    Scalar a;
    a += 3;
    Sampler s;
    s.sample(1);
    s.sample(2);
    reg.add("alpha.count", &a);
    reg.add("beta.latency", &s);

    EXPECT_DOUBLE_EQ(reg.scalar("alpha.count"), 3.0);
    EXPECT_DOUBLE_EQ(reg.scalar("missing"), 0.0);

    std::ostringstream os;
    reg.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("alpha.count"), std::string::npos);
    EXPECT_NE(out.find("beta.latency.mean"), std::string::npos);
}

TEST(StatRegistry, HistogramsRegisterDumpAndExport)
{
    // Regression: Histogram existed but StatRegistry had no overload for
    // it, so registered histograms were silently dropped from every
    // report.
    StatRegistry reg;
    Histogram h(10.0, 4);
    h.sample(5);
    h.sample(15);
    h.sample(15);
    reg.add("tc.wait_hist", &h);

    std::ostringstream os;
    reg.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("tc.wait_hist"), std::string::npos);
    EXPECT_NE(out.find("bucket[0,10)"), std::string::npos) << out;
    EXPECT_NE(out.find("bucket[10,20)"), std::string::npos) << out;
    // Empty buckets are elided.
    EXPECT_EQ(out.find("bucket[20,30)"), std::string::npos) << out;
}

TEST(StatRegistry, DumpJsonCoversAllStatKinds)
{
    StatRegistry reg;
    Scalar a;
    a += 3;
    Sampler s;
    s.sample(1);
    s.sample(2);
    Histogram h(10.0, 2);
    h.sample(5);
    reg.add("alpha.count", &a);
    reg.add("beta.latency", &s);
    reg.add("gamma.hist", &h);

    std::ostringstream os;
    reg.dumpJson(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("\"schema\":\"tg-stats-v1\""), std::string::npos);
    EXPECT_NE(out.find("\"alpha.count\":3"), std::string::npos) << out;
    EXPECT_NE(out.find("\"beta.latency\""), std::string::npos);
    EXPECT_NE(out.find("\"p50\""), std::string::npos);
    EXPECT_NE(out.find("\"gamma.hist\""), std::string::npos);
    EXPECT_NE(out.find("\"buckets\":[1,0]"), std::string::npos) << out;

    // Two dumps of the same registry are byte-identical (determinism).
    std::ostringstream again;
    reg.dumpJson(again);
    EXPECT_EQ(out, again.str());
}

} // namespace
} // namespace tg

/**
 * @file
 * Unit tests for tg::Fn / tg::Event — the move-only small-buffer
 * closures the event engine fires instead of std::function.  Covers
 * both storage paths (inline and pooled), move/steal semantics,
 * emptiness (including wrapped null std::functions and function
 * pointers), mutable state, and the closure-pool recycling counters.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>

#include "sim/event.hpp"

namespace tg {
namespace {

TEST(FnTest, CallsTargetWithArgumentsAndReturn)
{
    Fn<int(int, int)> add = [](int a, int b) { return a + b; };
    ASSERT_TRUE(add);
    EXPECT_EQ(add(2, 40), 42);
}

TEST(FnTest, DefaultAndNullptrConstructedAreEmpty)
{
    Event a;
    Event b = nullptr;
    EXPECT_FALSE(a);
    EXPECT_FALSE(b);
}

TEST(FnTest, NullStdFunctionAndFunctionPointerStayEmpty)
{
    std::function<void()> nullFn;
    Event a = std::move(nullFn);
    EXPECT_FALSE(a);

    void (*nullPtr)() = nullptr;
    Event b = nullPtr;
    EXPECT_FALSE(b);

    std::function<void()> realFn = [] {};
    Event c = std::move(realFn);
    EXPECT_TRUE(c);
}

TEST(FnTest, MoveTransfersTargetAndEmptiesSource)
{
    int hits = 0;
    Event a = [&hits] { ++hits; };
    Event b = std::move(a);
    EXPECT_FALSE(a); // NOLINT(bugprone-use-after-move): emptiness is spec
    ASSERT_TRUE(b);
    b();
    EXPECT_EQ(hits, 1);

    Event c;
    c = std::move(b);
    c();
    EXPECT_EQ(hits, 2);

    c = nullptr;
    EXPECT_FALSE(c);
}

TEST(FnTest, MutableLambdaStatePersistsAcrossMovesAndCalls)
{
    Fn<int()> counter = [n = 0]() mutable { return ++n; };
    EXPECT_EQ(counter(), 1);
    Fn<int()> moved = std::move(counter);
    EXPECT_EQ(moved(), 2);
    EXPECT_EQ(moved(), 3);
}

TEST(FnTest, MoveOnlyCapturesWork)
{
    auto p = std::make_unique<int>(7);
    Fn<int()> f = [p = std::move(p)] { return *p; };
    Fn<int()> g = std::move(f);
    EXPECT_EQ(g(), 7);
}

TEST(FnTest, LargeCaptureUsesPoolAndRecyclesBlocks)
{
    struct Big
    {
        std::byte pad[Event::kInlineBytes + 16];
        int tag;
    };
    static_assert(sizeof(Big) > Event::kInlineBytes);
    static_assert(sizeof(Big) <= detail::ClosurePool::kBlockBytes);

    const std::uint64_t fresh0 = detail::ClosurePool::freshBlocks();

    int got = 0;
    {
        Big big{};
        big.tag = 9;
        Fn<void()> f = [big, &got] { got = big.tag; };
        Fn<void()> g = std::move(f); // pooled move steals the block
        g();
    }
    EXPECT_EQ(got, 9);
    const std::uint64_t freshAfterFirst = detail::ClosurePool::freshBlocks();
    EXPECT_GE(freshAfterFirst, fresh0 + 1);

    // The freed block must be recycled: another big capture takes the
    // reuse path, not a fresh allocation.
    const std::uint64_t reused0 = detail::ClosurePool::reusedBlocks();
    {
        Big big{};
        big.tag = 5;
        Fn<void()> f = [big, &got] { got = big.tag; };
        f();
    }
    EXPECT_EQ(got, 5);
    EXPECT_EQ(detail::ClosurePool::freshBlocks(), freshAfterFirst);
    EXPECT_GE(detail::ClosurePool::reusedBlocks(), reused0 + 1);
}

TEST(FnTest, ConstFnIsInvocable)
{
    // Queue callbacks are captured by value into other lambdas and fired
    // through const access paths; Fn mirrors std::function here.
    const Fn<int()> f = [] { return 11; };
    EXPECT_EQ(f(), 11);
}

TEST(FnDeathTest, InvokingEmptyFnPanics)
{
    Event e;
    EXPECT_DEATH(e(), "empty");
}

} // namespace
} // namespace tg

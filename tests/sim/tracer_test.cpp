/**
 * @file
 * Packet-lifecycle tracer tests (DESIGN.md section 8).
 *
 * Two contracts are on trial here:
 *
 *  1. The tracer itself is deterministic: two same-seed runs of the same
 *     workload export byte-identical Chrome trace JSON and identical
 *     latency-breakdown tables.
 *
 *  2. The tracer is *passive*: recording must not perturb the simulated
 *     schedule, so the audit trace hash of a run is the same with
 *     tracing enabled and disabled, and a disabled tracer records
 *     nothing at all.
 */

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "api/cluster.hpp"
#include "api/context.hpp"
#include "api/measure.hpp"
#include "api/segment.hpp"

namespace {

using namespace tg;

struct RunResult
{
    std::uint64_t hash = 0;
    Tick end = 0;
    std::string chromeJson;
    std::string breakdownJson;
    std::uint64_t events = 0;
    std::uint64_t opsBegun = 0;
    trace::Breakdown breakdown;
};

/** A small mixed workload: streamed writes, blocking reads, one atomic
 *  and a fence — enough to exercise every span boundary. */
RunResult
runWorkload(std::uint64_t seed, bool traced)
{
    ClusterSpec spec = ClusterSpec::star(2);
    spec.config.seed = seed;
    spec.config.tracePackets = traced;
    Cluster c(spec);
    Segment &seg = c.allocShared("data", 8192, 0);

    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        for (int i = 0; i < 32; ++i)
            co_await ctx.write(seg.word(i % 16), Word(i));
        co_await ctx.fence();
        for (int i = 0; i < 8; ++i)
            (void)co_await ctx.read(seg.word(i));
        (void)co_await ctx.fetchAdd(seg.word(20), 1);
        co_await ctx.fence();
    });

    RunResult r;
    r.end = c.run(4'000'000'000'000ULL);
    EXPECT_TRUE(c.allDone());
    r.hash = c.traceHash();
    r.events = c.tracer().events().size();
    r.opsBegun = c.tracer().opsBegun();
    r.breakdown = c.latencyBreakdown();
    r.breakdownJson = r.breakdown.toJson();
    std::ostringstream chrome;
    c.writeChromeTrace(chrome);
    r.chromeJson = chrome.str();
    return r;
}

TEST(TracerTest, SameSeedByteIdenticalExports)
{
    const RunResult a = runWorkload(11, /*traced=*/true);
    const RunResult b = runWorkload(11, /*traced=*/true);
    EXPECT_EQ(a.end, b.end);
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(a.opsBegun, b.opsBegun);
    EXPECT_EQ(a.chromeJson, b.chromeJson);
    EXPECT_EQ(a.breakdownJson, b.breakdownJson);
    EXPECT_GT(a.events, 0u);
}

TEST(TracerTest, TracingDoesNotPerturbTheSchedule)
{
    const RunResult off = runWorkload(11, /*traced=*/false);
    const RunResult on = runWorkload(11, /*traced=*/true);
    EXPECT_EQ(off.hash, on.hash)
        << "recording must be passive: same seed, same schedule";
    EXPECT_EQ(off.end, on.end);
}

TEST(TracerTest, DisabledTracerRecordsNothing)
{
    const RunResult off = runWorkload(11, /*traced=*/false);
    EXPECT_EQ(off.events, 0u);
    EXPECT_EQ(off.opsBegun, 0u);
    EXPECT_TRUE(off.breakdown.ops.empty());

    trace::Tracer t;
    EXPECT_EQ(t.beginOp(trace::OpKind::RemoteWrite), 0u)
        << "disabled beginOp returns the null id";
    t.record(1, trace::Span::CpuIssue, 5, 0);
    EXPECT_TRUE(t.events().empty());
}

TEST(TracerTest, BreakdownComponentsSumToTotals)
{
    const RunResult r = runWorkload(3, /*traced=*/true);
    ASSERT_FALSE(r.breakdown.ops.empty());
    bool saw_write = false, saw_read = false;
    for (const trace::OpBreakdown &op : r.breakdown.ops) {
        EXPECT_GT(op.ops, 0u);
        EXPECT_NEAR(op.rowSumTicks(), op.totalTicks,
                    1e-9 * std::max(1.0, op.totalTicks))
            << opKindName(op.kind);
        saw_write |= op.kind == trace::OpKind::RemoteWrite;
        saw_read |= op.kind == trace::OpKind::RemoteRead;
    }
    EXPECT_TRUE(saw_write);
    EXPECT_TRUE(saw_read);

    // A blocking remote read crosses every hardware boundary.
    const trace::OpBreakdown *rd =
        r.breakdown.of(trace::OpKind::RemoteRead);
    ASSERT_NE(rd, nullptr);
    EXPECT_EQ(rd->ops, 8u);
    EXPECT_GT(rd->totalTicks, 0.0);
}

TEST(TracerTest, ChromeTraceIsWellFormed)
{
    const RunResult r = runWorkload(11, /*traced=*/true);
    EXPECT_NE(r.chromeJson.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(r.chromeJson.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(r.chromeJson.find("process_name"), std::string::npos);
    // Balanced document: closes with the bracket/braces it opened.
    EXPECT_EQ(r.chromeJson.front(), '{');
    EXPECT_EQ(r.chromeJson.back(), '\n');
}

TEST(TracerTest, StatsReportShowsNetCountersWithoutFaults)
{
    // Regression: statsReport() hid the reliability counters behind
    // fault.enabled(), so a healthy run reported nothing about the
    // link layer it always exercises.
    ClusterSpec spec = ClusterSpec::star(2);
    Cluster c(spec);
    Segment &seg = c.allocShared("data", 4096, 0);
    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        for (int i = 0; i < 4; ++i)
            co_await ctx.write(seg.word(i), Word(i));
        co_await ctx.fence();
    });
    c.run(4'000'000'000'000ULL);
    ASSERT_TRUE(c.allDone());

    std::ostringstream os;
    c.statsReport(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("net.crc_errors"), std::string::npos) << out;
    EXPECT_NE(out.find("net.retransmissions"), std::string::npos);
    EXPECT_NE(out.find("net.dup_discards"), std::string::npos);
    EXPECT_NE(out.find("net.wire_failures"), std::string::npos);
}

TEST(TracerTest, TurboChannelWaitHistogramIsRegistered)
{
    // Regression: the TurboChannel tracked wait time only as a Scalar;
    // the Histogram type existed but nothing registered one.
    ClusterSpec spec = ClusterSpec::star(2);
    Cluster c(spec);
    Segment &seg = c.allocShared("data", 4096, 0);
    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        for (int i = 0; i < 16; ++i)
            co_await ctx.write(seg.word(i), Word(i));
        co_await ctx.fence();
    });
    c.run(4'000'000'000'000ULL);
    ASSERT_TRUE(c.allDone());

    std::ostringstream os;
    c.statsJson(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("tc.wait_hist"), std::string::npos) << out;
}

} // namespace

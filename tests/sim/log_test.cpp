/**
 * @file
 * Unit tests of the trace switchboard.
 */

#include <gtest/gtest.h>

#include "sim/log.hpp"

namespace tg {
namespace {

class TraceTest : public ::testing::Test
{
  protected:
    void TearDown() override { Trace::disableAll(); }
};

TEST_F(TraceTest, DisabledByDefault)
{
    EXPECT_FALSE(Trace::enabled("net"));
    EXPECT_FALSE(Trace::enabled("hib"));
}

TEST_F(TraceTest, EnablePerComponent)
{
    Trace::enable("net");
    EXPECT_TRUE(Trace::enabled("net"));
    EXPECT_FALSE(Trace::enabled("hib"));
}

TEST_F(TraceTest, EnableAll)
{
    Trace::enable("all");
    EXPECT_TRUE(Trace::enabled("net"));
    EXPECT_TRUE(Trace::enabled("anything"));
}

TEST_F(TraceTest, DisableAllResets)
{
    Trace::enable("net");
    Trace::enable("all");
    Trace::disableAll();
    EXPECT_FALSE(Trace::enabled("net"));
    EXPECT_FALSE(Trace::enabled("other"));
}

TEST_F(TraceTest, LogWhenDisabledIsCheapNoop)
{
    // Must not crash and must not print (we can't capture stderr
    // portably here; this is a smoke check of the fast path).
    Trace::log(123, "quiet", "should not appear %d", 1);
    SUCCEED();
}

} // namespace
} // namespace tg

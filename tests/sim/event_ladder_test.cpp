/**
 * @file
 * Differential tests of the ladder/calendar EventQueue against the
 * reference binary heap (TG_REFERENCE_HEAP build of the original
 * engine).  Both must fire every workload in the identical (when, seq)
 * order and produce the identical trace hash — the queue edge cases
 * (same-tick reentrancy, runUntil limits, wheel rollover, ladder
 * spill, far-future timeouts) are each exercised explicitly, then a
 * randomized workload sweeps the mixed cases.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"

namespace tg {
namespace {

constexpr Tick kWheel = EventQueue::kWheelTicks; // 4096

/** Deterministic split-mix generator (both queue runs must see the
 *  identical workload, so no std randomness). */
struct Rand
{
    std::uint64_t s;

    std::uint64_t
    next()
    {
        s += 0x9e3779b97f4a7c15ull;
        std::uint64_t z = s;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }
};

/** Mixed delay profile: same-tick, hot-window, wheel-boundary and
 *  far-future (ladder) delays. */
Tick
delayFor(std::uint64_t r)
{
    switch (r % 8) {
      case 0:
        return 0; // same tick (reentrant bucket append)
      case 1:
      case 2:
        return 1 + (r >> 3) % 100; // hot link/TC/HIB range
      case 3:
      case 4:
        return 1 + (r >> 3) % (kWheel - 1); // anywhere in the window
      case 5:
        return kWheel - 2 + (r >> 3) % 5; // straddle the wheel boundary
      case 6:
        return 20'000; // retry-timeout territory (ladder)
      default:
        return 200'000 + (r >> 3) % 50'000; // page-copy territory
    }
}

/** Drive @p q with a self-expanding random workload; returns the firing
 *  order (by event id) and the final trace hash. */
template <typename Q>
std::pair<std::vector<std::uint64_t>, std::uint64_t>
runWorkload(std::uint64_t seed, std::uint64_t budget)
{
    Q q;
    std::vector<std::uint64_t> order;
    std::uint64_t remaining = budget;
    std::uint64_t nextId = 0;

    struct Ctx
    {
        Q *q;
        std::vector<std::uint64_t> *order;
        std::uint64_t *remaining;
        std::uint64_t *nextId;
        std::uint64_t seed;
    } ctx{&q, &order, &remaining, &nextId, seed};

    struct Node
    {
        Ctx *c;
        std::uint64_t id;

        void
        operator()() const
        {
            c->order->push_back(id);
            // Children derive from the event id alone, so both engines
            // replay the identical tree.
            Rand r{c->seed ^ (id * 0x2545f4914f6cdd1dull)};
            const int kids = static_cast<int>(r.next() % 3);
            for (int k = 0; k < kids; ++k) {
                if (*c->remaining == 0)
                    return;
                --*c->remaining;
                c->q->schedule(delayFor(r.next()), Node{c, (*c->nextId)++});
            }
        }
    };

    Rand seeder{seed};
    for (int i = 0; i < 40; ++i) {
        if (remaining == 0)
            break;
        --remaining;
        q.scheduleAbs(delayFor(seeder.next()), Node{&ctx, nextId++});
    }
    q.run();
    EXPECT_TRUE(q.empty());
    return {std::move(order), q.trace().value()};
}

TEST(EventLadderDifferential, RandomizedWorkloadsMatchReferenceHeap)
{
    for (std::uint64_t seed : {1ull, 7ull, 42ull}) {
        auto ladder = runWorkload<EventQueue>(seed, 20'000);
        auto heap = runWorkload<ReferenceEventQueue>(seed, 20'000);
        EXPECT_EQ(ladder.first, heap.first) << "seed " << seed;
        EXPECT_EQ(ladder.second, heap.second) << "seed " << seed;
    }
}

/** Run one scripted scenario against both engines and demand identical
 *  firing order and trace hash. */
template <typename Script>
void
expectIdentical(Script &&script)
{
    EventQueue ladder;
    ReferenceEventQueue heap;
    std::vector<int> a = script(ladder);
    std::vector<int> b = script(heap);
    EXPECT_EQ(a, b);
    EXPECT_EQ(ladder.trace().value(), heap.trace().value());
}

TEST(EventLadderDifferential, SameTickReentrantScheduling)
{
    expectIdentical([](auto &q) {
        std::vector<int> order;
        q.scheduleAbs(5, [&q, &order] {
            order.push_back(0);
            // Appends to the bucket being drained; must fire after the
            // already-queued id=1 (smaller seq) at the same tick.
            q.schedule(0, [&q, &order] {
                order.push_back(2);
                q.schedule(0, [&order] { order.push_back(3); });
            });
        });
        q.scheduleAbs(5, [&order] { order.push_back(1); });
        q.run();
        return order;
    });
}

TEST(EventLadderDifferential, RunUntilFiresEventsExactlyAtLimit)
{
    expectIdentical([](auto &q) {
        std::vector<int> order;
        q.scheduleAbs(10, [&order] { order.push_back(10); });
        q.scheduleAbs(20, [&order] { order.push_back(20); });
        q.scheduleAbs(20, [&order] { order.push_back(21); });
        q.scheduleAbs(21, [&order] { order.push_back(22); });
        const auto fired = q.runUntil(20);
        order.push_back(static_cast<int>(fired));
        order.push_back(static_cast<int>(q.now()));
        order.push_back(static_cast<int>(q.pending()));
        q.run();
        return order;
    });
}

TEST(EventLadderDifferential, WheelRolloverAndSpillBoundaries)
{
    expectIdentical([](auto &q) {
        std::vector<int> order;
        int id = 0;
        // From a non-zero base, delays around the wheel width land on
        // both sides of the window edge (in-wheel vs ladder) and on the
        // index-wrap boundary.
        q.scheduleAbs(4000, [&q, &order, &id] {
            order.push_back(id++);
            for (Tick d : {kWheel - 2, kWheel - 1, kWheel, kWheel + 1,
                           2 * kWheel, 2 * kWheel + 1}) {
                q.schedule(d, [&order, &id] { order.push_back(id++); });
            }
        });
        q.run();
        return order;
    });
}

TEST(EventLadderDifferential, FarFutureTimeoutTicks)
{
    expectIdentical([](auto &q) {
        std::vector<int> order;
        // Only far-future events: the wheel starts empty and the window
        // must jump across multi-million-tick gaps (cpuQuantum scale).
        q.scheduleAbs(20'000, [&order] { order.push_back(1); });
        q.scheduleAbs(10'000'000, [&order] { order.push_back(3); });
        q.scheduleAbs(234'000, [&q, &order] {
            order.push_back(2);
            q.schedule(20'000, [&order] { order.push_back(20); });
        });
        q.run();
        return order;
    });
}

TEST(EventLadderDifferential, IdleRunUntilSpillsThePendingLadder)
{
    expectIdentical([](auto &q) {
        std::vector<int> order;
        q.scheduleAbs(5'000, [&order] { order.push_back(1); });
        // No event fires, but the window must advance over 4'500 and
        // admit the 5'000 event without disturbing its eventual order.
        order.push_back(static_cast<int>(q.runUntil(4'500)));
        order.push_back(static_cast<int>(q.now()));
        q.scheduleAbs(4'600, [&order] { order.push_back(0); });
        q.run();
        return order;
    });
}

TEST(EventLadderClamp, DisabledAuditsClampPastSchedulesToNow)
{
    // With auditing off (perf sweeps), scheduling into the past must not
    // fire out of order: the event is clamped to now and fires with the
    // current tick's later seq numbers.
    audit::setEnabled(false);
    std::vector<int> order;
    EventQueue q;
    q.scheduleAbs(10, [&q, &order] {
        order.push_back(0);
        q.scheduleAbs(5, [&q, &order] {
            order.push_back(2);
            EXPECT_EQ(q.now(), 10u); // clamped, not rewound
        });
    });
    q.scheduleAbs(10, [&order] { order.push_back(1); });
    q.run();
    audit::setEnabled(true);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(q.now(), 10u);
}

TEST(EventLadderClamp, ReferenceHeapClampsIdentically)
{
    audit::setEnabled(false);
    std::vector<int> order;
    ReferenceEventQueue q;
    q.scheduleAbs(10, [&q, &order] {
        order.push_back(0);
        q.scheduleAbs(5, [&order] { order.push_back(2); });
    });
    q.scheduleAbs(10, [&order] { order.push_back(1); });
    q.run();
    audit::setEnabled(true);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(q.now(), 10u);
}

} // namespace
} // namespace tg

/**
 * @file
 * Steady-state allocation audit for the event engine.  A counting
 * global operator new/delete proves the zero-allocation claim from
 * DESIGN.md: once the wheel buckets and the closure pool are warm, the
 * schedule -> fire cycle performs no heap allocation per event, for
 * both inline closures and pooled (oversized-capture) closures.
 *
 * The counting allocator is linked into the whole sim_tests binary;
 * it only counts, so the other suites are unaffected.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "sim/event_queue.hpp"

namespace {
std::atomic<std::uint64_t> g_newCalls{0};

std::uint64_t
allocCount()
{
    return g_newCalls.load(std::memory_order_relaxed);
}

void *
countedAlloc(std::size_t n)
{
    g_newCalls.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}
} // namespace

void *
operator new(std::size_t n)
{
    return countedAlloc(n);
}

void *
operator new[](std::size_t n)
{
    return countedAlloc(n);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace tg {
namespace {

/** Self-rescheduling inline closure: 16 bytes, well under the SBO. */
struct Pump
{
    EventQueue *q;
    std::uint64_t *fired;

    void
    operator()() const
    {
        ++*fired;
        q->schedule(7, Pump{q, fired});
    }
};

TEST(EventAllocTest, SteadyStateInlineEventsDoNotAllocate)
{
    EventQueue q;
    std::uint64_t fired = 0;
    q.schedule(1, Pump{&q, &fired});

    // Warm-up: one full wheel lap (gcd(7, 4096) == 1 visits every
    // bucket) sizes all bucket vectors; their capacity is retained.
    q.run(6'000);

    const std::uint64_t before = allocCount();
    const std::uint64_t executed = q.run(20'000);
    const std::uint64_t after = allocCount();

    EXPECT_EQ(executed, 20'000u);
    EXPECT_EQ(after, before) << "inline event cycle hit the heap";
    EXPECT_EQ(fired, 26'000u);
}

/** Oversized capture: forced onto the pooled closure path. */
struct BigPump
{
    EventQueue *q;
    std::uint64_t *fired;
    std::byte payload[Event::kInlineBytes + 64];

    void
    operator()() const
    {
        ++*fired;
        q->schedule(13, BigPump{q, fired, {}});
    }
};

static_assert(sizeof(BigPump) > Event::kInlineBytes);
static_assert(sizeof(BigPump) <= detail::ClosurePool::kBlockBytes);

TEST(EventAllocTest, SteadyStatePooledEventsDoNotAllocate)
{
    EventQueue q;
    std::uint64_t fired = 0;
    q.schedule(1, BigPump{&q, &fired, {}});

    // Warm-up fills every bucket once and primes the two-block pool
    // rotation (one closure live while its successor is allocated).
    q.run(6'000);

    const std::uint64_t fresh0 = detail::ClosurePool::freshBlocks();
    const std::uint64_t oversize0 = detail::ClosurePool::oversizeBlocks();
    const std::uint64_t before = allocCount();
    const std::uint64_t executed = q.run(20'000);
    const std::uint64_t after = allocCount();

    EXPECT_EQ(executed, 20'000u);
    EXPECT_EQ(after, before) << "pooled event cycle hit the heap";
    EXPECT_EQ(detail::ClosurePool::freshBlocks(), fresh0);
    EXPECT_EQ(detail::ClosurePool::oversizeBlocks(), oversize0);
    EXPECT_EQ(fired, 26'000u);
}

} // namespace
} // namespace tg

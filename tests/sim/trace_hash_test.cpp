/**
 * @file
 * Seeded double-run trace-hash tests: the executable form of the
 * determinism contract (DESIGN.md section 7).  Each case builds the
 * same cluster + workload twice with one seed, runs both to completion
 * and requires the full FNV event/packet traces to be bit-identical;
 * different seeds must (for these workloads) diverge, proving the hash
 * actually observes the schedule.  Packet conservation is checked at
 * quiescence on every run.
 */

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/cluster.hpp"
#include "api/context.hpp"
#include "api/segment.hpp"
#include "workload/hotspot.hpp"
#include "workload/traffic.hpp"

namespace {

constexpr int kNodes = 4;
constexpr tg::Tick kLimit = 4'000'000'000'000ULL;

struct Trace
{
    std::uint64_t hash;
    std::uint64_t words;
    tg::Tick end;
};

Trace
runHotspot(std::uint64_t seed)
{
    tg::ClusterSpec spec = tg::ClusterSpec::chain(kNodes, 2);
    spec.config.seed = seed;
    tg::Cluster c(spec);

    tg::Segment &ctr = c.allocShared("ctr", 8192, 0);
    tg::workload::HotspotConfig cfg;
    cfg.increments = 24;
    for (tg::NodeId n = 0; n < kNodes; ++n)
        c.spawn(n, tg::workload::hotspotWorker(ctr, cfg));

    Trace t;
    t.end = c.run(kLimit);
    t.hash = c.traceHash();
    t.words = c.traceLength();
    EXPECT_TRUE(c.allDone());
    std::string why;
    EXPECT_TRUE(c.auditQuiescent(&why)) << why;
    return t;
}

Trace
runTraffic(std::uint64_t seed)
{
    tg::ClusterSpec spec = tg::ClusterSpec::chain(kNodes, 2);
    spec.config.seed = seed;
    tg::Cluster c(spec);

    std::vector<tg::Segment *> segs;
    for (tg::NodeId n = 0; n < kNodes; ++n)
        segs.push_back(&c.allocShared("t" + std::to_string(n), 8192, n));
    tg::workload::TrafficConfig cfg;
    cfg.ops = 48;
    for (tg::NodeId n = 0; n < kNodes; ++n)
        c.spawn(n, tg::workload::randomTraffic(segs, cfg));

    Trace t;
    t.end = c.run(kLimit);
    t.hash = c.traceHash();
    t.words = c.traceLength();
    EXPECT_TRUE(c.allDone());
    std::string why;
    EXPECT_TRUE(c.auditQuiescent(&why)) << why;
    return t;
}

TEST(TraceHashTest, HotspotSameSeedSameTrace)
{
    for (std::uint64_t seed : {1ULL, 99ULL}) {
        const Trace a = runHotspot(seed);
        const Trace b = runHotspot(seed);
        EXPECT_EQ(a.hash, b.hash) << "seed " << seed;
        EXPECT_EQ(a.words, b.words) << "seed " << seed;
        EXPECT_EQ(a.end, b.end) << "seed " << seed;
        EXPECT_GT(a.words, 0u) << "empty trace audits nothing";
    }
}

TEST(TraceHashTest, TrafficSameSeedSameTrace)
{
    for (std::uint64_t seed : {7ULL, 4242ULL}) {
        const Trace a = runTraffic(seed);
        const Trace b = runTraffic(seed);
        EXPECT_EQ(a.hash, b.hash) << "seed " << seed;
        EXPECT_EQ(a.words, b.words) << "seed " << seed;
        EXPECT_EQ(a.end, b.end) << "seed " << seed;
        EXPECT_GT(a.words, 0u) << "empty trace audits nothing";
    }
}

TEST(TraceHashTest, TrafficDifferentSeedsDiverge)
{
    // randomTraffic draws targets from the seeded Rng, so distinct seeds
    // must produce distinct schedules — otherwise the hash is blind.
    EXPECT_NE(runTraffic(7).hash, runTraffic(4242).hash);
}

} // namespace

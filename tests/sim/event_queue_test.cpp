/**
 * @file
 * Unit tests of the deterministic event queue.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"

namespace tg {
namespace {

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.scheduleAbs(30, [&] { order.push_back(3); });
    q.scheduleAbs(10, [&] { order.push_back(1); });
    q.scheduleAbs(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SameTickFiresInScheduleOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.scheduleAbs(5, [&order, i] { order.push_back(i); });
    q.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1, [&] {
        ++fired;
        q.schedule(1, [&] {
            ++fired;
            q.schedule(1, [&] { ++fired; });
        });
    });
    q.run();
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(q.now(), 3u);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue q;
    int fired = 0;
    q.scheduleAbs(10, [&] { ++fired; });
    q.scheduleAbs(20, [&] { ++fired; });
    q.scheduleAbs(30, [&] { ++fired; });

    q.runUntil(20);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.now(), 20u);
    EXPECT_EQ(q.pending(), 1u);

    q.run();
    EXPECT_EQ(fired, 3);
}

TEST(EventQueue, RunUntilAdvancesTimeWhenIdle)
{
    EventQueue q;
    q.runUntil(100);
    EXPECT_EQ(q.now(), 100u);
}

TEST(EventQueue, MaxEventsBoundsExecution)
{
    EventQueue q;
    int fired = 0;
    for (int i = 0; i < 100; ++i)
        q.scheduleAbs(Tick(i), [&] { ++fired; });
    EXPECT_EQ(q.run(10), 10u);
    EXPECT_EQ(fired, 10);
    EXPECT_EQ(q.pending(), 90u);
}

TEST(EventQueueDeathTest, SchedulingInThePastPanics)
{
    EventQueue q;
    q.scheduleAbs(10, [] {});
    q.run();
    EXPECT_DEATH(q.scheduleAbs(5, [] {}), "past");
}

TEST(EventQueue, ExecutedCountsAllEvents)
{
    EventQueue q;
    for (int i = 0; i < 7; ++i)
        q.schedule(Tick(i), [] {});
    q.run();
    EXPECT_EQ(q.executed(), 7u);
}

} // namespace
} // namespace tg

/**
 * @file
 * Tests of Segment configuration: replication bookkeeping, eager
 * mappings, counters, peek/poke oracles.
 */

#include <gtest/gtest.h>

#include "api/cluster.hpp"
#include "api/context.hpp"
#include "api/segment.hpp"

namespace tg {
namespace {

using coherence::ProtocolKind;

TEST(Segment, GeometryHelpers)
{
    ClusterSpec spec = ClusterSpec::star(2);
    Cluster c(spec);
    Segment &seg = c.allocShared("s", 3 * 8192, 1);

    EXPECT_EQ(seg.pages(), 3u);
    EXPECT_EQ(seg.bytes(), 3u * 8192);
    EXPECT_EQ(seg.word(5), seg.base() + 40);
    EXPECT_EQ(seg.shadowWord(5), shadowOf(seg.base() + 40));
    EXPECT_EQ(seg.homeWord(1024), seg.homeFrame() + 8192);
    EXPECT_EQ(seg.homePage(2), seg.homeFrame() + 2 * 8192);
    EXPECT_EQ(node::nodeOf(seg.homeFrame()), 1u);
}

TEST(Segment, PokeThenPeekRoundTrip)
{
    ClusterSpec spec = ClusterSpec::star(2);
    Cluster c(spec);
    Segment &seg = c.allocShared("s", 8192, 0);
    seg.poke(3, 333);
    EXPECT_EQ(seg.peek(3), 333u);
}

TEST(Segment, ReplicationCopiesContentAndRemaps)
{
    ClusterSpec spec = ClusterSpec::star(2);
    Cluster c(spec);
    Segment &seg = c.allocShared("s", 2 * 8192, 0);
    seg.poke(0, 5);
    seg.poke(1024, 6); // second page

    seg.replicate(1, ProtocolKind::OwnerCounter);

    // Directory has entries for both pages with node 1 copies.
    for (std::size_t p = 0; p < 2; ++p) {
        auto *e = c.directory().byHome(seg.homePage(p));
        ASSERT_NE(e, nullptr);
        EXPECT_TRUE(e->hasCopy(1));
        EXPECT_EQ(e->owner, 0u);
    }
    // Content was copied.
    EXPECT_EQ(seg.peekCopy(1, 0), 5u);
    EXPECT_EQ(seg.peekCopy(1, 1024), 6u);

    // Node 1's mapping is now local.
    EXPECT_EQ(c.node(1).defaultAddressSpace().lookup(seg.base()).mode,
              node::PageMode::SharedLocal);
}

TEST(Segment, ReplicatedReadsAreLocalFast)
{
    ClusterSpec spec = ClusterSpec::star(2);
    Cluster c(spec);
    Segment &seg = c.allocShared("s", 8192, 0);
    seg.poke(0, 9);
    seg.replicate(1, ProtocolKind::OwnerCounter);

    Tick dur = 0;
    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        (void)co_await ctx.read(seg.word(0)); // warm TLB
        const Tick t0 = ctx.now();
        const Word v = co_await ctx.read(seg.word(0));
        dur = ctx.now() - t0;
        EXPECT_EQ(v, 9u);
    });
    c.run(10'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
    EXPECT_LT(dur, 500u); // local uncached, not ~7000 ns remote
}

TEST(Segment, MixedProtocolReplicationIsFatal)
{
    ClusterSpec spec = ClusterSpec::star(3);
    Cluster c(spec);
    Segment &seg = c.allocShared("s", 8192, 0);
    seg.replicate(1, ProtocolKind::OwnerCounter);
    EXPECT_DEATH(seg.replicate(2, ProtocolKind::Naive), "already");
}

TEST(Segment, EagerMappingUsesMulticastEntries)
{
    ClusterSpec spec = ClusterSpec::star(3);
    Cluster c(spec);
    Segment &seg = c.allocShared("s", 2 * 8192, 0);
    seg.eagerTo(1);
    seg.eagerTo(2);
    // 2 pages x 2 readers = 4 multicast entries on the owner HIB.
    EXPECT_EQ(c.hibOf(0).multicast().used(), 4u);
}

TEST(Segment, CountersOnlyMeterRemoteNodes)
{
    ClusterSpec spec = ClusterSpec::star(2);
    Cluster c(spec);
    Segment &seg = c.allocShared("s", 8192, 0);
    EXPECT_DEATH(seg.armCounters(0, 4, 4), "remote");
}

} // namespace
} // namespace tg

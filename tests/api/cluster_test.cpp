/**
 * @file
 * Tests of the Cluster facade: segment allocation and mapping, private
 * memory, VA uniqueness, run semantics, live replication.
 */

#include <gtest/gtest.h>

#include "api/cluster.hpp"
#include "api/context.hpp"
#include "api/segment.hpp"

namespace tg {
namespace {

TEST(Cluster, SegmentsShareOneVaAcrossNodes)
{
    ClusterSpec spec = ClusterSpec::star(3);
    Cluster c(spec);
    Segment &a = c.allocShared("a", 100, 0);
    Segment &b = c.allocShared("b", 100, 1);

    EXPECT_NE(a.base(), b.base());
    EXPECT_EQ(a.pages(), 1u);
    EXPECT_EQ(b.owner(), 1u);

    // Every node translates the same VA; only the access mode differs.
    for (NodeId n = 0; n < 3; ++n) {
        auto pte = c.node(n).defaultAddressSpace().lookup(a.base());
        EXPECT_EQ(pte.frame, a.homeFrame());
        EXPECT_EQ(pte.mode, n == 0 ? node::PageMode::SharedLocal
                                   : node::PageMode::SharedRemote);
    }
}

TEST(Cluster, PrivateMemoryIsNodeLocalAndCacheable)
{
    ClusterSpec spec = ClusterSpec::star(2);
    Cluster c(spec);
    const VAddr va = c.allocPrivate(0, 4096);

    auto pte = c.node(0).defaultAddressSpace().lookup(va);
    EXPECT_EQ(pte.mode, node::PageMode::Private);
    // Unmapped on the other node.
    EXPECT_EQ(c.node(1).defaultAddressSpace().lookup(va).mode,
              node::PageMode::Invalid);

    Word sum = 0;
    c.spawn(0, [&](Ctx &ctx) -> Task<void> {
        for (int i = 0; i < 16; ++i)
            co_await ctx.write(va + i * 8, Word(i));
        for (int i = 0; i < 16; ++i)
            sum += co_await ctx.read(va + i * 8);
    });
    c.run(10'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
    EXPECT_EQ(sum, 120u);
    EXPECT_GT(c.node(0).cache().hits(), 0u);
}

TEST(Cluster, RunReturnsWhenProgramsFinish)
{
    ClusterSpec spec = ClusterSpec::star(2);
    Cluster c(spec);
    Segment &seg = c.allocShared("s", 100, 0);
    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        co_await ctx.write(seg.word(0), 1);
        co_await ctx.fence();
    });
    const Tick end = c.run(1'000'000'000ULL);
    EXPECT_TRUE(c.allDone());
    EXPECT_GT(end, 0u);
    EXPECT_LT(end, 1'000'000'000ULL);
}

TEST(Cluster, RunLimitStopsSpinners)
{
    ClusterSpec spec = ClusterSpec::star(2);
    Cluster c(spec);
    Segment &seg = c.allocShared("s", 100, 0);
    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        // Spins forever: the flag never arrives.
        while (co_await ctx.read(seg.word(0)) == 0)
            co_await ctx.compute(1000);
    });
    c.run(/*limit=*/50'000'000);
    EXPECT_FALSE(c.allDone());
}

TEST(Cluster, LiveReplicationMakesAccessesLocal)
{
    ClusterSpec spec = ClusterSpec::star(2);
    Cluster c(spec);
    Segment &seg = c.allocShared("s", 8192, 0);
    seg.poke(0, 31);

    Tick before = 0, after = 0;
    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        Tick t0 = ctx.now();
        (void)co_await ctx.read(seg.word(0));
        before = ctx.now() - t0;

        // OS replicates the page at runtime (charged path).
        bool done = false;
        c.replicatePageLive(1, seg.homePage(0), [&] { done = true; });
        while (!done)
            co_await ctx.compute(10'000);

        t0 = ctx.now();
        const Word v = co_await ctx.read(seg.word(0));
        after = ctx.now() - t0;
        EXPECT_EQ(v, 31u);
    });
    c.run(100'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
    EXPECT_GT(before, after * 5); // remote ~7 us vs local access
}

TEST(Cluster, ManyNodesOnChainTopology)
{
    ClusterSpec spec = ClusterSpec::chain(8, 3);
    Cluster c(spec);
    Segment &seg = c.allocShared("s", 8192, 0);

    for (NodeId n = 1; n < 8; ++n) {
        c.spawn(n, [&, n](Ctx &ctx) -> Task<void> {
            co_await ctx.write(seg.word(n), Word(n) * 11);
            co_await ctx.fence();
        });
    }
    c.run(100'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
    for (NodeId n = 1; n < 8; ++n)
        EXPECT_EQ(seg.peek(n), Word(n) * 11);
}

} // namespace
} // namespace tg

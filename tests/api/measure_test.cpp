/**
 * @file
 * Unit tests of the measurement helpers (Stopwatch, ResultTable).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "api/cluster.hpp"
#include "api/context.hpp"
#include "api/measure.hpp"
#include "api/segment.hpp"

namespace tg {
namespace {

TEST(Stopwatch, MeasuresSimulatedTime)
{
    ClusterSpec spec = ClusterSpec::star(1);
    Cluster c(spec);

    Tick measured = 0;
    c.spawn(0, [&](Ctx &ctx) -> Task<void> {
        Stopwatch sw(ctx);
        co_await ctx.compute(5000);
        measured = sw.elapsed();
        sw.restart();
        co_await ctx.compute(100);
        EXPECT_LT(sw.elapsed(), 5000u);
        EXPECT_GT(sw.elapsedUs(), 0.0);
    });
    c.run(1'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
    // compute(5000) plus one instruction charge.
    EXPECT_GE(measured, 5000u);
    EXPECT_LT(measured, 6000u);
}

TEST(ResultTable, RendersAlignedGrid)
{
    ResultTable t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"a-much-longer-name", "2.5"});
    std::ostringstream os;
    t.print(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("| name"), std::string::npos);
    EXPECT_NE(s.find("a-much-longer-name"), std::string::npos);
    // Grid borders present.
    EXPECT_NE(s.find("+--"), std::string::npos);
    // Every line has the same width.
    std::istringstream lines(s);
    std::string line, first;
    std::getline(lines, first);
    while (std::getline(lines, line))
        EXPECT_EQ(line.size(), first.size());
}

TEST(ResultTable, NumFormatsFixedPoint)
{
    EXPECT_EQ(ResultTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(ResultTable::num(3.14159, 0), "3");
    EXPECT_EQ(ResultTable::num(-1.5, 1), "-1.5");
}

TEST(ResultTableDeathTest, RowWidthMismatchPanics)
{
    ResultTable t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "width");
}

} // namespace
} // namespace tg

/**
 * @file
 * Tests of the builder-style ClusterSpec API and the non-aborting
 * Cluster::build() factory: every named constructor produces a valid
 * spec, every documented rejection path returns a ConfigError instead
 * of dying, and the Result<T> op returns compose with co_await.
 */

#include <gtest/gtest.h>

#include "api/cluster.hpp"
#include "api/context.hpp"
#include "api/segment.hpp"

namespace tg {
namespace {

using coherence::ProtocolKind;

// ---------------------------------------------------------------------
// Named constructors
// ---------------------------------------------------------------------

TEST(SpecBuilder, StarDefaults)
{
    const ClusterSpec spec = ClusterSpec::star(8);
    EXPECT_EQ(spec.topology().kind, net::TopologyKind::Star);
    EXPECT_EQ(spec.topology().nodes, 8u);
    EXPECT_TRUE(spec.topology().validate().ok());
}

TEST(SpecBuilder, RingAndChainCarryPerSwitch)
{
    const ClusterSpec ring = ClusterSpec::ring(12, 3);
    EXPECT_EQ(ring.topology().kind, net::TopologyKind::Ring);
    EXPECT_EQ(ring.topology().numSwitches(), 4u);

    const ClusterSpec chain = ClusterSpec::chain(10, 4);
    EXPECT_EQ(chain.topology().kind, net::TopologyKind::Chain);
    EXPECT_EQ(chain.topology().numSwitches(), 3u);
}

TEST(SpecBuilder, TorusComputesNodeCount)
{
    const ClusterSpec spec = ClusterSpec::torus(4, 4, 4);
    EXPECT_EQ(spec.topology().kind, net::TopologyKind::Torus2D);
    EXPECT_EQ(spec.topology().nodes, 64u);
    EXPECT_EQ(spec.topology().numSwitches(), 16u);
    EXPECT_TRUE(spec.topology().validate().ok());
}

TEST(SpecBuilder, Torus3dComputesNodeCount)
{
    const ClusterSpec spec = ClusterSpec::torus3d(2, 3, 4, 2);
    EXPECT_EQ(spec.topology().kind, net::TopologyKind::Torus3D);
    EXPECT_EQ(spec.topology().nodes, 48u);
    EXPECT_EQ(spec.topology().numSwitches(), 24u);
    EXPECT_TRUE(spec.topology().validate().ok());
}

TEST(SpecBuilder, ForKindPicksCubicalTorus3d)
{
    const ClusterSpec spec =
        ClusterSpec::forKind(net::TopologyKind::Torus3D, 256, 4);
    EXPECT_EQ(spec.topology().torusX, 4u);
    EXPECT_EQ(spec.topology().torusY, 4u);
    EXPECT_EQ(spec.topology().torusZ, 4u);
    EXPECT_EQ(spec.topology().nodes, 256u);
    EXPECT_TRUE(spec.topology().validate().ok());
}

TEST(SpecBuilder, FatTreeDefaultsSpinesToPerSwitch)
{
    const ClusterSpec spec = ClusterSpec::fatTree(16, 4);
    EXPECT_EQ(spec.topology().kind, net::TopologyKind::FatTree);
    EXPECT_EQ(spec.topology().spines, 4u);
    EXPECT_EQ(spec.topology().numSwitches(), 8u); // 4 leaves + 4 spines
    EXPECT_TRUE(spec.topology().validate().ok());
}

TEST(SpecBuilder, ForKindPicksSquareTorus)
{
    const ClusterSpec spec =
        ClusterSpec::forKind(net::TopologyKind::Torus2D, 64, 4);
    EXPECT_EQ(spec.topology().torusX, 4u);
    EXPECT_EQ(spec.topology().torusY, 4u);
    EXPECT_EQ(spec.topology().nodes, 64u);
}

TEST(SpecBuilder, ChainersCompose)
{
    const ClusterSpec spec = ClusterSpec::torus(2, 2, 2)
                                 .protocol(ProtocolKind::Invalidate)
                                 .trace()
                                 .seed(77)
                                 .prototype(Prototype::TelegraphosII)
                                 .tune([](Config &c) { c.cpuQuantum = 1; });
    EXPECT_EQ(spec.defaultProtocol, ProtocolKind::Invalidate);
    EXPECT_TRUE(spec.config.tracePackets);
    EXPECT_EQ(spec.config.seed, 77u);
    EXPECT_EQ(spec.config.prototype, Prototype::TelegraphosII);
    EXPECT_EQ(spec.config.cpuQuantum, 1u);
}

// ---------------------------------------------------------------------
// Cluster::build rejection paths (no fatal(), a ConfigError instead)
// ---------------------------------------------------------------------

TEST(ClusterBuild, ZeroNodesIsRejected)
{
    auto r = Cluster::build(ClusterSpec::star(0));
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().message.find("node"), std::string::npos);
}

TEST(ClusterBuild, TooSmallRingIsRejected)
{
    auto r = Cluster::build(ClusterSpec::ring(4, 4));
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().message.find("ring"), std::string::npos);
}

TEST(ClusterBuild, NonRectangularTorusIsRejected)
{
    // The raw topology field is gone; a deliberately-broken spec now
    // has to come in through the runtime-assembly escape hatch.
    net::TopologySpec t;
    t.kind = net::TopologyKind::Torus2D;
    t.torusX = 3;
    t.torusY = 3;
    t.nodesPerSwitch = 2;
    t.nodes = 17; // does not fill the 3x3 grid
    auto r = Cluster::build(ClusterSpec::fromTopology(t));
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().message.find("non-rectangular"), std::string::npos);
}

TEST(ClusterBuild, PortOverflowIsRejected)
{
    auto r = Cluster::build(ClusterSpec::star(5000));
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().message.find("ports"), std::string::npos);
}

TEST(ClusterBuild, ValidSpecYieldsWorkingCluster)
{
    auto r = Cluster::build(ClusterSpec::torus(2, 2, 2).seed(3));
    ASSERT_TRUE(r.ok());
    Cluster &c = *r.value();
    EXPECT_EQ(c.numNodes(), 8u);

    Segment &seg = c.allocShared("s", 8192, 0);
    c.spawn(7, [&](Ctx &ctx) -> Task<void> {
        co_await ctx.write(seg.word(0), 1234);
        co_await ctx.fence();
    });
    c.run();
    EXPECT_TRUE(c.allDone());
    EXPECT_EQ(seg.peek(0), 1234u);
}

// ---------------------------------------------------------------------
// Result<T> op returns
// ---------------------------------------------------------------------

TEST(OpResult, SuccessfulOpsReportNoError)
{
    Cluster c(ClusterSpec::star(2));
    Segment &seg = c.allocShared("s", 8192, 0);
    bool checked = false;
    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        Result<void> w = co_await ctx.write(seg.word(0), 5);
        EXPECT_TRUE(w.ok());
        Result<Word> r = co_await ctx.read(seg.word(0));
        EXPECT_TRUE(r.ok());
        EXPECT_EQ(r.value(), 5u);
        Word plain = co_await ctx.read(seg.word(0)); // implicit unwrap
        EXPECT_EQ(plain, 5u);
        Result<void> f = co_await ctx.fence();
        EXPECT_TRUE(f.ok());
        checked = true;
    });
    c.run();
    EXPECT_TRUE(checked);
}

TEST(OpResult, LinkFailureSurfacesInResult)
{
    FaultSpec fault;
    fault.dropRate = 1.0;      // node 1's egress always lost:
    fault.linkFilter = "up1";  // retries exhaust, the write dies
    fault.retryTimeout = 1000;
    fault.maxRetries = 2;
    ClusterSpec spec = ClusterSpec::star(2).seed(5).faults(fault);
    Cluster c(spec);
    Segment &seg = c.allocShared("s", 8192, 0);
    bool saw_error = false;
    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        co_await ctx.write(seg.word(0), 1);
        Result<void> f = co_await ctx.fence();
        saw_error = !f.ok() && f.error() == OpError::LinkFailure;
    });
    c.run(/*limit=*/10'000'000'000ULL);
    EXPECT_TRUE(saw_error);
}

} // namespace
} // namespace tg

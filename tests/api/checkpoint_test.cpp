/**
 * @file
 * Cluster checkpoint/restore round-trip tests (DESIGN.md section 14.5).
 *
 * The contract under test: checkpoint a quiescent cluster, rebuild a
 * fresh cluster from the same spec + setup calls, restore, continue the
 * workload — and the trace hash evolves bit-identically to the run that
 * never checkpointed.
 */

#include <gtest/gtest.h>

#include <vector>

#include "api/cluster.hpp"
#include "api/context.hpp"
#include "api/segment.hpp"

namespace tg {
namespace {

ClusterSpec
specUnderTest()
{
    return ClusterSpec::star(4)
        .protocol(coherence::ProtocolKind::OwnerCounter)
        .trace(true)
        .seed(1234);
}

/** Setup replay: everything the restore contract requires to happen
 *  identically before restore() — allocation and replication. */
Segment &
setUp(Cluster &c)
{
    Segment &seg = c.allocShared("data", 4096, 0);
    seg.replicate(1, coherence::ProtocolKind::OwnerCounter);
    seg.replicate(2, coherence::ProtocolKind::OwnerCounter);
    return seg;
}

/** First half of the workload: concurrent writers + an atomic. */
void
phase1(Cluster &c, Segment &seg)
{
    for (NodeId n = 1; n <= 3; ++n) {
        c.spawn(n, [&seg, n](Ctx &ctx) -> Task<void> {
            for (int i = 0; i < 8; ++i)
                co_await ctx.write(seg.word(std::size_t(n) * 8 + i),
                                   Word(100 * n + i));
            co_await ctx.fetchAdd(seg.word(0), 1);
            co_await ctx.fence();
        });
    }
}

/** Second half: reads of phase-1 data, more writes, another atomic. */
void
phase2(Cluster &c, Segment &seg, std::vector<Word> &read_back)
{
    c.spawn(2, [&seg, &read_back](Ctx &ctx) -> Task<void> {
        for (int i = 8; i < 32; ++i)
            read_back.push_back(co_await ctx.read(seg.word(i)));
        co_await ctx.fence();
    });
    c.spawn(1, [&seg](Ctx &ctx) -> Task<void> {
        for (int i = 0; i < 8; ++i)
            co_await ctx.write(seg.word(40 + i), Word(7000 + i));
        co_await ctx.fetchAdd(seg.word(0), 10);
        co_await ctx.fence();
    });
}

TEST(Checkpoint, RoundTripContinuesBitIdentically)
{
    // Reference: run both phases without ever checkpointing.
    Cluster ref(specUnderTest());
    Segment &ref_seg = setUp(ref);
    phase1(ref, ref_seg);
    ref.run();
    ASSERT_TRUE(ref.allDone());
    ASSERT_TRUE(ref.auditQuiescent());
    std::vector<Word> ref_reads;
    phase2(ref, ref_seg, ref_reads);
    ref.run();
    ASSERT_TRUE(ref.allDone());
    const std::uint64_t ref_hash = ref.traceHash();
    const std::uint64_t ref_len = ref.traceLength();

    // Checkpointed: identical phase 1, snapshot at quiescence.
    std::string blob;
    {
        Cluster a(specUnderTest());
        Segment &seg = setUp(a);
        phase1(a, seg);
        a.run();
        ASSERT_TRUE(a.allDone());
        blob = a.checkpoint();
    }
    ASSERT_FALSE(blob.empty());

    // Restored: fresh cluster, replayed setup, restore, phase 2 only.
    Cluster b(specUnderTest());
    Segment &b_seg = setUp(b);
    b.restore(blob);
    std::vector<Word> b_reads;
    phase2(b, b_seg, b_reads);
    b.run();
    ASSERT_TRUE(b.allDone());
    ASSERT_TRUE(b.auditQuiescent());

    EXPECT_EQ(b.traceHash(), ref_hash);
    EXPECT_EQ(b.traceLength(), ref_len);
    EXPECT_EQ(b_reads, ref_reads);
}

TEST(Checkpoint, RestoredClusterCheckpointsIdentically)
{
    std::string blob;
    {
        Cluster a(specUnderTest());
        Segment &seg = setUp(a);
        phase1(a, seg);
        a.run();
        ASSERT_TRUE(a.allDone());
        blob = a.checkpoint();
    }

    Cluster b(specUnderTest());
    setUp(b);
    b.restore(blob);
    EXPECT_EQ(b.checkpoint(), blob);
}

TEST(Checkpoint, RestoresClockHashAndLedger)
{
    Cluster a(specUnderTest());
    Segment &seg = setUp(a);
    phase1(a, seg);
    a.run();
    ASSERT_TRUE(a.allDone());
    const std::string blob = a.checkpoint();

    Cluster b(specUnderTest());
    setUp(b);
    ASSERT_EQ(b.now(), 0u);
    b.restore(blob);
    EXPECT_EQ(b.now(), a.now());
    EXPECT_EQ(b.traceHash(), a.traceHash());
    EXPECT_EQ(b.traceLength(), a.traceLength());
    EXPECT_TRUE(b.auditQuiescent());
    // Memory contents carried over: a phase-1 value is readable.
    EXPECT_EQ(b.node(0).mem().read(
                  node::offsetOf(seg.homeFrame() + 9 * 8)),
              a.node(0).mem().read(node::offsetOf(seg.homeFrame() + 9 * 8)));
}

TEST(Checkpoint, RefusesMalformedBlobAndStartedCluster)
{
    Cluster a(specUnderTest());
    setUp(a);
    EXPECT_DEATH(a.restore("not-a-checkpoint"), "expected");

    Cluster b(specUnderTest());
    Segment &seg = setUp(b);
    phase1(b, seg);
    b.run();
    ASSERT_TRUE(b.allDone());
    const std::string blob = b.checkpoint();
    EXPECT_DEATH(b.restore(blob), "freshly built");
}

TEST(Checkpoint, RefusesFaultyConfiguration)
{
    FaultSpec f;
    f.dropRate = 0.01;
    Cluster c(specUnderTest().faults(f));
    setUp(c);
    c.run();
    EXPECT_DEATH((void)c.checkpoint(), "fault layer");
}

} // namespace
} // namespace tg

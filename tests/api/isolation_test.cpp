/**
 * @file
 * Process-isolation tests: Telegraphos protection is entirely
 * mapping-based (paper section 2.1) — a process without a mapping for a
 * shared page simply cannot reach it, and a process cannot use another
 * process's Telegraphos context (sections 2.2.4-2.2.5).
 */

#include <gtest/gtest.h>

#include "api/cluster.hpp"
#include "api/context.hpp"
#include "api/segment.hpp"

namespace tg {
namespace {

TEST(Isolation, UnmappedProcessCannotTouchSharedSegments)
{
    ClusterSpec spec = ClusterSpec::star(2);
    Cluster c(spec);
    Segment &seg = c.allocShared("secret", 8192, 0);
    seg.poke(0, 12345);

    // The isolated process sees the same virtual address but has no
    // mapping: the TLB faults and the OS kills it.
    c.spawnIsolated(1, [&](Ctx &ctx) -> Task<void> {
        (void)co_await ctx.read(seg.word(0));
    });
    c.run(10'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
    EXPECT_TRUE(c.anyKilled());
    EXPECT_EQ(seg.peek(0), 12345u); // untouched
}

TEST(Isolation, IsolatedWriteIsAlsoBlocked)
{
    ClusterSpec spec = ClusterSpec::star(2);
    Cluster c(spec);
    Segment &seg = c.allocShared("secret", 8192, 0);

    c.spawnIsolated(1, [&](Ctx &ctx) -> Task<void> {
        co_await ctx.write(seg.word(0), 666);
        co_await ctx.fence();
    });
    c.run(10'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
    EXPECT_TRUE(c.anyKilled());
    EXPECT_EQ(seg.peek(0), 0u);
}

TEST(Isolation, IsolatedProcessStillOwnsItsContext)
{
    // The isolated process cannot reach shared memory, but its own
    // Telegraphos context page IS mapped — the per-process protection
    // boundary is exactly the mapping set.
    ClusterSpec spec = ClusterSpec::star(2);
    Cluster c(spec);

    bool survived = false;
    c.spawnIsolated(1, [&](Ctx &ctx) -> Task<void> {
        // Touching only private machinery (compute + fence) is fine.
        co_await ctx.compute(10'000);
        co_await ctx.fence();
        survived = true;
    });
    c.run(10'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
    EXPECT_FALSE(c.anyKilled());
    EXPECT_TRUE(survived);
}

TEST(Isolation, ProcessesShareTheCpuButNotTheAddressSpace)
{
    ClusterSpec spec = ClusterSpec::star(2);
    spec.config.cpuQuantum = 50'000;
    Cluster c(spec);
    Segment &seg = c.allocShared("s", 8192, 0);

    // A normal process works with the segment while an isolated one
    // (time-sharing the same CPU) faults on it: TLB entries must not
    // leak between the address spaces.
    bool normal_ok = false;
    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        for (int i = 0; i < 10; ++i) {
            co_await ctx.write(seg.word(0), Word(i));
            co_await ctx.compute(60'000); // invite preemption
        }
        co_await ctx.fence();
        normal_ok = (co_await ctx.read(seg.word(0))) == 9;
    });
    c.spawnIsolated(1, [&](Ctx &ctx) -> Task<void> {
        co_await ctx.compute(100'000);
        (void)co_await ctx.read(seg.word(0)); // dies here
    });
    c.run(100'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
    EXPECT_TRUE(normal_ok);
    EXPECT_TRUE(c.anyKilled());
    EXPECT_GT(c.node(1).cpu().contextSwitches(), 0u);
}

} // namespace
} // namespace tg

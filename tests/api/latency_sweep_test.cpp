/**
 * @file
 * Parameterized latency sweeps: remote-operation latency must grow
 * monotonically with switch distance, and every basic operation must
 * behave across topologies and prototypes (property-style coverage).
 */

#include <gtest/gtest.h>

#include "api/cluster.hpp"
#include "api/context.hpp"
#include "api/segment.hpp"

namespace tg {
namespace {

Tick
readLatency(Cluster &c, NodeId reader, Segment &seg)
{
    Tick lat = 0;
    c.spawn(reader, [&](Ctx &ctx) -> Task<void> {
        (void)co_await ctx.read(seg.word(0)); // warm TLB
        const Tick t0 = ctx.now();
        (void)co_await ctx.read(seg.word(0));
        lat = ctx.now() - t0;
    });
    c.run(100'000'000'000ULL);
    return lat;
}

TEST(LatencySweep, ReadLatencyGrowsWithHopCount)
{
    ClusterSpec spec = ClusterSpec::chain(8, 2);
    Cluster c(spec);
    Segment &seg = c.allocShared("s", 8192, 0);

    // Readers progressively further down the chain.
    Tick prev = 0;
    for (NodeId reader : {NodeId(1), NodeId(3), NodeId(5), NodeId(7)}) {
        const Tick lat = readLatency(c, reader, seg);
        EXPECT_GT(lat, prev) << "reader " << unsigned(reader);
        prev = lat;
    }
    // Sanity: nearest remote read is in the paper's ballpark.
    EXPECT_GT(readLatency(c, 1, seg), 5000u);
}

struct SweepParam
{
    Prototype proto;
    net::TopologyKind kind;
    std::size_t nodes;
};

class OpsEverywhere : public ::testing::TestWithParam<SweepParam>
{
};

TEST_P(OpsEverywhere, AllBasicOpsWork)
{
    const SweepParam p = GetParam();
    ClusterSpec spec =
        ClusterSpec::forKind(p.kind, p.nodes, 2).prototype(p.proto);
    Cluster c(spec);
    Segment &seg = c.allocShared("s", 8192, 0);
    Segment &dst = c.allocShared("d", 8192, NodeId(p.nodes - 1));
    seg.poke(5, 55);

    const NodeId worker = NodeId(p.nodes - 1);
    bool ok = true;
    c.spawn(worker, [&](Ctx &ctx) -> Task<void> {
        co_await ctx.write(seg.word(0), 11);
        co_await ctx.fence();
        ok &= (co_await ctx.read(seg.word(0))) == 11;
        ok &= (co_await ctx.read(seg.word(5))) == 55;
        ok &= (co_await ctx.fetchAdd(seg.word(1), 2)) == 0;
        ok &= (co_await ctx.fetchStore(seg.word(2), 9)) == 0;
        ok &= (co_await ctx.cas(seg.word(2), 9, 10)) == 9;
        co_await ctx.copy(seg.word(5), dst.word(0), 8);
        co_await ctx.fence();
        ok &= (co_await ctx.read(dst.word(0))) == 55;
    });
    c.run(400'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
    EXPECT_FALSE(c.anyKilled());
    EXPECT_TRUE(ok);
    EXPECT_EQ(seg.peek(1), 2u);
    EXPECT_EQ(seg.peek(2), 10u);
}

INSTANTIATE_TEST_SUITE_P(
    Everywhere, OpsEverywhere,
    ::testing::Values(
        SweepParam{Prototype::TelegraphosI, net::TopologyKind::Star, 2},
        SweepParam{Prototype::TelegraphosII, net::TopologyKind::Star, 2},
        SweepParam{Prototype::TelegraphosI, net::TopologyKind::Chain, 6},
        SweepParam{Prototype::TelegraphosII, net::TopologyKind::Chain, 6},
        SweepParam{Prototype::TelegraphosI, net::TopologyKind::Ring, 6},
        SweepParam{Prototype::TelegraphosII, net::TopologyKind::Ring, 8}),
    [](const auto &info) {
        const auto &p = info.param;
        std::string n =
            p.proto == Prototype::TelegraphosI ? "TeleI_" : "TeleII_";
        n += p.kind == net::TopologyKind::Star    ? "Star"
             : p.kind == net::TopologyKind::Chain ? "Chain"
                                                  : "Ring";
        return n + std::to_string(p.nodes);
    });

} // namespace
} // namespace tg

/**
 * @file
 * Tests of the collective operations library.
 */

#include <gtest/gtest.h>

#include "api/cluster.hpp"
#include "api/collectives.hpp"
#include "api/context.hpp"

namespace tg {
namespace {

TEST(Collectives, BroadcastDeliversPayloadToAllMembers)
{
    ClusterSpec spec = ClusterSpec::star(4);
    Cluster c(spec);
    Communicator comm(c, "comm", {0, 1, 2, 3}, 8);

    std::vector<std::vector<Word>> got(4);
    for (NodeId n = 0; n < 4; ++n) {
        c.spawn(n, [&, n](Ctx &ctx) -> Task<void> {
            std::vector<Word> io;
            if (n == 2)
                io = {7, 8, 9};
            co_await comm.broadcast(ctx, io, /*root=*/2);
            got[n] = io;
        });
    }
    c.run(400'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
    for (NodeId n = 0; n < 4; ++n) {
        ASSERT_GE(got[n].size(), 3u) << "node " << n;
        EXPECT_EQ(got[n][0], 7u);
        EXPECT_EQ(got[n][1], 8u);
        EXPECT_EQ(got[n][2], 9u);
    }
}

TEST(Collectives, RepeatedBroadcastsStaySequenced)
{
    ClusterSpec spec = ClusterSpec::star(3);
    Cluster c(spec);
    Communicator comm(c, "comm", {0, 1, 2}, 4);

    bool ok = true;
    for (NodeId n = 0; n < 3; ++n) {
        c.spawn(n, [&, n](Ctx &ctx) -> Task<void> {
            for (int round = 1; round <= 5; ++round) {
                std::vector<Word> io;
                if (n == 0)
                    io = {Word(round) * 11};
                co_await comm.broadcast(ctx, io, 0);
                if (io[0] != Word(round) * 11)
                    ok = false;
            }
        });
    }
    c.run(800'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
    EXPECT_TRUE(ok);
}

TEST(Collectives, ReduceSumsContributionsAtRoot)
{
    ClusterSpec spec = ClusterSpec::star(4);
    Cluster c(spec);
    Communicator comm(c, "comm", {0, 1, 2, 3});

    Word root_sum = 0;
    for (NodeId n = 0; n < 4; ++n) {
        c.spawn(n, [&, n](Ctx &ctx) -> Task<void> {
            const Word r =
                co_await comm.reduceSum(ctx, Word(n) + 1, /*root=*/1);
            if (n == 1)
                root_sum = r;
        });
    }
    c.run(400'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
    EXPECT_EQ(root_sum, 1u + 2 + 3 + 4);
}

TEST(Collectives, AllReduceGivesEveryoneTheSum)
{
    ClusterSpec spec = ClusterSpec::star(3);
    Cluster c(spec);
    Communicator comm(c, "comm", {0, 1, 2});

    std::vector<Word> sums(3, 0);
    for (NodeId n = 0; n < 3; ++n) {
        c.spawn(n, [&, n](Ctx &ctx) -> Task<void> {
            sums[n] = co_await comm.allReduceSum(ctx, Word(n) * 10);
        });
    }
    c.run(400'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
    for (NodeId n = 0; n < 3; ++n)
        EXPECT_EQ(sums[n], 30u);
}

TEST(Collectives, ManyRoundsOfAllReduceRotateSlotsSafely)
{
    // More rounds than the internal slot rotation: exercises reuse.
    ClusterSpec spec = ClusterSpec::star(3);
    Cluster c(spec);
    Communicator comm(c, "comm", {0, 1, 2});

    bool ok = true;
    for (NodeId n = 0; n < 3; ++n) {
        c.spawn(n, [&, n](Ctx &ctx) -> Task<void> {
            for (int round = 1; round <= 10; ++round) {
                const Word s = co_await comm.allReduceSum(
                    ctx, Word(round) * (Word(n) + 1));
                if (s != Word(round) * 6) // (1+2+3) * round
                    ok = false;
            }
        });
    }
    c.run(4'000'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
    EXPECT_TRUE(ok);
}

TEST(Collectives, BarrierSynchronizesMembers)
{
    ClusterSpec spec = ClusterSpec::star(3);
    Cluster c(spec);
    Communicator comm(c, "comm", {0, 1, 2});

    std::vector<Tick> after(3, 0);
    for (NodeId n = 0; n < 3; ++n) {
        c.spawn(n, [&, n](Ctx &ctx) -> Task<void> {
            co_await ctx.compute(Tick(n) * 200'000); // staggered arrival
            co_await comm.barrier(ctx);
            after[n] = ctx.now();
        });
    }
    c.run(400'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
    // Nobody passes the barrier before the last arrival (~400 us).
    for (NodeId n = 0; n < 3; ++n)
        EXPECT_GE(after[n], 400'000u);
}

} // namespace
} // namespace tg

/**
 * @file
 * Tests of the collective operations library: semantics on both
 * backends, host-vs-NIC differential equivalence, trace-hash
 * determinism, fault behaviour and the stats surface.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "api/cluster.hpp"
#include "api/collectives.hpp"
#include "api/context.hpp"

namespace tg {
namespace {

const CollectiveBackend kBackends[] = {CollectiveBackend::Host,
                                       CollectiveBackend::Nic};

const char *
backendName(CollectiveBackend b)
{
    return b == CollectiveBackend::Host ? "host" : "nic";
}

TEST(Collectives, BroadcastDeliversPayloadToAllMembers)
{
    for (const CollectiveBackend b : kBackends) {
        ClusterSpec spec = ClusterSpec::star(4).collectives(b);
        Cluster c(spec);
        Communicator &comm = c.communicator("comm", {0, 1, 2, 3}, 8);

        std::vector<std::vector<Word>> got(4);
        for (NodeId n = 0; n < 4; ++n) {
            c.spawn(n, [&, n](Ctx &ctx) -> Task<void> {
                std::vector<Word> io;
                if (n == 2)
                    io = {7, 8, 9};
                co_await comm.broadcast(ctx, io, /*root=*/2);
                got[n] = io;
            });
        }
        c.run(400'000'000'000ULL);
        ASSERT_TRUE(c.allDone()) << backendName(b);
        for (NodeId n = 0; n < 4; ++n) {
            ASSERT_EQ(got[n].size(), 3u)
                << backendName(b) << " node " << n;
            EXPECT_EQ(got[n][0], 7u);
            EXPECT_EQ(got[n][1], 8u);
            EXPECT_EQ(got[n][2], 9u);
        }
    }
}

TEST(Collectives, RepeatedBroadcastsStaySequenced)
{
    for (const CollectiveBackend b : kBackends) {
        ClusterSpec spec = ClusterSpec::star(3).collectives(b);
        Cluster c(spec);
        Communicator &comm = c.communicator("comm", {0, 1, 2}, 4);

        bool ok = true;
        for (NodeId n = 0; n < 3; ++n) {
            c.spawn(n, [&, n](Ctx &ctx) -> Task<void> {
                for (int round = 1; round <= 5; ++round) {
                    std::vector<Word> io;
                    if (n == 0)
                        io = {Word(round) * 11};
                    co_await comm.broadcast(ctx, io, 0);
                    if (io.size() != 1 || io[0] != Word(round) * 11)
                        ok = false;
                }
            });
        }
        c.run(800'000'000'000ULL);
        ASSERT_TRUE(c.allDone()) << backendName(b);
        EXPECT_TRUE(ok) << backendName(b);
    }
}

TEST(Collectives, ReduceSumsContributionsAtRootOnly)
{
    for (const CollectiveBackend b : kBackends) {
        ClusterSpec spec = ClusterSpec::star(4).collectives(b);
        Cluster c(spec);
        Communicator &comm = c.communicator("comm", {0, 1, 2, 3});

        Word root_sum = 0;
        int at_root_count = 0;
        for (NodeId n = 0; n < 4; ++n) {
            c.spawn(n, [&, n](Ctx &ctx) -> Task<void> {
                const ReduceOut r =
                    co_await comm.reduceSum(ctx, Word(n) + 1, /*root=*/1);
                if (r.atRoot) {
                    ++at_root_count;
                    root_sum = r.value;
                    EXPECT_EQ(n, 1u) << backendName(b);
                }
            });
        }
        c.run(400'000'000'000ULL);
        ASSERT_TRUE(c.allDone()) << backendName(b);
        EXPECT_EQ(at_root_count, 1) << backendName(b);
        EXPECT_EQ(root_sum, 1u + 2 + 3 + 4) << backendName(b);
    }
}

TEST(Collectives, AllReduceGivesEveryoneTheSum)
{
    for (const CollectiveBackend b : kBackends) {
        ClusterSpec spec = ClusterSpec::star(3).collectives(b);
        Cluster c(spec);
        Communicator &comm = c.communicator("comm", {0, 1, 2});

        std::vector<Word> sums(3, 0);
        for (NodeId n = 0; n < 3; ++n) {
            c.spawn(n, [&, n](Ctx &ctx) -> Task<void> {
                sums[n] = co_await comm.allReduceSum(ctx, Word(n) * 10);
            });
        }
        c.run(400'000'000'000ULL);
        ASSERT_TRUE(c.allDone()) << backendName(b);
        for (NodeId n = 0; n < 3; ++n)
            EXPECT_EQ(sums[n], 30u) << backendName(b);
    }
}

TEST(Collectives, ManyRoundsOfAllReduceRotateSlotsSafely)
{
    // More rounds than the host backend's slot rotation (and than any
    // NIC descriptor ever outstanding): exercises reuse.
    for (const CollectiveBackend b : kBackends) {
        ClusterSpec spec = ClusterSpec::star(3).collectives(b);
        Cluster c(spec);
        Communicator &comm = c.communicator("comm", {0, 1, 2});

        bool ok = true;
        for (NodeId n = 0; n < 3; ++n) {
            c.spawn(n, [&, n](Ctx &ctx) -> Task<void> {
                for (int round = 1; round <= 10; ++round) {
                    const Word s = co_await comm.allReduceSum(
                        ctx, Word(round) * (Word(n) + 1));
                    if (s != Word(round) * 6) // (1+2+3) * round
                        ok = false;
                }
            });
        }
        c.run(4'000'000'000'000ULL);
        ASSERT_TRUE(c.allDone()) << backendName(b);
        EXPECT_TRUE(ok) << backendName(b);
    }
}

TEST(Collectives, BarrierSynchronizesMembers)
{
    for (const CollectiveBackend b : kBackends) {
        ClusterSpec spec = ClusterSpec::star(3).collectives(b);
        Cluster c(spec);
        Communicator &comm = c.communicator("comm", {0, 1, 2});

        std::vector<Tick> after(3, 0);
        for (NodeId n = 0; n < 3; ++n) {
            c.spawn(n, [&, n](Ctx &ctx) -> Task<void> {
                co_await ctx.compute(Tick(n) * 200'000); // staggered
                co_await comm.barrier(ctx);
                after[n] = ctx.now();
            });
        }
        c.run(400'000'000'000ULL);
        ASSERT_TRUE(c.allDone()) << backendName(b);
        // Nobody passes the barrier before the last arrival (~400 us).
        for (NodeId n = 0; n < 3; ++n)
            EXPECT_GE(after[n], 400'000u) << backendName(b);
    }
}

// ---------------------------------------------------------------------
// Differential: both backends implement identical semantics
// ---------------------------------------------------------------------

/** One mixed collective workload; returns a value signature capturing
 *  everything every member observed. */
std::vector<Word>
runMixedWorkload(ClusterSpec spec, std::uint64_t seed)
{
    Cluster c(spec);
    const std::size_t n_nodes = c.numNodes();
    std::vector<NodeId> members;
    for (NodeId n = 0; n < NodeId(n_nodes); ++n)
        members.push_back(n);
    Communicator &comm = c.communicator("comm", members, 8);

    std::vector<std::vector<Word>> per_node(n_nodes);
    for (NodeId n = 0; n < NodeId(n_nodes); ++n) {
        c.spawn(n, [&, n, seed](Ctx &ctx) -> Task<void> {
            std::vector<Word> &out = per_node[n];

            co_await comm.barrier(ctx);

            const Word all =
                co_await comm.allReduceSum(ctx, seed * (Word(n) + 1));
            out.push_back(all);

            std::vector<Word> io;
            if (n == 2)
                io = {seed, seed + 1, seed + 2};
            co_await comm.broadcast(ctx, io, /*root=*/2);
            out.insert(out.end(), io.begin(), io.end());

            const ReduceOut red =
                co_await comm.reduceSum(ctx, Word(n) + seed, /*root=*/1);
            out.push_back(red.atRoot ? 1 : 0);
            out.push_back(red.value);

            co_await comm.barrier(ctx);
        });
    }
    c.run(8'000'000'000'000ULL);
    EXPECT_TRUE(c.allDone());
    std::string why;
    EXPECT_TRUE(c.auditQuiescent(&why)) << why;

    std::vector<Word> signature;
    for (const auto &v : per_node)
        signature.insert(signature.end(), v.begin(), v.end());
    return signature;
}

TEST(Collectives, HostAndNicAgreeAcrossFabricsAndSeeds)
{
    const ClusterSpec fabrics[] = {
        ClusterSpec::torus(2, 2, 2),     // 8 nodes, 2-D torus
        ClusterSpec::torus3d(2, 2, 2, 1), // 8 nodes, 3-D torus
        ClusterSpec::fatTree(8, 4),      // 8 nodes, 2 leaves + spines
    };
    for (std::size_t f = 0; f < 3; ++f) {
        for (const std::uint64_t seed : {1ULL, 7ULL, 13ULL}) {
            ClusterSpec host = fabrics[f];
            host.seed(seed).collectives(CollectiveBackend::Host);
            ClusterSpec nic = fabrics[f];
            nic.seed(seed).collectives(CollectiveBackend::Nic);

            const auto a = runMixedWorkload(host, seed);
            const auto b = runMixedWorkload(nic, seed);
            EXPECT_EQ(a, b) << "fabric " << f << " seed " << seed;
        }
    }
}

// ---------------------------------------------------------------------
// Determinism: same seed, same backend -> byte-identical audit hash
// ---------------------------------------------------------------------

std::uint64_t
hashOfCollectiveRun(CollectiveBackend b, std::uint32_t shards)
{
    ClusterSpec spec =
        ClusterSpec::torus(2, 2, 2).seed(99).collectives(b).shards(shards);
    Cluster c(spec);
    Communicator &comm =
        c.communicator("comm", {0, 1, 2, 3, 4, 5, 6, 7}, 8);
    for (NodeId n = 0; n < 8; ++n) {
        c.spawn(n, [&, n](Ctx &ctx) -> Task<void> {
            co_await comm.barrier(ctx);
            co_await comm.allReduceSum(ctx, Word(n) * 3 + 1);
            std::vector<Word> io;
            if (n == 0)
                io = {41, 42};
            co_await comm.broadcast(ctx, io, 0);
        });
    }
    c.run(8'000'000'000'000ULL);
    EXPECT_TRUE(c.allDone());
    EXPECT_GT(c.traceLength(), 0u);
    return c.traceHash();
}

TEST(Collectives, SameSeedRunsHashIdenticallyPerBackend)
{
    for (const CollectiveBackend b : kBackends) {
        const std::uint64_t h1 = hashOfCollectiveRun(b, 1);
        const std::uint64_t h2 = hashOfCollectiveRun(b, 1);
        EXPECT_EQ(h1, h2) << backendName(b);
        // The sharded fabric engine contract: shard count never changes
        // results, and the full cluster model runs sequentially either
        // way — the audit hash must not move under .shards(n).
        const std::uint64_t h4 = hashOfCollectiveRun(b, 4);
        EXPECT_EQ(h1, h4) << backendName(b) << " shards=4";
    }
}

// ---------------------------------------------------------------------
// Fault behaviour: a dropped tree link surfaces, never hangs
// ---------------------------------------------------------------------

TEST(Collectives, NicBarrierCompletesThroughDroppedTreeLink)
{
    // Node 2's egress always lost: its CollUp towards the tree parent
    // exhausts the retry budget and dies.  The parent NIC synthesizes
    // the arrival with the error flag set, so the barrier completes on
    // every member and the loss surfaces as OpError::LinkFailure.
    FaultSpec fault;
    fault.dropRate = 1.0;
    fault.linkFilter = "up2";
    fault.retryTimeout = 1000;
    fault.maxRetries = 2;
    ClusterSpec spec = ClusterSpec::star(4)
                           .seed(5)
                           .faults(fault)
                           .collectives(CollectiveBackend::Nic);
    Cluster c(spec);
    Communicator &comm = c.communicator("comm", {0, 1, 2, 3});

    int completed = 0;
    int errors = 0;
    for (NodeId n = 0; n < 4; ++n) {
        c.spawn(n, [&](Ctx &ctx) -> Task<void> {
            const Result<void> r = co_await comm.barrier(ctx);
            ++completed;
            if (!r.ok())
                ++errors;
        });
    }
    c.run(400'000'000'000ULL);
    ASSERT_TRUE(c.allDone()); // completes: nobody hangs on the loss
    EXPECT_EQ(completed, 4);
    EXPECT_GT(errors, 0); // ...and the failure is visible, not silent
    std::uint64_t engine_errors = 0;
    for (NodeId n = 0; n < 4; ++n)
        engine_errors += c.hibOf(n).collectives().errors();
    EXPECT_GT(engine_errors, 0u);
    std::string why;
    EXPECT_TRUE(c.auditQuiescent(&why)) << why;
}

// ---------------------------------------------------------------------
// Stats surface: collective counters are always registered
// ---------------------------------------------------------------------

TEST(Collectives, CollCountersAlwaysOnStatsSurface)
{
    // No communicator is ever built: the counters must still exist,
    // zero-valued, in both the JSON dump and the text report.
    ClusterSpec spec = ClusterSpec::star(2);
    Cluster c(spec);
    c.spawn(0, [](Ctx &ctx) -> Task<void> { co_await ctx.compute(10); });
    c.run(1'000'000'000ULL);

    std::ostringstream json;
    c.statsJson(json);
    EXPECT_NE(json.str().find("node0.hib.coll_barriers"),
              std::string::npos);
    EXPECT_NE(json.str().find("node1.hib.coll_errors"), std::string::npos);

    std::ostringstream report;
    c.statsReport(report);
    EXPECT_NE(report.str().find("hib.coll_barriers"), std::string::npos);
    EXPECT_NE(report.str().find("hib.coll_desc_peak"), std::string::npos);
}

} // namespace
} // namespace tg

/**
 * @file
 * Tests of the message-passing channel built on remote writes.
 */

#include <gtest/gtest.h>

#include "api/cluster.hpp"
#include "api/context.hpp"
#include "api/msg.hpp"
#include "baseline/sockets.hpp"

namespace tg {
namespace {

TEST(MsgChannel, MessagesArriveInOrderWithPayloadIntact)
{
    ClusterSpec spec = ClusterSpec::star(2);
    Cluster c(spec);
    MsgChannel ch(c, "ch", /*sender=*/0, /*receiver=*/1, /*slots=*/4,
                  /*slot_words=*/3);

    constexpr int kMsgs = 20;
    c.spawn(0, [&](Ctx &ctx) -> Task<void> {
        for (int m = 0; m < kMsgs; ++m) {
            std::vector<Word> payload{Word(m), Word(m) * 10,
                                      Word(m) * 100};
            co_await ch.send(ctx, payload);
        }
    });
    bool ok = true;
    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        for (int m = 0; m < kMsgs; ++m) {
            const auto msg = co_await ch.recv(ctx);
            if (msg != std::vector<Word>{Word(m), Word(m) * 10,
                                         Word(m) * 100})
                ok = false;
        }
    });
    c.run(400'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
    EXPECT_TRUE(ok);
    EXPECT_EQ(ch.sent(), unsigned(kMsgs));
    EXPECT_EQ(ch.received(), unsigned(kMsgs));
}

TEST(MsgChannel, SenderBlocksWhenRingIsFull)
{
    ClusterSpec spec = ClusterSpec::star(2);
    Cluster c(spec);
    MsgChannel ch(c, "ch", 0, 1, /*slots=*/2, 1);

    Tick sender_done = 0;
    c.spawn(0, [&](Ctx &ctx) -> Task<void> {
        for (int m = 0; m < 6; ++m) {
            std::vector<Word> payload{Word(m)};
            co_await ch.send(ctx, payload);
        }
        sender_done = ctx.now();
    });
    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        // Slow consumer: the 2-slot ring forces the sender to wait.
        for (int m = 0; m < 6; ++m) {
            co_await ctx.compute(400'000);
            const auto msg = co_await ch.recv(ctx);
            EXPECT_EQ(msg[0], Word(m));
        }
    });
    c.run(400'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
    // Sender could not finish before the consumer drained >= 4 slots.
    EXPECT_GT(sender_done, 3u * 400'000u);
}

TEST(MsgChannel, PendingProbeCountsWaitingMessages)
{
    ClusterSpec spec = ClusterSpec::star(2);
    Cluster c(spec);
    MsgChannel ch(c, "ch", 0, 1, 8, 1);

    c.spawn(0, [&](Ctx &ctx) -> Task<void> {
        for (int m = 0; m < 3; ++m) {
            std::vector<Word> payload{Word(m)};
            co_await ch.send(ctx, payload);
        }
    });
    Word probed = 0;
    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        // Wait until all three are visible, then probe.
        while (co_await ch.pending(ctx) < 3)
            co_await ctx.compute(2000);
        probed = co_await ch.pending(ctx);
        for (int m = 0; m < 3; ++m)
            (void)co_await ch.recv(ctx);
    });
    c.run(400'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
    EXPECT_EQ(probed, 3u);
}

TEST(MsgChannel, BeatsSocketsOnSmallMessages)
{
    ClusterSpec spec = ClusterSpec::star(2);
    Cluster c(spec);
    MsgChannel ch(c, "ch", 0, 1, 16, 2);
    baseline::SocketLayer sockets(c);

    constexpr int kMsgs = 30;
    Tick tg_time = 0, so_time = 0;

    c.spawn(0, [&](Ctx &ctx) -> Task<void> {
        Tick t0 = ctx.now();
        for (int m = 0; m < kMsgs; ++m) {
            std::vector<Word> payload{Word(m), Word(m)};
            co_await ch.send(ctx, payload);
        }
        tg_time = ctx.now() - t0;

        t0 = ctx.now();
        for (int m = 0; m < kMsgs; ++m)
            co_await sockets.send(ctx, 1, 7, 16);
        so_time = ctx.now() - t0;
    });
    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        for (int m = 0; m < kMsgs; ++m)
            (void)co_await ch.recv(ctx);
        for (int m = 0; m < kMsgs; ++m)
            co_await sockets.recv(ctx, 7);
    });
    c.run(400'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
    EXPECT_GT(so_time, tg_time * 5);
}

} // namespace
} // namespace tg

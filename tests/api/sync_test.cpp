/**
 * @file
 * Tests of the synchronization library: mutual exclusion, fence
 * embedding (section 2.3.5), barrier generations — including the
 * paper's flag/data producer-consumer race.
 */

#include <gtest/gtest.h>

#include "api/cluster.hpp"
#include "api/context.hpp"
#include "api/segment.hpp"

namespace tg {
namespace {

TEST(Sync, MutualExclusionUnderContention)
{
    ClusterSpec spec = ClusterSpec::star(4);
    Cluster c(spec);
    Segment &seg = c.allocShared("s", 8192, 0);
    // word 0: lock; word 1: inside-critical-section flag; word 2: counter

    bool violation = false;
    for (NodeId n = 0; n < 4; ++n) {
        c.spawn(n, [&](Ctx &ctx) -> Task<void> {
            for (int i = 0; i < 5; ++i) {
                co_await ctx.lock(seg.word(0));
                if (co_await ctx.read(seg.word(1)) != 0)
                    violation = true;
                co_await ctx.write(seg.word(1), 1);
                co_await ctx.fence();
                co_await ctx.compute(3000);
                co_await ctx.write(seg.word(1), 0);
                const Word v = co_await ctx.read(seg.word(2));
                co_await ctx.write(seg.word(2), v + 1);
                co_await ctx.unlock(seg.word(0));
            }
        });
    }
    c.run(400'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
    EXPECT_FALSE(violation);
    EXPECT_EQ(seg.peek(2), 20u);
}

namespace {

/**
 * The section 2.3.5 scenario: the data page is replicated (owner = node
 * 0) at producer (1) and consumer (2); the flag is homed at the
 * consumer.  The producer's data write travels producer -> owner ->
 * consumer (a reflected write), while the flag write goes producer ->
 * consumer directly — a faster path.  Without the MEMORY_BARRIER the
 * consumer sees the flag before its local data copy has been updated.
 */
Word
runFlagData(bool use_fence)
{
    ClusterSpec spec = ClusterSpec::star(3);
    Cluster c(spec);
    Segment &data = c.allocShared("data", 8192, 0);
    data.replicate(1, coherence::ProtocolKind::OwnerCounter);
    data.replicate(2, coherence::ProtocolKind::OwnerCounter);
    Segment &flag = c.allocShared("flag", 8192, 2);

    Word seen = 1234567;
    c.spawn(1, [&, use_fence](Ctx &ctx) -> Task<void> {
        co_await ctx.write(data.word(0), 42); // via the owner, slow path
        if (use_fence)
            co_await ctx.fence(); // waits for the consumer's UpdateAck
        co_await ctx.write(flag.word(0), 1); // direct, fast path
        co_await ctx.fence();
    });
    c.spawn(2, [&](Ctx &ctx) -> Task<void> {
        while (co_await ctx.read(flag.word(0)) == 0)
            co_await ctx.compute(200);
        seen = co_await ctx.read(data.word(0)); // local copy
    });
    c.run(400'000'000'000ULL);
    EXPECT_TRUE(c.allDone());
    return seen;
}

} // namespace

TEST(Sync, FlagDataRaceWithoutFence)
{
    EXPECT_EQ(runFlagData(false), 0u)
        << "expected the stale-data race of section 2.3.5 to manifest";
}

TEST(Sync, FlagDataRaceFixedByFence)
{
    EXPECT_EQ(runFlagData(true), 42u);
}

TEST(Sync, BarrierReusableAcrossGenerations)
{
    ClusterSpec spec = ClusterSpec::star(3);
    Cluster c(spec);
    Segment &sync = c.allocShared("sync", 8192, 0);
    Segment &data = c.allocShared("data", 8192, 0);

    bool order_ok = true;
    for (NodeId n = 0; n < 3; ++n) {
        c.spawn(n, [&, n](Ctx &ctx) -> Task<void> {
            for (int phase = 0; phase < 4; ++phase) {
                co_await ctx.write(data.word(n), Word(phase * 10 + 1));
                co_await ctx.barrier(sync.word(0), sync.word(1), 3);
                for (NodeId m = 0; m < 3; ++m) {
                    const Word v = co_await ctx.read(data.word(m));
                    if (v != Word(phase * 10 + 1))
                        order_ok = false;
                }
                co_await ctx.barrier(sync.word(0), sync.word(1), 3);
            }
        });
    }
    c.run(800'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
    EXPECT_TRUE(order_ok);
}

} // namespace
} // namespace tg

/**
 * @file
 * Network-level tests: delivery across star / chain / ring topologies
 * with stub endpoints, hop counting, and per-(src,dst) in-order delivery
 * under random cross traffic (the property test the counter protocol's
 * correctness argument needs, paper section 2.3.1).
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "net/network.hpp"
#include "sim/random.hpp"
#include "sim/system.hpp"

namespace tg::net {
namespace {

/** Simple endpoint: an egress queue plus a record of everything received. */
class StubEndpoint : public NodeEndpoint
{
  public:
    explicit StubEndpoint(PacketArena &arena, std::size_t cap = 64)
        : _out(arena, cap), _in(arena, cap)
    {
        _in.onData([this] {
            while (!_in.empty())
                received.push_back(_in.pop());
        });
    }

    BoundedQueue &egress() override { return _out; }
    BoundedQueue &ingress() override { return _in; }

    void
    send(NodeId src, NodeId dst, Word v)
    {
        Packet p;
        p.src = src;
        p.dst = dst;
        p.value = v;
        _out.push(std::move(p));
    }

    std::vector<Packet> received;

  private:
    BoundedQueue _out;
    BoundedQueue _in;
};

struct Harness
{
    explicit Harness(const TopologySpec &spec)
        : sys(Config{}), net(sys, "net", spec)
    {
        for (std::size_t n = 0; n < spec.nodes; ++n) {
            eps.push_back(std::make_unique<StubEndpoint>(sys.arena()));
            net.attach(NodeId(n), *eps.back());
        }
    }

    System sys;
    Network net;
    std::vector<std::unique_ptr<StubEndpoint>> eps;
};

TopologySpec
makeSpec(TopologyKind kind, std::size_t nodes, std::size_t nps = 2)
{
    TopologySpec s;
    s.kind = kind;
    s.nodes = nodes;
    s.nodesPerSwitch = nps;
    return s;
}

TopologySpec
makeTorus(std::size_t x, std::size_t y, std::size_t nps)
{
    TopologySpec s;
    s.kind = TopologyKind::Torus2D;
    s.torusX = x;
    s.torusY = y;
    s.nodesPerSwitch = nps;
    s.nodes = x * y * nps;
    return s;
}

TopologySpec
makeFatTree(std::size_t nodes, std::size_t nps, std::size_t spines)
{
    TopologySpec s;
    s.kind = TopologyKind::FatTree;
    s.nodes = nodes;
    s.nodesPerSwitch = nps;
    s.spines = spines;
    return s;
}

class NetworkTopologies
    : public ::testing::TestWithParam<TopologySpec>
{
};

TEST_P(NetworkTopologies, AllPairsDeliver)
{
    Harness h(GetParam());
    const std::size_t n = h.eps.size();
    for (std::size_t s = 0; s < n; ++s) {
        for (std::size_t d = 0; d < n; ++d) {
            if (s == d)
                continue;
            h.eps[s]->send(NodeId(s), NodeId(d), Word(s * 100 + d));
        }
    }
    h.sys.events().run();

    for (std::size_t d = 0; d < n; ++d) {
        EXPECT_EQ(h.eps[d]->received.size(), n - 1) << "at node " << d;
        for (const auto &p : h.eps[d]->received)
            EXPECT_EQ(p.value, Word(p.src) * 100 + d);
    }
}

TEST_P(NetworkTopologies, InOrderPerSourceUnderRandomTraffic)
{
    Harness h(GetParam());
    const std::size_t n = h.eps.size();
    Rng rng(4242);
    std::map<std::pair<NodeId, NodeId>, Word> seq;

    for (int round = 0; round < 300; ++round) {
        const NodeId s = NodeId(rng.below(n));
        NodeId d = NodeId(rng.below(n));
        if (d == s)
            d = NodeId((d + 1) % n);
        if (!h.eps[s]->egress().full())
            h.eps[s]->send(s, d, seq[{s, d}]++);
        // Let some (random) amount of the network drain.
        h.sys.events().run(rng.below(64));
    }
    h.sys.events().run();

    std::map<std::pair<NodeId, NodeId>, Word> next;
    std::uint64_t total = 0;
    for (std::size_t d = 0; d < n; ++d) {
        for (const auto &p : h.eps[d]->received) {
            const auto key = std::make_pair(p.src, NodeId(d));
            EXPECT_EQ(p.value, next[key])
                << "out of order " << unsigned(p.src) << "->" << d;
            ++next[key];
            ++total;
        }
    }
    std::uint64_t sent = 0;
    for (auto &[k, v] : seq)
        sent += v;
    EXPECT_EQ(total, sent); // nothing lost, nothing duplicated
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, NetworkTopologies,
    ::testing::Values(makeSpec(TopologyKind::Star, 4),
                      makeSpec(TopologyKind::Star, 8),
                      makeSpec(TopologyKind::Chain, 6, 2),
                      makeSpec(TopologyKind::Ring, 6, 2),
                      makeSpec(TopologyKind::Ring, 9, 3),
                      makeTorus(2, 2, 2),
                      makeTorus(3, 4, 2),
                      makeFatTree(8, 2, 2),
                      makeFatTree(12, 4, 3)),
    [](const ::testing::TestParamInfo<TopologySpec> &info) {
        const auto &s = info.param;
        std::string name = s.model().name();
        name[0] = char(std::toupper(name[0]));
        return name + std::to_string(s.nodes);
    });

TEST(Network, HopCounts)
{
    Harness star(makeSpec(TopologyKind::Star, 4));
    EXPECT_EQ(star.net.hops(0, 0), 0u);
    EXPECT_EQ(star.net.hops(0, 3), 1u);

    Harness chain(makeSpec(TopologyKind::Chain, 6, 2));
    EXPECT_EQ(chain.net.hops(0, 1), 1u); // same switch
    EXPECT_EQ(chain.net.hops(0, 5), 3u); // sw0 -> sw1 -> sw2

    Harness ring(makeSpec(TopologyKind::Ring, 6, 2));
    EXPECT_EQ(ring.net.hops(0, 4), 2u); // shortest goes backwards
}

TEST(Network, RingWithTinyBuffersDoesNotDeadlock)
{
    // Regression: without dateline VCs a ring with 2-packet buffers
    // deadlocks on a cyclic buffer dependency under all-to-all traffic.
    Config cfg;
    cfg.switchQueuePackets = 2;
    System sys{cfg};
    TopologySpec spec = makeSpec(TopologyKind::Ring, 8, 2);
    Network net(sys, "net", spec);

    std::vector<std::unique_ptr<StubEndpoint>> eps;
    for (std::size_t n = 0; n < spec.nodes; ++n) {
        eps.push_back(std::make_unique<StubEndpoint>(sys.arena(), 256));
        net.attach(NodeId(n), *eps.back());
    }

    // Saturating all-to-all bursts in both ring directions.
    Rng rng(7);
    std::size_t sent = 0;
    for (int round = 0; round < 40; ++round) {
        for (std::size_t s = 0; s < spec.nodes; ++s) {
            const NodeId d = NodeId((s + 1 + rng.below(spec.nodes - 1)) %
                                    spec.nodes);
            if (!eps[s]->egress().full()) {
                eps[s]->send(NodeId(s), d, Word(round));
                ++sent;
            }
        }
        sys.events().run(rng.below(32));
    }
    sys.events().run();

    std::size_t received = 0;
    for (auto &ep : eps)
        received += ep->received.size();
    EXPECT_EQ(received, sent) << "packets stuck: deadlock";
}

TEST(Network, SwitchForwardedCounts)
{
    Harness h(makeSpec(TopologyKind::Star, 3));
    h.eps[0]->send(0, 1, 1);
    h.eps[0]->send(0, 2, 2);
    h.sys.events().run();
    EXPECT_EQ(h.net.switchForwarded(), 2u);
}

} // namespace
} // namespace tg::net

/**
 * @file
 * Steady-state allocation audit for the packet datapath (DESIGN.md
 * section 14).  A counting global operator new/delete proves the
 * arena's zero-allocation claim: once the PacketArena chunks, the
 * BoundedQueue rings and the event wheel are warm, a full wave of
 * cross-ring traffic — inject, arbitrate, hop, deliver — performs no
 * heap allocation per packet.
 *
 * The counting allocator is linked into the whole net_tests binary; it
 * only counts, so the other suites are unaffected.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "net/network.hpp"
#include "sim/system.hpp"

namespace {
std::atomic<std::uint64_t> g_newCalls{0};

std::uint64_t
allocCount()
{
    return g_newCalls.load(std::memory_order_relaxed);
}

void *
countedAlloc(std::size_t n)
{
    g_newCalls.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}
} // namespace

void *
operator new(std::size_t n)
{
    return countedAlloc(n);
}

void *
operator new[](std::size_t n)
{
    return countedAlloc(n);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace tg::net {
namespace {

/** Endpoint that counts deliveries without accumulating storage (a
 *  received-packet vector would itself allocate mid-measurement). */
class CountingEndpoint : public NodeEndpoint
{
  public:
    explicit CountingEndpoint(PacketArena &arena, std::size_t cap = 64)
        : _out(arena, cap), _in(arena, cap)
    {
        _in.onData([this] {
            while (!_in.empty()) {
                const Packet p = _in.pop();
                ++received;
                valueSum += p.value;
            }
        });
    }

    BoundedQueue &egress() override { return _out; }
    BoundedQueue &ingress() override { return _in; }

    void
    send(NodeId src, NodeId dst, Word v)
    {
        Packet p;
        p.src = src;
        p.dst = dst;
        p.value = v;
        _out.push(std::move(p));
    }

    std::uint64_t received = 0;
    std::uint64_t valueSum = 0;

  private:
    BoundedQueue _out;
    BoundedQueue _in;
};

struct Harness
{
    explicit Harness(const TopologySpec &spec)
        : sys(Config{}), net(sys, "net", spec)
    {
        for (std::size_t n = 0; n < spec.nodes; ++n) {
            eps.push_back(std::make_unique<CountingEndpoint>(sys.arena()));
            net.attach(NodeId(n), *eps.back());
        }
    }

    /** One wave: every node streams @p burst packets three hops around
     *  the ring, then the event queue drains to quiescence.  Each wave
     *  starts phase-aligned to the event wheel (clock advanced to a
     *  multiple of kWheelTicks), so identical waves land in identical
     *  wheel buckets and warm-up capacity carries over exactly. */
    void
    wave(std::size_t burst)
    {
        const Tick period = EventQueue::kWheelTicks;
        sys.events().runUntil(((sys.events().now() / period) + 1) * period);
        const std::size_t n = eps.size();
        for (std::size_t s = 0; s < n; ++s) {
            for (std::size_t i = 0; i < burst; ++i)
                eps[s]->send(NodeId(s), NodeId((s + 3) % n),
                             Word(s * 1000 + i));
        }
        sys.events().run();
    }

    System sys;
    Network net;
    std::vector<std::unique_ptr<CountingEndpoint>> eps;
};

TopologySpec
ringSpec(std::size_t nodes)
{
    TopologySpec s;
    s.kind = TopologyKind::Ring;
    s.nodes = nodes;
    s.nodesPerSwitch = 2;
    return s;
}

TEST(PacketAllocTest, SteadyStateWaveDoesNotAllocate)
{
    Harness h(ringSpec(8));
    constexpr std::size_t kBurst = 24;

    // Warm-up: two identical waves size the arena chunks, the queue
    // rings, the reliability windows and the event wheel; capacity is
    // retained between waves.
    h.wave(kBurst);
    h.wave(kBurst);
    const std::uint64_t delivered0 = h.eps[0]->received;
    ASSERT_GT(delivered0, 0u);

    const std::uint64_t chunks0 = h.sys.arena().chunkAllocs();
    const std::uint64_t before = allocCount();
    h.wave(kBurst);
    const std::uint64_t after = allocCount();

    EXPECT_EQ(after, before) << "packet wave hit the heap";
    EXPECT_EQ(h.sys.arena().chunkAllocs(), chunks0)
        << "arena grew after warm-up";
    // The measured wave really moved traffic end to end.
    for (auto &ep : h.eps)
        EXPECT_EQ(ep->received, 3 * kBurst);
    EXPECT_EQ(h.sys.arena().live(), 0u);
}

TEST(PacketAllocTest, ArenaRecyclesSlotsLifo)
{
    System sys{Config{}};
    PacketArena &a = sys.arena();
    const std::uint64_t before = allocCount();

    Packet p;
    p.src = 1;
    p.dst = 2;
    const PacketHandle h1 = a.acquire(std::move(p));
    a.release(h1);
    // LIFO reuse: the very next acquire returns the slot just freed,
    // touching no fresh storage.
    Packet q;
    q.src = 3;
    q.dst = 4;
    const PacketHandle h2 = a.acquire(std::move(q));
    EXPECT_EQ(h2, h1);
    EXPECT_EQ(a.src(h2), 3);
    a.release(h2);

    // One chunk was (at most) created by the first acquire; the reuse
    // cycle after it is allocation-free.
    const std::uint64_t mid = allocCount();
    for (int i = 0; i < 100; ++i) {
        Packet r;
        r.src = NodeId(i);
        a.release(a.acquire(std::move(r)));
    }
    EXPECT_EQ(allocCount(), mid);
    EXPECT_EQ(a.live(), 0u);
    (void)before;
}

} // namespace
} // namespace tg::net

/**
 * @file
 * Table-driven tests of tg::globMatch / tg::globValid.
 *
 * FaultSpec down-window targeting resolves trunk channels by glob
 * ("*.trunk3to4"), so the matcher's edge cases decide which links a
 * fault run downs.  The table pins the full contract: literal matches,
 * '*' runs (including against names that contain literal '*'),
 * '?' single-character matches (including against end-of-string),
 * empty pattern vs empty name, trailing '*' and consecutive "**".
 */

#include <gtest/gtest.h>

#include "sim/glob.hpp"

namespace tg {
namespace {

struct MatchCase
{
    const char *pattern;
    const char *name;
    bool expect;
};

TEST(Glob, MatchTable)
{
    const MatchCase cases[] = {
        // Literals.
        {"abc", "abc", true},
        {"abc", "abd", false},
        {"abc", "ab", false},
        {"abc", "abcd", false},

        // Empty pattern vs empty/non-empty name.
        {"", "", true},
        {"", "x", false},
        {"x", "", false},

        // Single '*' runs.
        {"*", "", true},
        {"*", "anything", true},
        {"a*", "a", true},
        {"a*", "abc", true},
        {"*c", "abc", true},
        {"*c", "c", true},
        {"a*c", "ac", true},
        {"a*c", "abc", true},
        {"a*c", "axxxc", true},
        {"a*c", "axxxd", false},
        {"*.trunk3to4", "n0.sw1.trunk3to4", true},
        {"*.trunk3to4", "n0.sw1.trunk3to40", false},

        // Multiple stars with backtracking.
        {"*a*b*", "xaxbx", true},
        {"*a*b*", "xbxax", false},
        {"*ab*ab*", "abab", true},
        {"*ab*ab*", "abxab", true},
        {"*ab*ab*", "abba", false},

        // Trailing '*' matches the empty tail.
        {"abc*", "abc", true},
        {"abc*", "abcd", true},
        {"abc**", "abc", true},

        // Consecutive "**" collapses to "*" in the matcher.
        {"**", "", true},
        {"**", "abc", true},
        {"a**c", "abc", true},
        {"a**c", "ac", true},
        {"a**c", "ab", false},

        // A '*' in the *name* is a literal character; the pattern '*'
        // must still act as a wildcard over it (regression: the literal
        // branch used to win and eat the metacharacter).
        {"a*c", "a*bc", true},
        {"*", "*", true},
        {"a*b", "a*b", true},
        {"a?c", "a*c", true},

        // '?' matches exactly one character...
        {"?", "a", true},
        {"?", "*", true},
        {"a?c", "abc", true},
        {"a?c", "ac", false},
        {"a?c", "abbc", false},
        {"??", "ab", true},
        {"??", "a", false},
        {"sw?.trunk?to?", "sw4.trunk1to2", true},

        // ...including never matching end-of-string.
        {"?", "", false},
        {"a?", "a", false},
        {"*?", "", false},
        {"*?", "a", true},
        {"*?", "abc", true},
        {"?*", "", false},
        {"?*", "a", true},
    };

    for (const MatchCase &c : cases) {
        EXPECT_EQ(globMatch(c.pattern, c.name), c.expect)
            << "pattern='" << c.pattern << "' name='" << c.name << "'";
    }
}

struct ValidCase
{
    const char *pattern;
    bool expect;
};

TEST(Glob, ValidityTable)
{
    const ValidCase cases[] = {
        {"abc", true},
        {"*.trunk3to4", true},
        {"a*b*c", true},
        {"sw?.trunk?to?", true}, // '?' is a supported metacharacter
        {"?", true},
        {"", false},        // empty pattern can't name a component
        {"**", false},      // always a typo for "*"
        {"a**b", false},    //   (even mid-pattern)
        {"a[0]", false},    // character classes unsupported
        {"a]b", false},
        {"a b", false},     // whitespace never appears in names
        {"a\tb", false},
        {"\x7f", false},    // control / non-ASCII
    };

    for (const ValidCase &c : cases) {
        EXPECT_EQ(globValid(c.pattern), c.expect)
            << "pattern='" << c.pattern << "'";
    }
}

} // namespace
} // namespace tg

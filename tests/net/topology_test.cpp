/**
 * @file
 * Unit tests of topology math (switch counts, port assignment).
 */

#include <gtest/gtest.h>

#include "net/topology.hpp"

namespace tg::net {
namespace {

TEST(Topology, StarHasOneSwitch)
{
    TopologySpec s;
    s.kind = TopologyKind::Star;
    s.nodes = 8;
    EXPECT_EQ(s.numSwitches(), 1u);
    EXPECT_EQ(s.portsPerSwitch(), 8u);
    for (std::size_t n = 0; n < 8; ++n) {
        EXPECT_EQ(s.switchOf(n), 0u);
        EXPECT_EQ(s.portOf(n), n);
    }
}

TEST(Topology, ChainSpreadsNodes)
{
    TopologySpec s;
    s.kind = TopologyKind::Chain;
    s.nodes = 10;
    s.nodesPerSwitch = 4;
    EXPECT_EQ(s.numSwitches(), 3u);
    EXPECT_EQ(s.portsPerSwitch(), 6u); // 4 node ports + 2 trunks
    EXPECT_EQ(s.switchOf(0), 0u);
    EXPECT_EQ(s.switchOf(4), 1u);
    EXPECT_EQ(s.switchOf(9), 2u);
    EXPECT_EQ(s.portOf(5), 1u);
}

TEST(Topology, RingNeedsThreeSwitches)
{
    TopologySpec s;
    s.kind = TopologyKind::Ring;
    s.nodes = 12;
    s.nodesPerSwitch = 4;
    EXPECT_EQ(s.numSwitches(), 3u);
    s.validate(); // must not die
}

TEST(TopologyDeathTest, TooSmallRingIsFatal)
{
    TopologySpec s;
    s.kind = TopologyKind::Ring;
    s.nodes = 4;
    s.nodesPerSwitch = 4;
    EXPECT_DEATH(s.validate(), "ring");
}

TEST(Topology, DescribeMentionsKind)
{
    TopologySpec s;
    s.kind = TopologyKind::Chain;
    s.nodes = 6;
    s.nodesPerSwitch = 2;
    EXPECT_NE(s.describe().find("chain"), std::string::npos);
}

} // namespace
} // namespace tg::net

/**
 * @file
 * Unit tests of topology math (switch counts, port assignment, trunk
 * tables, bisection widths) across all five fabric models.
 */

#include <gtest/gtest.h>

#include "net/topology.hpp"

namespace tg::net {
namespace {

TEST(Topology, StarHasOneSwitch)
{
    TopologySpec s;
    s.kind = TopologyKind::Star;
    s.nodes = 8;
    EXPECT_EQ(s.numSwitches(), 1u);
    EXPECT_EQ(s.portsPerSwitch(), 8u);
    for (std::size_t n = 0; n < 8; ++n) {
        EXPECT_EQ(s.switchOf(n), 0u);
        EXPECT_EQ(s.portOf(n), n);
    }
    EXPECT_EQ(s.bisectionWidth(), 4u);
}

TEST(Topology, ChainSpreadsNodes)
{
    TopologySpec s;
    s.kind = TopologyKind::Chain;
    s.nodes = 10;
    s.nodesPerSwitch = 4;
    EXPECT_EQ(s.numSwitches(), 3u);
    EXPECT_EQ(s.portsPerSwitch(), 6u); // 4 node ports + 2 trunks
    EXPECT_EQ(s.switchOf(0), 0u);
    EXPECT_EQ(s.switchOf(4), 1u);
    EXPECT_EQ(s.switchOf(9), 2u);
    EXPECT_EQ(s.portOf(5), 1u);
    EXPECT_EQ(s.bisectionWidth(), 1u);
}

TEST(Topology, RingNeedsThreeSwitches)
{
    TopologySpec s;
    s.kind = TopologyKind::Ring;
    s.nodes = 12;
    s.nodesPerSwitch = 4;
    EXPECT_EQ(s.numSwitches(), 3u);
    EXPECT_TRUE(s.validate().ok());
    EXPECT_EQ(s.bisectionWidth(), 2u);
}

TEST(Topology, TooSmallRingIsRejected)
{
    TopologySpec s;
    s.kind = TopologyKind::Ring;
    s.nodes = 4;
    s.nodesPerSwitch = 4;
    auto v = s.validate();
    ASSERT_FALSE(v.ok());
    EXPECT_NE(v.error().message.find("ring"), std::string::npos);
}

TEST(Topology, TorusGridMath)
{
    TopologySpec s;
    s.kind = TopologyKind::Torus2D;
    s.torusX = 3;
    s.torusY = 2;
    s.nodesPerSwitch = 2;
    s.nodes = 12;
    ASSERT_TRUE(s.validate().ok());
    EXPECT_EQ(s.numSwitches(), 6u);
    EXPECT_EQ(s.portsPerSwitch(), 6u); // 2 node ports + 4 trunk dirs
    EXPECT_EQ(s.switchOf(0), 0u);
    EXPECT_EQ(s.switchOf(11), 5u);
    EXPECT_EQ(s.portOf(5), 1u);
    EXPECT_EQ(s.bisectionWidth(), 4u); // 2 * min(3, 2)
    // 6 X-ring trunks (3 per row x 2 rows) + 6 Y-ring trunks.
    EXPECT_EQ(s.model().trunks(s).size(), 12u);
}

TEST(Topology, NonRectangularTorusIsRejected)
{
    TopologySpec s;
    s.kind = TopologyKind::Torus2D;
    s.torusX = 3;
    s.torusY = 3;
    s.nodesPerSwitch = 2;
    s.nodes = 17; // does not fill 3x3x2
    auto v = s.validate();
    ASSERT_FALSE(v.ok());
    EXPECT_NE(v.error().message.find("non-rectangular"), std::string::npos);
}

TEST(Topology, Torus3dGridMath)
{
    TopologySpec s;
    s.kind = TopologyKind::Torus3D;
    s.torusX = 4;
    s.torusY = 3;
    s.torusZ = 2;
    s.nodesPerSwitch = 2;
    s.nodes = 48;
    ASSERT_TRUE(s.validate().ok());
    EXPECT_EQ(s.numSwitches(), 24u);
    EXPECT_EQ(s.portsPerSwitch(), 8u); // 2 node ports + 6 trunk dirs
    EXPECT_EQ(s.switchOf(0), 0u);
    EXPECT_EQ(s.switchOf(47), 23u);
    EXPECT_EQ(s.portOf(5), 1u);
    // Cut perpendicular to X (the longest extent): 2 crossings per ring,
    // 24/4 = 6 rings.
    EXPECT_EQ(s.bisectionWidth(), 12u);
    // One trunk per switch per dimension (each ring of length g has g
    // links): 24 X + 24 Y + 24 Z.
    EXPECT_EQ(s.model().trunks(s).size(), 72u);
}

TEST(Topology, Torus3dRejectsFlatDimensions)
{
    TopologySpec s;
    s.kind = TopologyKind::Torus3D;
    s.torusX = 4;
    s.torusY = 4;
    s.torusZ = 1; // a 3D torus degenerated to a plane
    s.nodesPerSwitch = 2;
    s.nodes = 32;
    auto v = s.validate();
    ASSERT_FALSE(v.ok());
    EXPECT_NE(v.error().message.find("2x2x2"), std::string::npos);
}

TEST(Topology, NonRectangularTorus3dIsRejected)
{
    TopologySpec s;
    s.kind = TopologyKind::Torus3D;
    s.torusX = 2;
    s.torusY = 2;
    s.torusZ = 2;
    s.nodesPerSwitch = 2;
    s.nodes = 15; // does not fill 2x2x2x2
    auto v = s.validate();
    ASSERT_FALSE(v.ok());
    EXPECT_NE(v.error().message.find("non-rectangular"), std::string::npos);
}

TEST(Topology, Torus3dDescribeReportsGrid)
{
    TopologySpec s;
    s.kind = TopologyKind::Torus3D;
    s.torusX = 4;
    s.torusY = 4;
    s.torusZ = 4;
    s.nodesPerSwitch = 4;
    s.nodes = 256;
    const std::string d = s.describe();
    EXPECT_NE(d.find("torus3d"), std::string::npos);
    EXPECT_NE(d.find("4x4x4"), std::string::npos);
    EXPECT_NE(d.find("bisection 32"), std::string::npos);
}

TEST(Topology, FatTreeLeavesAndSpines)
{
    TopologySpec s;
    s.kind = TopologyKind::FatTree;
    s.nodes = 16;
    s.nodesPerSwitch = 4;
    s.spines = 4;
    ASSERT_TRUE(s.validate().ok());
    EXPECT_EQ(s.numSwitches(), 8u); // 4 leaves + 4 spines
    EXPECT_EQ(s.switchOf(0), 0u);
    EXPECT_EQ(s.switchOf(15), 3u);
    EXPECT_EQ(s.bisectionWidth(), 8u); // 4 spines * (4 leaves / 2)
    // One trunk per (leaf, spine) pair.
    EXPECT_EQ(s.model().trunks(s).size(), 16u);
}

TEST(Topology, FatTreeNeedsSpines)
{
    TopologySpec s;
    s.kind = TopologyKind::FatTree;
    s.nodes = 8;
    s.nodesPerSwitch = 4;
    s.spines = 0;
    auto v = s.validate();
    ASSERT_FALSE(v.ok());
    EXPECT_NE(v.error().message.find("spine"), std::string::npos);
}

TEST(Topology, ZeroNodesIsRejected)
{
    TopologySpec s;
    s.nodes = 0;
    EXPECT_FALSE(s.validate().ok());
}

TEST(Topology, DescribeMentionsKind)
{
    TopologySpec s;
    s.kind = TopologyKind::Chain;
    s.nodes = 6;
    s.nodesPerSwitch = 2;
    EXPECT_NE(s.describe().find("chain"), std::string::npos);
}

TEST(Topology, DescribeReportsSwitchCountAndBisection)
{
    TopologySpec s;
    s.kind = TopologyKind::Torus2D;
    s.torusX = 4;
    s.torusY = 4;
    s.nodesPerSwitch = 4;
    s.nodes = 64;
    const std::string d = s.describe();
    EXPECT_NE(d.find("4x4"), std::string::npos);
    EXPECT_NE(d.find("bisection 8"), std::string::npos);
}

} // namespace
} // namespace tg::net

/**
 * @file
 * Shard-count / thread-count invariance of the sharded fabric simulation.
 *
 * The contract (DESIGN.md section 13): a same-seed FabricSim run must
 * produce byte-identical merged trace hashes, identical delivered /
 * dropped counts and an audit-quiescent ledger at 1, 2, 4 and 8 shards,
 * on every fabric and workload, at any worker-thread count.  Suite
 * names carry "Shard" so the tsan CI preset (filter
 * Event|Ladder|TraceHash|Shard) runs the threaded legs under
 * ThreadSanitizer.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <vector>

#include "net/fabric_sim.hpp"

namespace tg::net {
namespace {

struct FabricCase
{
    const char *name;
    TopologySpec spec;
};

std::vector<FabricCase>
fabrics()
{
    TopologySpec torus2d;
    torus2d.kind = TopologyKind::Torus2D;
    torus2d.torusX = 4;
    torus2d.torusY = 4;
    torus2d.nodesPerSwitch = 2;
    torus2d.nodes = 4 * 4 * 2;

    TopologySpec torus3d;
    torus3d.kind = TopologyKind::Torus3D;
    torus3d.torusX = 2;
    torus3d.torusY = 2;
    torus3d.torusZ = 2;
    torus3d.nodesPerSwitch = 2;
    torus3d.nodes = 2 * 2 * 2 * 2;

    TopologySpec fattree;
    fattree.kind = TopologyKind::FatTree;
    fattree.nodesPerSwitch = 4;
    fattree.spines = 4;
    fattree.nodes = 32;

    return {{"torus2d", torus2d}, {"torus3d", torus3d},
            {"fattree", fattree}};
}

FabricWorkload
uniformLoad()
{
    FabricWorkload wl;
    wl.kind = FabricWorkload::Kind::Uniform;
    wl.packetsPerNode = 40;
    wl.injectGap = 500;
    return wl;
}

FabricWorkload
hotspotLoad()
{
    FabricWorkload wl;
    wl.kind = FabricWorkload::Kind::Hotspot;
    wl.packetsPerNode = 40;
    wl.injectGap = 300; // push the hot switch toward its drop threshold
    wl.hotFraction = 0.6;
    wl.hotNode = 3;
    return wl;
}

struct RunDigest
{
    std::uint64_t hash = 0;
    std::uint64_t injected = 0;
    std::uint64_t delivered = 0;
    std::uint64_t dropped = 0;
    bool quiescent = false;

    bool
    operator==(const RunDigest &o) const
    {
        return hash == o.hash && injected == o.injected &&
               delivered == o.delivered && dropped == o.dropped &&
               quiescent == o.quiescent;
    }
};

RunDigest
runOnce(const TopologySpec &spec, const FabricWorkload &wl,
        std::uint32_t shards, std::uint64_t seed, std::uint32_t threads = 0)
{
    Config cfg;
    cfg.seed = seed;
    cfg.shards = shards;
    FabricSim sim(spec, cfg, wl, threads);
    EXPECT_GT(sim.run(), 0u);
    RunDigest d;
    d.hash = sim.traceHash();
    d.injected = sim.injected();
    d.delivered = sim.delivered();
    d.dropped = sim.dropped();
    d.quiescent = sim.auditQuiescent();
    return d;
}

TEST(ShardDeterminism, HashAndLedgerInvariantAcrossShardCounts)
{
    // 3 fabrics x 2 workloads x shards {1,2,4,8}: every digest must
    // equal the sequential (1-shard) reference.
    for (const FabricCase &f : fabrics()) {
        int wi = 0;
        for (const FabricWorkload &wl : {uniformLoad(), hotspotLoad()}) {
            SCOPED_TRACE(std::string(f.name) + " workload#" +
                         std::to_string(wi++));
            const RunDigest ref = runOnce(f.spec, wl, 1, 42);
            EXPECT_GT(ref.injected, 0u);
            EXPECT_EQ(ref.injected, ref.delivered + ref.dropped);
            EXPECT_TRUE(ref.quiescent);
            for (std::uint32_t shards : {2u, 4u, 8u}) {
                SCOPED_TRACE("shards=" + std::to_string(shards));
                const RunDigest d = runOnce(f.spec, wl, shards, 42);
                EXPECT_EQ(d, ref);
            }
        }
    }
}

TEST(ShardDeterminism, HashInvariantAcrossThreadCounts)
{
    // Same shard plan, different worker-thread counts: the partition is
    // semantic, the threads are not.  (Runs the real multi-threaded
    // barrier path even on a single-core host — and under TSan in CI.)
    const FabricCase f = fabrics()[0];
    const FabricWorkload wl = uniformLoad();
    const RunDigest ref = runOnce(f.spec, wl, 4, 7, /*threads=*/1);
    for (std::uint32_t threads : {2u, 4u}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        EXPECT_EQ(runOnce(f.spec, wl, 4, 7, threads), ref);
    }
}

TEST(ShardDeterminism, SeedsProduceDistinctTraces)
{
    // Sanity check on the digest itself: different seeds must diverge
    // (a constant hash would trivially pass the invariance suite).
    const FabricCase f = fabrics()[0];
    const FabricWorkload wl = uniformLoad();
    const RunDigest a = runOnce(f.spec, wl, 4, 1);
    const RunDigest b = runOnce(f.spec, wl, 4, 2);
    EXPECT_NE(a.hash, b.hash);
}

TEST(ShardDeterminism, TransposePermutationDeliversEverything)
{
    // Deterministic permutation traffic: no randomness in destinations,
    // so delivered counts are exact unless the drop model kicks in; at
    // this gentle injection rate nothing may drop.
    TopologySpec spec = fabrics()[0].spec;
    FabricWorkload wl;
    wl.kind = FabricWorkload::Kind::Transpose;
    wl.packetsPerNode = 30;
    // DOR concentrates the permutation onto shared trunks (~1143-tick
    // serializations); keep offered load well under capacity so the
    // zero-drop assertion is structural, not lucky.
    wl.injectGap = 12'000;
    const RunDigest ref = runOnce(spec, wl, 1, 11);
    EXPECT_EQ(ref.dropped, 0u);
    EXPECT_EQ(ref.delivered, ref.injected);
    for (std::uint32_t shards : {2u, 4u, 8u}) {
        SCOPED_TRACE("shards=" + std::to_string(shards));
        EXPECT_EQ(runOnce(spec, wl, shards, 11), ref);
    }
}

TEST(ShardDeterminism, HotspotOverloadDropsDeterministically)
{
    // Saturate the hot node's switch so the egress-backlog drop model
    // engages, then require the drop count itself to be shard-count
    // invariant (drops happen mid-fabric, at staged-message boundaries).
    TopologySpec spec = fabrics()[0].spec;
    FabricWorkload wl = hotspotLoad();
    wl.injectGap = 40;
    wl.hotFraction = 0.9;
    wl.packetsPerNode = 80;
    const RunDigest ref = runOnce(spec, wl, 1, 5);
    EXPECT_GT(ref.dropped, 0u);
    EXPECT_TRUE(ref.quiescent);
    for (std::uint32_t shards : {2u, 4u, 8u}) {
        SCOPED_TRACE("shards=" + std::to_string(shards));
        EXPECT_EQ(runOnce(spec, wl, shards, 5), ref);
    }
}

} // namespace
} // namespace tg::net

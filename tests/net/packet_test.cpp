/**
 * @file
 * Unit tests of packet formatting and sizing.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "net/packet.hpp"

namespace tg::net {
namespace {

TEST(Packet, WireBytesIncludeHeader)
{
    Packet p;
    p.payloadBytes = 8;
    EXPECT_EQ(p.wireBytes(16), 24u);
    p.payloadBytes = 0;
    EXPECT_EQ(p.wireBytes(16), 16u);
}

TEST(Packet, TypeNamesAreUniqueAndNonEmpty)
{
    const PacketType all[] = {
        PacketType::WriteReq,   PacketType::WriteAck,
        PacketType::ReadReq,    PacketType::ReadReply,
        PacketType::CopyReq,    PacketType::CopyData,
        PacketType::AtomicReq,  PacketType::AtomicReply,
        PacketType::EagerWrite, PacketType::Update,
        PacketType::UpdateAck,  PacketType::WriteOwner,
        PacketType::RingUpdate, PacketType::InvReq,
        PacketType::InvAck,     PacketType::PageReq,
        PacketType::PageData,   PacketType::Message,
    };
    std::set<std::string> names;
    for (PacketType t : all) {
        const std::string n = packetTypeName(t);
        EXPECT_FALSE(n.empty());
        EXPECT_NE(n, "?");
        EXPECT_TRUE(names.insert(n).second) << "duplicate name " << n;
    }
}

TEST(Packet, ToStringCarriesRoutingFields)
{
    Packet p;
    p.type = PacketType::WriteOwner;
    p.src = 3;
    p.dst = 5;
    p.value = 42;
    p.origin = 3;
    p.seq = 17;
    const std::string s = p.toString();
    EXPECT_NE(s.find("WriteOwner"), std::string::npos);
    EXPECT_NE(s.find("3->5"), std::string::npos);
    EXPECT_NE(s.find("val=42"), std::string::npos);
    EXPECT_NE(s.find("seq=17"), std::string::npos);
}

TEST(Packet, BulkDataIsSharedNotCopied)
{
    Packet a;
    a.bulk = std::make_shared<std::vector<Word>>(1024, 7);
    Packet b = a; // queue copies must not duplicate the 8 KB payload
    EXPECT_EQ(a.bulk.get(), b.bulk.get());
    EXPECT_EQ(a.bulk.use_count(), 2);
}

} // namespace
} // namespace tg::net

/**
 * @file
 * Differential routing tests: for every topology at several sizes, walk
 * the model's routing function for every (src, dst) pair and check the
 * packet (a) arrives, (b) never loops, and (c) takes exactly as many
 * switch traversals as a BFS shortest-path oracle over the trunk graph
 * predicts.  A same-seed double-run pins the trace hash: topology
 * construction order and routing are part of the determinism contract.
 */

#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "net/network.hpp"
#include "sim/random.hpp"
#include "sim/system.hpp"

namespace tg::net {
namespace {

TopologySpec
star(std::size_t nodes)
{
    TopologySpec s;
    s.nodes = nodes;
    return s;
}

TopologySpec
linear(TopologyKind kind, std::size_t nodes, std::size_t nps)
{
    TopologySpec s;
    s.kind = kind;
    s.nodes = nodes;
    s.nodesPerSwitch = nps;
    return s;
}

TopologySpec
torus(std::size_t x, std::size_t y, std::size_t nps)
{
    TopologySpec s;
    s.kind = TopologyKind::Torus2D;
    s.torusX = x;
    s.torusY = y;
    s.nodesPerSwitch = nps;
    s.nodes = x * y * nps;
    return s;
}

TopologySpec
torus3d(std::size_t x, std::size_t y, std::size_t z, std::size_t nps)
{
    TopologySpec s;
    s.kind = TopologyKind::Torus3D;
    s.torusX = x;
    s.torusY = y;
    s.torusZ = z;
    s.nodesPerSwitch = nps;
    s.nodes = x * y * z * nps;
    return s;
}

TopologySpec
fatTree(std::size_t nodes, std::size_t nps, std::size_t spines)
{
    TopologySpec s;
    s.kind = TopologyKind::FatTree;
    s.nodes = nodes;
    s.nodesPerSwitch = nps;
    s.spines = spines;
    return s;
}

/** Switch-to-switch shortest-path distances over the trunk graph. */
std::vector<std::vector<std::size_t>>
bfsDistances(const TopologySpec &spec)
{
    const std::size_t nsw = spec.numSwitches();
    std::vector<std::vector<std::size_t>> adj(nsw);
    for (const auto &t : spec.model().trunks(spec)) {
        adj[t.swA].push_back(t.swB);
        adj[t.swB].push_back(t.swA);
    }
    constexpr std::size_t kInf = std::size_t(-1);
    std::vector<std::vector<std::size_t>> dist(
        nsw, std::vector<std::size_t>(nsw, kInf));
    for (std::size_t s = 0; s < nsw; ++s) {
        dist[s][s] = 0;
        std::deque<std::size_t> q{s};
        while (!q.empty()) {
            const std::size_t u = q.front();
            q.pop_front();
            for (std::size_t v : adj[u]) {
                if (dist[s][v] == kInf) {
                    dist[s][v] = dist[s][u] + 1;
                    q.push_back(v);
                }
            }
        }
    }
    return dist;
}

/** (switch, out port) -> neighbour switch, from the trunk table. */
using TrunkMap = std::map<std::pair<std::size_t, std::size_t>, std::size_t>;

TrunkMap
trunkMap(const TopologySpec &spec)
{
    TrunkMap next;
    for (const auto &t : spec.model().trunks(spec)) {
        next[{t.swA, t.portA}] = t.swB;
        next[{t.swB, t.portB}] = t.swA;
    }
    return next;
}

/** Follow routePort() switch by switch; returns traversed switch count
 *  or 0 if the walk got lost (bad port, loop). */
std::size_t
walkRoute(const TopologySpec &spec, const TrunkMap &next, std::size_t src,
          std::size_t dst)
{
    std::size_t sw = spec.switchOf(src);
    const std::size_t limit = 2 * spec.numSwitches() + 2;
    for (std::size_t steps = 1; steps <= limit; ++steps) {
        const std::size_t out =
            spec.model().routePort(spec, sw, NodeId(src), NodeId(dst));
        if (sw == spec.switchOf(dst) && out == spec.portOf(dst))
            return steps; // ejected at the destination's port
        auto it = next.find({sw, out});
        if (it == next.end())
            return 0; // routed into a non-trunk, non-ejection port
        sw = it->second;
    }
    return 0; // loop
}

class RoutingOracle : public ::testing::TestWithParam<TopologySpec>
{
};

TEST_P(RoutingOracle, EveryPairMatchesBfsShortestPath)
{
    const TopologySpec spec = GetParam();
    ASSERT_TRUE(spec.validate().ok());
    const auto dist = bfsDistances(spec);
    const TrunkMap next = trunkMap(spec);

    for (std::size_t src = 0; src < spec.nodes; ++src) {
        for (std::size_t dst = 0; dst < spec.nodes; ++dst) {
            if (src == dst)
                continue;
            const std::size_t want =
                dist[spec.switchOf(src)][spec.switchOf(dst)] + 1;
            ASSERT_EQ(walkRoute(spec, next, src, dst), want)
                << spec.describe() << " " << src << "->" << dst;
            ASSERT_EQ(spec.model().hops(spec, NodeId(src), NodeId(dst)),
                      want)
                << spec.describe() << " hops() " << src << "->" << dst;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllTopologies, RoutingOracle,
    ::testing::Values(star(4), star(16),
                      linear(TopologyKind::Chain, 16, 2),
                      linear(TopologyKind::Chain, 12, 4),
                      linear(TopologyKind::Ring, 24, 2),
                      linear(TopologyKind::Ring, 12, 4),
                      torus(2, 2, 2), torus(4, 4, 4), torus(3, 5, 2),
                      torus(8, 8, 4),                      // 256 nodes
                      torus3d(2, 2, 2, 2), torus3d(3, 4, 5, 2),
                      torus3d(4, 4, 4, 4),                 // 256 nodes
                      fatTree(16, 4, 4), fatTree(64, 4, 4),
                      fatTree(256, 4, 8)),
    [](const ::testing::TestParamInfo<TopologySpec> &info) {
        std::string name = info.param.model().name();
        name[0] = char(std::toupper(name[0]));
        return name + std::to_string(info.param.nodes) + "x" +
               std::to_string(info.param.numSwitches());
    });

// ---------------------------------------------------------------------
// Determinism: the trace hash of a routed run is reproducible
// ---------------------------------------------------------------------

class StubEndpoint : public NodeEndpoint
{
  public:
    explicit StubEndpoint(PacketArena &arena) : _out(arena, 64), _in(arena, 64)
    {
        _in.onData([this] {
            while (!_in.empty()) {
                ++delivered;
                (void)_in.pop();
            }
        });
    }

    BoundedQueue &egress() override { return _out; }
    BoundedQueue &ingress() override { return _in; }

    std::size_t delivered = 0;

  private:
    BoundedQueue _out;
    BoundedQueue _in;
};

/** Uniform-random traffic over @p spec; returns {trace hash, delivered}. */
std::pair<std::uint64_t, std::size_t>
runRandom(const TopologySpec &spec, std::uint64_t seed)
{
    System sys{Config{}};
    Network net(sys, "net", spec);
    std::vector<std::unique_ptr<StubEndpoint>> eps;
    for (std::size_t n = 0; n < spec.nodes; ++n) {
        eps.push_back(std::make_unique<StubEndpoint>(sys.arena()));
        net.attach(NodeId(n), *eps.back());
    }

    Rng rng(seed);
    std::size_t sent = 0;
    for (int round = 0; round < 6; ++round) {
        for (std::size_t s = 0; s < spec.nodes; ++s) {
            NodeId d = NodeId(rng.below(spec.nodes));
            if (d == NodeId(s))
                d = NodeId((d + 1) % spec.nodes);
            if (!eps[s]->egress().full()) {
                Packet p;
                p.src = NodeId(s);
                p.dst = d;
                p.value = Word(round) << 16 | Word(s);
                eps[s]->egress().push(std::move(p));
                ++sent;
            }
        }
        sys.events().run(rng.below(256));
    }
    sys.events().run();

    std::size_t delivered = 0;
    for (auto &ep : eps)
        delivered += ep->delivered;
    EXPECT_EQ(delivered, sent) << spec.describe();
    return {sys.events().trace().value(), delivered};
}

TEST(RoutingDeterminism, SameSeedRunsHashIdentically)
{
    for (const TopologySpec &spec :
         {linear(TopologyKind::Ring, 16, 2), torus(8, 8, 4),
          torus3d(4, 4, 4, 4), fatTree(256, 4, 8)}) {
        const auto a = runRandom(spec, 99);
        const auto b = runRandom(spec, 99);
        EXPECT_EQ(a.first, b.first) << spec.describe();
        EXPECT_EQ(a.second, b.second) << spec.describe();
        EXPECT_GT(a.second, 0u) << spec.describe();
    }
}

} // namespace
} // namespace tg::net

/**
 * @file
 * Unit tests of the bounded queue with reservations (back-pressure core),
 * including ring-buffer wraparound edge cases (ArenaQueue suite) for the
 * fixed-capacity handle ring that replaced the deque backing store.
 */

#include <gtest/gtest.h>

#include "net/arena.hpp"
#include "net/queue.hpp"

namespace tg::net {
namespace {

Packet
mkPkt(Word v)
{
    Packet p;
    p.value = v;
    return p;
}

TEST(BoundedQueue, FifoOrder)
{
    PacketArena arena;
    BoundedQueue q(arena, 4);
    q.push(mkPkt(1));
    q.push(mkPkt(2));
    q.push(mkPkt(3));
    EXPECT_EQ(q.pop().value, 1u);
    EXPECT_EQ(q.pop().value, 2u);
    EXPECT_EQ(q.pop().value, 3u);
    EXPECT_TRUE(q.empty());
}

TEST(BoundedQueue, ReservationsCountAgainstCapacity)
{
    PacketArena arena;
    BoundedQueue q(arena, 2);
    EXPECT_TRUE(q.reserve());
    EXPECT_TRUE(q.reserve());
    EXPECT_TRUE(q.full());
    EXPECT_FALSE(q.reserve());
    q.pushReserved(mkPkt(1));
    EXPECT_TRUE(q.full()); // 1 queued + 1 reserved
    q.cancelReservation();
    EXPECT_FALSE(q.full());
}

TEST(BoundedQueue, OnDataFires)
{
    PacketArena arena;
    BoundedQueue q(arena, 2);
    int fired = 0;
    q.onData([&] { ++fired; });
    q.push(mkPkt(1));
    EXPECT_EQ(fired, 1);
    ASSERT_TRUE(q.reserve());
    q.pushReserved(mkPkt(2));
    EXPECT_EQ(fired, 2);
}

TEST(BoundedQueue, OnSpaceFiresOnPopAndCancel)
{
    PacketArena arena;
    BoundedQueue q(arena, 1);
    int fired = 0;
    q.onSpace([&] { ++fired; });
    q.push(mkPkt(1));
    q.pop();
    EXPECT_EQ(fired, 1);
    ASSERT_TRUE(q.reserve());
    q.cancelReservation();
    EXPECT_EQ(fired, 2);
}

TEST(BoundedQueue, MultipleListenersAllFire)
{
    PacketArena arena;
    BoundedQueue q(arena, 2);
    int a = 0, b = 0;
    q.onData([&] { ++a; });
    q.onData([&] { ++b; });
    q.push(mkPkt(1));
    EXPECT_EQ(a, 1);
    EXPECT_EQ(b, 1);
}

TEST(BoundedQueueDeathTest, OverflowPanics)
{
    PacketArena arena;
    BoundedQueue q(arena, 1);
    q.push(mkPkt(1));
    EXPECT_DEATH(q.push(mkPkt(2)), "full");
}

TEST(BoundedQueueDeathTest, PopEmptyPanics)
{
    PacketArena arena;
    BoundedQueue q(arena, 1);
    EXPECT_DEATH(q.pop(), "empty");
}

// ---------------------------------------------------------------------
// Ring-buffer wraparound edge cases (fixed-capacity handle ring)
// ---------------------------------------------------------------------

TEST(ArenaQueueWrap, FifoOrderSurvivesManyWraps)
{
    PacketArena arena;
    BoundedQueue q(arena, 3);
    Word next_in = 0, next_out = 0;
    // Keep the queue at mixed occupancy across > capacity cycles so the
    // head/tail indices wrap dozens of times.
    for (int round = 0; round < 50; ++round) {
        while (!q.full())
            q.push(mkPkt(next_in++));
        q.pop(); // leave occupancy 2 so indices drift, not reset
        EXPECT_EQ(q.pop().value, next_out + 1);
        next_out += 2;
        EXPECT_EQ(q.front().value, next_out);
    }
    while (!q.empty())
        EXPECT_EQ(q.pop().value, next_out++);
    EXPECT_EQ(next_in, next_out);
}

TEST(ArenaQueueWrap, ReserveCancelAcrossWrapBoundary)
{
    PacketArena arena;
    BoundedQueue q(arena, 2);
    // Drift the head to the last ring slot, then exercise reserve/
    // cancel/pushReserved with the tail wrapped to slot 0.
    q.push(mkPkt(1));
    q.push(mkPkt(2));
    EXPECT_EQ(q.pop().value, 1u); // head -> slot 1
    ASSERT_TRUE(q.reserve());
    EXPECT_TRUE(q.full());
    q.cancelReservation();
    ASSERT_TRUE(q.reserve());
    q.pushReserved(mkPkt(3)); // lands in wrapped slot 0
    EXPECT_EQ(q.pop().value, 2u);
    EXPECT_EQ(q.pop().value, 3u);
    EXPECT_TRUE(q.empty());
}

TEST(ArenaQueueWrap, PushReservedInterleavedWithPopsWraps)
{
    PacketArena arena;
    BoundedQueue q(arena, 2);
    Word v = 10;
    q.push(mkPkt(v++));
    for (int i = 0; i < 7; ++i) {
        ASSERT_TRUE(q.reserve());
        q.pushReserved(mkPkt(v++));
        EXPECT_TRUE(q.full());
        EXPECT_EQ(q.pop().value, v - 2 + 0);
    }
    EXPECT_EQ(q.pop().value, v - 1);
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(q.full());
}

TEST(ArenaQueueWrap, HandlesRecycleThroughTheArena)
{
    PacketArena arena;
    BoundedQueue q(arena, 2);
    for (Word v = 0; v < 100; ++v) {
        q.push(mkPkt(v));
        EXPECT_EQ(q.pop().value, v);
    }
    // One chunk is enough for a single-occupancy cycle: the free list
    // recycles the same slot, so the arena never grows past warm-up.
    EXPECT_EQ(arena.chunkAllocs(), 1u);
    EXPECT_EQ(arena.live(), 0u);
    EXPECT_EQ(arena.highWater(), 1u);
}

TEST(ArenaQueueWrap, DestructorReleasesQueuedSlots)
{
    PacketArena arena;
    {
        BoundedQueue q(arena, 4);
        q.push(mkPkt(1));
        q.push(mkPkt(2));
        EXPECT_EQ(arena.live(), 2u);
    }
    EXPECT_EQ(arena.live(), 0u);
}

} // namespace
} // namespace tg::net

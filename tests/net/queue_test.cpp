/**
 * @file
 * Unit tests of the bounded queue with reservations (back-pressure core).
 */

#include <gtest/gtest.h>

#include "net/queue.hpp"

namespace tg::net {
namespace {

Packet
mkPkt(Word v)
{
    Packet p;
    p.value = v;
    return p;
}

TEST(BoundedQueue, FifoOrder)
{
    BoundedQueue q(4);
    q.push(mkPkt(1));
    q.push(mkPkt(2));
    q.push(mkPkt(3));
    EXPECT_EQ(q.pop().value, 1u);
    EXPECT_EQ(q.pop().value, 2u);
    EXPECT_EQ(q.pop().value, 3u);
    EXPECT_TRUE(q.empty());
}

TEST(BoundedQueue, ReservationsCountAgainstCapacity)
{
    BoundedQueue q(2);
    EXPECT_TRUE(q.reserve());
    EXPECT_TRUE(q.reserve());
    EXPECT_TRUE(q.full());
    EXPECT_FALSE(q.reserve());
    q.pushReserved(mkPkt(1));
    EXPECT_TRUE(q.full()); // 1 queued + 1 reserved
    q.cancelReservation();
    EXPECT_FALSE(q.full());
}

TEST(BoundedQueue, OnDataFires)
{
    BoundedQueue q(2);
    int fired = 0;
    q.onData([&] { ++fired; });
    q.push(mkPkt(1));
    EXPECT_EQ(fired, 1);
    ASSERT_TRUE(q.reserve());
    q.pushReserved(mkPkt(2));
    EXPECT_EQ(fired, 2);
}

TEST(BoundedQueue, OnSpaceFiresOnPopAndCancel)
{
    BoundedQueue q(1);
    int fired = 0;
    q.onSpace([&] { ++fired; });
    q.push(mkPkt(1));
    q.pop();
    EXPECT_EQ(fired, 1);
    ASSERT_TRUE(q.reserve());
    q.cancelReservation();
    EXPECT_EQ(fired, 2);
}

TEST(BoundedQueue, MultipleListenersAllFire)
{
    BoundedQueue q(2);
    int a = 0, b = 0;
    q.onData([&] { ++a; });
    q.onData([&] { ++b; });
    q.push(mkPkt(1));
    EXPECT_EQ(a, 1);
    EXPECT_EQ(b, 1);
}

TEST(BoundedQueueDeathTest, OverflowPanics)
{
    BoundedQueue q(1);
    q.push(mkPkt(1));
    EXPECT_DEATH(q.push(mkPkt(2)), "full");
}

TEST(BoundedQueueDeathTest, PopEmptyPanics)
{
    BoundedQueue q(1);
    EXPECT_DEATH(q.pop(), "empty");
}

} // namespace
} // namespace tg::net

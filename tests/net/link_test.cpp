/**
 * @file
 * Unit tests of the Channel (link) model: serialization, propagation,
 * back-pressure, in-order delivery, utilization accounting.
 */

#include <gtest/gtest.h>

#include "net/link.hpp"
#include "sim/system.hpp"

namespace tg::net {
namespace {

class LinkTest : public ::testing::Test
{
  protected:
    LinkTest() : sys(Config{}), up(sys.arena(), 8), down(sys.arena(), 4) {}

    Packet
    mkPkt(Word v, std::uint32_t payload = 8)
    {
        Packet p;
        p.value = v;
        p.payloadBytes = payload;
        return p;
    }

    System sys;
    BoundedQueue up;
    BoundedQueue down;
};

TEST_F(LinkTest, DeliversWithSerializationPlusDelay)
{
    // bw 1 B/tick, delay 10: a (16+8)-byte packet lands at 24 + 10.
    Channel ch(sys, "ch", up, down, 1.0, 10);
    up.push(mkPkt(7));
    sys.events().run();
    ASSERT_EQ(down.size(), 1u);
    EXPECT_EQ(down.pop().value, 7u);
    EXPECT_EQ(sys.now(), 34u);
}

TEST_F(LinkTest, InOrderDelivery)
{
    Channel ch(sys, "ch", up, down, 1.0, 5);
    for (Word i = 0; i < 4; ++i)
        up.push(mkPkt(i));
    sys.events().run();
    for (Word i = 0; i < 4; ++i)
        EXPECT_EQ(down.pop().value, i);
}

TEST_F(LinkTest, BackPressureStallsWhenDownstreamFull)
{
    Channel ch(sys, "ch", up, down, 1.0, 0);
    for (Word i = 0; i < 8; ++i)
        up.push(mkPkt(i));
    sys.events().run();
    // Downstream capacity 4: only 4 packets crossed.
    EXPECT_EQ(down.size(), 4u);
    EXPECT_EQ(up.size(), 4u);

    // Draining downstream resumes the channel.
    down.pop();
    down.pop();
    sys.events().run();
    EXPECT_EQ(down.size(), 4u);
    EXPECT_EQ(up.size(), 2u);
}

TEST_F(LinkTest, ThroughputMatchesBandwidth)
{
    // 100 packets x 24 B at 0.5 B/tick => 4800 ticks of serialization.
    Channel ch(sys, "ch", up, down, 0.5, 0);
    Tick last = 0;
    int received = 0;
    down.onData([&] {
        last = sys.now();
        ++received;
        down.pop();
    });
    for (Word i = 0; i < 100; ++i) {
        if (!up.full())
            up.push(mkPkt(i));
        sys.events().run();
    }
    EXPECT_EQ(received, 100);
    EXPECT_EQ(last, 4800u);
    EXPECT_EQ(ch.packets(), 100u);
    EXPECT_EQ(ch.bytes(), 2400u);
}

TEST_F(LinkTest, UtilizationAccounting)
{
    Channel ch(sys, "ch", up, down, 1.0, 0);
    up.push(mkPkt(0)); // 24 ticks of busy
    sys.events().run();
    sys.events().runUntil(48);
    EXPECT_NEAR(ch.utilization(), 0.5, 0.01);
}

} // namespace
} // namespace tg::net

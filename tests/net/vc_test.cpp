/**
 * @file
 * Unit tests of virtual-channel machinery: multi-lane channels share
 * the wire fairly, a blocked lane never stalls the other, and the
 * switch VC map moves packets between lanes (the dateline mechanism of
 * paper reference [17]).
 */

#include <gtest/gtest.h>

#include "net/link.hpp"
#include "net/switch.hpp"
#include "sim/system.hpp"

namespace tg::net {
namespace {

Packet
mkPkt(NodeId dst, Word v, std::uint8_t vc = 0)
{
    Packet p;
    p.dst = dst;
    p.value = v;
    p.vc = vc;
    return p;
}

TEST(MultiLaneChannel, RoundRobinSharesTheWire)
{
    System sys{Config{}};
    BoundedQueue up0(sys.arena(), 8), up1(sys.arena(), 8),
        down0(sys.arena(), 8), down1(sys.arena(), 8);
    Channel ch(sys, "ch",
               {Channel::Lane{&up0, &down0}, Channel::Lane{&up1, &down1}},
               1.0, 0);

    for (Word i = 0; i < 4; ++i) {
        up0.push(mkPkt(0, 100 + i));
        up1.push(mkPkt(0, 200 + i));
    }
    sys.events().run();
    EXPECT_EQ(down0.size(), 4u);
    EXPECT_EQ(down1.size(), 4u);
    // One wire: total time is the sum of all serializations.
    EXPECT_EQ(sys.now(), 8u * 24u);
}

TEST(MultiLaneChannel, BlockedLaneDoesNotStallTheOther)
{
    System sys{Config{}};
    BoundedQueue up0(sys.arena(), 8), up1(sys.arena(), 8),
        down0(sys.arena(), 1), down1(sys.arena(), 8);
    Channel ch(sys, "ch",
               {Channel::Lane{&up0, &down0}, Channel::Lane{&up1, &down1}},
               1.0, 0);

    // Lane 0's downstream can hold only one packet.
    for (Word i = 0; i < 3; ++i)
        up0.push(mkPkt(0, 100 + i));
    for (Word i = 0; i < 3; ++i)
        up1.push(mkPkt(0, 200 + i));
    sys.events().run();

    EXPECT_EQ(down0.size(), 1u); // lane 0 blocked after one
    EXPECT_EQ(down1.size(), 3u); // lane 1 flowed freely (escape property)
    EXPECT_EQ(up0.size(), 2u);

    down0.pop();
    sys.events().run();
    EXPECT_EQ(down0.size(), 1u);
    EXPECT_EQ(up0.size(), 1u);
}

TEST(SwitchVc, VcMapBumpsPacketsToEscapeLane)
{
    System sys{Config{}};
    Switch sw(sys, "sw", 2, /*vcs=*/2);
    sw.setRoute(1, 1);
    sw.setVcMap([](const PacketHot &, std::size_t, std::size_t out_port,
                   std::uint8_t vc) {
        return out_port == 1 ? std::uint8_t(1) : vc;
    });

    sw.inQueue(0, 0).push(mkPkt(1, 42, 0));
    sys.events().run();
    EXPECT_TRUE(sw.outQueue(1, 0).empty());
    ASSERT_EQ(sw.outQueue(1, 1).size(), 1u);
    const Packet p = sw.outQueue(1, 1).pop();
    EXPECT_EQ(p.value, 42u);
    EXPECT_EQ(p.vc, 1);
}

TEST(SwitchVc, VcsHaveIndependentBuffers)
{
    Config cfg;
    cfg.switchQueuePackets = 1;
    System sys{cfg};
    Switch sw(sys, "sw", 2, 2);
    sw.setRoute(1, 1);

    // Fill VC0's output; VC1 traffic must still flow.
    sw.inQueue(0, 0).push(mkPkt(1, 1, 0));
    sys.events().run();
    EXPECT_EQ(sw.outQueue(1, 0).size(), 1u);

    sw.inQueue(0, 1).push(mkPkt(1, 2, 1));
    sys.events().run();
    EXPECT_EQ(sw.outQueue(1, 1).size(), 1u); // not blocked by VC0
}

TEST(SwitchVcDeathTest, VcMapOutOfRangePanics)
{
    System sys{Config{}};
    Switch sw(sys, "sw", 2, 2);
    sw.setRoute(1, 1);
    sw.setVcMap([](const PacketHot &, std::size_t, std::size_t, std::uint8_t) {
        return std::uint8_t(7);
    });
    EXPECT_DEATH(
        {
            sw.inQueue(0, 0).push(mkPkt(1, 1));
            sys.events().run();
        },
        "VC map");
}

} // namespace
} // namespace tg::net

/**
 * @file
 * Unit tests of the shared-buffer switch: routing, forwarding latency,
 * head-of-line back-pressure, and per-(src,dst) in-order delivery —
 * the property the coherence protocol relies on (paper section 2.3.1).
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "net/switch.hpp"
#include "sim/random.hpp"
#include "sim/system.hpp"

namespace tg::net {
namespace {

Packet
mkPkt(NodeId src, NodeId dst, Word v)
{
    Packet p;
    p.src = src;
    p.dst = dst;
    p.value = v;
    return p;
}

TEST(Switch, RoutesToConfiguredPort)
{
    System sys{Config{}};
    Switch sw(sys, "sw", 3);
    sw.setRoute(0, 0);
    sw.setRoute(1, 1);
    sw.setRoute(2, 2);

    sw.inQueue(0).push(mkPkt(0, 2, 5));
    sys.events().run();
    ASSERT_EQ(sw.outQueue(2).size(), 1u);
    EXPECT_EQ(sw.outQueue(2).pop().value, 5u);
    EXPECT_EQ(sw.forwarded(), 1u);
}

TEST(Switch, CutThroughLatency)
{
    System sys{Config{}};
    Switch sw(sys, "sw", 2);
    sw.setRoute(1, 1);
    sw.inQueue(0).push(mkPkt(0, 1, 1));
    sys.events().run();
    EXPECT_EQ(sys.now(), sys.config().switchLatency);
}

TEST(Switch, HeadOfLineBlockingOnFullOutput)
{
    Config cfg;
    cfg.switchQueuePackets = 2;
    System sys{cfg};
    Switch sw(sys, "sw", 2);
    sw.setRoute(1, 1);

    // Input capacity is also 2: fill in two rounds.
    sw.inQueue(0).push(mkPkt(0, 1, 0));
    sw.inQueue(0).push(mkPkt(0, 1, 1));
    sys.events().run();
    sw.inQueue(0).push(mkPkt(0, 1, 2));
    sw.inQueue(0).push(mkPkt(0, 1, 3));
    sys.events().run();
    // Output holds 2; the rest wait in the input queue.
    EXPECT_EQ(sw.outQueue(1).size(), 2u);
    EXPECT_EQ(sw.inQueue(0).size(), 2u);

    sw.outQueue(1).pop();
    sys.events().run();
    EXPECT_EQ(sw.outQueue(1).size(), 2u);
    EXPECT_EQ(sw.inQueue(0).size(), 1u);
}

TEST(Switch, PerSourceInOrderDelivery)
{
    System sys{Config{}};
    Switch sw(sys, "sw", 4);
    for (NodeId n = 0; n < 4; ++n)
        sw.setRoute(n, n);

    // Three sources interleave packets to the same destination; each
    // source's sequence must come out in order.
    Rng rng(99);
    std::map<NodeId, Word> next_seq;
    for (int round = 0; round < 50; ++round) {
        for (NodeId src = 0; src < 3; ++src) {
            if (!sw.inQueue(src).full())
                sw.inQueue(src).push(mkPkt(src, 3, next_seq[src]++));
        }
        sys.events().run();
        while (!sw.outQueue(3).empty()) {
            static std::map<NodeId, Word> seen;
            const Packet p = sw.outQueue(3).pop();
            auto it = seen.find(p.src);
            if (it != seen.end()) {
                EXPECT_EQ(p.value, it->second + 1)
                    << "out-of-order from src " << p.src;
            }
            seen[p.src] = p.value;
        }
    }
}

TEST(SwitchDeathTest, UnroutedDestinationPanics)
{
    System sys{Config{}};
    Switch sw(sys, "sw", 2);
    // The routing lookup happens as soon as the packet heads the queue.
    EXPECT_DEATH(
        {
            sw.inQueue(0).push(mkPkt(0, 1, 1));
            sys.events().run();
        },
        "no route");
}

} // namespace
} // namespace tg::net

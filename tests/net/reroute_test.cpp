/**
 * @file
 * Routing-epoch tests (net/reroute.hpp).
 *
 * Two suites:
 *
 *  - RerouteOracle walks every (src, dst) pair against a BFS oracle for
 *    every single-trunk-failure epoch: the detour must avoid the dead
 *    trunk, be exactly as long as the shortest surviving path, and the
 *    recovery epoch must restore the baseline routes bit-for-bit.
 *
 *  - RerouteDeterminism runs random traffic across a mid-run outage on
 *    each multi-path fabric and checks the determinism contract holds
 *    under rerouting: same seed => same trace hash, and every packet is
 *    accounted for (delivered or visibly failed — conservation).
 */

#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/network.hpp"
#include "net/reroute.hpp"
#include "sim/random.hpp"
#include "sim/system.hpp"

namespace tg::net {
namespace {

TopologySpec
torus(std::size_t x, std::size_t y, std::size_t nps)
{
    TopologySpec s;
    s.kind = TopologyKind::Torus2D;
    s.torusX = x;
    s.torusY = y;
    s.nodesPerSwitch = nps;
    s.nodes = x * y * nps;
    return s;
}

TopologySpec
torus3d(std::size_t x, std::size_t y, std::size_t z, std::size_t nps)
{
    TopologySpec s;
    s.kind = TopologyKind::Torus3D;
    s.torusX = x;
    s.torusY = y;
    s.torusZ = z;
    s.nodesPerSwitch = nps;
    s.nodes = x * y * z * nps;
    return s;
}

TopologySpec
fatTree(std::size_t nodes, std::size_t nps, std::size_t spines)
{
    TopologySpec s;
    s.kind = TopologyKind::FatTree;
    s.nodes = nodes;
    s.nodesPerSwitch = nps;
    s.spines = spines;
    return s;
}

/** (switch, out port) -> neighbour switch, from the trunk table. */
using TrunkMap = std::map<std::pair<std::size_t, std::size_t>, std::size_t>;

TrunkMap
trunkMap(const TopologySpec &spec)
{
    TrunkMap next;
    for (const auto &t : spec.model().trunks(spec)) {
        next[{t.swA, t.portA}] = t.swB;
        next[{t.swB, t.portB}] = t.swA;
    }
    return next;
}

/** Switch-to-switch shortest paths over the trunk graph with undirected
 *  trunk @p skip removed (SIZE_MAX = keep every trunk). */
std::vector<std::vector<std::size_t>>
bfsDistances(const TopologySpec &spec, std::size_t skip = SIZE_MAX)
{
    const std::size_t nsw = spec.numSwitches();
    const auto trunks = spec.model().trunks(spec);
    std::vector<std::vector<std::size_t>> adj(nsw);
    for (std::size_t i = 0; i < trunks.size(); ++i) {
        if (i == skip)
            continue;
        adj[trunks[i].swA].push_back(trunks[i].swB);
        adj[trunks[i].swB].push_back(trunks[i].swA);
    }
    constexpr std::size_t kInf = std::size_t(-1);
    std::vector<std::vector<std::size_t>> dist(
        nsw, std::vector<std::size_t>(nsw, kInf));
    for (std::size_t s = 0; s < nsw; ++s) {
        dist[s][s] = 0;
        std::deque<std::size_t> q{s};
        while (!q.empty()) {
            const std::size_t u = q.front();
            q.pop_front();
            for (std::size_t v : adj[u]) {
                if (dist[s][v] == kInf) {
                    dist[s][v] = dist[s][u] + 1;
                    q.push_back(v);
                }
            }
        }
    }
    return dist;
}

// ---------------------------------------------------------------------
// Oracle: every single-trunk-failure epoch routes every pair on a
// shortest surviving path, and recovery restores the baseline
// ---------------------------------------------------------------------

/** Standalone fabric: real switches + rerouter, no channels or traffic.
 *  Trunk channel names copy the Network's naming contract, so the
 *  downTrunk() patterns select the same outage schedule a full Network
 *  would see. */
struct Fabric
{
    Fabric(System &sys, const TopologySpec &s) : spec(s)
    {
        const TopologyModel &model = spec.model();
        for (std::size_t i = 0; i < spec.numSwitches(); ++i)
            switches.push_back(std::make_unique<Switch>(
                sys, "net.sw" + std::to_string(i), spec.portsOf(i)));

        // Baseline routes, exactly as Network::buildRoutes installs them.
        if (!model.srcDependentRouting()) {
            for (std::size_t sw = 0; sw < switches.size(); ++sw)
                for (std::size_t n = 0; n < spec.nodes; ++n)
                    switches[sw]->setRoute(
                        NodeId(n),
                        model.routePort(spec, sw, /*src=*/0, NodeId(n)));
        }

        std::vector<FabricRerouter::TrunkRef> refs;
        for (const TopologyModel::Trunk &t : model.trunks(spec)) {
            refs.push_back(FabricRerouter::TrunkRef{
                t,
                "net.trunk" + std::to_string(t.swA) + "to" +
                    std::to_string(t.swB),
                "net.trunk" + std::to_string(t.swB) + "to" +
                    std::to_string(t.swA)});
        }
        std::vector<Switch *> raw;
        for (auto &sw : switches)
            raw.push_back(sw.get());
        rerouter = std::make_unique<FabricRerouter>(
            sys, "net.reroute", spec, std::move(raw), refs);
    }

    /** Current output port for src->dst at switch @p sw, through
     *  whichever mechanism the fabric routes by. */
    std::size_t routeAt(std::size_t sw, std::size_t src,
                        std::size_t dst) const
    {
        if (spec.model().srcDependentRouting())
            return spec.model().routePortAvoiding(
                spec, sw, NodeId(src), NodeId(dst), *rerouter);
        return switches[sw]->route(NodeId(dst));
    }

    TopologySpec spec;
    std::vector<std::unique_ptr<Switch>> switches;
    std::unique_ptr<FabricRerouter> rerouter;
};

/** Walk src->dst through the fabric's current routing state; returns
 *  traversed switch count, or 0 if the walk got lost, looped, or
 *  crossed a trunk the current epoch declares dead. */
std::size_t
walkCurrent(const Fabric &f, const TrunkMap &next, std::size_t src,
            std::size_t dst)
{
    const TopologySpec &spec = f.spec;
    std::size_t sw = spec.switchOf(src);
    const std::size_t limit = 2 * spec.numSwitches() + 2;
    for (std::size_t steps = 1; steps <= limit; ++steps) {
        const std::size_t out = f.routeAt(sw, src, dst);
        if (sw == spec.switchOf(dst) && out == spec.portOf(dst))
            return steps;
        if (f.rerouter->trunkDead(sw, out))
            return 0; // routed into a trunk this epoch knows is dead
        auto it = next.find({sw, out});
        if (it == next.end())
            return 0;
        sw = it->second;
    }
    return 0;
}

class RerouteOracle : public ::testing::TestWithParam<TopologySpec>
{
};

TEST_P(RerouteOracle, EverySingleTrunkFailureRoutesAroundAndRecovers)
{
    const TopologySpec spec = GetParam();
    ASSERT_TRUE(spec.validate().ok());
    const auto trunks = spec.model().trunks(spec);
    const TrunkMap next = trunkMap(spec);
    const auto baseline = bfsDistances(spec);

    // One non-overlapping window per trunk: trunk i is fabric-dead in
    // [from_i + deadline + 1, until_i).
    constexpr Tick kDeadline = 100;
    constexpr Tick kPeriod = 100'000;
    constexpr Tick kHold = 50'000;
    Config cfg;
    cfg.fault.linkDownDeadline = kDeadline;
    for (std::size_t i = 0; i < trunks.size(); ++i)
        cfg.fault.downTrunk(trunks[i].swA, trunks[i].swB,
                            Tick(1'000 + i * kPeriod),
                            Tick(1'000 + i * kPeriod + kHold));

    System sys{cfg};
    Fabric fab(sys, spec);
    // Each trunk contributes one dead epoch and one recovery epoch.
    ASSERT_EQ(fab.rerouter->plannedFlips(), 2 * trunks.size());

    auto check_all_pairs = [&](const std::vector<std::vector<std::size_t>>
                                   &dist,
                               const char *what, std::size_t trunk) {
        for (std::size_t src = 0; src < spec.nodes; ++src) {
            for (std::size_t dst = 0; dst < spec.nodes; ++dst) {
                if (src == dst)
                    continue;
                const std::size_t want =
                    dist[spec.switchOf(src)][spec.switchOf(dst)] + 1;
                ASSERT_EQ(walkCurrent(fab, next, src, dst), want)
                    << spec.describe() << " trunk " << trunk << " ("
                    << what << ") " << src << "->" << dst;
            }
        }
    };

    for (std::size_t i = 0; i < trunks.size(); ++i) {
        const Tick from = Tick(1'000 + i * kPeriod);
        sys.events().runUntil(from + kDeadline + 1);
        ASSERT_EQ(fab.rerouter->deadTrunksNow(), 2u) << "trunk " << i;
        check_all_pairs(bfsDistances(spec, i), "down", i);

        sys.events().runUntil(from + kHold);
        ASSERT_EQ(fab.rerouter->deadTrunksNow(), 0u) << "trunk " << i;
        check_all_pairs(baseline, "recovered", i);
    }
    EXPECT_EQ(fab.rerouter->flipsApplied(), 2 * trunks.size());
}

INSTANTIATE_TEST_SUITE_P(
    MultiPathFabrics, RerouteOracle,
    ::testing::Values(torus(4, 4, 2), torus(3, 5, 2),
                      torus3d(3, 3, 3, 2), fatTree(16, 4, 4),
                      fatTree(32, 4, 2)),
    [](const ::testing::TestParamInfo<TopologySpec> &info) {
        std::string name = info.param.model().name();
        name[0] = char(std::toupper(name[0]));
        return name + std::to_string(info.param.nodes) + "x" +
               std::to_string(info.param.numSwitches());
    });

// ---------------------------------------------------------------------
// Determinism + conservation under a mid-run outage with live traffic
// ---------------------------------------------------------------------

class StubEndpoint : public NodeEndpoint
{
  public:
    explicit StubEndpoint(PacketArena &arena) : _out(arena, 64), _in(arena, 64)
    {
        _in.onData([this] {
            while (!_in.empty()) {
                ++delivered;
                (void)_in.pop();
            }
        });
    }

    BoundedQueue &egress() override { return _out; }
    BoundedQueue &ingress() override { return _in; }

    std::size_t delivered = 0;

  private:
    BoundedQueue _out;
    BoundedQueue _in;
};

struct FaultedRun
{
    std::uint64_t hash = 0;
    std::size_t sent = 0;
    std::size_t delivered = 0;
    std::size_t failed = 0;
    std::uint64_t flips = 0;
};

/** Random traffic across an outage of the fabric's first trunk. */
FaultedRun
runFaulted(const TopologySpec &spec, std::uint64_t seed)
{
    const auto trunk = spec.model().trunks(spec).front();
    Config cfg;
    cfg.seed = seed;
    // Compressed timings so the outage, the fail-fast flush and the
    // recovery all land inside a short traffic run.
    cfg.fault.retryTimeout = 1'000;
    cfg.fault.linkDownDeadline = 2'000;
    cfg.fault.downTrunk(trunk.swA, trunk.swB, 20'000, 1'000'000);

    System sys{cfg};
    Network net(sys, "net", spec);
    FaultedRun r;
    net.setFailureHandler([&r](Packet &&) { ++r.failed; });

    std::vector<std::unique_ptr<StubEndpoint>> eps;
    for (std::size_t n = 0; n < spec.nodes; ++n) {
        eps.push_back(std::make_unique<StubEndpoint>(sys.arena()));
        net.attach(NodeId(n), *eps.back());
    }

    Rng rng(seed);
    for (int round = 0; round < 6; ++round) {
        for (std::size_t s = 0; s < spec.nodes; ++s) {
            NodeId d = NodeId(rng.below(spec.nodes));
            if (d == NodeId(s))
                d = NodeId((d + 1) % spec.nodes);
            if (!eps[s]->egress().full()) {
                Packet p;
                p.src = NodeId(s);
                p.dst = d;
                p.value = Word(round) << 16 | Word(s);
                eps[s]->egress().push(std::move(p));
                ++r.sent;
            }
        }
        sys.events().run(rng.below(256));
    }
    sys.events().run();

    EXPECT_NE(net.rerouter(), nullptr) << spec.describe();
    r.flips = net.reroutesApplied();
    for (auto &ep : eps)
        r.delivered += ep->delivered;
    r.hash = sys.events().trace().value();
    return r;
}

TEST(RerouteDeterminism, FaultedRunsHashIdenticallyAndConserveTraffic)
{
    for (const TopologySpec &spec :
         {torus(4, 4, 4), torus3d(3, 3, 3, 2), fatTree(16, 4, 4)}) {
        for (std::uint64_t seed : {1u, 2u, 3u}) {
            const FaultedRun a = runFaulted(spec, seed);
            const FaultedRun b = runFaulted(spec, seed);
            EXPECT_EQ(a.hash, b.hash)
                << spec.describe() << " seed " << seed;
            EXPECT_EQ(a.delivered, b.delivered)
                << spec.describe() << " seed " << seed;
            EXPECT_EQ(a.failed, b.failed)
                << spec.describe() << " seed " << seed;
            // Conservation: every packet is delivered or visibly failed.
            EXPECT_EQ(a.delivered + a.failed, a.sent)
                << spec.describe() << " seed " << seed;
            EXPECT_GT(a.delivered, 0u) << spec.describe();
            // Down flip + recovery flip both fired.
            EXPECT_EQ(a.flips, 2u) << spec.describe();
        }
    }
}

} // namespace
} // namespace tg::net

/**
 * @file
 * Fault injection + link-level reliability tests: deterministic injector
 * streams, recovery from corruption/loss/duplication, administrative
 * link-down windows, retry-budget exhaustion, and the end-to-end error
 * path through the cluster (counter conservation, Ctx::lastError).
 */

#include <gtest/gtest.h>

#include <tuple>

#include "api/cluster.hpp"
#include "api/context.hpp"
#include "api/segment.hpp"
#include "net/fault.hpp"
#include "net/link.hpp"
#include "sim/system.hpp"

namespace tg::net {
namespace {

// ---------------------------------------------------------------------
// FaultInjector
// ---------------------------------------------------------------------

TEST(FaultInjector, SameSeedSameLinkSameDecisions)
{
    FaultSpec spec;
    spec.dropRate = 0.3;
    spec.bitErrorRate = 0.2;
    FaultInjector a(spec, 42, "net.up0");
    FaultInjector b(spec, 42, "net.up0");
    for (int i = 0; i < 200; ++i) {
        EXPECT_EQ(a.dropNow(), b.dropNow());
        EXPECT_EQ(a.corruptNow(), b.corruptNow());
    }
}

TEST(FaultInjector, DifferentLinksIndependentStreams)
{
    FaultSpec spec;
    spec.dropRate = 0.5;
    FaultInjector a(spec, 42, "net.up0");
    FaultInjector b(spec, 42, "net.up1");
    int differ = 0;
    for (int i = 0; i < 200; ++i) {
        if (a.dropNow() != b.dropNow())
            ++differ;
    }
    EXPECT_GT(differ, 0);
}

TEST(FaultInjector, LinkFilterRestrictsActivation)
{
    FaultSpec spec;
    spec.dropRate = 1.0;
    spec.linkFilter = "trunk";
    FaultInjector trunk(spec, 1, "net.trunk0to1");
    FaultInjector leaf(spec, 1, "net.up0");
    EXPECT_TRUE(trunk.active());
    EXPECT_FALSE(leaf.active());
}

TEST(FaultInjector, DownWindowsAndDeadline)
{
    FaultSpec spec;
    spec.downWindows = {{100, 200, ""}, {150, 300, ""}};
    spec.linkDownDeadline = 50;
    FaultInjector inj(spec, 1, "ch");
    EXPECT_FALSE(inj.isDown(99));
    EXPECT_TRUE(inj.isDown(100));
    EXPECT_TRUE(inj.isDown(250));
    EXPECT_FALSE(inj.isDown(300));
    // Overlapping windows merge into one outage [100, 300).
    EXPECT_EQ(inj.downUntil(120), 300u);
    EXPECT_EQ(inj.downStart(250), 100u);
    EXPECT_FALSE(inj.downPastDeadline(120));
    EXPECT_TRUE(inj.downPastDeadline(250));
}

// ---------------------------------------------------------------------
// Targeted down-windows (glob patterns on link names)
// ---------------------------------------------------------------------

TEST(FaultTargets, TargetedWindowDownsOnlyMatchingLinks)
{
    FaultSpec spec;
    spec.downLink("*.trunk3to4", 100, 200);
    FaultInjector hit(spec, 1, "net.trunk3to4");
    FaultInjector miss(spec, 1, "net.trunk4to3");
    EXPECT_TRUE(hit.isDown(150));
    EXPECT_FALSE(miss.isDown(150));
    EXPECT_FALSE(hit.isDown(200));
}

TEST(FaultTargets, TargetedWindowIgnoresLinkFilter)
{
    // The spec-wide random-fault filter confines rates to node links,
    // but a targeted window still downs the trunk it names.
    FaultSpec spec;
    spec.dropRate = 0.5;
    spec.linkFilter = "up";
    spec.downLink("*.trunk0to1", 10, 20);
    FaultInjector trunk(spec, 1, "net.trunk0to1");
    EXPECT_FALSE(trunk.active());
    EXPECT_TRUE(trunk.isDown(15));
}

TEST(FaultTargets, UntargetedWindowFollowsLinkFilter)
{
    FaultSpec spec;
    spec.linkFilter = "up";
    spec.downWindows = {{10, 20, ""}};
    FaultInjector up(spec, 1, "net.up0");
    FaultInjector trunk(spec, 1, "net.trunk0to1");
    EXPECT_TRUE(up.isDown(15));
    EXPECT_FALSE(trunk.isDown(15));
}

TEST(FaultTargets, DownTrunkCoversBothDirections)
{
    FaultSpec spec;
    spec.downTrunk(3, 4, 100, 200);
    ASSERT_EQ(spec.downWindows.size(), 2u);
    FaultInjector fwd(spec, 1, "net.trunk3to4");
    FaultInjector rev(spec, 1, "net.trunk4to3");
    FaultInjector other(spec, 1, "net.trunk3to2");
    EXPECT_TRUE(fwd.isDown(150));
    EXPECT_TRUE(rev.isDown(150));
    EXPECT_FALSE(other.isDown(150));
}

TEST(FaultTargets, MergedDownWindowsCoalescePerLink)
{
    FaultSpec spec;
    spec.downLink("*.trunk0to1", 100, 200);
    spec.downLink("*.trunk0to1", 150, 300); // overlaps the first
    spec.downLink("*.trunk0to1", 300, 400); // abuts the merged window
    spec.downLink("*.trunk9to9", 50, 60);   // different link
    FaultInjector inj(spec, 1, "net.trunk0to1");
    const auto merged = inj.mergedDownWindows();
    ASSERT_EQ(merged.size(), 1u);
    EXPECT_EQ(merged[0].from, 100u);
    EXPECT_EQ(merged[0].until, 400u);
}

TEST(FaultSpecValidate, RejectsMalformedTargetPattern)
{
    FaultSpec doubleStar;
    doubleStar.downLink("**trunk", 10, 20);
    EXPECT_DEATH(doubleStar.validate(), "pattern");

    FaultSpec charClass;
    charClass.downLink("*.trunk[01]to1", 10, 20);
    EXPECT_DEATH(charClass.validate(), "pattern");
}

TEST(FaultSpecValidate, AcceptsWellFormedTargetPattern)
{
    FaultSpec f;
    f.downLink("*.trunk3to4", 10, 20).downTrunk(1, 2, 30, 40);
    f.downLink("*.trunk?to1", 50, 60); // '?' is a supported wildcard
    f.validate(); // must not die
}

// ---------------------------------------------------------------------
// Channel reliability layer
// ---------------------------------------------------------------------

class FaultChannelTest : public ::testing::Test
{
  protected:
    Packet
    mkPkt(Word v, std::uint32_t payload = 8)
    {
        Packet p;
        p.value = v;
        p.payloadBytes = payload;
        return p;
    }

    Config
    cfg(const FaultSpec &f, std::uint64_t seed = 42)
    {
        Config c;
        c.fault = f;
        c.seed = seed;
        return c;
    }
};

TEST_F(FaultChannelTest, CrcDetectsCorruptionAndRetransmits)
{
    FaultSpec f;
    f.bitErrorRate = 0.2;
    System sys(cfg(f));
    BoundedQueue up(sys.arena(), 32), down(sys.arena(), 64);
    Channel ch(sys, "ch", up, down, 1.0, 10);

    for (Word i = 0; i < 20; ++i)
        up.push(mkPkt(i));
    sys.events().run();

    // Every packet arrives exactly once, in order, with intact contents.
    ASSERT_EQ(down.size(), 20u);
    for (Word i = 0; i < 20; ++i)
        EXPECT_EQ(down.pop().value, i);
    EXPECT_GT(ch.corruptions(), 0u);
    EXPECT_GT(ch.retransmissions(), 0u);
    EXPECT_EQ(ch.wireFailures(), 0u);
}

TEST_F(FaultChannelTest, DropsAreRetransmitted)
{
    FaultSpec f;
    f.dropRate = 0.25;
    System sys(cfg(f));
    BoundedQueue up(sys.arena(), 32), down(sys.arena(), 64);
    Channel ch(sys, "ch", up, down, 1.0, 10);

    for (Word i = 0; i < 20; ++i)
        up.push(mkPkt(i));
    sys.events().run();

    ASSERT_EQ(down.size(), 20u);
    for (Word i = 0; i < 20; ++i)
        EXPECT_EQ(down.pop().value, i);
    EXPECT_GT(ch.retransmissions(), 0u);
    EXPECT_EQ(ch.wireFailures(), 0u);
}

TEST_F(FaultChannelTest, DuplicatesAreDiscarded)
{
    FaultSpec f;
    f.duplicateRate = 1.0; // every transmission delivered twice
    System sys(cfg(f));
    BoundedQueue up(sys.arena(), 32), down(sys.arena(), 64);
    Channel ch(sys, "ch", up, down, 1.0, 10);

    for (Word i = 0; i < 10; ++i)
        up.push(mkPkt(i));
    sys.events().run();

    ASSERT_EQ(down.size(), 10u);
    for (Word i = 0; i < 10; ++i)
        EXPECT_EQ(down.pop().value, i);
    EXPECT_GT(ch.duplicateDiscards(), 0u);
    EXPECT_EQ(ch.wireFailures(), 0u);
}

TEST_F(FaultChannelTest, LinkDownWindowDelaysDelivery)
{
    FaultSpec f;
    f.downWindows = {{0, 5000, ""}};
    System sys(cfg(f));
    BoundedQueue up(sys.arena(), 8), down(sys.arena(), 8);
    Channel ch(sys, "ch", up, down, 1.0, 10);

    up.push(mkPkt(7));
    sys.events().run();

    ASSERT_EQ(down.size(), 1u);
    EXPECT_EQ(down.pop().value, 7u);
    EXPECT_GE(sys.now(), 5000u); // nothing crossed during the outage
    EXPECT_EQ(ch.wireFailures(), 0u);
}

TEST_F(FaultChannelTest, TargetedWindowDownsNamedChannelOutsideFilter)
{
    FaultSpec f;
    f.linkFilter = "somewhere-else"; // random faults confined elsewhere
    f.downLink("ch", 0, 5000);       // ...but this channel is named
    System sys(cfg(f));
    BoundedQueue up(sys.arena(), 8), down(sys.arena(), 8);
    Channel ch(sys, "ch", up, down, 1.0, 10);

    up.push(mkPkt(7));
    sys.events().run();

    ASSERT_EQ(down.size(), 1u);
    EXPECT_EQ(down.pop().value, 7u);
    EXPECT_GE(sys.now(), 5000u); // held until the targeted outage ended
    EXPECT_EQ(ch.wireFailures(), 0u);
}

TEST_F(FaultChannelTest, DownPastDeadlineFailsOver)
{
    FaultSpec f;
    f.downWindows = {{0, 1'000'000, ""}};
    f.linkDownDeadline = 100;
    System sys(cfg(f));
    BoundedQueue up(sys.arena(), 8), down(sys.arena(), 8);
    Channel ch(sys, "ch", up, down, 1.0, 10);

    std::vector<Packet> failed;
    ch.setFailureHandler([&](Packet &&p) { failed.push_back(std::move(p)); });

    up.push(mkPkt(1));
    up.push(mkPkt(2));
    sys.events().runUntil(10'000);

    ASSERT_EQ(failed.size(), 2u);
    EXPECT_EQ(failed[0].value, 1u);
    EXPECT_EQ(failed[1].value, 2u);
    EXPECT_EQ(down.size(), 0u);
    EXPECT_EQ(ch.wireFailures(), 2u);
}

TEST_F(FaultChannelTest, RetryBudgetExhaustionFailsPacket)
{
    FaultSpec f;
    f.dropRate = 1.0; // nothing ever arrives
    f.retryTimeout = 100;
    f.maxRetries = 3;
    System sys(cfg(f));
    BoundedQueue up(sys.arena(), 8), down(sys.arena(), 8);
    Channel ch(sys, "ch", up, down, 1.0, 10);

    std::vector<Packet> failed;
    ch.setFailureHandler([&](Packet &&p) { failed.push_back(std::move(p)); });

    up.push(mkPkt(9));
    sys.events().run();

    ASSERT_EQ(failed.size(), 1u);
    EXPECT_EQ(failed[0].value, 9u);
    EXPECT_EQ(ch.wireFailures(), 1u);
    EXPECT_EQ(down.size(), 0u);
}

TEST_F(FaultChannelTest, StatsAreDeterministic)
{
    FaultSpec f;
    f.bitErrorRate = 0.1;
    f.dropRate = 0.1;
    f.duplicateRate = 0.1;

    auto runOnce = [&](std::uint64_t seed) {
        System sys(cfg(f, seed));
        BoundedQueue up(sys.arena(), 32), down(sys.arena(), 64);
        Channel ch(sys, "ch", up, down, 1.0, 10);
        for (Word i = 0; i < 30; ++i)
            up.push(mkPkt(i));
        sys.events().run();
        return std::tuple{ch.corruptions(), ch.retransmissions(),
                          ch.duplicateDiscards(), sys.now(), down.size()};
    };

    EXPECT_EQ(runOnce(7), runOnce(7));
    EXPECT_NE(runOnce(7), runOnce(8));
}

// ---------------------------------------------------------------------
// End-to-end error path through the cluster
// ---------------------------------------------------------------------

TEST(FaultCluster, LossyLinkStillCompletesAllOps)
{
    ClusterSpec spec = ClusterSpec::star(2);
    spec.config.fault.dropRate = 0.05;
    spec.config.fault.bitErrorRate = 0.05;
    Cluster c(spec);
    Segment &seg = c.allocShared("s", 8192, 0);

    bool finished = false;
    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        for (Word i = 0; i < 50; ++i)
            co_await ctx.write(seg.word(i % 8), i);
        co_await ctx.fence();
        finished = true;
    });
    c.run(10'000'000'000ULL);

    EXPECT_TRUE(finished);
    EXPECT_TRUE(c.allDone());
    // Conservation: the fence drained, so nothing is outstanding.
    EXPECT_EQ(c.hibOf(1).outstanding().current(), 0u);
    EXPECT_GT(c.network().retransmissions(), 0u);
}

TEST(FaultCluster, BudgetExhaustionSurfacesAsCtxError)
{
    ClusterSpec spec = ClusterSpec::star(2);
    spec.config.fault.dropRate = 1.0; // every transfer lost
    spec.config.fault.linkFilter = "up1"; // only node 1's egress link
    spec.config.fault.retryTimeout = 1000;
    spec.config.fault.maxRetries = 2;
    Cluster c(spec);
    Segment &seg = c.allocShared("s", 8192, 0);

    OpError err = OpError::None;
    OpError sticky = OpError::None;
    bool finished = false;
    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        co_await ctx.write(seg.word(0), 1);
        Result<void> f = co_await ctx.fence();
        err = f.error();
        sticky = ctx.lastError();
        finished = true;
    });
    c.run(10'000'000'000ULL);

    // The write was lost for good — but the fence still drained and the
    // failure is visible on the fence's own Result (and on the sticky
    // per-context aggregate).
    EXPECT_TRUE(finished);
    EXPECT_EQ(err, OpError::LinkFailure);
    EXPECT_EQ(sticky, OpError::LinkFailure);
    EXPECT_EQ(c.hibOf(1).outstanding().current(), 0u);
    EXPECT_GT(c.network().wireFailures(), 0u);
    EXPECT_GT(c.hibOf(1).wireFailures(), 0u);
    EXPECT_GT(c.os(1).linkFailureInterrupts(), 0u);
}

TEST(FaultCluster, LostReadUnblocksWithError)
{
    ClusterSpec spec = ClusterSpec::star(2);
    spec.config.fault.dropRate = 1.0;
    spec.config.fault.linkFilter = "down0"; // replies towards node 0 die
    spec.config.fault.retryTimeout = 1000;
    spec.config.fault.maxRetries = 2;
    Cluster c(spec);
    Segment &seg = c.allocShared("s", 8192, 1);

    bool finished = false;
    bool flagged = false;
    Word got = 1234;
    c.spawn(0, [&](Ctx &ctx) -> Task<void> {
        Result<Word> r = co_await ctx.read(seg.word(0));
        flagged = !r.ok() && r.error() == OpError::LinkFailure;
        got = r.value();
        finished = true;
    });
    c.run(10'000'000'000ULL);

    // The blocked CPU unblocked (with the error value 0 and the loss
    // flagged on the Result) instead of hanging forever on a reply that
    // will never come.
    EXPECT_TRUE(finished);
    EXPECT_TRUE(flagged);
    EXPECT_EQ(got, 0u);
}

TEST(FaultCluster, InertSpecKeepsFastPath)
{
    ClusterSpec spec = ClusterSpec::star(2);
    // All-zero FaultSpec: enabled() is false, stats stay unregistered.
    ASSERT_FALSE(spec.config.fault.enabled());
    Cluster c(spec);
    Segment &seg = c.allocShared("s", 8192, 0);
    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        co_await ctx.write(seg.word(0), 1);
        co_await ctx.fence();
    });
    c.run(10'000'000'000ULL);
    EXPECT_EQ(c.network().retransmissions(), 0u);
    EXPECT_EQ(c.network().wireFailures(), 0u);
}

TEST(FaultSpecValidate, RejectsBadRates)
{
    FaultSpec f;
    f.dropRate = 1.5;
    EXPECT_DEATH(f.validate(), "probability");
}

} // namespace
} // namespace tg::net

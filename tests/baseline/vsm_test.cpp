/**
 * @file
 * Tests of the VSM (software DSM) baseline: fault-driven replication,
 * write invalidation, coherence of the final contents, and the cost gap
 * against Telegraphos remote operations.
 */

#include <gtest/gtest.h>

#include "api/cluster.hpp"
#include "api/context.hpp"
#include "api/segment.hpp"
#include "baseline/vsm.hpp"

namespace tg {
namespace {

TEST(Vsm, ReadFaultReplicatesPage)
{
    ClusterSpec spec = ClusterSpec::star(2);
    Cluster c(spec);
    baseline::VsmDsm vsm(c);
    const VAddr base = vsm.alloc("v", 8192, /*home=*/0);

    // Seed through a program on the home node (pages are Private there).
    Word got = 0;
    c.spawn(0, [&](Ctx &ctx) -> Task<void> {
        co_await ctx.write(base, 55);
    });
    c.run(1'000'000'000ULL);

    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        got = co_await ctx.read(base); // faults, fetches the page
    });
    c.run(10'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
    EXPECT_EQ(got, 55u);
    EXPECT_EQ(vsm.readFaults(), 1u);
    EXPECT_GE(vsm.pageTransfers(), 1u);
}

TEST(Vsm, WriteFaultInvalidatesReaders)
{
    ClusterSpec spec = ClusterSpec::star(3);
    Cluster c(spec);
    baseline::VsmDsm vsm(c);
    const VAddr base = vsm.alloc("v", 8192, 0);

    // Nodes 1 and 2 read (both get copies)...
    for (NodeId n = 1; n <= 2; ++n) {
        c.spawn(n, [&](Ctx &ctx) -> Task<void> {
            (void)co_await ctx.read(base);
        });
    }
    c.run(20'000'000'000ULL);
    ASSERT_TRUE(c.allDone());

    // ...then node 1 writes: node 0 and node 2 must lose their copies.
    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        co_await ctx.write(base, 77);
    });
    c.run(40'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
    EXPECT_GE(vsm.invalidations(), 1u);

    // A subsequent read elsewhere re-faults and sees the new value.
    Word got = 0;
    c.spawn(2, [&](Ctx &ctx) -> Task<void> {
        got = co_await ctx.read(base);
    });
    c.run(80'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
    EXPECT_EQ(got, 77u);
}

TEST(Vsm, SequentialCountingThroughSharedPage)
{
    // Ping-pong increments: the page migrates back and forth; the final
    // count must be exact (coherence under write faults).
    ClusterSpec spec = ClusterSpec::star(2);
    Cluster c(spec);
    baseline::VsmDsm vsm(c);
    const VAddr base = vsm.alloc("v", 8192, 0);

    // Interleave via generation words: node 0 writes even, node 1 odd.
    for (NodeId n = 0; n < 2; ++n) {
        c.spawn(n, [&, n](Ctx &ctx) -> Task<void> {
            for (int k = 0; k < 6; ++k) {
                for (;;) {
                    const Word v = co_await ctx.read(base);
                    if (v % 2 == n)
                        break;
                    co_await ctx.compute(50'000);
                }
                const Word v = co_await ctx.read(base);
                co_await ctx.write(base, v + 1);
            }
        });
    }
    c.run(4'000'000'000'000ULL);
    ASSERT_TRUE(c.allDone());

    Word final = 0;
    c.spawn(0, [&](Ctx &ctx) -> Task<void> {
        final = co_await ctx.read(base);
    });
    c.run(4'000'000'000'000ULL);
    EXPECT_EQ(final, 12u);
}

TEST(Vsm, FaultCostDwarfsTelegraphosRemoteAccess)
{
    // The motivating comparison of paper section 2.1.
    ClusterSpec spec = ClusterSpec::star(2);
    Cluster c(spec);
    baseline::VsmDsm vsm(c);
    const VAddr vsm_base = vsm.alloc("v", 8192, 0);
    Segment &tg_seg = c.allocShared("t", 8192, 0);

    Tick vsm_cost = 0, tg_cost = 0;
    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        Tick t0 = ctx.now();
        (void)co_await ctx.read(vsm_base); // cold: page fault + transfer
        vsm_cost = ctx.now() - t0;

        t0 = ctx.now();
        (void)co_await ctx.read(tg_seg.word(0)); // hardware remote read
        tg_cost = ctx.now() - t0;
    });
    c.run(100'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
    EXPECT_GT(vsm_cost, tg_cost * 20);
}

} // namespace
} // namespace tg

/**
 * @file
 * Tests of the socket-style message-passing baseline.
 */

#include <gtest/gtest.h>

#include "api/cluster.hpp"
#include "api/context.hpp"
#include "api/segment.hpp"
#include "baseline/sockets.hpp"

namespace tg {
namespace {

TEST(Sockets, SendRecvRoundTrip)
{
    ClusterSpec spec = ClusterSpec::star(2);
    Cluster c(spec);
    baseline::SocketLayer sockets(c);

    bool got = false;
    c.spawn(0, [&](Ctx &ctx) -> Task<void> {
        co_await sockets.send(ctx, 1, /*tag=*/7, /*bytes=*/64);
    });
    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        co_await sockets.recv(ctx, 7);
        got = true;
    });
    c.run(100'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
    EXPECT_TRUE(got);
    EXPECT_EQ(sockets.delivered(), 1u);
}

TEST(Sockets, TagsAreIndependentChannels)
{
    ClusterSpec spec = ClusterSpec::star(2);
    Cluster c(spec);
    baseline::SocketLayer sockets(c);

    std::vector<int> order;
    c.spawn(0, [&](Ctx &ctx) -> Task<void> {
        co_await sockets.send(ctx, 1, 2, 32);
        co_await sockets.send(ctx, 1, 1, 32);
    });
    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        co_await sockets.recv(ctx, 1);
        order.push_back(1);
        co_await sockets.recv(ctx, 2);
        order.push_back(2);
    });
    c.run(100'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Sockets, MessagingCostsDwarfRemoteWrites)
{
    // The section 1 motivation: OS-mediated messaging vs a user-level
    // remote store for the same small payload.
    ClusterSpec spec = ClusterSpec::star(2);
    Cluster c(spec);
    baseline::SocketLayer sockets(c);
    Segment &seg = c.allocShared("s", 8192, 0);

    Tick socket_cost = 0, write_cost = 0;
    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        Tick t0 = ctx.now();
        co_await sockets.send(ctx, 0, 1, 8);
        socket_cost = ctx.now() - t0;

        t0 = ctx.now();
        co_await ctx.write(seg.word(0), 1);
        co_await ctx.fence();
        write_cost = ctx.now() - t0;
    });
    c.run(100'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
    EXPECT_GT(socket_cost, write_cost * 10);
}

} // namespace
} // namespace tg

/**
 * @file
 * VSM race tests: concurrent faults on the same page must serialize
 * through the manager (the per-page busy gate) and never corrupt the
 * holder bookkeeping.
 */

#include <gtest/gtest.h>

#include "api/cluster.hpp"
#include "api/context.hpp"
#include "baseline/vsm.hpp"

namespace tg {
namespace {

TEST(VsmRaces, ConcurrentReadFaultsBothSucceed)
{
    ClusterSpec spec = ClusterSpec::star(3);
    Cluster c(spec);
    baseline::VsmDsm vsm(c);
    const VAddr base = vsm.alloc("v", 8192, 0);

    // Seed via the home node.
    c.spawn(0, [&](Ctx &ctx) -> Task<void> {
        co_await ctx.write(base, 99);
    });
    c.run(10'000'000'000ULL);

    // Both remote nodes fault at the same instant.
    Word got1 = 0, got2 = 0;
    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        got1 = co_await ctx.read(base);
    });
    c.spawn(2, [&](Ctx &ctx) -> Task<void> {
        got2 = co_await ctx.read(base);
    });
    c.run(100'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
    EXPECT_EQ(got1, 99u);
    EXPECT_EQ(got2, 99u);
}

TEST(VsmRaces, ConcurrentWriteFaultsSerializeToOneWinnerAtATime)
{
    ClusterSpec spec = ClusterSpec::star(2);
    Cluster c(spec);
    baseline::VsmDsm vsm(c);
    const VAddr base = vsm.alloc("v", 8192, 0);

    // Both nodes write-fault simultaneously; serialization through the
    // manager must leave a consistent final state (the second writer's
    // store lands after the first's and wins or loses cleanly — never
    // diverges).
    c.spawn(0, [&](Ctx &ctx) -> Task<void> {
        co_await ctx.write(base, 111);
    });
    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        co_await ctx.write(base, 222);
    });
    c.run(400'000'000'000ULL);
    ASSERT_TRUE(c.allDone());

    // Whoever owns the page now must hold one of the two values, and a
    // subsequent reader agrees with the owner.
    Word final0 = 0, final1 = 0;
    c.spawn(0, [&](Ctx &ctx) -> Task<void> {
        final0 = co_await ctx.read(base);
    });
    c.run(400'000'000'000ULL);
    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        final1 = co_await ctx.read(base);
    });
    c.run(400'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
    EXPECT_TRUE(final0 == 111 || final0 == 222);
    EXPECT_EQ(final0, final1);
}

TEST(VsmRaces, ReaderDuringMigrationSeesOldOrNewNeverGarbage)
{
    ClusterSpec spec = ClusterSpec::star(3);
    Cluster c(spec);
    baseline::VsmDsm vsm(c);
    const VAddr base = vsm.alloc("v", 8192, 0);

    c.spawn(0, [&](Ctx &ctx) -> Task<void> {
        co_await ctx.write(base, 5);
    });
    c.run(10'000'000'000ULL);

    Word seen = 12345;
    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        co_await ctx.write(base, 6); // triggers migration from node 0
    });
    c.spawn(2, [&](Ctx &ctx) -> Task<void> {
        seen = co_await ctx.read(base); // races the migration
    });
    c.run(400'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
    EXPECT_TRUE(seen == 5 || seen == 6) << "garbage value " << seen;
}

} // namespace
} // namespace tg

/**
 * @file
 * End-to-end smoke tests: a full cluster executing programs through the
 * public API, exercising remote read/write, atomics, fences, locks and
 * barriers across the simulated network.
 */

#include <gtest/gtest.h>

#include "api/cluster.hpp"
#include "api/context.hpp"
#include "api/segment.hpp"

namespace tg {
namespace {

ClusterSpec
twoNodes()
{
    ClusterSpec spec = ClusterSpec::star(2);
    return spec;
}

TEST(EndToEnd, RemoteWriteIsAppliedAtHome)
{
    Cluster c(twoNodes());
    Segment &seg = c.allocShared("s", 4096, 0);

    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        co_await ctx.write(seg.word(0), 1234);
        co_await ctx.fence();
    });
    c.run(/*limit=*/1'000'000'000);

    EXPECT_TRUE(c.allDone());
    EXPECT_EQ(seg.peek(0), 1234u);
}

TEST(EndToEnd, RemoteReadSeesRemoteData)
{
    Cluster c(twoNodes());
    Segment &seg = c.allocShared("s", 4096, 0);
    seg.poke(3, 777);

    Word got = 0;
    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        got = co_await ctx.read(seg.word(3));
    });
    c.run(1'000'000'000);

    EXPECT_TRUE(c.allDone());
    EXPECT_EQ(got, 777u);
}

TEST(EndToEnd, RemoteAtomicsAreAtomicAcrossNodes)
{
    ClusterSpec spec = ClusterSpec::star(4);
    Cluster c(spec);
    Segment &seg = c.allocShared("ctr", 4096, 0);

    constexpr int kIncsPerNode = 20;
    for (NodeId n = 0; n < 4; ++n) {
        c.spawn(n, [&](Ctx &ctx) -> Task<void> {
            for (int i = 0; i < kIncsPerNode; ++i)
                co_await ctx.fetchAdd(seg.word(0), 1);
        });
    }
    c.run(10'000'000'000ULL);

    EXPECT_TRUE(c.allDone());
    EXPECT_EQ(seg.peek(0), Word(4 * kIncsPerNode));
}

TEST(EndToEnd, LockProtectsReadModifyWrite)
{
    ClusterSpec spec = ClusterSpec::star(3);
    Cluster c(spec);
    Segment &seg = c.allocShared("s", 4096, 0);
    // word 0 = lock, word 1 = plain shared counter

    constexpr int kRounds = 10;
    for (NodeId n = 0; n < 3; ++n) {
        c.spawn(n, [&](Ctx &ctx) -> Task<void> {
            for (int i = 0; i < kRounds; ++i) {
                co_await ctx.lock(seg.word(0));
                const Word v = co_await ctx.read(seg.word(1));
                co_await ctx.compute(2000); // widen the race window
                co_await ctx.write(seg.word(1), v + 1);
                co_await ctx.unlock(seg.word(0));
            }
        });
    }
    c.run(60'000'000'000ULL);

    EXPECT_TRUE(c.allDone());
    EXPECT_EQ(seg.peek(1), Word(3 * kRounds));
}

TEST(EndToEnd, BarrierSeparatesPhases)
{
    ClusterSpec spec = ClusterSpec::star(3);
    Cluster c(spec);
    Segment &sync = c.allocShared("sync", 4096, 0);
    Segment &data = c.allocShared("data", 4096, 0);

    // Each node writes its slot, barrier, then checks all slots.
    std::vector<int> ok(3, 0);
    for (NodeId n = 0; n < 3; ++n) {
        c.spawn(n, [&, n](Ctx &ctx) -> Task<void> {
            co_await ctx.write(data.word(n), Word(n) + 1);
            co_await ctx.barrier(sync.word(0), sync.word(1), 3);
            bool all = true;
            for (std::size_t i = 0; i < 3; ++i) {
                if (co_await ctx.read(data.word(i)) != Word(i) + 1)
                    all = false;
            }
            ok[n] = all ? 1 : 0;
        });
    }
    c.run(60'000'000'000ULL);

    EXPECT_TRUE(c.allDone());
    EXPECT_EQ(ok, (std::vector<int>{1, 1, 1}));
}

TEST(EndToEnd, RemoteCopyMovesData)
{
    Cluster c(twoNodes());
    Segment &src = c.allocShared("src", 4096, 0);
    Segment &dst = c.allocShared("dst", 4096, 1);
    for (std::size_t i = 0; i < 8; ++i)
        src.poke(i, 100 + i);

    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        co_await ctx.copy(src.word(0), dst.word(0), 8 * 8);
        co_await ctx.fence(); // copies are fence-tracked (2.2.2)
        for (std::size_t i = 0; i < 8; ++i)
            EXPECT_EQ(co_await ctx.read(dst.word(i)), 100 + i);
    });
    c.run(10'000'000'000ULL);
    EXPECT_TRUE(c.allDone());
}

TEST(EndToEnd, BothPrototypesRun)
{
    for (auto proto : {Prototype::TelegraphosI, Prototype::TelegraphosII}) {
        ClusterSpec spec = twoNodes();
        spec.config.prototype = proto;
        Cluster c(spec);
        Segment &seg = c.allocShared("s", 4096, 0);

        c.spawn(1, [&](Ctx &ctx) -> Task<void> {
            co_await ctx.write(seg.word(0), 5);
            const Word old = co_await ctx.fetchAdd(seg.word(0), 2);
            EXPECT_EQ(old, 5u);
        });
        c.run(10'000'000'000ULL);
        EXPECT_TRUE(c.allDone());
        EXPECT_EQ(seg.peek(0), 7u);
    }
}

} // namespace
} // namespace tg

/**
 * @file
 * Tests that the hardware cost model reproduces Table 1 of the paper at
 * the default configuration and scales with the design parameters.
 */

#include <gtest/gtest.h>

#include <map>

#include "hwcost/gate_count.hpp"

namespace tg {
namespace {

std::map<std::string, hwcost::BlockCost>
byName(const Config &cfg)
{
    std::map<std::string, hwcost::BlockCost> m;
    for (const auto &row : hwcost::hibGateCount(cfg))
        m[row.block] = row;
    return m;
}

TEST(GateCount, MatchesTable1AtDefaults)
{
    const auto rows = byName(Config{});

    EXPECT_EQ(rows.at("Central control").gates, 1000u);
    EXPECT_DOUBLE_EQ(rows.at("Central control").sramKbits, 0.5);
    EXPECT_EQ(rows.at("Turbochannel interface").gates, 550u);
    EXPECT_EQ(rows.at("Incoming link intf.").gates, 1000u);
    EXPECT_DOUBLE_EQ(rows.at("Incoming link intf.").sramKbits, 2.0);
    EXPECT_EQ(rows.at("Outgoing link intf.").gates, 750u);
    EXPECT_DOUBLE_EQ(rows.at("Outgoing link intf.").sramKbits, 2.0);

    EXPECT_EQ(rows.at("Subtotal message related").gates, 3300u);
    EXPECT_DOUBLE_EQ(rows.at("Subtotal message related").sramKbits, 4.5);

    EXPECT_EQ(rows.at("Atomic operations").gates, 1500u);
    EXPECT_EQ(rows.at("Multicast (eager sharing)").gates, 400u);
    EXPECT_DOUBLE_EQ(rows.at("Multicast (eager sharing)").sramKbits, 512.0);
    EXPECT_EQ(rows.at("Page Access Counters").gates, 800u);
    EXPECT_DOUBLE_EQ(rows.at("Page Access Counters").sramKbits, 2048.0);

    EXPECT_EQ(rows.at("Subtotal shared mem. rel.").gates, 2700u);
}

TEST(GateCount, ScalesWithMulticastEntries)
{
    Config cfg;
    cfg.multicastEntries = 64 * 1024;
    EXPECT_DOUBLE_EQ(byName(cfg).at("Multicast (eager sharing)").sramKbits,
                     2048.0);
}

TEST(GateCount, ScalesWithCounterCoverage)
{
    Config cfg;
    cfg.counterPages = 16 * 1024;
    cfg.pageCounterBits = 8;
    EXPECT_DOUBLE_EQ(byName(cfg).at("Page Access Counters").sramKbits,
                     256.0);
}

TEST(GateCount, ScalesWithFifoDepth)
{
    Config cfg;
    cfg.hibFifoPackets = 32;
    EXPECT_DOUBLE_EQ(byName(cfg).at("Incoming link intf.").sramKbits, 4.0);
}

TEST(GateCount, RenderedTableContainsPaperStrings)
{
    const auto rows = hwcost::hibGateCount(Config{});
    const std::string table = hwcost::renderGateCountTable(rows);
    EXPECT_NE(table.find("16 K multicast list entries x 32 bits"),
              std::string::npos);
    EXPECT_NE(table.find("64 K pages x (16+16) bits"), std::string::npos);
    EXPECT_NE(table.find("16 MBytes = 128 Mbits of DRAM"),
              std::string::npos);
}

} // namespace
} // namespace tg

/**
 * @file
 * Property-based tests over randomized workloads and topologies:
 *
 *  - convergence: after quiescence every copy of every page under the
 *    owner-counter protocol equals the owner's copy, for any mix of
 *    unsynchronized writers (the section 2.3.3 guarantee);
 *  - liveness: random traffic always drains (no deadlock);
 *  - conservation: outstanding counters return to zero after a fence;
 *  - atomicity: random interleavings of fetch&add never lose updates.
 */

#include <gtest/gtest.h>

#include "api/cluster.hpp"
#include "api/context.hpp"
#include "api/segment.hpp"
#include "workload/chaotic.hpp"
#include "workload/traffic.hpp"

namespace tg {
namespace {

using coherence::ProtocolKind;

struct PropertyParam
{
    std::uint64_t seed;
    std::size_t nodes;
    net::TopologyKind kind;
};

class ConvergenceProperty : public ::testing::TestWithParam<PropertyParam>
{
};

TEST_P(ConvergenceProperty, OwnerProtocolCopiesConvergeAfterQuiescence)
{
    const auto param = GetParam();
    ClusterSpec spec =
        ClusterSpec::forKind(param.kind, param.nodes, 2).seed(param.seed);
    Cluster c(spec);

    Segment &seg = c.allocShared("s", 8192, 0);
    for (NodeId n = 1; n < NodeId(param.nodes); ++n)
        seg.replicate(n, ProtocolKind::OwnerCounter);

    workload::ChaoticConfig cfg;
    cfg.writes = 60;
    cfg.words = 16;
    cfg.gap = 700;
    for (NodeId n = 0; n < NodeId(param.nodes); ++n)
        c.spawn(n, workload::chaoticWriter(seg, cfg));

    c.run(2'000'000'000'000ULL);
    ASSERT_TRUE(c.allDone());

    // Quiescent: every copy of every word equals the owner's value.
    for (std::size_t w = 0; w < cfg.words; ++w) {
        const Word home = seg.peek(w);
        for (NodeId n = 1; n < NodeId(param.nodes); ++n)
            ASSERT_EQ(seg.peekCopy(n, w), home)
                << "divergence at node " << n << " word " << w
                << " (seed " << param.seed << ")";
    }

    // Conservation: all pending counters drained.
    for (NodeId n = 0; n < NodeId(param.nodes); ++n) {
        EXPECT_EQ(c.hibOf(n).counterCache().used(), 0u);
        EXPECT_EQ(c.hibOf(n).outstanding().current(), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ConvergenceProperty,
    ::testing::Values(
        PropertyParam{1, 2, net::TopologyKind::Star},
        PropertyParam{2, 3, net::TopologyKind::Star},
        PropertyParam{3, 4, net::TopologyKind::Star},
        PropertyParam{4, 4, net::TopologyKind::Chain},
        PropertyParam{5, 6, net::TopologyKind::Ring},
        PropertyParam{6, 5, net::TopologyKind::Star},
        PropertyParam{7, 6, net::TopologyKind::Chain},
        PropertyParam{8, 3, net::TopologyKind::Star}),
    [](const auto &info) {
        return "seed" + std::to_string(info.param.seed) + "n" +
               std::to_string(info.param.nodes);
    });

class TrafficProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(TrafficProperty, RandomTrafficDrainsWithoutDeadlock)
{
    ClusterSpec spec = ClusterSpec::star(4);
    spec.config.seed = GetParam();
    Cluster c(spec);

    std::vector<Segment *> segs;
    for (NodeId n = 0; n < 4; ++n)
        segs.push_back(&c.allocShared("s" + std::to_string(n), 8192, n));

    workload::TrafficConfig cfg;
    cfg.ops = 300;
    cfg.readFraction = 0.3;
    cfg.gap = 100;
    for (NodeId n = 0; n < 4; ++n)
        c.spawn(n, workload::randomTraffic(segs, cfg));

    const Tick end = c.run(4'000'000'000'000ULL);
    ASSERT_TRUE(c.allDone()) << "deadlock or livelock, seed "
                             << GetParam();
    EXPECT_LT(end, 4'000'000'000'000ULL);
    for (NodeId n = 0; n < 4; ++n)
        EXPECT_EQ(c.hibOf(n).outstanding().current(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrafficProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

class AtomicityProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(AtomicityProperty, FetchAddNeverLosesUpdates)
{
    ClusterSpec spec = ClusterSpec::star(3);
    spec.config.seed = GetParam();
    Cluster c(spec);
    Segment &seg = c.allocShared("ctr", 8192, 0);

    constexpr int kOps = 25;
    for (NodeId n = 0; n < 3; ++n) {
        c.spawn(n, [&](Ctx &ctx) -> Task<void> {
            for (int i = 0; i < kOps; ++i) {
                co_await ctx.fetchAdd(seg.word(0), 1);
                co_await ctx.compute(ctx.rng().below(5000));
            }
        });
    }
    c.run(2'000'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
    EXPECT_EQ(seg.peek(0), Word(3 * kOps));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AtomicityProperty,
                         ::testing::Values(101, 202, 303, 404));

} // namespace
} // namespace tg

/**
 * @file
 * Failure injection and extreme-configuration tests:
 *
 *  - a thread killed by a protection fault must not corrupt shared
 *    state or wedge the hardware (its in-flight traffic still drains);
 *  - a victim dying while holding a lock starves the others (a real
 *    liveness property of spin locks: documented, detected by run
 *    limits, never misreported as success);
 *  - minimal-resource configurations (1-entry queues/buffers/TLB) must
 *    still be correct, only slower;
 *  - invalid configurations die loudly at construction.
 */

#include <gtest/gtest.h>

#include "api/cluster.hpp"
#include "api/context.hpp"
#include "api/segment.hpp"

namespace tg {
namespace {

TEST(Failure, KilledThreadLeavesHardwareClean)
{
    ClusterSpec spec = ClusterSpec::star(2);
    Cluster c(spec);
    Segment &seg = c.allocShared("s", 8192, 0);

    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        // Launch a burst of valid traffic, then crash on a wild store.
        for (int i = 0; i < 20; ++i)
            co_await ctx.write(seg.word(i), Word(100 + i));
        co_await ctx.write(0xdead'beef'0000, 1); // kills the thread
        // never reached:
        co_await ctx.write(seg.word(0), 0);
    });
    c.run(100'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
    EXPECT_TRUE(c.anyKilled());

    // The writes issued before the crash still completed; nothing is
    // stuck in the HIB.
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(seg.peek(i), Word(100 + i));
    // Give in-flight acks time to drain, then check conservation.
    c.spawn(0, [&](Ctx &ctx) -> Task<void> {
        co_await ctx.compute(1'000'000);
    });
    c.run(200'000'000'000ULL);
    EXPECT_EQ(c.hibOf(1).outstanding().current(), 0u);
}

TEST(Failure, LockHolderDeathStarvesOthersDetectably)
{
    ClusterSpec spec = ClusterSpec::star(2);
    Cluster c(spec);
    Segment &seg = c.allocShared("s", 8192, 0);

    c.spawn(0, [&](Ctx &ctx) -> Task<void> {
        co_await ctx.lock(seg.word(0));
        co_await ctx.write(0xdead'0000, 1); // dies holding the lock
    });
    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        co_await ctx.compute(1'000'000); // let the victim die first
        co_await ctx.lock(seg.word(0));  // spins forever
        co_await ctx.unlock(seg.word(0));
    });
    c.run(/*limit=*/100'000'000);
    EXPECT_TRUE(c.anyKilled());
    EXPECT_FALSE(c.allDone()); // starvation is visible, not silent
}

TEST(Failure, MinimalResourcesStillCorrect)
{
    ClusterSpec spec = ClusterSpec::star(2);
    spec.config.writeBufferEntries = 1;
    spec.config.hibFifoPackets = 1;
    spec.config.switchQueuePackets = 1;
    spec.config.tlbEntries = 1;
    spec.config.hibBacklogPackets = 1;
    spec.config.counterCacheEntries = 1;
    Cluster c(spec);
    Segment &seg = c.allocShared("s", 8192, 0);
    seg.replicate(1, coherence::ProtocolKind::OwnerCounter);
    // Synchronization variables stay unreplicated (atomics act on the
    // page their VA maps to, as on the real hardware).
    Segment &sync = c.allocShared("sync", 8192, 0);

    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        for (int i = 0; i < 30; ++i)
            co_await ctx.write(seg.word(i % 8), Word(i));
        co_await ctx.fence();
        EXPECT_EQ(co_await ctx.fetchAdd(sync.word(0), 5), 0u);
    });
    c.run(400'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
    EXPECT_FALSE(c.anyKilled());
    EXPECT_EQ(sync.peek(0), 5u);
    EXPECT_EQ(seg.peekCopy(1, 0), seg.peek(0)); // copies coherent
}

TEST(Failure, SlowLinksOnlySlowThingsDown)
{
    ClusterSpec spec = ClusterSpec::star(2);
    spec.config.linkBytesPerTick = 0.001; // 1 MB/s: ~24 us per packet
    Cluster c(spec);
    Segment &seg = c.allocShared("s", 8192, 0);

    Tick read_lat = 0;
    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        const Tick t0 = ctx.now();
        (void)co_await ctx.read(seg.word(0));
        read_lat = ctx.now() - t0;
    });
    c.run(400'000'000'000ULL);
    ASSERT_TRUE(c.allDone());
    EXPECT_GT(read_lat, 40'000u); // two >20 us serializations
}

TEST(FailureDeathTest, InvalidConfigurationsDieLoudly)
{
    ClusterSpec spec = ClusterSpec::star(2);
    spec.config.pageBytes = 1000; // not a power of two
    EXPECT_DEATH({ Cluster c(spec); }, "power of two");

    ClusterSpec spec2 = ClusterSpec::star(2);
    spec2.config.linkBytesPerTick = 0;
    EXPECT_DEATH({ Cluster c(spec2); }, "positive");
}

} // namespace
} // namespace tg

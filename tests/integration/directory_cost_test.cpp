/**
 * @file
 * Tests of the directory sizing model (paper section 3.1: the
 * owner-based protocol "significantly reduces" directory SRAM).
 */

#include <gtest/gtest.h>

#include "hwcost/directory_cost.hpp"

namespace tg {
namespace {

TEST(DirectoryCost, OwnerBasedIsSmallerAtEveryScale)
{
    for (std::uint32_t nodes : {4u, 8u, 16u, 32u, 64u, 128u}) {
        hwcost::DirectorySpec spec;
        spec.nodes = nodes;
        EXPECT_LT(hwcost::ownerBasedDirectoryKbits(spec),
                  hwcost::fullMapDirectoryKbits(spec))
            << "at " << nodes << " nodes";
    }
}

TEST(DirectoryCost, ReductionGrowsWithClusterSize)
{
    hwcost::DirectorySpec small;
    small.nodes = 4;
    hwcost::DirectorySpec large;
    large.nodes = 64;
    const double small_ratio = hwcost::fullMapDirectoryKbits(small) /
                               hwcost::ownerBasedDirectoryKbits(small);
    const double large_ratio = hwcost::fullMapDirectoryKbits(large) /
                               hwcost::ownerBasedDirectoryKbits(large);
    EXPECT_GT(large_ratio, small_ratio);
}

TEST(DirectoryCost, FullMapScalesLinearlyWithNodes)
{
    hwcost::DirectorySpec a;
    a.nodes = 8;
    hwcost::DirectorySpec b;
    b.nodes = 16;
    // Doubling the bit vector roughly doubles the dominant term.
    EXPECT_GT(hwcost::fullMapDirectoryKbits(b),
              1.5 * hwcost::fullMapDirectoryKbits(a));
}

TEST(DirectoryCost, CounterCacheTermIsBounded)
{
    // The non-owner side must not scale with the number of pages beyond
    // the owner-id field: growing the counter cache adds a constant.
    hwcost::DirectorySpec a;
    a.counterCacheEntries = 16;
    hwcost::DirectorySpec b;
    b.counterCacheEntries = 32;
    const double delta = hwcost::ownerBasedDirectoryKbits(b) -
                         hwcost::ownerBasedDirectoryKbits(a);
    EXPECT_NEAR(delta, 16.0 * (48 + 8) / 1024.0, 1e-9);
}

} // namespace
} // namespace tg

/**
 * @file
 * Determinism tests: identical configuration + seed must produce
 * bit-identical simulations (same final clock, same event count, same
 * memory contents) — the property every debugging session and every
 * reported number in EXPERIMENTS.md depends on.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "api/cluster.hpp"
#include "api/context.hpp"
#include "api/measure.hpp"
#include "api/segment.hpp"
#include "workload/chaotic.hpp"
#include "workload/traffic.hpp"

namespace tg {
namespace {

struct Fingerprint
{
    Tick endTime;
    std::uint64_t events;
    std::uint64_t memHash;
    std::uint64_t packets;

    bool
    operator==(const Fingerprint &o) const
    {
        return endTime == o.endTime && events == o.events &&
               memHash == o.memHash && packets == o.packets;
    }
};

Fingerprint
runOnce(std::uint64_t seed, FaultSpec fault = {})
{
    ClusterSpec spec = ClusterSpec::chain(4, 2);
    spec.config.seed = seed;
    spec.config.fault = std::move(fault);
    Cluster c(spec);

    Segment &shared = c.allocShared("s", 8192, 0);
    shared.replicate(1, coherence::ProtocolKind::OwnerCounter);
    shared.replicate(2, coherence::ProtocolKind::OwnerCounter);
    std::vector<Segment *> segs;
    for (NodeId n = 0; n < 4; ++n)
        segs.push_back(&c.allocShared("t" + std::to_string(n), 8192, n));

    workload::ChaoticConfig ccfg;
    ccfg.writes = 30;
    ccfg.words = 12;
    c.spawn(1, workload::chaoticWriter(shared, ccfg));
    c.spawn(2, workload::chaoticWriter(shared, ccfg));

    workload::TrafficConfig tcfg;
    tcfg.ops = 60;
    c.spawn(0, workload::randomTraffic(segs, tcfg));
    c.spawn(3, workload::randomTraffic(segs, tcfg));

    const Tick end = c.run(4'000'000'000'000ULL);

    Fingerprint fp;
    fp.endTime = end;
    fp.events = c.system().events().executed();
    fp.packets = c.network().switchForwarded();
    fp.memHash = 0;
    for (std::size_t w = 0; w < 12; ++w) {
        fp.memHash = fp.memHash * 0x100000001b3ULL ^ shared.peek(w);
        fp.memHash = fp.memHash * 0x100000001b3ULL ^ shared.peekCopy(1, w);
        fp.memHash = fp.memHash * 0x100000001b3ULL ^ shared.peekCopy(2, w);
    }
    return fp;
}

TEST(Determinism, SameSeedSameUniverse)
{
    const Fingerprint a = runOnce(42);
    const Fingerprint b = runOnce(42);
    EXPECT_TRUE(a == b);
    EXPECT_GT(a.events, 0u);
    EXPECT_GT(a.packets, 0u);
}

TEST(Determinism, DifferentSeedDifferentSchedule)
{
    const Fingerprint a = runOnce(42);
    const Fingerprint b = runOnce(43);
    // Different seeds randomize the workloads: something must differ.
    EXPECT_FALSE(a == b);
}

TEST(Determinism, FaultedSameSeedSameUniverse)
{
    // The full reliability machinery — injected corruption, drops,
    // duplicates, retransmissions — must replay bit-identically too.
    FaultSpec f;
    f.bitErrorRate = 1e-3;
    f.dropRate = 1e-3;
    f.duplicateRate = 1e-3;
    const Fingerprint a = runOnce(7, f);
    const Fingerprint b = runOnce(7, f);
    EXPECT_TRUE(a == b);
    EXPECT_GT(a.events, 0u);
    EXPECT_GT(a.packets, 0u);
}

TEST(Determinism, FaultedDifferentSeedDiverges)
{
    FaultSpec f;
    f.dropRate = 5e-3;
    const Fingerprint a = runOnce(7, f);
    const Fingerprint b = runOnce(8, f);
    EXPECT_FALSE(a == b);
}

TEST(Determinism, StatsReportIsStable)
{
    ClusterSpec spec = ClusterSpec::star(2);
    Cluster c(spec);
    Segment &seg = c.allocShared("s", 8192, 0);
    c.spawn(1, [&](Ctx &ctx) -> Task<void> {
        co_await ctx.write(seg.word(0), 1);
        co_await ctx.fence();
        (void)co_await ctx.read(seg.word(0));
    });
    c.run(10'000'000'000ULL);

    std::ostringstream a, b;
    c.statsReport(a);
    c.statsReport(b);
    EXPECT_EQ(a.str(), b.str());
    EXPECT_NE(a.str().find("hib.packets_handled"), std::string::npos);
    EXPECT_NE(a.str().find("tlb.hit_rate"), std::string::npos);
}

} // namespace
} // namespace tg

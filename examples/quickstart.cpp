/**
 * @file
 * Quickstart: a two-workstation Telegraphos cluster.
 *
 * Node 1 performs remote writes and a remote read against a segment
 * homed on node 0, measures their latency the way the paper does
 * (section 3.2), and uses a remote fetch&inc — all launched from user
 * level, with no OS on the fast path.
 */

#include <cstdio>

#include "api/cluster.hpp"
#include "api/context.hpp"
#include "api/measure.hpp"
#include "api/segment.hpp"

int
main()
{
    tg::ClusterSpec spec = tg::ClusterSpec::star(2);

    tg::Cluster cluster(spec);
    tg::Segment &seg = cluster.allocShared("data", 4096, /*owner=*/0);

    cluster.spawn(1, [&](tg::Ctx &ctx) -> tg::Task<void> {
        // Remote write: a plain store, acknowledged as soon as the HIB
        // latches it.
        tg::Stopwatch sw(ctx);
        co_await ctx.write(seg.word(0), 42);
        std::printf("remote write released the CPU after %.2f us\n",
                    sw.elapsedUs());

        // FENCE: wait until the write is globally performed.
        co_await ctx.fence();

        // Remote read: blocking, several microseconds.
        sw.restart();
        const tg::Word v = co_await ctx.read(seg.word(0));
        std::printf("remote read returned %llu after %.2f us\n",
                    (unsigned long long)v, sw.elapsedUs());

        // Remote atomic fetch&inc, launched from user level through a
        // Telegraphos context (paper section 2.2.4).
        const tg::Word old = co_await ctx.fetchAdd(seg.word(1), 1);
        std::printf("fetch&inc returned old value %llu\n",
                    (unsigned long long)old);
        co_return;
    });

    cluster.run();

    std::printf("word0 at home: %llu (expect 42)\n",
                (unsigned long long)seg.peek(0));
    std::printf("word1 at home: %llu (expect 1)\n",
                (unsigned long long)seg.peek(1));
    return seg.peek(0) == 42 && seg.peek(1) == 1 ? 0 : 1;
}

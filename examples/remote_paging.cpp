/**
 * @file
 * Example: using remote memory as a fast backing store (paper section
 * 2.2.6 and reference [21], "Using Remote Memory to avoid Disk
 * Thrashing").
 *
 * An application whose working set exceeds local memory pages either to
 * a 1995-era disk or to another workstation's idle memory via the HIB's
 * non-blocking bulk copy engine.
 */

#include <cstdio>

#include "api/cluster.hpp"
#include "api/context.hpp"
#include "api/measure.hpp"
#include "api/segment.hpp"
#include "workload/remote_paging.hpp"

using namespace tg;

namespace {

struct Outcome
{
    double runtimeUs;
    std::uint64_t misses;
};

Outcome
run(bool remote_memory, double locality)
{
    ClusterSpec spec = ClusterSpec::star(2);
    Cluster cluster(spec);
    // Node 0 donates idle memory; node 1 runs the thrashing app.
    Segment &backing = cluster.allocShared("backing", 24 * 8192, 0);
    Segment &buf = cluster.allocShared("resident", 6 * 8192, 1);

    workload::PagingConfig cfg;
    cfg.pages = 24;
    cfg.residentPages = 6;
    cfg.accesses = 150;
    cfg.locality = locality;
    cfg.useRemoteMemory = remote_memory;
    workload::PagingStats stats;
    cluster.spawn(1, workload::pagingApp(backing, buf, cfg, &stats));
    const Tick end = cluster.run(800'000'000'000'000ULL);
    return Outcome{toUs(end), stats.misses};
}

} // namespace

int
main()
{
    std::printf("remote-memory paging vs disk paging "
                "(24-page working set, 6 resident)\n\n");
    ResultTable table({"locality", "misses", "disk paging (us)",
                       "remote memory (us)", "speedup"});
    for (double locality : {0.5, 0.7, 0.9}) {
        const Outcome disk = run(false, locality);
        const Outcome remote = run(true, locality);
        table.addRow({ResultTable::num(locality, 1),
                      std::to_string(remote.misses),
                      ResultTable::num(disk.runtimeUs, 0),
                      ResultTable::num(remote.runtimeUs, 0),
                      ResultTable::num(disk.runtimeUs / remote.runtimeUs, 1) +
                          "x"});
    }
    table.print();
    std::printf("\n(each miss costs a 12 ms disk service vs a ~0.3 ms "
                "8 KB HIB copy — the effect of reference [21])\n");
    return 0;
}

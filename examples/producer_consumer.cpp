/**
 * @file
 * Example: producer/consumer communication three ways.
 *
 * The same pattern — one node produces a block of data, another consumes
 * it — expressed with the mechanisms of the paper:
 *
 *  1. plain remote writes + FENCE + a flag (message passing style),
 *  2. the eager-update multicast mechanism (the consumer reads a local
 *     receive copy, paper section 2.2.7),
 *  3. lock-protected shared memory (section 2.3.5 discipline).
 *
 * Prints the per-round latency of each style.
 */

#include <cstdio>

#include "api/cluster.hpp"
#include "api/context.hpp"
#include "api/measure.hpp"
#include "api/segment.hpp"

using namespace tg;

namespace {

constexpr int kRounds = 10;
constexpr std::size_t kWords = 32;

double
remoteWriteStyle()
{
    ClusterSpec spec = ClusterSpec::star(2);
    Cluster cluster(spec);
    Segment &data = cluster.allocShared("data", 8192, /*owner=*/1);
    Segment &flag = cluster.allocShared("flag", 8192, /*owner=*/1);

    // Producer on node 0 writes straight into the consumer's memory.
    cluster.spawn(0, [&](Ctx &ctx) -> Task<void> {
        for (int r = 1; r <= kRounds; ++r) {
            for (std::size_t i = 0; i < kWords; ++i)
                co_await ctx.write(data.word(i), Word(r) * 100 + i);
            co_await ctx.fence(); // data before flag (section 2.3.5)
            co_await ctx.write(flag.word(0), Word(r));
        }
        co_await ctx.fence();
    });
    Tick total = 0;
    cluster.spawn(1, [&](Ctx &ctx) -> Task<void> {
        const Tick t0 = ctx.now();
        for (int r = 1; r <= kRounds; ++r) {
            while (co_await ctx.read(flag.word(0)) < Word(r))
                co_await ctx.compute(500);
            Word sum = 0;
            for (std::size_t i = 0; i < kWords; ++i)
                sum += co_await ctx.read(data.word(i)); // local! (owner)
            (void)sum;
        }
        total = ctx.now() - t0;
    });
    cluster.run(100'000'000'000ULL);
    return toUs(total) / kRounds;
}

double
eagerMulticastStyle()
{
    ClusterSpec spec = ClusterSpec::star(2);
    Cluster cluster(spec);
    Segment &data = cluster.allocShared("data", 8192, /*owner=*/0);
    data.eagerTo(1); // map the producer's page out to the consumer
    Segment &flag = cluster.allocShared("flag", 8192, /*owner=*/1);

    cluster.spawn(0, [&](Ctx &ctx) -> Task<void> {
        for (int r = 1; r <= kRounds; ++r) {
            // Local writes; the HIB multicasts them transparently.
            for (std::size_t i = 0; i < kWords; ++i)
                co_await ctx.write(data.word(i), Word(r) * 100 + i);
            co_await ctx.fence();
            co_await ctx.write(flag.word(0), Word(r));
        }
        co_await ctx.fence();
    });
    Tick total = 0;
    cluster.spawn(1, [&](Ctx &ctx) -> Task<void> {
        const Tick t0 = ctx.now();
        for (int r = 1; r <= kRounds; ++r) {
            while (co_await ctx.read(flag.word(0)) < Word(r))
                co_await ctx.compute(500);
            Word sum = 0;
            for (std::size_t i = 0; i < kWords; ++i)
                sum += co_await ctx.read(data.word(i)); // local copy
            (void)sum;
        }
        total = ctx.now() - t0;
    });
    cluster.run(100'000'000'000ULL);
    return toUs(total) / kRounds;
}

double
lockedSharedMemoryStyle()
{
    ClusterSpec spec = ClusterSpec::star(2);
    Cluster cluster(spec);
    Segment &data = cluster.allocShared("data", 8192, /*owner=*/0);
    Segment &sync = cluster.allocShared("sync", 8192, /*owner=*/0);
    // word 0: lock, word 1: round number

    cluster.spawn(0, [&](Ctx &ctx) -> Task<void> {
        for (int r = 1; r <= kRounds; ++r) {
            co_await ctx.lock(sync.word(0));
            for (std::size_t i = 0; i < kWords; ++i)
                co_await ctx.write(data.word(i), Word(r) * 100 + i);
            co_await ctx.write(sync.word(1), Word(r));
            co_await ctx.unlock(sync.word(0)); // embeds the FENCE
        }
    });
    Tick total = 0;
    cluster.spawn(1, [&](Ctx &ctx) -> Task<void> {
        const Tick t0 = ctx.now();
        for (int r = 1; r <= kRounds; ++r) {
            for (;;) {
                co_await ctx.lock(sync.word(0));
                const Word round = co_await ctx.read(sync.word(1));
                if (round >= Word(r))
                    break;
                co_await ctx.unlock(sync.word(0));
                co_await ctx.compute(3000);
            }
            Word sum = 0;
            for (std::size_t i = 0; i < kWords; ++i)
                sum += co_await ctx.read(data.word(i));
            (void)sum;
            co_await ctx.unlock(sync.word(0));
        }
        total = ctx.now() - t0;
    });
    cluster.run(400'000'000'000ULL);
    return toUs(total) / kRounds;
}

} // namespace

int
main()
{
    std::printf("producer/consumer, %d rounds of %zu words\n\n", kRounds,
                kWords);
    ResultTable table({"style", "us per round"});
    table.addRow({"remote writes + FENCE + flag",
                  ResultTable::num(remoteWriteStyle(), 1)});
    table.addRow({"eager-update multicast (2.2.7)",
                  ResultTable::num(eagerMulticastStyle(), 1)});
    table.addRow({"lock-protected shared memory",
                  ResultTable::num(lockedSharedMemoryStyle(), 1)});
    table.print();
    return 0;
}

/**
 * @file
 * Example: a parallel 1-D stencil (SOR-style) across the cluster — the
 * "scientific and engineering applications" of the paper's introduction.
 *
 * Each node owns a block of cells; every iteration reads the
 * neighbours' boundary cells and ends with a cluster-wide barrier built
 * on remote fetch&inc.  Run twice: boundary reads remote (plain
 * Telegraphos) vs replicated neighbour blocks under the owner-counter
 * update protocol.
 */

#include <cstdio>
#include <vector>

#include "api/cluster.hpp"
#include "api/collectives.hpp"
#include "api/context.hpp"
#include "api/measure.hpp"
#include "api/segment.hpp"
#include "workload/stencil.hpp"

using namespace tg;

namespace {

double
runStencil(std::size_t nodes, bool replicate_neighbours)
{
    // Iteration barriers run on the NIC collective engine: each node
    // arms one descriptor per iteration instead of spinning on a remote
    // scratch word.
    ClusterSpec spec =
        ClusterSpec::star(nodes).collectives(CollectiveBackend::Nic);
    Cluster cluster(spec);

    std::vector<Segment *> blocks;
    std::vector<NodeId> members;
    for (NodeId n = 0; n < NodeId(nodes); ++n) {
        blocks.push_back(&cluster.allocShared("block" + std::to_string(n),
                                              8192, n));
        members.push_back(n);
    }
    Communicator &comm = cluster.communicator("comm", members);

    if (replicate_neighbours) {
        // Each node keeps an eagerly-updated copy of its neighbours'
        // blocks: boundary reads become local.
        for (NodeId n = 0; n < NodeId(nodes); ++n) {
            const NodeId left = NodeId((n + nodes - 1) % nodes);
            const NodeId right = NodeId((n + 1) % nodes);
            blocks[n]->replicate(left, coherence::ProtocolKind::OwnerCounter);
            if (right != left)
                blocks[n]->replicate(right,
                                     coherence::ProtocolKind::OwnerCounter);
        }
    }

    workload::StencilConfig cfg;
    cfg.cellsPerNode = 24;
    cfg.iterations = 5;
    for (NodeId n = 0; n < NodeId(nodes); ++n)
        cluster.spawn(n, workload::stencilWorker(blocks, comm, n, cfg));
    const Tick end = cluster.run(8'000'000'000'000ULL);
    if (!cluster.allDone()) {
        std::fprintf(stderr, "stencil did not finish!\n");
        return -1;
    }
    return toUs(end);
}

} // namespace

int
main()
{
    std::printf("parallel 1-D stencil, 24 cells/node, 5 iterations\n\n");
    ResultTable table({"nodes", "remote boundaries (us)",
                       "replicated boundaries (us)"});
    for (std::size_t nodes : {2u, 4u, 6u}) {
        table.addRow({std::to_string(nodes),
                      ResultTable::num(runStencil(nodes, false), 0),
                      ResultTable::num(runStencil(nodes, true), 0)});
    }
    table.print();
    std::printf("\n(the update protocol turns the boundary reads into "
                "local accesses at the cost of reflected write "
                "traffic)\n");
    return 0;
}

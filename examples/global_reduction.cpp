/**
 * @file
 * Example: a distributed dot product with the collectives library.
 *
 * Each node holds a slice of two vectors in private (cacheable) memory,
 * computes its partial dot product locally, and combines the partials
 * with an all-reduce built on remote fetch&add + eager-update broadcast
 * — the kind of kernel the paper's introduction targets ("high
 * performance scientific computing").
 */

#include <cstdio>

#include "api/cluster.hpp"
#include "api/collectives.hpp"
#include "api/context.hpp"
#include "api/measure.hpp"

using namespace tg;

int
main()
{
    constexpr std::size_t kNodes = 4;
    constexpr std::size_t kSlice = 256; // elements per node

    ClusterSpec spec = ClusterSpec::star(kNodes);
    Cluster cluster(spec);
    Communicator comm(cluster, "comm", {0, 1, 2, 3});

    std::vector<Word> results(kNodes, 0);
    std::vector<Tick> done(kNodes, 0);

    for (NodeId n = 0; n < kNodes; ++n) {
        const VAddr x = cluster.allocPrivate(n, kSlice * 8);
        const VAddr y = cluster.allocPrivate(n, kSlice * 8);
        cluster.spawn(n, [&, n, x, y](Ctx &ctx) -> Task<void> {
            // Fill the local slices: x[i] = i+1, y[i] = 2 (so the global
            // dot product has a closed form we can verify).
            for (std::size_t i = 0; i < kSlice; ++i) {
                const Word gi = Word(n) * kSlice + i;
                co_await ctx.write(x + i * 8, gi + 1);
                co_await ctx.write(y + i * 8, 2);
            }
            co_await comm.barrier(ctx);

            // Local partial: all cacheable accesses.
            Word partial = 0;
            for (std::size_t i = 0; i < kSlice; ++i) {
                const Word xv = co_await ctx.read(x + i * 8);
                const Word yv = co_await ctx.read(y + i * 8);
                partial += xv * yv;
                co_await ctx.compute(20); // multiply-accumulate
            }

            // Global combine: one all-reduce.
            results[n] = co_await comm.allReduceSum(ctx, partial);
            done[n] = ctx.now();
        });
    }
    cluster.run(8'000'000'000'000ULL);

    const Word total_elems = kNodes * kSlice;
    const Word expected = total_elems * (total_elems + 1); // 2*sum(i+1)
    std::printf("distributed dot product over %zu nodes x %zu elements\n",
                kNodes, kSlice);
    for (NodeId n = 0; n < kNodes; ++n)
        std::printf("  node %u: result %llu at %.0f us\n", unsigned(n),
                    (unsigned long long)results[n], toUs(done[n]));
    std::printf("expected %llu -> %s\n", (unsigned long long)expected,
                results[0] == expected ? "OK" : "MISMATCH");

    for (NodeId n = 0; n < kNodes; ++n) {
        if (results[n] != expected)
            return 1;
    }
    return 0;
}

/**
 * @file
 * Example: a distributed dot product with the collectives library.
 *
 * Each node holds a slice of two vectors in private (cacheable) memory,
 * computes its partial dot product locally, and combines the partials
 * with one all-reduce.  The same program runs on both collective
 * backends (ClusterSpec::collectives): host-driven software trees over
 * remote fetch&add + eager-update broadcast, then the NIC-offloaded
 * engine where the host writes one descriptor and blocks on a single
 * register read while the combine tree runs NIC-to-NIC.
 */

#include <cstdio>

#include "api/cluster.hpp"
#include "api/collectives.hpp"
#include "api/context.hpp"
#include "api/measure.hpp"

using namespace tg;

namespace {

constexpr std::size_t kNodes = 4;
constexpr std::size_t kSlice = 256; // elements per node

/** Run the dot product on @p backend; returns the finish time in us,
 *  or a negative value on a wrong result. */
double
runDotProduct(CollectiveBackend backend)
{
    ClusterSpec spec = ClusterSpec::star(kNodes).collectives(backend);
    Cluster cluster(spec);
    Communicator &comm = cluster.communicator("comm", {0, 1, 2, 3});

    std::vector<Word> results(kNodes, 0);
    bool all_ok = true;

    for (NodeId n = 0; n < kNodes; ++n) {
        const VAddr x = cluster.allocPrivate(n, kSlice * 8);
        const VAddr y = cluster.allocPrivate(n, kSlice * 8);
        cluster.spawn(n, [&, n, x, y](Ctx &ctx) -> Task<void> {
            // Fill the local slices: x[i] = i+1, y[i] = 2 (so the global
            // dot product has a closed form we can verify).
            for (std::size_t i = 0; i < kSlice; ++i) {
                const Word gi = Word(n) * kSlice + i;
                co_await ctx.write(x + i * 8, gi + 1);
                co_await ctx.write(y + i * 8, 2);
            }
            co_await comm.barrier(ctx);

            // Local partial: all cacheable accesses.
            Word partial = 0;
            for (std::size_t i = 0; i < kSlice; ++i) {
                const Word xv = co_await ctx.read(x + i * 8);
                const Word yv = co_await ctx.read(y + i * 8);
                partial += xv * yv;
                co_await ctx.compute(20); // multiply-accumulate
            }

            // Global combine: one all-reduce, delivery-checked.
            const Result<Word> sum =
                co_await comm.allReduceSum(ctx, partial);
            if (!sum.ok())
                all_ok = false;
            results[n] = sum;
        });
    }
    const Tick end = cluster.run(8'000'000'000'000ULL);

    const Word total_elems = kNodes * kSlice;
    const Word expected = total_elems * (total_elems + 1); // 2*sum(i+1)
    for (NodeId n = 0; n < kNodes; ++n) {
        if (results[n] != expected)
            all_ok = false;
    }
    return all_ok ? toUs(end) : -1.0;
}

} // namespace

int
main()
{
    std::printf("distributed dot product over %zu nodes x %zu elements\n\n",
                kNodes, kSlice);

    const double host_us = runDotProduct(CollectiveBackend::Host);
    const double nic_us = runDotProduct(CollectiveBackend::Nic);

    ResultTable table({"backend", "finish (us)"});
    table.addRow({"host", ResultTable::num(host_us, 0)});
    table.addRow({"nic", ResultTable::num(nic_us, 0)});
    table.print();
    std::printf("\n(same program, same results; the NIC backend replaces "
                "the CPU's poll loops with one descriptor + one blocking "
                "register read per collective)\n");

    return (host_us < 0 || nic_us < 0) ? 1 : 0;
}

/**
 * @file
 * Example: the page access counters as a profiling tool.
 *
 * "By setting the counters to very large values and periodically
 * reading them, the system can monitor the page access, find hot-spots,
 * display statistics, and provide useful information for profiling,
 * performance monitoring and visualization tools." (paper section 2.2.6)
 *
 * An application touches remote pages with a skewed distribution; the
 * "profiler" arms the counters at 60000 and reads them back afterwards
 * to rank the pages — then prints the cluster-wide statistics report.
 */

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "api/cluster.hpp"
#include "api/context.hpp"
#include "api/segment.hpp"

using namespace tg;

int
main()
{
    constexpr std::size_t kPages = 6;
    constexpr std::uint16_t kProfile = 60000; // "very large values"

    ClusterSpec spec = ClusterSpec::star(2);
    Cluster cluster(spec);

    std::vector<Segment *> pages;
    for (std::size_t p = 0; p < kPages; ++p) {
        pages.push_back(
            &cluster.allocShared("page" + std::to_string(p), 8192, 0));
        pages.back()->armCounters(1, kProfile, kProfile);
    }

    // Skewed access pattern: page p gets ~2x the traffic of page p+1.
    cluster.spawn(1, [&](Ctx &ctx) -> Task<void> {
        int weight = 1 << kPages;
        for (std::size_t p = 0; p < kPages; ++p) {
            for (int i = 0; i < weight; ++i) {
                if (i % 3 == 0)
                    co_await ctx.write(pages[p]->word(i % 64), Word(i));
                else
                    (void)co_await ctx.read(pages[p]->word(i % 64));
            }
            weight /= 2;
        }
        co_await ctx.fence();
    });
    cluster.run(400'000'000'000ULL);

    // The "profiler": read the counters back and rank pages by traffic.
    struct Row
    {
        std::size_t page;
        unsigned reads, writes;
    };
    std::vector<Row> rows;
    for (std::size_t p = 0; p < kPages; ++p) {
        const auto ctr =
            cluster.hibOf(1).pageCounters().get(pages[p]->homePage(0));
        rows.push_back(Row{p, unsigned(kProfile - ctr.reads),
                           unsigned(kProfile - ctr.writes)});
    }
    std::sort(rows.begin(), rows.end(), [](const Row &a, const Row &b) {
        return a.reads + a.writes > b.reads + b.writes;
    });

    std::printf("remote page traffic as seen by the HIB counters "
                "(hot first):\n");
    std::printf("%8s %8s %8s %8s\n", "page", "reads", "writes", "total");
    for (const Row &r : rows)
        std::printf("%8zu %8u %8u %8u\n", r.page, r.reads, r.writes,
                    r.reads + r.writes);

    std::printf("\n");
    cluster.statsReport(std::cout);
    return 0;
}

# Empty dependencies file for parallel_stencil.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/parallel_stencil.dir/parallel_stencil.cpp.o"
  "CMakeFiles/parallel_stencil.dir/parallel_stencil.cpp.o.d"
  "parallel_stencil"
  "parallel_stencil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

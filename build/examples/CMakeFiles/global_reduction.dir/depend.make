# Empty dependencies file for global_reduction.
# This may be replaced when dependencies are built.

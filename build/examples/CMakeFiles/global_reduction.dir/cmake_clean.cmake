file(REMOVE_RECURSE
  "CMakeFiles/global_reduction.dir/global_reduction.cpp.o"
  "CMakeFiles/global_reduction.dir/global_reduction.cpp.o.d"
  "global_reduction"
  "global_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/global_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for remote_paging.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/remote_paging.dir/remote_paging.cpp.o"
  "CMakeFiles/remote_paging.dir/remote_paging.cpp.o.d"
  "remote_paging"
  "remote_paging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remote_paging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

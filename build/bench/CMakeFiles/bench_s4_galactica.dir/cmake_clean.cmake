file(REMOVE_RECURSE
  "CMakeFiles/bench_s4_galactica.dir/bench_s4_galactica.cpp.o"
  "CMakeFiles/bench_s4_galactica.dir/bench_s4_galactica.cpp.o.d"
  "bench_s4_galactica"
  "bench_s4_galactica.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_s4_galactica.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_s4_galactica.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_a5_network.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_a1_special_ops.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_a1_special_ops.dir/bench_a1_special_ops.cpp.o"
  "CMakeFiles/bench_a1_special_ops.dir/bench_a1_special_ops.cpp.o.d"
  "bench_a1_special_ops"
  "bench_a1_special_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a1_special_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_p2_write_batch.dir/bench_p2_write_batch.cpp.o"
  "CMakeFiles/bench_p2_write_batch.dir/bench_p2_write_batch.cpp.o.d"
  "bench_p2_write_batch"
  "bench_p2_write_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_p2_write_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

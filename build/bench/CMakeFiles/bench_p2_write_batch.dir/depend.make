# Empty dependencies file for bench_p2_write_batch.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_a2_access_counters.dir/bench_a2_access_counters.cpp.o"
  "CMakeFiles/bench_a2_access_counters.dir/bench_a2_access_counters.cpp.o.d"
  "bench_a2_access_counters"
  "bench_a2_access_counters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_access_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

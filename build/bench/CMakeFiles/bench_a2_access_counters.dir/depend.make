# Empty dependencies file for bench_a2_access_counters.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_gatecount.dir/bench_table1_gatecount.cpp.o"
  "CMakeFiles/bench_table1_gatecount.dir/bench_table1_gatecount.cpp.o.d"
  "bench_table1_gatecount"
  "bench_table1_gatecount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_gatecount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_table1_gatecount.
# This may be replaced when dependencies are built.

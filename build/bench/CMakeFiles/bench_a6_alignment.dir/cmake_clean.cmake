file(REMOVE_RECURSE
  "CMakeFiles/bench_a6_alignment.dir/bench_a6_alignment.cpp.o"
  "CMakeFiles/bench_a6_alignment.dir/bench_a6_alignment.cpp.o.d"
  "bench_a6_alignment"
  "bench_a6_alignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a6_alignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

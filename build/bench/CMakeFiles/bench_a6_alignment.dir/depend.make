# Empty dependencies file for bench_a6_alignment.
# This may be replaced when dependencies are built.

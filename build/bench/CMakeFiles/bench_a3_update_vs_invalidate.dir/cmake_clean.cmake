file(REMOVE_RECURSE
  "CMakeFiles/bench_a3_update_vs_invalidate.dir/bench_a3_update_vs_invalidate.cpp.o"
  "CMakeFiles/bench_a3_update_vs_invalidate.dir/bench_a3_update_vs_invalidate.cpp.o.d"
  "bench_a3_update_vs_invalidate"
  "bench_a3_update_vs_invalidate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a3_update_vs_invalidate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

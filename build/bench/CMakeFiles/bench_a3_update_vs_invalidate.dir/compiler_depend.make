# Empty compiler generated dependencies file for bench_a3_update_vs_invalidate.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_s3_fence.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_s3_fence.dir/bench_s3_fence.cpp.o"
  "CMakeFiles/bench_s3_fence.dir/bench_s3_fence.cpp.o.d"
  "bench_s3_fence"
  "bench_s3_fence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_s3_fence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_p1_basic_latency.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_p1_basic_latency.dir/bench_p1_basic_latency.cpp.o"
  "CMakeFiles/bench_p1_basic_latency.dir/bench_p1_basic_latency.cpp.o.d"
  "bench_p1_basic_latency"
  "bench_p1_basic_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_p1_basic_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

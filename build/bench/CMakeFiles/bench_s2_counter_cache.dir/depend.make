# Empty dependencies file for bench_s2_counter_cache.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_s2_counter_cache.dir/bench_s2_counter_cache.cpp.o"
  "CMakeFiles/bench_s2_counter_cache.dir/bench_s2_counter_cache.cpp.o.d"
  "bench_s2_counter_cache"
  "bench_s2_counter_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_s2_counter_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

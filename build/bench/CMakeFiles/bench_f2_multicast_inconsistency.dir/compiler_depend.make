# Empty compiler generated dependencies file for bench_f2_multicast_inconsistency.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_f2_multicast_inconsistency.dir/bench_f2_multicast_inconsistency.cpp.o"
  "CMakeFiles/bench_f2_multicast_inconsistency.dir/bench_f2_multicast_inconsistency.cpp.o.d"
  "bench_f2_multicast_inconsistency"
  "bench_f2_multicast_inconsistency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f2_multicast_inconsistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_a7_messaging.
# This may be replaced when dependencies are built.

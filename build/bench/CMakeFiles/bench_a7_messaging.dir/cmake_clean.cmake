file(REMOVE_RECURSE
  "CMakeFiles/bench_a7_messaging.dir/bench_a7_messaging.cpp.o"
  "CMakeFiles/bench_a7_messaging.dir/bench_a7_messaging.cpp.o.d"
  "bench_a7_messaging"
  "bench_a7_messaging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a7_messaging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

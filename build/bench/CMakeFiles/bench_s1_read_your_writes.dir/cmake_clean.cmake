file(REMOVE_RECURSE
  "CMakeFiles/bench_s1_read_your_writes.dir/bench_s1_read_your_writes.cpp.o"
  "CMakeFiles/bench_s1_read_your_writes.dir/bench_s1_read_your_writes.cpp.o.d"
  "bench_s1_read_your_writes"
  "bench_s1_read_your_writes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_s1_read_your_writes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

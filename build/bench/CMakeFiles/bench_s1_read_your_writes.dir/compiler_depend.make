# Empty compiler generated dependencies file for bench_s1_read_your_writes.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/api/cluster.cpp" "src/CMakeFiles/telegraphos.dir/api/cluster.cpp.o" "gcc" "src/CMakeFiles/telegraphos.dir/api/cluster.cpp.o.d"
  "/root/repo/src/api/collectives.cpp" "src/CMakeFiles/telegraphos.dir/api/collectives.cpp.o" "gcc" "src/CMakeFiles/telegraphos.dir/api/collectives.cpp.o.d"
  "/root/repo/src/api/context.cpp" "src/CMakeFiles/telegraphos.dir/api/context.cpp.o" "gcc" "src/CMakeFiles/telegraphos.dir/api/context.cpp.o.d"
  "/root/repo/src/api/measure.cpp" "src/CMakeFiles/telegraphos.dir/api/measure.cpp.o" "gcc" "src/CMakeFiles/telegraphos.dir/api/measure.cpp.o.d"
  "/root/repo/src/api/msg.cpp" "src/CMakeFiles/telegraphos.dir/api/msg.cpp.o" "gcc" "src/CMakeFiles/telegraphos.dir/api/msg.cpp.o.d"
  "/root/repo/src/api/segment.cpp" "src/CMakeFiles/telegraphos.dir/api/segment.cpp.o" "gcc" "src/CMakeFiles/telegraphos.dir/api/segment.cpp.o.d"
  "/root/repo/src/api/sync.cpp" "src/CMakeFiles/telegraphos.dir/api/sync.cpp.o" "gcc" "src/CMakeFiles/telegraphos.dir/api/sync.cpp.o.d"
  "/root/repo/src/baseline/sockets.cpp" "src/CMakeFiles/telegraphos.dir/baseline/sockets.cpp.o" "gcc" "src/CMakeFiles/telegraphos.dir/baseline/sockets.cpp.o.d"
  "/root/repo/src/baseline/vsm.cpp" "src/CMakeFiles/telegraphos.dir/baseline/vsm.cpp.o" "gcc" "src/CMakeFiles/telegraphos.dir/baseline/vsm.cpp.o.d"
  "/root/repo/src/coherence/directory.cpp" "src/CMakeFiles/telegraphos.dir/coherence/directory.cpp.o" "gcc" "src/CMakeFiles/telegraphos.dir/coherence/directory.cpp.o.d"
  "/root/repo/src/coherence/galactica_ring.cpp" "src/CMakeFiles/telegraphos.dir/coherence/galactica_ring.cpp.o" "gcc" "src/CMakeFiles/telegraphos.dir/coherence/galactica_ring.cpp.o.d"
  "/root/repo/src/coherence/invalidate.cpp" "src/CMakeFiles/telegraphos.dir/coherence/invalidate.cpp.o" "gcc" "src/CMakeFiles/telegraphos.dir/coherence/invalidate.cpp.o.d"
  "/root/repo/src/coherence/naive_multicast.cpp" "src/CMakeFiles/telegraphos.dir/coherence/naive_multicast.cpp.o" "gcc" "src/CMakeFiles/telegraphos.dir/coherence/naive_multicast.cpp.o.d"
  "/root/repo/src/coherence/owner_counter.cpp" "src/CMakeFiles/telegraphos.dir/coherence/owner_counter.cpp.o" "gcc" "src/CMakeFiles/telegraphos.dir/coherence/owner_counter.cpp.o.d"
  "/root/repo/src/coherence/protocol.cpp" "src/CMakeFiles/telegraphos.dir/coherence/protocol.cpp.o" "gcc" "src/CMakeFiles/telegraphos.dir/coherence/protocol.cpp.o.d"
  "/root/repo/src/hib/atomic_unit.cpp" "src/CMakeFiles/telegraphos.dir/hib/atomic_unit.cpp.o" "gcc" "src/CMakeFiles/telegraphos.dir/hib/atomic_unit.cpp.o.d"
  "/root/repo/src/hib/counter_cache.cpp" "src/CMakeFiles/telegraphos.dir/hib/counter_cache.cpp.o" "gcc" "src/CMakeFiles/telegraphos.dir/hib/counter_cache.cpp.o.d"
  "/root/repo/src/hib/hib.cpp" "src/CMakeFiles/telegraphos.dir/hib/hib.cpp.o" "gcc" "src/CMakeFiles/telegraphos.dir/hib/hib.cpp.o.d"
  "/root/repo/src/hib/multicast_unit.cpp" "src/CMakeFiles/telegraphos.dir/hib/multicast_unit.cpp.o" "gcc" "src/CMakeFiles/telegraphos.dir/hib/multicast_unit.cpp.o.d"
  "/root/repo/src/hib/outstanding.cpp" "src/CMakeFiles/telegraphos.dir/hib/outstanding.cpp.o" "gcc" "src/CMakeFiles/telegraphos.dir/hib/outstanding.cpp.o.d"
  "/root/repo/src/hib/page_counters.cpp" "src/CMakeFiles/telegraphos.dir/hib/page_counters.cpp.o" "gcc" "src/CMakeFiles/telegraphos.dir/hib/page_counters.cpp.o.d"
  "/root/repo/src/hib/special_ops.cpp" "src/CMakeFiles/telegraphos.dir/hib/special_ops.cpp.o" "gcc" "src/CMakeFiles/telegraphos.dir/hib/special_ops.cpp.o.d"
  "/root/repo/src/hwcost/directory_cost.cpp" "src/CMakeFiles/telegraphos.dir/hwcost/directory_cost.cpp.o" "gcc" "src/CMakeFiles/telegraphos.dir/hwcost/directory_cost.cpp.o.d"
  "/root/repo/src/hwcost/gate_count.cpp" "src/CMakeFiles/telegraphos.dir/hwcost/gate_count.cpp.o" "gcc" "src/CMakeFiles/telegraphos.dir/hwcost/gate_count.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/CMakeFiles/telegraphos.dir/net/link.cpp.o" "gcc" "src/CMakeFiles/telegraphos.dir/net/link.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/CMakeFiles/telegraphos.dir/net/network.cpp.o" "gcc" "src/CMakeFiles/telegraphos.dir/net/network.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "src/CMakeFiles/telegraphos.dir/net/packet.cpp.o" "gcc" "src/CMakeFiles/telegraphos.dir/net/packet.cpp.o.d"
  "/root/repo/src/net/switch.cpp" "src/CMakeFiles/telegraphos.dir/net/switch.cpp.o" "gcc" "src/CMakeFiles/telegraphos.dir/net/switch.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/CMakeFiles/telegraphos.dir/net/topology.cpp.o" "gcc" "src/CMakeFiles/telegraphos.dir/net/topology.cpp.o.d"
  "/root/repo/src/node/address.cpp" "src/CMakeFiles/telegraphos.dir/node/address.cpp.o" "gcc" "src/CMakeFiles/telegraphos.dir/node/address.cpp.o.d"
  "/root/repo/src/node/cache.cpp" "src/CMakeFiles/telegraphos.dir/node/cache.cpp.o" "gcc" "src/CMakeFiles/telegraphos.dir/node/cache.cpp.o.d"
  "/root/repo/src/node/cpu.cpp" "src/CMakeFiles/telegraphos.dir/node/cpu.cpp.o" "gcc" "src/CMakeFiles/telegraphos.dir/node/cpu.cpp.o.d"
  "/root/repo/src/node/main_memory.cpp" "src/CMakeFiles/telegraphos.dir/node/main_memory.cpp.o" "gcc" "src/CMakeFiles/telegraphos.dir/node/main_memory.cpp.o.d"
  "/root/repo/src/node/mmu.cpp" "src/CMakeFiles/telegraphos.dir/node/mmu.cpp.o" "gcc" "src/CMakeFiles/telegraphos.dir/node/mmu.cpp.o.d"
  "/root/repo/src/node/turbochannel.cpp" "src/CMakeFiles/telegraphos.dir/node/turbochannel.cpp.o" "gcc" "src/CMakeFiles/telegraphos.dir/node/turbochannel.cpp.o.d"
  "/root/repo/src/node/workstation.cpp" "src/CMakeFiles/telegraphos.dir/node/workstation.cpp.o" "gcc" "src/CMakeFiles/telegraphos.dir/node/workstation.cpp.o.d"
  "/root/repo/src/os/os_kernel.cpp" "src/CMakeFiles/telegraphos.dir/os/os_kernel.cpp.o" "gcc" "src/CMakeFiles/telegraphos.dir/os/os_kernel.cpp.o.d"
  "/root/repo/src/os/replication_policy.cpp" "src/CMakeFiles/telegraphos.dir/os/replication_policy.cpp.o" "gcc" "src/CMakeFiles/telegraphos.dir/os/replication_policy.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/telegraphos.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/telegraphos.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/log.cpp" "src/CMakeFiles/telegraphos.dir/sim/log.cpp.o" "gcc" "src/CMakeFiles/telegraphos.dir/sim/log.cpp.o.d"
  "/root/repo/src/sim/random.cpp" "src/CMakeFiles/telegraphos.dir/sim/random.cpp.o" "gcc" "src/CMakeFiles/telegraphos.dir/sim/random.cpp.o.d"
  "/root/repo/src/sim/sim_object.cpp" "src/CMakeFiles/telegraphos.dir/sim/sim_object.cpp.o" "gcc" "src/CMakeFiles/telegraphos.dir/sim/sim_object.cpp.o.d"
  "/root/repo/src/sim/stats.cpp" "src/CMakeFiles/telegraphos.dir/sim/stats.cpp.o" "gcc" "src/CMakeFiles/telegraphos.dir/sim/stats.cpp.o.d"
  "/root/repo/src/sim/system.cpp" "src/CMakeFiles/telegraphos.dir/sim/system.cpp.o" "gcc" "src/CMakeFiles/telegraphos.dir/sim/system.cpp.o.d"
  "/root/repo/src/workload/chaotic.cpp" "src/CMakeFiles/telegraphos.dir/workload/chaotic.cpp.o" "gcc" "src/CMakeFiles/telegraphos.dir/workload/chaotic.cpp.o.d"
  "/root/repo/src/workload/hotspot.cpp" "src/CMakeFiles/telegraphos.dir/workload/hotspot.cpp.o" "gcc" "src/CMakeFiles/telegraphos.dir/workload/hotspot.cpp.o.d"
  "/root/repo/src/workload/producer_consumer.cpp" "src/CMakeFiles/telegraphos.dir/workload/producer_consumer.cpp.o" "gcc" "src/CMakeFiles/telegraphos.dir/workload/producer_consumer.cpp.o.d"
  "/root/repo/src/workload/remote_paging.cpp" "src/CMakeFiles/telegraphos.dir/workload/remote_paging.cpp.o" "gcc" "src/CMakeFiles/telegraphos.dir/workload/remote_paging.cpp.o.d"
  "/root/repo/src/workload/stencil.cpp" "src/CMakeFiles/telegraphos.dir/workload/stencil.cpp.o" "gcc" "src/CMakeFiles/telegraphos.dir/workload/stencil.cpp.o.d"
  "/root/repo/src/workload/trace_replay.cpp" "src/CMakeFiles/telegraphos.dir/workload/trace_replay.cpp.o" "gcc" "src/CMakeFiles/telegraphos.dir/workload/trace_replay.cpp.o.d"
  "/root/repo/src/workload/traffic.cpp" "src/CMakeFiles/telegraphos.dir/workload/traffic.cpp.o" "gcc" "src/CMakeFiles/telegraphos.dir/workload/traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

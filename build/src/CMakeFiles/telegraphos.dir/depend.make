# Empty dependencies file for telegraphos.
# This may be replaced when dependencies are built.

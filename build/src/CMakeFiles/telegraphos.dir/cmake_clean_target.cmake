file(REMOVE_RECURSE
  "libtelegraphos.a"
)

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/integration_tests[1]_include.cmake")
include("/root/repo/build/tests/workload_tests[1]_include.cmake")
include("/root/repo/build/tests/api_tests[1]_include.cmake")
include("/root/repo/build/tests/os_tests[1]_include.cmake")
include("/root/repo/build/tests/baseline_tests[1]_include.cmake")
include("/root/repo/build/tests/sim_tests[1]_include.cmake")
include("/root/repo/build/tests/node_tests[1]_include.cmake")
include("/root/repo/build/tests/hib_tests[1]_include.cmake")
include("/root/repo/build/tests/net_tests[1]_include.cmake")
include("/root/repo/build/tests/coherence_tests[1]_include.cmake")

# Empty dependencies file for coherence_tests.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/coherence_tests.dir/coherence/galactica_test.cpp.o"
  "CMakeFiles/coherence_tests.dir/coherence/galactica_test.cpp.o.d"
  "CMakeFiles/coherence_tests.dir/coherence/invalidate_test.cpp.o"
  "CMakeFiles/coherence_tests.dir/coherence/invalidate_test.cpp.o.d"
  "CMakeFiles/coherence_tests.dir/coherence/naive_multicast_test.cpp.o"
  "CMakeFiles/coherence_tests.dir/coherence/naive_multicast_test.cpp.o.d"
  "CMakeFiles/coherence_tests.dir/coherence/owner_counter_test.cpp.o"
  "CMakeFiles/coherence_tests.dir/coherence/owner_counter_test.cpp.o.d"
  "coherence_tests"
  "coherence_tests.pdb"
  "coherence_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coherence_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

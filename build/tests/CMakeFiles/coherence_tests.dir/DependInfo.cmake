
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/coherence/galactica_test.cpp" "tests/CMakeFiles/coherence_tests.dir/coherence/galactica_test.cpp.o" "gcc" "tests/CMakeFiles/coherence_tests.dir/coherence/galactica_test.cpp.o.d"
  "/root/repo/tests/coherence/invalidate_test.cpp" "tests/CMakeFiles/coherence_tests.dir/coherence/invalidate_test.cpp.o" "gcc" "tests/CMakeFiles/coherence_tests.dir/coherence/invalidate_test.cpp.o.d"
  "/root/repo/tests/coherence/naive_multicast_test.cpp" "tests/CMakeFiles/coherence_tests.dir/coherence/naive_multicast_test.cpp.o" "gcc" "tests/CMakeFiles/coherence_tests.dir/coherence/naive_multicast_test.cpp.o.d"
  "/root/repo/tests/coherence/owner_counter_test.cpp" "tests/CMakeFiles/coherence_tests.dir/coherence/owner_counter_test.cpp.o" "gcc" "tests/CMakeFiles/coherence_tests.dir/coherence/owner_counter_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/telegraphos.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/api/cluster_test.cpp" "tests/CMakeFiles/api_tests.dir/api/cluster_test.cpp.o" "gcc" "tests/CMakeFiles/api_tests.dir/api/cluster_test.cpp.o.d"
  "/root/repo/tests/api/collectives_test.cpp" "tests/CMakeFiles/api_tests.dir/api/collectives_test.cpp.o" "gcc" "tests/CMakeFiles/api_tests.dir/api/collectives_test.cpp.o.d"
  "/root/repo/tests/api/isolation_test.cpp" "tests/CMakeFiles/api_tests.dir/api/isolation_test.cpp.o" "gcc" "tests/CMakeFiles/api_tests.dir/api/isolation_test.cpp.o.d"
  "/root/repo/tests/api/latency_sweep_test.cpp" "tests/CMakeFiles/api_tests.dir/api/latency_sweep_test.cpp.o" "gcc" "tests/CMakeFiles/api_tests.dir/api/latency_sweep_test.cpp.o.d"
  "/root/repo/tests/api/measure_test.cpp" "tests/CMakeFiles/api_tests.dir/api/measure_test.cpp.o" "gcc" "tests/CMakeFiles/api_tests.dir/api/measure_test.cpp.o.d"
  "/root/repo/tests/api/msg_test.cpp" "tests/CMakeFiles/api_tests.dir/api/msg_test.cpp.o" "gcc" "tests/CMakeFiles/api_tests.dir/api/msg_test.cpp.o.d"
  "/root/repo/tests/api/segment_test.cpp" "tests/CMakeFiles/api_tests.dir/api/segment_test.cpp.o" "gcc" "tests/CMakeFiles/api_tests.dir/api/segment_test.cpp.o.d"
  "/root/repo/tests/api/sync_test.cpp" "tests/CMakeFiles/api_tests.dir/api/sync_test.cpp.o" "gcc" "tests/CMakeFiles/api_tests.dir/api/sync_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/telegraphos.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/api_tests.dir/api/cluster_test.cpp.o"
  "CMakeFiles/api_tests.dir/api/cluster_test.cpp.o.d"
  "CMakeFiles/api_tests.dir/api/collectives_test.cpp.o"
  "CMakeFiles/api_tests.dir/api/collectives_test.cpp.o.d"
  "CMakeFiles/api_tests.dir/api/isolation_test.cpp.o"
  "CMakeFiles/api_tests.dir/api/isolation_test.cpp.o.d"
  "CMakeFiles/api_tests.dir/api/latency_sweep_test.cpp.o"
  "CMakeFiles/api_tests.dir/api/latency_sweep_test.cpp.o.d"
  "CMakeFiles/api_tests.dir/api/measure_test.cpp.o"
  "CMakeFiles/api_tests.dir/api/measure_test.cpp.o.d"
  "CMakeFiles/api_tests.dir/api/msg_test.cpp.o"
  "CMakeFiles/api_tests.dir/api/msg_test.cpp.o.d"
  "CMakeFiles/api_tests.dir/api/segment_test.cpp.o"
  "CMakeFiles/api_tests.dir/api/segment_test.cpp.o.d"
  "CMakeFiles/api_tests.dir/api/sync_test.cpp.o"
  "CMakeFiles/api_tests.dir/api/sync_test.cpp.o.d"
  "api_tests"
  "api_tests.pdb"
  "api_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/api_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

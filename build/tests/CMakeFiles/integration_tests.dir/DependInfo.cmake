
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/determinism_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/determinism_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/determinism_test.cpp.o.d"
  "/root/repo/tests/integration/directory_cost_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/directory_cost_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/directory_cost_test.cpp.o.d"
  "/root/repo/tests/integration/end_to_end_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/end_to_end_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/end_to_end_test.cpp.o.d"
  "/root/repo/tests/integration/failure_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/failure_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/failure_test.cpp.o.d"
  "/root/repo/tests/integration/hwcost_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/hwcost_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/hwcost_test.cpp.o.d"
  "/root/repo/tests/integration/property_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/property_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/property_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/telegraphos.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

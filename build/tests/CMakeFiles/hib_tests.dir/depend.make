# Empty dependencies file for hib_tests.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/hib_tests.dir/hib/remote_ops_test.cpp.o"
  "CMakeFiles/hib_tests.dir/hib/remote_ops_test.cpp.o.d"
  "CMakeFiles/hib_tests.dir/hib/special_ops_test.cpp.o"
  "CMakeFiles/hib_tests.dir/hib/special_ops_test.cpp.o.d"
  "CMakeFiles/hib_tests.dir/hib/units_test.cpp.o"
  "CMakeFiles/hib_tests.dir/hib/units_test.cpp.o.d"
  "hib_tests"
  "hib_tests.pdb"
  "hib_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hib_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

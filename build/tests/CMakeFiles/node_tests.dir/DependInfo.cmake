
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/node/address_test.cpp" "tests/CMakeFiles/node_tests.dir/node/address_test.cpp.o" "gcc" "tests/CMakeFiles/node_tests.dir/node/address_test.cpp.o.d"
  "/root/repo/tests/node/cache_test.cpp" "tests/CMakeFiles/node_tests.dir/node/cache_test.cpp.o" "gcc" "tests/CMakeFiles/node_tests.dir/node/cache_test.cpp.o.d"
  "/root/repo/tests/node/cpu_sched_test.cpp" "tests/CMakeFiles/node_tests.dir/node/cpu_sched_test.cpp.o" "gcc" "tests/CMakeFiles/node_tests.dir/node/cpu_sched_test.cpp.o.d"
  "/root/repo/tests/node/memory_test.cpp" "tests/CMakeFiles/node_tests.dir/node/memory_test.cpp.o" "gcc" "tests/CMakeFiles/node_tests.dir/node/memory_test.cpp.o.d"
  "/root/repo/tests/node/mmu_test.cpp" "tests/CMakeFiles/node_tests.dir/node/mmu_test.cpp.o" "gcc" "tests/CMakeFiles/node_tests.dir/node/mmu_test.cpp.o.d"
  "/root/repo/tests/node/turbochannel_test.cpp" "tests/CMakeFiles/node_tests.dir/node/turbochannel_test.cpp.o" "gcc" "tests/CMakeFiles/node_tests.dir/node/turbochannel_test.cpp.o.d"
  "/root/repo/tests/node/write_buffer_test.cpp" "tests/CMakeFiles/node_tests.dir/node/write_buffer_test.cpp.o" "gcc" "tests/CMakeFiles/node_tests.dir/node/write_buffer_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/telegraphos.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

#!/bin/sh
# Run clang-tidy over the simulator sources using the `tidy` CMake preset
# (which exports compile_commands.json).  Usage:
#
#   tools/run_clang_tidy.sh [path ...]     # default: src tools/tglint bench
#
# Exits 0 when clean, 1 on findings, and 0 with a notice when clang-tidy
# is not installed (local containers bake in only gcc; CI installs it).
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)

TIDY=${CLANG_TIDY:-clang-tidy}
if ! command -v "$TIDY" >/dev/null 2>&1; then
    echo "run_clang_tidy: $TIDY not found; skipping (install clang-tidy to run locally)" >&2
    exit 0
fi

builddir="$repo/build-tidy"
if [ ! -f "$builddir/compile_commands.json" ]; then
    cmake --preset tidy >/dev/null
fi

if [ "$#" -gt 0 ]; then
    paths="$*"
else
    paths="src tools/tglint bench"
fi

files=$(cd "$repo" && find $paths -name '*.cpp' | sort)

status=0
for f in $files; do
    "$TIDY" -p "$builddir" --quiet "$repo/$f" || status=1
done

if [ "$status" -eq 0 ]; then
    echo "run_clang_tidy: clean"
fi
exit $status

#!/usr/bin/env python3
"""Compare a benchmark JSON run against a committed baseline.

Used by the CI perf-smoke and scaling-smoke jobs:

    tools/compare_bench.py BENCH_sim_throughput.json candidate.json
    tools/compare_bench.py BENCH_n1_scaling.json candidate.json

Two input schemas are auto-detected per file:

  google-benchmark   {"benchmarks": [...]} — gates events/sec
                     (items_per_second, or the events_per_s counter
                     for end-to-end benches); higher is better.
  tg-bench-v1        {"schema": "tg-bench-v1", "metrics": [...]} —
                     the simulator's own BenchReport format.  Rate
                     units (MB/s, ops/s, .../s) gate on drops;
                     latency units (ns, us, ms) gate on increases.
                     Unitless and count-like metrics (hops, bytes)
                     are informational only.

Exits non-zero when any gated metric regressed by more than the
threshold (default 25%), or when a bench / metric present in the
baseline is missing from the candidate — a bench that stops emitting a
gated counter must fail the gate, not slip through it.  Improvements
and new benchmarks never fail; re-baseline by committing a fresh JSON
(see DESIGN.md section 9).

`--metric-filter=SUBSTR` restricts the comparison to metrics whose
name contains SUBSTR on both sides.  CI smoke jobs use it when the
candidate ran a subset of the committed sweep (e.g. bench_collectives
--nodes=64 against the full BENCH_collectives.json: filter `.n64.`),
so the baseline's other tiers don't count as missing.

The gate is deliberately loose: CI machines are noisy, and the job's
purpose is catching order-of-magnitude scheduler regressions, not 5%
drift.
"""

import argparse
import json
import sys

# Direction per metric: "up" = higher is better (rates), "down" = lower
# is better (latencies).
_RATE_UNITS = {"MB/s", "GB/s", "ops/s", "events/s", "items/s"}
_LATENCY_UNITS = {"ns", "us", "ms", "s", "ticks"}


def _tg_direction(unit):
    """Classify a tg-bench-v1 metric unit; None means don't gate."""
    if unit in _RATE_UNITS or unit.endswith("/s"):
        return "up"
    if unit in _LATENCY_UNITS:
        return "down"
    return None


def load_metrics(path):
    """Map benchmark name -> {metric: (value, direction)}."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)

    out = {}
    if doc.get("schema") == "tg-bench-v1":
        metrics = {}
        for m in doc.get("metrics", []):
            value = m.get("value")
            if not isinstance(value, (int, float)) or value <= 0:
                continue
            direction = _tg_direction(m.get("unit", ""))
            if direction is not None:
                metrics[m["name"]] = (float(value), direction)
        if metrics:
            out[doc.get("bench", path)] = metrics
        return out

    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        metrics = {}
        for key in ("items_per_second", "events_per_s"):
            value = bench.get(key)
            if isinstance(value, (int, float)) and value > 0:
                metrics[key] = (float(value), "up")
        if metrics:
            out[bench["name"]] = metrics
    return out


def _filter_metrics(benches, substr):
    """Keep only metrics whose name contains substr; drop empty benches."""
    out = {}
    for name, metrics in benches.items():
        kept = {m: v for m, v in metrics.items() if substr in m}
        if kept:
            out[name] = kept
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("candidate", help="freshly measured JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="maximum tolerated fractional regression (default 0.25)",
    )
    parser.add_argument(
        "--metric-filter",
        default="",
        help="only gate metrics whose name contains this substring",
    )
    args = parser.parse_args()

    base = load_metrics(args.baseline)
    cand = load_metrics(args.candidate)
    if args.metric_filter:
        base = _filter_metrics(base, args.metric_filter)
        cand = _filter_metrics(cand, args.metric_filter)

    failures = []
    missing = []
    compared = 0
    for name, base_metrics in sorted(base.items()):
        cand_metrics = cand.get(name)
        if cand_metrics is None:
            missing.append(name)
            print(f"FAIL  {name}: missing from candidate run")
            continue
        for metric, (base_value, direction) in sorted(base_metrics.items()):
            entry = cand_metrics.get(metric)
            if entry is None:
                missing.append(f"{name}/{metric}")
                print(f"FAIL  {name}/{metric}: missing from candidate")
                continue
            cand_value, _ = entry
            compared += 1
            ratio = cand_value / base_value
            line = (
                f"{name}/{metric}: baseline {base_value:.3g}, "
                f"candidate {cand_value:.3g} ({ratio:.2f}x)"
            )
            if direction == "up":
                regressed = ratio < 1.0 - args.threshold
            else:
                regressed = ratio > 1.0 + args.threshold
            if regressed:
                failures.append(line)
                print(f"FAIL  {line}")
            else:
                print(f"OK    {line}")

    if compared == 0 and not missing:
        print("ERROR no comparable rate metrics found", file=sys.stderr)
        return 2
    if missing:
        print(
            f"\n{len(missing)} baseline bench(es)/metric(s) missing from "
            f"the candidate run: {', '.join(missing)}",
            file=sys.stderr,
        )
    if failures:
        print(
            f"\n{len(failures)} benchmark(s) regressed more than "
            f"{args.threshold:.0%} vs {args.baseline}",
            file=sys.stderr,
        )
    if failures or missing:
        return 1
    print(f"\nall {compared} gated metrics within {args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Compare a google-benchmark JSON run against a committed baseline.

Used by the CI perf-smoke job:

    tools/compare_bench.py BENCH_sim_throughput.json candidate.json

Exits non-zero when any benchmark's events/sec (items_per_second, or the
events_per_s counter for end-to-end benches) regressed by more than the
threshold (default 25%).  Improvements and new benchmarks never fail;
re-baseline by committing a fresh JSON (see DESIGN.md section 9).

The gate is deliberately loose: CI machines are noisy, and the job's
purpose is catching order-of-magnitude scheduler regressions, not 5%
drift.
"""

import argparse
import json
import sys


def load_rates(path):
    """Map benchmark name -> {metric: value} for the rate metrics."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    rates = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        metrics = {}
        for key in ("items_per_second", "events_per_s"):
            value = bench.get(key)
            if isinstance(value, (int, float)) and value > 0:
                metrics[key] = float(value)
        if metrics:
            rates[bench["name"]] = metrics
    return rates


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("candidate", help="freshly measured JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="maximum tolerated fractional regression (default 0.25)",
    )
    args = parser.parse_args()

    base = load_rates(args.baseline)
    cand = load_rates(args.candidate)

    failures = []
    compared = 0
    for name, base_metrics in sorted(base.items()):
        cand_metrics = cand.get(name)
        if cand_metrics is None:
            print(f"WARN  {name}: missing from candidate run (skipped)")
            continue
        for metric, base_value in sorted(base_metrics.items()):
            cand_value = cand_metrics.get(metric)
            if cand_value is None:
                print(f"WARN  {name}/{metric}: missing from candidate")
                continue
            compared += 1
            ratio = cand_value / base_value
            line = (
                f"{name}/{metric}: baseline {base_value:.3g}/s, "
                f"candidate {cand_value:.3g}/s ({ratio:.2f}x)"
            )
            if ratio < 1.0 - args.threshold:
                failures.append(line)
                print(f"FAIL  {line}")
            else:
                print(f"OK    {line}")

    if compared == 0:
        print("ERROR no comparable rate metrics found", file=sys.stderr)
        return 2
    if failures:
        print(
            f"\n{len(failures)} benchmark(s) regressed more than "
            f"{args.threshold:.0%} vs {args.baseline}",
            file=sys.stderr,
        )
        return 1
    print(f"\nall {compared} rate metrics within {args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())

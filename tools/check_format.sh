#!/bin/sh
# Verify formatting with clang-format against .clang-format.  Usage:
#
#   tools/check_format.sh             # check files changed vs origin/main
#   tools/check_format.sh --all      # check the whole tree
#   tools/check_format.sh --fix      # rewrite (changed files) in place
#
# Exits 0 when clean (or when clang-format is not installed — local
# containers bake in only gcc; CI installs it), 1 on formatting drift.
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo"

FMT=${CLANG_FORMAT:-clang-format}
if ! command -v "$FMT" >/dev/null 2>&1; then
    echo "check_format: $FMT not found; skipping (install clang-format to run locally)" >&2
    exit 0
fi

mode=check
scope=changed
for arg in "$@"; do
    case "$arg" in
    --all) scope=all ;;
    --fix) mode=fix ;;
    *) echo "usage: tools/check_format.sh [--all] [--fix]" >&2; exit 2 ;;
    esac
done

if [ "$scope" = all ]; then
    files=$(find src tools/tglint bench tests -name '*.hpp' -o -name '*.cpp' | sort)
else
    base=$(git merge-base origin/main HEAD 2>/dev/null || echo "")
    if [ -n "$base" ]; then
        files=$(git diff --name-only --diff-filter=d "$base" -- \
                '*.hpp' '*.cpp' | sort)
    else
        files=$(find src tools/tglint bench tests -name '*.hpp' -o -name '*.cpp' | sort)
    fi
fi

[ -z "$files" ] && { echo "check_format: nothing to check"; exit 0; }

if [ "$mode" = fix ]; then
    echo "$files" | xargs "$FMT" -i
    echo "check_format: reformatted $(echo "$files" | wc -l) file(s)"
    exit 0
fi

status=0
for f in $files; do
    if ! "$FMT" --dry-run -Werror "$f" >/dev/null 2>&1; then
        echo "check_format: needs formatting: $f" >&2
        status=1
    fi
done
[ "$status" -eq 0 ] && echo "check_format: clean"
exit $status

/**
 * @file
 * Pass 1 of tglint: the project-wide source index.
 *
 * Every file handed to the analyzer is tokenized once and summarized
 * into a FileRecord: its token stream, the namespaces it declares, the
 * mutable namespace-scope / static-local / static-member variables it
 * defines, and its quoted #include edges.  Rule families (pass 2,
 * rules.cpp) run against the finished index, which is what lets them
 * see cross-file structure — include cycles, project-wide scope — that
 * a per-file scanner cannot.
 *
 * The scope scanner is a brace-matching heuristic over the token
 * stream, not a C++ parser.  It is deliberately conservative: the
 * false-negative cases it accepts (function-pointer globals, globals
 * declared through macros) are documented in DESIGN.md section 7.
 */

#ifndef TELEGRAPHOS_TOOLS_TGLINT_INDEX_HPP
#define TELEGRAPHOS_TOOLS_TGLINT_INDEX_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace tglint {

struct Options;

/** One mutable variable declaration found by the scope scanner. */
struct VarDecl
{
    /** Where the variable lives. */
    enum class Scope
    {
        Namespace,    ///< namespace scope (incl. anonymous namespaces)
        StaticLocal,  ///< function-local `static`
        StaticMember, ///< class-scope `static` / `static inline` member
    };

    std::string name; ///< declared identifier (best effort)
    int line = 0;     ///< 1-based declaration line
    Scope scope = Scope::Namespace;
    bool isConst = false;       ///< const / constexpr anywhere in the decl
    bool isThreadLocal = false; ///< thread_local => per-shard by design
};

/** One quoted #include directive. */
struct IncludeEdge
{
    std::string target; ///< path as written between the quotes
    int line = 0;       ///< 1-based line of the directive
};

/** Everything pass 1 knows about one source file. */
struct FileRecord
{
    std::string path;    ///< path as given to the scanner
    LexResult lex;       ///< token stream + allow/shard annotations
    std::vector<std::string> namespaces; ///< declared namespace components
    std::vector<VarDecl> vars;           ///< scope-scanner output
    std::vector<IncludeEdge> includes;   ///< quoted includes, in order
};

/**
 * The project-wide index.  Files are stored sorted by path so every
 * downstream report is deterministic regardless of directory-walk or
 * command-line order.
 */
class ProjectIndex
{
  public:
    /** Tokenize + scan one in-memory source and add its record. */
    void addSource(const std::string &path, const std::string &source);

    /**
     * Add a file or directory tree (recursing into *.hpp / *.cpp /
     * *.h / *.cc), honouring @p opts skip list.
     * @return false when a path could not be read.
     */
    bool addPath(const std::string &path, const Options &opts);

    /** Sort records by path; call once after the last add. */
    void finalize();

    const std::vector<FileRecord> &files() const { return _files; }

    /**
     * Resolve the include @p target written in @p from to an index
     * position: first as a sibling of the including file, then by
     * unique path-suffix match across the index (the repo writes
     * includes relative to src/).  Returns files().size() when the
     * target is not part of the index (system headers, generated
     * files).
     */
    std::size_t resolve(std::size_t from, const std::string &target) const;

  private:
    std::vector<FileRecord> _files;
};

} // namespace tglint

#endif // TELEGRAPHOS_TOOLS_TGLINT_INDEX_HPP

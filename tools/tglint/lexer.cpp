/**
 * @file
 * Tokenizer implementation for tglint.
 */

#include "lexer.hpp"

#include <cctype>

namespace tglint {

namespace {

/** Extract "tglint: allow(a, b)" rule slugs from one comment's text. */
std::set<std::string>
parseAllows(const std::string &comment)
{
    std::set<std::string> rules;
    const std::string key = "tglint:";
    std::size_t at = comment.find(key);
    if (at == std::string::npos)
        return rules;
    at += key.size();
    while (at < comment.size() && std::isspace((unsigned char)comment[at]))
        ++at;
    if (comment.compare(at, 5, "allow") != 0)
        return rules;
    at = comment.find('(', at);
    const std::size_t end = comment.find(')', at);
    if (at == std::string::npos || end == std::string::npos)
        return rules;
    std::string slug;
    for (std::size_t i = at + 1; i <= end; ++i) {
        const char c = i < end ? comment[i] : ',';
        if (c == ',' || c == ')') {
            if (!slug.empty())
                rules.insert(slug);
            slug.clear();
        } else if (!std::isspace((unsigned char)c)) {
            slug += c;
        }
    }
    return rules;
}

} // namespace

bool
isFloatLiteral(const Token &t)
{
    if (t.kind != TokKind::Number)
        return false;
    const std::string &s = t.text;
    if (s.size() > 1 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X'))
        return s.find('p') != std::string::npos ||
               s.find('P') != std::string::npos;
    if (s.find('.') != std::string::npos)
        return true;
    if (s.find('e') != std::string::npos || s.find('E') != std::string::npos)
        return true;
    const char last = s.back();
    return last == 'f' || last == 'F';
}

LexResult
tokenize(const std::string &source)
{
    LexResult r;
    const std::size_t n = source.size();
    std::size_t i = 0;
    int line = 1;
    bool sawToken = false; // any token emitted yet (for hasFileDoc)

    auto tokenOnLine = [&](int l) {
        return !r.tokens.empty() && r.tokens.back().line == l;
    };

    auto recordAllows = [&](const std::string &text, int startLine,
                            bool pureCommentLine) {
        const std::set<std::string> rules = parseAllows(text);
        if (rules.empty())
            return;
        r.allows[startLine].insert(rules.begin(), rules.end());
        // A comment alone on its line shields the next line instead.
        if (pureCommentLine)
            r.allows[startLine + 1].insert(rules.begin(), rules.end());
    };

    while (i < n) {
        const char c = source[i];

        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace((unsigned char)c)) {
            ++i;
            continue;
        }

        // ---- comments -------------------------------------------------
        if (c == '/' && i + 1 < n && source[i + 1] == '/') {
            const int startLine = line;
            const bool pure = !tokenOnLine(line);
            std::size_t j = i;
            while (j < n && source[j] != '\n')
                ++j;
            recordAllows(source.substr(i, j - i), startLine, pure);
            i = j;
            continue;
        }
        if (c == '/' && i + 1 < n && source[i + 1] == '*') {
            const int startLine = line;
            const bool pure = !tokenOnLine(line);
            std::size_t j = i + 2;
            while (j + 1 < n && !(source[j] == '*' && source[j + 1] == '/')) {
                if (source[j] == '\n')
                    ++line;
                ++j;
            }
            const std::string text = source.substr(i, j + 2 - i);
            if (!sawToken && !r.hasFileDoc)
                r.hasFileDoc = text.find("@file") != std::string::npos;
            recordAllows(text, startLine, pure);
            i = j + 2 < n ? j + 2 : n;
            continue;
        }

        // ---- string / char literals -----------------------------------
        if (c == '"' || c == '\'') {
            // Raw string literal: R"delim( ... )delim"
            const bool raw = c == '"' && !r.tokens.empty() &&
                             r.tokens.back().kind == TokKind::Ident &&
                             r.tokens.back().is("R");
            if (raw) {
                r.tokens.pop_back(); // the R prefix belongs to the literal
                std::size_t j = i + 1;
                std::string delim;
                while (j < n && source[j] != '(')
                    delim += source[j++];
                const std::string close = ")" + delim + "\"";
                std::size_t end = source.find(close, j);
                if (end == std::string::npos)
                    end = n;
                for (std::size_t k = i; k < end && k < n; ++k)
                    if (source[k] == '\n')
                        ++line;
                r.tokens.push_back(Token{TokKind::Literal, "", line});
                sawToken = true;
                i = end == n ? n : end + close.size();
                continue;
            }
            const char quote = c;
            std::size_t j = i + 1;
            while (j < n && source[j] != quote) {
                if (source[j] == '\\')
                    ++j;
                else if (source[j] == '\n')
                    ++line; // unterminated; tolerate
                ++j;
            }
            r.tokens.push_back(Token{TokKind::Literal, "", line});
            sawToken = true;
            i = j < n ? j + 1 : n;
            continue;
        }

        // ---- numbers --------------------------------------------------
        if (std::isdigit((unsigned char)c) ||
            (c == '.' && i + 1 < n &&
             std::isdigit((unsigned char)source[i + 1]))) {
            std::size_t j = i;
            std::string text;
            while (j < n) {
                const char d = source[j];
                if (std::isalnum((unsigned char)d) || d == '.' || d == '\'') {
                    text += d;
                    ++j;
                    // exponent signs: 1e-9, 0x1p+3
                    if ((d == 'e' || d == 'E' || d == 'p' || d == 'P') &&
                        j < n && (source[j] == '+' || source[j] == '-') &&
                        text.size() > 1 &&
                        !(text[0] == '0' &&
                          (text[1] == 'x' || text[1] == 'X') &&
                          (d == 'e' || d == 'E'))) {
                        text += source[j++];
                    }
                } else {
                    break;
                }
            }
            r.tokens.push_back(Token{TokKind::Number, text, line});
            sawToken = true;
            i = j;
            continue;
        }

        // ---- identifiers ----------------------------------------------
        if (std::isalpha((unsigned char)c) || c == '_') {
            std::size_t j = i;
            while (j < n && (std::isalnum((unsigned char)source[j]) ||
                             source[j] == '_'))
                ++j;
            r.tokens.push_back(
                Token{TokKind::Ident, source.substr(i, j - i), line});
            sawToken = true;
            i = j;
            continue;
        }

        // ---- punctuation (combine :: and -> only) ---------------------
        if (c == ':' && i + 1 < n && source[i + 1] == ':') {
            r.tokens.push_back(Token{TokKind::Punct, "::", line});
            sawToken = true;
            i += 2;
            continue;
        }
        if (c == '-' && i + 1 < n && source[i + 1] == '>') {
            r.tokens.push_back(Token{TokKind::Punct, "->", line});
            sawToken = true;
            i += 2;
            continue;
        }
        r.tokens.push_back(Token{TokKind::Punct, std::string(1, c), line});
        sawToken = true;
        ++i;
    }
    return r;
}

} // namespace tglint

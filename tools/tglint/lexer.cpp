/**
 * @file
 * Tokenizer implementation for tglint.
 */

#include "lexer.hpp"

#include <cctype>
#include <cstring>

namespace tglint {

namespace {

/** Locate "tglint: <verb>(" in @p comment; npos or the '(' position. */
std::size_t
findDirective(const std::string &comment, const char *verb)
{
    const std::string key = "tglint:";
    std::size_t at = comment.find(key);
    if (at == std::string::npos)
        return std::string::npos;
    at += key.size();
    while (at < comment.size() && std::isspace((unsigned char)comment[at]))
        ++at;
    const std::size_t vlen = std::strlen(verb);
    if (comment.compare(at, vlen, verb) != 0)
        return std::string::npos;
    at = comment.find('(', at);
    return at;
}

/** Extract "tglint: allow(a, b)" rule slugs from one comment's text. */
std::set<std::string>
parseAllows(const std::string &comment)
{
    std::set<std::string> rules;
    const std::size_t at = findDirective(comment, "allow");
    const std::size_t end =
        at == std::string::npos ? std::string::npos : comment.find(')', at);
    if (at == std::string::npos || end == std::string::npos)
        return rules;
    std::string slug;
    for (std::size_t i = at + 1; i <= end; ++i) {
        const char c = i < end ? comment[i] : ',';
        if (c == ',' || c == ')') {
            if (!slug.empty())
                rules.insert(slug);
            slug.clear();
        } else if (!std::isspace((unsigned char)c)) {
            slug += c;
        }
    }
    return rules;
}

/** Extract "tglint: shard(kind)"; empty string when absent/invalid. */
std::string
parseShard(const std::string &comment)
{
    const std::size_t at = findDirective(comment, "shard");
    const std::size_t end =
        at == std::string::npos ? std::string::npos : comment.find(')', at);
    if (at == std::string::npos || end == std::string::npos)
        return "";
    std::string kind;
    for (std::size_t i = at + 1; i < end; ++i)
        if (!std::isspace((unsigned char)comment[i]))
            kind += comment[i];
    if (kind != "local" && kind != "shared-guarded")
        return "";
    return kind;
}

/** Encoding prefixes that may precede a raw string's R. */
bool
isRawPrefix(const std::string &ident)
{
    return ident == "R" || ident == "u8R" || ident == "uR" ||
           ident == "UR" || ident == "LR";
}

} // namespace

bool
isFloatLiteral(const Token &t)
{
    if (t.kind != TokKind::Number)
        return false;
    const std::string &s = t.text;
    if (s.size() > 1 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X'))
        return s.find('p') != std::string::npos ||
               s.find('P') != std::string::npos;
    if (s.find('.') != std::string::npos)
        return true;
    if (s.find('e') != std::string::npos || s.find('E') != std::string::npos)
        return true;
    const char last = s.back();
    return last == 'f' || last == 'F';
}

LexResult
tokenize(const std::string &source)
{
    LexResult r;
    const std::size_t n = source.size();
    std::size_t i = 0;
    int line = 1;
    bool sawToken = false;        // any token emitted yet (for hasFileDoc)
    std::size_t prevIdentEnd = 0; // one past the last identifier lexed

    auto tokenOnLine = [&](int l) {
        return !r.tokens.empty() && r.tokens.back().line == l;
    };

    auto recordAllows = [&](const std::string &text, int startLine,
                            bool pureCommentLine) {
        const std::set<std::string> rules = parseAllows(text);
        if (!rules.empty()) {
            r.allows[startLine].insert(rules.begin(), rules.end());
            // A comment alone on its line shields the next line instead.
            if (pureCommentLine)
                r.allows[startLine + 1].insert(rules.begin(), rules.end());
        }
        const std::string shard = parseShard(text);
        if (!shard.empty()) {
            r.shards[startLine] = shard;
            if (pureCommentLine)
                r.shards[startLine + 1] = shard;
        }
    };

    while (i < n) {
        const char c = source[i];

        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace((unsigned char)c)) {
            ++i;
            continue;
        }

        // ---- comments -------------------------------------------------
        if (c == '/' && i + 1 < n && source[i + 1] == '/') {
            const int startLine = line;
            const bool pure = !tokenOnLine(line);
            std::size_t j = i;
            while (j < n && source[j] != '\n')
                ++j;
            recordAllows(source.substr(i, j - i), startLine, pure);
            i = j;
            continue;
        }
        if (c == '/' && i + 1 < n && source[i + 1] == '*') {
            const int startLine = line;
            const bool pure = !tokenOnLine(line);
            std::size_t j = i + 2;
            while (j + 1 < n && !(source[j] == '*' && source[j + 1] == '/')) {
                if (source[j] == '\n')
                    ++line;
                ++j;
            }
            const std::string text = source.substr(i, j + 2 - i);
            if (!sawToken && !r.hasFileDoc)
                r.hasFileDoc = text.find("@file") != std::string::npos;
            recordAllows(text, startLine, pure);
            i = j + 2 < n ? j + 2 : n;
            continue;
        }

        // ---- string / char literals -----------------------------------
        if (c == '"' || c == '\'') {
            // Raw string literal: [u8|u|U|L]R"delim( ... )delim".  The
            // prefix must touch the quote (prevIdentEnd check), and the
            // delimiter is at most 16 characters with no quote, space,
            // backslash or ')' — otherwise this is an ordinary string.
            bool raw = c == '"' && !r.tokens.empty() &&
                       r.tokens.back().kind == TokKind::Ident &&
                       isRawPrefix(r.tokens.back().text) && prevIdentEnd == i;
            std::size_t rawOpen = 0; // position of '(' when raw
            if (raw) {
                std::size_t j = i + 1;
                while (j < n && source[j] != '(' && j - i <= 17) {
                    const char d = source[j];
                    if (d == '"' || d == ')' || d == '\\' ||
                        std::isspace((unsigned char)d))
                        break;
                    ++j;
                }
                if (j < n && source[j] == '(')
                    rawOpen = j;
                else
                    raw = false; // malformed: fall back to plain string
            }
            if (raw) {
                r.tokens.pop_back(); // the prefix belongs to the literal
                const std::string delim =
                    source.substr(i + 1, rawOpen - i - 1);
                const std::string close = ")" + delim + "\"";
                std::size_t end = source.find(close, rawOpen);
                if (end == std::string::npos)
                    end = n;
                r.tokens.push_back(Token{TokKind::Literal, "", line});
                sawToken = true;
                for (std::size_t k = i; k < end && k < n; ++k)
                    if (source[k] == '\n')
                        ++line;
                i = end == n ? n : end + close.size();
                continue;
            }
            const char quote = c;
            std::size_t j = i + 1;
            while (j < n && source[j] != quote) {
                if (source[j] == '\\')
                    ++j;
                else if (source[j] == '\n')
                    ++line; // unterminated; tolerate
                ++j;
            }
            r.tokens.push_back(Token{TokKind::Literal, "", line});
            sawToken = true;
            i = j < n ? j + 1 : n;
            continue;
        }

        // ---- numbers --------------------------------------------------
        if (std::isdigit((unsigned char)c) ||
            (c == '.' && i + 1 < n &&
             std::isdigit((unsigned char)source[i + 1]))) {
            std::size_t j = i;
            std::string text;
            while (j < n) {
                const char d = source[j];
                // A digit separator only continues the number when a
                // digit/letter follows; a bare quote after a number
                // starts a character literal instead.
                if (d == '\'' &&
                    !(j + 1 < n && std::isalnum((unsigned char)source[j + 1])))
                    break;
                if (std::isalnum((unsigned char)d) || d == '.' || d == '\'') {
                    text += d;
                    ++j;
                    // exponent signs: 1e-9, 0x1p+3
                    if ((d == 'e' || d == 'E' || d == 'p' || d == 'P') &&
                        j < n && (source[j] == '+' || source[j] == '-') &&
                        text.size() > 1 &&
                        !(text[0] == '0' &&
                          (text[1] == 'x' || text[1] == 'X') &&
                          (d == 'e' || d == 'E'))) {
                        text += source[j++];
                    }
                } else {
                    break;
                }
            }
            r.tokens.push_back(Token{TokKind::Number, text, line});
            sawToken = true;
            i = j;
            continue;
        }

        // ---- identifiers ----------------------------------------------
        if (std::isalpha((unsigned char)c) || c == '_') {
            std::size_t j = i;
            while (j < n && (std::isalnum((unsigned char)source[j]) ||
                             source[j] == '_'))
                ++j;
            r.tokens.push_back(
                Token{TokKind::Ident, source.substr(i, j - i), line});
            sawToken = true;
            prevIdentEnd = j;
            i = j;
            continue;
        }

        // ---- punctuation (combine :: and -> only) ---------------------
        if (c == ':' && i + 1 < n && source[i + 1] == ':') {
            r.tokens.push_back(Token{TokKind::Punct, "::", line});
            sawToken = true;
            i += 2;
            continue;
        }
        if (c == '-' && i + 1 < n && source[i + 1] == '>') {
            r.tokens.push_back(Token{TokKind::Punct, "->", line});
            sawToken = true;
            i += 2;
            continue;
        }
        r.tokens.push_back(Token{TokKind::Punct, std::string(1, c), line});
        sawToken = true;
        ++i;
    }
    return r;
}

} // namespace tglint

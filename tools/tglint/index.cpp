/**
 * @file
 * Pass 1 implementation: tokenizing, the scope scanner, include
 * extraction and include-target resolution.
 */

#include "index.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "tglint.hpp"

namespace tglint {

namespace {

/** Statement keywords that rule out a variable declaration. */
const std::set<std::string> kNonDeclKeywords = {
    "using",  "typedef", "template", "friend",   "extern",
    "static_assert",     "operator", "namespace", "class",
    "struct", "union",   "enum",     "return",    "goto",
    "throw",  "if",      "while",    "for",       "switch",
    "case",   "break",   "continue", "default",   "asm",
};

bool
isKeywordIn(const std::vector<Token> &t, std::size_t b, std::size_t e,
            const char *kw)
{
    for (std::size_t i = b; i < e; ++i)
        if (t[i].kind == TokKind::Ident && t[i].is(kw))
            return true;
    return false;
}

/**
 * Try to read one variable declaration out of the statement tokens
 * [b, e).  @p e points one past the last statement token (the ';' or
 * '{' terminator is NOT included).  Returns true and fills @p out on a
 * plausible declaration.
 */
bool
readVarDecl(const std::vector<Token> &t, std::size_t b, std::size_t e,
            VarDecl::Scope scope, VarDecl &out)
{
    if (b >= e)
        return false;
    for (std::size_t i = b; i < e; ++i) {
        if (t[i].kind != TokKind::Ident)
            continue;
        if (kNonDeclKeywords.count(t[i].text))
            return false;
    }

    // Candidate name: the first identifier directly followed by '='
    // (initialized variable) or '[' (array), else a trailing identifier
    // right before the terminator ("int counter;").  Function
    // declarations end in ')' and never match.
    std::size_t name = e;
    for (std::size_t i = b; i < e && name == e; ++i) {
        if (t[i].kind != TokKind::Ident || i + 1 >= e)
            continue;
        if (t[i + 1].is("=") || t[i + 1].is("["))
            name = i;
    }
    if (name == e && t[e - 1].kind == TokKind::Ident)
        name = e - 1;
    if (name == e || name == b)
        return false; // no name, or no type tokens before the name

    out.name = t[name].text;
    out.line = t[name].line;
    out.scope = scope;
    out.isConst = isKeywordIn(t, b, e, "const") ||
                  isKeywordIn(t, b, e, "constexpr");
    out.isThreadLocal = isKeywordIn(t, b, e, "thread_local");
    return true;
}

/** Scope kinds tracked by the brace scanner. */
enum class ScopeKind
{
    Namespace, ///< namespace / extern "C" body
    Class,     ///< class / struct / union / enum body
    Function,  ///< function / lambda / control-flow block
    Init,      ///< brace initializer (transparent, no declarations)
};

/**
 * Walk the token stream, tracking namespace / class / function scopes,
 * and record every mutable variable declared at namespace scope, as a
 * function-local static, or as a static data member.
 */
void
scanScopes(const std::vector<Token> &t, FileRecord &fr)
{
    std::vector<ScopeKind> scopes;
    auto cur = [&] {
        return scopes.empty() ? ScopeKind::Namespace : scopes.back();
    };

    const std::size_t n = t.size();
    std::size_t stmt = 0; // first token of the current statement
    int parens = 0;       // '(' depth inside the current statement

    auto recordStatement = [&](std::size_t b, std::size_t e) {
        VarDecl d;
        switch (cur()) {
        case ScopeKind::Namespace:
            if (readVarDecl(t, b, e, VarDecl::Scope::Namespace, d))
                fr.vars.push_back(d);
            break;
        case ScopeKind::Function:
            if (isKeywordIn(t, b, e, "static") &&
                readVarDecl(t, b, e, VarDecl::Scope::StaticLocal, d))
                fr.vars.push_back(d);
            break;
        case ScopeKind::Class:
            if (isKeywordIn(t, b, e, "static") &&
                readVarDecl(t, b, e, VarDecl::Scope::StaticMember, d))
                fr.vars.push_back(d);
            break;
        case ScopeKind::Init:
            break;
        }
    };

    for (std::size_t i = 0; i < n; ++i) {
        const Token &tok = t[i];

        // Preprocessor directive: '#' opening a line swallows the rest
        // of that (possibly backslash-continued) logical line.
        if (tok.is("#") && (i == 0 || t[i - 1].line != tok.line)) {
            int dirLine = tok.line;
            std::size_t j = i + 1;
            while (j < n) {
                if (t[j].line == dirLine) {
                    ++j;
                } else if (t[j - 1].is("\\")) {
                    dirLine = t[j].line;
                    ++j;
                } else {
                    break;
                }
            }
            i = j - 1;
            stmt = j;
            continue;
        }

        if (tok.is("(")) {
            ++parens;
            continue;
        }
        if (tok.is(")")) {
            if (parens > 0)
                --parens;
            continue;
        }
        if (parens > 0)
            continue; // parameter lists, for(;;), call arguments

        if (tok.is("{")) {
            ScopeKind kind = ScopeKind::Function;
            const bool classish =
                isKeywordIn(t, stmt, i, "class") ||
                isKeywordIn(t, stmt, i, "struct") ||
                isKeywordIn(t, stmt, i, "union") ||
                isKeywordIn(t, stmt, i, "enum");
            bool hasParen = false;
            for (std::size_t j = stmt; j < i && !hasParen; ++j)
                hasParen = t[j].is("(");

            if (isKeywordIn(t, stmt, i, "namespace") ||
                isKeywordIn(t, stmt, i, "extern")) {
                kind = ScopeKind::Namespace;
                for (std::size_t j = stmt; j < i; ++j)
                    if (t[j].kind == TokKind::Ident &&
                        !t[j].is("namespace") && !t[j].is("inline") &&
                        !t[j].is("extern"))
                        fr.namespaces.push_back(t[j].text);
            } else if (classish && !hasParen) {
                kind = ScopeKind::Class;
            } else if (!hasParen && i > stmt &&
                       (t[i - 1].kind == TokKind::Ident ||
                        t[i - 1].is("=")) &&
                       !isKeywordIn(t, stmt, i, "do") &&
                       !isKeywordIn(t, stmt, i, "else") &&
                       !isKeywordIn(t, stmt, i, "try")) {
                // Brace initializer: "bool x{...}" / "Foo a[] = {...}".
                // Record the declaration now; the braces are opaque.
                kind = ScopeKind::Init;
                recordStatement(stmt, i);
            } else if (i == stmt &&
                       (i > 0 && (t[i - 1].is("{") || t[i - 1].is(",")))) {
                kind = ScopeKind::Init; // nested element of an init list
            }
            scopes.push_back(kind);
            stmt = i + 1;
            continue;
        }

        if (tok.is("}")) {
            if (!scopes.empty())
                scopes.pop_back();
            stmt = i + 1;
            parens = 0;
            continue;
        }

        if (tok.is(";")) {
            recordStatement(stmt, i);
            stmt = i + 1;
            continue;
        }
    }
}

/** Pull quoted #include targets out of the raw source text. */
std::vector<IncludeEdge>
extractIncludes(const std::string &source)
{
    std::vector<IncludeEdge> out;
    int line = 1;
    std::size_t pos = 0;
    while (pos < source.size()) {
        std::size_t eol = source.find('\n', pos);
        if (eol == std::string::npos)
            eol = source.size();
        std::size_t p = pos;
        while (p < eol && std::isspace((unsigned char)source[p]))
            ++p;
        if (p < eol && source[p] == '#') {
            ++p;
            while (p < eol && std::isspace((unsigned char)source[p]))
                ++p;
            if (source.compare(p, 7, "include") == 0) {
                p += 7;
                while (p < eol && std::isspace((unsigned char)source[p]))
                    ++p;
                if (p < eol && source[p] == '"') {
                    const std::size_t close = source.find('"', p + 1);
                    if (close != std::string::npos && close < eol)
                        out.push_back(IncludeEdge{
                            source.substr(p + 1, close - p - 1), line});
                }
            }
        }
        pos = eol + 1;
        ++line;
    }
    return out;
}

/** Forward slashes, no leading "./", lexically resolved "..". */
std::string
normalizePath(const std::string &path)
{
    std::vector<std::string> parts;
    std::string piece;
    for (std::size_t i = 0; i <= path.size(); ++i) {
        const char c = i < path.size() ? path[i] : '/';
        if (c == '/' || c == '\\') {
            if (piece == "..") {
                if (!parts.empty() && parts.back() != "..")
                    parts.pop_back();
                else
                    parts.push_back(piece);
            } else if (!piece.empty() && piece != ".") {
                parts.push_back(piece);
            }
            piece.clear();
        } else {
            piece += c;
        }
    }
    std::string out;
    for (const std::string &p : parts) {
        if (!out.empty())
            out += '/';
        out += p;
    }
    if (!path.empty() && (path[0] == '/'))
        out = "/" + out;
    return out;
}

std::string
dirOf(const std::string &path)
{
    const std::size_t slash = path.find_last_of("/\\");
    return slash == std::string::npos ? std::string() :
                                        path.substr(0, slash);
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

} // namespace

void
ProjectIndex::addSource(const std::string &path, const std::string &source)
{
    FileRecord fr;
    fr.path = path;
    fr.lex = tokenize(source);
    fr.includes = extractIncludes(source);
    scanScopes(fr.lex.tokens, fr);
    _files.push_back(std::move(fr));
}

bool
ProjectIndex::addPath(const std::string &path, const Options &opts)
{
    namespace fs = std::filesystem;
    std::vector<std::string> files;

    std::error_code ec;
    if (fs::is_directory(path, ec)) {
        for (auto it = fs::recursive_directory_iterator(path, ec);
             !ec && it != fs::recursive_directory_iterator(); ++it) {
            if (!it->is_regular_file())
                continue;
            const std::string ext = it->path().extension().string();
            if (ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc")
                files.push_back(it->path().string());
        }
    } else {
        files.push_back(path);
    }
    std::sort(files.begin(), files.end());

    bool ok = true;
    for (const std::string &f : files) {
        bool skipped = false;
        for (const std::string &s : opts.skipSubstrings)
            if (!s.empty() && f.find(s) != std::string::npos)
                skipped = true;
        if (skipped)
            continue;
        std::ifstream in(f, std::ios::binary);
        if (!in) {
            ok = false;
            continue;
        }
        std::ostringstream ss;
        ss << in.rdbuf();
        addSource(f, ss.str());
    }
    return ok;
}

void
ProjectIndex::finalize()
{
    std::sort(_files.begin(), _files.end(),
              [](const FileRecord &a, const FileRecord &b) {
                  return a.path < b.path;
              });
}

std::size_t
ProjectIndex::resolve(std::size_t from, const std::string &target) const
{
    const std::string norm = normalizePath(target);

    // Sibling of the including file first (tools/tglint style includes).
    const std::string dir = dirOf(_files[from].path);
    const std::string sibling =
        normalizePath(dir.empty() ? norm : dir + "/" + norm);
    for (std::size_t i = 0; i < _files.size(); ++i)
        if (normalizePath(_files[i].path) == sibling)
            return i;

    // Unique path-suffix match across the whole index ("sim/log.hpp"
    // written relative to src/).  Ties go to the candidate sharing the
    // longest path prefix with the including file.
    std::size_t best = _files.size();
    std::size_t bestShared = 0;
    std::size_t matches = 0;
    const std::string fromNorm = normalizePath(_files[from].path);
    for (std::size_t i = 0; i < _files.size(); ++i) {
        const std::string p = normalizePath(_files[i].path);
        if (p != norm && !endsWith(p, "/" + norm))
            continue;
        ++matches;
        std::size_t shared = 0;
        while (shared < p.size() && shared < fromNorm.size() &&
               p[shared] == fromNorm[shared])
            ++shared;
        if (best == _files.size() || shared > bestShared) {
            best = i;
            bestShared = shared;
        }
    }
    return matches > 0 ? best : _files.size();
}

} // namespace tglint

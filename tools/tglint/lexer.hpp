/**
 * @file
 * Minimal C++ tokenizer for tglint.
 *
 * Produces identifier / number / punctuation / literal tokens with line
 * numbers, strips comments and string contents (so commented-out code
 * never fires a rule), and harvests two kinds of structured comments
 * keyed by the line they shield:
 *
 *   tglint: allow(rule, ...)          per-line rule suppression
 *   tglint: shard(local|shared-guarded)  mutable-state triage annotation
 *
 * Raw string literals — including the u8R / uR / UR / LR prefixed
 * forms — collapse to one content-free Literal token attributed to the
 * line the literal starts on; digit separators (0x1'000) stay inside a
 * single Number token.
 */

#ifndef TELEGRAPHOS_TOOLS_TGLINT_LEXER_HPP
#define TELEGRAPHOS_TOOLS_TGLINT_LEXER_HPP

#include <map>
#include <set>
#include <string>
#include <vector>

namespace tglint {

/** Lexical class of a token. */
enum class TokKind
{
    Ident,   ///< identifier or keyword
    Number,  ///< numeric literal (text preserved)
    Punct,   ///< operator / punctuation (one token per lexeme)
    Literal, ///< string or character literal (contents dropped)
};

/** One token of the scanned translation unit. */
struct Token
{
    TokKind kind;
    std::string text;
    int line; ///< 1-based source line

    bool is(const char *t) const { return text == t; }
};

/** Tokenizer output: the token stream plus comment-derived metadata. */
struct LexResult
{
    std::vector<Token> tokens;

    /** line -> set of rule slugs suppressed on that line ("*" = all). */
    std::map<int, std::set<std::string>> allows;

    /**
     * line -> shard-safety triage annotation covering that line:
     * "local" (state is per-shard by design) or "shared-guarded"
     * (deliberately shared; mutation confined to single-threaded phases
     * or an explicit guard documented at the site).
     */
    std::map<int, std::string> shards;

    /** True when the file opens with a doc comment containing "@file". */
    bool hasFileDoc = false;
};

/** Tokenize @p source (never throws; best-effort on malformed input). */
LexResult tokenize(const std::string &source);

/** True when @p t is a floating-point literal ("1.5", "2.", ".5e3"). */
bool isFloatLiteral(const Token &t);

} // namespace tglint

#endif // TELEGRAPHOS_TOOLS_TGLINT_LEXER_HPP

/**
 * @file
 * tglint reporting: the baseline ratchet, human/JSON renderers and the
 * SARIF 2.1.0 export.
 *
 * The baseline is a committed JSON document of triaged findings.
 * Matching is count-based per (file, rule): an entry absorbs up to
 * `count` findings whose rule matches and whose path equals the entry's
 * file or ends with "/<file>" (so repo-relative entries match the
 * absolute paths ctest passes).  Anything beyond the counts is a NEW
 * finding and fails the run; unused capacity is reported as stale so
 * the baseline only ever shrinks.
 */

#include "tglint.hpp"

#include <cctype>
#include <fstream>
#include <ostream>
#include <sstream>

namespace tglint {

namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string r;
    for (char c : s) {
        if (c == '"' || c == '\\')
            r += '\\', r += c;
        else if (c == '\n')
            r += "\\n";
        else if (c == '\t')
            r += "\\t";
        else
            r += c;
    }
    return r;
}

/**
 * Minimal JSON reader for the baseline schema.  Handles objects,
 * arrays, strings (with \" escapes), and integers — all this tool ever
 * writes.  Anything else is a parse error.
 */
class JsonReader
{
  public:
    explicit JsonReader(const std::string &text) : _s(text) {}

    bool
    failed() const
    {
        return _failed;
    }

    void
    skipWs()
    {
        while (_at < _s.size() && std::isspace((unsigned char)_s[_at]))
            ++_at;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (_at < _s.size() && _s[_at] == c) {
            ++_at;
            return true;
        }
        return false;
    }

    char
    peek()
    {
        skipWs();
        return _at < _s.size() ? _s[_at] : '\0';
    }

    std::string
    readString()
    {
        std::string out;
        if (!consume('"')) {
            _failed = true;
            return out;
        }
        while (_at < _s.size() && _s[_at] != '"') {
            if (_s[_at] == '\\' && _at + 1 < _s.size()) {
                ++_at;
                out += _s[_at] == 'n' ? '\n' : _s[_at];
            } else {
                out += _s[_at];
            }
            ++_at;
        }
        if (!consume('"'))
            _failed = true;
        return out;
    }

    long
    readInt()
    {
        skipWs();
        bool neg = false;
        if (_at < _s.size() && _s[_at] == '-') {
            neg = true;
            ++_at;
        }
        if (_at >= _s.size() || !std::isdigit((unsigned char)_s[_at])) {
            _failed = true;
            return 0;
        }
        long v = 0;
        while (_at < _s.size() && std::isdigit((unsigned char)_s[_at]))
            v = v * 10 + (_s[_at++] - '0');
        return neg ? -v : v;
    }

    /** Skip any one JSON value (used for unknown keys). */
    void
    skipValue()
    {
        switch (peek()) {
        case '"':
            readString();
            return;
        case '{':
            consume('{');
            if (consume('}'))
                return;
            do {
                readString();
                if (!consume(':')) {
                    _failed = true;
                    return;
                }
                skipValue();
            } while (consume(','));
            if (!consume('}'))
                _failed = true;
            return;
        case '[':
            consume('[');
            if (consume(']'))
                return;
            do {
                skipValue();
            } while (consume(','));
            if (!consume(']'))
                _failed = true;
            return;
        default:
            // number / true / false / null
            skipWs();
            while (_at < _s.size() && !std::isspace((unsigned char)_s[_at]) &&
                   _s[_at] != ',' && _s[_at] != '}' && _s[_at] != ']')
                ++_at;
            return;
        }
    }

  private:
    const std::string &_s;
    std::size_t _at = 0;
    bool _failed = false;
};

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

void
printFinding(const Finding &f, std::ostream &os)
{
    os << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
       << "\n";
}

void
jsonFinding(const Finding &f, std::ostream &os)
{
    os << "{\"file\":\"" << jsonEscape(f.file) << "\",\"line\":" << f.line
       << ",\"rule\":\"" << jsonEscape(f.rule) << "\",\"message\":\""
       << jsonEscape(f.message) << "\"}";
}

} // namespace

bool
loadBaseline(const std::string &path, Baseline &out, std::string &err)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        err = "cannot read baseline '" + path + "'";
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();

    JsonReader r(text);
    if (!r.consume('{')) {
        err = "baseline is not a JSON object";
        return false;
    }
    bool sawSchema = false;
    if (r.peek() != '}') {
        do {
            const std::string key = r.readString();
            if (!r.consume(':')) {
                err = "malformed baseline (missing ':')";
                return false;
            }
            if (key == "schema") {
                const std::string schema = r.readString();
                if (schema != "tglint-baseline-v1") {
                    err = "unknown baseline schema '" + schema + "'";
                    return false;
                }
                sawSchema = true;
            } else if (key == "entries") {
                if (!r.consume('[')) {
                    err = "baseline 'entries' is not an array";
                    return false;
                }
                if (r.peek() != ']') {
                    do {
                        BaselineEntry e;
                        if (!r.consume('{')) {
                            err = "baseline entry is not an object";
                            return false;
                        }
                        if (r.peek() != '}') {
                            do {
                                const std::string k = r.readString();
                                if (!r.consume(':')) {
                                    err = "malformed baseline entry";
                                    return false;
                                }
                                if (k == "file")
                                    e.file = r.readString();
                                else if (k == "rule")
                                    e.rule = r.readString();
                                else if (k == "count")
                                    e.count = (int)r.readInt();
                                else
                                    r.skipValue();
                            } while (r.consume(','));
                        }
                        if (!r.consume('}')) {
                            err = "unterminated baseline entry";
                            return false;
                        }
                        if (e.file.empty() || e.rule.empty() ||
                            e.count <= 0) {
                            err = "baseline entry needs file, rule and a "
                                  "positive count";
                            return false;
                        }
                        out.entries.push_back(e);
                    } while (r.consume(','));
                }
                if (!r.consume(']')) {
                    err = "unterminated baseline 'entries'";
                    return false;
                }
            } else {
                r.skipValue();
            }
        } while (r.consume(','));
    }
    if (!r.consume('}') || r.failed()) {
        err = "malformed baseline JSON";
        return false;
    }
    if (!sawSchema) {
        err = "baseline is missing \"schema\":\"tglint-baseline-v1\"";
        return false;
    }
    return true;
}

Report
applyBaseline(const std::vector<Finding> &findings, const Baseline &baseline)
{
    Report rep;
    std::vector<int> remaining;
    remaining.reserve(baseline.entries.size());
    for (const BaselineEntry &e : baseline.entries)
        remaining.push_back(e.count);

    for (const Finding &f : findings) {
        bool matched = false;
        for (std::size_t i = 0; i < baseline.entries.size(); ++i) {
            const BaselineEntry &e = baseline.entries[i];
            if (remaining[i] <= 0 || e.rule != f.rule)
                continue;
            if (f.file != e.file && !endsWith(f.file, "/" + e.file))
                continue;
            --remaining[i];
            matched = true;
            break;
        }
        (matched ? rep.baselined : rep.fresh).push_back(f);
    }

    for (std::size_t i = 0; i < baseline.entries.size(); ++i)
        if (remaining[i] > 0) {
            BaselineEntry stale = baseline.entries[i];
            stale.count = remaining[i];
            rep.stale.push_back(stale);
        }
    return rep;
}

void
printHuman(const std::vector<Finding> &findings, std::ostream &os)
{
    for (const Finding &f : findings)
        printFinding(f, os);
    os << (findings.empty() ? "tglint: clean\n" : "");
    if (!findings.empty())
        os << "tglint: " << findings.size() << " finding(s)\n";
}

void
printJson(const std::vector<Finding> &findings, std::ostream &os)
{
    os << "{\"count\":" << findings.size() << ",\"findings\":[";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        os << (i ? "," : "");
        jsonFinding(findings[i], os);
    }
    os << "]}\n";
}

void
printHuman(const Report &rep, std::ostream &os)
{
    for (const Finding &f : rep.fresh)
        printFinding(f, os);
    for (const BaselineEntry &e : rep.stale)
        os << "stale baseline entry: " << e.file << " [" << e.rule << "] x"
           << e.count << " — remove it from baseline.json\n";
    if (rep.fresh.empty()) {
        os << "tglint: clean";
        if (!rep.baselined.empty())
            os << " (" << rep.baselined.size() << " baselined)";
        if (!rep.shardAnnotations.empty())
            os << " (" << rep.shardAnnotations.size()
               << " shard annotation(s))";
        os << "\n";
    } else {
        os << "tglint: " << rep.fresh.size() << " new finding(s)";
        if (!rep.baselined.empty())
            os << ", " << rep.baselined.size() << " baselined";
        os << "\n";
    }
}

void
printJson(const Report &rep, std::ostream &os)
{
    os << "{\"count\":" << rep.fresh.size() << ",\"findings\":[";
    for (std::size_t i = 0; i < rep.fresh.size(); ++i) {
        os << (i ? "," : "");
        jsonFinding(rep.fresh[i], os);
    }
    os << "],\"baselinedCount\":" << rep.baselined.size();
    os << ",\"stale\":[";
    for (std::size_t i = 0; i < rep.stale.size(); ++i) {
        const BaselineEntry &e = rep.stale[i];
        os << (i ? "," : "") << "{\"file\":\"" << jsonEscape(e.file)
           << "\",\"rule\":\"" << jsonEscape(e.rule)
           << "\",\"count\":" << e.count << "}";
    }
    os << "],\"shardAnnotations\":[";
    for (std::size_t i = 0; i < rep.shardAnnotations.size(); ++i) {
        const ShardAnnotation &a = rep.shardAnnotations[i];
        os << (i ? "," : "") << "{\"file\":\"" << jsonEscape(a.file)
           << "\",\"line\":" << a.line << ",\"symbol\":\""
           << jsonEscape(a.symbol) << "\",\"kind\":\"" << jsonEscape(a.kind)
           << "\"}";
    }
    os << "]}\n";
}

void
printSarif(const Report &rep, std::ostream &os)
{
    os << "{\"$schema\":"
          "\"https://json.schemastore.org/sarif-2.1.0.json\","
          "\"version\":\"2.1.0\",\"runs\":[{";
    os << "\"tool\":{\"driver\":{\"name\":\"tglint\","
          "\"informationUri\":\"DESIGN.md\",\"version\":\"2.0.0\","
          "\"rules\":[";
    const std::vector<std::string> &rules = allRules();
    for (std::size_t i = 0; i < rules.size(); ++i) {
        os << (i ? "," : "") << "{\"id\":\"" << jsonEscape(rules[i])
           << "\",\"shortDescription\":{\"text\":\""
           << jsonEscape(ruleDescription(rules[i])) << "\"}}";
    }
    os << "]}},\"results\":[";
    bool first = true;
    auto result = [&](const Finding &f, const char *state) {
        os << (first ? "" : ",") << "{\"ruleId\":\"" << jsonEscape(f.rule)
           << "\",\"level\":\"error\",\"baselineState\":\"" << state
           << "\",\"message\":{\"text\":\"" << jsonEscape(f.message)
           << "\"},\"locations\":[{\"physicalLocation\":"
              "{\"artifactLocation\":{\"uri\":\""
           << jsonEscape(f.file) << "\"},\"region\":{\"startLine\":"
           << f.line << "}}}]}";
        first = false;
    };
    for (const Finding &f : rep.fresh)
        result(f, "new");
    for (const Finding &f : rep.baselined)
        result(f, "unchanged");
    os << "]}]}\n";
}

} // namespace tglint

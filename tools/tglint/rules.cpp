/**
 * @file
 * tglint rule implementations and the file/tree driver.
 *
 * Every rule is a token-level heuristic: deliberately narrow, zero false
 * negatives on the patterns it claims to catch, and suppressible per line
 * with "// tglint: allow(<rule>)".  See DESIGN.md section 7 for the
 * catalogue and rationale.
 */

#include "tglint.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <set>
#include <sstream>

#include "lexer.hpp"

namespace tglint {

namespace {

const char *kBannedApi = "banned-api";
const char *kUnorderedIter = "unordered-iter";
const char *kTickFloat = "tick-float";
const char *kRawNew = "raw-new";
const char *kFileDoc = "file-doc";
const char *kHotStdFunction = "hot-path-std-function";

/** Namespace components whose event/packet ordering is part of the
 *  determinism contract. */
const std::set<std::string> kSensitiveNamespaces = {"net", "hib",
                                                   "coherence", "sim"};

/** Namespace components whose schedulers sit on the per-event hot path
 *  (sim core plus every component that schedules closures). */
const std::set<std::string> kHotPathNamespaces = {"sim", "net", "node",
                                                  "hib"};

/** Calls that read wall-clock / host entropy (never legal in the model). */
const std::set<std::string> kBannedCalls = {
    "rand",       "srand",     "drand48",       "lrand48",
    "random",     "time",      "clock",         "gettimeofday",
    "clock_gettime", "localtime", "gmtime",     "mrand48",
};

/** Banned type/member names flagged wherever they appear. */
const std::set<std::string> kBannedIdents = {
    "system_clock", "steady_clock", "high_resolution_clock", "random_device",
};

struct FileCtx
{
    const std::string &path;
    const LexResult &lex;
    const Options &opts;
    std::vector<Finding> &out;

    bool
    ruleDisabled(const std::string &rule) const
    {
        return std::find(opts.disabledRules.begin(), opts.disabledRules.end(),
                         rule) != opts.disabledRules.end();
    }

    bool
    suppressed(int line, const std::string &rule) const
    {
        auto it = lex.allows.find(line);
        if (it == lex.allows.end())
            return false;
        return it->second.count(rule) != 0 || it->second.count("*") != 0;
    }

    void
    emit(int line, const char *rule, std::string message)
    {
        if (ruleDisabled(rule) || suppressed(line, rule))
            return;
        out.push_back(Finding{path, line, rule, std::move(message)});
    }
};

bool
pathContains(const std::string &path, const std::string &needle)
{
    return !needle.empty() && path.find(needle) != std::string::npos;
}

// ---------------------------------------------------------------------
// file-doc
// ---------------------------------------------------------------------

void
ruleFileDoc(FileCtx &ctx)
{
    if (!ctx.lex.hasFileDoc)
        ctx.emit(1, kFileDoc,
                 "file must open with a /** ... @file ... */ doc header");
}

// ---------------------------------------------------------------------
// banned-api
// ---------------------------------------------------------------------

void
ruleBannedApi(FileCtx &ctx)
{
    const std::vector<Token> &t = ctx.lex.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokKind::Ident)
            continue;
        const std::string &name = t[i].text;
        const bool memberCall =
            i > 0 && (t[i - 1].is(".") || t[i - 1].is("->"));
        const bool call = i + 1 < t.size() && t[i + 1].is("(");

        if (kBannedIdents.count(name)) {
            ctx.emit(t[i].line, kBannedApi,
                     "'" + name +
                         "' reads host clock/entropy; use the seeded "
                         "tg::Rng / simulated Tick instead");
            continue;
        }
        if (call && !memberCall && kBannedCalls.count(name)) {
            ctx.emit(t[i].line, kBannedApi,
                     "call to '" + name +
                         "()' is nondeterministic; use System::rng() or "
                         "EventQueue::now()");
            continue;
        }
        if (call && (name == "getenv" || name == "secure_getenv") &&
            !pathContains(ctx.path, ctx.opts.getenvExemptSubstring)) {
            ctx.emit(t[i].line, kBannedApi,
                     "'" + name +
                         "()' outside sim/config makes runs depend on the "
                         "host environment");
        }
    }
}

// ---------------------------------------------------------------------
// unordered-iter
// ---------------------------------------------------------------------

bool
isUnorderedType(const std::string &s)
{
    return s == "unordered_map" || s == "unordered_set" ||
           s == "unordered_multimap" || s == "unordered_multiset";
}

/** True when the file's path or declared namespaces land in @p wanted. */
bool
inNamespaces(const FileCtx &ctx, const std::set<std::string> &wanted)
{
    for (const std::string &ns : wanted) {
        if (pathContains(ctx.path, "/" + ns + "/"))
            return true;
    }
    const std::vector<Token> &t = ctx.lex.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (!(t[i].kind == TokKind::Ident && t[i].is("namespace")))
            continue;
        for (std::size_t j = i + 1; j < t.size(); ++j) {
            if (t[j].kind == TokKind::Ident) {
                if (wanted.count(t[j].text))
                    return true;
            } else if (!t[j].is("::")) {
                break; // '{', ';', '=' ... end of the namespace name
            }
        }
    }
    return false;
}

/** True when the file's path or namespaces put it in order-sensitive
 *  territory. */
bool
orderSensitive(const FileCtx &ctx)
{
    return inNamespaces(ctx, kSensitiveNamespaces);
}

/** Names declared in this file with an unordered container type. */
std::set<std::string>
unorderedNames(const std::vector<Token> &t)
{
    std::set<std::string> names;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokKind::Ident || !isUnorderedType(t[i].text))
            continue;
        std::size_t j = i + 1;
        if (j < t.size() && t[j].is("<")) {
            int depth = 0;
            for (; j < t.size(); ++j) {
                if (t[j].is("<"))
                    ++depth;
                else if (t[j].is(">") && --depth == 0) {
                    ++j;
                    break;
                }
            }
        }
        // Skip declaration decorations to reach the declared name.
        while (j < t.size() &&
               (t[j].is("&") || t[j].is("*") || t[j].is("const")))
            ++j;
        if (j < t.size() && t[j].kind == TokKind::Ident &&
            !t[j].is("iterator") && !t[j].is("const_iterator"))
            names.insert(t[j].text);
    }
    return names;
}

void
ruleUnorderedIter(FileCtx &ctx)
{
    if (!orderSensitive(ctx))
        return;
    const std::vector<Token> &t = ctx.lex.tokens;
    const std::set<std::string> names = unorderedNames(t);
    if (names.empty())
        return;

    for (std::size_t i = 0; i < t.size(); ++i) {
        // Range-for whose range expression mentions an unordered name.
        if (t[i].kind == TokKind::Ident && t[i].is("for") &&
            i + 1 < t.size() && t[i + 1].is("(")) {
            int depth = 0;
            std::size_t colon = 0;
            for (std::size_t j = i + 1; j < t.size(); ++j) {
                if (t[j].is("("))
                    ++depth;
                else if (t[j].is(")") && --depth == 0) {
                    if (colon) {
                        for (std::size_t k = colon + 1; k < j; ++k) {
                            if (t[k].kind == TokKind::Ident &&
                                names.count(t[k].text)) {
                                ctx.emit(
                                    t[i].line, kUnorderedIter,
                                    "range-for over unordered container '" +
                                        t[k].text +
                                        "' in an order-sensitive namespace; "
                                        "use std::map or a sorted vector");
                                break;
                            }
                        }
                    }
                    break;
                } else if (t[j].is(":") && depth == 1 && !colon) {
                    colon = j;
                }
            }
        }
        // Explicit iterator walk: name.begin() / name->cbegin() etc.
        if (t[i].kind == TokKind::Ident && names.count(t[i].text) &&
            i + 2 < t.size() && (t[i + 1].is(".") || t[i + 1].is("->"))) {
            const std::string &m = t[i + 2].text;
            if (m == "begin" || m == "cbegin" || m == "rbegin") {
                ctx.emit(t[i].line, kUnorderedIter,
                         "iterator walk over unordered container '" +
                             t[i].text +
                             "' in an order-sensitive namespace; use "
                             "std::map or a sorted vector");
            }
        }
    }
}

// ---------------------------------------------------------------------
// tick-float
// ---------------------------------------------------------------------

bool
floatish(const Token &t)
{
    return isFloatLiteral(t) ||
           (t.kind == TokKind::Ident &&
            (t.is("double") || t.is("float")));
}

void
ruleTickFloat(FileCtx &ctx)
{
    const std::vector<Token> &t = ctx.lex.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokKind::Ident || !t[i].is("Tick"))
            continue;

        // Pattern A: "Tick name = <expr containing a float>;"
        if (i + 2 < t.size() && t[i + 1].kind == TokKind::Ident &&
            t[i + 2].is("=")) {
            for (std::size_t j = i + 3; j < t.size() && !t[j].is(";"); ++j) {
                if (floatish(t[j])) {
                    ctx.emit(t[i].line, kTickFloat,
                             "floating-point arithmetic initializing Tick '" +
                                 t[i + 1].text +
                                 "'; ticks are integral nanoseconds — round "
                                 "explicitly and annotate the contract");
                    break;
                }
            }
        }

        // Pattern B/C: static_cast<Tick>(... float ...) or Tick(... float ...)
        std::size_t open = 0;
        if (i >= 2 && t[i - 1].is("<") && t[i - 2].is("static_cast") &&
            i + 2 < t.size() && t[i + 1].is(">") && t[i + 2].is("("))
            open = i + 2;
        else if (i + 1 < t.size() && t[i + 1].is("("))
            open = i + 1;
        if (open) {
            int depth = 0;
            for (std::size_t j = open; j < t.size(); ++j) {
                if (t[j].is("("))
                    ++depth;
                else if (t[j].is(")") && --depth == 0)
                    break;
                else if (depth >= 1 && floatish(t[j])) {
                    ctx.emit(t[i].line, kTickFloat,
                             "floating-point expression cast to Tick; ticks "
                             "are integral nanoseconds — round explicitly "
                             "and annotate the contract");
                    break;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// raw-new
// ---------------------------------------------------------------------

void
ruleRawNew(FileCtx &ctx)
{
    if (pathContains(ctx.path, ctx.opts.allocatorExemptSubstring))
        return;
    const std::vector<Token> &t = ctx.lex.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokKind::Ident)
            continue;
        const bool opOverload = i > 0 && t[i - 1].is("operator");
        if (t[i].is("new") && !opOverload) {
            ctx.emit(t[i].line, kRawNew,
                     "raw 'new'; own allocations with std::make_unique / "
                     "containers so teardown order stays deterministic");
        } else if (t[i].is("delete") && !opOverload) {
            const bool deletedFn = i > 0 && t[i - 1].is("=") &&
                                   i + 1 < t.size() &&
                                   (t[i + 1].is(";") || t[i + 1].is(","));
            if (!deletedFn)
                ctx.emit(t[i].line, kRawNew,
                         "raw 'delete'; use RAII ownership instead");
        }
    }
}

// ---------------------------------------------------------------------
// hot-path-std-function
// ---------------------------------------------------------------------

void
ruleHotStdFunction(FileCtx &ctx)
{
    if (!inNamespaces(ctx, kHotPathNamespaces))
        return;
    const std::vector<Token> &t = ctx.lex.tokens;
    for (std::size_t i = 0; i + 2 < t.size(); ++i) {
        if (t[i].kind == TokKind::Ident && t[i].is("std") &&
            t[i + 1].is("::") && t[i + 2].kind == TokKind::Ident &&
            t[i + 2].is("function")) {
            ctx.emit(t[i].line, kHotStdFunction,
                     "std::function on a scheduling hot path heap-allocates "
                     "per closure; use tg::Fn / tg::Event (sim/event.hpp)");
        }
    }
}

} // namespace

// ---------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------

const std::vector<std::string> &
allRules()
{
    static const std::vector<std::string> rules = {
        kBannedApi, kUnorderedIter,  kTickFloat, kRawNew,
        kFileDoc,   kHotStdFunction,
    };
    return rules;
}

void
lintSource(const std::string &path, const std::string &source,
           const Options &opts, std::vector<Finding> &out)
{
    const LexResult lex = tokenize(source);
    FileCtx ctx{path, lex, opts, out};
    ruleFileDoc(ctx);
    ruleBannedApi(ctx);
    ruleUnorderedIter(ctx);
    ruleTickFloat(ctx);
    ruleRawNew(ctx);
    ruleHotStdFunction(ctx);
}

bool
lintPath(const std::string &path, const Options &opts,
         std::vector<Finding> &out)
{
    namespace fs = std::filesystem;
    std::vector<std::string> files;

    std::error_code ec;
    if (fs::is_directory(path, ec)) {
        for (auto it = fs::recursive_directory_iterator(path, ec);
             !ec && it != fs::recursive_directory_iterator(); ++it) {
            if (!it->is_regular_file())
                continue;
            const std::string ext = it->path().extension().string();
            if (ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc")
                files.push_back(it->path().string());
        }
    } else {
        files.push_back(path);
    }
    std::sort(files.begin(), files.end()); // deterministic report order

    bool ok = true;
    for (const std::string &f : files) {
        std::ifstream in(f, std::ios::binary);
        if (!in) {
            ok = false;
            continue;
        }
        std::ostringstream ss;
        ss << in.rdbuf();
        lintSource(f, ss.str(), opts, out);
    }
    return ok;
}

void
printHuman(const std::vector<Finding> &findings, std::ostream &os)
{
    for (const Finding &f : findings)
        os << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
           << "\n";
    os << (findings.empty() ? "tglint: clean\n" : "") ;
    if (!findings.empty())
        os << "tglint: " << findings.size() << " finding(s)\n";
}

void
printJson(const std::vector<Finding> &findings, std::ostream &os)
{
    auto esc = [](const std::string &s) {
        std::string r;
        for (char c : s) {
            if (c == '"' || c == '\\')
                r += '\\', r += c;
            else if (c == '\n')
                r += "\\n";
            else
                r += c;
        }
        return r;
    };
    os << "{\"count\":" << findings.size() << ",\"findings\":[";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        os << (i ? "," : "") << "{\"file\":\"" << esc(f.file)
           << "\",\"line\":" << f.line << ",\"rule\":\"" << esc(f.rule)
           << "\",\"message\":\"" << esc(f.message) << "\"}";
    }
    os << "]}\n";
}

} // namespace tglint

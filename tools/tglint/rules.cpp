/**
 * @file
 * Pass 2 of tglint: rule families over the project index.
 *
 * Per-file rules are token-level heuristics: deliberately narrow, zero
 * false negatives on the patterns they claim to catch, suppressible per
 * line with "// tglint: allow(<rule>)".  The shard-safety family
 * (global-mutable-state, pointer-keyed-order, include-cycle) consumes
 * the scope/include structure the index pass extracted, which is what
 * makes it project-wide.  See DESIGN.md section 7 for the catalogue.
 */

#include "tglint.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <set>
#include <sstream>

#include "index.hpp"
#include "lexer.hpp"

namespace tglint {

namespace {

const char *kBannedApi = "banned-api";
const char *kUnorderedIter = "unordered-iter";
const char *kTickFloat = "tick-float";
const char *kRawNew = "raw-new";
const char *kFileDoc = "file-doc";
const char *kHotStdFunction = "hot-path-std-function";
const char *kHotHeapAlloc = "hot-path-heap-alloc";
const char *kGlobalMutable = "global-mutable-state";
const char *kPointerKeyed = "pointer-keyed-order";
const char *kIncludeCycle = "include-cycle";

/** Namespace components whose event/packet ordering is part of the
 *  determinism contract. */
const std::set<std::string> kSensitiveNamespaces = {"net", "hib",
                                                   "coherence", "sim"};

/** Namespace components whose schedulers sit on the per-event hot path
 *  (sim core plus every component that schedules closures). */
const std::set<std::string> kHotPathNamespaces = {"sim", "net", "node",
                                                  "hib"};

/** Namespace components the PDES engine will partition across worker
 *  threads: mutable globals and address-dependent order here become
 *  cross-shard races / thread-count-dependent trace hashes. */
const std::set<std::string> kShardNamespaces = {"sim", "net", "hib",
                                                "node", "coherence"};

/** Calls that read wall-clock / host entropy (never legal in the model). */
const std::set<std::string> kBannedCalls = {
    "rand",       "srand",     "drand48",       "lrand48",
    "random",     "time",      "clock",         "gettimeofday",
    "clock_gettime", "localtime", "gmtime",     "mrand48",
};

/** Banned type/member names flagged wherever they appear. */
const std::set<std::string> kBannedIdents = {
    "system_clock", "steady_clock", "high_resolution_clock", "random_device",
};

bool
pathContains(const std::string &path, const std::string &needle)
{
    return !needle.empty() && path.find(needle) != std::string::npos;
}

struct FileCtx
{
    const FileRecord &rec;
    const Options &opts;
    std::vector<Finding> &out;

    const std::string &path() const { return rec.path; }
    const std::vector<Token> &tokens() const { return rec.lex.tokens; }

    bool
    ruleDisabled(const std::string &rule) const
    {
        if (std::find(opts.disabledRules.begin(), opts.disabledRules.end(),
                      rule) != opts.disabledRules.end())
            return true;
        // Relaxed paths (tests): some rules are off wholesale.
        for (const std::string &sub : opts.relaxedPathSubstrings) {
            if (!pathContains(rec.path, sub))
                continue;
            if (std::find(opts.relaxedRules.begin(), opts.relaxedRules.end(),
                          rule) != opts.relaxedRules.end())
                return true;
        }
        return false;
    }

    bool
    suppressed(int line, const std::string &rule) const
    {
        auto it = rec.lex.allows.find(line);
        if (it == rec.lex.allows.end())
            return false;
        return it->second.count(rule) != 0 || it->second.count("*") != 0;
    }

    void
    emit(int line, const char *rule, std::string message)
    {
        if (ruleDisabled(rule) || suppressed(line, rule))
            return;
        out.push_back(Finding{rec.path, line, rule, std::move(message)});
    }
};

// ---------------------------------------------------------------------
// file-doc
// ---------------------------------------------------------------------

void
ruleFileDoc(FileCtx &ctx)
{
    if (!ctx.rec.lex.hasFileDoc)
        ctx.emit(1, kFileDoc,
                 "file must open with a /** ... @file ... */ doc header");
}

// ---------------------------------------------------------------------
// banned-api
// ---------------------------------------------------------------------

void
ruleBannedApi(FileCtx &ctx)
{
    const std::vector<Token> &t = ctx.tokens();
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokKind::Ident)
            continue;
        const std::string &name = t[i].text;
        const bool memberCall =
            i > 0 && (t[i - 1].is(".") || t[i - 1].is("->"));
        const bool call = i + 1 < t.size() && t[i + 1].is("(");

        if (kBannedIdents.count(name)) {
            ctx.emit(t[i].line, kBannedApi,
                     "'" + name +
                         "' reads host clock/entropy; use the seeded "
                         "tg::Rng / simulated Tick instead");
            continue;
        }
        if (call && !memberCall && kBannedCalls.count(name)) {
            ctx.emit(t[i].line, kBannedApi,
                     "call to '" + name +
                         "()' is nondeterministic; use System::rng() or "
                         "EventQueue::now()");
            continue;
        }
        if (call && (name == "getenv" || name == "secure_getenv") &&
            !pathContains(ctx.path(), ctx.opts.getenvExemptSubstring)) {
            ctx.emit(t[i].line, kBannedApi,
                     "'" + name +
                         "()' outside sim/config makes runs depend on the "
                         "host environment");
        }
    }
}

// ---------------------------------------------------------------------
// unordered-iter
// ---------------------------------------------------------------------

bool
isUnorderedType(const std::string &s)
{
    return s == "unordered_map" || s == "unordered_set" ||
           s == "unordered_multimap" || s == "unordered_multiset";
}

/** True when the file's path or declared namespaces land in @p wanted. */
bool
inNamespaces(const FileCtx &ctx, const std::set<std::string> &wanted)
{
    for (const std::string &ns : wanted) {
        if (pathContains(ctx.path(), "/" + ns + "/"))
            return true;
    }
    for (const std::string &ns : ctx.rec.namespaces)
        if (wanted.count(ns))
            return true;
    return false;
}

/** True when the file's path or namespaces put it in order-sensitive
 *  territory. */
bool
orderSensitive(const FileCtx &ctx)
{
    return inNamespaces(ctx, kSensitiveNamespaces);
}

/** Names declared in this file with an unordered container type. */
std::set<std::string>
unorderedNames(const std::vector<Token> &t)
{
    std::set<std::string> names;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokKind::Ident || !isUnorderedType(t[i].text))
            continue;
        std::size_t j = i + 1;
        if (j < t.size() && t[j].is("<")) {
            int depth = 0;
            for (; j < t.size(); ++j) {
                if (t[j].is("<"))
                    ++depth;
                else if (t[j].is(">") && --depth == 0) {
                    ++j;
                    break;
                }
            }
        }
        // Skip declaration decorations to reach the declared name.
        while (j < t.size() &&
               (t[j].is("&") || t[j].is("*") || t[j].is("const")))
            ++j;
        if (j < t.size() && t[j].kind == TokKind::Ident &&
            !t[j].is("iterator") && !t[j].is("const_iterator"))
            names.insert(t[j].text);
    }
    return names;
}

void
ruleUnorderedIter(FileCtx &ctx)
{
    if (!orderSensitive(ctx))
        return;
    const std::vector<Token> &t = ctx.tokens();
    const std::set<std::string> names = unorderedNames(t);
    if (names.empty())
        return;

    for (std::size_t i = 0; i < t.size(); ++i) {
        // Range-for whose range expression mentions an unordered name.
        if (t[i].kind == TokKind::Ident && t[i].is("for") &&
            i + 1 < t.size() && t[i + 1].is("(")) {
            int depth = 0;
            std::size_t colon = 0;
            for (std::size_t j = i + 1; j < t.size(); ++j) {
                if (t[j].is("("))
                    ++depth;
                else if (t[j].is(")") && --depth == 0) {
                    if (colon) {
                        for (std::size_t k = colon + 1; k < j; ++k) {
                            if (t[k].kind == TokKind::Ident &&
                                names.count(t[k].text)) {
                                ctx.emit(
                                    t[i].line, kUnorderedIter,
                                    "range-for over unordered container '" +
                                        t[k].text +
                                        "' in an order-sensitive namespace; "
                                        "use std::map or a sorted vector");
                                break;
                            }
                        }
                    }
                    break;
                } else if (t[j].is(":") && depth == 1 && !colon) {
                    colon = j;
                }
            }
        }
        // Explicit iterator walk: name.begin() / name->cbegin() etc.
        if (t[i].kind == TokKind::Ident && names.count(t[i].text) &&
            i + 2 < t.size() && (t[i + 1].is(".") || t[i + 1].is("->"))) {
            const std::string &m = t[i + 2].text;
            if (m == "begin" || m == "cbegin" || m == "rbegin") {
                ctx.emit(t[i].line, kUnorderedIter,
                         "iterator walk over unordered container '" +
                             t[i].text +
                             "' in an order-sensitive namespace; use "
                             "std::map or a sorted vector");
            }
        }
    }
}

// ---------------------------------------------------------------------
// tick-float
// ---------------------------------------------------------------------

bool
floatish(const Token &t)
{
    return isFloatLiteral(t) ||
           (t.kind == TokKind::Ident &&
            (t.is("double") || t.is("float")));
}

void
ruleTickFloat(FileCtx &ctx)
{
    const std::vector<Token> &t = ctx.tokens();
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokKind::Ident || !t[i].is("Tick"))
            continue;

        // Pattern A: "Tick name = <expr containing a float>;"
        if (i + 2 < t.size() && t[i + 1].kind == TokKind::Ident &&
            t[i + 2].is("=")) {
            for (std::size_t j = i + 3; j < t.size() && !t[j].is(";"); ++j) {
                if (floatish(t[j])) {
                    ctx.emit(t[i].line, kTickFloat,
                             "floating-point arithmetic initializing Tick '" +
                                 t[i + 1].text +
                                 "'; ticks are integral nanoseconds — round "
                                 "explicitly and annotate the contract");
                    break;
                }
            }
        }

        // Pattern B/C: static_cast<Tick>(... float ...) or Tick(... float ...)
        std::size_t open = 0;
        if (i >= 2 && t[i - 1].is("<") && t[i - 2].is("static_cast") &&
            i + 2 < t.size() && t[i + 1].is(">") && t[i + 2].is("("))
            open = i + 2;
        else if (i + 1 < t.size() && t[i + 1].is("("))
            open = i + 1;
        if (open) {
            int depth = 0;
            for (std::size_t j = open; j < t.size(); ++j) {
                if (t[j].is("("))
                    ++depth;
                else if (t[j].is(")") && --depth == 0)
                    break;
                else if (depth >= 1 && floatish(t[j])) {
                    ctx.emit(t[i].line, kTickFloat,
                             "floating-point expression cast to Tick; ticks "
                             "are integral nanoseconds — round explicitly "
                             "and annotate the contract");
                    break;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// raw-new
// ---------------------------------------------------------------------

void
ruleRawNew(FileCtx &ctx)
{
    if (pathContains(ctx.path(), ctx.opts.allocatorExemptSubstring))
        return;
    const std::vector<Token> &t = ctx.tokens();
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokKind::Ident)
            continue;
        const bool opOverload = i > 0 && t[i - 1].is("operator");
        if (t[i].is("new") && !opOverload) {
            ctx.emit(t[i].line, kRawNew,
                     "raw 'new'; own allocations with std::make_unique / "
                     "containers so teardown order stays deterministic");
        } else if (t[i].is("delete") && !opOverload) {
            const bool deletedFn = i > 0 && t[i - 1].is("=") &&
                                   i + 1 < t.size() &&
                                   (t[i + 1].is(";") || t[i + 1].is(","));
            if (!deletedFn)
                ctx.emit(t[i].line, kRawNew,
                         "raw 'delete'; use RAII ownership instead");
        }
    }
}

// ---------------------------------------------------------------------
// hot-path-std-function
// ---------------------------------------------------------------------

void
ruleHotStdFunction(FileCtx &ctx)
{
    if (!inNamespaces(ctx, kHotPathNamespaces))
        return;
    const std::vector<Token> &t = ctx.tokens();
    for (std::size_t i = 0; i + 2 < t.size(); ++i) {
        if (t[i].kind == TokKind::Ident && t[i].is("std") &&
            t[i + 1].is("::") && t[i + 2].kind == TokKind::Ident &&
            t[i + 2].is("function")) {
            ctx.emit(t[i].line, kHotStdFunction,
                     "std::function on a scheduling hot path heap-allocates "
                     "per closure; use tg::Fn / tg::Event (sim/event.hpp)");
        }
    }
}

// ---------------------------------------------------------------------
// hot-path-heap-alloc
// ---------------------------------------------------------------------

/** Node-based standard containers that heap-allocate per element.  On
 *  the packet/event hot path they defeat the arena + ring-buffer storage
 *  discipline (DESIGN.md section 14): every push is a malloc, every pop
 *  a free, and the allocator becomes the bottleneck the PacketArena /
 *  BoundedQueue overhaul removed. */
const std::set<std::string> kPerElementContainers = {"deque", "list",
                                                     "forward_list"};

void
ruleHotHeapAlloc(FileCtx &ctx)
{
    if (!inNamespaces(ctx, kHotPathNamespaces))
        return;
    const std::vector<Token> &t = ctx.tokens();
    for (std::size_t i = 0; i + 2 < t.size(); ++i) {
        if (t[i].kind == TokKind::Ident && t[i].is("std") &&
            t[i + 1].is("::") && t[i + 2].kind == TokKind::Ident &&
            kPerElementContainers.count(t[i + 2].text)) {
            ctx.emit(t[i].line, kHotHeapAlloc,
                     "std::" + t[i + 2].text +
                         " on a packet/event hot path heap-allocates per "
                         "element; use net::BoundedQueue, net::PacketArena "
                         "or a vector-backed ring (DESIGN.md section 14)");
        }
    }
}

// ---------------------------------------------------------------------
// global-mutable-state
// ---------------------------------------------------------------------

const char *
scopeNoun(VarDecl::Scope s)
{
    switch (s) {
    case VarDecl::Scope::Namespace: return "namespace-scope variable";
    case VarDecl::Scope::StaticLocal: return "function-local static";
    case VarDecl::Scope::StaticMember: return "static data member";
    }
    return "variable";
}

void
ruleGlobalMutableState(FileCtx &ctx, std::vector<ShardAnnotation> *ann)
{
    if (!inNamespaces(ctx, kShardNamespaces))
        return;
    for (const VarDecl &v : ctx.rec.vars) {
        if (v.isConst || v.isThreadLocal)
            continue; // immutable, or per-shard by construction
        auto it = ctx.rec.lex.shards.find(v.line);
        if (it != ctx.rec.lex.shards.end()) {
            // Triaged: record the annotation instead of a finding.
            if (ann != nullptr && !ctx.ruleDisabled(kGlobalMutable))
                ann->push_back(ShardAnnotation{ctx.path(), v.line, v.name,
                                               it->second});
            continue;
        }
        ctx.emit(v.line, kGlobalMutable,
                 std::string("mutable ") + scopeNoun(v.scope) + " '" +
                     v.name +
                     "' becomes a cross-shard race once the event engine "
                     "is sharded; demote it into an owning object, make "
                     "it thread_local, or triage it with 'tglint: "
                     "shard(local|shared-guarded)'");
    }
}

// ---------------------------------------------------------------------
// pointer-keyed-order
// ---------------------------------------------------------------------

/** Ordered associative containers whose key is the first template arg. */
bool
isOrderedAssoc(const std::string &s)
{
    return s == "map" || s == "set" || s == "multimap" || s == "multiset";
}

/** Names declared in this file as std::vector<T *>. */
std::set<std::string>
pointerVectorNames(const std::vector<Token> &t)
{
    std::set<std::string> names;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokKind::Ident || !t[i].is("vector") ||
            i + 1 >= t.size() || !t[i + 1].is("<"))
            continue;
        int depth = 0;
        bool ptr = false;
        std::size_t j = i + 1;
        for (; j < t.size(); ++j) {
            if (t[j].is("<"))
                ++depth;
            else if (t[j].is(">") && --depth == 0) {
                ++j;
                break;
            } else if (t[j].is("*"))
                ptr = true;
        }
        if (!ptr)
            continue;
        while (j < t.size() &&
               (t[j].is("&") || t[j].is("*") || t[j].is("const")))
            ++j;
        if (j < t.size() && t[j].kind == TokKind::Ident)
            names.insert(t[j].text);
    }
    return names;
}

void
rulePointerKeyedOrder(FileCtx &ctx)
{
    if (!inNamespaces(ctx, kShardNamespaces))
        return;
    const std::vector<Token> &t = ctx.tokens();

    // std::{map,set,multimap,multiset}<K, ...> with a pointer K.
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (t[i].kind != TokKind::Ident || !isOrderedAssoc(t[i].text) ||
            !t[i + 1].is("<"))
            continue;
        // Require std:: qualification so a variable named `set` compared
        // with `<` cannot fire.
        if (!(i >= 2 && t[i - 1].is("::") && t[i - 2].is("std")))
            continue;
        int depth = 0;
        bool ptrKey = false;
        for (std::size_t j = i + 1; j < t.size(); ++j) {
            if (t[j].is("<")) {
                ++depth;
            } else if (t[j].is(">")) {
                if (--depth == 0)
                    break;
            } else if (t[j].is(",") && depth == 1) {
                break; // end of the key type
            } else if (t[j].is("*")) {
                ptrKey = true;
            }
        }
        if (ptrKey)
            ctx.emit(t[i].line, kPointerKeyed,
                     "std::" + t[i].text +
                         " keyed by a pointer orders elements by allocation "
                         "address — iteration order changes across runs and "
                         "shard counts; key by a stable id instead");
    }

    // std::sort(v.begin(), v.end()) over a vector of pointers: the
    // two-argument form compares addresses.
    const std::set<std::string> ptrVecs = pointerVectorNames(t);
    if (ptrVecs.empty())
        return;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (t[i].kind != TokKind::Ident ||
            !(t[i].is("sort") || t[i].is("stable_sort")) ||
            !t[i + 1].is("("))
            continue;
        int depth = 0;
        int commas = 0;
        bool named = false;
        for (std::size_t j = i + 1; j < t.size(); ++j) {
            if (t[j].is("(")) {
                ++depth;
            } else if (t[j].is(")")) {
                if (--depth == 0)
                    break;
            } else if (t[j].is(",") && depth == 1) {
                ++commas;
            } else if (t[j].kind == TokKind::Ident &&
                       ptrVecs.count(t[j].text)) {
                named = true;
            }
        }
        if (named && commas == 1)
            ctx.emit(t[i].line, kPointerKeyed,
                     "sorting a vector of pointers without a comparator "
                     "orders it by allocation address — derive the order "
                     "from a stable id instead");
    }
}

// ---------------------------------------------------------------------
// include-cycle
// ---------------------------------------------------------------------

void
ruleIncludeCycle(const ProjectIndex &index, const Options &opts,
                 std::vector<Finding> &out)
{
    const std::vector<FileRecord> &files = index.files();
    const std::size_t n = files.size();

    // Adjacency with the include line that creates each edge.
    std::vector<std::vector<std::pair<std::size_t, int>>> adj(n);
    for (std::size_t i = 0; i < n; ++i)
        for (const IncludeEdge &e : files[i].includes) {
            const std::size_t j = index.resolve(i, e.target);
            if (j < n)
                adj[i].push_back({j, e.line});
        }

    enum { White, Grey, Black };
    std::vector<int> color(n, White);
    std::vector<std::size_t> stack;
    std::set<std::string> reported;

    auto report = [&](std::vector<std::size_t> cycle) {
        // Canonical rotation: lexicographically smallest path first.
        std::size_t lead = 0;
        for (std::size_t k = 1; k < cycle.size(); ++k)
            if (files[cycle[k]].path < files[cycle[lead]].path)
                lead = k;
        std::rotate(cycle.begin(), cycle.begin() + lead, cycle.end());

        std::string key;
        std::string chain;
        for (std::size_t k : cycle) {
            key += files[k].path + "|";
            chain += files[k].path + " -> ";
        }
        chain += files[cycle[0]].path;
        if (!reported.insert(key).second)
            return;

        // Anchor the finding on the include in the lead file that
        // points at the next file in the cycle.
        const std::size_t head = cycle[0];
        const std::size_t next = cycle.size() > 1 ? cycle[1] : cycle[0];
        int line = 1;
        for (const IncludeEdge &e : files[head].includes)
            if (index.resolve(head, e.target) == next) {
                line = e.line;
                break;
            }

        FileCtx ctx{files[head], opts, out};
        ctx.emit(line, kIncludeCycle,
                 "include cycle: " + chain +
                     "; break it with a forward declaration or by moving "
                     "the shared types into their own header");
    };

    // Iterative DFS over every component, deterministic in index order.
    for (std::size_t root = 0; root < n; ++root) {
        if (color[root] != White)
            continue;
        std::vector<std::pair<std::size_t, std::size_t>> work; // node, edge
        work.push_back({root, 0});
        color[root] = Grey;
        stack.push_back(root);
        while (!work.empty()) {
            auto &[node, edge] = work.back();
            if (edge < adj[node].size()) {
                const std::size_t next = adj[node][edge].first;
                ++edge;
                if (color[next] == White) {
                    color[next] = Grey;
                    stack.push_back(next);
                    work.push_back({next, 0});
                } else if (color[next] == Grey) {
                    // Back edge: the cycle is the stack from `next` on.
                    auto at = std::find(stack.begin(), stack.end(), next);
                    report(std::vector<std::size_t>(at, stack.end()));
                }
            } else {
                color[node] = Black;
                stack.pop_back();
                work.pop_back();
            }
        }
    }
}

} // namespace

// ---------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------

const std::vector<std::string> &
allRules()
{
    static const std::vector<std::string> rules = {
        kBannedApi,      kUnorderedIter, kTickFloat,
        kRawNew,         kFileDoc,       kHotStdFunction,
        kHotHeapAlloc,   kGlobalMutable, kPointerKeyed,
        kIncludeCycle,
    };
    return rules;
}

std::string
ruleDescription(const std::string &rule)
{
    static const std::map<std::string, std::string> desc = {
        {kBannedApi, "wall-clock / host-entropy API leaks into the model"},
        {kUnorderedIter,
         "iteration over an unordered container in an order-sensitive "
         "namespace"},
        {kTickFloat, "floating-point arithmetic feeding an integral Tick"},
        {kRawNew, "raw new/delete outside the allocator shims"},
        {kFileDoc, "missing leading @file documentation header"},
        {kHotStdFunction,
         "std::function on a scheduling hot path heap-allocates"},
        {kHotHeapAlloc,
         "per-element-allocating container (deque/list) on a packet/event "
         "hot path"},
        {kGlobalMutable,
         "mutable namespace-scope/static state in a shard namespace"},
        {kPointerKeyed,
         "container ordered by pointer values (address-dependent order)"},
        {kIncludeCycle, "cyclic quoted-include edges"},
    };
    auto it = desc.find(rule);
    return it == desc.end() ? std::string() : it->second;
}

void
runRules(const ProjectIndex &index, const Options &opts,
         std::vector<Finding> &out,
         std::vector<ShardAnnotation> *annotations)
{
    for (const FileRecord &rec : index.files()) {
        FileCtx ctx{rec, opts, out};
        ruleFileDoc(ctx);
        ruleBannedApi(ctx);
        ruleUnorderedIter(ctx);
        ruleTickFloat(ctx);
        ruleRawNew(ctx);
        ruleHotStdFunction(ctx);
        ruleHotHeapAlloc(ctx);
        ruleGlobalMutableState(ctx, annotations);
        rulePointerKeyedOrder(ctx);
    }
    ruleIncludeCycle(index, opts, out);

    std::sort(out.begin(), out.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
}

void
lintSource(const std::string &path, const std::string &source,
           const Options &opts, std::vector<Finding> &out)
{
    ProjectIndex index;
    index.addSource(path, source);
    index.finalize();
    runRules(index, opts, out, nullptr);
}

bool
lintPath(const std::string &path, const Options &opts,
         std::vector<Finding> &out)
{
    ProjectIndex index;
    const bool ok = index.addPath(path, opts);
    index.finalize();
    runRules(index, opts, out, nullptr);
    return ok;
}

} // namespace tglint

/**
 * @file
 * tglint command-line driver.
 *
 * Usage:
 *   tglint [--json] [--disable <rule>]... [--list-rules] <path>...
 *
 * Paths may be files or directories (recursed for *.cpp / *.hpp / *.h).
 * Exit status: 0 clean, 1 findings reported, 2 usage or I/O error.
 */

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "tglint.hpp"

int
main(int argc, char **argv)
{
    bool json = false;
    tglint::Options opts;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            json = true;
        } else if (arg == "--list-rules") {
            for (const std::string &r : tglint::allRules())
                std::cout << r << "\n";
            return 0;
        } else if (arg == "--disable") {
            if (i + 1 >= argc) {
                std::cerr << "tglint: --disable needs a rule name\n";
                return 2;
            }
            opts.disabledRules.push_back(argv[++i]);
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: tglint [--json] [--disable <rule>]... "
                         "[--list-rules] <path>...\n";
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "tglint: unknown option '" << arg << "'\n";
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty()) {
        std::cerr << "usage: tglint [--json] [--disable <rule>]... "
                     "[--list-rules] <path>...\n";
        return 2;
    }

    std::vector<tglint::Finding> findings;
    bool ok = true;
    for (const std::string &p : paths)
        ok = tglint::lintPath(p, opts, findings) && ok;

    if (json)
        tglint::printJson(findings, std::cout);
    else
        tglint::printHuman(findings, std::cout);

    if (!ok) {
        std::cerr << "tglint: some paths could not be read\n";
        return 2;
    }
    return findings.empty() ? 0 : 1;
}

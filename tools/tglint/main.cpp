/**
 * @file
 * tglint command-line driver.
 *
 * Usage:
 *   tglint [--json] [--sarif=<path>] [--baseline=<file>]
 *          [--disable <rule>]... [--list-rules] <path>...
 *
 * Paths may be files or directories (recursed for *.cpp / *.hpp / *.h).
 * The CLI (not the library) applies the project scan policy: the rule
 * fixture corpus under tests/tools/fixtures is skipped entirely, and
 * file-doc is relaxed for files under tests/.
 *
 * Exit status: 0 clean (all findings baselined), 1 new findings,
 * 2 usage or I/O error.
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "index.hpp"
#include "tglint.hpp"

namespace {

/** Parse "--flag=value"; returns true and sets @p value on match. */
bool
flagValue(const std::string &arg, const char *flag, std::string &value)
{
    const std::string prefix = std::string(flag) + "=";
    if (arg.compare(0, prefix.size(), prefix) != 0)
        return false;
    value = arg.substr(prefix.size());
    return true;
}

void
usage(std::ostream &os)
{
    os << "usage: tglint [--json] [--sarif=<path>] [--baseline=<file>]\n"
          "              [--disable <rule>]... [--list-rules] <path>...\n";
}

} // namespace

int
main(int argc, char **argv)
{
    bool json = false;
    std::string sarifPath;
    std::string baselinePath;
    tglint::Options opts;
    // Project scan policy: fixture corpora violate rules on purpose and
    // are skipped; tests keep every determinism rule but not file-doc.
    opts.skipSubstrings.push_back("tests/tools/fixtures");
    opts.relaxedPathSubstrings.push_back("tests/");
    opts.relaxedRules.push_back("file-doc");

    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string value;
        if (arg == "--json") {
            json = true;
        } else if (flagValue(arg, "--sarif", value)) {
            sarifPath = value;
        } else if (flagValue(arg, "--baseline", value)) {
            baselinePath = value;
        } else if (arg == "--list-rules") {
            for (const std::string &r : tglint::allRules())
                std::cout << r << "\n";
            return 0;
        } else if (arg == "--disable") {
            if (i + 1 >= argc) {
                std::cerr << "tglint: --disable needs a rule name\n";
                return 2;
            }
            opts.disabledRules.push_back(argv[++i]);
        } else if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "tglint: unknown option '" << arg << "'\n";
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty()) {
        usage(std::cerr);
        return 2;
    }

    tglint::Baseline baseline;
    if (!baselinePath.empty()) {
        std::string err;
        if (!tglint::loadBaseline(baselinePath, baseline, err)) {
            std::cerr << "tglint: " << err << "\n";
            return 2;
        }
    }

    tglint::ProjectIndex index;
    bool ok = true;
    for (const std::string &p : paths)
        ok = index.addPath(p, opts) && ok;
    index.finalize();

    std::vector<tglint::Finding> findings;
    std::vector<tglint::ShardAnnotation> annotations;
    tglint::runRules(index, opts, findings, &annotations);

    tglint::Report report = tglint::applyBaseline(findings, baseline);
    report.shardAnnotations = annotations;

    if (!sarifPath.empty()) {
        std::ofstream sarif(sarifPath, std::ios::binary);
        if (!sarif) {
            std::cerr << "tglint: cannot write '" << sarifPath << "'\n";
            return 2;
        }
        tglint::printSarif(report, sarif);
    }

    if (json)
        tglint::printJson(report, std::cout);
    else
        tglint::printHuman(report, std::cout);

    if (!ok) {
        std::cerr << "tglint: some paths could not be read\n";
        return 2;
    }
    return report.fresh.empty() ? 0 : 1;
}

/**
 * @file
 * tglint: the Telegraphos determinism & invariant linter.
 *
 * A standalone token-level static-analysis tool (no libclang) that walks
 * C++ sources and rejects the hazard classes that silently break the
 * simulator's bit-for-bit determinism contract (DESIGN.md section 7):
 *
 *   banned-api      std::rand / time() / wall-clock chrono / getenv etc.
 *   unordered-iter  iteration over std::unordered_{map,set} in the
 *                   order-sensitive namespaces (net, hib, coherence, sim)
 *   tick-float      floating-point arithmetic feeding a Tick value
 *   raw-new         raw new / delete outside allocator shims
 *   file-doc        missing leading "@file" documentation header
 *
 * Any finding can be suppressed with a justification comment on the same
 * line or the line immediately above:
 *
 *     // tglint: allow(tick-float)  rounding contract documented here
 */

#ifndef TELEGRAPHOS_TOOLS_TGLINT_HPP
#define TELEGRAPHOS_TOOLS_TGLINT_HPP

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace tglint {

/** One lint violation. */
struct Finding
{
    std::string file;    ///< path as given to the scanner
    int line = 0;        ///< 1-based line number
    std::string rule;    ///< rule slug ("banned-api", ...)
    std::string message; ///< human-readable explanation
};

/** Scanner configuration. */
struct Options
{
    /** Disable individual rules by slug. */
    std::vector<std::string> disabledRules;

    /** Paths whose findings for getenv are exempt (the config loader). */
    std::string getenvExemptSubstring = "sim/config";

    /** Paths exempt from the raw-new rule (allocator shims). */
    std::string allocatorExemptSubstring = "/alloc";
};

/** All rule slugs tglint knows, in reporting order. */
const std::vector<std::string> &allRules();

/**
 * Lint one in-memory source.  @p path is used for reporting and for the
 * path-scoped exemptions; findings are appended to @p out.
 */
void lintSource(const std::string &path, const std::string &source,
                const Options &opts, std::vector<Finding> &out);

/**
 * Lint a file or directory tree (recursing into *.hpp / *.cpp).
 * @return false when a path could not be read.
 */
bool lintPath(const std::string &path, const Options &opts,
              std::vector<Finding> &out);

/** Render findings as human-readable "file:line: [rule] message" lines. */
void printHuman(const std::vector<Finding> &findings, std::ostream &os);

/** Render findings as a JSON document {"count":N,"findings":[...]}. */
void printJson(const std::vector<Finding> &findings, std::ostream &os);

} // namespace tglint

#endif // TELEGRAPHOS_TOOLS_TGLINT_HPP

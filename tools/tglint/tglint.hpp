/**
 * @file
 * tglint: the Telegraphos determinism & shard-safety analyzer.
 *
 * A standalone two-pass static-analysis tool (no libclang) for the
 * hazard classes that silently break the simulator's bit-for-bit
 * determinism contract and — ahead of the sharded PDES engine — its
 * cross-shard safety (DESIGN.md section 7).  Pass 1 builds a
 * project-wide index over every source handed to it (token streams,
 * declared scopes, mutable globals, include edges); pass 2 runs the
 * rule families against the index:
 *
 *   banned-api           std::rand / time() / wall-clock chrono / getenv
 *   unordered-iter       iteration over std::unordered_* in the
 *                        order-sensitive namespaces (net, hib,
 *                        coherence, sim)
 *   tick-float           floating-point arithmetic feeding a Tick
 *   raw-new              raw new / delete outside allocator shims
 *   file-doc             missing leading "@file" documentation header
 *   hot-path-std-function  std::function on scheduling hot paths
 *   global-mutable-state   non-const namespace-scope / static-local /
 *                        static-member state in the shard namespaces
 *                        (sim, net, hib, node, coherence) — a
 *                        cross-shard race once the engine is sharded
 *   pointer-keyed-order  ordered containers keyed by pointers, or
 *                        sorting pointer vectors by address — iteration
 *                        order then depends on allocation addresses
 *   include-cycle        cyclic quoted-include edges
 *
 * Any finding can be suppressed with a justification comment on the
 * same line or the line immediately above:
 *
 *     // tglint: allow(tick-float)  rounding contract documented here
 *
 * global-mutable-state additionally understands a triage annotation
 * that the analyzer records and reports (JSON "shardAnnotations"):
 *
 *     // tglint: shard(local)           per-shard / thread_local by design
 *     // tglint: shard(shared-guarded)  shared; mutation single-threaded
 *
 * A committed baseline (tools/tglint/baseline.json) ratchets findings:
 * pre-existing triaged entries pass, new findings fail.  --sarif emits
 * a SARIF 2.1.0 report for CI annotation.
 */

#ifndef TELEGRAPHOS_TOOLS_TGLINT_HPP
#define TELEGRAPHOS_TOOLS_TGLINT_HPP

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace tglint {

class ProjectIndex;

/** One lint violation. */
struct Finding
{
    std::string file;    ///< path as given to the scanner
    int line = 0;        ///< 1-based line number
    std::string rule;    ///< rule slug ("banned-api", ...)
    std::string message; ///< human-readable explanation
};

/** One recorded "tglint: shard(...)" triage annotation. */
struct ShardAnnotation
{
    std::string file;   ///< path as given to the scanner
    int line = 0;       ///< 1-based line of the annotated declaration
    std::string symbol; ///< the annotated variable
    std::string kind;   ///< "local" or "shared-guarded"
};

/** Scanner configuration. */
struct Options
{
    /** Disable individual rules by slug. */
    std::vector<std::string> disabledRules;

    /** Paths whose findings for getenv are exempt (the config loader). */
    std::string getenvExemptSubstring = "sim/config";

    /** Paths exempt from the raw-new rule (allocator shims). */
    std::string allocatorExemptSubstring = "/alloc";

    /** Files skipped entirely (rule-fixture corpora violate rules on
     *  purpose).  Substring match; empty by default for library users —
     *  the CLI adds "tests/tools/fixtures". */
    std::vector<std::string> skipSubstrings;

    /** Paths linted with a relaxed rule set: any rule in relaxedRules
     *  is off for files whose path contains one of these substrings. */
    std::vector<std::string> relaxedPathSubstrings;

    /** Rules disabled on the relaxed paths (CLI default: file-doc off
     *  under tests/). */
    std::vector<std::string> relaxedRules;
};

/** One triaged baseline entry: up to @p count findings of @p rule in
 *  @p file are pre-existing and pass the ratchet. */
struct BaselineEntry
{
    std::string file; ///< repo-relative path (suffix-matched)
    std::string rule; ///< rule slug
    int count = 0;    ///< triaged finding count
};

/** A parsed baseline file. */
struct Baseline
{
    std::vector<BaselineEntry> entries;
};

/** The analyzer's result after baseline application. */
struct Report
{
    std::vector<Finding> fresh;       ///< NEW findings (fail the build)
    std::vector<Finding> baselined;   ///< matched a baseline entry
    std::vector<BaselineEntry> stale; ///< baseline capacity never used
    std::vector<ShardAnnotation> shardAnnotations; ///< triage registry
};

/** All rule slugs tglint knows, in reporting order. */
const std::vector<std::string> &allRules();

/** One-line description of @p rule (empty for unknown slugs). */
std::string ruleDescription(const std::string &rule);

// ---------------------------------------------------------------------
// Pass 2: rule families over a finished index
// ---------------------------------------------------------------------

/**
 * Run every rule family against @p index.  Findings are appended to
 * @p out sorted by (file, line, rule); shard annotations that
 * suppressed a global-mutable-state finding are appended to
 * @p annotations when non-null.
 */
void runRules(const ProjectIndex &index, const Options &opts,
              std::vector<Finding> &out,
              std::vector<ShardAnnotation> *annotations = nullptr);

// ---------------------------------------------------------------------
// Single-file convenience API (unit tests, editor integration)
// ---------------------------------------------------------------------

/**
 * Lint one in-memory source.  @p path is used for reporting and for the
 * path-scoped exemptions; findings are appended to @p out.  Cross-file
 * rules (include-cycle) see only this file.
 */
void lintSource(const std::string &path, const std::string &source,
                const Options &opts, std::vector<Finding> &out);

/**
 * Lint a file or directory tree (recursing into *.hpp / *.cpp).
 * @return false when a path could not be read.
 */
bool lintPath(const std::string &path, const Options &opts,
              std::vector<Finding> &out);

// ---------------------------------------------------------------------
// Baseline ratchet
// ---------------------------------------------------------------------

/**
 * Parse a baseline JSON document ({"schema":"tglint-baseline-v1",
 * "entries":[{"file":...,"rule":...,"count":N},...]}).
 * @return false and sets @p err on parse failure.
 */
bool loadBaseline(const std::string &path, Baseline &out, std::string &err);

/**
 * Split @p findings into fresh vs baselined.  A finding matches a
 * baseline entry when the rules are equal and the entry's file equals
 * the finding's path or is a path suffix of it ("src/sim/log.cpp"
 * matches "/repo/src/sim/log.cpp"); each entry absorbs at most
 * `count` findings.  Entries with unused capacity are reported stale.
 */
Report applyBaseline(const std::vector<Finding> &findings,
                     const Baseline &baseline);

// ---------------------------------------------------------------------
// Output
// ---------------------------------------------------------------------

/** Render findings as human-readable "file:line: [rule] message" lines. */
void printHuman(const std::vector<Finding> &findings, std::ostream &os);

/** Render findings as a JSON document {"count":N,"findings":[...]}. */
void printJson(const std::vector<Finding> &findings, std::ostream &os);

/** Render a full report (fresh + baselined + stale + annotations). */
void printHuman(const Report &report, std::ostream &os);

/** JSON document with counts, fresh findings, stale entries and the
 *  shard-annotation registry. */
void printJson(const Report &report, std::ostream &os);

/** SARIF 2.1.0 document; baselined findings carry baselineState
 *  "unchanged", fresh ones "new". */
void printSarif(const Report &report, std::ostream &os);

} // namespace tglint

#endif // TELEGRAPHOS_TOOLS_TGLINT_HPP

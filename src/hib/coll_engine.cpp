/**
 * @file
 * NIC-resident collective state machines: tree up-combine and down
 * fan-out, descriptor arming, and wire-failure synthesis.
 */

#include "hib/coll_engine.hpp"

#include <algorithm>

#include "hib/hib.hpp"
#include "sim/invariant.hpp"

namespace tg::hib {

namespace {

/** Pack op / error flag / root rank into Packet::value2. */
Word
packControl(CollOp op, bool error, std::uint32_t root)
{
    return Word(op) | (error ? Word(0x100) : 0) | (Word(root) << 16);
}

CollOp
controlOp(Word v)
{
    return static_cast<CollOp>(v & 0xff);
}

bool
controlError(Word v)
{
    return (v & 0x100) != 0;
}

std::uint32_t
controlRoot(Word v)
{
    return std::uint32_t(v >> 16);
}

trace::OpKind
kindFor(CollOp op)
{
    switch (op) {
      case CollOp::Barrier: return trace::OpKind::CollBarrier;
      case CollOp::Bcast: return trace::OpKind::CollBcast;
      case CollOp::Reduce:
      case CollOp::AllReduce: return trace::OpKind::CollReduce;
      case CollOp::None: break;
    }
    return trace::OpKind::Other;
}

} // namespace

// ---------------------------------------------------------------------
// CollGroup
// ---------------------------------------------------------------------

CollGroup::CollGroup(std::uint32_t id, std::vector<NodeId> members,
                     const net::TopologySpec &topo, std::size_t fanout)
    : _id(id), _members(std::move(members)), _topo(topo), _fanout(fanout)
{
    TG_AUDIT(!_members.empty(), "CollGroup %u: no members", id);
    for (std::size_t r = 0; r < _members.size(); ++r) {
        const bool fresh = _rankByNode.emplace(_members[r], r).second;
        if (!fresh)
            fatal("CollGroup %u: node %u listed twice", id,
                  unsigned(_members[r]));
    }
}

std::size_t
CollGroup::rankOf(NodeId node) const
{
    const auto it = _rankByNode.find(node);
    if (it == _rankByNode.end())
        panic("CollGroup %u: node %u is not a member", _id, unsigned(node));
    return it->second;
}

const net::CollTree &
CollGroup::tree(std::size_t root_rank)
{
    TG_AUDIT(root_rank < _members.size(), "CollGroup %u: root rank %zu "
             "out of range", _id, root_rank);
    auto it = _trees.find(root_rank);
    if (it == _trees.end())
        it = _trees
                 .emplace(root_rank, net::buildCollTree(_topo, _members,
                                                        root_rank, _fanout))
                 .first;
    return it->second;
}

// ---------------------------------------------------------------------
// CollEngine
// ---------------------------------------------------------------------

CollEngine::CollEngine(System &sys, const std::string &hib_name, Hib &hib)
    : SimObject(sys, hib_name + ".coll"), _hib(hib)
{
    // Registered unconditionally (like hib.wire_failures): the tg-stats-v1
    // surface always carries the collective counters, zero or not.
    sys.stats().add(hib_name + ".coll_barriers", &_barriers);
    sys.stats().add(hib_name + ".coll_bcast_msgs", &_bcastMsgs);
    sys.stats().add(hib_name + ".coll_combines", &_combines);
    sys.stats().add(hib_name + ".coll_desc_now", &_descNow);
    sys.stats().add(hib_name + ".coll_desc_peak", &_descPeak);
    sys.stats().add(hib_name + ".coll_errors", &_errors);
    _traceComp = sys.tracer().registerComponent(hib_name + ".coll");
}

void
CollEngine::registerGroup(CollGroupPtr group)
{
    TG_AUDIT(group != nullptr, "%s: null group", _name.c_str());
    _groups[group->id()] = std::move(group);
}

void
CollEngine::stage(std::uint32_t ctx_idx, std::vector<Word> *io)
{
    _staged[ctx_idx] = io;
}

CollGroup *
CollEngine::groupOf(std::uint32_t id)
{
    const auto it = _groups.find(id);
    return it == _groups.end() ? nullptr : it->second.get();
}

std::size_t
CollEngine::myRank(CollGroup &g) const
{
    return g.rankOf(_hib.nodeId());
}

CollEngine::Pending &
CollEngine::ensurePending(CollGroup &g, std::uint64_t seq, CollOp op,
                          std::uint32_t root)
{
    Pending &p = _pending[Key{g.id(), seq}];
    if (p.op == CollOp::None) {
        p.op = op;
        p.root = root;
        // One lifecycle op per member per collective; packets between
        // NICs ride on the sender's id, local completion closes ours.
        p.traceId = _sys.tracer().beginOp(kindFor(op));
    }
    // MPI ordering contract: every member issues the same collectives in
    // the same order on a group, so descriptor seq and packet seq agree.
    TG_AUDIT(p.op == op && p.root == root,
             "%s: group %u seq %llu op mismatch (members must issue "
             "collectives in identical order)",
             _name.c_str(), g.id(), (unsigned long long)seq);
    return p;
}

void
CollEngine::issue(std::uint32_t ctx_idx, const CollArgs &args, OnWord done)
{
    CollGroup *g = groupOf(args.group);
    if (!g || args.op == CollOp::None) {
        warn("%s: collective GO with bad descriptor (group %u)",
             _name.c_str(), args.group);
        done(0);
        return;
    }
    const std::uint64_t seq = _nextSeq[args.group]++;
    Pending &p = ensurePending(*g, seq, args.op, args.root);
    TG_AUDIT(!p.armed, "%s: group %u seq %llu armed twice", _name.c_str(),
             args.group, (unsigned long long)seq);
    p.armed = true;
    p.partial += args.datum;
    p.done = std::move(done);
    if (const auto it = _staged.find(ctx_idx); it != _staged.end()) {
        p.io = it->second;
        _staged.erase(it);
    }
    _descNow += 1;
    _descPeak.set(std::max(_descPeak.value(), _descNow.value()));
    _sys.tracer().record(p.traceId, trace::Span::CpuIssue, now(),
                         _traceComp);
    tryAdvance(*g, seq, p);
}

void
CollEngine::handlePacket(net::Packet &&pkt, OnDone finished)
{
    CollGroup *g = groupOf(std::uint32_t(pkt.addr));
    if (!g) {
        warn("%s: collective packet for unknown group %llu", _name.c_str(),
             (unsigned long long)pkt.addr);
        finished();
        return;
    }
    const CollOp op = controlOp(pkt.value2);
    const std::uint32_t root = controlRoot(pkt.value2);
    const bool err = controlError(pkt.value2);
    const std::uint64_t seq = pkt.seq;

    if (pkt.type == net::PacketType::CollUp) {
        // Fold the child's partial through the combine path: barrier
        // arrivals are a counter bump, reduces a full atomic-unit RMW.
        const Tick cost = op == CollOp::Barrier ? config().counterOp
                                                : config().hibAtomic;
        ensurePending(*g, seq, op, root);
        const Key key{g->id(), seq};
        schedule(cost, [this, key, value = pkt.value, err,
                        finished = std::move(finished)]() mutable {
            const auto it = _pending.find(key);
            if (it == _pending.end()) {
                finished();
                return;
            }
            Pending &p = it->second;
            CollGroup *grp = groupOf(key.first);
            if (p.op != CollOp::Barrier)
                ++_combines;
            p.partial += value;
            p.error |= err;
            ++p.arrived;
            tryAdvance(*grp, key.second, p);
            finished();
        });
        return;
    }

    Pending &p = ensurePending(*g, seq, op, root);
    p.error |= err;
    applyDown(*g, seq, p, pkt);
    finished();
}

void
CollEngine::onWireFailure(const net::Packet &pkt)
{
    CollGroup *g = groupOf(std::uint32_t(pkt.addr));
    if (!g)
        return;
    const CollOp op = controlOp(pkt.value2);
    const std::uint32_t root = controlRoot(pkt.value2);
    const std::uint64_t seq = pkt.seq;
    Pending &p = ensurePending(*g, seq, op, root);
    p.error = true;

    if (pkt.type == net::PacketType::CollUp) {
        // A child's arrival is gone for good: synthesize it (with its
        // partial, which the victim-side packet copy still carries) so
        // the collective terminates; the error flag rides up and down.
        if (p.op != CollOp::Barrier)
            ++_combines;
        p.partial += pkt.value;
        ++p.arrived;
        tryAdvance(*g, seq, p);
        return;
    }
    // A release/payload meant for this NIC is gone: synthesize the
    // receipt so this whole subtree still completes.
    applyDown(*g, seq, p, pkt);
}

void
CollEngine::applyDown(CollGroup &g, std::uint64_t seq, Pending &p,
                      const net::Packet &pkt)
{
    if (p.released)
        return; // duplicate (wire-failure synthesis raced a late copy)
    p.released = true;
    p.downValue = pkt.value;
    if (pkt.bulk)
        p.payload = pkt.bulk;
    // Forward to this node's subtree immediately — no host on the path.
    sendDown(g, seq, p);
    tryAdvance(g, seq, p);
}

void
CollEngine::sendUp(CollGroup &g, std::uint64_t seq, Pending &p)
{
    const net::CollTree &tree = g.tree(p.root);
    const std::size_t rank = myRank(g);
    net::Packet pkt;
    pkt.type = net::PacketType::CollUp;
    pkt.dst = g.members()[tree.parent[rank]];
    pkt.addr = g.id();
    pkt.seq = seq;
    pkt.value = p.partial;
    pkt.value2 = packControl(p.op, p.error, p.root);
    pkt.payloadBytes = 16;
    pkt.traceId = p.traceId;
    _hib.inject(std::move(pkt), /*track=*/false);
}

void
CollEngine::sendDown(CollGroup &g, std::uint64_t seq, Pending &p)
{
    const net::CollTree &tree = g.tree(p.root);
    const std::size_t rank = myRank(g);
    for (const std::size_t child : tree.children[rank]) {
        net::Packet pkt;
        pkt.type = net::PacketType::CollDown;
        pkt.dst = g.members()[child];
        pkt.addr = g.id();
        pkt.seq = seq;
        pkt.value = p.downValue;
        pkt.value2 = packControl(p.op, p.error, p.root);
        pkt.payloadBytes = 8;
        if (p.payload) {
            pkt.bulk = p.payload;
            pkt.payloadBytes =
                8 + std::uint32_t(p.payload->size()) * 8;
        }
        pkt.traceId = p.traceId;
        _hib.inject(std::move(pkt), /*track=*/false);
        _bcastMsgs += 1;
    }
}

void
CollEngine::tryAdvance(CollGroup &g, std::uint64_t seq, Pending &p)
{
    if (p.op == CollOp::None || !p.armed)
        return;
    const net::CollTree &tree = g.tree(p.root);
    const std::size_t rank = myRank(g);
    const std::size_t nchild = tree.children[rank].size();

    if (p.op == CollOp::Bcast) {
        if (rank == p.root && !p.released) {
            // Root: stage the payload and start the fan-out.
            p.released = true;
            p.payload = std::make_shared<std::vector<Word>>(
                p.io ? *p.io : std::vector<Word>{});
            sendDown(g, seq, p);
        }
        if (p.released)
            complete(g, seq, p, 0);
        return;
    }

    // Up phase (barrier / reduce / all-reduce).
    if (!p.upSent && p.arrived == nchild) {
        p.upSent = true;
        if (rank == p.root) {
            // Turnaround: the root's combine is the global result.
            p.released = true;
            p.downValue = p.partial;
            if (p.op != CollOp::Reduce)
                sendDown(g, seq, p);
            complete(g, seq, p,
                     p.op == CollOp::Barrier ? 0 : p.downValue);
            return;
        }
        sendUp(g, seq, p);
        if (p.op == CollOp::Reduce) {
            // MPI semantics: a non-root reduce completes once its
            // contribution is on the wire; only the root holds the sum.
            complete(g, seq, p, 0);
            return;
        }
    }
    if (p.upSent && p.released)
        complete(g, seq, p,
                 p.op == CollOp::Barrier ? 0 : p.downValue);
}

void
CollEngine::complete(CollGroup &g, std::uint64_t seq, Pending &p,
                     Word result)
{
    if (p.error)
        ++_errors;
    if (p.op == CollOp::Barrier)
        ++_barriers;
    _descNow -= 1;

    // Broadcast receivers DMA the payload into the staged host buffer
    // (delivered verbatim: io ends up exactly the root's words).
    Tick dma = 0;
    if (p.op == CollOp::Bcast && p.io && p.payload &&
        myRank(g) != p.root) {
        p.io->assign(p.payload->begin(), p.payload->end());
        dma = config().prototype == Prototype::TelegraphosI
                  ? config().hibSram
                  : config().tcWriteTxn(
                        std::uint32_t(p.payload->size()) * 2);
    }

    OnWord done = std::move(p.done);
    const std::uint64_t traceId = p.traceId;
    _pending.erase(Key{g.id(), seq});
    auto fire = [this, traceId, done = std::move(done), result]() mutable {
        _sys.tracer().record(traceId, trace::Span::Completion, now(),
                             _traceComp);
        if (done)
            done(result);
    };
    if (dma > 0)
        schedule(dma, std::move(fire));
    else
        fire();
}

} // namespace tg::hib

/**
 * @file
 * Special-operation launch paths (PAL mode, contexts,
 * shadow addressing).
 */

#include "hib/special_ops.hpp"

namespace tg::hib {

using node::kContextStride;
using node::kCtxCollDatum;
using node::kCtxCollGo;
using node::kCtxCollGroup;
using node::kCtxCollOp;
using node::kCtxCollRoot;
using node::kCtxDatum;
using node::kCtxDatum2;
using node::kCtxDstPa;
using node::kCtxGo;
using node::kCtxOp;
using node::kRegContextBase;
using node::kRegSpecialDatum;
using node::kRegSpecialDatum2;
using node::kRegSpecialOp;

SpecialOpsUnit::SpecialOpsUnit(System &sys, const std::string &name)
    : SimObject(sys, name), _contexts(config().hibContexts)
{
}

void
SpecialOpsUnit::assignKey(std::uint32_t idx, std::uint32_t key)
{
    if (idx >= _contexts.size())
        fatal("%s: context %u out of range", _name.c_str(), idx);
    _contexts[idx] = Context{};
    _contexts[idx].key = key;
}

bool
SpecialOpsUnit::ctxWrite(PAddr reg_offset, Word value)
{
    if (reg_offset < kRegContextBase)
        return false;
    const PAddr rel = reg_offset - kRegContextBase;
    const std::uint32_t idx = std::uint32_t(rel / kContextStride);
    if (idx >= _contexts.size())
        return false;
    LaunchArgs &a = _contexts[idx].args;
    switch (rel % kContextStride) {
      case kCtxOp:
        a.op = static_cast<SpecialOp>(value);
        return true;
      case kCtxDatum:
        a.datum = value;
        return true;
      case kCtxDatum2:
        a.datum2 = value;
        return true;
      case kCtxDstPa:
        // Raw destination PA writes are only legal from the kernel's
        // driver path; user code uses shadow capture.  The Hib routes
        // accordingly; here we just store.
        a.dstPa = value;
        a.dstValid = true;
        return true;
      case kCtxCollOp:
        _contexts[idx].coll.op = static_cast<CollOp>(value);
        return true;
      case kCtxCollGroup:
        _contexts[idx].coll.group = std::uint32_t(value);
        return true;
      case kCtxCollRoot:
        _contexts[idx].coll.root = std::uint32_t(value);
        return true;
      case kCtxCollDatum:
        _contexts[idx].coll.datum = value;
        return true;
      default:
        return false;
    }
}

bool
SpecialOpsUnit::isGo(PAddr reg_offset, std::uint32_t &ctx_out) const
{
    if (reg_offset < kRegContextBase)
        return false;
    const PAddr rel = reg_offset - kRegContextBase;
    const std::uint32_t idx = std::uint32_t(rel / kContextStride);
    if (idx >= _contexts.size() || rel % kContextStride != kCtxGo)
        return false;
    ctx_out = idx;
    return true;
}

bool
SpecialOpsUnit::isCollGo(PAddr reg_offset, std::uint32_t &ctx_out) const
{
    if (reg_offset < kRegContextBase)
        return false;
    const PAddr rel = reg_offset - kRegContextBase;
    const std::uint32_t idx = std::uint32_t(rel / kContextStride);
    if (idx >= _contexts.size() || rel % kContextStride != kCtxCollGo)
        return false;
    ctx_out = idx;
    return true;
}

CollArgs
SpecialOpsUnit::collArgs(std::uint32_t idx) const
{
    if (idx >= _contexts.size())
        panic("%s: collArgs of context %u out of range", _name.c_str(), idx);
    return _contexts[idx].coll;
}

bool
SpecialOpsUnit::shadowCapture(PAddr stripped_pa, Word store_value)
{
    const bool dst_field = (store_value >> 56) & 1;
    const std::uint32_t idx = std::uint32_t(store_value >> 32) & 0xffffff;
    const std::uint32_t key = std::uint32_t(store_value);

    if (idx >= _contexts.size() || _contexts[idx].key != key) {
        // "Only processes that know the key that corresponds to a
        // specific context can write physical addresses into that
        // context" (section 2.2.5).
        ++_keyViolations;
        return false;
    }
    LaunchArgs &a = _contexts[idx].args;
    if (dst_field) {
        a.dstPa = stripped_pa;
        a.dstValid = true;
    } else {
        a.srcPa = stripped_pa;
        a.srcValid = true;
    }
    return true;
}

void
SpecialOpsUnit::shadowCapturePid(PAddr stripped_pa, Word store_value)
{
    // No authentication: whatever process the PID register names gets
    // the address.  With an unmodified OS (stale PID) this silently
    // corrupts another process's context — the paper's argument for
    // keys (section 2.2.5).
    if (_pid >= _contexts.size())
        return;
    LaunchArgs &a = _contexts[_pid].args;
    if ((store_value >> 56) & 1) {
        a.dstPa = stripped_pa;
        a.dstValid = true;
    } else {
        a.srcPa = stripped_pa;
        a.srcValid = true;
    }
}

LaunchArgs
SpecialOpsUnit::args(std::uint32_t idx) const
{
    if (idx >= _contexts.size())
        panic("%s: args of context %u out of range", _name.c_str(), idx);
    return _contexts[idx].args;
}

void
SpecialOpsUnit::consume(std::uint32_t idx)
{
    _contexts[idx].args.srcValid = false;
    _contexts[idx].args.dstValid = false;
}

void
SpecialOpsUnit::setSpecialMode(bool on)
{
    _specialMode = on;
    if (on) {
        _captured = 0;
        _special = LaunchArgs{};
    }
}

void
SpecialOpsUnit::captureAddress(PAddr pa)
{
    if (!_specialMode)
        panic("%s: captureAddress outside special mode", _name.c_str());
    if (_captured == 0) {
        _special.srcPa = pa;
        _special.srcValid = true;
    } else {
        _special.dstPa = pa;
        _special.dstValid = true;
    }
    ++_captured;
}

bool
SpecialOpsUnit::specialRegWrite(PAddr reg_offset, Word value)
{
    switch (reg_offset) {
      case kRegSpecialOp:
        _special.op = static_cast<SpecialOp>(value);
        return true;
      case kRegSpecialDatum:
        _special.datum = value;
        return true;
      case kRegSpecialDatum2:
        _special.datum2 = value;
        return true;
      default:
        return false;
    }
}

void
SpecialOpsUnit::resetSpecial()
{
    _specialMode = false;
    _captured = 0;
    _special = LaunchArgs{};
}

} // namespace tg::hib

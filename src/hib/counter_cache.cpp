/**
 * @file
 * Pending-write counter cache (section 2.3.4): CAM of
 * in-flight update counters with stall-on-full semantics.
 */

#include "hib/counter_cache.hpp"

namespace tg::hib {

CounterCache::CounterCache(System &sys, const std::string &name,
                           std::uint32_t entries)
    : SimObject(sys, name), _capacity(entries)
{
}

void
CounterCache::grant(PAddr word_addr, Fn<void()> granted)
{
    ++_counters[word_addr];
    _peak = std::max(_peak, _counters.size());
    schedule(config().counterOp, std::move(granted));
}

void
CounterCache::increment(PAddr word_addr, Fn<void()> granted)
{
    if (!enabled())
        panic("%s: increment with counter cache disabled", _name.c_str());

    auto it = _counters.find(word_addr);
    if (it != _counters.end() || _counters.size() < _capacity) {
        grant(word_addr, std::move(granted));
        return;
    }
    // CAM full: the processor stalls until a reflected write frees a slot
    // ("sooner or later, a cache entry is bound to become free",
    // section 2.3.4).
    ++_stalls;
    _waiters.push_back(Waiter{word_addr, now(), std::move(granted)});
}

void
CounterCache::decrement(PAddr word_addr)
{
    auto it = _counters.find(word_addr);
    if (it == _counters.end())
        panic("%s: decrement of absent counter %llx", _name.c_str(),
              (unsigned long long)word_addr);
    if (--it->second == 0) {
        _counters.erase(it);
        if (!_waiters.empty()) {
            Waiter w = std::move(_waiters.front());
            _waiters.pop_front();
            _stallTicks += now() - w.since;
            grant(w.addr, std::move(w.granted));
        }
    }
}

std::uint32_t
CounterCache::count(PAddr word_addr) const
{
    auto it = _counters.find(word_addr);
    return it == _counters.end() ? 0 : it->second;
}

} // namespace tg::hib

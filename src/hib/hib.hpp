/**
 * @file
 * The Telegraphos Host Interface Board (HIB), paper section 2.2.
 *
 * The HIB plugs into the TurboChannel and implements, entirely in
 * hardware (i.e. without OS intervention on the fast path):
 *
 *  - non-blocking remote writes and blocking remote reads (2.2.1)
 *  - non-blocking remote copy / prefetch (2.2.2)
 *  - remote atomic operations (2.2.3) launched via special-operation
 *    sequences (2.2.4): Telegraphos I special mode + PAL, or
 *    Telegraphos II contexts + keys + shadow addressing
 *  - page access counters and alarms (2.2.6)
 *  - outstanding-operation counters and the FENCE (2.2, 2.3.5)
 *  - the eager-update multicast mechanism (2.2.7)
 *  - the pending-write counter cache of the owner-based coherence
 *    protocol (2.3.3 / 2.3.4)
 *
 * Structure mirrors Table 1 of the paper: TurboChannel interface,
 * incoming/outgoing link interfaces (the bounded FIFOs exposed as the
 * network endpoint), atomic-operation unit, multicast unit, page access
 * counters, plus central control (this class).
 */

#ifndef TELEGRAPHOS_HIB_HIB_HPP
#define TELEGRAPHOS_HIB_HIB_HPP

#include <deque>
#include <memory>
#include <map>

#include "hib/atomic_unit.hpp"
#include "hib/coll_engine.hpp"
#include "hib/counter_cache.hpp"
#include "hib/multicast_unit.hpp"
#include "hib/outstanding.hpp"
#include "hib/page_counters.hpp"
#include "hib/special_ops.hpp"
#include "net/network.hpp"
#include "net/packet.hpp"
#include "node/main_memory.hpp"
#include "node/turbochannel.hpp"

namespace tg::coherence {
class Directory;
}

namespace tg::hib {

/** The network interface board of one workstation. */
class Hib : public SimObject, public net::NodeEndpoint
{
  public:
    using OnDone = Fn<void()>;
    using OnWord = Fn<void(Word)>;

    Hib(System &sys, const std::string &name, NodeId node,
        node::MainMemory &storage, node::TurboChannel &tc);

    NodeId nodeId() const { return _node; }

    // ------------------------------------------------------------------
    // Wiring (done once by the Workstation / Cluster)
    // ------------------------------------------------------------------

    void setDirectory(coherence::Directory *dir) { _dir = dir; }

    /** OS hook for page-counter alarms: (page frame, was_write). */
    void setAlarmHandler(Fn<void(PAddr, bool)> h);

    /** Add a software (VSM / sockets) packet handler; handlers are tried
     *  in registration order until one returns true. */
    void addSoftwareHandler(Fn<bool(const net::Packet &)> h);

    // ------------------------------------------------------------------
    // net::NodeEndpoint: the link interfaces of Table 1
    // ------------------------------------------------------------------

    net::BoundedQueue &egress() override { return _egress; }
    net::BoundedQueue &ingress() override { return _ingress; }

    // ------------------------------------------------------------------
    // CPU-side entry points (the Cpu calls these after winning the
    // TurboChannel for the programmed-I/O transaction)
    // ------------------------------------------------------------------

    /** Remote write: released as soon as the HIB latches it (2.2.1).
     *  @p traceId tags the packet for the lifecycle tracer (0 = none). */
    void cpuRemoteWrite(PAddr pa, Word value, OnDone latched,
                        std::uint64_t traceId = 0);

    /**
     * Back-pressure towards the processor: @p ready fires once the HIB
     * can latch another write (its internal queue is below the limit).
     * The CPU's write-buffer drain engine consults this before starting
     * the TurboChannel transaction.
     */
    void waitWriteSpace(OnDone ready);

    /** Remote read: @p done fires when the reply reaches the CPU.
     *  @p traceId tags request + reply for the lifecycle tracer. */
    void cpuRemoteRead(PAddr pa, OnWord done, std::uint64_t traceId = 0);

    /** Telegraphos I local shared-memory access (HIB SRAM via the TC). */
    void cpuLocalShmWrite(PAddr offset, Word value, OnDone done);
    void cpuLocalShmRead(PAddr offset, OnWord done);

    /** HIB register access (special mode, contexts, counters, GO). */
    void regWrite(PAddr offset, Word value, OnDone done);
    void regRead(PAddr offset, OnWord done);

    /** Store seen through shadow space: capture a physical address. */
    void shadowStore(PAddr stripped_pa, Word store_value, OnDone done);

    // ------------------------------------------------------------------
    // Shared-page hooks (invoked by the Cpu model)
    // ------------------------------------------------------------------

    /**
     * The CPU stored @p value at @p local_addr (already applied to the
     * local copy).  Routes to the page's coherence protocol or to the raw
     * eager-multicast table; @p done releases the processor.
     */
    void localSharedWrite(PAddr local_addr, Word value, OnDone done);

    /** Account one remote access against the page counters (2.2.6). */
    void countRemoteAccess(PAddr page_frame, bool is_write);

    /** FENCE / MEMORY_BARRIER: @p done once all outstanding ops drain.
     *  @p traceId tags the fence for the lifecycle tracer. */
    void fence(OnDone done, std::uint64_t traceId = 0);

    // ------------------------------------------------------------------
    // Special operations
    // ------------------------------------------------------------------

    /**
     * Execute assembled launch arguments (shared by the Telegraphos I
     * special-mode path, the Telegraphos II GO register, and the OS-trap
     * baseline).  @p result receives the old value for atomics,
     * immediately 0 for (non-blocking) copies.
     */
    void launch(const LaunchArgs &args, OnWord result);

    /**
     * Non-blocking bulk copy of @p bytes from global @p src_pa to global
     * @p dst_pa (dst must be local).  @p done (may be empty) fires when
     * the data has been written locally; the outstanding counter tracks
     * it for fences either way.
     */
    void startCopy(PAddr src_pa, PAddr dst_pa, std::uint32_t bytes,
                   OnDone done);

    // ------------------------------------------------------------------
    // Unit access (driver-level API and tests)
    // ------------------------------------------------------------------

    PageCounters &pageCounters() { return _pageCounters; }
    MulticastUnit &multicast() { return _multicast; }
    CounterCache &counterCache() { return _counterCache; }
    AtomicUnit &atomicUnit() { return _atomicUnit; }
    SpecialOpsUnit &specialOps() { return _specialOps; }
    Outstanding &outstanding() { return _outstanding; }
    CollEngine &collectives() { return _collEngine; }
    node::MainMemory &storage() { return _storage; }

    /**
     * Inject a packet into the outgoing link FIFO (central control +
     * protocols use this).  @p track adds it to the outstanding counter
     * (one completion expected later, via ack or reflected update).
     */
    void inject(net::Packet &&pkt, bool track);

    /** Allocate a reply-matching ticket and register its callback. */
    std::uint64_t expectReply(OnWord cb);

    /** Next per-origin sequence number (coherence packet ordering). */
    std::uint64_t nextSeq() { return _nextSeq++; }

    std::uint64_t packetsHandled() const { return _handled; }

    // ------------------------------------------------------------------
    // Checkpointing (DESIGN.md section 14.5)
    // ------------------------------------------------------------------

    /** Upcoming ticket / sequence values without consuming them. */
    std::uint64_t peekTicket() const { return _nextTicket; }
    std::uint64_t peekSeq() const { return _nextSeq; }

    /** Restore ticket/seq/handled counters captured at quiescence (no
     *  pending replies or copies may exist). */
    void
    restoreCounters(std::uint64_t next_ticket, std::uint64_t next_seq,
                    std::uint64_t handled)
    {
        TG_AUDIT(_pendingReplies.empty() && _copyDone.empty(),
                 "%s: counter restore with pending operations",
                 _name.c_str());
        _nextTicket = next_ticket;
        _nextSeq = next_seq;
        _handled = handled;
    }

    // ------------------------------------------------------------------
    // Failure path (link-level reliability gave up on a packet)
    // ------------------------------------------------------------------

    /**
     * The network permanently failed to deliver @p pkt and this node is
     * the victim of the loss (sender awaiting an ack, reader awaiting a
     * reply, ...).  Restores the conservation invariant: every expected
     * completion the lost packet represented is drained or failed, so
     * fences still drain and blocked CPUs still unblock — with a visible
     * error instead of silently wrong data.
     */
    void onWireFailure(const net::Packet &pkt);

    /** Remote operations this node lost to wire failures. */
    std::uint64_t wireFailures() const
    {
        return static_cast<std::uint64_t>(_wireFailures.value());
    }

  private:
    void pumpEgressBacklog();
    void pumpIngress();

    /** Dispatch one packet; @p finished is called when the (serialized)
     *  servicing of this packet is over. */
    void handlePacket(net::Packet &&pkt, OnDone finished);

    /** Local shared-memory write/read with prototype-dependent cost.
     *  @p traceId propagates the lifecycle op into the DMA bus grant. */
    void writeShm(PAddr offset, Word value, OnDone done,
                  std::uint64_t traceId = 0);
    void readShm(PAddr offset, OnWord done, std::uint64_t traceId = 0);

    void handleWriteReq(net::Packet &&pkt, OnDone finished);
    void handleCopyReq(net::Packet &&pkt, OnDone finished);
    void handleCopyData(net::Packet &&pkt, OnDone finished);
    void deliverReply(const net::Packet &pkt);

    /** Fail a pending reply ticket: its callback fires with 0 after the
     *  error has been counted.  No-op if the ticket is unknown. */
    void failReply(std::uint64_t ticket);

    /** Fail a pending copy-completion ticket (fires its done callback so
     *  waiters unblock).  No-op if the ticket is unknown. */
    void copyFailed(std::uint64_t ticket);

    NodeId _node;
    node::MainMemory &_storage;
    node::TurboChannel &_tc;

    net::BoundedQueue _egress;
    net::BoundedQueue _ingress;
    std::deque<net::Packet> _egressBacklog;
    std::deque<OnDone> _writeSpaceWaiters;
    bool _ingressBusy = false;

    AtomicUnit _atomicUnit;
    MulticastUnit _multicast;
    PageCounters _pageCounters;
    CounterCache _counterCache;
    SpecialOpsUnit _specialOps;
    Outstanding _outstanding;
    CollEngine _collEngine;

    coherence::Directory *_dir = nullptr;
    Fn<void(PAddr, bool)> _alarmHandler;
    std::vector<Fn<bool(const net::Packet &)>> _softwareHandlers;

    // Ordered maps by contract: hib is an order-sensitive namespace
    // (DESIGN.md section 7) and iteration must be deterministic.
    std::map<std::uint64_t, OnWord> _pendingReplies;
    std::map<std::uint64_t, OnDone> _copyDone;
    std::uint64_t _nextTicket = 1;
    std::uint64_t _nextSeq = 1;
    std::uint64_t _handled = 0;
    std::uint32_t _readsInFlight = 0;
    Scalar _wireFailures;
    std::uint16_t _traceComp = 0;
};

} // namespace tg::hib

#endif // TELEGRAPHOS_HIB_HIB_HPP

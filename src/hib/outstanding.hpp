/**
 * @file
 * Counter of outstanding remote operations + FENCE support.
 *
 * "To facilitate the completion detection of remote accesses, special
 * counters of outstanding remote operations are also provided" (paper
 * section 2.2).  A MEMORY_BARRIER stalls the processor until the counter
 * drains to zero (section 2.3.5); it is embedded in every synchronization
 * operation the runtime provides.
 */

#ifndef TELEGRAPHOS_HIB_OUTSTANDING_HPP
#define TELEGRAPHOS_HIB_OUTSTANDING_HPP

#include <cstdint>
#include <deque>

#include "sim/event.hpp"
#include "sim/sim_object.hpp"

namespace tg::hib {

/** Outstanding-operation counter with fence waiters. */
class Outstanding : public SimObject
{
  public:
    Outstanding(System &sys, const std::string &name);

    /** Record @p n newly launched operations awaiting completion. */
    void add(std::uint64_t n = 1);

    /** Record @p n completions; wakes fence waiters at zero. */
    void complete(std::uint64_t n = 1);

    /**
     * Record @p n operations lost by the network (reliability layer gave
     * up on their packets).  Like complete(), but clamps instead of
     * panicking when the failure path's estimate over-counts — a lost
     * packet must never wedge a fence, and must never drain more than is
     * outstanding.  Returns the amount actually drained.
     */
    std::uint64_t drainLost(std::uint64_t n = 1);

    /** Currently outstanding operations. */
    std::uint64_t current() const { return _current; }

    /**
     * Invoke @p cb once the counter is (or becomes) zero.  @p traceId
     * tags the fence for the lifecycle tracer: FenceStart is recorded at
     * registration, FenceWake when @p cb is released.
     */
    void waitDrain(Fn<void()> cb, std::uint64_t traceId = 0);

    /** Peak value reached (stat). */
    std::uint64_t peak() const { return _peak; }

    /** Total operations ever tracked (stat). */
    std::uint64_t total() const { return _total; }

    /** Operations drained via the loss path (stat). */
    std::uint64_t lost() const { return _lost; }

  private:
    void wakeWaiters();

    std::uint64_t _current = 0;
    std::uint64_t _peak = 0;
    std::uint64_t _total = 0;
    std::uint64_t _lost = 0;
    std::deque<Fn<void()>> _waiters;
    bool _draining = false;
    std::uint16_t _traceComp = 0;
};

} // namespace tg::hib

#endif // TELEGRAPHOS_HIB_OUTSTANDING_HPP

/**
 * @file
 * Eager-update multicast table (paper section 2.2.7).
 *
 * "Each local page can be mapped out to one or more remote pages.  Every
 * update made by the processor to the local page is transparently sent to
 * all remote pages."  The table holds (local page -> list of (node, remote
 * page)) entries; Table 1 sizes it at 16 K entries of 32 bits.
 */

#ifndef TELEGRAPHOS_HIB_MULTICAST_UNIT_HPP
#define TELEGRAPHOS_HIB_MULTICAST_UNIT_HPP

#include <cstdint>
#include <map>
#include <vector>

#include "sim/sim_object.hpp"

namespace tg::hib {

/** One multicast destination: a page on another node. */
struct McastDest
{
    NodeId node;
    PAddr pageFrame; ///< global physical page base at the destination
};

/** The HIB multicast (eager-sharing) list. */
class MulticastUnit : public SimObject
{
  public:
    MulticastUnit(System &sys, const std::string &name);

    /** Map @p local_page out to (@p node, @p remote_page).  fatal() when
     *  the table is full. */
    void addEntry(PAddr local_page, NodeId node, PAddr remote_page);

    /** Remove one destination. */
    void removeEntry(PAddr local_page, NodeId node);

    /** Drop all destinations of @p local_page. */
    void removePage(PAddr local_page);

    /** Destinations of @p local_page (nullptr when none). */
    const std::vector<McastDest> *lookup(PAddr local_page) const;

    /** Total entries across all pages. */
    std::size_t used() const { return _used; }

  private:
    std::map<PAddr, std::vector<McastDest>> _table;
    std::size_t _used = 0;
};

} // namespace tg::hib

#endif // TELEGRAPHOS_HIB_MULTICAST_UNIT_HPP

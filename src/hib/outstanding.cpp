#include "hib/outstanding.hpp"

namespace tg::hib {

Outstanding::Outstanding(System &sys, const std::string &name)
    : SimObject(sys, name)
{
}

void
Outstanding::add(std::uint64_t n)
{
    _current += n;
    _total += n;
    if (_current > _peak)
        _peak = _current;
}

void
Outstanding::complete(std::uint64_t n)
{
    if (n > _current)
        panic("%s: completing %llu ops with only %llu outstanding",
              _name.c_str(), (unsigned long long)n,
              (unsigned long long)_current);
    _current -= n;
    if (_current == 0 && !_waiters.empty()) {
        auto waiters = std::move(_waiters);
        _waiters.clear();
        for (auto &w : waiters)
            w();
    }
}

void
Outstanding::waitDrain(std::function<void()> cb)
{
    if (_current == 0) {
        cb();
        return;
    }
    _waiters.push_back(std::move(cb));
}

} // namespace tg::hib

/**
 * @file
 * Outstanding-operation counter + fence waiter queue.
 */

#include "hib/outstanding.hpp"

#include "sim/invariant.hpp"

namespace tg::hib {

Outstanding::Outstanding(System &sys, const std::string &name)
    : SimObject(sys, name)
{
    _traceComp = sys.tracer().registerComponent(name);
}

void
Outstanding::add(std::uint64_t n)
{
    _current += n;
    _total += n;
    if (_current > _peak)
        _peak = _current;
}

void
Outstanding::complete(std::uint64_t n)
{
    if (n > _current)
        panic("%s: completing %llu ops with only %llu outstanding",
              _name.c_str(), (unsigned long long)n,
              (unsigned long long)_current);
    _current -= n;
    // Conservation: every op ever tracked is outstanding, completed or
    // lost; the counter can never exceed what was launched.
    TG_AUDIT(_current + _lost <= _total,
             "%s: outstanding conservation violated: current=%llu lost=%llu "
             "total=%llu",
             _name.c_str(), (unsigned long long)_current,
             (unsigned long long)_lost, (unsigned long long)_total);
    wakeWaiters();
}

std::uint64_t
Outstanding::drainLost(std::uint64_t n)
{
    const std::uint64_t drained = n < _current ? n : _current;
    if (drained < n)
        warn("%s: loss path drained %llu of %llu (counter at zero)",
             _name.c_str(), (unsigned long long)drained,
             (unsigned long long)n);
    _current -= drained;
    _lost += drained;
    wakeWaiters();
    return drained;
}

void
Outstanding::wakeWaiters()
{
    if (_draining)
        return;
    // One waiter at a time, re-checking the counter before each: a woken
    // fence may launch new remote operations (or register a new fence),
    // and later waiters must then keep waiting rather than fire while the
    // counter is non-zero.
    _draining = true;
    while (_current == 0 && !_waiters.empty()) {
        auto w = std::move(_waiters.front());
        _waiters.pop_front();
        w();
    }
    _draining = false;
}

void
Outstanding::waitDrain(Fn<void()> cb, std::uint64_t traceId)
{
    _sys.tracer().record(traceId, trace::Span::FenceStart, now(),
                         _traceComp, _current);
    if (_current == 0 && !_draining) {
        _sys.tracer().record(traceId, trace::Span::FenceWake, now(),
                             _traceComp);
        cb();
        return;
    }
    // If a drain is in progress this queues behind the waiter currently
    // running (FIFO even for re-entrant registrations); the drain loop
    // picks it up once that waiter returns, provided the counter is
    // still zero.
    if (traceId != 0 && _sys.tracer().enabled()) {
        _waiters.push_back([this, traceId, cb = std::move(cb)] {
            _sys.tracer().record(traceId, trace::Span::FenceWake, now(),
                                 _traceComp);
            cb();
        });
    } else {
        _waiters.push_back(std::move(cb));
    }
}

} // namespace tg::hib

/**
 * @file
 * Pending-write counter cache (paper sections 2.3.3-2.3.4).
 *
 * The owner-based update protocol needs, per memory word, a counter of
 * "writes performed locally whose reflected multicast has not yet
 * returned".  Only non-zero counters ever matter, so the hardware keeps
 * them in a small content-addressable cache (16-32 entries expected to
 * suffice).  When the cache is full, the processor stalls until a
 * reflected write drains an entry — exactly the behaviour modelled here.
 *
 * A capacity of zero models Telegraphos I, which omits the cache; callers
 * must then skip the counter mechanism entirely (and accept the section
 * 2.3.2 read-your-writes hazard, which bench S1 demonstrates).
 */

#ifndef TELEGRAPHOS_HIB_COUNTER_CACHE_HPP
#define TELEGRAPHOS_HIB_COUNTER_CACHE_HPP

#include <cstdint>
#include <deque>
#include <map>

#include "sim/event.hpp"
#include "sim/sim_object.hpp"

namespace tg::hib {

/** CAM of pending-write counters keyed by global word address. */
class CounterCache : public SimObject
{
  public:
    CounterCache(System &sys, const std::string &name, std::uint32_t entries);

    /** True if the counter mechanism exists in this prototype. */
    bool enabled() const { return _capacity > 0; }

    std::uint32_t capacity() const { return _capacity; }

    /**
     * Increment the counter for @p word_addr; @p granted runs once a CAM
     * slot is held (immediately when one is free, otherwise after a
     * stall).  The increment cost (two SRAM accesses + add) is charged
     * before @p granted fires.
     */
    void increment(PAddr word_addr, Fn<void()> granted);

    /** Decrement (a reflected own-write arrived); frees the slot at zero. */
    void decrement(PAddr word_addr);

    /** Current counter value (zero when not cached). */
    std::uint32_t count(PAddr word_addr) const;

    /** Number of entries currently in use. */
    std::size_t used() const { return _counters.size(); }

    std::uint64_t stallEvents() const { return _stalls; }
    Tick stallTicks() const { return _stallTicks; }
    std::size_t peakUsed() const { return _peak; }

  private:
    struct Waiter
    {
        PAddr addr;
        Tick since;
        Fn<void()> granted;
    };

    void grant(PAddr word_addr, Fn<void()> granted);

    std::uint32_t _capacity;
    std::map<PAddr, std::uint32_t> _counters;
    std::deque<Waiter> _waiters;
    std::uint64_t _stalls = 0;
    Tick _stallTicks = 0;
    std::size_t _peak = 0;
};

} // namespace tg::hib

#endif // TELEGRAPHOS_HIB_COUNTER_CACHE_HPP

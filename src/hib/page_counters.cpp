/**
 * @file
 * Per-page access counters with alarm thresholds
 * (section 2.2.6).
 */

#include "hib/page_counters.hpp"

namespace tg::hib {

PageCounters::PageCounters(System &sys, const std::string &name)
    : SimObject(sys, name)
{
}

void
PageCounters::set(PAddr page_frame, std::uint16_t reads, std::uint16_t writes)
{
    if (_pages.size() >= config().counterPages &&
        _pages.find(page_frame) == _pages.end()) {
        fatal("%s: page-counter table exhausted (%u pages)", _name.c_str(),
              config().counterPages);
    }
    _pages[page_frame] = Counters{reads, writes};
}

PageCounters::Counters
PageCounters::get(PAddr page_frame) const
{
    auto it = _pages.find(page_frame);
    return it == _pages.end() ? Counters{} : it->second;
}

bool
PageCounters::onAccess(PAddr page_frame, bool is_write)
{
    ++_accesses;
    auto it = _pages.find(page_frame);
    if (it == _pages.end())
        return false;
    std::uint16_t &ctr = is_write ? it->second.writes : it->second.reads;
    if (ctr == 0)
        return false; // saturated at zero, no further alarms
    if (--ctr == 0) {
        ++_alarms;
        return true;
    }
    return false;
}

} // namespace tg::hib

/**
 * @file
 * Page access counters and alarms (paper section 2.2.6).
 *
 * The HIB keeps, for each remotely-mapped sharable page, one read counter
 * and one write counter.  Each remote access decrements the corresponding
 * counter (unless already zero); the 1 -> 0 transition raises an
 * interrupt.  Large values make the counters a profiling tool; small
 * values implement alarm-based replication.
 */

#ifndef TELEGRAPHOS_HIB_PAGE_COUNTERS_HPP
#define TELEGRAPHOS_HIB_PAGE_COUNTERS_HPP

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "sim/sim_object.hpp"

namespace tg::hib {

/** Per-page read/write access counters with alarm on 1 -> 0. */
class PageCounters : public SimObject
{
  public:
    PageCounters(System &sys, const std::string &name);

    /** Counter pair of one page. */
    struct Counters
    {
        std::uint16_t reads = 0;
        std::uint16_t writes = 0;
    };

    /**
     * Program the counters of the page based at @p page_frame (a global
     * physical page address of the *remote* page being monitored).
     */
    void set(PAddr page_frame, std::uint16_t reads, std::uint16_t writes);

    /** Current values (zeros if never programmed). */
    Counters get(PAddr page_frame) const;

    /**
     * Account one remote access to @p page_frame.
     * @return true when the decremented counter hit zero (alarm; the HIB
     *         will raise an OS interrupt).
     */
    bool onAccess(PAddr page_frame, bool is_write);

    /** Pages currently tracked. */
    std::size_t used() const { return _pages.size(); }

    std::uint64_t accesses() const { return _accesses; }
    std::uint64_t alarms() const { return _alarms; }

    /** All programmed counters in ascending page order (checkpointing,
     *  DESIGN.md section 14.5). */
    std::vector<std::pair<PAddr, Counters>>
    dump() const
    {
        return {_pages.begin(), _pages.end()};
    }

    /** Restore a captured counter table and the access/alarm stats. */
    void
    restore(const std::vector<std::pair<PAddr, Counters>> &pages,
            std::uint64_t accesses, std::uint64_t alarms)
    {
        _pages.clear();
        for (const auto &[frame, c] : pages)
            _pages[frame] = c;
        _accesses = accesses;
        _alarms = alarms;
    }

  private:
    std::map<PAddr, Counters> _pages;
    std::uint64_t _accesses = 0;
    std::uint64_t _alarms = 0;
};

} // namespace tg::hib

#endif // TELEGRAPHOS_HIB_PAGE_COUNTERS_HPP

/**
 * @file
 * HIB atomic unit: remote fetch&inc / compare&swap
 * read-modify-write engine.
 */

#include "hib/atomic_unit.hpp"

namespace tg::hib {

AtomicUnit::AtomicUnit(System &sys, const std::string &name,
                       node::MainMemory &storage)
    : SimObject(sys, name), _storage(storage)
{
}

void
AtomicUnit::request(net::AtomicOp op, PAddr offset, Word a, Word b,
                    Fn<void(Word)> done)
{
    _queue.push_back(Pending{op, offset, a, b, std::move(done)});
    if (!_busy)
        startNext();
}

void
AtomicUnit::startNext()
{
    if (_queue.empty()) {
        _busy = false;
        return;
    }
    _busy = true;
    Pending p = std::move(_queue.front());
    _queue.pop_front();

    schedule(config().hibAtomic, [this, p = std::move(p)] {
        const Word old = _storage.read(p.offset);
        switch (p.op) {
          case net::AtomicOp::FetchAndStore:
            _storage.write(p.offset, p.a);
            break;
          case net::AtomicOp::FetchAndInc:
            _storage.write(p.offset, old + p.a);
            break;
          case net::AtomicOp::CompareAndSwap:
            if (old == p.a)
                _storage.write(p.offset, p.b);
            break;
        }
        ++_executed;
        p.done(old);
        startNext();
    });
}

} // namespace tg::hib

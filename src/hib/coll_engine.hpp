/**
 * @file
 * NIC-resident collective engine (DESIGN.md section 15).
 *
 * The paper's HIB already carries the pieces a network interface needs to
 * run collectives without host involvement: eager-update multicast tables
 * (section 2.2.7), remote atomics (2.2.3) and the outstanding-operation
 * counter hardware (2.3.5).  This unit composes them — Quadrics/Myrinet
 * style — into per-communicator state machines for barrier, broadcast,
 * reduce and all-reduce over a deterministic k-ary tree built from
 * TopologyModel::hops (net/coll_tree.hpp).
 *
 * Protocol: the host assembles a descriptor in its Telegraphos context
 * (kCtxCollOp/Group/Root/Datum), then reads kCtxCollGo — one blocking
 * programmed-I/O read that arms the local state machine and stalls until
 * the collective completes locally.  Everything between arm and complete
 * is CollUp / CollDown packets handled NIC-to-NIC:
 *
 *   - up phase (barrier / reduce / all-reduce): each node waits for its
 *     tree children's CollUp packets, folds their partial values through
 *     the atomic unit's combine path, and sends one CollUp to its parent
 *   - down phase (barrier release, broadcast payload, all-reduce total):
 *     CollDown packets fan out from the root along the same tree; an
 *     interior NIC forwards to its children immediately on receipt, with
 *     no host on the path — the multicast unit's fan-out in tree form
 *
 * Equivalence contract: every member must issue the same sequence of
 * collective ops on a group (MPI ordering rules).  The per-group sequence
 * number then matches up/down packets to descriptors, so a NIC can
 * service packets for a collective its own host has not issued yet.
 *
 * Failure contract: when link reliability permanently drops a CollUp or
 * CollDown, the victim NIC synthesizes the lost arrival/release with the
 * error flag set, so every member still completes — the error surfaces
 * through the coll_errors counter (the API layer turns it into OpError).
 */

#ifndef TELEGRAPHOS_HIB_COLL_ENGINE_HPP
#define TELEGRAPHOS_HIB_COLL_ENGINE_HPP

#include <map>
#include <memory>
#include <vector>

#include "hib/special_ops.hpp"
#include "net/coll_tree.hpp"
#include "net/packet.hpp"
#include "sim/sim_object.hpp"
#include "sim/stats.hpp"

namespace tg::hib {

class Hib;

/**
 * Shared description of one communicator group: members, fabric shape and
 * the lazily built per-root trees.  One instance is shared by every
 * member's engine (it is immutable after construction apart from the tree
 * cache, and the simulation is single-threaded), which also guarantees
 * all members agree on the tree bit-for-bit.
 */
class CollGroup
{
  public:
    CollGroup(std::uint32_t id, std::vector<NodeId> members,
              const net::TopologySpec &topo, std::size_t fanout);

    std::uint32_t id() const { return _id; }
    const std::vector<NodeId> &members() const { return _members; }
    std::size_t size() const { return _members.size(); }

    /** Rank of @p node in the group; panics when not a member. */
    std::size_t rankOf(NodeId node) const;

    /** The deterministic reduction/multicast tree rooted at @p root_rank
     *  (built on first use, cached). */
    const net::CollTree &tree(std::size_t root_rank);

  private:
    std::uint32_t _id;
    std::vector<NodeId> _members;
    net::TopologySpec _topo;
    std::size_t _fanout;
    std::map<NodeId, std::size_t> _rankByNode;
    std::map<std::size_t, net::CollTree> _trees;
};

using CollGroupPtr = std::shared_ptr<CollGroup>;

/** Per-node collective state machines (one engine per HIB). */
class CollEngine : public SimObject
{
  public:
    using OnWord = Fn<void(Word)>;
    using OnDone = Fn<void()>;

    /** @p hib_name scopes the engine's hib.coll_* statistics. */
    CollEngine(System &sys, const std::string &hib_name, Hib &hib);

    /** Make this node a member of @p group (Communicator construction). */
    void registerGroup(CollGroupPtr group);

    /**
     * Stage the host-side payload buffer for the next collective issued
     * through context @p ctx_idx (broadcast data in/out).  Modelling
     * shortcut: stands in for the descriptor's payload DMA address; the
     * data transfer cost itself is charged at completion.
     */
    void stage(std::uint32_t ctx_idx, std::vector<Word> *io);

    /**
     * Arm the local state machine from the descriptor in context
     * @p ctx_idx (the kCtxCollGo read path).  @p done fires when the
     * collective completes locally: the reduced total at a reduce root /
     * everywhere for all-reduce, 0 otherwise.
     */
    void issue(std::uint32_t ctx_idx, const CollArgs &args, OnWord done);

    /** Service one CollUp/CollDown packet from the ingress pump. */
    void handlePacket(net::Packet &&pkt, OnDone finished);

    /** A CollUp/CollDown was permanently lost and this NIC is the victim
     *  (dst): synthesize the arrival/release with the error flag set. */
    void onWireFailure(const net::Packet &pkt);

    /** Collectives completed locally with the error flag set. */
    std::uint64_t errors() const
    {
        return static_cast<std::uint64_t>(_errors.value());
    }

    std::uint64_t barriers() const
    {
        return static_cast<std::uint64_t>(_barriers.value());
    }
    std::uint64_t bcastMsgs() const
    {
        return static_cast<std::uint64_t>(_bcastMsgs.value());
    }
    std::uint64_t combines() const
    {
        return static_cast<std::uint64_t>(_combines.value());
    }
    std::uint64_t descPeak() const
    {
        return static_cast<std::uint64_t>(_descPeak.value());
    }

  private:
    /** One in-flight collective on this node, keyed by (group, seq). */
    struct Pending
    {
        CollOp op = CollOp::None;
        std::uint32_t root = 0;   ///< root rank
        bool armed = false;       ///< local descriptor issued
        bool upSent = false;      ///< CollUp sent to parent
        bool released = false;    ///< CollDown received / root turnaround
        bool error = false;       ///< wire failure touched this subtree
        std::size_t arrived = 0;  ///< child CollUp packets folded in
        Word partial = 0;         ///< running combine of datum + children
        Word downValue = 0;       ///< release/total value from CollDown
        std::shared_ptr<std::vector<Word>> payload; ///< bcast words
        std::vector<Word> *io = nullptr; ///< staged host buffer
        OnWord done;              ///< blocked kCtxCollGo reader
        std::uint64_t traceId = 0;
    };

    using Key = std::pair<std::uint32_t, std::uint64_t>;

    Pending &ensurePending(CollGroup &g, std::uint64_t seq, CollOp op,
                           std::uint32_t root);
    void tryAdvance(CollGroup &g, std::uint64_t seq, Pending &p);
    void sendUp(CollGroup &g, std::uint64_t seq, Pending &p);
    void sendDown(CollGroup &g, std::uint64_t seq, Pending &p);
    void complete(CollGroup &g, std::uint64_t seq, Pending &p, Word result);
    void applyDown(CollGroup &g, std::uint64_t seq, Pending &p,
                   const net::Packet &pkt);
    CollGroup *groupOf(std::uint32_t id);
    std::size_t myRank(CollGroup &g) const;

    Hib &_hib;
    std::map<std::uint32_t, CollGroupPtr> _groups;
    std::map<std::uint32_t, std::uint64_t> _nextSeq; ///< per group
    std::map<std::uint32_t, std::vector<Word> *> _staged; ///< per context
    std::map<Key, Pending> _pending;

    Scalar _barriers;  ///< barriers completed locally
    Scalar _bcastMsgs; ///< CollDown fan-out packets sent
    Scalar _combines;  ///< reduce combines folded through the atomic path
    Scalar _descNow;   ///< descriptors currently armed (occupancy)
    Scalar _descPeak;  ///< high-water mark of armed descriptors
    Scalar _errors;    ///< local completions carrying the error flag
    std::uint16_t _traceComp = 0;
};

} // namespace tg::hib

#endif // TELEGRAPHOS_HIB_COLL_ENGINE_HPP

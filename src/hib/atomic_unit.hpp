/**
 * @file
 * Remote atomic operation unit (paper section 2.2.3).
 *
 * Executes fetch-and-store, fetch-and-inc and compare-and-swap on the
 * node's shared memory on behalf of local and remote requesters.  All
 * operations on one node serialize through this unit, which is what makes
 * them atomic.
 */

#ifndef TELEGRAPHOS_HIB_ATOMIC_UNIT_HPP
#define TELEGRAPHOS_HIB_ATOMIC_UNIT_HPP

#include <deque>

#include "net/packet.hpp"
#include "node/main_memory.hpp"
#include "sim/event.hpp"
#include "sim/sim_object.hpp"

namespace tg::hib {

/** Serializing read-modify-write engine over one node's shared memory. */
class AtomicUnit : public SimObject
{
  public:
    AtomicUnit(System &sys, const std::string &name,
               node::MainMemory &storage);

    /**
     * Queue one atomic operation.
     * @param op      operation selector
     * @param offset  node-local offset of the target word
     * @param a       first operand (store value / increment / cas compare)
     * @param b       second operand (cas new value)
     * @param done    receives the *old* value of the word
     */
    void request(net::AtomicOp op, PAddr offset, Word a, Word b,
                 Fn<void(Word)> done);

    std::uint64_t executed() const { return _executed; }

  private:
    struct Pending
    {
        net::AtomicOp op;
        PAddr offset;
        Word a, b;
        Fn<void(Word)> done;
    };

    void startNext();

    node::MainMemory &_storage;
    std::deque<Pending> _queue;
    bool _busy = false;
    std::uint64_t _executed = 0;
};

} // namespace tg::hib

#endif // TELEGRAPHOS_HIB_ATOMIC_UNIT_HPP

/**
 * @file
 * Host Interface Board implementation: egress/ingress packet
 * paths, special operations and reply matching.
 */

#include "hib/hib.hpp"

#include "coherence/directory.hpp"
#include "coherence/protocol.hpp"
#include "node/address.hpp"
#include "sim/invariant.hpp"

namespace tg::hib {

namespace {

/** Fold a packet's end-to-end identity into the run's trace hash.
 *  (Packet::traceId is deliberately NOT folded: the lifecycle tracer is
 *  pure observability and must not perturb the determinism contract.) */
void
mixPacket(audit::TraceHash &h, const net::Packet &pkt)
{
    h.mix((std::uint64_t)pkt.type << 32 | (std::uint64_t)pkt.src << 16 |
          pkt.dst);
    h.mix(pkt.addr);
    h.mix(pkt.value);
    h.mix(pkt.ticket);
}

/** Lifecycle-tracer op kind for a packet that was injected untagged. */
trace::OpKind
opKindOf(net::PacketType t)
{
    switch (t) {
    case net::PacketType::WriteReq:
    case net::PacketType::WriteAck:
        return trace::OpKind::RemoteWrite;
    case net::PacketType::ReadReq:
    case net::PacketType::ReadReply:
        return trace::OpKind::RemoteRead;
    case net::PacketType::AtomicReq:
    case net::PacketType::AtomicReply:
        return trace::OpKind::RemoteAtomic;
    case net::PacketType::CopyReq:
    case net::PacketType::CopyData:
        return trace::OpKind::RemoteCopy;
    case net::PacketType::EagerWrite:
    case net::PacketType::Update:
    case net::PacketType::UpdateAck:
    case net::PacketType::WriteOwner:
    case net::PacketType::RingUpdate:
    case net::PacketType::InvReq:
    case net::PacketType::InvAck:
        return trace::OpKind::Coherence;
    case net::PacketType::PageReq:
    case net::PacketType::PageData:
    case net::PacketType::Message:
        return trace::OpKind::Software;
    case net::PacketType::CollUp:
        return trace::OpKind::CollReduce;
    case net::PacketType::CollDown:
        return trace::OpKind::CollBcast;
    }
    return trace::OpKind::Other;
}

} // namespace

using net::Packet;
using net::PacketType;
using node::kRegOutstanding;
using node::kRegSpecialMode;
using node::kRegSpecialResult;
using node::nodeOf;
using node::offsetOf;

Hib::Hib(System &sys, const std::string &name, NodeId node,
         node::MainMemory &storage, node::TurboChannel &tc)
    : SimObject(sys, name), _node(node), _storage(storage), _tc(tc),
      _egress(sys.arena(), sys.config().hibFifoPackets),
      _ingress(sys.arena(), sys.config().hibFifoPackets),
      _atomicUnit(sys, name + ".atomic", storage),
      _multicast(sys, name + ".mcast"),
      _pageCounters(sys, name + ".pagectr"),
      _counterCache(sys, name + ".ccache",
                    sys.config().prototype == Prototype::TelegraphosII
                        ? sys.config().counterCacheEntries
                        : 0),
      _specialOps(sys, name + ".special"),
      _outstanding(sys, name + ".outstanding"),
      _collEngine(sys, name, *this)
{
    _egress.onSpace([this] { pumpEgressBacklog(); });
    _ingress.onData([this] { pumpIngress(); });
    // Registered unconditionally: the reliability layer runs on every
    // link, so the counter must be visible even in fault-free runs.
    sys.stats().add(name + ".wire_failures", &_wireFailures);
    _traceComp = sys.tracer().registerComponent(name);
}

void
Hib::setAlarmHandler(Fn<void(PAddr, bool)> h)
{
    _alarmHandler = std::move(h);
}

void
Hib::addSoftwareHandler(Fn<bool(const net::Packet &)> h)
{
    _softwareHandlers.push_back(std::move(h));
}

// ---------------------------------------------------------------------
// Egress path
// ---------------------------------------------------------------------

void
Hib::inject(Packet &&pkt, bool track)
{
    pkt.src = _node;
    pkt.tracked = track;
    if (track)
        _outstanding.add();
    system().ledger().onInjected();
    mixPacket(system().events().trace(), pkt);
    // Packets not tagged by a CPU-side issue point (coherence, software,
    // HIB-internal traffic) start their lifecycle here.
    if (pkt.traceId == 0)
        pkt.traceId = _sys.tracer().beginOp(opKindOf(pkt.type));
    _sys.tracer().record(pkt.traceId, trace::Span::HibLaunch, now(),
                         _traceComp);
    if (Trace::anyEnabled())
        Trace::log(now(), "hib", "%s inject %s", _name.c_str(),
                   pkt.toString().c_str());
    // The backlog models the HIB's internal queueing: writes are latched
    // at TurboChannel speed and drain into the network at link speed
    // ("short batches of write operations may take advantage of
    // Telegraphos queueing", section 3.2).
    if (_egressBacklog.empty() && !_egress.full()) {
        _egress.push(std::move(pkt));
    } else {
        _egressBacklog.push_back(std::move(pkt));
    }
}

void
Hib::pumpEgressBacklog()
{
    // Pop before pushing: the push can re-enter this function through the
    // queue's listener chain (egress onData -> channel pump -> onSpace).
    while (!_egressBacklog.empty() && !_egress.full()) {
        net::Packet p = std::move(_egressBacklog.front());
        _egressBacklog.pop_front();
        _egress.push(std::move(p));
    }
    while (!_writeSpaceWaiters.empty() &&
           _egressBacklog.size() < config().hibBacklogPackets) {
        OnDone ready = std::move(_writeSpaceWaiters.front());
        _writeSpaceWaiters.pop_front();
        ready();
    }
}

void
Hib::waitWriteSpace(OnDone ready)
{
    if (_egressBacklog.size() < config().hibBacklogPackets &&
        _writeSpaceWaiters.empty()) {
        ready();
        return;
    }
    _writeSpaceWaiters.push_back(std::move(ready));
}

std::uint64_t
Hib::expectReply(OnWord cb)
{
    const std::uint64_t ticket = _nextTicket++;
    _pendingReplies.emplace(ticket, std::move(cb));
    return ticket;
}

// ---------------------------------------------------------------------
// CPU-side operations
// ---------------------------------------------------------------------

void
Hib::cpuRemoteWrite(PAddr pa, Word value, OnDone latched,
                    std::uint64_t traceId)
{
    Packet pkt;
    pkt.type = PacketType::WriteReq;
    pkt.dst = nodeOf(pa);
    pkt.addr = pa;
    pkt.value = value;
    pkt.origin = _node;
    pkt.seq = nextSeq();
    pkt.traceId = traceId;
    inject(std::move(pkt), /*track=*/true);
    // "Write requests do not stall the processor and release the
    // TurboChannel as soon as the write request is latched by the HIB."
    schedule(config().hibLatch, std::move(latched));
}

void
Hib::cpuRemoteRead(PAddr pa, OnWord done, std::uint64_t traceId)
{
    // "In the current version of Telegraphos there can be no more than
    // one outstanding read operation" (paper footnote, section 2.3.5).
    // The blocking CPU enforces this naturally; the check documents the
    // hardware invariant.
    if (_readsInFlight >= config().maxOutstandingReads)
        panic("%s: %u remote reads in flight (limit %u)", _name.c_str(),
              _readsInFlight + 1, config().maxOutstandingReads);
    ++_readsInFlight;

    Packet pkt;
    pkt.type = PacketType::ReadReq;
    pkt.dst = nodeOf(pa);
    pkt.addr = pa;
    pkt.origin = _node;
    pkt.traceId = traceId;
    pkt.ticket = expectReply([this, done = std::move(done),
                              traceId](Word v) mutable {
        --_readsInFlight;
        // Deliver the reply to the stalled processor over the TC.
        _tc.transact(config().tcWriteTxn(2),
                     [done = std::move(done), v] { done(v); }, traceId);
    });
    schedule(config().hibLatch,
             [this, pkt = std::move(pkt)]() mutable {
                 inject(std::move(pkt), /*track=*/false);
             });
}

void
Hib::cpuLocalShmWrite(PAddr offset, Word value, OnDone done)
{
    // Timing only: the functional apply happens in localSharedWrite so
    // that protocol-managed pages update at the protocol-defined moment.
    (void)offset;
    (void)value;
    schedule(config().hibLatch + config().hibSram, std::move(done));
}

void
Hib::cpuLocalShmRead(PAddr offset, OnWord done)
{
    schedule(config().hibLatch + config().hibSram,
             [this, offset, done = std::move(done)] {
                 done(_storage.read(offset));
             });
}

void
Hib::regWrite(PAddr offset, Word value, OnDone done)
{
    if (offset == kRegSpecialMode) {
        _specialOps.setSpecialMode(value != 0);
    } else if (_specialOps.specialRegWrite(offset, value)) {
        // Telegraphos I special op/datum register.
    } else if (_specialOps.ctxWrite(offset, value)) {
        // Telegraphos II context field.
    } else {
        warn("%s: write to unknown HIB register %llx", _name.c_str(),
             (unsigned long long)offset);
    }
    schedule(config().hibLatch, std::move(done));
}

void
Hib::regRead(PAddr offset, OnWord done)
{
    if (offset == kRegOutstanding) {
        schedule(config().hibLatch,
                 [this, done = std::move(done)] {
                     done(_outstanding.current());
                 });
        return;
    }
    if (offset == kRegSpecialResult) {
        // Telegraphos I: reading the result register launches the
        // assembled special operation and blocks until its result.
        const LaunchArgs args = _specialOps.specialArgs();
        schedule(config().hibLatch,
                 [this, args, done = std::move(done)]() mutable {
                     launch(args, std::move(done));
                 });
        return;
    }
    std::uint32_t ctx;
    if (_specialOps.isGo(offset, ctx)) {
        const LaunchArgs args = _specialOps.args(ctx);
        _specialOps.consume(ctx);
        schedule(config().hibLatch,
                 [this, args, done = std::move(done)]() mutable {
                     launch(args, std::move(done));
                 });
        return;
    }
    if (_specialOps.isCollGo(offset, ctx)) {
        // Arm the NIC collective state machine; the read stalls (the TC
        // itself is already released, exactly like kRegSpecialResult)
        // until the collective completes locally.
        const CollArgs cargs = _specialOps.collArgs(ctx);
        schedule(config().hibLatch,
                 [this, ctx, cargs, done = std::move(done)]() mutable {
                     _collEngine.issue(ctx, cargs, std::move(done));
                 });
        return;
    }
    warn("%s: read of unknown HIB register %llx", _name.c_str(),
         (unsigned long long)offset);
    schedule(config().hibLatch, [done = std::move(done)] { done(0); });
}

void
Hib::shadowStore(PAddr stripped_pa, Word store_value, OnDone done)
{
    if (_specialOps.specialMode()) {
        // Telegraphos I: in special mode every store to shared space is an
        // argument-passing command, not a memory operation (section 2.2.4).
        _specialOps.captureAddress(stripped_pa);
    } else if (hib::isFlashShadowArg(store_value)) {
        _specialOps.shadowCapturePid(stripped_pa, store_value);
    } else {
        _specialOps.shadowCapture(stripped_pa, store_value);
    }
    schedule(config().hibLatch, std::move(done));
}

void
Hib::countRemoteAccess(PAddr page_frame, bool is_write)
{
    if (_pageCounters.onAccess(page_frame, is_write) && _alarmHandler) {
        // Alarm: raise an interrupt to the operating system (2.2.6).
        schedule(config().osInterrupt,
                 [this, page_frame, is_write] {
                     _alarmHandler(page_frame, is_write);
                 });
    }
}

void
Hib::fence(OnDone done, std::uint64_t traceId)
{
    _outstanding.waitDrain(std::move(done), traceId);
}

// ---------------------------------------------------------------------
// Shared-page write propagation
// ---------------------------------------------------------------------

void
Hib::localSharedWrite(PAddr local_addr, Word value, OnDone done)
{
    if (_dir) {
        coherence::PageEntry *e = _dir->byAddr(local_addr);
        if (e && e->protocol) {
            // The protocol applies the local copy itself (atomically
            // with its counter/forward work, section 2.3.3 rule 1).
            e->protocol->localWrite(_node, *e, local_addr, value,
                                    std::move(done));
            return;
        }
    }

    // Unmanaged shared page: plain local apply...
    _storage.write(node::offsetOf(local_addr), value);
    if (_dir)
        _dir->notifyApply(_node, local_addr, value, _node);

    // ...plus raw eager multicast (message-passing use, section 2.2.7).
    const PAddr page = local_addr - (local_addr % config().pageBytes);
    const PAddr off = local_addr % config().pageBytes;
    if (const auto *dests = _multicast.lookup(page)) {
        for (const auto &d : *dests) {
            Packet pkt;
            pkt.type = PacketType::EagerWrite;
            pkt.dst = d.node;
            pkt.addr = d.pageFrame + off;
            pkt.value = value;
            pkt.origin = _node;
            pkt.seq = nextSeq();
            inject(std::move(pkt), /*track=*/true);
        }
    }
    done();
}

// ---------------------------------------------------------------------
// Special operations
// ---------------------------------------------------------------------

void
Hib::launch(const LaunchArgs &args, OnWord result)
{
    if (args.op == SpecialOp::Copy) {
        if (!args.srcValid || !args.dstValid) {
            warn("%s: copy launch with incomplete addresses", _name.c_str());
            result(0);
            return;
        }
        // Non-blocking: control returns immediately (section 2.2.2).
        startCopy(args.srcPa, args.dstPa,
                  static_cast<std::uint32_t>(args.datum), nullptr);
        result(0);
        return;
    }

    if (!args.srcValid) {
        warn("%s: atomic launch with no target address", _name.c_str());
        result(0);
        return;
    }

    net::AtomicOp aop;
    switch (args.op) {
      case SpecialOp::FetchStore: aop = net::AtomicOp::FetchAndStore; break;
      case SpecialOp::FetchInc: aop = net::AtomicOp::FetchAndInc; break;
      case SpecialOp::Cas: aop = net::AtomicOp::CompareAndSwap; break;
      default:
        warn("%s: launch of unknown special op", _name.c_str());
        result(0);
        return;
    }

    if (nodeOf(args.srcPa) == _node) {
        _atomicUnit.request(aop, offsetOf(args.srcPa), args.datum,
                            args.datum2, std::move(result));
        return;
    }

    Packet pkt;
    pkt.type = PacketType::AtomicReq;
    pkt.dst = nodeOf(args.srcPa);
    pkt.addr = args.srcPa;
    pkt.value = args.datum;
    pkt.value2 = args.datum2;
    pkt.aop = aop;
    pkt.origin = _node;
    pkt.payloadBytes = 24;
    pkt.ticket = expectReply(std::move(result));
    inject(std::move(pkt), /*track=*/false);
}

void
Hib::startCopy(PAddr src_pa, PAddr dst_pa, std::uint32_t bytes, OnDone done)
{
    const std::uint32_t words = (bytes + 7) / 8;
    if (nodeOf(dst_pa) != _node)
        panic("%s: copy destination %llx is not local", _name.c_str(),
              (unsigned long long)dst_pa);

    if (nodeOf(src_pa) == _node) {
        // Purely local copy: HIB DMA within the node.
        _storage.copy(offsetOf(dst_pa), offsetOf(src_pa), words);
        const Tick cost = config().hibSram + config().tcWriteTxn(words * 2);
        if (done)
            schedule(cost, std::move(done));
        return;
    }

    Packet pkt;
    pkt.type = PacketType::CopyReq;
    pkt.dst = nodeOf(src_pa);
    pkt.addr = src_pa;
    pkt.addr2 = dst_pa;
    pkt.value = words;
    pkt.origin = _node;
    pkt.payloadBytes = 24;
    pkt.ticket = _nextTicket++;
    if (done)
        _copyDone.emplace(pkt.ticket, std::move(done));
    _outstanding.add();
    inject(std::move(pkt), /*track=*/false);
}

// ---------------------------------------------------------------------
// Ingress path
// ---------------------------------------------------------------------

void
Hib::pumpIngress()
{
    if (_ingressBusy || _ingress.empty())
        return;
    _ingressBusy = true;
    schedule(config().hibService, [this] {
        Packet pkt = _ingress.pop();
        ++_handled;
        system().ledger().onDelivered();
        mixPacket(system().events().trace(), pkt);
        _sys.tracer().record(pkt.traceId, trace::Span::HibHandle, now(),
                             _traceComp);
        if (Trace::anyEnabled())
            Trace::log(now(), "hib", "%s handle %s", _name.c_str(),
                       pkt.toString().c_str());
        handlePacket(std::move(pkt), [this] {
            _ingressBusy = false;
            pumpIngress();
        });
    });
}

void
Hib::writeShm(PAddr offset, Word value, OnDone done, std::uint64_t traceId)
{
    _storage.write(offset, value);
    if (config().prototype == Prototype::TelegraphosI) {
        // Shared data lives in HIB SRAM: no TurboChannel involvement.
        schedule(config().hibSram, std::move(done));
    } else {
        // Shared data lives in main memory: DMA over the TurboChannel.
        _tc.transact(config().tcWriteTxn(2), std::move(done), traceId);
    }
}

void
Hib::readShm(PAddr offset, OnWord done, std::uint64_t traceId)
{
    auto fetch = [this, offset, done = std::move(done)] {
        done(_storage.read(offset));
    };
    if (config().prototype == Prototype::TelegraphosI)
        schedule(config().hibSram, std::move(fetch));
    else
        _tc.transact(config().tcWriteTxn(2), std::move(fetch), traceId);
}

void
Hib::deliverReply(const Packet &pkt)
{
    auto it = _pendingReplies.find(pkt.ticket);
    if (it == _pendingReplies.end()) {
        warn("%s: reply with unknown ticket %llu", _name.c_str(),
             (unsigned long long)pkt.ticket);
        return;
    }
    OnWord cb = std::move(it->second);
    _pendingReplies.erase(it);
    _sys.tracer().record(pkt.traceId, trace::Span::Completion, now(),
                         _traceComp);
    cb(pkt.value);
}

void
Hib::failReply(std::uint64_t ticket)
{
    auto it = _pendingReplies.find(ticket);
    if (it == _pendingReplies.end())
        return;
    OnWord cb = std::move(it->second);
    _pendingReplies.erase(it);
    // The operation's result is gone; deliver 0 so the blocked CPU
    // unblocks.  The error itself is visible through the wire-failure
    // counters and the owning context's lastError().
    cb(0);
}

void
Hib::copyFailed(std::uint64_t ticket)
{
    auto it = _copyDone.find(ticket);
    if (it == _copyDone.end())
        return;
    OnDone cb = std::move(it->second);
    _copyDone.erase(it);
    cb();
}

void
Hib::onWireFailure(const Packet &pkt)
{
    ++_wireFailures;
    // Ledger accounting happens at HIB boundaries only (injected at
    // inject(), delivered at ingress pop): a permanently lost packet is
    // "dropped" once its loss is routed to the victim HIB here.
    system().ledger().onDropped();
    warn("%s: wire failure victim of lost %s", _name.c_str(),
         pkt.toString().c_str());

    switch (pkt.type) {
      case PacketType::WriteReq:
      case PacketType::EagerWrite:
        // We were charged at injection; the ack will never come.
        _outstanding.drainLost();
        return;

      case PacketType::WriteAck:
      case PacketType::UpdateAck:
        // The remote side completed the work but the ack was lost.
        _outstanding.drainLost();
        return;

      case PacketType::ReadReq:
      case PacketType::ReadReply:
      case PacketType::AtomicReq:
      case PacketType::AtomicReply:
        failReply(pkt.ticket);
        return;

      case PacketType::CopyReq:
      case PacketType::CopyData:
        _outstanding.drainLost();
        copyFailed(pkt.ticket);
        return;

      case PacketType::Update:
        // The origin expected one completion per reflected update (an
        // UpdateAck, or — for its own reflected write — the update
        // itself, which also carries the pending-counter decrement).
        _outstanding.drainLost();
        if (pkt.dst == pkt.origin && _counterCache.enabled())
            _counterCache.decrement(pkt.addr);
        return;

      case PacketType::WriteOwner: {
        // The writer charged itself copies-1 completions and bumped its
        // pending-write counter when it sent the value to the owner; the
        // owner will never reflect it.
        std::uint64_t expect = 1;
        if (_dir) {
            if (const auto *e = _dir->byHome(_dir->pageOf(pkt.addr));
                e && e->copies.size() > 1)
                expect = e->copies.size() - 1;
        }
        _outstanding.drainLost(expect);
        if (_counterCache.enabled())
            _counterCache.decrement(pkt.addr);
        return;
      }

      case PacketType::RingUpdate:
        // Our update will never complete the loop around the ring.
        _outstanding.drainLost();
        return;

      case PacketType::InvReq: {
        // The holder will never ack.  Synthesize the ack so the pending
        // invalidation round completes; the not-invalidated stale copy
        // is the visible damage, accounted by the failure counters.
        if (_dir) {
            if (auto *e = _dir->byHome(_dir->pageOf(pkt.addr));
                e && e->protocol) {
                Packet ack;
                ack.type = PacketType::InvAck;
                ack.dst = _node;
                ack.src = pkt.dst;
                ack.addr = pkt.addr;
                e->protocol->handlePacket(_node, ack);
            }
        }
        return;
      }

      case PacketType::InvAck:
        // The ack itself was lost: process it here as if it arrived.
        if (_dir) {
            if (auto *e = _dir->byHome(_dir->pageOf(pkt.addr));
                e && e->protocol)
                e->protocol->handlePacket(_node, pkt);
        }
        return;

      case PacketType::PageReq:
      case PacketType::PageData:
      case PacketType::Message:
        // Software-layer traffic: no hardware counters to restore; the
        // software layers see the failure through the stats.
        return;

      case PacketType::CollUp:
      case PacketType::CollDown:
        // The engine synthesizes the lost arrival/release (error flag
        // set) so every member of the collective still completes.
        _collEngine.onWireFailure(pkt);
        return;
    }
}

void
Hib::handleWriteReq(Packet &&pkt, OnDone finished)
{
    const PAddr offset = offsetOf(pkt.addr);
    const std::uint64_t traceId = pkt.traceId;
    writeShm(offset, pkt.value,
             [this, pkt = std::move(pkt),
              finished = std::move(finished)]() mutable {
                 coherence::PageEntry *e =
                     _dir ? _dir->byAddr(pkt.addr) : nullptr;
                 if (e) {
                     _dir->notifyApply(
                         _node, e->home + (pkt.addr % _dir->pageBytes()),
                         pkt.value, pkt.src);
                     if (e->protocol && e->owner == _node)
                         e->protocol->remoteWriteAtHome(_node, *e, pkt);
                 }
                 Packet ack;
                 ack.type = PacketType::WriteAck;
                 ack.dst = pkt.src;
                 ack.ticket = pkt.ticket;
                 ack.payloadBytes = 0;
                 ack.traceId = pkt.traceId;
                 inject(std::move(ack), /*track=*/false);
                 finished();
             },
             traceId);
}

void
Hib::handleCopyReq(Packet &&pkt, OnDone finished)
{
    const std::uint32_t words = static_cast<std::uint32_t>(pkt.value);
    const PAddr offset = offsetOf(pkt.addr);
    const std::uint64_t traceId = pkt.traceId;
    // One SRAM/DRAM burst read; wire serialization is charged by the
    // links through payloadBytes.
    readShm(offset,
            [this, pkt = std::move(pkt), words, offset,
             finished = std::move(finished)](Word) mutable {
                auto bulk = std::make_shared<std::vector<Word>>();
                bulk->reserve(words);
                for (std::uint32_t w = 0; w < words; ++w)
                    bulk->push_back(_storage.read(offset + PAddr(w) * 8));

                Packet data;
                data.type = PacketType::CopyData;
                data.dst = pkt.src;
                data.addr = pkt.addr;
                data.addr2 = pkt.addr2;
                data.value = words;
                data.ticket = pkt.ticket;
                data.payloadBytes = words * 8;
                data.bulk = std::move(bulk);
                data.traceId = pkt.traceId;
                inject(std::move(data), /*track=*/false);
                finished();
            },
            traceId);
}

void
Hib::handleCopyData(Packet &&pkt, OnDone finished)
{
    const std::uint32_t words = static_cast<std::uint32_t>(pkt.value);
    const PAddr offset = offsetOf(pkt.addr2);
    if (!pkt.bulk || pkt.bulk->size() != words)
        panic("%s: malformed CopyData", _name.c_str());
    for (std::uint32_t w = 0; w < words; ++w)
        _storage.write(offset + PAddr(w) * 8, (*pkt.bulk)[w]);

    // DMA cost of writing the block into local memory.
    const Tick cost = config().prototype == Prototype::TelegraphosI
                          ? config().hibSram
                          : config().tcWriteTxn(words * 2);
    const std::uint64_t ticket = pkt.ticket;
    const std::uint64_t traceId = pkt.traceId;
    schedule(cost, [this, ticket, traceId,
                    finished = std::move(finished)] {
        _sys.tracer().record(traceId, trace::Span::Completion, now(),
                             _traceComp);
        _outstanding.complete();
        auto it = _copyDone.find(ticket);
        if (it != _copyDone.end()) {
            OnDone cb = std::move(it->second);
            _copyDone.erase(it);
            cb();
        }
        finished();
    });
}

void
Hib::handlePacket(Packet &&pkt, OnDone finished)
{
    switch (pkt.type) {
      case PacketType::WriteReq:
        handleWriteReq(std::move(pkt), std::move(finished));
        return;

      case PacketType::WriteAck:
      case PacketType::UpdateAck:
        // The ack closes the originating write's lifecycle.
        _sys.tracer().record(pkt.traceId, trace::Span::Completion, now(),
                             _traceComp);
        _outstanding.complete();
        finished();
        return;

      case PacketType::ReadReq: {
        const PAddr offset = offsetOf(pkt.addr);
        const std::uint64_t traceId = pkt.traceId;
        readShm(offset,
                [this, pkt = std::move(pkt),
                 finished = std::move(finished)](Word v) mutable {
                    Packet reply;
                    reply.type = PacketType::ReadReply;
                    reply.dst = pkt.src;
                    reply.value = v;
                    reply.ticket = pkt.ticket;
                    reply.traceId = pkt.traceId;
                    inject(std::move(reply), /*track=*/false);
                    finished();
                },
                traceId);
        return;
      }

      case PacketType::ReadReply:
      case PacketType::AtomicReply:
        deliverReply(pkt);
        finished();
        return;

      case PacketType::AtomicReq: {
        // Handed to the atomic unit; the ingress pipeline moves on.
        Packet p = std::move(pkt);
        _atomicUnit.request(
            p.aop, offsetOf(p.addr), p.value, p.value2,
            [this, src = p.src, ticket = p.ticket,
             traceId = p.traceId](Word old) {
                Packet reply;
                reply.type = PacketType::AtomicReply;
                reply.dst = src;
                reply.value = old;
                reply.ticket = ticket;
                reply.traceId = traceId;
                inject(std::move(reply), /*track=*/false);
            });
        finished();
        return;
      }

      case PacketType::CopyReq:
        handleCopyReq(std::move(pkt), std::move(finished));
        return;

      case PacketType::CopyData:
        handleCopyData(std::move(pkt), std::move(finished));
        return;

      case PacketType::EagerWrite: {
        const PAddr offset = offsetOf(pkt.addr);
        const std::uint64_t traceId = pkt.traceId;
        writeShm(offset, pkt.value,
                 [this, pkt = std::move(pkt),
                  finished = std::move(finished)]() mutable {
                     if (_dir)
                         _dir->notifyApply(_node, pkt.addr, pkt.value,
                                           pkt.origin);
                     Packet ack;
                     ack.type = PacketType::UpdateAck;
                     ack.dst = pkt.origin;
                     ack.payloadBytes = 0;
                     ack.traceId = pkt.traceId;
                     inject(std::move(ack), /*track=*/false);
                     finished();
                 },
                 traceId);
        return;
      }

      case PacketType::Update:
      case PacketType::WriteOwner:
      case PacketType::RingUpdate:
      case PacketType::InvReq:
      case PacketType::InvAck: {
        coherence::PageEntry *e =
            _dir ? _dir->byHome(_dir->pageOf(pkt.addr)) : nullptr;
        if (e && e->protocol && e->protocol->handlePacket(_node, pkt)) {
            finished();
            return;
        }
        // Page no longer tracked here: still drain the sender's
        // outstanding counter so fences cannot hang.
        if (pkt.type == PacketType::Update && pkt.origin != _node) {
            Packet ack;
            ack.type = PacketType::UpdateAck;
            ack.dst = pkt.origin;
            ack.payloadBytes = 0;
            ack.traceId = pkt.traceId;
            inject(std::move(ack), /*track=*/false);
        } else if (pkt.type == PacketType::InvReq) {
            Packet ack;
            ack.type = PacketType::InvAck;
            ack.dst = pkt.src;
            ack.addr = pkt.addr;
            ack.payloadBytes = 0;
            ack.traceId = pkt.traceId;
            inject(std::move(ack), /*track=*/false);
        }
        finished();
        return;
      }

      case PacketType::PageReq:
      case PacketType::PageData:
      case PacketType::Message: {
        bool consumed = false;
        for (auto &h : _softwareHandlers) {
            if (h(pkt)) {
                consumed = true;
                break;
            }
        }
        if (!consumed)
            warn("%s: unhandled software packet %s", _name.c_str(),
                 pkt.toString().c_str());
        finished();
        return;
      }

      case PacketType::CollUp:
      case PacketType::CollDown:
        _collEngine.handlePacket(std::move(pkt), std::move(finished));
        return;
    }
    panic("%s: unhandled packet type", _name.c_str());
}

} // namespace tg::hib

/**
 * @file
 * Multicast (eager-sharing) table implementation.
 */

#include "hib/multicast_unit.hpp"

namespace tg::hib {

MulticastUnit::MulticastUnit(System &sys, const std::string &name)
    : SimObject(sys, name)
{
}

void
MulticastUnit::addEntry(PAddr local_page, NodeId node, PAddr remote_page)
{
    if (_used >= config().multicastEntries)
        fatal("%s: multicast list exhausted (%u entries)", _name.c_str(),
              config().multicastEntries);
    _table[local_page].push_back(McastDest{node, remote_page});
    ++_used;
}

void
MulticastUnit::removeEntry(PAddr local_page, NodeId node)
{
    auto it = _table.find(local_page);
    if (it == _table.end())
        return;
    auto &v = it->second;
    for (auto d = v.begin(); d != v.end(); ++d) {
        if (d->node == node) {
            v.erase(d);
            --_used;
            break;
        }
    }
    if (v.empty())
        _table.erase(it);
}

void
MulticastUnit::removePage(PAddr local_page)
{
    auto it = _table.find(local_page);
    if (it == _table.end())
        return;
    _used -= it->second.size();
    _table.erase(it);
}

const std::vector<McastDest> *
MulticastUnit::lookup(PAddr local_page) const
{
    auto it = _table.find(local_page);
    return it == _table.end() ? nullptr : &it->second;
}

} // namespace tg::hib

/**
 * @file
 * Launching of special operations (paper sections 2.2.4-2.2.5).
 *
 * Atomic and remote-copy operations need more than one instruction to
 * launch.  The two prototypes differ:
 *
 *  - Telegraphos I: the HIB is put into a *special mode* in which stores
 *    to remote/shared addresses are interpreted as argument-passing (the
 *    TLB still checks access rights); the whole sequence runs inside
 *    uninterruptible PAL code.
 *
 *  - Telegraphos II: per-process *Telegraphos contexts* hold arguments in
 *    HIB registers mapped into the process's address space; physical
 *    addresses are communicated by stores to *shadow addresses*, verified
 *    by a per-context *key*.  Context contents survive context switches.
 *
 * This unit models the register file and the capture/decode logic; the
 * Hib itself executes launches (it owns the network paths).
 */

#ifndef TELEGRAPHOS_HIB_SPECIAL_OPS_HPP
#define TELEGRAPHOS_HIB_SPECIAL_OPS_HPP

#include <cstdint>
#include <vector>

#include "node/address.hpp"
#include "sim/sim_object.hpp"

namespace tg::hib {

/** Special operation opcodes written to op registers. */
enum class SpecialOp : Word
{
    None = 0,
    FetchStore = 1,
    FetchInc = 2,
    Cas = 3,
    Copy = 4,
};

/** Collective opcodes written to kCtxCollOp (DESIGN.md section 15). */
enum class CollOp : Word
{
    None = 0,
    Barrier = 1,
    Bcast = 2,
    Reduce = 3,
    AllReduce = 4,
};

/** Snapshot of a collective descriptor assembled in a context. */
struct CollArgs
{
    CollOp op = CollOp::None;
    std::uint32_t group = 0; ///< communicator group id
    std::uint32_t root = 0;  ///< root rank within the group
    Word datum = 0;          ///< contribution word (reduce/all-reduce)
};

/** Snapshot of launch arguments assembled in a context / special regs. */
struct LaunchArgs
{
    SpecialOp op = SpecialOp::None;
    PAddr srcPa = 0;  ///< target of atomics; source of copies
    PAddr dstPa = 0;  ///< destination of copies
    Word datum = 0;   ///< first operand
    Word datum2 = 0;  ///< second operand (CAS new value)
    bool srcValid = false;
    bool dstValid = false;
};

/**
 * Encode the argument of a store to shadow space: which context, which
 * address field, and the authentication key (paper section 2.2.5: "the
 * lowest bits of the argument of the store operation constitute a key").
 */
constexpr Word
shadowStoreArg(std::uint32_t ctx, bool dst_field, std::uint32_t key)
{
    return (Word(dst_field ? 1 : 0) << 56) | (Word(ctx) << 32) | Word(key);
}

/**
 * Encode a FLASH-style shadow store (paper section 2.2.5): no context id
 * and no key in the argument — the HIB deposits the address into the
 * context selected by its PID register, which the *operating system*
 * must save/restore on every context switch.  Telegraphos rejects this
 * because it requires distributing a modified OS; modelling it lets
 * experiment A1 quantify the trade.
 */
constexpr Word
flashShadowArg(bool dst_field)
{
    return (Word(1) << 57) | (Word(dst_field ? 1 : 0) << 56);
}

/** True when a shadow-store argument uses the FLASH PID convention. */
constexpr bool
isFlashShadowArg(Word store_value)
{
    return (store_value >> 57) & 1;
}

/** Context register file + Telegraphos I special-mode state machine. */
class SpecialOpsUnit : public SimObject
{
  public:
    SpecialOpsUnit(System &sys, const std::string &name);

    // ------------------------------------------------------------------
    // Telegraphos II: contexts, keys, shadow addressing
    // ------------------------------------------------------------------

    /** OS call: bind @p key to context @p idx (at process setup). */
    void assignKey(std::uint32_t idx, std::uint32_t key);

    /** HIB register page base of context @p idx (node-local offset). */
    static PAddr
    contextRegBase(std::uint32_t idx)
    {
        return node::kRegContextBase + PAddr(idx) * node::kContextStride;
    }

    /**
     * Decode a store to HIB register space as a context field write.
     * @return true when @p reg_offset addressed a context register.
     */
    bool ctxWrite(PAddr reg_offset, Word value);

    /** True when @p reg_offset is the GO register of some context. */
    bool isGo(PAddr reg_offset, std::uint32_t &ctx_out) const;

    /** True when @p reg_offset is the collective-GO register of some
     *  context (reading it launches the assembled collective). */
    bool isCollGo(PAddr reg_offset, std::uint32_t &ctx_out) const;

    /** Collective descriptor currently assembled in context @p idx. */
    CollArgs collArgs(std::uint32_t idx) const;

    /**
     * Capture a physical address arriving through shadow space.
     * Validates the key; on mismatch the store is dropped and counted
     * (the paper's authenticity check).
     * @return true when accepted.
     */
    bool shadowCapture(PAddr stripped_pa, Word store_value);

    // ------------------------------------------------------------------
    // FLASH-style PID register (paper section 2.2.5, for experiment A1)
    // ------------------------------------------------------------------

    /** OS context-switch hook: select the running process's context. */
    void setPid(std::uint32_t ctx_idx) { _pid = ctx_idx; }
    std::uint32_t pid() const { return _pid; }

    /**
     * Capture a shadow store under the FLASH convention: the address
     * lands in the context named by the PID register — right or wrong.
     */
    void shadowCapturePid(PAddr stripped_pa, Word store_value);

    /** Arguments currently assembled in context @p idx. */
    LaunchArgs args(std::uint32_t idx) const;

    /** Clear validity after a launch so stale addresses cannot be reused. */
    void consume(std::uint32_t idx);

    // ------------------------------------------------------------------
    // Telegraphos I: special mode
    // ------------------------------------------------------------------

    /** Enter/leave special mode (store to kRegSpecialMode). */
    void setSpecialMode(bool on);
    bool specialMode() const { return _specialMode; }

    /** Capture a store seen while in special mode (1st = src, 2nd = dst). */
    void captureAddress(PAddr pa);

    /** Writes to the Telegraphos I special op/datum registers. */
    bool specialRegWrite(PAddr reg_offset, Word value);

    /** Arguments assembled via special mode. */
    LaunchArgs specialArgs() const { return _special; }

    /** Restore a clean state (e.g. after a fault inside PAL code). */
    void resetSpecial();

    std::uint64_t keyViolations() const { return _keyViolations; }

  private:
    struct Context
    {
        std::uint32_t key = 0;
        LaunchArgs args;
        CollArgs coll;
    };

    std::vector<Context> _contexts;
    std::uint64_t _keyViolations = 0;
    std::uint32_t _pid = 0;

    bool _specialMode = false;
    std::uint32_t _captured = 0;
    LaunchArgs _special;
};

} // namespace tg::hib

#endif // TELEGRAPHOS_HIB_SPECIAL_OPS_HPP

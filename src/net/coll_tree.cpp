/**
 * @file
 * Greedy deterministic construction of topology-aware collective trees.
 */

#include "net/coll_tree.hpp"

#include <algorithm>

#include "sim/invariant.hpp"
#include "sim/log.hpp"

namespace tg::net {

namespace {

/** Nodes a complete @p fanout-ary tree of height @p h can hold. */
std::size_t
karyCapacity(std::size_t fanout, std::size_t h)
{
    std::size_t cap = 0;
    std::size_t level = 1;
    for (std::size_t d = 0; d <= h; ++d) {
        cap += level;
        level *= fanout;
    }
    return cap;
}

/** Minimal height of a @p fanout-ary tree holding @p m nodes. */
std::size_t
minKaryHeight(std::size_t fanout, std::size_t m)
{
    std::size_t h = 0;
    while (karyCapacity(fanout, h) < m)
        ++h;
    return h;
}

} // namespace

std::size_t
CollTree::depth() const
{
    std::size_t deepest = 0;
    for (std::size_t r = 0; r < parent.size(); ++r) {
        std::size_t d = 0;
        for (std::size_t at = r; at != rootRank; at = parent[at])
            ++d;
        deepest = std::max(deepest, d);
    }
    return deepest;
}

CollTree
buildCollTree(const TopologySpec &spec, const std::vector<NodeId> &members,
              std::size_t root_rank, std::size_t fanout)
{
    const std::size_t m = members.size();
    TG_AUDIT(m >= 1 && root_rank < m, "buildCollTree: bad root rank");
    TG_AUDIT(fanout >= 1, "buildCollTree: fanout must be >= 1");

    CollTree tree;
    tree.rootRank = root_rank;
    tree.parent.assign(m, root_rank);
    tree.children.assign(m, {});
    if (m == 1)
        return tree;

    const TopologyModel &model = spec.model();

    // Attach ranks in (hops-from-root, rank) order: near members become
    // interior nodes serving the members behind them.
    std::vector<std::size_t> order;
    order.reserve(m - 1);
    for (std::size_t r = 0; r < m; ++r)
        if (r != root_rank)
            order.push_back(r);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         const std::size_t ha =
                             model.hops(spec, members[root_rank], members[a]);
                         const std::size_t hb =
                             model.hops(spec, members[root_rank], members[b]);
                         if (ha != hb)
                             return ha < hb;
                         return a < b;
                     });

    // Greedy attach: the nearest (by fabric hops) already-placed rank
    // with a free child slot, ties broken by placement order.  A pure
    // nearest-neighbour attach would trace the fabric's diameter
    // (O(sqrt N) depth on a torus), so candidates are restricted to
    // depths below the minimal k-ary height for m members — locality
    // shapes the tree, the cap keeps its height O(log_k m).  The cap
    // never strands a rank: if every sub-cap node were full the placed
    // set would already be a complete tree holding >= m ranks.
    const std::size_t maxDepth = minKaryHeight(fanout, m);
    std::vector<std::size_t> depthOf(m, 0);
    std::vector<std::size_t> placed;
    placed.reserve(m);
    placed.push_back(root_rank);
    for (const std::size_t r : order) {
        std::size_t best = root_rank;
        std::size_t bestHops = ~std::size_t(0);
        for (const std::size_t cand : placed) {
            if (tree.children[cand].size() >= fanout)
                continue;
            if (depthOf[cand] + 1 > maxDepth)
                continue;
            const std::size_t h =
                model.hops(spec, members[cand], members[r]);
            if (h < bestHops) {
                bestHops = h;
                best = cand;
            }
        }
        TG_AUDIT(bestHops != ~std::size_t(0),
                 "buildCollTree: no eligible parent (fanout %zu, %zu members)",
                 fanout, m);
        tree.parent[r] = best;
        tree.children[best].push_back(r);
        depthOf[r] = depthOf[best] + 1;
        placed.push_back(r);
    }
    return tree;
}

} // namespace tg::net

/**
 * @file
 * FabricRerouter: deterministic fault-aware routing epochs.
 *
 * Down-windows live statically in FaultSpec and the per-link injectors
 * derive their outage schedule purely from (window list, link name) — no
 * RNG, no traffic dependence.  That makes the fabric's entire reroute
 * plan computable at construction time: for every directed trunk channel
 * the rerouter takes the injector's merged down-windows, keeps the part
 * of each outage past linkDownDeadline (the instant Channel::failFast
 * starts killing traffic on the wire), and sweeps the resulting
 * intervals into a sequence of *routing epochs* — (tick, set of dead
 * trunks) pairs at which the fabric's routes flip atomically.
 *
 * At each flip the rerouter either swaps whole per-switch routing tables
 * (destination-routed fabrics: per-epoch BFS over the surviving trunk
 * graph, tie-broken towards the baseline port so recovery epochs restore
 * the original routes exactly) or republishes itself as the DeadView a
 * per-packet routing function consults (fat-tree alternate-spine
 * rehash).  Because the flip tick coincides with the dead trunk's
 * fail-fast flush, a flow is never live on both the old and the new path
 * at once (DESIGN.md, "Routing epochs").
 *
 * Everything — epoch ticks, route tables, flip events — is a pure
 * function of (seed, spec, topology), so faulted runs keep the
 * same-seed trace-hash reproducibility contract.
 */

#ifndef TELEGRAPHOS_NET_REROUTE_HPP
#define TELEGRAPHOS_NET_REROUTE_HPP

#include <string>
#include <vector>

#include "net/switch.hpp"
#include "net/topology.hpp"
#include "sim/sim_object.hpp"

namespace tg::net {

/** Precomputed routing-epoch engine for one Network's switch fabric. */
class FabricRerouter : public SimObject, public TopologyModel::DeadView
{
  public:
    /** One trunk cable as the Network built it: the model's endpoint
     *  descriptor plus the two directed channel names (the names seed
     *  the fault injectors, so they identify the outage schedule). */
    struct TrunkRef
    {
        TopologyModel::Trunk t;
        std::string fwdName; ///< channel swA -> swB
        std::string revName; ///< channel swB -> swA
    };

    FabricRerouter(System &sys, const std::string &name,
                   const TopologySpec &spec,
                   std::vector<Switch *> switches,
                   const std::vector<TrunkRef> &trunks);

    /** Is the trunk leaving @p sw through @p port dead in the current
     *  epoch?  (TopologyModel::DeadView; consulted by per-packet route
     *  functions on src-routed fabrics.) */
    bool trunkDead(std::size_t sw, std::size_t port) const override;

    /** Number of planned route flips (epochs beyond the baseline). */
    std::size_t plannedFlips() const { return _epochs.size() - 1; }

    /** Route flips applied so far. */
    std::uint64_t flipsApplied() const { return _flips; }

    /** Index of the epoch currently routing the fabric (0 = baseline). */
    std::size_t currentEpoch() const { return _current; }

    /** Directed trunks dead in the current epoch. */
    std::size_t deadTrunksNow() const;

  private:
    /** [from, until): a directed trunk is declared dead by the fabric. */
    struct Interval
    {
        Tick from, until;
    };

    /** One directed switch-to-switch hop with its outage schedule. */
    struct Edge
    {
        std::size_t sw, port, to;
        std::vector<Interval> dead;
    };

    /** Routing state switching in atomically at tick @p at. */
    struct Epoch
    {
        Tick at = 0;
        std::vector<std::uint8_t> dead; ///< by sw * stride + port
        /** Per switch: destination switch -> output port (empty on
         *  src-routed fabrics, which consult the DeadView instead). */
        std::vector<std::vector<std::size_t>> nextHop;
    };

    void computeNextHops(Epoch &ep) const;
    void applyEpoch(std::size_t k);
    std::size_t edgeIdx(std::size_t sw, std::size_t port) const
    {
        return sw * _stride + port;
    }

    TopologySpec _spec;
    std::vector<Switch *> _switches;
    std::size_t _stride; ///< ports on the widest switch (bitset stride)
    std::vector<Edge> _edges;
    std::vector<std::size_t> _sampleNode; ///< one attached node per switch
    std::vector<Epoch> _epochs;
    std::size_t _current = 0;
    std::uint64_t _flips = 0;
};

} // namespace tg::net

#endif // TELEGRAPHOS_NET_REROUTE_HPP

/**
 * @file
 * Cut-through switch with shared-buffer output queues.
 */

#include "net/switch.hpp"

namespace tg::net {

Switch::Switch(System &sys, const std::string &name, std::size_t ports,
               std::size_t vcs)
    : SimObject(sys, name), _ports(ports), _vcs(vcs),
      _arena(&sys.arena()), _busy(ports * vcs, false)
{
    if (vcs == 0)
        fatal("%s: need at least one VC", name.c_str());
    const std::size_t cap = config().switchQueuePackets;
    _in.reserve(ports * vcs);
    _out.reserve(ports * vcs);
    for (std::size_t p = 0; p < ports; ++p) {
        for (std::size_t v = 0; v < vcs; ++v) {
            _in.push_back(std::make_unique<BoundedQueue>(*_arena, cap));
            _out.push_back(std::make_unique<BoundedQueue>(*_arena, cap));
            _in.back()->onData([this, p, v] { pump(p, v); });
            // An input may be stalled on a full output; wake everything
            // when any output drains (inputs re-check their own head).
            _out.back()->onSpace([this] { pumpAll(); });
        }
    }
    _traceComp = sys.tracer().registerComponent(name);
}

void
Switch::setRoute(NodeId node, std::size_t port)
{
    if (port >= _ports)
        fatal("%s: route to port %zu of %zu", _name.c_str(), port, _ports);
    if (_routes.size() <= node)
        _routes.resize(node + 1, SIZE_MAX);
    _routes[node] = port;
}

void
Switch::applyRoutes(std::vector<std::size_t> routes)
{
    for (std::size_t p : routes)
        if (p != SIZE_MAX && p >= _ports)
            fatal("%s: epoch route to port %zu of %zu", _name.c_str(), p,
                  _ports);
    _routes = std::move(routes);
    pumpAll();
}

std::size_t
Switch::route(NodeId node) const
{
    if (node >= _routes.size() || _routes[node] == SIZE_MAX)
        panic("%s: no route for node %u", _name.c_str(), unsigned(node));
    return _routes[node];
}

void
Switch::pumpAll()
{
    for (std::size_t p = 0; p < _ports; ++p)
        for (std::size_t v = 0; v < _vcs; ++v)
            pump(p, v);
}

void
Switch::pump(std::size_t port, std::size_t vc)
{
    BoundedQueue &in = *_in[idx(port, vc)];
    if (_busy[idx(port, vc)] || in.empty())
        return;

    // Arbitration reads only the arena's SoA hot fields; the cold packet
    // body is never touched on the switch path (DESIGN.md section 14).
    const PacketHandle head = in.frontHandle();
    const std::size_t out = _routeFn ? _routeFn(_arena->hot(head))
                                     : route(_arena->dst(head));
    if (out >= _ports)
        panic("%s: route produced port %zu of %zu", _name.c_str(), out,
              _ports);
    const std::uint8_t out_vc =
        _vcMap ? _vcMap(_arena->hot(head), port, out, std::uint8_t(vc))
               : std::uint8_t(vc);
    if (out_vc >= _vcs)
        panic("%s: VC map produced vc %u of %zu", _name.c_str(),
              unsigned(out_vc), _vcs);

    BoundedQueue &oq = *_out[idx(out, out_vc)];
    if (!oq.reserve())
        return; // back-pressure: wait for the (VC-private) output buffer

    _busy[idx(port, vc)] = true;
    schedule(config().switchLatency, [this, port, vc, out, out_vc] {
        const PacketHandle h = _in[idx(port, vc)]->popHandle();
        _arena->setVc(h, out_vc);
        const std::uint8_t hops = _arena->bumpHops(h);
        if (Trace::anyEnabled())
            Trace::log(now(), "net", "%s fwd p%zu.%zu->p%zu.%u %s",
                       _name.c_str(), port, vc, out, unsigned(out_vc),
                       _arena->syncBody(h)->toString().c_str());
        ++_forwarded;
        _sys.tracer().record(_arena->traceId(h), trace::Span::SwitchFwd,
                             now(), _traceComp, hops);
        _out[idx(out, out_vc)]->pushReservedHandle(h);
        _busy[idx(port, vc)] = false;
        pump(port, vc);
    });
}

} // namespace tg::net

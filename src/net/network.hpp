/**
 * @file
 * Network: switches + channels wired into a topology, with node
 * attachment points for HIBs.
 */

#ifndef TELEGRAPHOS_NET_NETWORK_HPP
#define TELEGRAPHOS_NET_NETWORK_HPP

#include <memory>
#include <vector>

#include "net/link.hpp"
#include "net/reroute.hpp"
#include "net/switch.hpp"
#include "net/topology.hpp"
#include "sim/sim_object.hpp"

namespace tg::net {

/**
 * Attachment point a node's HIB presents to the network: an egress FIFO
 * the network drains and an ingress FIFO the network fills.
 */
class NodeEndpoint
{
  public:
    virtual ~NodeEndpoint() = default;

    /** Node-to-network FIFO (the HIB's outgoing link interface). */
    virtual BoundedQueue &egress() = 0;

    /** Network-to-node FIFO (the HIB's incoming link interface). */
    virtual BoundedQueue &ingress() = 0;
};

/**
 * The full interconnect: builds switches and channels for a TopologySpec
 * and routes packets between attached node endpoints.
 */
class Network : public SimObject
{
  public:
    Network(System &sys, const std::string &name, const TopologySpec &spec);

    /** Attach node @p id (must be called for every id before traffic). */
    void attach(NodeId id, NodeEndpoint &ep);

    const TopologySpec &spec() const { return _spec; }

    /** Total packets forwarded by all switches. */
    std::uint64_t switchForwarded() const;

    /** Number of hops between two nodes (for analytical latency checks). */
    std::size_t hops(NodeId a, NodeId b) const;

    /** Install @p h on every channel: called with each packet the
     *  reliability layer permanently failed to deliver. */
    void setFailureHandler(Channel::FailureHandler h);

    // ------------------------------------------------------------------
    // Reliability-layer statistics aggregated over all channels (all
    // zero when the fault model is inert)
    // ------------------------------------------------------------------

    /** CRC-failed arrivals discarded, all links. */
    std::uint64_t corruptions() const;

    /** Link-level retransmissions, all links. */
    std::uint64_t retransmissions() const;

    /** Duplicate arrivals discarded, all links. */
    std::uint64_t duplicateDiscards() const;

    /** Packets permanently failed by the links, all links. */
    std::uint64_t wireFailures() const;

    // ------------------------------------------------------------------
    // Fault-aware routing (present on multi-path fabrics when the fault
    // spec schedules down-windows; see net/reroute.hpp)
    // ------------------------------------------------------------------

    /** The routing-epoch engine, or nullptr when the fabric routes
     *  statically (single-path shape or no scheduled outages). */
    const FabricRerouter *rerouter() const { return _rerouter.get(); }

    /** Planned routing epochs beyond the baseline (0 = static routing). */
    std::size_t routingEpochs() const
    {
        return _rerouter ? _rerouter->plannedFlips() : 0;
    }

    /** Routing-epoch flips applied so far. */
    std::uint64_t reroutesApplied() const
    {
        return _rerouter ? _rerouter->flipsApplied() : 0;
    }

  private:
    void buildRoutes();

    TopologySpec _spec;
    std::vector<std::unique_ptr<Switch>> _switches;
    std::vector<std::unique_ptr<Channel>> _channels;
    std::unique_ptr<FabricRerouter> _rerouter;
};

} // namespace tg::net

#endif // TELEGRAPHOS_NET_NETWORK_HPP

/**
 * @file
 * Deterministic k-ary collective trees over the active fabric.
 *
 * The NIC collective engine (hib::CollEngine, DESIGN.md section 15) runs
 * barrier / broadcast / reduce state machines over a reduction tree whose
 * shape must be (a) identical on every member node, every seed and every
 * shard count, and (b) topology-aware, so a torus gets locality-clustered
 * subtrees instead of a shape that zig-zags across the fabric.
 *
 * buildCollTree() satisfies both with a greedy deterministic construction
 * driven purely by TopologyModel::hops(): members are attached in
 * (distance-from-root, rank) order to the already-placed node that is
 * nearest by hop count and still has a free child slot.  Everything the
 * algorithm consults is a pure function of (spec, members, root, fanout),
 * so all members independently compute byte-identical trees.
 */

#ifndef TELEGRAPHOS_NET_COLL_TREE_HPP
#define TELEGRAPHOS_NET_COLL_TREE_HPP

#include <cstddef>
#include <vector>

#include "net/topology.hpp"
#include "sim/types.hpp"

namespace tg::net {

/**
 * A rooted k-ary tree over communicator *ranks* (indices into the
 * member list, not NodeIds).  parent[rootRank] == rootRank.
 */
struct CollTree
{
    std::vector<std::size_t> parent;                ///< per-rank parent rank
    std::vector<std::vector<std::size_t>> children; ///< per-rank child ranks
    std::size_t rootRank = 0;

    /** Tree height: longest rank-to-root path in edges. */
    std::size_t depth() const;
};

/**
 * Build the deterministic k-ary tree for @p members rooted at rank
 * @p root_rank with at most @p fanout children per node, shaped by
 * TopologyModel::hops() distances of @p spec.  O(m^2) in the member
 * count — construction-time only, never on the packet path.
 */
CollTree buildCollTree(const TopologySpec &spec,
                       const std::vector<NodeId> &members,
                       std::size_t root_rank, std::size_t fanout);

} // namespace tg::net

#endif // TELEGRAPHOS_NET_COLL_TREE_HPP

/**
 * @file
 * Telegraphos switch model.
 *
 * The real switch (references [16, 17] of the paper) is a shared-buffer
 * crossbar with VC-level back-pressured flow control, deterministic
 * routing, in-order delivery and deadlock freedom.  We model it as:
 *
 *  - one input FIFO and one output FIFO per (port, virtual channel)
 *    (shares of the pipelined shared buffer),
 *  - a per-(port, VC) cut-through pipeline of fixed latency,
 *  - a static routing table (destination node -> output port),
 *  - a VC-mapping hook so topologies can implement dateline deadlock
 *    avoidance (packets crossing a ring's wrap link are bumped to the
 *    escape VC), and
 *  - reservation-based back-pressure between stages.
 *
 * In-order delivery per (source, destination) follows from deterministic
 * single-path routing plus FIFO queueing at every stage — a flow always
 * traverses the same VC sequence, so VCs never reorder it.  A property
 * test asserts it (tests/net/network_test.cpp) because the coherence
 * protocol's correctness argument depends on it (paper section 2.3.1).
 */

#ifndef TELEGRAPHOS_NET_SWITCH_HPP
#define TELEGRAPHOS_NET_SWITCH_HPP

#include <memory>
#include <vector>

#include "net/queue.hpp"
#include "sim/sim_object.hpp"

namespace tg::net {

/** A multi-port, multi-VC shared-buffer switch. */
class Switch : public SimObject
{
  public:
    /**
     * Choose the outgoing VC for a packet:
     * (hot view, in_port, out_port, in_vc) -> out_vc.  The input port
     * lets dimension-ordered schemes distinguish a dimension turn
     * (restart on VC0) from continued travel.  Defaults to keeping the
     * incoming VC.  The hooks take the arena's SoA hot view — the switch
     * never touches the cold packet body (DESIGN.md section 14).
     */
    using VcMap = Fn<std::uint8_t(const PacketHot &, std::size_t,
                                  std::size_t, std::uint8_t)>;

    /**
     * Per-packet output-port selection: hot view -> out_port.  Installed
     * instead of the static route table when routing depends on more
     * than the destination (fat-tree per-flow uplink hashing).
     */
    using RouteFn = Fn<std::size_t(const PacketHot &)>;

    /**
     * @param sys    owning system
     * @param name   instance name
     * @param ports  number of bidirectional ports
     * @param vcs    virtual channels per port (>= 1)
     */
    Switch(System &sys, const std::string &name, std::size_t ports,
           std::size_t vcs = 2);

    std::size_t numPorts() const { return _ports; }
    std::size_t numVcs() const { return _vcs; }

    /** Queue a link delivers into (switch ingress side). */
    BoundedQueue &inQueue(std::size_t port, std::size_t vc = 0)
    {
        return *_in[idx(port, vc)];
    }

    /** Queue a link drains from (switch egress side). */
    BoundedQueue &outQueue(std::size_t port, std::size_t vc = 0)
    {
        return *_out[idx(port, vc)];
    }

    /** Install/overwrite a routing entry: packets for @p node leave @p port. */
    void setRoute(NodeId node, std::size_t port);

    /**
     * Atomically replace the whole routing table (one entry per node;
     * SIZE_MAX = unrouted) and re-evaluate every stalled input.  The
     * fabric rerouter swaps tables with this at routing-epoch flips so a
     * switch never forwards under a half-updated table.
     */
    void applyRoutes(std::vector<std::size_t> routes);

    /** Re-evaluate every stalled input head (route function changed
     *  underneath us: a routing-epoch flip on a per-packet-routed
     *  fabric). */
    void refreshRoutes() { pumpAll(); }

    /** Routing lookup (panics on unrouted destination). */
    std::size_t route(NodeId node) const;

    /** Install the VC-mapping hook (dateline schemes). */
    void setVcMap(VcMap map) { _vcMap = std::move(map); }

    /** Install a per-packet route function (overrides the table). */
    void setRouteFn(RouteFn fn) { _routeFn = std::move(fn); }

    /** Total packets forwarded. */
    std::uint64_t forwarded() const { return _forwarded; }

  private:
    std::size_t idx(std::size_t port, std::size_t vc) const
    {
        return port * _vcs + vc;
    }

    void pump(std::size_t port, std::size_t vc);
    void pumpAll();

    std::size_t _ports;
    std::size_t _vcs;
    PacketArena *_arena = nullptr; ///< the system's packet arena
    std::vector<std::unique_ptr<BoundedQueue>> _in;
    std::vector<std::unique_ptr<BoundedQueue>> _out;
    std::vector<bool> _busy;
    std::vector<std::size_t> _routes; // indexed by NodeId
    VcMap _vcMap;
    RouteFn _routeFn;
    std::uint64_t _forwarded = 0;
    std::uint16_t _traceComp = 0;
};

} // namespace tg::net

#endif // TELEGRAPHOS_NET_SWITCH_HPP

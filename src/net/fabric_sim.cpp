/**
 * @file
 * Sharded packet-level fabric simulation (see fabric_sim.hpp).
 *
 * Event structure: each node runs an intra-LP injection chain on its
 * switch's LP; a packet hop across a trunk is one ShardedEngine::send
 * (the only inter-LP edge, which is what the lookahead bounds); local
 * delivery at the destination switch happens inline in the arrival
 * handler.  Egress contention is modelled without extra events: each
 * output port keeps a busy-horizon tick, a packet departs at
 * max(arrival + switchLatency, horizon) + serTicks, and the packet is
 * dropped when the horizon is more than switchQueuePackets
 * serializations ahead (the shared-buffer share overflowed).
 */

#include "net/fabric_sim.hpp"

#include <cmath>

#include "sim/log.hpp"

namespace tg::net {

namespace {

/** Serialization ticks of one packet on a ribbon-cable link. */
Tick
serializationTicks(const Config &cfg, const FabricWorkload &wl)
{
    const double bytes = double(wl.payloadBytes + cfg.packetHeaderBytes);
    // tglint: allow(tick-float) fixed per-run conversion, not tick math
    const Tick t = Tick(std::ceil(bytes / cfg.linkBytesPerTick));
    return t == 0 ? 1 : t;
}

/** Conservative lookahead: minimum latency of any trunk hop. */
Tick
trunkLookahead(const Config &cfg, const FabricWorkload &wl)
{
    return serializationTicks(cfg, wl) + cfg.switchLatency + cfg.linkDelay;
}

/** Per-node deterministic stream: pure function of (seed, node). */
std::uint64_t
nodeSeed(std::uint64_t seed, std::size_t node)
{
    return seed ^ (0x9E3779B97F4A7C15ULL * (node + 1));
}

// Per-LP trace-record tags (mixed before each record's fields).
constexpr std::uint64_t kTagInject = 0xA1;
constexpr std::uint64_t kTagDeliver = 0xA2;
constexpr std::uint64_t kTagDrop = 0xA3;

} // namespace

FabricSim::FabricSim(const TopologySpec &spec, const Config &cfg,
                     const FabricWorkload &wl, std::uint32_t threads)
    : _spec(spec), _cfg(cfg), _wl(wl),
      _serTicks(serializationTicks(cfg, wl)),
      _engine(ShardPlan::contiguous(spec.numSwitches(), cfg.shards),
              ShardedEngine::Options{trunkLookahead(cfg, wl), threads})
{
    if (auto ok = _spec.validate(); !ok)
        fatal("FabricSim: invalid topology: %s", ok.error().message.c_str());
    if (_wl.injectGap == 0)
        fatal("FabricSim: injectGap must be >= 1");
    if (_spec.nodes < 2)
        fatal("FabricSim: need at least 2 nodes");

    const std::size_t nsw = _spec.numSwitches();
    _portNeighbor.resize(nsw);
    _portBusy.resize(nsw);
    for (std::size_t sw = 0; sw < nsw; ++sw) {
        _portNeighbor[sw].assign(_spec.portsOf(sw), -1);
        _portBusy[sw].assign(_spec.portsOf(sw), 0);
    }
    for (const TopologyModel::Trunk &tr : _spec.model().trunks(_spec)) {
        _portNeighbor[tr.swA][tr.portA] = std::int32_t(tr.swB);
        _portNeighbor[tr.swB][tr.portB] = std::int32_t(tr.swA);
    }

    _nodeRng.reserve(_spec.nodes);
    for (std::size_t n = 0; n < _spec.nodes; ++n)
        _nodeRng.emplace_back(nodeSeed(_cfg.seed, n));
    _nodeSent.assign(_spec.nodes, 0);
}

NodeId
FabricSim::pickDst(NodeId node)
{
    const std::size_t n = _spec.nodes;
    switch (_wl.kind) {
    case FabricWorkload::Kind::Transpose: {
        const std::size_t d = (node + n / 2) % n;
        return NodeId(d == node ? (node + 1) % n : d);
    }
    case FabricWorkload::Kind::Hotspot:
        if (_wl.hotNode != node && _nodeRng[node].chance(_wl.hotFraction))
            return NodeId(_wl.hotNode);
        [[fallthrough]];
    case FabricWorkload::Kind::Uniform:
    default: {
        std::size_t d = std::size_t(_nodeRng[node].below(n - 1));
        if (d >= node)
            ++d;
        return NodeId(d);
    }
    }
}

Tick
FabricSim::nextGap(NodeId node)
{
    return 1 + Tick(_nodeRng[node].below(2 * _wl.injectGap));
}

void
FabricSim::arrive(std::size_t sw, Packet p, Tick t)
{
    if (_spec.switchOf(p.dst) == sw) {
        audit::TraceHash &h = _engine.lpTrace(LpId(sw));
        h.mix(kTagDeliver);
        h.mix(std::uint64_t(p.src) << 32 | p.dst);
        h.mix(p.id);
        h.mix(t);
        // Raw field increment: conservation holds only across the whole
        // fabric (this LP never injected the packet), so the audited
        // transition helpers apply to the merged ledger, not per-LP ones.
        ++_engine.lpLedger(LpId(sw)).delivered;
        return;
    }

    const std::size_t port = _spec.model().routePort(_spec, sw, p.src, p.dst);
    TG_AUDIT(port < _portNeighbor[sw].size() &&
                 _portNeighbor[sw][port] >= 0,
             "fabric route leads to a non-trunk port: sw=%zu port=%zu",
             sw, port);
    const std::size_t nsw = std::size_t(_portNeighbor[sw][port]);

    const Tick ready = t + _cfg.switchLatency;
    Tick &busy = _portBusy[sw][port];
    if (busy > ready + _serTicks * _cfg.switchQueuePackets) {
        audit::TraceHash &h = _engine.lpTrace(LpId(sw));
        h.mix(kTagDrop);
        h.mix(std::uint64_t(p.src) << 32 | p.dst);
        h.mix(p.id);
        ++_engine.lpLedger(LpId(sw)).dropped;
        return;
    }
    const Tick depart = (busy > ready ? busy : ready) + _serTicks;
    busy = depart;
    const Tick at = depart + _cfg.linkDelay;
    _engine.send(LpId(sw), LpId(nsw), at,
                 Event([this, nsw, p, at] { arrive(nsw, p, at); }));
}

void
FabricSim::injectNext(NodeId node, Tick t)
{
    const std::size_t sw = _spec.switchOf(node);
    Packet p{node, pickDst(node), _nodeSent[node]++};

    audit::TraceHash &h = _engine.lpTrace(LpId(sw));
    h.mix(kTagInject);
    h.mix(std::uint64_t(p.src) << 32 | p.dst);
    h.mix(p.id);
    h.mix(t);
    ++_engine.lpLedger(LpId(sw)).injected;

    if (_nodeSent[node] < _wl.packetsPerNode) {
        const Tick nt = t + nextGap(node);
        _engine.schedule(LpId(sw), nt,
                         Event([this, node, nt] { injectNext(node, nt); }));
    }
    arrive(sw, p, t);
}

std::uint64_t
FabricSim::run()
{
    if (_wl.packetsPerNode > 0) {
        for (std::size_t n = 0; n < _spec.nodes; ++n) {
            const NodeId node = NodeId(n);
            const Tick t0 = nextGap(node);
            _engine.schedule(LpId(_spec.switchOf(n)), t0,
                             Event([this, node, t0] { injectNext(node, t0); }));
        }
    }
    return _engine.run();
}

} // namespace tg::net

/**
 * @file
 * FabricRerouter implementation: epoch planning at construction,
 * atomic route flips at fenced ticks.
 */

#include "net/reroute.hpp"

#include <algorithm>
#include <cstdint>
#include <deque>

#include "net/fault.hpp"

namespace tg::net {

FabricRerouter::FabricRerouter(System &sys, const std::string &name,
                               const TopologySpec &spec,
                               std::vector<Switch *> switches,
                               const std::vector<TrunkRef> &trunks)
    : SimObject(sys, name), _spec(spec), _switches(std::move(switches)),
      _stride(spec.portsPerSwitch())
{
    const FaultSpec &fs = config().fault;
    const std::uint64_t seed = config().seed;

    // A directed trunk is fabric-dead once its outage outlives the
    // link-down deadline: from that tick Channel::failFast kills
    // everything on the wire, so routing around it is both safe (the old
    // path drains by failing visibly at the same tick) and useful.
    auto dead_intervals = [&](const std::string &link) {
        std::vector<Interval> out;
        FaultInjector inj(fs, seed, link);
        for (const FaultWindow &w : inj.mergedDownWindows()) {
            if (w.until > w.from + fs.linkDownDeadline + 1)
                out.push_back(
                    Interval{w.from + fs.linkDownDeadline + 1, w.until});
        }
        return out;
    };
    for (const TrunkRef &t : trunks) {
        _edges.push_back(Edge{t.t.swA, t.t.portA, t.t.swB,
                              dead_intervals(t.fwdName)});
        _edges.push_back(Edge{t.t.swB, t.t.portB, t.t.swA,
                              dead_intervals(t.revName)});
    }

    _sampleNode.assign(_switches.size(), SIZE_MAX);
    for (std::size_t n = 0; n < _spec.nodes; ++n) {
        const std::size_t sw = _spec.switchOf(n);
        if (_sampleNode[sw] == SIZE_MAX)
            _sampleNode[sw] = n;
    }

    // Sweep interval boundaries into epochs.  Epoch 0 is the baseline
    // (everything alive); each boundary tick where the dead set changes
    // becomes a flip.
    std::vector<Tick> boundaries;
    for (const Edge &e : _edges) {
        for (const Interval &iv : e.dead) {
            boundaries.push_back(iv.from);
            boundaries.push_back(iv.until);
        }
    }
    std::sort(boundaries.begin(), boundaries.end());
    boundaries.erase(std::unique(boundaries.begin(), boundaries.end()),
                     boundaries.end());

    Epoch base;
    base.dead.assign(_switches.size() * _stride, 0);
    _epochs.push_back(std::move(base));
    for (const Tick at : boundaries) {
        Epoch ep;
        ep.at = at;
        ep.dead.assign(_switches.size() * _stride, 0);
        for (const Edge &e : _edges) {
            for (const Interval &iv : e.dead) {
                if (at >= iv.from && at < iv.until)
                    ep.dead[edgeIdx(e.sw, e.port)] = 1;
            }
        }
        if (ep.dead == _epochs.back().dead)
            continue; // boundary did not change the dead set
        _epochs.push_back(std::move(ep));
    }

    if (!_spec.model().srcDependentRouting()) {
        for (std::size_t k = 1; k < _epochs.size(); ++k)
            computeNextHops(_epochs[k]);
    }

    for (std::size_t k = 1; k < _epochs.size(); ++k) {
        const Tick at = _epochs[k].at;
        schedule(at > now() ? at - now() : 0,
                 [this, k] { applyEpoch(k); });
    }
}

bool
FabricRerouter::trunkDead(std::size_t sw, std::size_t port) const
{
    const std::vector<std::uint8_t> &d = _epochs[_current].dead;
    const std::size_t i = edgeIdx(sw, port);
    return i < d.size() && d[i] != 0;
}

std::size_t
FabricRerouter::deadTrunksNow() const
{
    const std::vector<std::uint8_t> &d = _epochs[_current].dead;
    return std::size_t(std::count(d.begin(), d.end(), std::uint8_t(1)));
}

void
FabricRerouter::computeNextHops(Epoch &ep) const
{
    const std::size_t nsw = _switches.size();
    const TopologyModel &model = _spec.model();

    // Adjacency over the surviving trunk graph.
    struct Hop
    {
        std::size_t other, port;
    };
    std::vector<std::vector<Hop>> out(nsw), in(nsw);
    for (const Edge &e : _edges) {
        if (ep.dead[edgeIdx(e.sw, e.port)])
            continue;
        out[e.sw].push_back(Hop{e.to, e.port});
        in[e.to].push_back(Hop{e.sw, e.port});
    }

    ep.nextHop.assign(nsw, std::vector<std::size_t>(nsw, SIZE_MAX));
    std::vector<std::size_t> dist(nsw);
    std::deque<std::size_t> queue;
    for (std::size_t t = 0; t < nsw; ++t) {
        if (_sampleNode[t] == SIZE_MAX)
            continue; // no node attaches here; nothing routes to it

        // Reverse BFS from the destination switch: dist[s] = surviving
        // hop count s -> t.
        dist.assign(nsw, SIZE_MAX);
        dist[t] = 0;
        queue.clear();
        queue.push_back(t);
        while (!queue.empty()) {
            const std::size_t v = queue.front();
            queue.pop_front();
            for (const Hop &h : in[v]) {
                if (dist[h.other] == SIZE_MAX) {
                    dist[h.other] = dist[v] + 1;
                    queue.push_back(h.other);
                }
            }
        }

        std::vector<std::size_t> cands;
        for (std::size_t s = 0; s < nsw; ++s) {
            if (s == t)
                continue;
            // Tie-break towards the baseline port: untouched flows keep
            // their paths, and a recovery epoch (nothing dead) restores
            // the original routes exactly, since dimension-ordered
            // baseline routes are shortest.
            const std::size_t base = model.routePort(
                _spec, s, /*src=*/0, NodeId(_sampleNode[t]));
            cands.clear();
            bool have_base = false;
            if (dist[s] != SIZE_MAX) {
                for (const Hop &h : out[s]) {
                    if (dist[h.other] == SIZE_MAX ||
                        dist[h.other] + 1 != dist[s])
                        continue;
                    if (h.port == base)
                        have_base = true;
                    cands.push_back(h.port);
                }
                std::sort(cands.begin(), cands.end());
            }
            if (have_base) {
                ep.nextHop[s][t] = base;
            } else if (!cands.empty()) {
                // Detoured flows: spread (s, t) pairs over every
                // shortest candidate so a downed trunk's load does not
                // pile onto one alternate link (a torus ring losing a
                // bisection crossing would otherwise push all of it
                // through its single surviving crossing).  The hash is a
                // pure function of (s, t) — deterministic across runs.
                const std::uint64_t h =
                    s * 0x9E3779B97F4A7C15ULL ^ t * 0xC2B2AE3D27D4EB4FULL;
                ep.nextHop[s][t] = cands[h % cands.size()];
            } else {
                // Unreachable: keep the baseline route and let the dead
                // link fail the packet fast (endpoint failover story).
                ep.nextHop[s][t] = base;
            }
        }
    }
}

void
FabricRerouter::applyEpoch(std::size_t k)
{
    _current = k;
    ++_flips;
    const Epoch &ep = _epochs[k];
    Trace::log(now(), "net", "%s epoch %zu: %zu directed trunks down",
               _name.c_str(), k, deadTrunksNow());
    if (!ep.nextHop.empty()) {
        // Destination-routed fabric: swap whole tables, switch by
        // switch, in index order (deterministic event content).
        for (std::size_t sw = 0; sw < _switches.size(); ++sw) {
            std::vector<std::size_t> routes(_spec.nodes, SIZE_MAX);
            for (std::size_t n = 0; n < _spec.nodes; ++n) {
                const std::size_t ds = _spec.switchOf(n);
                routes[n] = ds == sw ? _spec.portOf(n)
                                     : ep.nextHop[sw][ds];
            }
            _switches[sw]->applyRoutes(std::move(routes));
        }
    } else {
        // Src-routed fabric: the per-packet route function reads this
        // rerouter's current epoch; just re-evaluate stalled heads.
        for (Switch *sw : _switches)
            sw->refreshRoutes();
    }
}

} // namespace tg::net

/**
 * @file
 * Network packet format of the simulated Telegraphos interconnect.
 *
 * Every remote operation of the HIB maps onto one or two packet types
 * (request/reply).  Packets also carry the origin node and a per-origin
 * sequence number: the owner-based coherence protocol (paper section
 * 2.3.3) needs to recognise "the reflected write that resulted from my own
 * store", which it does by origin tag.
 */

#ifndef TELEGRAPHOS_NET_PACKET_HPP
#define TELEGRAPHOS_NET_PACKET_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace tg::net {

/** Kinds of packets travelling on the Telegraphos network. */
enum class PacketType : std::uint8_t
{
    // Basic remote operations (paper section 2.2.1 / 2.2.2 / 2.2.3)
    WriteReq,     ///< remote write; acknowledged for fence accounting
    WriteAck,     ///< completion ack for WriteReq
    ReadReq,      ///< blocking remote read request
    ReadReply,    ///< data reply for ReadReq
    CopyReq,      ///< remote copy: fetch remote word(s) to local memory
    CopyData,     ///< data flowing back for a CopyReq
    AtomicReq,    ///< fetch&store / fetch&inc / compare&swap request
    AtomicReply,  ///< old value reply for AtomicReq

    // Coherence traffic (paper sections 2.2.7, 2.3)
    EagerWrite,   ///< raw eager-update to a destination-local page (2.2.7)
    Update,       ///< protocol update multicast write (carries origin + seq)
    UpdateAck,    ///< ack so the sender's fence counter can drain
    WriteOwner,   ///< write forwarded to the owner of a page
    RingUpdate,   ///< Galactica-style update circulating a sharing ring
    InvReq,       ///< invalidate a page copy
    InvAck,       ///< invalidation acknowledgement

    // Software traffic (VSM / sockets baselines)
    PageReq,      ///< request a page copy (VSM fault service)
    PageData,     ///< full-page data transfer
    Message,      ///< socket-style message payload

    // NIC-resident collectives (hib::CollEngine; DESIGN.md section 15).
    // addr = group id, seq = per-group collective sequence number,
    // value = partial sum / release value, value2 = op opcode + flags.
    CollUp,       ///< upward combine/arrival towards the tree root
    CollDown,     ///< downward release / broadcast payload (bulk)
};

/** Remote atomic operation selector (paper section 2.2.3). */
enum class AtomicOp : std::uint8_t
{
    FetchAndStore,
    FetchAndInc,
    CompareAndSwap,
};

/** A network packet.  Value type: freely copied into queues. */
struct Packet
{
    PacketType type = PacketType::WriteReq;
    NodeId src = 0;       ///< node/HIB that injected this packet
    NodeId dst = 0;       ///< destination node
    PAddr addr = 0;       ///< primary physical address
    PAddr addr2 = 0;      ///< secondary address (copy destination / cas cmp)
    Word value = 0;       ///< data word / atomic operand
    Word value2 = 0;      ///< second operand (compare&swap new value)
    AtomicOp aop = AtomicOp::FetchAndStore;
    NodeId origin = 0;    ///< node whose store originally caused this
    std::uint8_t vc = 0;  ///< virtual channel (dateline deadlock avoidance)
    std::uint64_t seq = 0;     ///< per-origin sequence number
    std::uint64_t ticket = 0;  ///< requester-side matching ticket
    std::uint32_t payloadBytes = 8; ///< payload size for serialization

    // ------------------------------------------------------------------
    // Link-level reliability (set per hop by net::Channel when the fault
    // model is active; both live inside the existing header budget)
    // ------------------------------------------------------------------
    /** Go-back-N sequence number on the current link hop. */
    std::uint64_t lseq = 0;
    /** CRC over header + payload as computed by the hop's sender. */
    std::uint32_t crc = 0;
    /** True when the injecting HIB charged this packet to its
     *  outstanding-operation counter (fence conservation on loss). */
    bool tracked = false;

    /** Lifecycle-tracer operation id (0 = untraced).  Pure observability:
     *  excluded from computeCrc() and from the audit trace hash, so runs
     *  are bit-identical with tracing on or off. */
    std::uint64_t traceId = 0;

    /** Switches traversed so far (multi-hop accounting).  Observability
     *  like traceId: excluded from computeCrc() and the audit hash. */
    std::uint8_t hopsDone = 0;

    /** Bulk word data for CopyData / PageData transfers.  Shared so that
     *  copying packets through queues stays cheap. */
    std::shared_ptr<std::vector<Word>> bulk;

    /** Total wire size (header + payload) given header size @p hdr. */
    std::uint32_t wireBytes(std::uint32_t hdr) const { return hdr + payloadBytes; }

    /**
     * CRC-32C over every end-to-end field and the bulk payload (lseq and
     * the stored crc itself are excluded: lseq is protected implicitly by
     * the go-back-N window, and a corrupted lseq shows up as an
     * out-of-window discard).  A wire bit flip makes the recomputed value
     * disagree with the stored one.
     */
    std::uint32_t computeCrc() const;

    /** Human-readable form for traces. */
    std::string toString() const;
};

/** Short mnemonic for a packet type. */
const char *packetTypeName(PacketType t);

} // namespace tg::net

#endif // TELEGRAPHOS_NET_PACKET_HPP

/**
 * @file
 * Packet-level fabric simulation on the sharded PDES engine.
 *
 * FabricSim drives a TopologyModel fabric (torus2d / torus3d / fat-tree /
 * ring / ...) at packet granularity on tg::ShardedEngine: one logical
 * process per switch (the switch plus its attached nodes), trunk cables
 * as the inter-LP channels, and the fixed trunk-hop latency
 * (serialization + switch cut-through + wire delay) as the conservative
 * lookahead.  This is the scale path of ROADMAP item 1: the full Cluster
 * model (coherence directory, coroutine CPUs) stays sequential, while
 * the fabric experiments that need thousands of nodes run sharded.
 *
 * Determinism: every stochastic decision draws from a per-node Rng that
 * is a pure function of (Config::seed, node); per-LP trace hashes mix
 * packet injection / drop / delivery records and merge canonically, so
 * the run digest is byte-identical at any shard or thread count
 * (DESIGN.md section 13).
 */

#ifndef TELEGRAPHOS_NET_FABRIC_SIM_HPP
#define TELEGRAPHOS_NET_FABRIC_SIM_HPP

#include <cstdint>
#include <vector>

#include "net/topology.hpp"
#include "sim/config.hpp"
#include "sim/random.hpp"
#include "sim/sharded_engine.hpp"

namespace tg::net {

/** Synthetic traffic pattern for a sharded fabric run. */
struct FabricWorkload
{
    enum class Kind
    {
        Uniform,   ///< independent uniform-random destinations
        Hotspot,   ///< uniform with a hot-node bias (congestion study)
        Transpose, ///< fixed permutation dst = (src + N/2) mod N
    };

    Kind kind = Kind::Uniform;
    /** Packets each node injects over the run. */
    std::uint32_t packetsPerNode = 64;
    /** Mean inter-injection gap per node, in ticks (>= 1). */
    Tick injectGap = 1000;
    /** Hotspot: fraction of traffic aimed at hotNode. */
    double hotFraction = 0.25;
    /** Hotspot: the congested destination. */
    std::uint16_t hotNode = 0;
    /** Packet payload size in bytes (plus Config::packetHeaderBytes). */
    std::uint32_t payloadBytes = 24;
};

/**
 * One sharded packet-level fabric run.
 *
 * Usage: construct (validates the spec), run() once, then read the
 * merged results.  Shard count comes from Config::shards; worker
 * threads default to min(shards, hardware).
 */
class FabricSim
{
  public:
    /**
     * @param threads worker threads (0 = min(shards, hardware)).  The
     * results are invariant under this knob by construction; the shard
     * determinism suite asserts it.
     */
    FabricSim(const TopologySpec &spec, const Config &cfg,
              const FabricWorkload &wl, std::uint32_t threads = 0);

    /** Drive the workload to quiescence.  @return events executed. */
    std::uint64_t run();

    // ------------------------------------------------------------------
    // Merged, shard-count-invariant results (valid after run())
    // ------------------------------------------------------------------

    /** Canonical per-LP trace-hash merge (DESIGN.md section 13.3). */
    std::uint64_t traceHash() const { return _engine.mergedTraceHash(); }

    std::uint64_t injected() const { return _engine.mergedLedger().injected; }
    std::uint64_t delivered() const { return _engine.mergedLedger().delivered; }
    std::uint64_t dropped() const { return _engine.mergedLedger().dropped; }

    /** True when every injected packet was delivered or dropped. */
    bool auditQuiescent() const
    {
        return _engine.mergedLedger().quiescent();
    }

    std::uint64_t eventsExecuted() const { return _engine.executed(); }
    std::uint64_t epochs() const { return _engine.epochs(); }
    std::uint32_t shards() const { return _engine.shards(); }
    std::uint32_t threadsUsed() const { return _engine.threadsUsed(); }
    Tick lookaheadTicks() const { return _engine.epochTicks(); }

    /** Parallel-makespan seconds (see ShardedEngine::criticalPathSeconds). */
    double criticalPathSeconds() const
    {
        return _engine.criticalPathSeconds();
    }

    /** Total busy seconds summed over all shard slices. */
    double busySeconds() const { return _engine.busySeconds(); }

  private:
    /** In-flight packet (fits the tg::Fn inline buffer with room over). */
    struct Packet
    {
        NodeId src;
        NodeId dst;
        std::uint32_t id; ///< per-source injection index
    };

    NodeId pickDst(NodeId node);
    Tick nextGap(NodeId node);
    void injectNext(NodeId node, Tick t);
    void arrive(std::size_t sw, Packet p, Tick t);

    TopologySpec _spec;
    Config _cfg;
    FabricWorkload _wl;
    Tick _serTicks;

    ShardedEngine _engine;

    std::vector<std::vector<std::int32_t>> _portNeighbor; ///< per switch/port, -1 = node port
    std::vector<std::vector<Tick>> _portBusy; ///< per switch/port egress horizon
    std::vector<Rng> _nodeRng;
    std::vector<std::uint32_t> _nodeSent;
};

} // namespace tg::net

#endif // TELEGRAPHOS_NET_FABRIC_SIM_HPP

/**
 * @file
 * Deterministic per-link fault injector.
 *
 * Telegraphos links are FPGA-clocked parallel ribbon cables between
 * workstations — a medium where bit errors, dropped transfers and
 * unplugged cables are routine, not exceptional.  The FaultInjector
 * decides, per packet transmission on one link hop, whether the wire
 * corrupts, drops or duplicates the transfer, and whether the link is
 * administratively down at a given instant.
 *
 * Determinism: every injector owns a private RNG seeded from
 * (Config::seed, FNV-1a hash of the link name).  Decisions therefore
 * depend only on the seed, the link identity and the order of
 * transmissions on that link — never on the construction order of other
 * components or on draws from other streams — so any fault run replays
 * bit-identically.
 */

#ifndef TELEGRAPHOS_NET_FAULT_HPP
#define TELEGRAPHOS_NET_FAULT_HPP

#include <string>
#include <vector>

#include "sim/config.hpp"
#include "sim/random.hpp"
#include "sim/types.hpp"

namespace tg::net {

/** Per-link source of injected wire faults, driven by Config::fault. */
class FaultInjector
{
  public:
    /**
     * @param spec       the cluster-wide fault specification (must outlive
     *                   the injector; it lives in System's Config)
     * @param seed       Config::seed
     * @param link_name  name of the link this injector is attached to
     */
    FaultInjector(const FaultSpec &spec, std::uint64_t seed,
                  const std::string &link_name);

    /** True when this link can experience injected *random* faults
     *  (spec enabled and the link name matches the spec's filter).
     *  Targeted down-windows apply independently of this: a window whose
     *  target pattern matches the link downs it even when the link is
     *  outside the random-fault filter. */
    bool active() const { return _active; }

    /** Does down-window @p w cover this link?  Targeted windows match
     *  the link name against their glob; untargeted windows follow the
     *  spec-wide linkFilter. */
    bool windowApplies(const FaultWindow &w) const;

    /** Union-merged down-windows applicable to this link, sorted by
     *  start (abutting/overlapping windows coalesced).  The fabric-level
     *  rerouter plans routing epochs from this. */
    std::vector<FaultWindow> mergedDownWindows() const;

    // ------------------------------------------------------------------
    // Per-transmission decisions (each consumes RNG state; call exactly
    // once per transmission to keep replays aligned)
    // ------------------------------------------------------------------

    /** Should this transmission vanish on the wire? */
    bool dropNow();

    /** Should this transmission arrive with a flipped bit? */
    bool corruptNow();

    /** Should this transmission be delivered twice? */
    bool duplicateNow();

    /** Bit index to flip when corrupting (uniform in [0, bits)). */
    std::uint32_t corruptBit(std::uint32_t bits);

    // ------------------------------------------------------------------
    // Administrative link state (pure functions of time; no RNG)
    // ------------------------------------------------------------------

    /** Is the link administratively down at @p now? */
    bool isDown(Tick now) const;

    /** End of the outage covering @p now (returns @p now if the link is
     *  up). */
    Tick downUntil(Tick now) const;

    /** Start of the outage covering @p now (returns @p now if the link
     *  is up). */
    Tick downStart(Tick now) const;

    /** Has the outage covering @p now lasted longer than the spec's
     *  linkDownDeadline? */
    bool downPastDeadline(Tick now) const;

    const FaultSpec &spec() const { return _spec; }

  private:
    const FaultSpec &_spec;
    std::string _name;
    bool _active;
    Rng _rng;
};

} // namespace tg::net

#endif // TELEGRAPHOS_NET_FAULT_HPP

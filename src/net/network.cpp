/**
 * @file
 * Network implementation: topology construction, routing
 * tables and node attachment.
 *
 * The builder is topology-agnostic: everything shape-specific (switch
 * count, trunk list, route/VC functions) comes from the spec's
 * TopologyModel, so adding a fabric never touches this file.
 *
 * Determinism note: channel names seed the per-link fault RNGs and
 * construction order fixes event ordering, so both are part of the
 * reproducibility contract.  Switches are named ".sw<i>", trunks
 * ".trunk<a>to<b>" in model trunk-list order (forward direction first),
 * matching the historic star/chain/ring naming exactly.
 */

#include "net/network.hpp"

#include <cstdlib>

namespace tg::net {

Network::Network(System &sys, const std::string &name,
                 const TopologySpec &spec)
    : SimObject(sys, name), _spec(spec)
{
    // Legacy construction path: turn a rejection into fatal().  Callers
    // wanting a recoverable error go through Cluster::build(), which
    // validates before ever constructing a Network.
    if (auto valid = _spec.validate(); !valid)
        fatal("%s: %s", name.c_str(), valid.error().message.c_str());

    const TopologyModel &model = _spec.model();
    const std::size_t nsw = _spec.numSwitches();
    for (std::size_t s = 0; s < nsw; ++s) {
        _switches.push_back(std::make_unique<Switch>(
            sys, name + ".sw" + std::to_string(s), _spec.portsOf(s),
            /*vcs=*/2));
    }

    // Trunk channels between switches.  Each direction is one physical
    // wire carrying both VCs.
    const double bw = config().linkBytesPerTick;
    const Tick delay = config().linkDelay;

    auto trunk_lanes = [&](std::size_t a, std::size_t pa, std::size_t b,
                           std::size_t pb) {
        std::vector<Channel::Lane> lanes;
        for (std::size_t v = 0; v < 2; ++v)
            lanes.push_back(Channel::Lane{&_switches[a]->outQueue(pa, v),
                                          &_switches[b]->inQueue(pb, v)});
        return lanes;
    };
    std::vector<FabricRerouter::TrunkRef> trunk_refs;
    for (const TopologyModel::Trunk &t : model.trunks(_spec)) {
        std::string fwd = name + ".trunk" + std::to_string(t.swA) + "to" +
                          std::to_string(t.swB);
        std::string rev = name + ".trunk" + std::to_string(t.swB) + "to" +
                          std::to_string(t.swA);
        _channels.push_back(std::make_unique<Channel>(
            _sys, fwd, trunk_lanes(t.swA, t.portA, t.swB, t.portB), bw,
            delay));
        _channels.push_back(std::make_unique<Channel>(
            _sys, rev, trunk_lanes(t.swB, t.portB, t.swA, t.portA), bw,
            delay));
        trunk_refs.push_back(
            FabricRerouter::TrunkRef{t, std::move(fwd), std::move(rev)});
    }

    // Fault-aware routing epochs: only multi-path fabrics can route
    // around an outage, and only scheduled down-windows produce one.
    // The rerouter is inert (no flips, baseline DeadView) when no window
    // outlives the link-down deadline.
    if (model.multiPath() && !config().fault.downWindows.empty()) {
        std::vector<Switch *> sws;
        for (auto &sw : _switches)
            sws.push_back(sw.get());
        _rerouter = std::make_unique<FabricRerouter>(
            sys, name + ".reroute", _spec, std::move(sws), trunk_refs);
    }

    // Escape-VC maps (dateline deadlock avoidance on ring/torus).
    if (model.usesDateline()) {
        for (std::size_t s = 0; s < nsw; ++s) {
            _switches[s]->setVcMap(
                [this, s](const PacketHot &, std::size_t in_port,
                          std::size_t out_port,
                          std::uint8_t in_vc) -> std::uint8_t {
                    return _spec.model().vcFor(_spec, s, in_port, out_port,
                                               in_vc);
                });
        }
    }

    // Routing: a static destination table when the path depends only on
    // dst, a per-packet function when it also depends on src (fat-tree
    // per-flow uplink hashing).
    if (model.srcDependentRouting()) {
        for (std::size_t s = 0; s < nsw; ++s) {
            _switches[s]->setRouteFn([this, s](const PacketHot &pkt) {
                const TopologyModel &m = _spec.model();
                if (_rerouter)
                    return m.routePortAvoiding(_spec, s, pkt.src, pkt.dst,
                                               *_rerouter);
                return m.routePort(_spec, s, pkt.src, pkt.dst);
            });
        }
    } else {
        buildRoutes();
    }
}

void
Network::attach(NodeId id, NodeEndpoint &ep)
{
    if (id >= _spec.nodes)
        fatal("attach of node %u beyond topology size %zu", unsigned(id),
              _spec.nodes);

    const std::size_t sw = _spec.switchOf(id);
    const std::size_t port = _spec.portOf(id);
    const double bw = config().linkBytesPerTick;
    const Tick delay = config().linkDelay;

    // Nodes inject on VC0; the downlink drains both VCs into the node's
    // single ingress FIFO (a flow always uses one VC sequence, so this
    // never reorders a flow).
    _channels.push_back(std::make_unique<Channel>(
        _sys, _name + ".up" + std::to_string(id), ep.egress(),
        _switches[sw]->inQueue(port, 0), bw, delay));
    _channels.push_back(std::make_unique<Channel>(
        _sys, _name + ".down" + std::to_string(id),
        std::vector<Channel::Lane>{
            Channel::Lane{&_switches[sw]->outQueue(port, 0), &ep.ingress()},
            Channel::Lane{&_switches[sw]->outQueue(port, 1),
                          &ep.ingress()}},
        bw, delay));
}

void
Network::buildRoutes()
{
    const TopologyModel &model = _spec.model();
    for (std::size_t s = 0; s < _switches.size(); ++s) {
        for (std::size_t n = 0; n < _spec.nodes; ++n) {
            _switches[s]->setRoute(
                static_cast<NodeId>(n),
                model.routePort(_spec, s, /*src=*/0,
                                static_cast<NodeId>(n)));
        }
    }
}

std::uint64_t
Network::switchForwarded() const
{
    std::uint64_t total = 0;
    for (const auto &sw : _switches)
        total += sw->forwarded();
    return total;
}

void
Network::setFailureHandler(Channel::FailureHandler h)
{
    // Channels share the handler; wrap it so each channel's copy routes
    // through the same callable.
    auto shared = std::make_shared<Channel::FailureHandler>(std::move(h));
    for (auto &ch : _channels) {
        ch->setFailureHandler([shared](Packet &&pkt) {
            (*shared)(std::move(pkt));
        });
    }
}

std::uint64_t
Network::corruptions() const
{
    std::uint64_t total = 0;
    for (const auto &ch : _channels)
        total += ch->corruptions();
    return total;
}

std::uint64_t
Network::retransmissions() const
{
    std::uint64_t total = 0;
    for (const auto &ch : _channels)
        total += ch->retransmissions();
    return total;
}

std::uint64_t
Network::duplicateDiscards() const
{
    std::uint64_t total = 0;
    for (const auto &ch : _channels)
        total += ch->duplicateDiscards();
    return total;
}

std::uint64_t
Network::wireFailures() const
{
    std::uint64_t total = 0;
    for (const auto &ch : _channels)
        total += ch->wireFailures();
    return total;
}

std::size_t
Network::hops(NodeId a, NodeId b) const
{
    return _spec.model().hops(_spec, a, b);
}

} // namespace tg::net

/**
 * @file
 * Network implementation: topology construction, routing
 * tables and node attachment.
 */

#include "net/network.hpp"

#include <cstdlib>

namespace tg::net {

Network::Network(System &sys, const std::string &name,
                 const TopologySpec &spec)
    : SimObject(sys, name), _spec(spec)
{
    _spec.validate();

    const std::size_t nsw = _spec.numSwitches();
    for (std::size_t s = 0; s < nsw; ++s) {
        _switches.push_back(std::make_unique<Switch>(
            sys, name + ".sw" + std::to_string(s), _spec.portsPerSwitch(),
            /*vcs=*/2));
    }

    // Trunk channels between adjacent switches (chain/ring).  Each
    // direction is one physical wire carrying both VCs.
    const double bw = config().linkBytesPerTick;
    const Tick delay = config().linkDelay;
    const std::size_t right = _spec.nodesPerSwitch;    // trunk port to s+1
    const std::size_t left = _spec.nodesPerSwitch + 1; // trunk port to s-1

    auto trunk_lanes = [&](std::size_t a, std::size_t pa, std::size_t b,
                           std::size_t pb) {
        std::vector<Channel::Lane> lanes;
        for (std::size_t v = 0; v < 2; ++v)
            lanes.push_back(Channel::Lane{&_switches[a]->outQueue(pa, v),
                                          &_switches[b]->inQueue(pb, v)});
        return lanes;
    };
    auto trunk = [&](std::size_t a, std::size_t pa, std::size_t b,
                     std::size_t pb) {
        _channels.push_back(std::make_unique<Channel>(
            _sys,
            name + ".trunk" + std::to_string(a) + "to" + std::to_string(b),
            trunk_lanes(a, pa, b, pb), bw, delay));
        _channels.push_back(std::make_unique<Channel>(
            _sys,
            name + ".trunk" + std::to_string(b) + "to" + std::to_string(a),
            trunk_lanes(b, pb, a, pa), bw, delay));
    };

    if (_spec.kind != TopologyKind::Star) {
        for (std::size_t s = 0; s + 1 < nsw; ++s)
            trunk(s, right, s + 1, left);
        if (_spec.kind == TopologyKind::Ring && nsw > 2)
            trunk(nsw - 1, right, 0, left);
    }

    // Dateline deadlock avoidance on the ring (paper reference [17]:
    // VC-level flow control): a packet that crosses the wrap link is
    // bumped to the escape VC, breaking the cyclic buffer dependency.
    if (_spec.kind == TopologyKind::Ring) {
        for (std::size_t s = 0; s < nsw; ++s) {
            const bool wraps_right = (s == nsw - 1);
            const bool wraps_left = (s == 0);
            _switches[s]->setVcMap(
                [right, left, wraps_right, wraps_left](
                    const Packet &, std::size_t out_port,
                    std::uint8_t in_vc) -> std::uint8_t {
                    if (out_port == right && wraps_right)
                        return 1;
                    if (out_port == left && wraps_left)
                        return 1;
                    return in_vc;
                });
        }
    }

    buildRoutes();
}

void
Network::attach(NodeId id, NodeEndpoint &ep)
{
    if (id >= _spec.nodes)
        fatal("attach of node %u beyond topology size %zu", unsigned(id),
              _spec.nodes);

    const std::size_t sw = _spec.switchOf(id);
    const std::size_t port = _spec.portOf(id);
    const double bw = config().linkBytesPerTick;
    const Tick delay = config().linkDelay;

    // Nodes inject on VC0; the downlink drains both VCs into the node's
    // single ingress FIFO (a flow always uses one VC sequence, so this
    // never reorders a flow).
    _channels.push_back(std::make_unique<Channel>(
        _sys, _name + ".up" + std::to_string(id), ep.egress(),
        _switches[sw]->inQueue(port, 0), bw, delay));
    _channels.push_back(std::make_unique<Channel>(
        _sys, _name + ".down" + std::to_string(id),
        std::vector<Channel::Lane>{
            Channel::Lane{&_switches[sw]->outQueue(port, 0), &ep.ingress()},
            Channel::Lane{&_switches[sw]->outQueue(port, 1),
                          &ep.ingress()}},
        bw, delay));
}

int
Network::trunkDirection(std::size_t s, std::size_t t) const
{
    const std::size_t nsw = _spec.numSwitches();
    if (_spec.kind == TopologyKind::Chain)
        return t > s ? +1 : -1;
    // Ring: shortest direction, ties broken towards increasing index so
    // that routing is deterministic (required for in-order delivery).
    const std::size_t fwd = (t + nsw - s) % nsw;
    const std::size_t bwd = (s + nsw - t) % nsw;
    return fwd <= bwd ? +1 : -1;
}

void
Network::buildRoutes()
{
    const std::size_t right = _spec.nodesPerSwitch;
    const std::size_t left = _spec.nodesPerSwitch + 1;

    for (std::size_t s = 0; s < _switches.size(); ++s) {
        for (std::size_t n = 0; n < _spec.nodes; ++n) {
            const std::size_t t = _spec.switchOf(n);
            std::size_t port;
            if (t == s)
                port = _spec.portOf(n);
            else
                port = trunkDirection(s, t) > 0 ? right : left;
            _switches[s]->setRoute(static_cast<NodeId>(n), port);
        }
    }
}

std::uint64_t
Network::switchForwarded() const
{
    std::uint64_t total = 0;
    for (const auto &sw : _switches)
        total += sw->forwarded();
    return total;
}

void
Network::setFailureHandler(Channel::FailureHandler h)
{
    // Channels share the handler; wrap it so each channel's copy routes
    // through the same callable.
    auto shared = std::make_shared<Channel::FailureHandler>(std::move(h));
    for (auto &ch : _channels) {
        ch->setFailureHandler([shared](Packet &&pkt) {
            (*shared)(std::move(pkt));
        });
    }
}

std::uint64_t
Network::corruptions() const
{
    std::uint64_t total = 0;
    for (const auto &ch : _channels)
        total += ch->corruptions();
    return total;
}

std::uint64_t
Network::retransmissions() const
{
    std::uint64_t total = 0;
    for (const auto &ch : _channels)
        total += ch->retransmissions();
    return total;
}

std::uint64_t
Network::duplicateDiscards() const
{
    std::uint64_t total = 0;
    for (const auto &ch : _channels)
        total += ch->duplicateDiscards();
    return total;
}

std::uint64_t
Network::wireFailures() const
{
    std::uint64_t total = 0;
    for (const auto &ch : _channels)
        total += ch->wireFailures();
    return total;
}

std::size_t
Network::hops(NodeId a, NodeId b) const
{
    if (a == b)
        return 0;
    const std::size_t sa = _spec.switchOf(a);
    const std::size_t sb = _spec.switchOf(b);
    if (_spec.kind == TopologyKind::Star || sa == sb)
        return 1;
    if (_spec.kind == TopologyKind::Chain)
        return 1 + (sa > sb ? sa - sb : sb - sa);
    const std::size_t nsw = _spec.numSwitches();
    const std::size_t fwd = (sb + nsw - sa) % nsw;
    const std::size_t bwd = (sa + nsw - sb) % nsw;
    return 1 + std::min(fwd, bwd);
}

} // namespace tg::net

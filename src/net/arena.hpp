/**
 * @file
 * Pooled packet storage for the network datapath (DESIGN.md section 14).
 *
 * The real descendants of the Telegraphos NIC lineage (APEnet+, the FPGA
 * torus NICs) keep their datapath fast with fixed-format packet
 * descriptors living in preallocated rings; the software model mirrors
 * that shape.  A PacketArena owns every in-flight packet of one
 * simulation universe: queues, links and switches pass 32-bit
 * PacketHandle slots instead of copying the ~160-byte Packet value at
 * every hop.
 *
 * The Packet is split into *hot* routing fields — src/dst/vc/hops/
 * payload/traceId, the fields switch arbitration and link serialization
 * actually read — laid out as parallel SoA arrays indexed by handle, and
 * the *cold* body (addresses, operands, CRC, bulk payload) touched only
 * at the endpoints.  During transit the SoA arrays are authoritative for
 * vc/hopsDone; they are written back into the body when the packet is
 * materialized out of the arena (release / front).
 *
 * Storage is a LIFO free list over chunked slot storage: chunks are
 * allocated as the in-flight population grows during warm-up and then
 * recycled forever — zero heap allocations in steady state (asserted by
 * tests/net/packet_alloc_test.cpp).  Handle reuse order is LIFO and
 * acquire/release order is deterministic, so handle values themselves
 * are deterministic (they never feed the trace hash regardless).
 */

#ifndef TELEGRAPHOS_NET_ARENA_HPP
#define TELEGRAPHOS_NET_ARENA_HPP

#include <memory>
#include <vector>

#include "net/packet.hpp"
#include "sim/invariant.hpp"
#include "sim/log.hpp"

namespace tg::net {

/** Index of an arena slot holding one in-flight packet. */
using PacketHandle = std::uint32_t;

/** The null handle (no slot). */
inline constexpr PacketHandle kNoPacket = ~PacketHandle(0);

/**
 * Hot routing view of an in-flight packet: the fields the datapath
 * (switch arbitration, VC mapping, link serialization, tracer taps)
 * reads per hop.  Assembled from the arena's SoA arrays on demand.
 */
struct PacketHot
{
    NodeId src = 0;
    NodeId dst = 0;
    std::uint8_t vc = 0;
    std::uint8_t hopsDone = 0;
    std::uint32_t payloadBytes = 0;
    std::uint64_t traceId = 0;
};

/** Free-list arena of packet slots with an SoA hot-field mirror. */
class PacketArena
{
  public:
    PacketArena() = default;
    PacketArena(const PacketArena &) = delete;
    PacketArena &operator=(const PacketArena &) = delete;

    /** Materialize @p p into a slot; hot fields are mirrored into the
     *  SoA arrays.  Grows by one chunk when the free list is empty. */
    PacketHandle
    acquire(Packet &&p)
    {
        if (_free.empty())
            grow();
        const PacketHandle h = _free.back();
        _free.pop_back();
        TG_AUDIT(!_liveSlot[h], "arena slot %u acquired twice", h);
        _liveSlot[h] = 1;
        slot(h) = std::move(p);
        const Packet &b = slot(h);
        _src[h] = b.src;
        _dst[h] = b.dst;
        _vc[h] = b.vc;
        _hops[h] = b.hopsDone;
        _payload[h] = b.payloadBytes;
        _traceId[h] = b.traceId;
        ++_live;
        if (_live > _highWater)
            _highWater = _live;
        return h;
    }

    /** Move the packet out of slot @p h (hot fields written back) and
     *  recycle the slot. */
    Packet
    release(PacketHandle h)
    {
        Packet out = std::move(*syncBody(h));
        TG_AUDIT(_liveSlot[h], "arena slot %u released twice", h);
        _liveSlot[h] = 0;
        _free.push_back(h);
        --_live;
        return out;
    }

    /**
     * Cold body of slot @p h with the hot mutations (vc, hopsDone)
     * written back — for endpoint peeks and value materialization.
     * The reference is valid until the slot is released (chunked
     * storage: slots never move).
     */
    Packet *
    syncBody(PacketHandle h)
    {
        Packet &b = slot(h);
        b.vc = _vc[h];
        b.hopsDone = _hops[h];
        return &b;
    }

    // ------------------------------------------------------------------
    // Hot-field accessors (the per-hop datapath)
    // ------------------------------------------------------------------

    NodeId src(PacketHandle h) const { return _src[h]; }
    NodeId dst(PacketHandle h) const { return _dst[h]; }
    std::uint8_t vc(PacketHandle h) const { return _vc[h]; }
    std::uint8_t hopsDone(PacketHandle h) const { return _hops[h]; }
    std::uint32_t payloadBytes(PacketHandle h) const { return _payload[h]; }
    std::uint64_t traceId(PacketHandle h) const { return _traceId[h]; }

    void setVc(PacketHandle h, std::uint8_t vc) { _vc[h] = vc; }
    std::uint8_t bumpHops(PacketHandle h) { return ++_hops[h]; }

    /** Assembled hot view (route / VC-map hooks). */
    PacketHot
    hot(PacketHandle h) const
    {
        return PacketHot{_src[h],     _dst[h],  _vc[h],
                         _hops[h],    _payload[h], _traceId[h]};
    }

    // ------------------------------------------------------------------
    // Capacity accounting (zero-alloc proofs, bounded-memory tests)
    // ------------------------------------------------------------------

    /** Slots currently holding an in-flight packet. */
    std::size_t live() const { return _live; }

    /** Total slots ever created (== chunks * kChunkSlots). */
    std::size_t capacity() const { return _chunks.size() * kChunkSlots; }

    /** Peak simultaneous in-flight population. */
    std::size_t highWater() const { return _highWater; }

    /** Chunk allocations performed (stable once warm). */
    std::uint64_t chunkAllocs() const { return _chunkAllocs; }

  private:
    static constexpr std::size_t kChunkSlots = 256;

    Packet &slot(PacketHandle h)
    {
        return _chunks[h / kChunkSlots][h % kChunkSlots];
    }

    void
    grow()
    {
        const std::size_t base = capacity();
        if (base + kChunkSlots > std::size_t(kNoPacket))
            panic("PacketArena exhausted the handle space");
        _chunks.push_back(std::make_unique<Packet[]>(kChunkSlots));
        _src.resize(base + kChunkSlots);
        _dst.resize(base + kChunkSlots);
        _vc.resize(base + kChunkSlots);
        _hops.resize(base + kChunkSlots);
        _payload.resize(base + kChunkSlots);
        _traceId.resize(base + kChunkSlots);
        _liveSlot.resize(base + kChunkSlots, 0);
        // LIFO free list: push in reverse so low handles come out first.
        for (std::size_t i = kChunkSlots; i > 0; --i)
            _free.push_back(PacketHandle(base + i - 1));
        ++_chunkAllocs;
    }

    std::vector<std::unique_ptr<Packet[]>> _chunks;
    // SoA hot mirror, indexed by handle.
    std::vector<NodeId> _src;
    std::vector<NodeId> _dst;
    std::vector<std::uint8_t> _vc;
    std::vector<std::uint8_t> _hops;
    std::vector<std::uint32_t> _payload;
    std::vector<std::uint64_t> _traceId;
    std::vector<std::uint8_t> _liveSlot; // audit: double acquire/release
    std::vector<PacketHandle> _free;
    std::size_t _live = 0;
    std::size_t _highWater = 0;
    std::uint64_t _chunkAllocs = 0;
};

} // namespace tg::net

#endif // TELEGRAPHOS_NET_ARENA_HPP

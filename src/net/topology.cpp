/**
 * @file
 * Topology specifications (chain, ring, star) and their
 * validation.
 */

#include "net/topology.hpp"

#include <cstdio>

#include "sim/log.hpp"

namespace tg::net {

std::size_t
TopologySpec::numSwitches() const
{
    if (kind == TopologyKind::Star)
        return 1;
    return (nodes + nodesPerSwitch - 1) / nodesPerSwitch;
}

std::size_t
TopologySpec::switchOf(std::size_t node) const
{
    if (kind == TopologyKind::Star)
        return 0;
    return node / nodesPerSwitch;
}

std::size_t
TopologySpec::portOf(std::size_t node) const
{
    if (kind == TopologyKind::Star)
        return node;
    return node % nodesPerSwitch;
}

std::size_t
TopologySpec::portsPerSwitch() const
{
    if (kind == TopologyKind::Star)
        return nodes;
    // node ports + right trunk + left trunk
    return nodesPerSwitch + 2;
}

void
TopologySpec::validate() const
{
    if (nodes < 1)
        fatal("topology needs at least one node");
    if (kind != TopologyKind::Star && nodesPerSwitch < 1)
        fatal("nodesPerSwitch must be >= 1");
    if (kind == TopologyKind::Ring && numSwitches() < 3)
        fatal("a ring needs at least 3 switches (%zu nodes / %zu per switch)",
              nodes, nodesPerSwitch);
}

std::string
TopologySpec::describe() const
{
    const char *k = kind == TopologyKind::Star    ? "star"
                    : kind == TopologyKind::Chain ? "chain"
                                                  : "ring";
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s(%zu nodes, %zu switches)", k, nodes,
                  numSwitches());
    return buf;
}

} // namespace tg::net

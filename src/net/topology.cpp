/**
 * @file
 * Topology model table: per-shape switch/port/route/VC functions for
 * star, chain, ring, 2D/3D torus and two-level fat-tree fabrics.
 */

#include "net/topology.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

#include "sim/log.hpp"

namespace tg::net {
namespace {

/** printf-style ConfigError construction. */
ConfigError
reject(const char *fmt, ...)
{
    char buf[192];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    return ConfigError{buf};
}

/** Shared rejection: some switch wants more ports than a board has. */
Expected<void, ConfigError>
checkPorts(const TopologySpec &s)
{
    const std::size_t nsw = s.numSwitches();
    for (std::size_t sw = 0; sw < nsw; ++sw) {
        const std::size_t ports = s.portsOf(sw);
        if (ports > kMaxSwitchPorts)
            return reject(
                "switch %zu needs %zu ports; boards max out at %zu", sw,
                ports, kMaxSwitchPorts);
    }
    return {};
}

/** Shared rejections common to every shape. */
Expected<void, ConfigError>
checkCommon(const TopologySpec &s, bool usesPerSwitch)
{
    if (s.nodes < 1)
        return reject("topology needs at least one node");
    if (usesPerSwitch && s.nodesPerSwitch < 1)
        return reject("nodesPerSwitch must be >= 1");
    return {};
}

/** Hop distance around a 1D ring of extent @p g. */
std::size_t
ringDist(std::size_t a, std::size_t b, std::size_t g)
{
    const std::size_t fwd = (b + g - a) % g;
    const std::size_t bwd = (a + g - b) % g;
    return std::min(fwd, bwd);
}

/** True when the shortest a -> b direction is +1 (ties towards +1, so
 *  routing is deterministic — required for in-order delivery). */
bool
ringForward(std::size_t a, std::size_t b, std::size_t g)
{
    const std::size_t fwd = (b + g - a) % g;
    const std::size_t bwd = (a + g - b) % g;
    return fwd <= bwd;
}

// ---------------------------------------------------------------- Star

class StarModel final : public TopologyModel
{
  public:
    const char *name() const override { return "star"; }

    std::size_t numSwitches(const TopologySpec &) const override
    {
        return 1;
    }

    std::size_t switchOf(const TopologySpec &, std::size_t) const override
    {
        return 0;
    }

    std::size_t
    portOf(const TopologySpec &, std::size_t node) const override
    {
        return node;
    }

    std::size_t portsOf(const TopologySpec &s, std::size_t) const override
    {
        return s.nodes;
    }

    std::vector<Trunk> trunks(const TopologySpec &) const override
    {
        return {};
    }

    std::size_t
    routePort(const TopologySpec &, std::size_t, NodeId,
              NodeId dst) const override
    {
        return dst;
    }

    std::size_t
    hops(const TopologySpec &, NodeId a, NodeId b) const override
    {
        return a == b ? 0 : 1;
    }

    std::size_t bisectionWidth(const TopologySpec &s) const override
    {
        // Limited by the node links crossing the cut, not trunks.
        return s.nodes / 2;
    }

    Expected<void, ConfigError>
    validate(const TopologySpec &s) const override
    {
        if (auto r = checkCommon(s, /*usesPerSwitch=*/false); !r)
            return r;
        return checkPorts(s);
    }
};

// ---------------------------------------------------- Chain and Ring

/** Shared layout for the 1D shapes: nodes fill switches in index
 *  order; trunk ports sit just above the node ports. */
class LinearModel : public TopologyModel
{
  public:
    std::size_t numSwitches(const TopologySpec &s) const override
    {
        return (s.nodes + s.nodesPerSwitch - 1) / s.nodesPerSwitch;
    }

    std::size_t
    switchOf(const TopologySpec &s, std::size_t node) const override
    {
        return node / s.nodesPerSwitch;
    }

    std::size_t
    portOf(const TopologySpec &s, std::size_t node) const override
    {
        return node % s.nodesPerSwitch;
    }

    std::size_t portsOf(const TopologySpec &s, std::size_t) const override
    {
        // node ports + right trunk + left trunk
        return s.nodesPerSwitch + 2;
    }

  protected:
    /** Trunk port towards switch s+1. */
    static std::size_t right(const TopologySpec &s)
    {
        return s.nodesPerSwitch;
    }

    /** Trunk port towards switch s-1. */
    static std::size_t left(const TopologySpec &s)
    {
        return s.nodesPerSwitch + 1;
    }
};

class ChainModel final : public LinearModel
{
  public:
    const char *name() const override { return "chain"; }

    std::vector<Trunk> trunks(const TopologySpec &s) const override
    {
        std::vector<Trunk> out;
        const std::size_t nsw = numSwitches(s);
        for (std::size_t i = 0; i + 1 < nsw; ++i)
            out.push_back(Trunk{i, right(s), i + 1, left(s)});
        return out;
    }

    std::size_t
    routePort(const TopologySpec &s, std::size_t sw, NodeId,
              NodeId dst) const override
    {
        const std::size_t t = switchOf(s, dst);
        if (t == sw)
            return portOf(s, dst);
        return t > sw ? right(s) : left(s);
    }

    std::size_t
    hops(const TopologySpec &s, NodeId a, NodeId b) const override
    {
        if (a == b)
            return 0;
        const std::size_t sa = switchOf(s, a);
        const std::size_t sb = switchOf(s, b);
        return 1 + (sa > sb ? sa - sb : sb - sa);
    }

    std::size_t bisectionWidth(const TopologySpec &s) const override
    {
        return numSwitches(s) > 1 ? 1 : s.nodes / 2;
    }

    Expected<void, ConfigError>
    validate(const TopologySpec &s) const override
    {
        if (auto r = checkCommon(s, /*usesPerSwitch=*/true); !r)
            return r;
        return checkPorts(s);
    }
};

class RingModel final : public LinearModel
{
  public:
    const char *name() const override { return "ring"; }

    std::vector<Trunk> trunks(const TopologySpec &s) const override
    {
        std::vector<Trunk> out;
        const std::size_t nsw = numSwitches(s);
        for (std::size_t i = 0; i + 1 < nsw; ++i)
            out.push_back(Trunk{i, right(s), i + 1, left(s)});
        // Wrap link last, matching historic construction order (channel
        // names seed the per-link fault RNGs; order must stay stable).
        out.push_back(Trunk{nsw - 1, right(s), 0, left(s)});
        return out;
    }

    std::size_t
    routePort(const TopologySpec &s, std::size_t sw, NodeId,
              NodeId dst) const override
    {
        const std::size_t t = switchOf(s, dst);
        if (t == sw)
            return portOf(s, dst);
        return ringForward(sw, t, numSwitches(s)) ? right(s) : left(s);
    }

    bool usesDateline() const override { return true; }

    std::uint8_t
    vcFor(const TopologySpec &s, std::size_t sw, std::size_t /*in_port*/,
          std::size_t out_port, std::uint8_t in_vc) const override
    {
        // Dateline deadlock avoidance (paper reference [17]: VC-level
        // flow control): a packet crossing the wrap link is bumped to
        // the escape VC, breaking the cyclic buffer dependency.
        const std::size_t nsw = numSwitches(s);
        if (out_port == right(s) && sw == nsw - 1)
            return 1;
        if (out_port == left(s) && sw == 0)
            return 1;
        return in_vc;
    }

    std::size_t
    hops(const TopologySpec &s, NodeId a, NodeId b) const override
    {
        if (a == b)
            return 0;
        const std::size_t sa = switchOf(s, a);
        const std::size_t sb = switchOf(s, b);
        if (sa == sb)
            return 1;
        return 1 + ringDist(sa, sb, numSwitches(s));
    }

    std::size_t bisectionWidth(const TopologySpec &) const override
    {
        // Any half/half cut of the cycle severs exactly two trunks.
        return 2;
    }

    Expected<void, ConfigError>
    validate(const TopologySpec &s) const override
    {
        if (auto r = checkCommon(s, /*usesPerSwitch=*/true); !r)
            return r;
        if (numSwitches(s) < 3)
            return reject(
                "a ring needs at least 3 switches (%zu nodes / %zu per "
                "switch)",
                s.nodes, s.nodesPerSwitch);
        return checkPorts(s);
    }
};

// -------------------------------------------------------------- Torus2D

class TorusModel final : public TopologyModel
{
  public:
    const char *name() const override { return "torus2d"; }

    std::size_t numSwitches(const TopologySpec &s) const override
    {
        return s.torusX * s.torusY;
    }

    std::size_t
    switchOf(const TopologySpec &s, std::size_t node) const override
    {
        return node / s.nodesPerSwitch;
    }

    std::size_t
    portOf(const TopologySpec &s, std::size_t node) const override
    {
        return node % s.nodesPerSwitch;
    }

    std::size_t portsOf(const TopologySpec &s, std::size_t) const override
    {
        // node ports + {+X, -X, +Y, -Y} trunks
        return s.nodesPerSwitch + 4;
    }

    std::vector<Trunk> trunks(const TopologySpec &s) const override
    {
        // X-dimension rings row by row, then Y-dimension rings; within
        // each ring the wrap link falls out last (i = extent-1).
        std::vector<Trunk> out;
        const std::size_t gx = s.torusX, gy = s.torusY;
        for (std::size_t y = 0; y < gy; ++y)
            for (std::size_t x = 0; x < gx; ++x)
                out.push_back(Trunk{y * gx + x, posX(s),
                                    y * gx + (x + 1) % gx, negX(s)});
        for (std::size_t y = 0; y < gy; ++y)
            for (std::size_t x = 0; x < gx; ++x)
                out.push_back(Trunk{y * gx + x, posY(s),
                                    ((y + 1) % gy) * gx + x, negY(s)});
        return out;
    }

    std::size_t
    routePort(const TopologySpec &s, std::size_t sw, NodeId,
              NodeId dst) const override
    {
        // Dimension-ordered routing (Dally & Seitz): correct X fully,
        // then Y; shortest direction per dimension, ties towards +.
        const std::size_t t = switchOf(s, dst);
        if (t == sw)
            return portOf(s, dst);
        const std::size_t gx = s.torusX, gy = s.torusY;
        const std::size_t x = sw % gx, y = sw / gx;
        const std::size_t tx = t % gx, ty = t / gx;
        if (x != tx)
            return ringForward(x, tx, gx) ? posX(s) : negX(s);
        return ringForward(y, ty, gy) ? posY(s) : negY(s);
    }

    bool usesDateline() const override { return true; }

    bool multiPath() const override { return true; }

    std::uint8_t
    vcFor(const TopologySpec &s, std::size_t sw, std::size_t in_port,
          std::size_t out_port, std::uint8_t in_vc) const override
    {
        // Per-dimension dateline: each X row and Y column is a ring with
        // its own wrap-link dateline.  A packet starts each dimension on
        // VC0 (injection, or the X->Y turn of dimension-ordered routing)
        // and is bumped to the escape VC when it crosses that
        // dimension's wrap link; it can never cross the same wrap twice,
        // so no buffer-wait cycle closes in either VC.
        const std::size_t nps = s.nodesPerSwitch;
        if (out_port < nps)
            return in_vc; // ejection to a node port

        std::uint8_t vc = in_vc;
        if (in_port < nps)
            vc = 0; // fresh injection
        else if (isX(s, in_port) != isX(s, out_port))
            vc = 0; // dimension turn: a new ring, restart on VC0

        const std::size_t gx = s.torusX, gy = s.torusY;
        const std::size_t x = sw % gx, y = sw / gx;
        if (out_port == posX(s) && x == gx - 1)
            return 1;
        if (out_port == negX(s) && x == 0)
            return 1;
        if (out_port == posY(s) && y == gy - 1)
            return 1;
        if (out_port == negY(s) && y == 0)
            return 1;
        return vc;
    }

    std::size_t
    hops(const TopologySpec &s, NodeId a, NodeId b) const override
    {
        if (a == b)
            return 0;
        const std::size_t sa = switchOf(s, a);
        const std::size_t sb = switchOf(s, b);
        if (sa == sb)
            return 1;
        const std::size_t gx = s.torusX;
        return 1 + ringDist(sa % gx, sb % gx, gx) +
               ringDist(sa / gx, sb / gx, s.torusY);
    }

    std::size_t bisectionWidth(const TopologySpec &s) const override
    {
        // Cut across the longer dimension: 2 wrap-ring links per ring
        // cut, min(gx, gy) parallel rings crossing the cut... the
        // narrower count wins.
        return 2 * std::min(s.torusX, s.torusY);
    }

    Expected<void, ConfigError>
    validate(const TopologySpec &s) const override
    {
        if (auto r = checkCommon(s, /*usesPerSwitch=*/true); !r)
            return r;
        if (s.torusX < 2 || s.torusY < 2)
            return reject("torus dimensions must be at least 2x2 (got "
                          "%zux%zu)",
                          s.torusX, s.torusY);
        if (s.nodes != s.torusX * s.torusY * s.nodesPerSwitch)
            return reject(
                "non-rectangular torus: %zu nodes does not fill %zux%zu "
                "switches at %zu per switch (want %zu)",
                s.nodes, s.torusX, s.torusY, s.nodesPerSwitch,
                s.torusX * s.torusY * s.nodesPerSwitch);
        return checkPorts(s);
    }

  private:
    static std::size_t posX(const TopologySpec &s)
    {
        return s.nodesPerSwitch;
    }
    static std::size_t negX(const TopologySpec &s)
    {
        return s.nodesPerSwitch + 1;
    }
    static std::size_t posY(const TopologySpec &s)
    {
        return s.nodesPerSwitch + 2;
    }
    static std::size_t negY(const TopologySpec &s)
    {
        return s.nodesPerSwitch + 3;
    }
    static bool isX(const TopologySpec &s, std::size_t trunkPort)
    {
        return trunkPort == posX(s) || trunkPort == negX(s);
    }
};

// -------------------------------------------------------------- Torus3D

class Torus3DModel final : public TopologyModel
{
  public:
    const char *name() const override { return "torus3d"; }

    std::size_t numSwitches(const TopologySpec &s) const override
    {
        return s.torusX * s.torusY * s.torusZ;
    }

    std::size_t
    switchOf(const TopologySpec &s, std::size_t node) const override
    {
        return node / s.nodesPerSwitch;
    }

    std::size_t
    portOf(const TopologySpec &s, std::size_t node) const override
    {
        return node % s.nodesPerSwitch;
    }

    std::size_t portsOf(const TopologySpec &s, std::size_t) const override
    {
        // node ports + {+X, -X, +Y, -Y, +Z, -Z} trunks
        return s.nodesPerSwitch + 6;
    }

    std::vector<Trunk> trunks(const TopologySpec &s) const override
    {
        // One dimension at a time (X rings, then Y, then Z), switches in
        // id order within each; every ring's wrap link falls out at its
        // extent-1 coordinate, mirroring the 2D construction order.
        std::vector<Trunk> out;
        const std::size_t gx = s.torusX, gy = s.torusY, gz = s.torusZ;
        for (std::size_t z = 0; z < gz; ++z)
            for (std::size_t y = 0; y < gy; ++y)
                for (std::size_t x = 0; x < gx; ++x)
                    out.push_back(Trunk{id(s, x, y, z), posX(s),
                                        id(s, (x + 1) % gx, y, z),
                                        negX(s)});
        for (std::size_t z = 0; z < gz; ++z)
            for (std::size_t y = 0; y < gy; ++y)
                for (std::size_t x = 0; x < gx; ++x)
                    out.push_back(Trunk{id(s, x, y, z), posY(s),
                                        id(s, x, (y + 1) % gy, z),
                                        negY(s)});
        for (std::size_t z = 0; z < gz; ++z)
            for (std::size_t y = 0; y < gy; ++y)
                for (std::size_t x = 0; x < gx; ++x)
                    out.push_back(Trunk{id(s, x, y, z), posZ(s),
                                        id(s, x, y, (z + 1) % gz),
                                        negZ(s)});
        return out;
    }

    std::size_t
    routePort(const TopologySpec &s, std::size_t sw, NodeId,
              NodeId dst) const override
    {
        // Dimension-ordered routing: correct X fully, then Y, then Z;
        // shortest direction per dimension, ties towards +.
        const std::size_t t = switchOf(s, dst);
        if (t == sw)
            return portOf(s, dst);
        const std::size_t gx = s.torusX, gy = s.torusY, gz = s.torusZ;
        const std::size_t x = sw % gx, y = (sw / gx) % gy, z = sw / (gx * gy);
        const std::size_t tx = t % gx, ty = (t / gx) % gy,
                          tz = t / (gx * gy);
        if (x != tx)
            return ringForward(x, tx, gx) ? posX(s) : negX(s);
        if (y != ty)
            return ringForward(y, ty, gy) ? posY(s) : negY(s);
        (void)gz;
        return ringForward(z, tz, gz) ? posZ(s) : negZ(s);
    }

    bool usesDateline() const override { return true; }

    bool multiPath() const override { return true; }

    std::uint8_t
    vcFor(const TopologySpec &s, std::size_t sw, std::size_t in_port,
          std::size_t out_port, std::uint8_t in_vc) const override
    {
        // Same per-dimension dateline argument as the 2D torus: each X
        // row, Y column and Z pillar is an independent ring; a packet
        // restarts on VC0 whenever it enters a new dimension (injection
        // or dimension turn) and is bumped to the escape VC when it
        // crosses that dimension's wrap link.
        const std::size_t nps = s.nodesPerSwitch;
        if (out_port < nps)
            return in_vc; // ejection to a node port

        std::uint8_t vc = in_vc;
        if (in_port < nps)
            vc = 0; // fresh injection
        else if (dimOf(s, in_port) != dimOf(s, out_port))
            vc = 0; // dimension turn: a new ring, restart on VC0

        const std::size_t gx = s.torusX, gy = s.torusY, gz = s.torusZ;
        const std::size_t x = sw % gx, y = (sw / gx) % gy, z = sw / (gx * gy);
        if (out_port == posX(s) && x == gx - 1)
            return 1;
        if (out_port == negX(s) && x == 0)
            return 1;
        if (out_port == posY(s) && y == gy - 1)
            return 1;
        if (out_port == negY(s) && y == 0)
            return 1;
        if (out_port == posZ(s) && z == gz - 1)
            return 1;
        if (out_port == negZ(s) && z == 0)
            return 1;
        return vc;
    }

    std::size_t
    hops(const TopologySpec &s, NodeId a, NodeId b) const override
    {
        if (a == b)
            return 0;
        const std::size_t sa = switchOf(s, a);
        const std::size_t sb = switchOf(s, b);
        if (sa == sb)
            return 1;
        const std::size_t gx = s.torusX, gy = s.torusY;
        return 1 + ringDist(sa % gx, sb % gx, gx) +
               ringDist((sa / gx) % gy, (sb / gx) % gy, gy) +
               ringDist(sa / (gx * gy), sb / (gx * gy), s.torusZ);
    }

    std::size_t bisectionWidth(const TopologySpec &s) const override
    {
        // Cut perpendicular to the longest dimension: every ring in that
        // dimension crosses the cut twice, and there are nsw / extent
        // such rings — the longest extent minimizes the crossing count.
        const std::size_t nsw = numSwitches(s);
        const std::size_t gmax =
            std::max(s.torusX, std::max(s.torusY, s.torusZ));
        return 2 * (nsw / gmax);
    }

    Expected<void, ConfigError>
    validate(const TopologySpec &s) const override
    {
        if (auto r = checkCommon(s, /*usesPerSwitch=*/true); !r)
            return r;
        if (s.torusX < 2 || s.torusY < 2 || s.torusZ < 2)
            return reject("torus3d dimensions must be at least 2x2x2 "
                          "(got %zux%zux%zu)",
                          s.torusX, s.torusY, s.torusZ);
        if (s.nodes != s.torusX * s.torusY * s.torusZ * s.nodesPerSwitch)
            return reject(
                "non-rectangular torus3d: %zu nodes does not fill "
                "%zux%zux%zu switches at %zu per switch (want %zu)",
                s.nodes, s.torusX, s.torusY, s.torusZ, s.nodesPerSwitch,
                s.torusX * s.torusY * s.torusZ * s.nodesPerSwitch);
        return checkPorts(s);
    }

  private:
    static std::size_t
    id(const TopologySpec &s, std::size_t x, std::size_t y, std::size_t z)
    {
        return (z * s.torusY + y) * s.torusX + x;
    }
    static std::size_t posX(const TopologySpec &s)
    {
        return s.nodesPerSwitch;
    }
    static std::size_t negX(const TopologySpec &s)
    {
        return s.nodesPerSwitch + 1;
    }
    static std::size_t posY(const TopologySpec &s)
    {
        return s.nodesPerSwitch + 2;
    }
    static std::size_t negY(const TopologySpec &s)
    {
        return s.nodesPerSwitch + 3;
    }
    static std::size_t posZ(const TopologySpec &s)
    {
        return s.nodesPerSwitch + 4;
    }
    static std::size_t negZ(const TopologySpec &s)
    {
        return s.nodesPerSwitch + 5;
    }
    /** Dimension index (0=X, 1=Y, 2=Z) of a trunk port. */
    static std::size_t dimOf(const TopologySpec &s, std::size_t trunkPort)
    {
        return (trunkPort - s.nodesPerSwitch) / 2;
    }
};

// -------------------------------------------------------------- FatTree

class FatTreeModel final : public TopologyModel
{
  public:
    const char *name() const override { return "fattree"; }

    std::size_t numSwitches(const TopologySpec &s) const override
    {
        return leaves(s) + s.spines;
    }

    std::size_t
    switchOf(const TopologySpec &s, std::size_t node) const override
    {
        return node / s.nodesPerSwitch; // leaf index
    }

    std::size_t
    portOf(const TopologySpec &s, std::size_t node) const override
    {
        return node % s.nodesPerSwitch;
    }

    std::size_t
    portsOf(const TopologySpec &s, std::size_t sw) const override
    {
        // Leaves: node ports + one uplink per spine.  Spines: one
        // downlink per leaf.
        return sw < leaves(s) ? s.nodesPerSwitch + s.spines : leaves(s);
    }

    std::vector<Trunk> trunks(const TopologySpec &s) const override
    {
        std::vector<Trunk> out;
        const std::size_t nl = leaves(s);
        for (std::size_t l = 0; l < nl; ++l)
            for (std::size_t j = 0; j < s.spines; ++j)
                out.push_back(
                    Trunk{l, s.nodesPerSwitch + j, nl + j, l});
        return out;
    }

    bool srcDependentRouting() const override { return true; }

    bool multiPath() const override { return true; }

    std::size_t
    routePort(const TopologySpec &s, std::size_t sw, NodeId src,
              NodeId dst) const override
    {
        // Up/down routing: a leaf sends cross-leaf traffic up the
        // spine chosen by a deterministic (src, dst) hash — one path
        // per flow, so per-flow order is preserved — and spines send
        // straight down to the destination leaf.  The channel graph is
        // layered (up then down), hence cycle-free without VCs.
        const std::size_t nl = leaves(s);
        const std::size_t t = switchOf(s, dst);
        if (sw >= nl)
            return t; // spine: downlink port = leaf index
        if (t == sw)
            return portOf(s, dst);
        return s.nodesPerSwitch + uplinkHash(src, dst, s.spines);
    }

    std::size_t
    routePortAvoiding(const TopologySpec &s, std::size_t sw, NodeId src,
                      NodeId dst, const DeadView &dead) const override
    {
        // Alternate-spine rehash: starting at the flow's baseline spine,
        // probe spines in deterministic (hash + k) order and take the
        // first whose full up/down path is alive — the source leaf's
        // uplink and the spine's downlink to the destination leaf.  All
        // flows displaced by the same dead trunk land on the same
        // alternate, and recovery epochs restore the baseline exactly
        // (k = 0 wins again once the trunk is back).
        const std::size_t nl = leaves(s);
        const std::size_t t = switchOf(s, dst);
        if (sw >= nl)
            return t; // spine downlinks have no alternative
        if (t == sw)
            return portOf(s, dst);
        const std::size_t base = uplinkHash(src, dst, s.spines);
        for (std::size_t k = 0; k < s.spines; ++k) {
            const std::size_t j = (base + k) % s.spines;
            if (!dead.trunkDead(sw, s.nodesPerSwitch + j) &&
                !dead.trunkDead(nl + j, t))
                return s.nodesPerSwitch + j;
        }
        // No live spine path: keep the baseline route and let the link
        // layer fail the packet fast (endpoint failover story).
        return s.nodesPerSwitch + base;
    }

    std::size_t
    hops(const TopologySpec &s, NodeId a, NodeId b) const override
    {
        if (a == b)
            return 0;
        return switchOf(s, a) == switchOf(s, b) ? 1 : 3;
    }

    std::size_t bisectionWidth(const TopologySpec &s) const override
    {
        const std::size_t nl = leaves(s);
        // Half the leaves reach the other half through every spine.
        return nl > 1 ? s.spines * (nl / 2) : s.nodes / 2;
    }

    Expected<void, ConfigError>
    validate(const TopologySpec &s) const override
    {
        if (auto r = checkCommon(s, /*usesPerSwitch=*/true); !r)
            return r;
        if (s.spines < 1)
            return reject("a fat-tree needs at least one spine switch");
        return checkPorts(s);
    }

  private:
    static std::size_t leaves(const TopologySpec &s)
    {
        return (s.nodes + s.nodesPerSwitch - 1) / s.nodesPerSwitch;
    }

    /** Deterministic per-flow spine selection (splitmix-style mix). */
    static std::size_t
    uplinkHash(NodeId src, NodeId dst, std::size_t spines)
    {
        std::uint64_t h = (std::uint64_t(src) + 1) * 0x9E3779B97F4A7C15ull;
        h ^= (std::uint64_t(dst) + 1) * 0xC2B2AE3D27D4EB4Full;
        h ^= h >> 29;
        h *= 0xBF58476D1CE4E5B9ull;
        h ^= h >> 32;
        return std::size_t(h % spines);
    }
};

} // namespace

const TopologyModel &
topologyModel(TopologyKind kind)
{
    static const StarModel star;
    static const ChainModel chain;
    static const RingModel ring;
    static const TorusModel torus;
    static const Torus3DModel torus3d;
    static const FatTreeModel fatTree;
    switch (kind) {
    case TopologyKind::Star:
        return star;
    case TopologyKind::Chain:
        return chain;
    case TopologyKind::Ring:
        return ring;
    case TopologyKind::Torus2D:
        return torus;
    case TopologyKind::Torus3D:
        return torus3d;
    case TopologyKind::FatTree:
        return fatTree;
    }
    panic("unknown topology kind %d", int(kind));
}

std::size_t
TopologySpec::portsPerSwitch() const
{
    std::size_t widest = 0;
    const std::size_t nsw = numSwitches();
    for (std::size_t sw = 0; sw < nsw; ++sw)
        widest = std::max(widest, portsOf(sw));
    return widest;
}

std::string
TopologySpec::describe() const
{
    char buf[128];
    if (kind == TopologyKind::Torus2D)
        std::snprintf(buf, sizeof(buf),
                      "torus2d(%zu nodes, %zux%zu switches, bisection %zu)",
                      nodes, torusX, torusY, bisectionWidth());
    else if (kind == TopologyKind::Torus3D)
        std::snprintf(
            buf, sizeof(buf),
            "torus3d(%zu nodes, %zux%zux%zu switches, bisection %zu)",
            nodes, torusX, torusY, torusZ, bisectionWidth());
    else if (kind == TopologyKind::FatTree)
        std::snprintf(
            buf, sizeof(buf),
            "fattree(%zu nodes, %zu leaves + %zu spines, bisection %zu)",
            nodes, numSwitches() - spines, spines, bisectionWidth());
    else
        std::snprintf(buf, sizeof(buf),
                      "%s(%zu nodes, %zu switches, bisection %zu)",
                      model().name(), nodes, numSwitches(),
                      bisectionWidth());
    return buf;
}

} // namespace tg::net

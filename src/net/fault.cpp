/**
 * @file
 * Deterministic fault injector: seeded per-link bit-error,
 * drop, duplication and down-window decisions.
 */

#include "net/fault.hpp"

#include <algorithm>

#include "sim/glob.hpp"

namespace tg::net {

namespace {

/** FNV-1a over the link name: a stable identity hash so per-link RNG
 *  streams do not depend on component construction order. */
std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

} // namespace

FaultInjector::FaultInjector(const FaultSpec &spec, std::uint64_t seed,
                             const std::string &link_name)
    : _spec(spec), _name(link_name), _rng(seed ^ fnv1a(link_name))
{
    _active = spec.enabled() &&
              (spec.linkFilter.empty() ||
               link_name.find(spec.linkFilter) != std::string::npos);
}

bool
FaultInjector::windowApplies(const FaultWindow &w) const
{
    if (!w.target.empty())
        return globMatch(w.target, _name);
    return _active;
}

std::vector<FaultWindow>
FaultInjector::mergedDownWindows() const
{
    std::vector<FaultWindow> mine;
    for (const auto &w : _spec.downWindows) {
        if (windowApplies(w))
            mine.push_back(FaultWindow{w.from, w.until, {}});
    }
    std::sort(mine.begin(), mine.end(),
              [](const FaultWindow &a, const FaultWindow &b) {
                  return a.from != b.from ? a.from < b.from
                                          : a.until < b.until;
              });
    std::vector<FaultWindow> merged;
    for (const auto &w : mine) {
        if (!merged.empty() && w.from <= merged.back().until)
            merged.back().until = std::max(merged.back().until, w.until);
        else
            merged.push_back(w);
    }
    return merged;
}

bool
FaultInjector::dropNow()
{
    return _spec.dropRate > 0 && _rng.chance(_spec.dropRate);
}

bool
FaultInjector::corruptNow()
{
    return _spec.bitErrorRate > 0 && _rng.chance(_spec.bitErrorRate);
}

bool
FaultInjector::duplicateNow()
{
    return _spec.duplicateRate > 0 && _rng.chance(_spec.duplicateRate);
}

std::uint32_t
FaultInjector::corruptBit(std::uint32_t bits)
{
    return static_cast<std::uint32_t>(_rng.below(bits));
}

bool
FaultInjector::isDown(Tick now) const
{
    for (const auto &w : _spec.downWindows) {
        if (now >= w.from && now < w.until && windowApplies(w))
            return true;
    }
    return false;
}

Tick
FaultInjector::downUntil(Tick now) const
{
    Tick until = now;
    // Windows may overlap or abut; extend across the union of applicable
    // windows covering `until` so one wake-up lands past the whole
    // outage.
    bool grew = true;
    while (grew) {
        grew = false;
        for (const auto &w : _spec.downWindows) {
            if (until >= w.from && until < w.until && windowApplies(w)) {
                until = w.until;
                grew = true;
            }
        }
    }
    return until;
}

Tick
FaultInjector::downStart(Tick now) const
{
    if (!isDown(now))
        return now;
    // Start of the union of applicable windows covering `now`.
    Tick start = now;
    bool grew = true;
    while (grew) {
        grew = false;
        for (const auto &w : _spec.downWindows) {
            if (w.from < start && w.until > start && windowApplies(w)) {
                start = w.from;
                grew = true;
            }
        }
    }
    return start;
}

bool
FaultInjector::downPastDeadline(Tick now) const
{
    if (!isDown(now))
        return false;
    return now - downStart(now) > _spec.linkDownDeadline;
}

} // namespace tg::net

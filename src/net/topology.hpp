/**
 * @file
 * Cluster interconnect topologies.
 *
 * Telegraphos I clusters are built from switch boards connected by ribbon
 * cables to network interfaces and to each other (paper section 2.1,
 * figure 1).  We support the configurations such boards compose into:
 * a single-switch star, a chain of switches, and a ring of switches.
 */

#ifndef TELEGRAPHOS_NET_TOPOLOGY_HPP
#define TELEGRAPHOS_NET_TOPOLOGY_HPP

#include <cstddef>
#include <string>

namespace tg::net {

/** Interconnect shape. */
enum class TopologyKind
{
    Star,  ///< one central switch, every node one hop away
    Chain, ///< switches in a line, nodes spread across them
    Ring,  ///< switches in a cycle, shortest-direction routing
};

/** Parameters describing an interconnect. */
struct TopologySpec
{
    TopologyKind kind = TopologyKind::Star;
    /** Number of workstation nodes in the cluster. */
    std::size_t nodes = 2;
    /** Node ports per switch for Chain/Ring (ignored for Star). */
    std::size_t nodesPerSwitch = 4;

    /** Number of switches this spec requires. */
    std::size_t numSwitches() const;

    /** Switch index a node attaches to. */
    std::size_t switchOf(std::size_t node) const;

    /** Port index on its switch a node attaches to. */
    std::size_t portOf(std::size_t node) const;

    /** Ports each switch needs (node ports + trunks). */
    std::size_t portsPerSwitch() const;

    /** Validate and abort via fatal() on nonsensical parameters. */
    void validate() const;

    std::string describe() const;
};

} // namespace tg::net

#endif // TELEGRAPHOS_NET_TOPOLOGY_HPP

/**
 * @file
 * Cluster interconnect topologies.
 *
 * Telegraphos I clusters are built from switch boards connected by ribbon
 * cables to network interfaces and to each other (paper section 2.1,
 * figure 1).  The boards compose into arbitrary multi-switch fabrics; we
 * model the configurations that matter for scaling studies:
 *
 *  - Star:    one central switch, every node one hop away
 *  - Chain:   switches in a line, nodes spread across them
 *  - Ring:    switches in a cycle, shortest-direction routing with a
 *             dateline escape VC (deadlock freedom)
 *  - Torus2D: a gx x gy grid of switches with wraparound links in both
 *             dimensions and dimension-ordered X-then-Y routing (Dally &
 *             Seitz); per-dimension dateline VCs keep it deadlock-free
 *             under the credit/back-pressure flow control
 *  - Torus3D: the gx x gy x gz generalization (APEnet+/QCDSP-style),
 *             dimension-ordered X-then-Y-then-Z with the same
 *             per-dimension dateline VCs
 *  - FatTree: a two-level folded Clos — leaf switches holding the node
 *             ports, spine switches above them, deterministic per-flow
 *             uplink hashing; up/down routing is cycle-free by layering
 *
 * Each shape is described by a TopologyModel: a table of per-topology
 * route/port/switch-count functions that net::Network consumes
 * generically.  Adding a topology means adding a model, not editing the
 * network builder.
 *
 * Multi-path shapes (tori, fat-tree) additionally support fault-aware
 * routing: net::FabricRerouter precomputes per-epoch routes around
 * trunks that FaultSpec down-windows disable (DESIGN.md, "Routing
 * epochs"), using multiPath() / routePortAvoiding() below.
 */

#ifndef TELEGRAPHOS_NET_TOPOLOGY_HPP
#define TELEGRAPHOS_NET_TOPOLOGY_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/expected.hpp"
#include "sim/types.hpp"

namespace tg::net {

struct TopologySpec;

/** Interconnect shape. */
enum class TopologyKind
{
    Star,    ///< one central switch, every node one hop away
    Chain,   ///< switches in a line, nodes spread across them
    Ring,    ///< switches in a cycle, shortest-direction routing
    Torus2D, ///< 2D torus of switches, dimension-ordered (X-Y) routing
    Torus3D, ///< 3D torus of switches, dimension-ordered (X-Y-Z) routing
    FatTree, ///< two-level folded Clos, up/down routing with uplink hash
};

/** Largest port count a single switch board may be configured with. */
constexpr std::size_t kMaxSwitchPorts = 1024;

/**
 * Per-topology behaviour table consumed by net::Network.
 *
 * One stateless instance exists per TopologyKind (see topologyModel()).
 * All functions take the spec explicitly so models carry no per-cluster
 * state and can be shared.
 */
class TopologyModel
{
  public:
    /** One bidirectional trunk cable between two switch ports. */
    struct Trunk
    {
        std::size_t swA, portA;
        std::size_t swB, portB;
    };

    virtual ~TopologyModel() = default;

    /** Short lowercase name ("star", "torus2d", ...). */
    virtual const char *name() const = 0;

    /** Number of switches this spec requires (fat-tree: leaves+spines). */
    virtual std::size_t numSwitches(const TopologySpec &s) const = 0;

    /** Switch index a node attaches to. */
    virtual std::size_t switchOf(const TopologySpec &s,
                                 std::size_t node) const = 0;

    /** Port index on its switch a node attaches to. */
    virtual std::size_t portOf(const TopologySpec &s,
                               std::size_t node) const = 0;

    /** Ports switch @p sw needs (node ports + trunks). */
    virtual std::size_t portsOf(const TopologySpec &s,
                                std::size_t sw) const = 0;

    /** Every trunk cable, in deterministic construction order. */
    virtual std::vector<Trunk> trunks(const TopologySpec &s) const = 0;

    /**
     * Output port at switch @p sw for a packet @p src -> @p dst.
     * Deterministic: a (src, dst) flow always takes the same path (the
     * in-order delivery argument of paper section 2.3.1 depends on it).
     */
    virtual std::size_t routePort(const TopologySpec &s, std::size_t sw,
                                  NodeId src, NodeId dst) const = 0;

    /** True when routePort() depends on src (fat-tree uplink hashing);
     *  the network then routes per packet instead of per destination. */
    virtual bool srcDependentRouting() const { return false; }

    /** True when the shape offers redundant switch-to-switch paths a
     *  fault-aware routing layer can exploit (tori, fat-tree). */
    virtual bool multiPath() const { return false; }

    /**
     * Liveness view the fault-aware routing layer exposes to models:
     * is the trunk leaving switch @p sw through output port @p port
     * currently declared dead by the fabric?
     */
    class DeadView
    {
      public:
        virtual ~DeadView() = default;
        virtual bool trunkDead(std::size_t sw, std::size_t port) const = 0;
    };

    /**
     * Fault-aware variant of routePort(): the output port at @p sw for
     * @p src -> @p dst avoiding trunks @p dead declares dead, falling
     * back to the baseline route when no live alternative exists (the
     * packet then fails over at the link, the pre-epoch story).  Only
     * src-dependent models override this (fat-tree alternate-spine
     * rehash); destination-routed fabrics get per-epoch BFS tables from
     * net::FabricRerouter instead.
     */
    virtual std::size_t
    routePortAvoiding(const TopologySpec &s, std::size_t sw, NodeId src,
                      NodeId dst, const DeadView &dead) const
    {
        (void)dead;
        return routePort(s, sw, src, dst);
    }

    /** True when the shape needs a dateline escape-VC map installed. */
    virtual bool usesDateline() const { return false; }

    /**
     * Escape-VC selection (dateline deadlock avoidance): the outgoing VC
     * for a packet entering switch @p sw on @p in_port / @p in_vc and
     * leaving on @p out_port.  Default: keep the incoming VC.
     */
    virtual std::uint8_t
    vcFor(const TopologySpec &, std::size_t /*sw*/, std::size_t /*in_port*/,
          std::size_t /*out_port*/, std::uint8_t in_vc) const
    {
        return in_vc;
    }

    /** Switches traversed on the deterministic route a -> b. */
    virtual std::size_t hops(const TopologySpec &s, NodeId a,
                             NodeId b) const = 0;

    /** Links crossing the worst-case half/half node bisection. */
    virtual std::size_t bisectionWidth(const TopologySpec &s) const = 0;

    /** Reject nonsensical user parameters (never aborts). */
    virtual Expected<void, ConfigError>
    validate(const TopologySpec &s) const = 0;
};

/** The model table entry for @p kind (static, shared, stateless). */
const TopologyModel &topologyModel(TopologyKind kind);

/** Parameters describing an interconnect. */
struct TopologySpec
{
    TopologyKind kind = TopologyKind::Star;
    /** Number of workstation nodes in the cluster. */
    std::size_t nodes = 2;
    /** Node ports per switch (ignored for Star). */
    std::size_t nodesPerSwitch = 4;
    /** Torus2D/Torus3D: switch-grid extent in X (columns). */
    std::size_t torusX = 0;
    /** Torus2D/Torus3D: switch-grid extent in Y (rows). */
    std::size_t torusY = 0;
    /** Torus3D: switch-grid extent in Z (planes; 0 for Torus2D). */
    std::size_t torusZ = 0;
    /** FatTree: number of spine switches (= uplinks per leaf). */
    std::size_t spines = 0;

    /** The per-kind behaviour table. */
    const TopologyModel &model() const { return topologyModel(kind); }

    /** Number of switches this spec requires. */
    std::size_t numSwitches() const { return model().numSwitches(*this); }

    /** Switch index a node attaches to. */
    std::size_t
    switchOf(std::size_t node) const
    {
        return model().switchOf(*this, node);
    }

    /** Port index on its switch a node attaches to. */
    std::size_t
    portOf(std::size_t node) const
    {
        return model().portOf(*this, node);
    }

    /** Ports switch @p sw needs (node ports + trunks). */
    std::size_t portsOf(std::size_t sw) const { return model().portsOf(*this, sw); }

    /** Ports on the widest switch of the fabric. */
    std::size_t portsPerSwitch() const;

    /** Links crossing the worst-case half/half node bisection. */
    std::size_t
    bisectionWidth() const
    {
        return model().bisectionWidth(*this);
    }

    /**
     * Reject nonsensical user parameters.  Returns the rejection instead
     * of aborting: user input is never a simulator invariant (callers on
     * the legacy construction path turn the error into fatal()).
     */
    Expected<void, ConfigError> validate() const { return model().validate(*this); }

    /** Human-readable summary: kind, nodes, switches, bisection width. */
    std::string describe() const;
};

} // namespace tg::net

#endif // TELEGRAPHOS_NET_TOPOLOGY_HPP

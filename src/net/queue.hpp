/**
 * @file
 * Bounded FIFO packet queue with reservation-based back-pressure.
 *
 * Every buffering point in the model (HIB link FIFOs, switch shared-buffer
 * shares) is a BoundedQueue.  Producers *reserve* a slot before starting a
 * transfer so that back-pressure propagates correctly: a transfer only
 * starts when the downstream buffer is guaranteed to have room, exactly
 * like the credit-based flow control of the real Telegraphos links
 * (paper references [16, 17]).
 *
 * Storage is a fixed-capacity ring of PacketArena handles (capacity is
 * known at construction, so the ring never reallocates): the datapath
 * moves 32-bit handles between queues via the *Handle methods, while
 * endpoints keep the value-based push/pop API, which materializes
 * packets into / out of the arena at the boundary.  DESIGN.md section 14.
 */

#ifndef TELEGRAPHOS_NET_QUEUE_HPP
#define TELEGRAPHOS_NET_QUEUE_HPP

#include <vector>

#include "net/arena.hpp"
#include "net/packet.hpp"
#include "sim/event.hpp"
#include "sim/invariant.hpp"
#include "sim/log.hpp"

namespace tg::net {

/**
 * Bounded FIFO with slot reservation.
 *
 * Capacity counts both queued packets and outstanding reservations.
 * Listeners (onData / onSpace) are invoked synchronously; they must be
 * idempotent "pump" functions that re-check state.
 */
class BoundedQueue
{
  public:
    using Listener = Fn<void()>;

    BoundedQueue(PacketArena &arena, std::size_t capacity)
        : _arena(arena), _ring(capacity, kNoPacket), _capacity(capacity)
    {
        if (capacity == 0)
            panic("BoundedQueue capacity must be > 0");
    }

    ~BoundedQueue()
    {
        // Recycle anything still queued so arena accounting stays exact
        // when a simulation is torn down mid-flight.
        while (_count > 0)
            (void)_arena.release(takeHandle());
    }

    /** The arena this queue's handles live in. */
    PacketArena &arena() { return _arena; }

    std::size_t capacity() const { return _capacity; }
    std::size_t size() const { return _count; }
    bool empty() const { return _count == 0; }

    /** True if a new reservation would be refused. */
    bool full() const { return _count + _reserved >= _capacity; }

    /** Try to claim a slot ahead of a future pushReserved(). */
    bool
    reserve()
    {
        if (full())
            return false;
        ++_reserved;
        TG_AUDIT(_count + _reserved <= _capacity,
                 "credit overcommit: %zu queued + %zu reserved > %zu slots",
                 _count, _reserved, _capacity);
        return true;
    }

    /** Release an unused reservation. */
    void
    cancelReservation()
    {
        if (_reserved == 0)
            panic("cancelReservation with no reservation");
        --_reserved;
        notify(_onSpace);
    }

    // ------------------------------------------------------------------
    // Handle API: the zero-copy datapath (links, switches)
    // ------------------------------------------------------------------

    /** Fill a previously reserved slot with an in-flight handle. */
    void
    pushReservedHandle(PacketHandle h)
    {
        if (_reserved == 0)
            panic("pushReserved with no reservation");
        --_reserved;
        putHandle(h);
        notify(_onData);
    }

    /** Enqueue a handle without prior reservation (panics when full). */
    void
    pushHandle(PacketHandle h)
    {
        if (full())
            panic("push into full queue");
        putHandle(h);
        notify(_onData);
    }

    /** Head handle (queue must be non-empty). */
    PacketHandle
    frontHandle() const
    {
        if (_count == 0)
            panic("front of empty queue");
        return _ring[_head];
    }

    /** Dequeue the head handle; wakes space listeners. */
    PacketHandle
    popHandle()
    {
        if (_count == 0)
            panic("pop of empty queue");
        const PacketHandle h = takeHandle();
        notify(_onSpace);
        return h;
    }

    // ------------------------------------------------------------------
    // Value API: the endpoint boundary (HIB, protocols, tests)
    // ------------------------------------------------------------------

    /** Fill a previously reserved slot. */
    void
    pushReserved(Packet &&p)
    {
        pushReservedHandle(_arena.acquire(std::move(p)));
    }

    /** Push without prior reservation (panics when full). */
    void
    push(Packet &&p)
    {
        if (full())
            panic("push into full queue");
        putHandle(_arena.acquire(std::move(p)));
        notify(_onData);
    }

    /** Front packet with hot fields synced (queue must be non-empty). */
    const Packet &
    front() const
    {
        if (_count == 0)
            panic("front of empty queue");
        return *_arena.syncBody(_ring[_head]);
    }

    /** Remove and return the front packet; wakes space listeners. */
    Packet
    pop()
    {
        if (_count == 0)
            panic("pop of empty queue");
        Packet p = _arena.release(takeHandle());
        notify(_onSpace);
        return p;
    }

    /** Subscribe to "a packet was enqueued". */
    void onData(Listener l) { _onData.push_back(std::move(l)); }

    /** Subscribe to "a slot was freed". */
    void onSpace(Listener l) { _onSpace.push_back(std::move(l)); }

  private:
    void
    notify(std::vector<Listener> &ls)
    {
        for (auto &l : ls)
            l();
    }

    void
    putHandle(PacketHandle h)
    {
        std::size_t tail = _head + _count;
        if (tail >= _capacity)
            tail -= _capacity;
        _ring[tail] = h;
        ++_count;
        TG_AUDIT(_count + _reserved <= _capacity,
                 "credit overcommit: %zu queued + %zu reserved > %zu slots",
                 _count, _reserved, _capacity);
    }

    PacketHandle
    takeHandle()
    {
        const PacketHandle h = _ring[_head];
        _ring[_head] = kNoPacket;
        ++_head;
        if (_head == _capacity)
            _head = 0;
        --_count;
        return h;
    }

    PacketArena &_arena;
    std::vector<PacketHandle> _ring; // fixed at construction, never grows
    std::size_t _capacity;
    std::size_t _head = 0;
    std::size_t _count = 0;
    std::size_t _reserved = 0;
    std::vector<Listener> _onData;
    std::vector<Listener> _onSpace;
};

} // namespace tg::net

#endif // TELEGRAPHOS_NET_QUEUE_HPP

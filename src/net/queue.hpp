/**
 * @file
 * Bounded FIFO packet queue with reservation-based back-pressure.
 *
 * Every buffering point in the model (HIB link FIFOs, switch shared-buffer
 * shares) is a BoundedQueue.  Producers *reserve* a slot before starting a
 * transfer so that back-pressure propagates correctly: a transfer only
 * starts when the downstream buffer is guaranteed to have room, exactly
 * like the credit-based flow control of the real Telegraphos links
 * (paper references [16, 17]).
 */

#ifndef TELEGRAPHOS_NET_QUEUE_HPP
#define TELEGRAPHOS_NET_QUEUE_HPP

#include <deque>
#include <vector>

#include "net/packet.hpp"
#include "sim/event.hpp"
#include "sim/invariant.hpp"
#include "sim/log.hpp"

namespace tg::net {

/**
 * Bounded FIFO with slot reservation.
 *
 * Capacity counts both queued packets and outstanding reservations.
 * Listeners (onData / onSpace) are invoked synchronously; they must be
 * idempotent "pump" functions that re-check state.
 */
class BoundedQueue
{
  public:
    using Listener = Fn<void()>;

    explicit BoundedQueue(std::size_t capacity) : _capacity(capacity)
    {
        if (capacity == 0)
            panic("BoundedQueue capacity must be > 0");
    }

    std::size_t capacity() const { return _capacity; }
    std::size_t size() const { return _q.size(); }
    bool empty() const { return _q.empty(); }

    /** True if a new reservation would be refused. */
    bool full() const { return _q.size() + _reserved >= _capacity; }

    /** Try to claim a slot ahead of a future pushReserved(). */
    bool
    reserve()
    {
        if (full())
            return false;
        ++_reserved;
        TG_AUDIT(_q.size() + _reserved <= _capacity,
                 "credit overcommit: %zu queued + %zu reserved > %zu slots",
                 _q.size(), _reserved, _capacity);
        return true;
    }

    /** Release an unused reservation. */
    void
    cancelReservation()
    {
        if (_reserved == 0)
            panic("cancelReservation with no reservation");
        --_reserved;
        notify(_onSpace);
    }

    /** Fill a previously reserved slot. */
    void
    pushReserved(Packet &&p)
    {
        if (_reserved == 0)
            panic("pushReserved with no reservation");
        --_reserved;
        _q.push_back(std::move(p));
        TG_AUDIT(_q.size() + _reserved <= _capacity,
                 "credit overcommit: %zu queued + %zu reserved > %zu slots",
                 _q.size(), _reserved, _capacity);
        notify(_onData);
    }

    /** Push without prior reservation (panics when full). */
    void
    push(Packet &&p)
    {
        if (full())
            panic("push into full queue");
        _q.push_back(std::move(p));
        TG_AUDIT(_q.size() + _reserved <= _capacity,
                 "credit overcommit: %zu queued + %zu reserved > %zu slots",
                 _q.size(), _reserved, _capacity);
        notify(_onData);
    }

    /** Front packet (queue must be non-empty). */
    const Packet &
    front() const
    {
        if (_q.empty())
            panic("front of empty queue");
        return _q.front();
    }

    /** Remove and return the front packet; wakes space listeners. */
    Packet
    pop()
    {
        if (_q.empty())
            panic("pop of empty queue");
        Packet p = std::move(_q.front());
        _q.pop_front();
        notify(_onSpace);
        return p;
    }

    /** Subscribe to "a packet was enqueued". */
    void onData(Listener l) { _onData.push_back(std::move(l)); }

    /** Subscribe to "a slot was freed". */
    void onSpace(Listener l) { _onSpace.push_back(std::move(l)); }

  private:
    void
    notify(std::vector<Listener> &ls)
    {
        for (auto &l : ls)
            l();
    }

    std::size_t _capacity;
    std::size_t _reserved = 0;
    std::deque<Packet> _q;
    std::vector<Listener> _onData;
    std::vector<Listener> _onSpace;
};

} // namespace tg::net

#endif // TELEGRAPHOS_NET_QUEUE_HPP

/**
 * @file
 * Unidirectional link channel between bounded queues.
 *
 * Models one direction of a Telegraphos ribbon-cable link: finite
 * bandwidth (serialization time proportional to wire size), propagation
 * delay, and credit-style back-pressure (a transfer begins only after a
 * slot in the downstream queue has been reserved).
 *
 * A physical link can carry several *virtual channels* (paper reference
 * [17], "VC-level Flow Control"): each VC is a lane with its own
 * upstream/downstream buffer pair, and the lanes share the wire with
 * round-robin arbitration.  Independent VC buffering is what makes the
 * ring topology deadlock-free (dateline routing, see net/network.cpp).
 *
 * When the cluster's fault model is active (Config::fault.enabled()),
 * every channel additionally runs a link-level reliability protocol, the
 * table-stakes machinery of NIC designs in this lineage (APEnet+,
 * Quadrics/Myrinet):
 *
 *  - each transmission carries a per-lane go-back-N sequence number and a
 *    CRC over header + payload;
 *  - the receiving side accepts only the next expected sequence number,
 *    silently discards duplicates (re-acking cumulatively) and NACKs
 *    corrupt or out-of-window arrivals;
 *  - ACK/NACK control symbols return on the cable's dedicated control
 *    lines, modelled as out-of-band events one propagation delay later;
 *  - the sender keeps transmitted packets in a retransmit buffer until
 *    cumulatively acknowledged and replays from the oldest unacked packet
 *    on NACK or timeout, with exponential backoff and a bounded retry
 *    budget;
 *  - a packet that exhausts its budget — or traffic on a link that is
 *    administratively down past Config::fault.linkDownDeadline — is
 *    handed to the failure handler (wired by net::Network to the cluster)
 *    so upper layers complete the operation with a visible error instead
 *    of wedging.
 *
 * With the default (inert) FaultSpec the original zero-overhead fast path
 * is used and timing is bit-identical to the calibrated model.
 *
 * Fast-path event batching (DESIGN.md section 14.2): instead of
 * scheduling one wire-free closure and one delivery closure per packet
 * (the delivery capturing a full Packet copy, spilling to the closure
 * pool), the channel keeps a monotone ring of pending arrivals holding
 * arena handles and arms at most one [this]-capturing event at the
 * earliest pending tick.  When it fires, *every* credit return and
 * arrival due at that tick is processed in one event — per-(link, tick)
 * coalescing — and the event re-arms for the next pending tick.  The
 * reliability path (engaged only when the fault model is active) keeps
 * the per-packet event structure: drops, duplications and NACK rewinds
 * make its arrival set non-monotone.
 */

#ifndef TELEGRAPHOS_NET_LINK_HPP
#define TELEGRAPHOS_NET_LINK_HPP

#include <deque>
#include <vector>

#include "net/fault.hpp"
#include "net/queue.hpp"
#include "sim/sim_object.hpp"
#include "sim/stats.hpp"

namespace tg::net {

/**
 * Pumps packets from upstream queues into downstream queues over one
 * shared physical wire.
 *
 * The channel is busy for the serialization time of each packet; the
 * packet arrives downstream after serialization + propagation delay.
 * Per-lane delivery is in order (FIFO lanes, single server); the
 * reliability layer preserves exactly-once in-order delivery per lane
 * under corruption, loss and duplication until a packet's retry budget
 * is exhausted.
 */
class Channel : public SimObject
{
  public:
    /** One virtual-channel lane. */
    struct Lane
    {
        BoundedQueue *up;
        BoundedQueue *down;
    };

    /** Invoked with a packet the link permanently failed to deliver. */
    using FailureHandler = Fn<void(Packet &&)>;

    /** Multi-VC channel over @p lanes. */
    Channel(System &sys, const std::string &name, std::vector<Lane> lanes,
            double bytes_per_tick, Tick delay);

    /** Convenience: single-lane channel. */
    Channel(System &sys, const std::string &name, BoundedQueue &upstream,
            BoundedQueue &downstream, double bytes_per_tick, Tick delay);

    /** Install the permanent-delivery-failure handler. */
    void setFailureHandler(FailureHandler h) { _failHandler = std::move(h); }

    /** Total packets moved (transmissions, including retransmissions). */
    std::uint64_t packets() const { return _packets; }

    /** Total payload+header bytes moved. */
    std::uint64_t bytes() const { return _bytes; }

    /** Fraction of time the wire was busy up to now. */
    double utilization() const;

    // ------------------------------------------------------------------
    // Reliability-layer statistics (all zero on the fast path)
    // ------------------------------------------------------------------

    /** Arrivals discarded because the CRC check failed. */
    std::uint64_t corruptions() const
    {
        return static_cast<std::uint64_t>(_crcErrors.value());
    }

    /** Retransmissions performed (transmissions beyond each first). */
    std::uint64_t retransmissions() const
    {
        return static_cast<std::uint64_t>(_retransmissions.value());
    }

    /** Duplicate arrivals discarded by the sequence check. */
    std::uint64_t duplicateDiscards() const
    {
        return static_cast<std::uint64_t>(_dupDiscards.value());
    }

    /** Out-of-window (gap) arrivals discarded. */
    std::uint64_t outOfWindow() const
    {
        return static_cast<std::uint64_t>(_outOfWindow.value());
    }

    /** Packets permanently failed (budget exhausted or failed over after
     *  an administrative outage passed the deadline). */
    std::uint64_t wireFailures() const
    {
        return static_cast<std::uint64_t>(_wireFailures.value());
    }

  private:
    /** Sender-side retransmit buffer entry. */
    struct TxEntry
    {
        Packet pkt;
        std::uint32_t tries = 0; ///< transmissions performed so far
    };

    /** Per-lane go-back-N protocol state. */
    struct LaneState
    {
        std::deque<TxEntry> unacked; ///< sent or sending, not yet acked
        std::size_t resend = 0;      ///< index of next entry to transmit
        std::uint64_t txNext = 1;    ///< next sequence number to assign
        std::uint64_t rxExpected = 1; ///< receiver: next in-order sequence
        std::uint64_t timerGen = 0;  ///< cancels superseded timeout events
        bool timerArmed = false;
        std::uint32_t backoff = 0;   ///< current backoff doublings
        Tick nackMuteUntil = 0;      ///< ignore NACKs until a resend RTT
    };

    /** One not-yet-delivered fast-path transmission. */
    struct PendingArrival
    {
        Tick at;          ///< arrival tick (monotone in push order)
        std::size_t lane; ///< lane index
        PacketHandle h;   ///< in-flight packet
    };

    void pump();
    void pumpReliable();

    /** The single armed fast-path event: processes every wire-free and
     *  arrival due now, pumps, and re-arms at the next pending tick. */
    void onBatchTick();

    /** Arm (or keep) the batch event at the earliest pending tick. */
    void rearm();

    /** Ensure the batch event fires no later than @p t. */
    void armAt(Tick t);

    /** Arrival processing at the downstream end of lane @p li. */
    void deliver(std::size_t li, Packet &&wire, bool dup_follows);

    /** Cumulative ACK up to @p lseq reached the sender of lane @p li. */
    void onAck(std::size_t li, std::uint64_t lseq);

    /** NACK reached the sender of lane @p li: go back to the oldest. */
    void onNack(std::size_t li);

    void armTimer(std::size_t li);
    void cancelTimer(std::size_t li);

    /** Permanently fail the entry at position @p pos of lane @p li. */
    void failEntry(std::size_t li, std::size_t pos);

    /** Fail every queued and unacknowledged packet (outage past the
     *  deadline): the failover path. */
    void failFast();

    /** Serialization time of @p wire_bytes on this channel. */
    Tick serTicks(std::uint32_t wire_bytes) const;

    std::vector<Lane> _lanes;
    PacketArena *_arena = nullptr; ///< the lanes' queues' arena
    std::size_t _rr = 0; ///< round-robin arbitration pointer
    double _bw;
    Tick _delay;
    bool _busy = false;

    // Fast-path batching state: pending arrivals (ring with head index,
    // compacted when drained — zero allocation once warm), the tick the
    // wire frees, and the tick the single batch event is armed for
    // (kMaxTick = not armed).
    std::vector<PendingArrival> _pending;
    std::size_t _pendingHead = 0;
    Tick _wireFreeAt = kMaxTick;
    Tick _armedFor = kMaxTick;
    std::uint64_t _packets = 0;
    std::uint64_t _bytes = 0;
    Tick _busyTicks = 0;

    // Reliability layer (engaged when Config::fault.enabled())
    bool _reliable = false;
    FaultInjector _inj;
    std::vector<LaneState> _ls;
    FailureHandler _failHandler;
    bool _downWakeArmed = false;

    Scalar _crcErrors;
    Scalar _retransmissions;
    Scalar _dupDiscards;
    Scalar _outOfWindow;
    Scalar _wireFailures;
    std::uint16_t _traceComp = 0;
};

} // namespace tg::net

#endif // TELEGRAPHOS_NET_LINK_HPP

/**
 * @file
 * Unidirectional link channel between bounded queues.
 *
 * Models one direction of a Telegraphos ribbon-cable link: finite
 * bandwidth (serialization time proportional to wire size), propagation
 * delay, and credit-style back-pressure (a transfer begins only after a
 * slot in the downstream queue has been reserved).
 *
 * A physical link can carry several *virtual channels* (paper reference
 * [17], "VC-level Flow Control"): each VC is a lane with its own
 * upstream/downstream buffer pair, and the lanes share the wire with
 * round-robin arbitration.  Independent VC buffering is what makes the
 * ring topology deadlock-free (dateline routing, see net/network.cpp).
 */

#ifndef TELEGRAPHOS_NET_LINK_HPP
#define TELEGRAPHOS_NET_LINK_HPP

#include <vector>

#include "net/queue.hpp"
#include "sim/sim_object.hpp"
#include "sim/stats.hpp"

namespace tg::net {

/**
 * Pumps packets from upstream queues into downstream queues over one
 * shared physical wire.
 *
 * The channel is busy for the serialization time of each packet; the
 * packet arrives downstream after serialization + propagation delay.
 * Per-lane delivery is in order (FIFO lanes, single server).
 */
class Channel : public SimObject
{
  public:
    /** One virtual-channel lane. */
    struct Lane
    {
        BoundedQueue *up;
        BoundedQueue *down;
    };

    /** Multi-VC channel over @p lanes. */
    Channel(System &sys, const std::string &name, std::vector<Lane> lanes,
            double bytes_per_tick, Tick delay);

    /** Convenience: single-lane channel. */
    Channel(System &sys, const std::string &name, BoundedQueue &upstream,
            BoundedQueue &downstream, double bytes_per_tick, Tick delay);

    /** Total packets moved. */
    std::uint64_t packets() const { return _packets; }

    /** Total payload+header bytes moved. */
    std::uint64_t bytes() const { return _bytes; }

    /** Fraction of time the wire was busy up to now. */
    double utilization() const;

  private:
    void pump();

    std::vector<Lane> _lanes;
    std::size_t _rr = 0; ///< round-robin arbitration pointer
    double _bw;
    Tick _delay;
    bool _busy = false;
    std::uint64_t _packets = 0;
    std::uint64_t _bytes = 0;
    Tick _busyTicks = 0;
};

} // namespace tg::net

#endif // TELEGRAPHOS_NET_LINK_HPP

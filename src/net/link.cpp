/**
 * @file
 * Channel implementation: serialization, propagation,
 * round-robin VC arbitration and the go-back-N reliability layer.
 */

#include "net/link.hpp"

#include <algorithm>
#include <cmath>

namespace tg::net {

Channel::Channel(System &sys, const std::string &name,
                 std::vector<Lane> lanes, double bytes_per_tick, Tick delay)
    : SimObject(sys, name), _lanes(std::move(lanes)), _bw(bytes_per_tick),
      _delay(delay),
      _inj(sys.config().fault, sys.config().seed, name)
{
    if (_bw <= 0)
        fatal("%s: link bandwidth must be positive", name.c_str());
    if (_lanes.empty())
        fatal("%s: channel needs at least one lane", name.c_str());

    _reliable = sys.config().fault.enabled();
    if (_reliable) {
        _ls.resize(_lanes.size());
        auto &reg = sys.stats();
        reg.add(_name + ".crc_errors", &_crcErrors);
        reg.add(_name + ".retransmissions", &_retransmissions);
        reg.add(_name + ".dup_discards", &_dupDiscards);
        reg.add(_name + ".out_of_window", &_outOfWindow);
        reg.add(_name + ".wire_failures", &_wireFailures);
    }

    _arena = &_lanes.front().up->arena();
    for (auto &lane : _lanes) {
        TG_AUDIT(&lane.up->arena() == _arena &&
                     &lane.down->arena() == _arena,
                 "%s: lanes span different packet arenas", _name.c_str());
        lane.up->onData([this] { pump(); });
        lane.down->onSpace([this] { pump(); });
    }
    _traceComp = sys.tracer().registerComponent(name);
}

Channel::Channel(System &sys, const std::string &name,
                 BoundedQueue &upstream, BoundedQueue &downstream,
                 double bytes_per_tick, Tick delay)
    : Channel(sys, name, std::vector<Lane>{Lane{&upstream, &downstream}},
              bytes_per_tick, delay)
{
}

Tick
Channel::serTicks(std::uint32_t wire_bytes) const
{
    // Bandwidth is configured in (fractional) bytes per tick; ceil keeps
    // the serialization time integral and pessimistic, and IEEE division
    // of exact integers is bit-identical across platforms.
    // tglint: allow(tick-float)
    return static_cast<Tick>(
        std::ceil(static_cast<double>(wire_bytes) / _bw));
}

void
Channel::pump()
{
    if (_reliable) {
        pumpReliable();
        return;
    }

    if (_busy)
        return;

    // Round-robin over lanes: pick the first one that has a packet and a
    // reservable downstream slot.  Lanes are independently buffered, so a
    // blocked VC never stalls the other — the property the dateline
    // deadlock-avoidance scheme needs.
    std::size_t li = _lanes.size();
    for (std::size_t i = 0; i < _lanes.size(); ++i) {
        const std::size_t c = (_rr + i) % _lanes.size();
        Lane &cand = _lanes[c];
        if (!cand.up->empty() && cand.down->reserve()) {
            li = c;
            _rr = (c + 1) % _lanes.size();
            break;
        }
    }
    if (li == _lanes.size())
        return;

    // Claim the wire before popping: the pop fires the upstream onSpace
    // listeners, which can re-enter pump() and must find the server busy
    // (a double-send here would overwrite _wireFreeAt and break the
    // monotonicity of the pending-arrival ring).
    _busy = true;

    // Zero-copy transfer: the packet stays in the arena; only its handle
    // moves into the pending-arrival ring.
    const PacketHandle h = _lanes[li].up->popHandle();
    const std::uint32_t bytes =
        config().packetHeaderBytes + _arena->payloadBytes(h);
    const Tick ser = serTicks(bytes);
    ++_packets;
    _bytes += bytes;
    _busyTicks += ser;

    _sys.tracer().record(_arena->traceId(h), trace::Span::LinkTx, now(),
                         _traceComp, ser);
    if (Trace::anyEnabled())
        Trace::log(now(), "net", "%s xmit %s (%u B, ser %llu)",
                   _name.c_str(), _arena->syncBody(h)->toString().c_str(),
                   bytes, (unsigned long long)ser);

    // The wire frees after serialization; the packet lands after
    // serialization + propagation delay.  Both are processed by the one
    // armed batch event (onBatchTick) instead of per-packet closures.
    _wireFreeAt = now() + ser;
    _pending.push_back(PendingArrival{now() + ser + _delay, li, h});
    armAt(_wireFreeAt);
}

void
Channel::armAt(Tick t)
{
    // Already armed at or before t: that firing will re-arm as needed.
    if (_armedFor <= t)
        return;
    TG_AUDIT(t >= now(), "%s: batch event armed in the past (t=%llu)",
             _name.c_str(), (unsigned long long)t);
    _armedFor = t;
    schedule(t - now(), [this] { onBatchTick(); });
}

void
Channel::rearm()
{
    Tick next = _wireFreeAt;
    if (_pendingHead < _pending.size() && _pending[_pendingHead].at < next)
        next = _pending[_pendingHead].at;
    if (next != kMaxTick)
        armAt(next);
}

void
Channel::onBatchTick()
{
    const Tick t = now();
    if (t != _armedFor)
        return; // superseded by an earlier re-arm
    _armedFor = kMaxTick;

    if (_wireFreeAt == t) {
        _wireFreeAt = kMaxTick;
        _busy = false;
    }

    // Deliver (and thereby return credits for) every arrival due now —
    // the per-(link, tick) coalescing — before starting the next
    // transmission, so the pump decides against settled queue state.
    while (_pendingHead < _pending.size() &&
           _pending[_pendingHead].at == t) {
        const PendingArrival a = _pending[_pendingHead];
        ++_pendingHead;
        _sys.tracer().record(_arena->traceId(a.h), trace::Span::LinkRx, t,
                             _traceComp);
        _lanes[a.lane].down->pushReservedHandle(a.h);
    }
    if (_pendingHead == _pending.size()) {
        _pending.clear();
        _pendingHead = 0;
    }

    if (!_busy)
        pump();
    rearm();
}

// ---------------------------------------------------------------------
// Reliable (fault-model) path
// ---------------------------------------------------------------------

void
Channel::pumpReliable()
{
    if (_busy)
        return;

    // Administrative outage: the wire transmits nothing.  Past the
    // deadline everything pending fails over to the error path; otherwise
    // wake up when the link comes back (or when the deadline passes).
    // isDown is checked regardless of active(): targeted down-windows
    // apply to matching links outside the random-fault filter too.
    if (_inj.isDown(now())) {
        if (_inj.downPastDeadline(now())) {
            failFast();
            return;
        }
        if (!_downWakeArmed) {
            _downWakeArmed = true;
            const Tick until = _inj.downUntil(now());
            const Tick deadline =
                _inj.downStart(now()) + _inj.spec().linkDownDeadline + 1;
            schedule(std::min(until, deadline) - now(), [this] {
                _downWakeArmed = false;
                pump();
            });
        }
        return;
    }

    // Fail entries whose retry budget is spent before committing any
    // downstream reservation to them.
    for (std::size_t li = 0; li < _lanes.size(); ++li) {
        LaneState &ls = _ls[li];
        while (ls.resend < ls.unacked.size() &&
               ls.unacked[ls.resend].tries > _inj.spec().maxRetries)
            failEntry(li, ls.resend);
    }

    // Round-robin lane selection: a lane is eligible when it has either a
    // retransmission pending or a fresh packet and window headroom, plus
    // a reservable downstream slot.
    std::size_t li = _lanes.size();
    for (std::size_t i = 0; i < _lanes.size(); ++i) {
        const std::size_t c = (_rr + i) % _lanes.size();
        Lane &cand = _lanes[c];
        LaneState &ls = _ls[c];
        const bool retx = ls.resend < ls.unacked.size();
        const bool fresh = !cand.up->empty() &&
                           ls.unacked.size() < _inj.spec().windowPackets;
        if ((retx || fresh) && cand.down->reserve()) {
            li = c;
            _rr = (c + 1) % _lanes.size();
            break;
        }
    }
    if (li == _lanes.size())
        return;

    Lane &lane = _lanes[li];
    LaneState &ls = _ls[li];

    // Claim the wire before popping: the pop can re-enter pump() through
    // the queue's listener chain and must find the server busy.
    _busy = true;

    if (ls.resend == ls.unacked.size()) {
        TxEntry e;
        e.pkt = lane.up->pop();
        e.pkt.lseq = ls.txNext++;
        e.pkt.crc = e.pkt.computeCrc();
        const bool was_empty = ls.unacked.empty();
        ls.unacked.push_back(std::move(e));
        if (was_empty)
            armTimer(li);
    }

    TxEntry &e = ls.unacked[ls.resend];
    ++ls.resend;
    if (e.tries > 0)
        ++_retransmissions;
    ++e.tries;

    Packet wire = e.pkt;

    bool drop = false, dup = false;
    if (_inj.active()) {
        drop = _inj.dropNow();
        if (!drop && _inj.corruptNow()) {
            // Flip one wire bit across the address/value fields; the
            // stored CRC goes stale and the receiver detects it.
            const std::uint32_t bit = _inj.corruptBit(128);
            if (bit < 64)
                wire.value ^= Word(1) << bit;
            else
                wire.addr ^= Word(1) << (bit - 64);
        }
        if (!drop)
            dup = _inj.duplicateNow();
    }

    const std::uint32_t bytes = wire.wireBytes(config().packetHeaderBytes);
    const Tick ser = serTicks(bytes);

    ++_packets;
    _bytes += bytes;
    _busyTicks += ser;

    _sys.tracer().record(wire.traceId, trace::Span::LinkTx, now(),
                         _traceComp, ser);
    if (Trace::anyEnabled())
        Trace::log(now(), "net", "%s xmit %s lseq=%llu try=%u%s (%u B)",
                   _name.c_str(), wire.toString().c_str(),
                   (unsigned long long)wire.lseq, e.tries,
                   drop ? " DROP" : "", bytes);

    schedule(ser, [this] {
        _busy = false;
        pump();
    });
    if (drop) {
        // The transfer vanishes on the wire; the reserved slot frees when
        // the (never-arriving) packet would have landed.
        schedule(ser + _delay,
                 [down = lane.down] { down->cancelReservation(); });
    } else {
        schedule(ser + _delay,
                 [this, li, wire = std::move(wire), dup]() mutable {
                     deliver(li, std::move(wire), dup);
                 });
    }
}

void
Channel::deliver(std::size_t li, Packet &&wire, bool dup_follows)
{
    Lane &lane = _lanes[li];
    LaneState &ls = _ls[li];

    if (dup_follows) {
        // The duplicated copy lands right behind the original if the
        // downstream buffer can take it (otherwise the wire glitch is
        // absorbed by back-pressure).
        if (lane.down->reserve()) {
            schedule(1, [this, li, copy = wire]() mutable {
                deliver(li, std::move(copy), false);
            });
        }
    }

    if (wire.crc != wire.computeCrc()) {
        ++_crcErrors;
        Trace::log(now(), "net", "%s rx CRC error lseq=%llu", _name.c_str(),
                   (unsigned long long)wire.lseq);
        lane.down->cancelReservation();
        schedule(_delay, [this, li] { onNack(li); });
        return;
    }

    if (wire.lseq == ls.rxExpected) {
        ++ls.rxExpected;
        const std::uint64_t acked = wire.lseq;
        _sys.tracer().record(wire.traceId, trace::Span::LinkRx, now(),
                             _traceComp);
        lane.down->pushReserved(std::move(wire));
        schedule(_delay, [this, li, acked] { onAck(li, acked); });
        return;
    }

    if (wire.lseq < ls.rxExpected) {
        // Duplicate: discard, but re-ack cumulatively so a lost ACK does
        // not stall the sender.
        ++_dupDiscards;
        lane.down->cancelReservation();
        const std::uint64_t acked = ls.rxExpected - 1;
        schedule(_delay, [this, li, acked] { onAck(li, acked); });
        return;
    }

    // Gap: an earlier transmission was lost; go-back-N discards
    // out-of-window arrivals and NACKs.
    ++_outOfWindow;
    lane.down->cancelReservation();
    schedule(_delay, [this, li] { onNack(li); });
}

void
Channel::onAck(std::size_t li, std::uint64_t lseq)
{
    LaneState &ls = _ls[li];
    std::size_t popped = 0;
    while (!ls.unacked.empty() && ls.unacked.front().pkt.lseq <= lseq) {
        ls.unacked.pop_front();
        ++popped;
    }
    if (popped == 0)
        return;
    ls.resend = ls.resend > popped ? ls.resend - popped : 0;
    ls.backoff = 0;
    if (ls.unacked.empty())
        cancelTimer(li);
    else
        armTimer(li);
    pump();
}

void
Channel::onNack(std::size_t li)
{
    LaneState &ls = _ls[li];
    if (ls.unacked.empty())
        return;
    // One go-back per round trip: a burst of in-flight packets behind a
    // single corruption produces a NACK each, but only the first may
    // rewind the resend pointer — otherwise the head packet would be
    // retransmitted once per NACK and spuriously burn its retry budget.
    if (now() < ls.nackMuteUntil)
        return;
    const std::uint32_t head_bytes =
        ls.unacked.front().pkt.wireBytes(config().packetHeaderBytes);
    ls.nackMuteUntil = now() + serTicks(head_bytes) + 2 * _delay;
    ls.resend = 0;
    armTimer(li);
    pump();
}

void
Channel::armTimer(std::size_t li)
{
    LaneState &ls = _ls[li];
    const std::uint64_t gen = ++ls.timerGen;
    ls.timerArmed = true;
    const std::uint32_t shift =
        std::min(ls.backoff, _inj.spec().backoffCap);
    schedule(_inj.spec().retryTimeout << shift, [this, li, gen] {
        LaneState &l = _ls[li];
        if (l.timerGen != gen || l.unacked.empty())
            return;
        // Timeout: exponential backoff, then go back to the oldest
        // unacknowledged packet.
        l.backoff = std::min(l.backoff + 1, _inj.spec().backoffCap);
        l.resend = 0;
        armTimer(li);
        pump();
    });
}

void
Channel::cancelTimer(std::size_t li)
{
    LaneState &ls = _ls[li];
    ++ls.timerGen;
    ls.timerArmed = false;
    ls.backoff = 0;
}

void
Channel::failEntry(std::size_t li, std::size_t pos)
{
    LaneState &ls = _ls[li];
    Packet pkt = std::move(ls.unacked[pos].pkt);
    ls.unacked.erase(ls.unacked.begin() +
                     static_cast<std::ptrdiff_t>(pos));
    if (ls.resend > pos)
        --ls.resend;
    ++_wireFailures;
    warn("%s: giving up on %s after %u retries", _name.c_str(),
         pkt.toString().c_str(), _inj.spec().maxRetries);
    if (ls.unacked.empty())
        cancelTimer(li);
    if (_failHandler) {
        // Deferred: the handler drains counters and may wake programs
        // that inject new traffic, which must not re-enter a pump that is
        // mid-iteration.
        schedule(0, [this, p = std::move(pkt)]() mutable {
            _failHandler(std::move(p));
        });
    }
}

void
Channel::failFast()
{
    // The link has been administratively down past the deadline: fail
    // everything queued or awaiting acknowledgement so in-flight
    // operations complete with a visible error instead of waiting out
    // the outage.
    for (std::size_t li = 0; li < _lanes.size(); ++li) {
        LaneState &ls = _ls[li];
        while (!ls.unacked.empty())
            failEntry(li, 0);
        ls.resend = 0;
        while (!_lanes[li].up->empty()) {
            Packet pkt = _lanes[li].up->pop();
            ++_wireFailures;
            warn("%s: link down past deadline, failing %s", _name.c_str(),
                 pkt.toString().c_str());
            if (_failHandler) {
                schedule(0, [this, p = std::move(pkt)]() mutable {
                    _failHandler(std::move(p));
                });
            }
        }
    }
}

double
Channel::utilization() const
{
    Tick t = now();
    return t == 0 ? 0.0
                  : static_cast<double>(_busyTicks) / static_cast<double>(t);
}

} // namespace tg::net

#include "net/link.hpp"

#include <cmath>

namespace tg::net {

Channel::Channel(System &sys, const std::string &name,
                 std::vector<Lane> lanes, double bytes_per_tick, Tick delay)
    : SimObject(sys, name), _lanes(std::move(lanes)), _bw(bytes_per_tick),
      _delay(delay)
{
    if (_bw <= 0)
        fatal("%s: link bandwidth must be positive", name.c_str());
    if (_lanes.empty())
        fatal("%s: channel needs at least one lane", name.c_str());
    for (auto &lane : _lanes) {
        lane.up->onData([this] { pump(); });
        lane.down->onSpace([this] { pump(); });
    }
}

Channel::Channel(System &sys, const std::string &name,
                 BoundedQueue &upstream, BoundedQueue &downstream,
                 double bytes_per_tick, Tick delay)
    : Channel(sys, name, std::vector<Lane>{Lane{&upstream, &downstream}},
              bytes_per_tick, delay)
{
}

void
Channel::pump()
{
    if (_busy)
        return;

    // Round-robin over lanes: pick the first one that has a packet and a
    // reservable downstream slot.  Lanes are independently buffered, so a
    // blocked VC never stalls the other — the property the dateline
    // deadlock-avoidance scheme needs.
    Lane *lane = nullptr;
    for (std::size_t i = 0; i < _lanes.size(); ++i) {
        Lane &cand = _lanes[(_rr + i) % _lanes.size()];
        if (!cand.up->empty() && cand.down->reserve()) {
            lane = &cand;
            _rr = (_rr + i + 1) % _lanes.size();
            break;
        }
    }
    if (!lane)
        return;

    Packet pkt = lane->up->pop();
    const std::uint32_t bytes = pkt.wireBytes(config().packetHeaderBytes);
    const Tick ser =
        static_cast<Tick>(std::ceil(static_cast<double>(bytes) / _bw));

    _busy = true;
    ++_packets;
    _bytes += bytes;
    _busyTicks += ser;

    Trace::log(now(), "net", "%s xmit %s (%u B, ser %llu)", _name.c_str(),
               pkt.toString().c_str(), bytes, (unsigned long long)ser);

    // The wire frees after serialization; the packet lands after
    // serialization + propagation delay.
    schedule(ser, [this] {
        _busy = false;
        pump();
    });
    schedule(ser + _delay, [down = lane->down, pkt = std::move(pkt)]() mutable {
        down->pushReserved(std::move(pkt));
    });
}

double
Channel::utilization() const
{
    Tick t = now();
    return t == 0 ? 0.0
                  : static_cast<double>(_busyTicks) / static_cast<double>(t);
}

} // namespace tg::net

/**
 * @file
 * Packet helpers: wire sizing, CRC and pretty-printing.
 */

#include "net/packet.hpp"

#include <cstdio>

namespace tg::net {

const char *
packetTypeName(PacketType t)
{
    switch (t) {
      case PacketType::WriteReq: return "WriteReq";
      case PacketType::WriteAck: return "WriteAck";
      case PacketType::ReadReq: return "ReadReq";
      case PacketType::ReadReply: return "ReadReply";
      case PacketType::CopyReq: return "CopyReq";
      case PacketType::CopyData: return "CopyData";
      case PacketType::AtomicReq: return "AtomicReq";
      case PacketType::AtomicReply: return "AtomicReply";
      case PacketType::EagerWrite: return "EagerWrite";
      case PacketType::Update: return "Update";
      case PacketType::UpdateAck: return "UpdateAck";
      case PacketType::WriteOwner: return "WriteOwner";
      case PacketType::RingUpdate: return "RingUpdate";
      case PacketType::InvReq: return "InvReq";
      case PacketType::InvAck: return "InvAck";
      case PacketType::PageReq: return "PageReq";
      case PacketType::PageData: return "PageData";
      case PacketType::Message: return "Message";
      case PacketType::CollUp: return "CollUp";
      case PacketType::CollDown: return "CollDown";
    }
    return "?";
}

namespace {

/** CRC-32C (Castagnoli), bitwise; the per-word cost is irrelevant next to
 *  event-queue work and the simulated check itself is free. */
std::uint32_t
crc32cWord(std::uint32_t crc, std::uint64_t word)
{
    for (int b = 0; b < 64; ++b) {
        const std::uint32_t bit = (crc ^ static_cast<std::uint32_t>(word)) & 1;
        crc >>= 1;
        if (bit)
            crc ^= 0x82f63b78u;
        word >>= 1;
    }
    return crc;
}

} // namespace

std::uint32_t
Packet::computeCrc() const
{
    std::uint32_t c = ~0u;
    c = crc32cWord(c, static_cast<std::uint64_t>(type) |
                          (std::uint64_t(src) << 8) |
                          (std::uint64_t(dst) << 24) |
                          (std::uint64_t(origin) << 40) |
                          (std::uint64_t(vc) << 56));
    c = crc32cWord(c, addr);
    c = crc32cWord(c, addr2);
    c = crc32cWord(c, value);
    c = crc32cWord(c, value2);
    c = crc32cWord(c, static_cast<std::uint64_t>(aop) |
                          (std::uint64_t(payloadBytes) << 8) |
                          (std::uint64_t(tracked) << 40));
    c = crc32cWord(c, seq);
    c = crc32cWord(c, ticket);
    if (bulk) {
        for (const Word w : *bulk)
            c = crc32cWord(c, w);
    }
    return ~c;
}

std::string
Packet::toString() const
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%s %u->%u addr=%llx val=%llu origin=%u seq=%llu",
                  packetTypeName(type), unsigned(src), unsigned(dst),
                  (unsigned long long)addr, (unsigned long long)value,
                  unsigned(origin), (unsigned long long)seq);
    return buf;
}

} // namespace tg::net

#include "net/packet.hpp"

#include <cstdio>

namespace tg::net {

const char *
packetTypeName(PacketType t)
{
    switch (t) {
      case PacketType::WriteReq: return "WriteReq";
      case PacketType::WriteAck: return "WriteAck";
      case PacketType::ReadReq: return "ReadReq";
      case PacketType::ReadReply: return "ReadReply";
      case PacketType::CopyReq: return "CopyReq";
      case PacketType::CopyData: return "CopyData";
      case PacketType::AtomicReq: return "AtomicReq";
      case PacketType::AtomicReply: return "AtomicReply";
      case PacketType::EagerWrite: return "EagerWrite";
      case PacketType::Update: return "Update";
      case PacketType::UpdateAck: return "UpdateAck";
      case PacketType::WriteOwner: return "WriteOwner";
      case PacketType::RingUpdate: return "RingUpdate";
      case PacketType::InvReq: return "InvReq";
      case PacketType::InvAck: return "InvAck";
      case PacketType::PageReq: return "PageReq";
      case PacketType::PageData: return "PageData";
      case PacketType::Message: return "Message";
    }
    return "?";
}

std::string
Packet::toString() const
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%s %u->%u addr=%llx val=%llu origin=%u seq=%llu",
                  packetTypeName(type), unsigned(src), unsigned(dst),
                  (unsigned long long)addr, (unsigned long long)value,
                  unsigned(origin), (unsigned long long)seq);
    return buf;
}

} // namespace tg::net

/**
 * @file
 * Remote-memory paging workload (paper section 2.2.6, reference [21]).
 *
 * An application's working set exceeds its resident pages; misses are
 * serviced either from a local-disk model or from a remote node's memory
 * through the HIB's non-blocking copy engine.  Markatos [21] showed that
 * remote memory beats disk paging by a wide margin — this workload lets
 * bench A2 reproduce that shape and exercise the prefetch path.
 */

#ifndef TELEGRAPHOS_WORKLOAD_REMOTE_PAGING_HPP
#define TELEGRAPHOS_WORKLOAD_REMOTE_PAGING_HPP

#include "api/cluster.hpp"
#include "api/segment.hpp"

namespace tg::workload {

/** Parameters of the paging workload. */
struct PagingConfig
{
    std::size_t pages = 16;        ///< virtual pages of the working set
    std::size_t residentPages = 4; ///< pages that fit locally
    int accesses = 120;            ///< page touches
    double locality = 0.7;         ///< P(touch a resident page again)
    Tick computePerTouch = 5000;   ///< work per page touch
    Tick diskLatency = 12'000'000; ///< 12 ms disk service (1995 disk)
    bool useRemoteMemory = true;   ///< false: page from the disk model
};

/** Miss statistics filled by the program. */
struct PagingStats
{
    std::uint64_t touches = 0;
    std::uint64_t misses = 0;
};

/**
 * Paging application.  @p backing is a remote segment of
 * cfg.pages pages; @p local_buf is a local segment of
 * cfg.residentPages pages used as the resident frames.
 */
Cluster::Body pagingApp(Segment &backing, Segment &local_buf,
                        PagingConfig cfg, PagingStats *stats);

} // namespace tg::workload

#endif // TELEGRAPHOS_WORKLOAD_REMOTE_PAGING_HPP

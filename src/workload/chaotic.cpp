/**
 * @file
 * Chaotic-writer workload: randomized conflicting
 * writes to one shared page.
 */

#include "workload/chaotic.hpp"

#include "api/context.hpp"

namespace tg::workload {

Cluster::Body
chaoticWriter(Segment &seg, ChaoticConfig cfg)
{
    return [&seg, cfg](Ctx &ctx) -> Task<void> {
        for (int k = 0; k < cfg.writes; ++k) {
            const std::size_t i = ctx.rng().below(cfg.words);
            // Tag the value with the writer so divergence is attributable.
            const Word v = Word(ctx.self()) * 1'000'000 + Word(k);
            co_await ctx.write(seg.word(i), v);
            if (!cfg.burst && cfg.gap)
                co_await ctx.compute(cfg.gap);
        }
        co_await ctx.fence();
    };
}

} // namespace tg::workload

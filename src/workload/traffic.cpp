/**
 * @file
 * Random remote read/write background traffic
 * generator.
 */

#include "workload/traffic.hpp"

#include "api/context.hpp"

namespace tg::workload {

Cluster::Body
randomTraffic(std::vector<Segment *> segs, TrafficConfig cfg)
{
    return [segs, cfg](Ctx &ctx) -> Task<void> {
        for (int k = 0; k < cfg.ops; ++k) {
            // Pick a segment homed on another node.
            std::size_t s;
            do {
                s = ctx.rng().below(segs.size());
            } while (segs[s]->owner() == ctx.self() && segs.size() > 1);
            const VAddr va = segs[s]->word(ctx.rng().below(cfg.words));

            if (ctx.rng().chance(cfg.readFraction)) {
                (void)co_await ctx.read(va);
            } else {
                co_await ctx.write(va, Word(ctx.self()) << 32 | Word(k));
            }
            if (cfg.gap)
                co_await ctx.compute(cfg.gap);
        }
        co_await ctx.fence();
    };
}

Cluster::Body
transposeTraffic(std::vector<Segment *> segs, TrafficConfig cfg)
{
    return [segs, cfg](Ctx &ctx) -> Task<void> {
        // Fixed partner: the mirror node.  Self-paired middle node (odd
        // n) falls back to its neighbour so it still loads the fabric.
        std::size_t partner = segs.size() - 1 - ctx.self();
        if (partner == ctx.self() && segs.size() > 1)
            partner = (partner + 1) % segs.size();
        for (int k = 0; k < cfg.ops; ++k) {
            const VAddr va =
                segs[partner]->word(ctx.rng().below(cfg.words));
            if (ctx.rng().chance(cfg.readFraction)) {
                (void)co_await ctx.read(va);
            } else {
                co_await ctx.write(va, Word(ctx.self()) << 32 | Word(k));
            }
            if (cfg.gap)
                co_await ctx.compute(cfg.gap);
        }
        co_await ctx.fence();
    };
}

Cluster::Body
hotspotTraffic(std::vector<Segment *> segs, TrafficConfig cfg, NodeId hot,
               double hotFraction)
{
    return [segs, cfg, hot, hotFraction](Ctx &ctx) -> Task<void> {
        for (int k = 0; k < cfg.ops; ++k) {
            std::size_t s;
            if (ctx.self() != hot && ctx.rng().chance(hotFraction)) {
                s = hot;
            } else {
                do {
                    s = ctx.rng().below(segs.size());
                } while (segs[s]->owner() == ctx.self() && segs.size() > 1);
            }
            const VAddr va = segs[s]->word(ctx.rng().below(cfg.words));
            if (ctx.rng().chance(cfg.readFraction)) {
                (void)co_await ctx.read(va);
            } else {
                co_await ctx.write(va, Word(ctx.self()) << 32 | Word(k));
            }
            if (cfg.gap)
                co_await ctx.compute(cfg.gap);
        }
        co_await ctx.fence();
    };
}

} // namespace tg::workload

/**
 * @file
 * Random remote read/write background traffic
 * generator.
 */

#include "workload/traffic.hpp"

#include "api/context.hpp"

namespace tg::workload {

Cluster::Body
randomTraffic(std::vector<Segment *> segs, TrafficConfig cfg)
{
    return [segs, cfg](Ctx &ctx) -> Task<void> {
        for (int k = 0; k < cfg.ops; ++k) {
            // Pick a segment homed on another node.
            std::size_t s;
            do {
                s = ctx.rng().below(segs.size());
            } while (segs[s]->owner() == ctx.self() && segs.size() > 1);
            const VAddr va = segs[s]->word(ctx.rng().below(cfg.words));

            if (ctx.rng().chance(cfg.readFraction)) {
                (void)co_await ctx.read(va);
            } else {
                co_await ctx.write(va, Word(ctx.self()) << 32 | Word(k));
            }
            if (cfg.gap)
                co_await ctx.compute(cfg.gap);
        }
        co_await ctx.fence();
    };
}

} // namespace tg::workload

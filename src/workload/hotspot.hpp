/**
 * @file
 * Hot-spot synchronization workload: all nodes hammer one counter with
 * remote atomic fetch&inc operations (paper section 2.2.3).
 */

#ifndef TELEGRAPHOS_WORKLOAD_HOTSPOT_HPP
#define TELEGRAPHOS_WORKLOAD_HOTSPOT_HPP

#include "api/cluster.hpp"
#include "api/context.hpp"
#include "api/segment.hpp"

namespace tg::workload {

/** Parameters of the hot-spot workload. */
struct HotspotConfig
{
    int increments = 100;   ///< fetch&inc ops per worker
    Tick thinkTime = 1000;  ///< compute between ops
    LaunchMode mode = LaunchMode::Default; ///< special-op launch path
};

/** Worker that increments @p counter.word(0) @p cfg.increments times. */
Cluster::Body hotspotWorker(Segment &counter, HotspotConfig cfg);

} // namespace tg::workload

#endif // TELEGRAPHOS_WORKLOAD_HOTSPOT_HPP

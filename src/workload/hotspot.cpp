/**
 * @file
 * Hot-spot synchronization workload (all nodes hammer
 * one counter).
 */

#include "workload/hotspot.hpp"

namespace tg::workload {

Cluster::Body
hotspotWorker(Segment &counter, HotspotConfig cfg)
{
    return [&counter, cfg](Ctx &ctx) -> Task<void> {
        ctx.setLaunchMode(cfg.mode);
        for (int i = 0; i < cfg.increments; ++i) {
            co_await ctx.fetchAdd(counter.word(0), 1);
            if (cfg.thinkTime)
                co_await ctx.compute(cfg.thinkTime);
        }
        co_await ctx.fence();
    };
}

} // namespace tg::workload

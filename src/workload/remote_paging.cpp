/**
 * @file
 * Remote paging workload (paper section 4:
 * paging over the network vs local disk).
 */

#include "workload/remote_paging.hpp"

#include <deque>

#include "api/context.hpp"

namespace tg::workload {

Cluster::Body
pagingApp(Segment &backing, Segment &local_buf, PagingConfig cfg,
          PagingStats *stats)
{
    return [&backing, &local_buf, cfg, stats](Ctx &ctx) -> Task<void> {
        const std::uint32_t page_bytes = ctx.cluster().config().pageBytes;
        // LRU of resident (virtual page -> resident slot).
        std::deque<std::size_t> lru; // front = least recent
        std::vector<std::size_t> slot_of(cfg.pages, SIZE_MAX);
        std::vector<std::size_t> page_in_slot(cfg.residentPages, SIZE_MAX);
        std::size_t next_free = 0;

        std::size_t cur = 0;
        for (int a = 0; a < cfg.accesses; ++a) {
            // Pick the next page with temporal locality.
            if (!ctx.rng().chance(cfg.locality) || a == 0)
                cur = ctx.rng().below(cfg.pages);
            if (stats)
                ++stats->touches;

            if (slot_of[cur] == SIZE_MAX) {
                if (stats)
                    ++stats->misses;
                // Evict the LRU page when full.
                std::size_t slot;
                if (next_free < cfg.residentPages) {
                    slot = next_free++;
                } else {
                    const std::size_t victim = lru.front();
                    lru.pop_front();
                    slot = slot_of[victim];
                    slot_of[victim] = SIZE_MAX;
                }
                if (cfg.useRemoteMemory) {
                    // Fetch the page from remote memory with the HIB's
                    // bulk copy engine and wait for completion.
                    co_await ctx.copy(
                        backing.base() + cur * page_bytes,
                        local_buf.base() + slot * page_bytes, page_bytes);
                    co_await ctx.fence();
                } else {
                    co_await ctx.compute(cfg.diskLatency);
                }
                slot_of[cur] = slot;
                page_in_slot[slot] = cur;
            } else {
                // refresh LRU position
                for (auto it = lru.begin(); it != lru.end(); ++it) {
                    if (*it == cur) {
                        lru.erase(it);
                        break;
                    }
                }
            }
            lru.push_back(cur);

            // Touch a word of the (now resident) page and compute.
            const std::size_t w =
                slot_of[cur] * (page_bytes / 8) + ctx.rng().below(16);
            (void)co_await ctx.read(local_buf.word(w));
            co_await ctx.compute(cfg.computePerTouch);
        }
    };
}

} // namespace tg::workload

/**
 * @file
 * Producer/consumer flag-passing workload.
 */

#include "workload/producer_consumer.hpp"

#include "api/context.hpp"

namespace tg::workload {

Cluster::Body
producer(Segment &data, Segment &flag, PcConfig cfg, PcStats *stats)
{
    return [&data, &flag, cfg, stats](Ctx &ctx) -> Task<void> {
        for (int r = 1; r <= cfg.rounds; ++r) {
            for (std::size_t i = 0; i < cfg.words; ++i)
                co_await ctx.write(data.word(i), Word(r) * 1000 + i);
            if (cfg.fenceBeforeFlag)
                co_await ctx.fence();
            co_await ctx.write(flag.word(0), Word(r));
            co_await ctx.compute(cfg.produceGap);
        }
        co_await ctx.fence();
        if (stats)
            stats->producerDone = ctx.now();
    };
}

Cluster::Body
consumer(Segment &data, Segment &flag, PcConfig cfg, PcStats *stats)
{
    return [&data, &flag, cfg, stats](Ctx &ctx) -> Task<void> {
        for (int r = 1; r <= cfg.rounds; ++r) {
            while (co_await ctx.read(flag.word(0)) < Word(r))
                co_await ctx.compute(300);
            for (std::size_t i = 0; i < cfg.words; ++i) {
                const Word v = co_await ctx.read(data.word(i));
                if (stats) {
                    ++stats->totalReads;
                    if (v != Word(r) * 1000 + i)
                        ++stats->staleReads;
                }
            }
        }
        if (stats)
            stats->consumerDone = ctx.now();
    };
}

} // namespace tg::workload

/**
 * @file
 * Trace-driven sharing workload (paper reference [22]: "Trace-Driven
 * Simulations of Data-Alignment and Other Factors affecting Update and
 * Invalidate Based Coherent Memory", which motivates Telegraphos's
 * decision to leave the protocol choice to software).
 *
 * A deterministic generator produces per-node access traces with
 * controllable:
 *   - write fraction,
 *   - sharing degree (how many nodes touch the same words),
 *   - alignment (whether each node's data is packed into its own region
 *     of the page or interleaved word-by-word with other nodes' data —
 *     the "data alignment" factor of [22]: misalignment induces false
 *     sharing at page granularity).
 *
 * The trace is generated up front (seeded), then replayed through the
 * normal Ctx operations so that every timing effect is the model's.
 */

#ifndef TELEGRAPHOS_WORKLOAD_TRACE_REPLAY_HPP
#define TELEGRAPHOS_WORKLOAD_TRACE_REPLAY_HPP

#include <vector>

#include "api/cluster.hpp"
#include "api/segment.hpp"
#include "sim/random.hpp"

namespace tg::workload {

/** One access in a trace. */
struct TraceOp
{
    std::size_t word;
    bool isWrite;
};

/** Parameters of the trace generator. */
struct TraceConfig
{
    int accesses = 300;        ///< per node
    double writeFraction = 0.3;
    double shareFraction = 0.2;///< P(access someone else's data)
    bool aligned = true;       ///< per-node pages vs page-interleaved
    std::size_t wordsPerNode = 16;
    std::size_t wordsPerPage = 1024; ///< 8 KB pages of 64-bit words
    Tick gap = 800;            ///< compute between accesses
    std::uint64_t seed = 99;
};

/**
 * Generate the trace for @p self of @p parties nodes over a segment of
 * @p parties pages.  With `aligned`, node n's data lives entirely in
 * page n, so writes only disturb readers of that page; without, every
 * node's words are spread across *all* pages — false sharing at page
 * granularity, the factor studied in [22].
 */
std::vector<TraceOp> generateTrace(const TraceConfig &cfg, NodeId self,
                                   std::size_t parties);

/** Replay @p trace against @p seg (which must be mapped at this node). */
Cluster::Body traceReplayer(Segment &seg, std::vector<TraceOp> trace,
                            Tick gap);

} // namespace tg::workload

#endif // TELEGRAPHOS_WORKLOAD_TRACE_REPLAY_HPP

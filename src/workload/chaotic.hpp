/**
 * @file
 * Chaotic-writer workload: several nodes write random words of the same
 * replicated page *without synchronization* — the access pattern the
 * paper warns breaks Telegraphos I but is safe under the counter-based
 * protocol (sections 2.3.3 - 2.3.4).  Benches F2 and S2 are built on it.
 */

#ifndef TELEGRAPHOS_WORKLOAD_CHAOTIC_HPP
#define TELEGRAPHOS_WORKLOAD_CHAOTIC_HPP

#include "api/cluster.hpp"
#include "api/segment.hpp"

namespace tg::workload {

/** Parameters of the chaotic-writer workload. */
struct ChaoticConfig
{
    int writes = 200;        ///< stores per writer
    std::size_t words = 32;  ///< word range written
    Tick gap = 500;          ///< compute between stores
    bool burst = false;      ///< no gap: maximal write pressure
};

/** Unsynchronized random writer over @p seg (requires a local copy). */
Cluster::Body chaoticWriter(Segment &seg, ChaoticConfig cfg);

} // namespace tg::workload

#endif // TELEGRAPHOS_WORKLOAD_CHAOTIC_HPP

/**
 * @file
 * Random network traffic generator for interconnect stress tests and the
 * A5 network ablation: uniform remote reads/writes across all segments.
 */

#ifndef TELEGRAPHOS_WORKLOAD_TRAFFIC_HPP
#define TELEGRAPHOS_WORKLOAD_TRAFFIC_HPP

#include <vector>

#include "api/cluster.hpp"
#include "api/segment.hpp"

namespace tg::workload {

/** Parameters of the random-traffic workload. */
struct TrafficConfig
{
    int ops = 500;            ///< operations per node
    double readFraction = 0.2;///< fraction of blocking remote reads
    Tick gap = 300;           ///< compute between operations
    std::size_t words = 64;   ///< words used per segment
};

/** Uniform random remote traffic over @p segs (one segment per node). */
Cluster::Body randomTraffic(std::vector<Segment *> segs, TrafficConfig cfg);

/**
 * Transpose (bit-reversal-style) permutation traffic: node i sends all
 * its operations to node (n - 1 - i)'s segment.  A fixed-pair pattern
 * that crosses the bisection on mesh-like fabrics — the classic
 * adversary for low-bisection topologies.
 */
Cluster::Body transposeTraffic(std::vector<Segment *> segs,
                               TrafficConfig cfg);

/**
 * Hotspot traffic: uniform background with @p hotFraction of operations
 * aimed at @p hot's segment.  The mix keeps the fabric loaded everywhere
 * (so bisection limits still bind) while the hot node contends — the
 * saturation pattern of the scaling benchmarks.
 */
Cluster::Body hotspotTraffic(std::vector<Segment *> segs, TrafficConfig cfg,
                             NodeId hot, double hotFraction = 0.25);

} // namespace tg::workload

#endif // TELEGRAPHOS_WORKLOAD_TRAFFIC_HPP

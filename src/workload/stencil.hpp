/**
 * @file
 * 1-D Jacobi/SOR-style stencil: each node owns a block of cells; every
 * iteration reads the neighbours' boundary cells (remote reads, or local
 * copies when replicated) and ends with a cluster-wide barrier.
 * Representative of the "scientific and engineering applications" the
 * paper's introduction motivates.
 */

#ifndef TELEGRAPHOS_WORKLOAD_STENCIL_HPP
#define TELEGRAPHOS_WORKLOAD_STENCIL_HPP

#include <vector>

#include "api/cluster.hpp"
#include "api/collectives.hpp"
#include "api/segment.hpp"

namespace tg::workload {

/** Parameters of the stencil workload. */
struct StencilConfig
{
    std::size_t cellsPerNode = 32;
    int iterations = 6;
    Tick computePerCell = 50;
};

/**
 * Worker for node @p self.  @p blocks[i] is node i's cell block (cells +
 * one ghost word at index cellsPerNode used as generation tag); the
 * iteration barrier runs on @p comm (Cluster::communicator — host or
 * NIC backend per the spec), which replaces the old raw sync segment.
 */
Cluster::Body stencilWorker(std::vector<Segment *> blocks,
                            Communicator &comm, NodeId self,
                            StencilConfig cfg);

} // namespace tg::workload

#endif // TELEGRAPHOS_WORKLOAD_STENCIL_HPP

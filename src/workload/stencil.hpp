/**
 * @file
 * 1-D Jacobi/SOR-style stencil: each node owns a block of cells; every
 * iteration reads the neighbours' boundary cells (remote reads, or local
 * copies when replicated) and ends with a cluster-wide barrier.
 * Representative of the "scientific and engineering applications" the
 * paper's introduction motivates.
 */

#ifndef TELEGRAPHOS_WORKLOAD_STENCIL_HPP
#define TELEGRAPHOS_WORKLOAD_STENCIL_HPP

#include <vector>

#include "api/cluster.hpp"
#include "api/segment.hpp"

namespace tg::workload {

/** Parameters of the stencil workload. */
struct StencilConfig
{
    std::size_t cellsPerNode = 32;
    int iterations = 6;
    Tick computePerCell = 50;
};

/**
 * Worker for node @p self of @p parties.  @p blocks[i] is node i's cell
 * block (cells + one ghost word at index cellsPerNode used as generation
 * tag); @p sync holds the barrier words (count at 0, generation at 1).
 */
Cluster::Body stencilWorker(std::vector<Segment *> blocks, Segment &sync,
                            NodeId self, Word parties, StencilConfig cfg);

} // namespace tg::workload

#endif // TELEGRAPHOS_WORKLOAD_STENCIL_HPP

/**
 * @file
 * Iterative stencil workload with boundary exchange.
 */

#include "workload/stencil.hpp"

#include "api/context.hpp"

namespace tg::workload {

Cluster::Body
stencilWorker(std::vector<Segment *> blocks, Communicator &comm,
              NodeId self, StencilConfig cfg)
{
    return [blocks, &comm, self, cfg](Ctx &ctx) -> Task<void> {
        Segment &mine = *blocks[self];
        const std::size_t n = cfg.cellsPerNode;
        const std::size_t left = (self + blocks.size() - 1) % blocks.size();
        const std::size_t right = (self + 1) % blocks.size();

        // Initialise our block: cell value = node id * 100.
        for (std::size_t i = 0; i < n; ++i)
            co_await ctx.write(mine.word(i), Word(self) * 100);
        co_await comm.barrier(ctx);

        for (int it = 0; it < cfg.iterations; ++it) {
            // Boundary cells come from the neighbours (remote reads
            // unless replicated copies exist).
            const Word lval =
                co_await ctx.read(blocks[left]->word(n - 1));
            const Word rval = co_await ctx.read(blocks[right]->word(0));

            Word prev = lval;
            for (std::size_t i = 0; i < n; ++i) {
                const Word cur = co_await ctx.read(mine.word(i));
                const Word next = (i + 1 < n)
                                      ? co_await ctx.read(mine.word(i + 1))
                                      : rval;
                const Word nv = (prev + cur + next) / 3;
                co_await ctx.write(mine.word(i), nv);
                prev = cur;
                co_await ctx.compute(cfg.computePerCell);
            }
            co_await comm.barrier(ctx);
        }
        co_await ctx.fence();
    };
}

} // namespace tg::workload

/**
 * @file
 * Producer/consumer workload (paper sections 2.2.7, 2.3.5).
 *
 * A producer fills a data buffer and raises a flag; a consumer spins on
 * the flag and reads the buffer.  With `fenceBeforeFlag` off, the flag
 * write can overtake the data writes (they are acknowledged early and the
 * paths may race) and the consumer observes *stale* data — the exact
 * hazard of section 2.3.5; with the MEMORY_BARRIER on, never.
 */

#ifndef TELEGRAPHOS_WORKLOAD_PRODUCER_CONSUMER_HPP
#define TELEGRAPHOS_WORKLOAD_PRODUCER_CONSUMER_HPP

#include "api/cluster.hpp"
#include "api/segment.hpp"

namespace tg::workload {

/** Parameters of one producer/consumer run. */
struct PcConfig
{
    std::size_t words = 16;     ///< data words per round
    int rounds = 10;            ///< flag generations
    bool fenceBeforeFlag = true;///< MEMORY_BARRIER between data and flag
    Tick produceGap = 2000;     ///< compute time between rounds
};

/** Results accumulated across both programs. */
struct PcStats
{
    std::uint64_t staleReads = 0;
    std::uint64_t totalReads = 0;
    Tick producerDone = 0;
    Tick consumerDone = 0;
};

/** Producer program: writes data then flag, round by round. */
Cluster::Body producer(Segment &data, Segment &flag, PcConfig cfg,
                       PcStats *stats);

/** Consumer program: spins on the flag, validates the data. */
Cluster::Body consumer(Segment &data, Segment &flag, PcConfig cfg,
                       PcStats *stats);

} // namespace tg::workload

#endif // TELEGRAPHOS_WORKLOAD_PRODUCER_CONSUMER_HPP

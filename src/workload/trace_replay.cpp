/**
 * @file
 * Replay of recorded access traces.
 */

#include "workload/trace_replay.hpp"

#include "api/context.hpp"

namespace tg::workload {

std::vector<TraceOp>
generateTrace(const TraceConfig &cfg, NodeId self, std::size_t parties)
{
    // Fork a per-node stream off the configured seed so traces are
    // independent yet reproducible.
    Rng rng(cfg.seed * 1315423911ULL + self + 1);

    auto word_of = [&](std::size_t owner_rank, std::size_t k) {
        if (cfg.aligned) {
            // Aligned: rank r's data lives entirely in page r.
            return owner_rank * cfg.wordsPerPage + k;
        }
        // Interleaved: rank r's words are spread round-robin over all
        // `parties` pages — every page carries every node's data, so
        // page-granularity invalidations hit everyone (false sharing).
        const std::size_t page = k % parties;
        return page * cfg.wordsPerPage + owner_rank * cfg.wordsPerNode +
               k / parties;
    };

    std::vector<TraceOp> trace;
    trace.reserve(cfg.accesses);
    for (int i = 0; i < cfg.accesses; ++i) {
        std::size_t rank = self;
        if (rng.chance(cfg.shareFraction))
            rank = rng.below(parties);
        TraceOp op;
        op.word = word_of(rank, rng.below(cfg.wordsPerNode));
        // Only write your own data; read anyone's (the [22] model).
        op.isWrite = (rank == self) && rng.chance(cfg.writeFraction);
        trace.push_back(op);
    }
    return trace;
}

Cluster::Body
traceReplayer(Segment &seg, std::vector<TraceOp> trace, Tick gap)
{
    return [&seg, trace = std::move(trace), gap](Ctx &ctx) -> Task<void> {
        Word tick = 0;
        for (const TraceOp &op : trace) {
            if (op.isWrite)
                co_await ctx.write(seg.word(op.word),
                                   (Word(ctx.self()) << 32) | ++tick);
            else
                (void)co_await ctx.read(seg.word(op.word));
            if (gap)
                co_await ctx.compute(gap);
        }
        co_await ctx.fence();
    };
}

} // namespace tg::workload

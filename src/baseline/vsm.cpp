/**
 * @file
 * Virtual shared memory baseline: page-fault driven
 * software DSM a la Li/Hudak.
 */

#include "baseline/vsm.hpp"

#include "node/address.hpp"

namespace tg::baseline {

using net::Packet;
using net::PacketType;
using node::PageMode;
using node::Pte;

namespace {
constexpr Word kInval = 1;
constexpr Word kInvalAck = 2;
} // namespace

VsmDsm::VsmDsm(Cluster &cluster) : _cluster(cluster)
{
    for (NodeId n = 0; n < NodeId(_cluster.numNodes()); ++n) {
        _cluster.os(n).addFaultService(
            [this, n](VAddr va, bool w, std::function<void()> retry,
                      std::function<void(std::string)> kill) {
                return handleFault(n, va, w, std::move(retry),
                                   std::move(kill));
            });
        _cluster.hibOf(n).addSoftwareHandler(
            [this, n](const Packet &pkt) { return handlePacket(n, pkt); });
    }
}

VAddr
VsmDsm::alloc(const std::string &name, std::size_t bytes, NodeId home)
{
    (void)name;
    const std::size_t page_bytes = _cluster.config().pageBytes;
    const std::size_t pages = (bytes + page_bytes - 1) / page_bytes;
    const VAddr base = _cluster.allocVaPages(pages);

    for (std::size_t p = 0; p < pages; ++p) {
        const VAddr va = base + p * page_bytes;
        VsmPage pg;
        pg.va = va;
        pg.owner = home;
        pg.writable = true;
        pg.holders.insert(home);
        _pages.emplace(va, std::move(pg));

        // Home starts resident read-write; everyone else absent.
        for (NodeId n = 0; n < NodeId(_cluster.numNodes()); ++n) {
            if (n == home) {
                mapAt(_pages[va], n, true);
            } else {
                Pte pte;
                pte.mode = PageMode::VsmAbsent;
                _cluster.node(n).defaultAddressSpace().map(va, pte);
            }
        }
    }
    return base;
}

VsmDsm::VsmPage *
VsmDsm::pageOf(VAddr va)
{
    const std::size_t page_bytes = _cluster.config().pageBytes;
    auto it = _pages.find(va - va % page_bytes);
    return it == _pages.end() ? nullptr : &it->second;
}

PAddr
VsmDsm::frameFor(VsmPage &pg, NodeId n)
{
    auto it = pg.frames.find(n);
    if (it != pg.frames.end())
        return it->second;
    const PAddr frame = _cluster.node(n).allocMainFrames(1);
    pg.frames.emplace(n, frame);
    return frame;
}

void
VsmDsm::mapAt(VsmPage &pg, NodeId n, bool writable)
{
    Pte pte;
    pte.frame = frameFor(pg, n);
    pte.mode = PageMode::Private;
    pte.write = writable;
    node::AddressSpace &as = _cluster.node(n).defaultAddressSpace();
    as.map(pg.va, pte);
    _cluster.node(n).mmu().flushPage(as.asid(), pg.va);
    _cluster.node(n).cache().invalidatePage(pte.frame);
}

void
VsmDsm::unmapAt(VsmPage &pg, NodeId n)
{
    Pte pte;
    pte.mode = PageMode::VsmAbsent;
    node::AddressSpace &as = _cluster.node(n).defaultAddressSpace();
    as.map(pg.va, pte);
    _cluster.node(n).mmu().flushPage(as.asid(), pg.va);
}

void
VsmDsm::requestPage(NodeId n, VsmPage &pg)
{
    _pending[n].waitingPage = true;
    hib::Hib &hib = _cluster.hibOf(n);
    // Kernel assembles and sends the request message.
    _cluster.system().events().schedule(
        _cluster.config().osMessage, [this, &hib, va = pg.va,
                                      owner = pg.owner] {
            Packet req;
            req.type = PacketType::PageReq;
            req.dst = owner;
            req.addr = va;
            req.origin = hib.nodeId();
            req.payloadBytes = 16;
            hib.inject(std::move(req), /*track=*/false);
        });
}

bool
VsmDsm::handleFault(NodeId n, VAddr va, bool is_write,
                    std::function<void()> retry,
                    std::function<void(std::string)> kill)
{
    (void)kill;
    VsmPage *pg = pageOf(va);
    if (!pg)
        return false;
    if (_pending.count(n))
        panic("vsm: overlapping faults on node %u", unsigned(n));

    // The (central) manager serializes fault service per page — without
    // this, two concurrent write faults can both "win" exclusivity and
    // the copies diverge for good.  The loser retries (re-faults).
    if (pg->busy) {
        _cluster.system().events().schedule(
            _cluster.config().osPageFault, [retry = std::move(retry)] {
                retry();
            });
        return true;
    }
    pg->busy = true;

    PendingFault pf;
    pf.pageVa = pg->va;
    pf.isWrite = is_write;
    pf.retry = std::move(retry);
    _pending[n] = std::move(pf);

    if (is_write) {
        ++_writeFaults;
        for (NodeId m : pg->holders) {
            if (m == n)
                continue;
            ++_pending[n].waitingAcks;
        }
        if (_pending[n].waitingAcks > 0) {
            ++_invalidations;
            hib::Hib &hib = _cluster.hibOf(n);
            std::vector<NodeId> targets;
            for (NodeId m : pg->holders)
                if (m != n)
                    targets.push_back(m);
            _cluster.system().events().schedule(
                _cluster.config().osMessage,
                [&hib, targets, va = pg->va, n] {
                    for (NodeId m : targets) {
                        Packet inv;
                        inv.type = PacketType::Message;
                        inv.dst = m;
                        inv.addr = va;
                        inv.value = kInval;
                        inv.origin = n;
                        inv.payloadBytes = 16;
                        hib.inject(std::move(inv), /*track=*/false);
                    }
                });
        }
        if (!pg->holders.count(n))
            requestPage(n, *pg);
    } else {
        ++_readFaults;
        requestPage(n, *pg);
    }
    maybeFinish(n);
    return true;
}

void
VsmDsm::maybeFinish(NodeId n)
{
    auto it = _pending.find(n);
    if (it == _pending.end())
        return;
    PendingFault &pf = it->second;
    if (pf.waitingAcks > 0 || pf.waitingPage)
        return;

    VsmPage &pg = _pages[pf.pageVa];
    const bool is_write = pf.isWrite;
    auto retry = std::move(pf.retry);
    _pending.erase(it);

    // Final kernel work: update the page tables.
    _cluster.system().events().schedule(
        _cluster.config().osPageFault, [this, &pg, n, is_write,
                                        retry = std::move(retry)] {
            if (is_write) {
                // Exclusive: everyone else was invalidated.
                pg.owner = n;
                pg.writable = true;
                pg.holders.clear();
                pg.holders.insert(n);
                mapAt(pg, n, true);
            } else {
                // Shared read: demote the writer if there was one.
                if (pg.writable) {
                    pg.writable = false;
                    mapAt(pg, pg.owner, false);
                }
                pg.holders.insert(n);
                mapAt(pg, n, false);
            }
            pg.busy = false;
            retry();
        });
}

bool
VsmDsm::handlePacket(NodeId n, const Packet &pkt)
{
    if (pkt.type == PacketType::PageReq) {
        VsmPage *pg = pageOf(pkt.addr);
        if (!pg)
            return false;
        ++_pageTransfers;
        hib::Hib &hib = _cluster.hibOf(n);
        const std::size_t words = _cluster.config().pageBytes / 8;
        // Kernel service: read out the page and ship it.
        _cluster.system().events().schedule(
            _cluster.config().osMessage,
            [this, &hib, pg, n, words, requester = pkt.origin] {
                const NodeId src_node =
                    pg->frames.count(n) ? n : pg->owner;
                const PAddr frame = frameFor(*pg, src_node);
                auto bulk = std::make_shared<std::vector<Word>>();
                bulk->reserve(words);
                node::MainMemory &mem = _cluster.memOf(src_node);
                for (std::size_t w = 0; w < words; ++w)
                    bulk->push_back(
                        mem.read(node::offsetOf(frame) + PAddr(w) * 8));
                Packet data;
                data.type = PacketType::PageData;
                data.dst = requester;
                data.addr = pg->va;
                data.value = words;
                data.payloadBytes =
                    static_cast<std::uint32_t>(words * 8);
                data.bulk = std::move(bulk);
                hib.inject(std::move(data), /*track=*/false);
            });
        return true;
    }

    if (pkt.type == PacketType::PageData) {
        VsmPage *pg = pageOf(pkt.addr);
        if (!pg)
            return false;
        const PAddr frame = frameFor(*pg, n);
        node::MainMemory &mem = _cluster.memOf(n);
        for (std::size_t w = 0; w < pkt.bulk->size(); ++w)
            mem.write(node::offsetOf(frame) + PAddr(w) * 8, (*pkt.bulk)[w]);
        auto it = _pending.find(n);
        if (it != _pending.end() && it->second.pageVa == pg->va) {
            it->second.waitingPage = false;
            // Receive-side kernel processing before the fault resumes.
            _cluster.system().events().schedule(
                _cluster.config().osMessage,
                [this, n] { maybeFinish(n); });
        }
        return true;
    }

    if (pkt.type == PacketType::Message && pkt.value == kInval) {
        VsmPage *pg = pageOf(pkt.addr);
        if (!pg)
            return false;
        hib::Hib &hib = _cluster.hibOf(n);
        _cluster.system().events().schedule(
            _cluster.config().osInterrupt,
            [this, &hib, pg, n, requester = pkt.origin] {
                unmapAt(*pg, n);
                pg->holders.erase(n);
                Packet ack;
                ack.type = PacketType::Message;
                ack.dst = requester;
                ack.addr = pg->va;
                ack.value = kInvalAck;
                ack.origin = n;
                ack.payloadBytes = 16;
                hib.inject(std::move(ack), /*track=*/false);
            });
        return true;
    }

    if (pkt.type == PacketType::Message && pkt.value == kInvalAck) {
        auto it = _pending.find(n);
        if (it == _pending.end() || it->second.pageVa != pkt.addr)
            return false;
        --it->second.waitingAcks;
        maybeFinish(n);
        return true;
    }

    return false;
}

} // namespace tg::baseline

/**
 * @file
 * Socket-style message passing baseline.
 *
 * Models the "traditional environments [that] need the intervention of
 * the operating system to make even the simplest exchange of
 * information" (paper section 1): every send and every receive pays a
 * kernel messaging cost (syscall + copies + protocol stack) on top of
 * the wire time.  Bench A4 contrasts it with Telegraphos remote writes.
 */

#ifndef TELEGRAPHOS_BASELINE_SOCKETS_HPP
#define TELEGRAPHOS_BASELINE_SOCKETS_HPP

#include <map>

#include "api/cluster.hpp"
#include "api/context.hpp"

namespace tg::baseline {

/** Kernel-mediated messaging over the same interconnect. */
class SocketLayer
{
  public:
    explicit SocketLayer(Cluster &cluster);

    /**
     * Send @p bytes tagged @p tag to @p to.  Charges the sender-side OS
     * cost inline (the coroutine blocks in the "syscall"), then the wire,
     * then the receiver-side OS cost before delivery.
     */
    Task<void> send(Ctx &ctx, NodeId to, Word tag, std::uint32_t bytes);

    /**
     * Blocking receive: completes once a message with @p tag has been
     * delivered to @p ctx's node (poll-based, like a blocking syscall).
     */
    Task<void> recv(Ctx &ctx, Word tag);

    std::uint64_t delivered() const { return _delivered; }

  private:
    Cluster &_cluster;
    /** (node, tag) -> messages delivered / consumed. */
    std::map<std::pair<NodeId, Word>, std::uint64_t> _arrived;
    std::map<std::pair<NodeId, Word>, std::uint64_t> _consumed;
    std::uint64_t _delivered = 0;
};

} // namespace tg::baseline

#endif // TELEGRAPHOS_BASELINE_SOCKETS_HPP

/**
 * @file
 * Socket-based message-passing baseline (OS trap +
 * software protocol costs).
 */

#include "baseline/sockets.hpp"

namespace tg::baseline {

using net::Packet;
using net::PacketType;

namespace {
/** Distinguishes socket messages from other software packets. */
constexpr Word kSocketMark = 0x50c4e7;
} // namespace

SocketLayer::SocketLayer(Cluster &cluster) : _cluster(cluster)
{
    for (NodeId n = 0; n < NodeId(_cluster.numNodes()); ++n) {
        _cluster.hibOf(n).addSoftwareHandler([this, n](const Packet &pkt) {
            if (pkt.type != PacketType::Message || pkt.value2 != kSocketMark)
                return false;
            // Receiver-side kernel processing before delivery.
            _cluster.system().events().schedule(
                _cluster.config().osMessage, [this, n, tag = pkt.value] {
                    ++_arrived[{n, tag}];
                    ++_delivered;
                });
            return true;
        });
    }
}

Task<void>
SocketLayer::send(Ctx &ctx, NodeId to, Word tag, std::uint32_t bytes)
{
    // The send syscall: trap, copies, protocol stack.
    co_await ctx.compute(_cluster.config().osMessage);
    Packet pkt;
    pkt.type = PacketType::Message;
    pkt.dst = to;
    pkt.value = tag;
    pkt.value2 = kSocketMark;
    pkt.origin = ctx.self();
    pkt.payloadBytes = bytes;
    _cluster.hibOf(ctx.self()).inject(std::move(pkt), /*track=*/false);
}

Task<void>
SocketLayer::recv(Ctx &ctx, Word tag)
{
    const auto key = std::make_pair(ctx.self(), tag);
    // Blocking receive: poll the socket buffer state.
    while (_arrived[key] == _consumed[key])
        co_await ctx.compute(500);
    ++_consumed[key];
    // Receive syscall cost (copy to user space).
    co_await ctx.compute(_cluster.config().osMessage / 2);
}

} // namespace tg::baseline

/**
 * @file
 * Virtual Shared Memory baseline (Li & Hudak style page-based DSM).
 *
 * This is the "traditional system" of paper section 2.1: the
 * shared-memory illusion is built entirely in software on page faults.
 * A non-present access traps; the OS fetches an 8 KB page copy from its
 * current owner over the network; writes invalidate every other copy
 * first.  All slow-path costs (traps, kernel messaging, page transfers,
 * remap + TLB flush) are charged, using the same simulated interconnect
 * as Telegraphos — so bench A4's comparison isolates exactly the cost of
 * software intervention that Telegraphos eliminates.
 */

#ifndef TELEGRAPHOS_BASELINE_VSM_HPP
#define TELEGRAPHOS_BASELINE_VSM_HPP

#include <map>
#include <set>
#include <string>

#include "api/cluster.hpp"

namespace tg::baseline {

/** Page-fault driven software DSM over the cluster. */
class VsmDsm
{
  public:
    explicit VsmDsm(Cluster &cluster);

    /**
     * Allocate a VSM region of @p bytes, initially resident (read-write)
     * on @p home and absent everywhere else.  Returns its base VA.
     */
    VAddr alloc(const std::string &name, std::size_t bytes, NodeId home);

    /** Word address helper. */
    VAddr word(VAddr base, std::size_t i) const { return base + i * 8; }

    std::uint64_t readFaults() const { return _readFaults; }
    std::uint64_t writeFaults() const { return _writeFaults; }
    std::uint64_t pageTransfers() const { return _pageTransfers; }
    std::uint64_t invalidations() const { return _invalidations; }

  private:
    struct VsmPage
    {
        VAddr va = 0;                   ///< page base VA
        NodeId owner = 0;               ///< holds the authoritative copy
        bool writable = false;          ///< owner is in write (exclusive) mode
        bool busy = false;              ///< a fault is being serviced
        std::set<NodeId> holders;       ///< nodes with a mapped copy
        std::map<NodeId, PAddr> frames; ///< local frame per node (lazy)
    };

    struct PendingFault
    {
        VAddr pageVa = 0;
        bool isWrite = false;
        std::size_t waitingAcks = 0;
        bool waitingPage = false;
        std::function<void()> retry;
    };

    bool handleFault(NodeId n, VAddr va, bool is_write,
                     std::function<void()> retry,
                     std::function<void(std::string)> kill);
    bool handlePacket(NodeId n, const net::Packet &pkt);

    VsmPage *pageOf(VAddr va);
    PAddr frameFor(VsmPage &pg, NodeId n);
    void mapAt(VsmPage &pg, NodeId n, bool writable);
    void unmapAt(VsmPage &pg, NodeId n);
    void requestPage(NodeId n, VsmPage &pg);
    void maybeFinish(NodeId n);

    Cluster &_cluster;
    std::map<VAddr, VsmPage> _pages; // keyed by page base VA
    std::map<NodeId, PendingFault> _pending;
    std::uint64_t _readFaults = 0;
    std::uint64_t _writeFaults = 0;
    std::uint64_t _pageTransfers = 0;
    std::uint64_t _invalidations = 0;
};

} // namespace tg::baseline

#endif // TELEGRAPHOS_BASELINE_VSM_HPP

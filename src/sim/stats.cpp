/**
 * @file
 * Statistics registry and sampler implementations.
 */

#include "sim/stats.hpp"

#include <array>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace tg {

void
Sampler::sample(double v)
{
    if (_n == 0) {
        _min = _max = v;
    } else {
        _min = std::min(_min, v);
        _max = std::max(_max, v);
    }
    ++_n;
    _sum += v;
    // Welford update: accumulate centred second moments.
    double delta = v - _welfordMean;
    _welfordMean += delta / static_cast<double>(_n);
    _m2 += delta * (v - _welfordMean);
    if (_samples.size() < _cap) {
        _samples.push_back(v);
        _sorted = false;
    } else {
        spill(v);
    }
}

int
Sampler::bucketOf(double v)
{
    if (!(v > 0))
        return 0;
    int exp = 0;
    (void)std::frexp(v, &exp); // v = m * 2^exp, m in [0.5, 1)
    // Bucket b spans [2^(b-kBias), 2^(b-kBias+1)); frexp's exponent is
    // one above the power-of-two floor.
    int b = exp - 1 + kBias;
    return std::clamp(b, 0, kBuckets - 1);
}

void
Sampler::spill(double v)
{
    if (_buckets.empty())
        _buckets.assign(kBuckets, 0);
    ++_buckets[static_cast<std::size_t>(bucketOf(v))];
    ++_sketched;
}

double
Sampler::stddev() const
{
    if (_n < 2)
        return 0.0;
    double var = _m2 / static_cast<double>(_n - 1);
    return var > 0 ? std::sqrt(var) : 0.0;
}

double
Sampler::quantile(double q) const
{
    if (_samples.empty())
        return 0.0;
    if (!_sorted) {
        std::sort(_samples.begin(), _samples.end());
        _sorted = true;
    }
    // Clamp out-of-range (and NaN) q explicitly: std::clamp(NaN) and the
    // index arithmetic below are both unsafe outside [0, 1].  The
    // negated comparison routes NaN to the low extreme.
    if (_sketched == 0) {
        if (!(q > 0.0) || _samples.size() == 1)
            return _samples.front();
        if (q >= 1.0)
            return _samples.back();
        double pos = q * static_cast<double>(_samples.size() - 1);
        std::size_t lo = static_cast<std::size_t>(pos);
        double frac = pos - static_cast<double>(lo);
        if (lo + 1 >= _samples.size())
            return _samples[lo];
        return _samples[lo] + frac * (_samples[lo + 1] - _samples[lo]);
    }

    // Spilled: interpolate inside the histogram bucket holding the
    // target rank (exactly retained samples re-binned on the fly), then
    // clamp to the exact running extremes.
    if (!(q > 0.0))
        return _min;
    if (q >= 1.0)
        return _max;
    std::array<std::uint64_t, kBuckets> counts{};
    for (std::size_t b = 0; b < _buckets.size(); ++b)
        counts[b] = _buckets[b];
    for (double v : _samples)
        ++counts[static_cast<std::size_t>(bucketOf(v))];
    const double rank = q * static_cast<double>(_n - 1);
    std::uint64_t seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
        const std::uint64_t c = counts[static_cast<std::size_t>(b)];
        if (c == 0)
            continue;
        if (static_cast<double>(seen + c) > rank) {
            const double lo = b == 0 ? 0.0 : std::ldexp(1.0, b - kBias);
            const double hi = std::ldexp(1.0, b - kBias + 1);
            const double within =
                (rank - static_cast<double>(seen)) / static_cast<double>(c);
            return std::clamp(lo + within * (hi - lo), _min, _max);
        }
        seen += c;
    }
    return _max;
}

void
Sampler::setSampleCap(std::size_t cap)
{
    _cap = std::max<std::size_t>(cap, 1);
    if (_samples.size() > _cap) {
        // Lowered below the retained set: spill the tail into the sketch
        // (which samples spill is deterministic — insertion order).
        for (std::size_t i = _cap; i < _samples.size(); ++i)
            spill(_samples[i]);
        _samples.resize(_cap);
        _samples.shrink_to_fit();
    }
}

std::size_t
Sampler::approxBytes() const
{
    return _samples.capacity() * sizeof(double) +
           _buckets.capacity() * sizeof(std::uint64_t);
}

void
Sampler::reset()
{
    _n = 0;
    _sum = _welfordMean = _m2 = _min = _max = 0;
    _sketched = 0;
    _buckets.clear();
    _buckets.shrink_to_fit();
    _samples.clear();
    _samples.shrink_to_fit();
    _sorted = true;
}

Histogram::Histogram(double bucket_width, std::size_t nbuckets)
    : _width(bucket_width), _buckets(nbuckets, 0)
{
}

void
Histogram::sample(double v)
{
    std::size_t idx = v <= 0 ? 0 : static_cast<std::size_t>(v / _width);
    if (idx >= _buckets.size())
        idx = _buckets.size() - 1;
    ++_buckets[idx];
    ++_count;
}

void
Histogram::reset()
{
    std::fill(_buckets.begin(), _buckets.end(), 0);
    _count = 0;
}

void
StatRegistry::add(const std::string &name, const Scalar *s)
{
    _scalars[name] = s;
}

void
StatRegistry::add(const std::string &name, const Sampler *s)
{
    _samplers[name] = s;
}

void
StatRegistry::add(const std::string &name, const Histogram *h)
{
    _histograms[name] = h;
}

void
StatRegistry::dump(std::ostream &os) const
{
    os << std::left;
    for (const auto &[name, s] : _scalars) {
        os << std::setw(48) << name << " " << s->value() << "\n";
    }
    for (const auto &[name, s] : _samplers) {
        os << std::setw(48) << (name + ".count") << " " << s->count() << "\n";
        if (s->count() > 0) {
            os << std::setw(48) << (name + ".mean") << " " << s->mean() << "\n";
            os << std::setw(48) << (name + ".min") << " " << s->min() << "\n";
            os << std::setw(48) << (name + ".max") << " " << s->max() << "\n";
            os << std::setw(48) << (name + ".p50") << " " << s->quantile(0.5)
               << "\n";
            os << std::setw(48) << (name + ".p99") << " " << s->quantile(0.99)
               << "\n";
        }
    }
    for (const auto &[name, h] : _histograms) {
        os << std::setw(48) << (name + ".count") << " " << h->count() << "\n";
        if (h->count() == 0)
            continue;
        const auto &b = h->buckets();
        for (std::size_t i = 0; i < b.size(); ++i) {
            if (b[i] == 0)
                continue;
            std::ostringstream bucket;
            bucket << name << ".bucket["
                   << h->bucketWidth() * static_cast<double>(i) << ","
                   << h->bucketWidth() * static_cast<double>(i + 1) << ")";
            os << std::setw(48) << bucket.str() << " " << b[i] << "\n";
        }
    }
}

namespace {

/** Deterministic decimal rendering for the JSON dump. */
std::string
jsonNum(double v)
{
    std::ostringstream os;
    os << std::setprecision(12) << v;
    return os.str();
}

} // namespace

void
StatRegistry::dumpJson(std::ostream &os) const
{
    os << "{\"schema\":\"tg-stats-v1\",\"scalars\":{";
    bool first = true;
    for (const auto &[name, s] : _scalars) {
        os << (first ? "" : ",") << "\"" << name
           << "\":" << jsonNum(s->value());
        first = false;
    }
    os << "},\"samplers\":{";
    first = true;
    for (const auto &[name, s] : _samplers) {
        os << (first ? "" : ",") << "\"" << name
           << "\":{\"count\":" << s->count()
           << ",\"mean\":" << jsonNum(s->mean())
           << ",\"min\":" << jsonNum(s->min())
           << ",\"max\":" << jsonNum(s->max())
           << ",\"stddev\":" << jsonNum(s->stddev())
           << ",\"p50\":" << jsonNum(s->quantile(0.5))
           << ",\"p99\":" << jsonNum(s->quantile(0.99)) << "}";
        first = false;
    }
    os << "},\"histograms\":{";
    first = true;
    for (const auto &[name, h] : _histograms) {
        os << (first ? "" : ",") << "\"" << name
           << "\":{\"count\":" << h->count()
           << ",\"bucket_width\":" << jsonNum(h->bucketWidth())
           << ",\"buckets\":[";
        const auto &b = h->buckets();
        for (std::size_t i = 0; i < b.size(); ++i)
            os << (i ? "," : "") << b[i];
        os << "]}";
        first = false;
    }
    os << "}}";
}

double
StatRegistry::scalar(const std::string &name) const
{
    auto it = _scalars.find(name);
    return it == _scalars.end() ? 0.0 : it->second->value();
}

} // namespace tg

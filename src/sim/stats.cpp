/**
 * @file
 * Statistics registry and sampler implementations.
 */

#include "sim/stats.hpp"

#include <cmath>
#include <iomanip>

namespace tg {

void
Sampler::sample(double v)
{
    if (_n == 0) {
        _min = _max = v;
    } else {
        _min = std::min(_min, v);
        _max = std::max(_max, v);
    }
    ++_n;
    _sum += v;
    _sum2 += v * v;
    _samples.push_back(v);
    _sorted = false;
}

double
Sampler::stddev() const
{
    if (_n < 2)
        return 0.0;
    double n = static_cast<double>(_n);
    double var = (_sum2 - _sum * _sum / n) / (n - 1);
    return var > 0 ? std::sqrt(var) : 0.0;
}

double
Sampler::quantile(double q) const
{
    if (_samples.empty())
        return 0.0;
    if (!_sorted) {
        std::sort(_samples.begin(), _samples.end());
        _sorted = true;
    }
    q = std::clamp(q, 0.0, 1.0);
    std::size_t idx = static_cast<std::size_t>(
        q * static_cast<double>(_samples.size() - 1) + 0.5);
    return _samples[idx];
}

void
Sampler::reset()
{
    _n = 0;
    _sum = _sum2 = _min = _max = 0;
    _samples.clear();
    _sorted = true;
}

Histogram::Histogram(double bucket_width, std::size_t nbuckets)
    : _width(bucket_width), _buckets(nbuckets, 0)
{
}

void
Histogram::sample(double v)
{
    std::size_t idx = v <= 0 ? 0 : static_cast<std::size_t>(v / _width);
    if (idx >= _buckets.size())
        idx = _buckets.size() - 1;
    ++_buckets[idx];
    ++_count;
}

void
Histogram::reset()
{
    std::fill(_buckets.begin(), _buckets.end(), 0);
    _count = 0;
}

void
StatRegistry::add(const std::string &name, const Scalar *s)
{
    _scalars[name] = s;
}

void
StatRegistry::add(const std::string &name, const Sampler *s)
{
    _samplers[name] = s;
}

void
StatRegistry::dump(std::ostream &os) const
{
    os << std::left;
    for (const auto &[name, s] : _scalars) {
        os << std::setw(48) << name << " " << s->value() << "\n";
    }
    for (const auto &[name, s] : _samplers) {
        os << std::setw(48) << (name + ".count") << " " << s->count() << "\n";
        if (s->count() > 0) {
            os << std::setw(48) << (name + ".mean") << " " << s->mean() << "\n";
            os << std::setw(48) << (name + ".min") << " " << s->min() << "\n";
            os << std::setw(48) << (name + ".max") << " " << s->max() << "\n";
            os << std::setw(48) << (name + ".p50") << " " << s->quantile(0.5)
               << "\n";
            os << std::setw(48) << (name + ".p99") << " " << s->quantile(0.99)
               << "\n";
        }
    }
}

double
StatRegistry::scalar(const std::string &name) const
{
    auto it = _scalars.find(name);
    return it == _scalars.end() ? 0.0 : it->second->value();
}

} // namespace tg

/**
 * @file
 * Minimal logging and error-reporting facilities (gem5-style panic/fatal).
 *
 *  - panic():  an internal simulator invariant was violated (a bug in the
 *              model itself); aborts.
 *  - fatal():  the user configured something impossible; exits cleanly.
 *  - warn() / inform(): advisory messages.
 *  - Trace:    per-component debug tracing, off by default, enabled by
 *              component name (e.g. Trace::enable("hib")).
 */

#ifndef TELEGRAPHOS_SIM_LOG_HPP
#define TELEGRAPHOS_SIM_LOG_HPP

#include <cstdarg>
#include <string>

#include "sim/types.hpp"

namespace tg {

/** Abort with a formatted message: simulator bug (never the user's fault). */
[[noreturn]] void panic(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Exit with a formatted message: user configuration error. */
[[noreturn]] void fatal(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Advisory warning to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Informational message to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Per-component trace switchboard.
 *
 * Tracing is string-keyed by component ("net", "hib", "coh", ...).  Each
 * trace line is prefixed with the simulated time of the issuing component.
 */
class Trace
{
  public:
    /** Enable tracing for @p component ("all" enables everything). */
    static void enable(const std::string &component);

    /** Disable all tracing. */
    static void disableAll();

    /** True if @p component tracing is on. */
    static bool enabled(const std::string &component);

    /**
     * True if *any* component tracing is on.  A single global load, so
     * hot paths can gate the (allocating) argument evaluation of a
     * Trace::log call without a per-call set lookup.
     */
    static bool anyEnabled() { return _any; }

    /** Emit one trace line if @p component is enabled. */
    static void log(Tick now, const std::string &component, const char *fmt, ...)
        __attribute__((format(printf, 3, 4)));

  private:
    // Written only during single-threaded setup (enable/disableAll).
    static bool _any; // tglint: shard(shared-guarded)
};

} // namespace tg

#endif // TELEGRAPHOS_SIM_LOG_HPP

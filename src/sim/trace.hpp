/**
 * @file
 * Deterministic packet-lifecycle tracer (DESIGN.md section 8).
 *
 * The paper's evidence for its latency claims is a logic-analyzer
 * timeline: section 3.2 accounts for every nanosecond of the 0.70 us
 * remote write and the 7.2 us remote read.  The tracer is the simulator's
 * substitute for that instrument.  When enabled it records a timestamped
 * span event at every boundary a packet (or CPU-issued remote operation)
 * crosses:
 *
 *   CPU issue -> TurboChannel grant -> HIB launch -> link serialization
 *   -> switch forward -> remote HIB handle -> ack/completion
 *   (plus fence register/wake pairs)
 *
 * keyed by a monotonic operation id that rides in Packet::traceId and is
 * copied into replies/acks, so one id covers the full request/response
 * lifecycle.  From the raw events the tracer derives
 *
 *  - a per-operation latency *breakdown* table: for every op kind the
 *    mean time spent between consecutive boundaries; components sum to
 *    the mean end-to-end lifecycle by construction, and
 *  - a Chrome trace_event JSON export for visual timelines
 *    (chrome://tracing or https://ui.perfetto.dev).
 *
 * Overhead contract: tracing is disabled by default; every record() call
 * is a single branch on the fast path and performs no heap allocation and
 * no observable side effect while disabled, so the audit trace hash of a
 * run is identical with the tracer compiled in, enabled or not.
 */

#ifndef TELEGRAPHOS_SIM_TRACE_HPP
#define TELEGRAPHOS_SIM_TRACE_HPP

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace tg::trace {

/** Boundary a traced operation crossed (chronological pipeline order). */
enum class Span : std::uint8_t
{
    CpuIssue,   ///< CPU issued the remote operation
    TcGrant,    ///< TurboChannel granted the transaction carrying it
    HibLaunch,  ///< HIB latched the packet into its egress path
    LinkTx,     ///< link started serializing the packet (aux = ser ticks)
    LinkRx,     ///< packet landed at the downstream end of a link
    SwitchFwd,  ///< switch forwarded the packet to an output queue
    HibHandle,  ///< a HIB consumed the packet from its ingress FIFO
    Completion, ///< the operation's waiter was released (ack/reply/data)
    FenceStart, ///< a fence registered against the outstanding counter
    FenceWake,  ///< the fence drained and its waiter resumed
};

/** Short mnemonic for a span point. */
const char *spanName(Span s);

/** Kind of traced operation (used to group breakdown rows). */
enum class OpKind : std::uint8_t
{
    RemoteWrite,
    RemoteRead,
    RemoteAtomic,
    RemoteCopy,
    Fence,
    Coherence,
    Software,
    Other,
};

/** Short mnemonic for an op kind. */
const char *opKindName(OpKind k);

/** One recorded boundary crossing. */
struct TraceEvent
{
    std::uint64_t id;   ///< operation id (Packet::traceId), monotonic
    Span span;          ///< which boundary
    std::uint16_t comp; ///< registered component that recorded it
    Tick tick;          ///< when
    std::uint64_t aux;  ///< span-specific payload (LinkTx: ser ticks)
};

/** One component row of an operation-kind breakdown. */
struct BreakdownRow
{
    Span span;          ///< boundary this component's time ends at
    std::uint64_t count; ///< boundary crossings aggregated into the row
    double meanTicks;   ///< mean per-operation contribution
};

/** Latency decomposition of one operation kind. */
struct OpBreakdown
{
    OpKind kind;
    std::uint64_t ops;  ///< operations with >= 2 recorded boundaries
    double totalTicks;  ///< mean first->last lifetime; == sum of rows
    double meanHops;    ///< mean switch traversals per operation
    std::vector<BreakdownRow> rows;

    /** Sum of the component rows (equals totalTicks by construction;
     *  exposed so callers can assert the invariant). */
    double rowSumTicks() const;
};

/** Full breakdown table over every traced operation kind. */
struct Breakdown
{
    std::vector<OpBreakdown> ops;

    /** Breakdown of @p kind (nullptr when no ops of that kind traced). */
    const OpBreakdown *of(OpKind kind) const;

    /** Paper-style table ("where each ns goes"), one block per kind. */
    void print(std::ostream &os) const;

    /** Machine-readable form ({"schema":"tg-breakdown-v1", ...}). */
    std::string toJson() const;
};

/**
 * The recorder.  One per System; components register themselves once at
 * construction and call record() at packet boundaries.  All methods are
 * no-ops (without allocation) while disabled.
 */
class Tracer
{
  public:
    /** True when events are being recorded. */
    bool enabled() const { return _enabled; }

    /** Switch recording on/off (Config::tracePackets sets the default). */
    void setEnabled(bool on) { _enabled = on; }

    /**
     * Register a recording component (a HIB, link, switch, bus, CPU).
     * Called once per component at construction time, never on the
     * packet path.  @return the component's id for record().
     */
    std::uint16_t registerComponent(const std::string &name);

    /** Names of all registered components, indexed by component id. */
    const std::vector<std::string> &components() const { return _comps; }

    /**
     * Allocate a fresh operation id of @p kind (0 while disabled: the
     * null id that record() ignores).
     */
    std::uint64_t beginOp(OpKind kind);

    /** Kind of operation @p id (Other when unknown). */
    OpKind kindOf(std::uint64_t id) const;

    /** Record one boundary crossing.  Constant-time branch when the
     *  tracer is disabled or @p id is the null id. */
    void
    record(std::uint64_t id, Span sp, Tick t, std::uint16_t comp,
           std::uint64_t aux = 0)
    {
        if (!_enabled || id == 0)
            return;
        _events.push_back(TraceEvent{id, sp, comp, t, aux});
    }

    /** All recorded events in recording (= chronological) order. */
    const std::vector<TraceEvent> &events() const { return _events; }

    /** Operations begun so far. */
    std::uint64_t opsBegun() const { return _nextId - 1; }

    /** Derive the per-operation-kind latency breakdown table. */
    Breakdown breakdown() const;

    /**
     * First->last boundary lifetime of every completed (>= 2 boundaries)
     * operation of @p kind, sorted ascending — ready for percentile
     * extraction (bench_n1_scaling's p50/p99 latency columns).
     */
    std::vector<Tick> opLifetimes(OpKind kind) const;

    /** Write a Chrome trace_event JSON document of the whole recording. */
    void writeChromeTrace(std::ostream &os) const;

    /** Drop recorded events and op ids (components stay registered). */
    void reset();

  private:
    bool _enabled = false;
    std::uint64_t _nextId = 1;
    std::vector<TraceEvent> _events;
    std::map<std::uint64_t, OpKind> _opKind;
    std::vector<std::string> _comps;
};

} // namespace tg::trace

#endif // TELEGRAPHOS_SIM_TRACE_HPP

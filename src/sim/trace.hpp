/**
 * @file
 * Deterministic packet-lifecycle tracer (DESIGN.md sections 8 and 14.4).
 *
 * The paper's evidence for its latency claims is a logic-analyzer
 * timeline: section 3.2 accounts for every nanosecond of the 0.70 us
 * remote write and the 7.2 us remote read.  The tracer is the simulator's
 * substitute for that instrument.  When enabled it records a timestamped
 * span event at every boundary a packet (or CPU-issued remote operation)
 * crosses:
 *
 *   CPU issue -> TurboChannel grant -> HIB launch -> link serialization
 *   -> switch forward -> remote HIB handle -> ack/completion
 *   (plus fence register/wake pairs)
 *
 * keyed by a monotonic operation id that rides in Packet::traceId and is
 * copied into replies/acks, so one id covers the full request/response
 * lifecycle.  From the recording the tracer derives
 *
 *  - a per-operation latency *breakdown* table: for every op kind the
 *    mean time spent between consecutive boundaries; components sum to
 *    the mean end-to-end lifecycle by construction, and
 *  - a Chrome trace_event JSON export for visual timelines
 *    (chrome://tracing or https://ui.perfetto.dev).
 *
 * Scale contract (section 14.4): the tracer's memory is *bounded* no
 * matter how long the run or how many nodes trace into it.  Breakdown
 * aggregates stream into fixed (kind, span) cells as events arrive; open
 * operations live in a capped table with deterministic oldest-id
 * eviction; per-kind lifetimes keep an exact sample set up to a cap and
 * spill into a log2-bucket sketch; and the raw-event window retains only
 * the most recent events for the Chrome export.  approxBytes() reports
 * the footprint so tests can assert the bound.
 *
 * Sampling contract: setSampleShift(s) records 1 in 2^s operations,
 * chosen by a splitmix64 hash of the operation id — a pure function of
 * the id, so the choice is stable across seeds, shard counts and
 * machines.  beginOp() consumes — and returns — an id whether or not
 * the op is sampled (numbering is identical with sampling on and off,
 * and downstream layers see a real id either way), while record()
 * re-derives the sampling decision from the id and drops events for
 * unsampled ops before touching any tracer state.
 *
 * Overhead contract: tracing is disabled by default; every record() call
 * is a single branch on the fast path and performs no heap allocation and
 * no observable side effect while disabled, so the audit trace hash of a
 * run is identical with the tracer compiled in, enabled or not.
 */

#ifndef TELEGRAPHOS_SIM_TRACE_HPP
#define TELEGRAPHOS_SIM_TRACE_HPP

#include <array>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace tg::trace {

/** Boundary a traced operation crossed (chronological pipeline order). */
enum class Span : std::uint8_t
{
    CpuIssue,   ///< CPU issued the remote operation
    TcGrant,    ///< TurboChannel granted the transaction carrying it
    HibLaunch,  ///< HIB latched the packet into its egress path
    LinkTx,     ///< link started serializing the packet (aux = ser ticks)
    LinkRx,     ///< packet landed at the downstream end of a link
    SwitchFwd,  ///< switch forwarded the packet to an output queue
    HibHandle,  ///< a HIB consumed the packet from its ingress FIFO
    Completion, ///< the operation's waiter was released (ack/reply/data)
    FenceStart, ///< a fence registered against the outstanding counter
    FenceWake,  ///< the fence drained and its waiter resumed
};

/** Number of Span enumerators (sizes the streaming aggregate cells). */
inline constexpr std::size_t kNumSpans = 10;

/** Short mnemonic for a span point. */
const char *spanName(Span s);

/** Kind of traced operation (used to group breakdown rows). */
enum class OpKind : std::uint8_t
{
    RemoteWrite,
    RemoteRead,
    RemoteAtomic,
    RemoteCopy,
    Fence,
    Coherence,
    Software,
    CollBarrier,  ///< NIC-resident barrier (hib::CollEngine)
    CollBcast,    ///< NIC-resident broadcast
    CollReduce,   ///< NIC-resident reduce / all-reduce
    Other,
};

/** Number of OpKind enumerators (sizes the streaming aggregates). */
inline constexpr std::size_t kNumKinds = 11;

/** Short mnemonic for an op kind. */
const char *opKindName(OpKind k);

/**
 * splitmix64 finalizer: the sampling hash.  A pure function of the
 * operation id — no seed, no global state — so the sampled subset is
 * identical across runs, seeds and shard counts.
 */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** One recorded boundary crossing. */
struct TraceEvent
{
    std::uint64_t id;   ///< operation id (Packet::traceId), monotonic
    Span span;          ///< which boundary
    std::uint16_t comp; ///< registered component that recorded it
    Tick tick;          ///< when
    std::uint64_t aux;  ///< span-specific payload (LinkTx: ser ticks)
};

/** One component row of an operation-kind breakdown. */
struct BreakdownRow
{
    Span span;          ///< boundary this component's time ends at
    std::uint64_t count; ///< boundary crossings aggregated into the row
    double meanTicks;   ///< mean per-operation contribution
};

/** Latency decomposition of one operation kind. */
struct OpBreakdown
{
    OpKind kind;
    std::uint64_t ops;  ///< operations with >= 2 recorded boundaries
    double totalTicks;  ///< mean first->last lifetime; == sum of rows
    double meanHops;    ///< mean switch traversals per operation
    std::vector<BreakdownRow> rows;

    /** Sum of the component rows (equals totalTicks by construction;
     *  exposed so callers can assert the invariant). */
    double rowSumTicks() const;
};

/** Full breakdown table over every traced operation kind. */
struct Breakdown
{
    std::vector<OpBreakdown> ops;

    /** Breakdown of @p kind (nullptr when no ops of that kind traced). */
    const OpBreakdown *of(OpKind kind) const;

    /** Paper-style table ("where each ns goes"), one block per kind. */
    void print(std::ostream &os) const;

    /** Machine-readable form ({"schema":"tg-breakdown-v1", ...}). */
    std::string toJson() const;
};

/**
 * The recorder.  One per System; components register themselves once at
 * construction and call record() at packet boundaries.  All methods are
 * no-ops (without allocation) while disabled.
 */
class Tracer
{
  public:
    /** True when events are being recorded. */
    bool enabled() const { return _enabled; }

    /** Switch recording on/off (Config::tracePackets sets the default). */
    void setEnabled(bool on) { _enabled = on; }

    /**
     * Record 1 in 2^shift operations (0 = every op).  The subset is a
     * pure hash of the op id (mix64), so it is identical across seeds
     * and shard counts; beginOp() still consumes an id for unsampled
     * ops, keeping the numbering independent of the shift.
     */
    void setSampleShift(std::uint32_t shift) { _sampleShift = shift; }
    std::uint32_t sampleShift() const { return _sampleShift; }

    /** True when op @p id is in the sampled subset for @p shift. */
    static bool
    sampled(std::uint64_t id, std::uint32_t shift)
    {
        return shift == 0 ||
               (mix64(id) & ((std::uint64_t(1) << shift) - 1)) == 0;
    }

    /**
     * Register a recording component (a HIB, link, switch, bus, CPU).
     * Called once per component at construction time, never on the
     * packet path.  @return the component's id for record().
     */
    std::uint16_t registerComponent(const std::string &name);

    /** Names of all registered components, indexed by component id. */
    const std::vector<std::string> &components() const { return _comps; }

    /**
     * Allocate a fresh operation id of @p kind.  Returns the null id (0,
     * which record() ignores) while disabled.  The id counter advances —
     * and the real id is returned — for sampled and unsampled ops alike,
     * so numbering is a pure function of the workload; record() drops
     * events for ids outside the sampled subset.
     */
    std::uint64_t beginOp(OpKind kind);

    /** Kind of operation @p id (Other when unknown or already retired). */
    OpKind kindOf(std::uint64_t id) const;

    /** Record one boundary crossing.  Constant-time branch when the
     *  tracer is disabled or @p id is the null id. */
    void
    record(std::uint64_t id, Span sp, Tick t, std::uint16_t comp,
           std::uint64_t aux = 0)
    {
        if (!_enabled || id == 0)
            return;
        if (_sampleShift != 0 && !sampled(id, _sampleShift))
            return;
        recordImpl(id, sp, t, comp, aux);
    }

    /** Retained raw-event window, in recording (= chronological) order.
     *  Holds every event until retainedEventCap() is reached, then the
     *  most recent ones (aggregates keep streaming regardless). */
    const std::vector<TraceEvent> &events() const { return _events; }

    /** Events recorded over the run, including any beyond the window. */
    std::uint64_t recordedEvents() const { return _recorded; }

    /** Events dropped from the raw window to respect the cap. */
    std::uint64_t droppedEvents() const { return _droppedWindow; }

    /** Open operations force-retired to respect the open-op cap. */
    std::uint64_t evictedOps() const { return _evictedOps; }

    /** Operations begun so far. */
    std::uint64_t opsBegun() const { return _nextId - 1; }

    /** Derive the per-operation-kind latency breakdown table. */
    Breakdown breakdown() const;

    /**
     * First->last boundary lifetime of completed (>= 2 boundaries)
     * operations of @p kind, sorted ascending — ready for percentile
     * extraction (bench_n1_scaling's p50/p99 latency columns).  Exact
     * until the per-kind sample cap; past it, the retained exact sample
     * set (use lifetimeQuantile() for whole-run quantiles).
     */
    std::vector<Tick> opLifetimes(OpKind kind) const;

    /**
     * Lifetime quantile over *every* completed op of @p kind: exact
     * while the sample set fits the cap, log2-bucket interpolation after
     * it spills.  q in [0,1]; 0 when no ops completed.
     */
    double lifetimeQuantile(OpKind kind, double q) const;

    /** Write a Chrome trace_event JSON document of the retained window. */
    void writeChromeTrace(std::ostream &os) const;

    /** Drop recorded events and op ids (components stay registered). */
    void reset();

    // ------------------------------------------------------------------
    // Bounds (defaults hold every existing test/bench workload exactly)
    // ------------------------------------------------------------------

    /** Cap on the raw-event window (oldest half drops when exceeded). */
    void setRetainedEventCap(std::size_t cap);
    std::size_t retainedEventCap() const { return _eventCap; }

    /** Cap on concurrently open (un-retired) operations. */
    void setOpenOpCap(std::size_t cap);
    std::size_t openOpCap() const { return _openCap; }

    /** Cap on exact per-kind lifetime samples before the log2 spill. */
    void setLifetimeSampleCap(std::size_t cap);

    /** Approximate heap footprint in bytes (bounded-memory assertion). */
    std::size_t approxBytes() const;

    // ------------------------------------------------------------------
    // Checkpoint support (DESIGN.md section 14.5)
    // ------------------------------------------------------------------

    /** The next operation id beginOp() would hand out. */
    std::uint64_t nextOpId() const { return _nextId; }

    /** Restore the id counter (checkpoint restore at quiescence, when no
     *  operations are open). */
    void setNextOpId(std::uint64_t id) { _nextId = id; }

  private:
    /** Live state of one sampled, not-yet-retired operation. */
    struct OpState
    {
        OpKind kind;
        Tick first = 0;
        Tick last = 0;
        std::uint32_t boundaries = 0;
        std::uint32_t hops = 0;
    };

    /** Streaming (kind, span) aggregate: total delta ticks + crossings. */
    struct Cell
    {
        std::uint64_t ticks = 0;
        std::uint64_t count = 0;
    };

    /** Finalized per-kind aggregates + bounded lifetime sketch. */
    struct KindAgg
    {
        std::uint64_t ops = 0;  ///< retired ops with >= 2 boundaries
        std::uint64_t hops = 0; ///< their switch traversals
        std::vector<Tick> exact;             ///< lifetimes, up to the cap
        std::array<std::uint64_t, 64> logBuckets{}; ///< spill sketch
        std::uint64_t sketched = 0;          ///< lifetimes in the sketch
    };

    void recordImpl(std::uint64_t id, Span sp, Tick t, std::uint16_t comp,
                    std::uint64_t aux);
    void retire(std::uint64_t id, const OpState &st);
    void pushLifetime(KindAgg &agg, Tick lifetime);

    bool _enabled = false;
    std::uint32_t _sampleShift = 0;
    std::uint64_t _nextId = 1;

    std::vector<TraceEvent> _events; ///< bounded raw window
    std::size_t _eventCap = std::size_t(1) << 18;
    std::uint64_t _recorded = 0;
    std::uint64_t _droppedWindow = 0;

    std::map<std::uint64_t, OpState> _open; ///< ordered: oldest id first
    std::size_t _openCap = std::size_t(1) << 15;
    std::uint64_t _evictedOps = 0;
    std::uint64_t _lateEvents = 0; ///< events for evicted/unknown ops

    Cell _cells[kNumKinds][kNumSpans] = {};
    KindAgg _agg[kNumKinds];
    std::size_t _lifetimeCap = 4096;

    std::vector<std::string> _comps;
};

} // namespace tg::trace

#endif // TELEGRAPHOS_SIM_TRACE_HPP

/**
 * @file
 * xoshiro256** deterministic RNG implementation.
 */

#include "sim/random.hpp"

#include <cmath>

#include "sim/log.hpp"

namespace tg {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

void
Rng::reseed(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : _s)
        s = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(_s[1] * 5, 7) * 9;
    const std::uint64_t t = _s[1] << 17;
    _s[2] ^= _s[0];
    _s[3] ^= _s[1];
    _s[1] ^= _s[2];
    _s[0] ^= _s[3];
    _s[2] ^= t;
    _s[3] = rotl(_s[3], 45);
    return result;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    if (bound == 0)
        panic("Rng::below(0)");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    if (lo > hi)
        panic("Rng::range: lo > hi");
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
}

double
Rng::uniform()
{
    // 53 high-quality bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::exponential(double mean)
{
    double u = uniform();
    // Avoid log(0).
    if (u <= 0.0)
        u = 0x1.0p-53;
    return -mean * std::log(u);
}

Rng
Rng::fork()
{
    Rng child(0);
    // A child seeded from two successive outputs is independent for all
    // practical purposes and remains deterministic.
    std::uint64_t seed = next() ^ rotl(next(), 31);
    child.reseed(seed);
    return child;
}

} // namespace tg

/**
 * @file
 * Global timing and sizing configuration for a simulated Telegraphos
 * cluster.
 *
 * Every latency is in ticks (= nanoseconds).  The defaults are calibrated
 * so that a two-node cluster in the default configuration reproduces the
 * paper's measured numbers (section 3.2): remote write ~0.70 us, remote
 * read ~7.2 us on DEC 3000 model 300 workstations with TurboChannel.
 *
 * The DEC 3000/300 ("Pelican") has a 150 MHz Alpha 21064 and a TurboChannel
 * I/O bus running at 12.5 MHz (80 ns per bus cycle); programmed-I/O
 * transactions on it take several bus cycles plus arbitration, which is why
 * single-word I/O-space accesses are expensive — the effect the paper's
 * latency table shows.
 */

#ifndef TELEGRAPHOS_SIM_CONFIG_HPP
#define TELEGRAPHOS_SIM_CONFIG_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace tg {

/** One scheduled administrative link outage: down in [from, until). */
struct FaultWindow
{
    Tick from = 0;
    Tick until = 0;
    /**
     * Restrict this window to links whose name matches this glob
     * ('*' = any substring, e.g. "*.trunk3to4" downs one directed trunk
     * channel).  Empty: the window follows the spec-wide linkFilter like
     * every other fault.  Validated by FaultSpec::validate().
     */
    std::string target;
};

/**
 * Fault model of the ribbon-cable links plus the link-level reliability
 * protocol that recovers from it (DESIGN.md, "Fault model & reliability
 * protocol").
 *
 * All probabilities are per packet transmission on one link hop, drawn
 * from a per-link RNG that is a pure function of Config::seed and the
 * link name — fault runs replay bit-identically.  The default spec is
 * inert: enabled() is false and every link uses the original zero-cost
 * fast path, preserving the paper's latency calibration exactly.
 */
struct FaultSpec
{
    /** Probability a transmission arrives with a flipped payload bit
     *  (detected by the receiver's CRC check). */
    double bitErrorRate = 0;
    /** Probability a transmission vanishes on the wire. */
    double dropRate = 0;
    /** Probability a transmission is delivered twice. */
    double duplicateRate = 0;
    /** Scheduled link-down/up windows (administrative outages). */
    std::vector<FaultWindow> downWindows;
    /** Restrict faults to links whose name contains this substring
     *  (empty: faults apply to every link).  The reliability protocol
     *  itself engages on every link whenever the spec is enabled. */
    std::string linkFilter;

    // ------------------------------------------------------------------
    // Reliability protocol (go-back-N), active when enabled()
    // ------------------------------------------------------------------
    /** Sender window: max unacknowledged packets per lane. */
    std::uint32_t windowPackets = 16;
    /** Base retransmit timeout before exponential backoff (ticks). */
    Tick retryTimeout = 20'000;
    /** Backoff doublings cap: timeout <= retryTimeout << backoffCap. */
    std::uint32_t backoffCap = 6;
    /** Retransmit budget per packet; one more failure is permanent. */
    std::uint32_t maxRetries = 8;
    /** A link administratively down longer than this fails queued and
     *  unacknowledged traffic immediately (visible-error failover path)
     *  instead of letting it ride out the retry budget. */
    Tick linkDownDeadline = 2'000'000;

    /** True when any fault can ever occur under this spec. */
    bool
    enabled() const
    {
        return bitErrorRate > 0 || dropRate > 0 || duplicateRate > 0 ||
               !downWindows.empty();
    }

    /**
     * Append a down-window restricted to links matching @p pattern
     * ('*' glob).  Chainable; the pattern is checked by validate().
     */
    FaultSpec &downLink(const std::string &pattern, Tick from, Tick until);

    /**
     * Down both directed channels of the trunk between switches @p a and
     * @p b in [from, until): appends "*.trunk<a>to<b>" and
     * "*.trunk<b>to<a>" targeted windows.
     */
    FaultSpec &downTrunk(std::size_t a, std::size_t b, Tick from,
                         Tick until);

    /** Sanity checks; fatal() on nonsense (bad rates, empty or
     *  malformed-pattern windows).  Called by Config::validate. */
    void validate() const;
};

/** Which hardware prototype is modelled (section 2.2.4 of the paper). */
enum class Prototype
{
    /**
     * Telegraphos I: shared data lives in SRAM on the HIB; special
     * operations are launched via a HIB "special mode" inside an
     * uninterruptible PAL-code sequence.  No pending-write counter cache.
     */
    TelegraphosI,
    /**
     * Telegraphos II: shared data lives in (pinned) main memory; special
     * operations use Telegraphos contexts, keys and shadow addressing and
     * survive context switches.  Has the pending-write counter cache.
     */
    TelegraphosII,
};

/** All tunable parameters of the model. */
struct Config
{
    // ------------------------------------------------------------------
    // Prototype selection
    // ------------------------------------------------------------------
    Prototype prototype = Prototype::TelegraphosII;

    // ------------------------------------------------------------------
    // CPU (DEC Alpha 21064 @ 150 MHz)
    // ------------------------------------------------------------------
    /** Cost of one ALU instruction (approx. 1 cycle @ 150 MHz). */
    Tick cpuInstruction = 7;
    /** Extra issue cost of a load/store instruction. */
    Tick cpuMemIssue = 7;
    /** Round-robin scheduling quantum when >1 thread shares a CPU (10 ms). */
    Tick cpuQuantum = 10'000'000;
    /** Cost of a context switch (save/restore, cache pollution). */
    Tick contextSwitch = 20'000;

    // ------------------------------------------------------------------
    // Memory hierarchy
    // ------------------------------------------------------------------
    /** Page size: 8 KB, as on Alpha. */
    std::uint32_t pageBytes = 8192;
    /** Local cache hit latency. */
    Tick cacheHit = 13;
    /** Main-memory access on cache miss. */
    Tick memAccess = 180;
    /** Direct-mapped cache size in bytes (0 disables the cache model). */
    std::uint32_t cacheBytes = 8192;
    /** Cache line size in bytes. */
    std::uint32_t cacheLineBytes = 32;
    /** TLB entries (fully associative, FIFO replacement). */
    std::uint32_t tlbEntries = 32;
    /** TLB miss penalty (PAL-code refill on Alpha). */
    Tick tlbMiss = 300;

    // ------------------------------------------------------------------
    // TurboChannel I/O bus (12.5 MHz => 80 ns per cycle)
    // ------------------------------------------------------------------
    /** Bus cycle time. */
    Tick tcCycle = 80;
    /** Cycles to arbitrate + address for any transaction. */
    std::uint32_t tcSetupCycles = 3;
    /** Cycles to transfer one 32-bit word. */
    std::uint32_t tcWordCycles = 1;
    /** Extra cycles a programmed-I/O *read* holds the bus (request half;
     *  uncached device reads on the Pelican carry long wait states). */
    std::uint32_t tcReadReqCycles = 16;
    /** CPU-side overhead of an uncached I/O-space access (memory barrier
     *  before the TC access, read stall setup). */
    Tick cpuUncachedOverhead = 150;
    /** Entries in the CPU's uncached-store write buffer (Alpha 21064
     *  has a 4-entry write buffer; I/O-space stores complete into it). */
    std::uint32_t writeBufferEntries = 4;
    /** Cost of inserting a store into the write buffer. */
    Tick writeBufferInsert = 20;

    // ------------------------------------------------------------------
    // Host Interface Board (FPGA in prototype I)
    // ------------------------------------------------------------------
    /** HIB processing time to latch + queue an outgoing request. */
    Tick hibLatch = 120;
    /** HIB processing time to service an incoming packet (FPGA-grade
     *  state machines in prototype I). */
    Tick hibService = 300;
    /** Access to HIB-local shared SRAM (Telegraphos I). */
    Tick hibSram = 400;
    /** HIB internal queue beyond the link FIFO ("Telegraphos queueing",
     *  section 3.2): stores are accepted at TurboChannel speed until this
     *  backlog fills, then back-pressure reaches the processor. */
    std::uint32_t hibBacklogPackets = 112;
    /** Atomic-unit read-modify-write time. */
    Tick hibAtomic = 300;
    /** Outgoing/incoming link FIFO capacity in packets (2 Kbit each). */
    std::uint32_t hibFifoPackets = 16;
    /** Multicast list capacity (Table 1: 16 K entries). */
    std::uint32_t multicastEntries = 16 * 1024;
    /** Pages covered by access counters (Table 1: 64 K pages). */
    std::uint32_t counterPages = 64 * 1024;
    /** Width of each page access counter in bits (Table 1: 16+16). */
    std::uint32_t pageCounterBits = 16;
    /** Pending-write counter cache entries (section 2.3.4: 16-32).
     *  0 models Telegraphos I, which omits the cache (section 2.3.4). */
    std::uint32_t counterCacheEntries = 16;
    /** Cost of one counter-cache increment/decrement (two SRAM accesses
     *  plus the add, section 2.3.3 overhead discussion). */
    Tick counterOp = 40;
    /** Number of Telegraphos contexts in the HIB register file. */
    std::uint32_t hibContexts = 64;
    /** Fan-out (max children per node) of the NIC collective engine's
     *  k-ary reduction/multicast trees (DESIGN.md section 15). */
    std::uint32_t collFanout = 4;
    /** Max outstanding remote reads per node (paper footnote: one). */
    std::uint32_t maxOutstandingReads = 1;

    // ------------------------------------------------------------------
    // Telegraphos network (switches + ribbon-cable links)
    // ------------------------------------------------------------------
    /** Link bandwidth in bytes per tick.  Telegraphos I links are
     *  FPGA-clocked parallel ribbon cables: ~35 MB/s per direction, so a
     *  24-byte write packet serializes in ~0.7 us — the paper's
     *  steady-state remote-write rate. */
    double linkBytesPerTick = 0.035;
    /** Link propagation delay (ribbon cable + synchronizers). */
    Tick linkDelay = 100;
    /** Switch cut-through latency per hop (shared-buffer pipeline). */
    Tick switchLatency = 350;
    /** Per-output queue capacity in packets (shared buffer share). */
    std::uint32_t switchQueuePackets = 32;
    /** Packet header size in bytes (routing + type + address). */
    std::uint32_t packetHeaderBytes = 16;

    // ------------------------------------------------------------------
    // Operating system cost model (1995-era DEC OSF/1)
    // ------------------------------------------------------------------
    /** Trap into the kernel and back (null syscall). */
    Tick osTrap = 20'000;
    /** Additional page-fault handling cost (VM lookup, map update). */
    Tick osPageFault = 50'000;
    /** Software cost to send/receive one message through sockets. */
    Tick osMessage = 120'000;
    /** Interrupt dispatch cost (page-counter alarms etc.). */
    Tick osInterrupt = 10'000;
    /** Entering/leaving a PAL-code sequence (Telegraphos I launch path). */
    Tick palCall = 600;

    // ------------------------------------------------------------------
    // Fault injection & link-level reliability
    // ------------------------------------------------------------------
    /** Link fault model; inert by default (perfectly reliable wires). */
    FaultSpec fault;

    // ------------------------------------------------------------------
    // Misc
    // ------------------------------------------------------------------
    /** Seed for all stochastic workload decisions. */
    std::uint64_t seed = 1;

    /** Shards for the parallel fabric engine (net::FabricSim; DESIGN.md
     *  section 13).  Results are shard-count invariant by contract; >1
     *  only changes how the simulation is executed.  The full Cluster
     *  model runs sequentially regardless. */
    std::uint32_t shards = 1;

    /** Record packet-lifecycle spans in the System's Tracer (DESIGN.md
     *  section 8).  Off by default: the disabled tracer adds a single
     *  predicted branch and no allocation to the packet fast path. */
    bool tracePackets = false;

    /** Trace 1 in 2^traceSampleShift operations (0 = every one).  The
     *  sampled subset is a pure hash of the operation id (DESIGN.md
     *  section 14.4), so it is identical across seeds and shard counts
     *  and the simulated schedule never depends on it. */
    std::uint32_t traceSampleShift = 0;

    /**
     * Sanity-check the configuration; fatal() on nonsense (zero page
     * size, zero bandwidth, ...).  Called by System's constructor.
     */
    void validate() const;

    /** Ticks for one TurboChannel transaction moving @p words 32-bit words. */
    Tick
    tcWriteTxn(std::uint32_t words = 1) const
    {
        return tcCycle * (tcSetupCycles + tcWordCycles * words);
    }

    /** Ticks the request half of a programmed-I/O read holds the bus. */
    Tick
    tcReadTxn() const
    {
        return tcCycle * (tcSetupCycles + tcReadReqCycles);
    }
};

} // namespace tg

#endif // TELEGRAPHOS_SIM_CONFIG_HPP

/**
 * @file
 * Statistics collection: scalars, samplers, histograms and a registry.
 *
 * Modelled loosely after the gem5 stats package but radically simplified.
 * Components construct stats with a name and register them with their
 * System's StatRegistry so they can be dumped at the end of a run.
 */

#ifndef TELEGRAPHOS_SIM_STATS_HPP
#define TELEGRAPHOS_SIM_STATS_HPP

#include <algorithm>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace tg {

/** Monotonic counter / gauge. */
class Scalar
{
  public:
    Scalar() = default;

    Scalar &operator++() { ++_value; return *this; }
    Scalar &operator+=(double v) { _value += v; return *this; }
    Scalar &operator-=(double v) { _value -= v; return *this; }
    void set(double v) { _value = v; }
    double value() const { return _value; }
    void reset() { _value = 0; }

  private:
    double _value = 0;
};

/**
 * Running sample statistics: count, mean, min, max, stddev and quantiles.
 *
 * Memory is bounded (DESIGN.md section 14.4): the first sampleCap()
 * samples are retained exactly, so small experiments get exact
 * interpolated quantiles; past the cap, samples spill into a lazily
 * allocated binary-exponent histogram and quantiles interpolate inside
 * the bucket holding the target rank (clamped to the exact running
 * min/max).  Count, mean, min, max and stddev stream exactly forever.
 */
class Sampler
{
  public:
    void sample(double v);

    std::uint64_t count() const { return _n; }
    double mean() const { return _n ? _sum / static_cast<double>(_n) : 0.0; }
    double min() const { return _n ? _min : 0.0; }
    double max() const { return _n ? _max : 0.0; }
    double stddev() const;
    double total() const { return _sum; }

    /**
     * Quantile in [0,1] with linear interpolation between order
     * statistics (rank q*(n-1)); sorts lazily.  Interpolation (rather
     * than nearest-rank rounding) keeps p99 < max for small n and p50
     * unbiased for even n.  Past the sample cap the answer is a
     * histogram interpolation (still deterministic, approximate).
     */
    double quantile(double q) const;

    /** True once samples spilled into the histogram sketch. */
    bool spilled() const { return _sketched != 0; }

    /** Cap on exactly retained samples (existing samples beyond a
     *  lowered cap spill into the sketch). */
    void setSampleCap(std::size_t cap);
    std::size_t sampleCap() const { return _cap; }

    /** Approximate heap footprint (bounded-memory assertions). */
    std::size_t approxBytes() const;

    void reset();

  private:
    static constexpr std::size_t kDefaultCap = 65536;
    /** Sketch buckets: bucket b covers [2^(b-kBias), 2^(b-kBias+1)),
     *  with everything <= 0 in bucket 0. */
    static constexpr int kBuckets = 128;
    static constexpr int kBias = 64;

    static int bucketOf(double v);
    void spill(double v);

    std::uint64_t _n = 0;
    double _sum = 0;
    // Welford running-variance state: immune to the catastrophic
    // cancellation a sum-of-squares accumulator hits when samples sit on
    // a large offset (e.g. tick timestamps ~1e9).
    double _welfordMean = 0, _m2 = 0;
    double _min = 0, _max = 0;
    std::size_t _cap = kDefaultCap;
    std::uint64_t _sketched = 0;
    std::vector<std::uint64_t> _buckets; ///< empty until first spill
    mutable std::vector<double> _samples;
    mutable bool _sorted = true;
};

/** Fixed-width bucketed histogram. */
class Histogram
{
  public:
    /** Buckets of width @p bucket covering [0, bucket*nbuckets); overflow in last. */
    Histogram(double bucket_width = 1.0, std::size_t nbuckets = 64);

    void sample(double v);

    std::uint64_t count() const { return _count; }
    double bucketWidth() const { return _width; }
    const std::vector<std::uint64_t> &buckets() const { return _buckets; }
    void reset();

  private:
    double _width;
    std::vector<std::uint64_t> _buckets;
    std::uint64_t _count = 0;
};

/**
 * Name -> stat registry.  Non-owning: stats live in their components; the
 * registry records (name, printer) pairs for a final textual dump.
 */
class StatRegistry
{
  public:
    void add(const std::string &name, const Scalar *s);
    void add(const std::string &name, const Sampler *s);
    void add(const std::string &name, const Histogram *h);

    /** Dump all registered stats, sorted by name. */
    void dump(std::ostream &os) const;

    /**
     * Dump every registered stat as one JSON object
     * ({"schema":"tg-stats-v1","scalars":{...},"samplers":{...},
     * "histograms":{...}}), sorted by name for byte-stable output.
     */
    void dumpJson(std::ostream &os) const;

    /** Look up a scalar's current value by exact name (0 if absent). */
    double scalar(const std::string &name) const;

  private:
    std::map<std::string, const Scalar *> _scalars;
    std::map<std::string, const Sampler *> _samplers;
    std::map<std::string, const Histogram *> _histograms;
};

} // namespace tg

#endif // TELEGRAPHOS_SIM_STATS_HPP

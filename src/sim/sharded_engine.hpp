/**
 * @file
 * Conservative parallel discrete-event engine (PDES): per-shard event
 * queues on worker threads, synchronized with a barrier-epoch scheme
 * (DESIGN.md section 13).
 *
 * The simulated machine is partitioned into *logical processes* (LPs) —
 * for the fabric simulation one LP is one switch plus its attached
 * nodes — and LPs are mapped onto *shards*, each of which owns a
 * sequential tg::EventQueue and runs on a worker thread.  Time advances
 * in fixed epochs of `epochTicks` = the engine's *lookahead*: the
 * guaranteed minimum latency of any inter-LP channel (for Telegraphos
 * fabrics, the fixed trunk-hop latency).  Within an epoch every shard
 * executes independently; events an LP sends to another LP land in
 * per-shard staging rows and are drained at the epoch barrier in
 * canonical (dstLp, srcLp, send-index) order.
 *
 * Determinism contract (thread-count AND shard-count invariant):
 *
 *  - every inter-LP message travels through the staging path, even when
 *    source and destination LPs share a shard, so an LP's observable
 *    event stream never depends on the partition;
 *  - staged messages are assigned destination-queue sequence numbers in
 *    canonical (dstLp, srcLp, srcIdx) order at the barrier — the
 *    deterministic cross-shard seq-assignment rule;
 *  - each LP owns a TraceHash fed only from its own handlers; the
 *    run-level digest is the canonical merge (audit::mergeTraceHashes)
 *    in LP-index order, so it is byte-identical at 1, 2, 4 or 8 shards
 *    and at any worker-thread count.
 *
 * Worker threads only touch state they own in the current phase
 * (queues and staging rows of their shards, per-LP hashes/ledgers of
 * LPs they host); phase transitions are full barriers, so the engine
 * contains no locks on the event hot path.
 */

#ifndef TELEGRAPHOS_SIM_SHARDED_ENGINE_HPP
#define TELEGRAPHOS_SIM_SHARDED_ENGINE_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/event.hpp"
#include "sim/event_queue.hpp"
#include "sim/invariant.hpp"
#include "sim/types.hpp"

namespace tg {

/** Index of a logical process (partition atom) in a sharded run. */
using LpId = std::uint32_t;

/**
 * Mapping of LPs onto shards.
 *
 * The canonical partitioner is contiguous(): balanced blocks of
 * consecutive LP indices, so "merge per-shard results in shard order"
 * and "merge per-LP results in LP order" agree.  Custom maps are
 * accepted as long as every entry is < shards.
 */
struct ShardPlan
{
    /** Number of shards (>= 1). */
    std::uint32_t shards = 1;
    /** Owning shard of each LP. */
    std::vector<std::uint32_t> lpShard;

    std::size_t lps() const { return lpShard.size(); }

    /**
     * Balanced contiguous partition: @p nLps consecutive LP indices in
     * @p nShards blocks whose sizes differ by at most one.  @p nShards
     * is clamped to [1, nLps].
     */
    static ShardPlan contiguous(std::size_t nLps, std::uint32_t nShards);
};

/**
 * The barrier-epoch PDES engine.
 *
 * Usage: construct with a plan and the lookahead, pre-schedule initial
 * intra-LP events with schedule(), then run().  During execution an LP
 * handler may schedule() further events for its own LP and send()
 * events to any other LP at `when >=` the current epoch end (the
 * lookahead guarantee; audited).  run() may be called once.
 */
class ShardedEngine
{
  public:
    struct Options
    {
        /** Epoch length = conservative lookahead (min inter-LP latency,
         *  in ticks; > 0). */
        Tick epochTicks = 1;
        /** Worker threads; 0 = min(shards, hardware concurrency). */
        std::uint32_t threads = 0;
    };

    ShardedEngine(ShardPlan plan, Options opt);
    ~ShardedEngine();
    ShardedEngine(const ShardedEngine &) = delete;
    ShardedEngine &operator=(const ShardedEngine &) = delete;

    std::uint32_t shards() const { return _plan.shards; }
    std::size_t lps() const { return _plan.lps(); }
    std::uint32_t threadsUsed() const { return _threads; }
    Tick epochTicks() const { return _epochTicks; }

    /**
     * Schedule @p cb at absolute tick @p when on @p lp's shard queue.
     * Intra-LP only: callable during setup or from a handler of the
     * same LP (audited); inter-LP communication must use send().
     */
    void schedule(LpId lp, Tick when, Event cb);

    /**
     * Send an event from @p src to @p dst (different LP, possibly the
     * same shard): staged in the sender's shard row and delivered into
     * @p dst's queue at the next epoch barrier in canonical order.
     * @p when must respect the lookahead (>= current epoch end;
     * audited) — inter-LP channels are what the epoch length models.
     */
    void send(LpId src, LpId dst, Tick when, Event cb);

    /** Per-LP trace-hash accumulator (touch only from @p lp's handlers). */
    audit::TraceHash &lpTrace(LpId lp) { return _lpTrace[lp]; }

    /** Per-LP boundary counters (touch only from @p lp's handlers).
     *  Conservation holds only fabric-wide — a destination LP delivers
     *  packets it never injected — so increment the raw fields here and
     *  leave the audited invariant to mergedLedger(). */
    audit::PacketLedger &lpLedger(LpId lp) { return _lpLedger[lp]; }

    /** Simulated time of @p lp's shard (its queue clock). */
    Tick shardNow(LpId lp) const
    {
        return _queues[_plan.lpShard[lp]]->now();
    }

    /**
     * Run epochs until every queue and staging row drains, or until the
     * earliest pending event lies beyond @p maxTick.  @return events
     * executed.  Single-shot: a second call is a no-op.
     */
    std::uint64_t run(Tick maxTick = kMaxTick);

    // ------------------------------------------------------------------
    // Merged, shard-count-invariant results (valid after run())
    // ------------------------------------------------------------------

    /** Canonical LP-order merge of the per-LP trace hashes. */
    std::uint64_t mergedTraceHash() const
    {
        return audit::mergeTraceHashes(_lpTrace.data(), _lpTrace.size());
    }

    /** Total words folded into per-LP hashes. */
    std::uint64_t mergedTraceLength() const;

    /** Sum of the per-LP conservation ledgers. */
    audit::PacketLedger mergedLedger() const;

    /** Events executed across all shards. */
    std::uint64_t executed() const { return _executed; }

    /** Epoch barriers crossed. */
    std::uint64_t epochs() const { return _epochs; }

    // ------------------------------------------------------------------
    // Self-measurement (wall clock; never feeds simulated state)
    // ------------------------------------------------------------------

    /**
     * Parallel-makespan seconds: sum over epochs of the slowest shard's
     * execute+drain slice.  This is the run time a fully parallel
     * execution converges to; at one shard it equals busySeconds().
     * Aggregate events/s = executed() / criticalPathSeconds() is the
     * scaling metric bench_sim_throughput gates (DESIGN.md section 13.4
     * explains why the metric is makespan-based, not wall-based).
     */
    double criticalPathSeconds() const
    {
        return double(_criticalNs) * 1e-9;
    }

    /** Total busy seconds summed over every shard slice. */
    double busySeconds() const { return double(_busyNs) * 1e-9; }

  private:
    /** One staged inter-LP event. */
    struct CrossMsg
    {
        LpId dst;
        LpId src;
        std::uint64_t srcIdx; ///< per-source-LP send counter (FIFO key)
        Tick when;
        Event cb;
    };

    void runWorker(std::uint32_t worker);
    void executePhase(std::uint32_t worker);
    void drainPhase(std::uint32_t worker);
    void coordinate();
    void arriveBarrier();

    ShardPlan _plan;
    Tick _epochTicks;
    std::uint32_t _threads;

    std::vector<std::unique_ptr<EventQueue>> _queues; ///< one per shard
    std::vector<std::vector<CrossMsg>> _staging; ///< one row per shard
    std::vector<std::vector<CrossMsg>> _drainBuf; ///< one per shard
    std::vector<audit::TraceHash> _lpTrace;
    std::vector<audit::PacketLedger> _lpLedger;
    std::vector<std::uint64_t> _lpSendIdx;
    std::vector<std::uint64_t> _sliceNs; ///< per-shard, current epoch

    // Epoch state: written by the coordinator between barriers, read by
    // every worker in the following phase (the barrier orders both).
    Tick _base = 0;
    Tick _epochEnd = 0;
    Tick _maxTick = kMaxTick;
    bool _done = false;
    bool _ran = false;

    std::uint64_t _executed = 0;
    std::uint64_t _epochs = 0;
    std::uint64_t _criticalNs = 0;
    std::uint64_t _busyNs = 0;

    struct Barrier; ///< pimpl so <barrier> stays out of the header
    std::unique_ptr<Barrier> _barrier;
};

} // namespace tg

#endif // TELEGRAPHOS_SIM_SHARDED_ENGINE_HPP

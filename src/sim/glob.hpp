/**
 * @file
 * Minimal deterministic glob matching for component-name patterns.
 *
 * Fault specifications target links by name (e.g. "*.trunk3to4"); the
 * metacharacters are '*' (any run of characters, including empty) and
 * '?' (exactly one character).  The matcher is iterative with
 * single-star backtracking — linear in practice, no recursion, no
 * allocation — and the validity check rejects patterns that cannot name
 * a component (whitespace, control characters, unsupported
 * metacharacters, redundant "**").
 */

#ifndef TELEGRAPHOS_SIM_GLOB_HPP
#define TELEGRAPHOS_SIM_GLOB_HPP

#include <string>

namespace tg {

/** True when @p name matches @p pattern ('*' = any substring,
 *  '?' = exactly one character). */
inline bool
globMatch(const std::string &pattern, const std::string &name)
{
    std::size_t p = 0, n = 0;
    std::size_t star = std::string::npos; // position of last '*' seen
    std::size_t mark = 0;                 // name position that star ate to
    while (n < name.size()) {
        // The wildcard test must come first: a '*' in the pattern is a
        // metacharacter even when the name holds a literal '*' at the
        // same position ("a*c" has to match "a*bc").
        if (p < pattern.size() && pattern[p] == '*') {
            star = p++;
            mark = n;
        } else if (p < pattern.size() &&
                   (pattern[p] == '?' || pattern[p] == name[n])) {
            ++p;
            ++n;
        } else if (star != std::string::npos) {
            p = star + 1;
            n = ++mark;
        } else {
            return false;
        }
    }
    // Only trailing '*'s may remain: they match the empty tail.  A
    // trailing '?' still demands a character the name no longer has.
    while (p < pattern.size() && pattern[p] == '*')
        ++p;
    return p == pattern.size();
}

/**
 * True when @p pattern is a well-formed component-name glob: non-empty,
 * printable non-space characters only, '*' and '?' the only
 * metacharacters (no '[' / ']'), and no redundant "**" runs
 * (globMatch handles them — as "*" — but in a component-name pattern
 * they are always a typo).
 */
inline bool
globValid(const std::string &pattern)
{
    if (pattern.empty())
        return false;
    char prev = '\0';
    for (char c : pattern) {
        if (c == '*' && prev == '*')
            return false; // "**" is always a typo for "*"
        if (c == '[' || c == ']')
            return false; // unsupported metacharacters
        if (c <= ' ' || c > '~')
            return false; // whitespace / control / non-ASCII
        prev = c;
    }
    return true;
}

} // namespace tg

#endif // TELEGRAPHOS_SIM_GLOB_HPP

/**
 * @file
 * Fundamental simulator types shared by every subsystem.
 *
 * The simulator is a deterministic discrete-event model.  One Tick is one
 * nanosecond of simulated time; every hardware latency in the model is an
 * integral number of nanoseconds (DESIGN.md section 4).
 */

#ifndef TELEGRAPHOS_SIM_TYPES_HPP
#define TELEGRAPHOS_SIM_TYPES_HPP

#include <cstdint>

namespace tg {

/** Simulated time in nanoseconds. */
using Tick = std::uint64_t;

/** Largest representable tick, used as "never". */
constexpr Tick kMaxTick = ~Tick(0);

/** Identifier of a workstation node in the cluster. */
using NodeId = std::uint16_t;

/** Value transported by load/store operations (one 64-bit word). */
using Word = std::uint64_t;

/** A virtual address as seen by application programs. */
using VAddr = std::uint64_t;

/**
 * A global physical address.
 *
 * Layout (DESIGN.md section 4):
 *   bit  63     : shadow flag (Telegraphos II shadow addressing)
 *   bits 62..48 : node id owning the physical location
 *   bits 47..0  : node-local physical offset
 */
using PAddr = std::uint64_t;

/** Ticks per microsecond, for reporting results in the paper's units. */
constexpr double kTicksPerUs = 1000.0;

/** Convert a tick count to microseconds (the unit used in the paper). */
constexpr double
toUs(Tick t)
{
    return static_cast<double>(t) / kTicksPerUs;
}

} // namespace tg

#endif // TELEGRAPHOS_SIM_TYPES_HPP

/**
 * @file
 * Barrier-epoch PDES engine implementation (DESIGN.md section 13).
 *
 * Epoch protocol (three barrier-separated phases):
 *
 *   A. execute — every worker runs its shards' queues through the
 *      epoch window [base, base+L); inter-LP sends append to the
 *      sender shard's staging row (single writer, no reader).
 *   B. drain   — every worker gathers the staged messages destined to
 *      its shards from all rows, sorts them into canonical
 *      (dstLp, srcLp, srcIdx) order and schedules them, which assigns
 *      destination-queue sequence numbers deterministically.
 *   C. settle  — workers clear their own rows (all readers finished at
 *      the phase-B barrier); worker 0 additionally decides the next
 *      epoch base (skipping empty epochs on the fixed grid), checks
 *      termination and accumulates the makespan statistics.
 *
 * Every phase transition is a full barrier, so each piece of state has
 * exactly one writer per phase and cross-phase visibility is given by
 * the barrier's happens-before — the hot path takes no locks.
 */

#include "sim/sharded_engine.hpp"

#include <algorithm>
#include <barrier>
#include <chrono>
#include <thread>

namespace tg {

namespace {

/** Engine + shard the current worker thread is executing (lookahead
 *  and ownership audits); null/npos outside run(). */
thread_local const ShardedEngine *tlsEngine = nullptr;
thread_local std::uint32_t tlsShard = ~std::uint32_t(0);

/** Wall-clock nanoseconds for the engine's self-measurement.  This is
 *  the simulator measuring itself (like the benches do); the value
 *  never feeds simulated state, so determinism is unaffected. */
std::uint64_t
wallNs()
{
    // tglint: allow(banned-api)
    return std::uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now() // tglint: allow(banned-api)
                                 .time_since_epoch())
                             .count());
}

} // namespace

ShardPlan
ShardPlan::contiguous(std::size_t nLps, std::uint32_t nShards)
{
    ShardPlan p;
    if (nLps == 0) {
        p.shards = 1;
        return p;
    }
    if (nShards == 0)
        nShards = 1;
    p.shards = std::uint32_t(std::min<std::size_t>(nShards, nLps));
    p.lpShard.resize(nLps);
    for (std::size_t lp = 0; lp < nLps; ++lp)
        p.lpShard[lp] = std::uint32_t(lp * p.shards / nLps);
    return p;
}

/** Barrier pimpl: a std::barrier when parallel, a no-op when the run
 *  is single-threaded (shards multiplexed on the calling thread). */
struct ShardedEngine::Barrier
{
    explicit Barrier(std::uint32_t n) : count(n), bar(n) {}

    void
    arrive()
    {
        if (count > 1)
            bar.arrive_and_wait();
    }

    std::uint32_t count;
    std::barrier<> bar;
};

ShardedEngine::ShardedEngine(ShardPlan plan, Options opt)
    : _plan(std::move(plan)), _epochTicks(opt.epochTicks)
{
    if (_plan.shards == 0 || _epochTicks == 0)
        panic("ShardedEngine: shards and epochTicks must be >= 1");
    for (std::uint32_t s : _plan.lpShard) {
        if (s >= _plan.shards)
            panic("ShardedEngine: lpShard entry %u out of range (%u shards)",
                  unsigned(s), unsigned(_plan.shards));
    }

    std::uint32_t hw = std::thread::hardware_concurrency();
    if (hw == 0)
        hw = 1;
    _threads = opt.threads == 0 ? std::min(_plan.shards, hw)
                                : std::min(opt.threads, _plan.shards);

    _queues.reserve(_plan.shards);
    for (std::uint32_t s = 0; s < _plan.shards; ++s)
        _queues.push_back(std::make_unique<EventQueue>());
    _staging.resize(_plan.shards);
    _drainBuf.resize(_plan.shards);
    _sliceNs.assign(_plan.shards, 0);
    _lpTrace.resize(_plan.lps());
    _lpLedger.resize(_plan.lps());
    _lpSendIdx.assign(_plan.lps(), 0);
}

ShardedEngine::~ShardedEngine() = default;

void
ShardedEngine::schedule(LpId lp, Tick when, Event cb)
{
    TG_AUDIT(lp < _plan.lps(), "schedule: LP %u out of range", unsigned(lp));
    const std::uint32_t shard = _plan.lpShard[lp];
    TG_AUDIT(tlsEngine != this || tlsShard == shard,
             "schedule: LP %u (shard %u) scheduled from shard %u; "
             "inter-LP events must use send()",
             unsigned(lp), unsigned(shard), unsigned(tlsShard));
    _queues[shard]->scheduleAbs(when, std::move(cb));
}

void
ShardedEngine::send(LpId src, LpId dst, Tick when, Event cb)
{
    TG_AUDIT(src < _plan.lps() && dst < _plan.lps(),
             "send: LP out of range (%u -> %u)", unsigned(src),
             unsigned(dst));
    TG_AUDIT(tlsEngine == this && tlsShard == _plan.lpShard[src],
             "send: source LP %u not executing on the calling shard",
             unsigned(src));
    TG_AUDIT(when >= _epochEnd,
             "send: lookahead violated: when=%llu < epoch end %llu "
             "(inter-LP latency below epochTicks=%llu)",
             (unsigned long long)when, (unsigned long long)_epochEnd,
             (unsigned long long)_epochTicks);
    _staging[tlsShard].push_back(
        CrossMsg{dst, src, _lpSendIdx[src]++, when, std::move(cb)});
}

void
ShardedEngine::executePhase(std::uint32_t worker)
{
    for (std::uint32_t s = worker; s < _plan.shards; s += _threads) {
        tlsShard = s;
        const std::uint64_t t0 = wallNs();
        _queues[s]->runUntil(_epochEnd - 1);
        _sliceNs[s] = wallNs() - t0;
    }
    tlsShard = ~std::uint32_t(0);
}

void
ShardedEngine::drainPhase(std::uint32_t worker)
{
    for (std::uint32_t s = worker; s < _plan.shards; s += _threads) {
        const std::uint64_t t0 = wallNs();
        std::vector<CrossMsg> &buf = _drainBuf[s];
        buf.clear();
        for (std::vector<CrossMsg> &row : _staging) {
            for (CrossMsg &m : row) {
                if (_plan.lpShard[m.dst] == s)
                    buf.push_back(std::move(m));
            }
        }
        std::sort(buf.begin(), buf.end(),
                  [](const CrossMsg &a, const CrossMsg &b) {
                      if (a.dst != b.dst)
                          return a.dst < b.dst;
                      if (a.src != b.src)
                          return a.src < b.src;
                      return a.srcIdx < b.srcIdx;
                  });
        for (CrossMsg &m : buf)
            _queues[s]->scheduleAbs(m.when, std::move(m.cb));
        buf.clear();
        _sliceNs[s] += wallNs() - t0;
    }
}

void
ShardedEngine::coordinate()
{
    std::uint64_t worst = 0;
    for (std::uint32_t s = 0; s < _plan.shards; ++s) {
        worst = std::max(worst, _sliceNs[s]);
        _busyNs += _sliceNs[s];
        _sliceNs[s] = 0;
    }
    _criticalNs += worst;
    ++_epochs;

    Tick next = kMaxTick;
    for (const auto &q : _queues)
        next = std::min(next, q->nextPending());
    if (next == kMaxTick || next > _maxTick) {
        _done = true;
        return;
    }
    // All surviving events satisfy when >= _epochEnd (executed past or
    // lookahead-staged), so the grid-aligned jump never goes backwards.
    _base = next - next % _epochTicks;
    _epochEnd = _base + _epochTicks;
}

void
ShardedEngine::arriveBarrier()
{
    _barrier->arrive();
}

void
ShardedEngine::runWorker(std::uint32_t worker)
{
    tlsEngine = this;
    for (;;) {
        executePhase(worker);
        arriveBarrier(); // A -> B: staging rows complete
        drainPhase(worker);
        arriveBarrier(); // B -> C: every row fully read
        for (std::uint32_t s = worker; s < _plan.shards; s += _threads)
            _staging[s].clear();
        if (worker == 0)
            coordinate();
        arriveBarrier(); // C -> A: next epoch (or done) published
        if (_done)
            break;
    }
    tlsEngine = nullptr;
}

std::uint64_t
ShardedEngine::run(Tick maxTick)
{
    if (_ran)
        return 0;
    _ran = true;
    _maxTick = maxTick;

    Tick first = kMaxTick;
    for (const auto &q : _queues)
        first = std::min(first, q->nextPending());
    if (first == kMaxTick || first > maxTick)
        return 0;
    _base = first - first % _epochTicks;
    _epochEnd = _base + _epochTicks;

    _barrier = std::make_unique<Barrier>(_threads);
    if (_threads == 1) {
        runWorker(0);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(_threads - 1);
        for (std::uint32_t w = 1; w < _threads; ++w)
            pool.emplace_back([this, w] { runWorker(w); });
        runWorker(0);
        for (std::thread &t : pool)
            t.join();
    }

    _executed = 0;
    for (const auto &q : _queues)
        _executed += q->executed();
    return _executed;
}

std::uint64_t
ShardedEngine::mergedTraceLength() const
{
    std::uint64_t n = 0;
    for (const audit::TraceHash &h : _lpTrace)
        n += h.mixed();
    return n;
}

audit::PacketLedger
ShardedEngine::mergedLedger() const
{
    audit::PacketLedger sum;
    for (const audit::PacketLedger &l : _lpLedger) {
        sum.injected += l.injected;
        sum.delivered += l.delivered;
        sum.dropped += l.dropped;
    }
    return sum;
}

} // namespace tg

/**
 * @file
 * Allocation-free closure types for the event engine.
 *
 * The event queue fires tens of millions of closures per wall-clock
 * second; `std::function` heap-allocates every capture larger than its
 * tiny SBO buffer and costs an indirect copy on every queue move.  This
 * header provides `tg::Fn<Sig>`, a move-only small-buffer callable:
 *
 *  - captures up to kInlineBytes live inline in the object, so the hot
 *    schedulers (link pumps, switch forwards, TurboChannel grants, HIB
 *    completions) never touch the allocator;
 *  - larger captures (a lambda holding a whole net::Packet) fall back to
 *    a pooled fixed-size block recycled through a free list, so the
 *    steady-state simulation still performs zero heap allocations per
 *    event once the pool is warm;
 *  - moving a pooled closure steals the block pointer instead of moving
 *    the capture, which keeps ladder-queue bucket moves cheap.
 *
 * `tg::Event` is the `void()` instantiation used by the EventQueue.
 * The pool free list and its counters are thread_local: each shard of a
 * future parallel engine (ROADMAP item 1) gets its own pool, so the
 * fast path stays unsynchronized without ever becoming a cross-shard
 * race.
 */

#ifndef TELEGRAPHOS_SIM_EVENT_HPP
#define TELEGRAPHOS_SIM_EVENT_HPP

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new> // tglint: allow(raw-new)
#include <type_traits>
#include <utility>

#include "sim/log.hpp"

namespace tg {

namespace detail {

/**
 * Free list of fixed-size closure blocks.
 *
 * Closures that overflow a Fn's inline buffer are placed in a
 * kBlockBytes-sized block.  Freed blocks go onto a LIFO free list and
 * are handed back to the next oversized capture, so after warm-up the
 * fallback path allocates nothing.  Oversized requests (> kBlockBytes)
 * bypass the pool entirely; no hot-path capture is that large.
 */
class ClosurePool
{
  public:
    static constexpr std::size_t kBlockBytes = 256;

    static void *
    allocate(std::size_t bytes)
    {
        if (bytes > kBlockBytes) {
            ++_oversize;
            return ::operator new(bytes);
        }
        if (_free != nullptr) {
            Block *b = _free;
            _free = b->next;
            ++_reused;
            return b;
        }
        ++_fresh;
        return ::operator new(kBlockBytes);
    }

    static void
    deallocate(void *p, std::size_t bytes) noexcept
    {
        if (bytes > kBlockBytes) {
            ::operator delete(p);
            return;
        }
        Block *b = static_cast<Block *>(p);
        b->next = _free;
        _free = b;
    }

    /** Fresh kBlockBytes blocks ever requested from the allocator. */
    static std::uint64_t freshBlocks() { return _fresh; }

    /** Blocks served from the free list (zero-allocation path). */
    static std::uint64_t reusedBlocks() { return _reused; }

    /** Requests too large for the pool (plain new/delete). */
    static std::uint64_t oversizeBlocks() { return _oversize; }

  private:
    struct Block
    {
        Block *next;
    };

    // thread_local: one pool per shard, so the unsynchronized fast path
    // can never race across shards of a parallel engine.
    static inline thread_local Block *_free = nullptr;
    static inline thread_local std::uint64_t _fresh = 0;
    static inline thread_local std::uint64_t _reused = 0;
    static inline thread_local std::uint64_t _oversize = 0;
};

} // namespace detail

template <typename Sig, std::size_t InlineBytes = 48>
class Fn;

/**
 * Move-only callable with inline small-buffer storage.
 *
 * Drop-in replacement for `std::function<R(Args...)>` on the simulator's
 * hot paths.  Differences from std::function: move-only (so move-only
 * captures like a latched Packet work), never allocates for captures up
 * to InlineBytes, pooled fallback beyond that, and invoking an empty Fn
 * panics instead of throwing.
 */
template <typename R, typename... Args, std::size_t InlineBytes>
class Fn<R(Args...), InlineBytes>
{
  public:
    static constexpr std::size_t kInlineBytes = InlineBytes;

    Fn() noexcept = default;
    Fn(std::nullptr_t) noexcept {}

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, Fn> &&
                  std::is_invocable_r_v<R, std::decay_t<F> &, Args...>>>
    Fn(F &&f)
    {
        using D = std::decay_t<F>;
        // Preserve emptiness of null function pointers / std::functions:
        // call sites guard with `if (cb)` and expect wrapped nulls to
        // stay false.
        if constexpr (std::is_constructible_v<bool, const D &>) {
            if (!static_cast<bool>(f))
                return;
        }
        emplace<D>(std::forward<F>(f));
    }

    Fn(Fn &&o) noexcept { moveFrom(o); }

    Fn &
    operator=(Fn &&o) noexcept
    {
        if (this != &o) {
            reset();
            moveFrom(o);
        }
        return *this;
    }

    Fn &
    operator=(std::nullptr_t) noexcept
    {
        reset();
        return *this;
    }

    Fn(const Fn &) = delete;
    Fn &operator=(const Fn &) = delete;

    ~Fn() { reset(); }

    explicit operator bool() const noexcept { return _ops != nullptr; }

    /** Const like std::function::operator(): callers routinely invoke
     *  through const captures; the target itself may still mutate. */
    R
    operator()(Args... args) const
    {
        if (_ops == nullptr)
            panic("invoking an empty tg::Fn");
        return _ops->call(const_cast<Fn &>(*this),
                          std::forward<Args>(args)...);
    }

  private:
    struct Ops
    {
        R (*call)(Fn &, Args...);
        /** Move the closure of @p src into raw @p dst; src becomes empty
         *  storage (its _ops is handled by the caller). */
        void (*relocate)(Fn &dst, Fn &src) noexcept;
        void (*destroy)(Fn &) noexcept;
    };

    template <typename D>
    static constexpr bool kFitsInline =
        sizeof(D) <= InlineBytes &&
        alignof(D) <= alignof(std::max_align_t);

    template <typename D>
    D *
    inlineObj() noexcept
    {
        return std::launder(reinterpret_cast<D *>(_buf));
    }

    template <typename D>
    D *
    pooledObj() noexcept
    {
        return static_cast<D *>(_ptr);
    }

    template <typename D>
    struct InlineOps
    {
        static R
        call(Fn &self, Args... args)
        {
            return (*self.template inlineObj<D>())(
                std::forward<Args>(args)...);
        }

        static void
        relocate(Fn &dst, Fn &src) noexcept
        {
            std::construct_at(reinterpret_cast<D *>(dst._buf),
                              std::move(*src.template inlineObj<D>()));
            std::destroy_at(src.template inlineObj<D>());
        }

        static void
        destroy(Fn &self) noexcept
        {
            std::destroy_at(self.template inlineObj<D>());
        }

        static constexpr Ops ops{call, relocate, destroy};
    };

    template <typename D>
    struct PooledOps
    {
        static R
        call(Fn &self, Args... args)
        {
            return (*self.template pooledObj<D>())(
                std::forward<Args>(args)...);
        }

        static void
        relocate(Fn &dst, Fn &src) noexcept
        {
            dst._ptr = src._ptr; // steal the block, no capture move
        }

        static void
        destroy(Fn &self) noexcept
        {
            std::destroy_at(self.template pooledObj<D>());
            detail::ClosurePool::deallocate(self._ptr, sizeof(D));
        }

        static constexpr Ops ops{call, relocate, destroy};
    };

    template <typename D, typename F>
    void
    emplace(F &&f)
    {
        static_assert(std::is_move_constructible_v<D>,
                      "Fn captures must be movable");
        if constexpr (kFitsInline<D>) {
            std::construct_at(reinterpret_cast<D *>(_buf),
                              std::forward<F>(f));
            _ops = &InlineOps<D>::ops;
        } else {
            void *p = detail::ClosurePool::allocate(sizeof(D));
            std::construct_at(static_cast<D *>(p), std::forward<F>(f));
            _ptr = p;
            _ops = &PooledOps<D>::ops;
        }
    }

    void
    moveFrom(Fn &o) noexcept
    {
        _ops = o._ops;
        if (_ops != nullptr) {
            _ops->relocate(*this, o);
            o._ops = nullptr;
        }
    }

    void
    reset() noexcept
    {
        if (_ops != nullptr) {
            _ops->destroy(*this);
            _ops = nullptr;
        }
    }

    const Ops *_ops = nullptr;
    union
    {
        alignas(std::max_align_t) std::byte _buf[InlineBytes];
        void *_ptr;
    };
};

/** The event closure fired by the EventQueue. */
using Event = Fn<void()>;

} // namespace tg

#endif // TELEGRAPHOS_SIM_EVENT_HPP

/**
 * @file
 * SimObject base class plumbing.
 */

#include "sim/sim_object.hpp"

#include <utility>

namespace tg {

SimObject::SimObject(System &sys, std::string name)
    : _sys(sys), _name(std::move(name))
{
}

void
SimObject::schedule(Tick delta, EventQueue::Callback cb)
{
    _sys.events().schedule(delta, std::move(cb));
}

} // namespace tg

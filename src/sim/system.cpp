#include "sim/system.hpp"

#include "sim/log.hpp"

namespace tg {

void
Config::validate() const
{
    if (pageBytes == 0 || (pageBytes & (pageBytes - 1)) != 0)
        fatal("pageBytes must be a power of two (got %u)", pageBytes);
    if (cacheLineBytes == 0 || pageBytes % cacheLineBytes != 0)
        fatal("cacheLineBytes must divide pageBytes");
    if (linkBytesPerTick <= 0)
        fatal("linkBytesPerTick must be positive");
    if (tcCycle == 0)
        fatal("tcCycle must be positive");
    if (hibFifoPackets == 0)
        fatal("hibFifoPackets must be >= 1");
    if (switchQueuePackets == 0)
        fatal("switchQueuePackets must be >= 1");
    if (writeBufferEntries == 0)
        fatal("writeBufferEntries must be >= 1");
    if (tlbEntries == 0)
        fatal("tlbEntries must be >= 1");
    if (hibContexts == 0)
        fatal("hibContexts must be >= 1");
}

System::System(const Config &cfg) : _config(cfg), _rng(cfg.seed)
{
    _config.validate();
}

} // namespace tg

/**
 * @file
 * System root object construction and validation.
 */

#include "sim/system.hpp"

#include "net/arena.hpp"
#include "sim/glob.hpp"
#include "sim/log.hpp"

namespace tg {

FaultSpec &
FaultSpec::downLink(const std::string &pattern, Tick from, Tick until)
{
    downWindows.push_back(FaultWindow{from, until, pattern});
    return *this;
}

FaultSpec &
FaultSpec::downTrunk(std::size_t a, std::size_t b, Tick from, Tick until)
{
    downLink("*.trunk" + std::to_string(a) + "to" + std::to_string(b),
             from, until);
    downLink("*.trunk" + std::to_string(b) + "to" + std::to_string(a),
             from, until);
    return *this;
}

void
FaultSpec::validate() const
{
    auto rate = [](const char *what, double p) {
        if (p < 0 || p > 1)
            fatal("fault.%s must be a probability in [0,1] (got %g)", what,
                  p);
    };
    rate("bitErrorRate", bitErrorRate);
    rate("dropRate", dropRate);
    rate("duplicateRate", duplicateRate);
    for (const auto &w : downWindows) {
        if (w.until <= w.from)
            fatal("fault.downWindows: window [%llu, %llu) is empty",
                  (unsigned long long)w.from, (unsigned long long)w.until);
        if (!w.target.empty() && !globValid(w.target))
            fatal("fault.downWindows: malformed target pattern '%s' "
                  "('*'/'?' glob over printable names; no '**', '[')",
                  w.target.c_str());
    }
    if (windowPackets == 0)
        fatal("fault.windowPackets must be >= 1");
    if (retryTimeout == 0)
        fatal("fault.retryTimeout must be positive");
    if (linkDownDeadline == 0)
        fatal("fault.linkDownDeadline must be positive");
}

void
Config::validate() const
{
    if (pageBytes == 0 || (pageBytes & (pageBytes - 1)) != 0)
        fatal("pageBytes must be a power of two (got %u)", pageBytes);
    if (cacheLineBytes == 0 || pageBytes % cacheLineBytes != 0)
        fatal("cacheLineBytes must divide pageBytes");
    if (linkBytesPerTick <= 0)
        fatal("linkBytesPerTick must be positive");
    if (tcCycle == 0)
        fatal("tcCycle must be positive");
    if (hibFifoPackets == 0)
        fatal("hibFifoPackets must be >= 1");
    if (switchQueuePackets == 0)
        fatal("switchQueuePackets must be >= 1");
    if (writeBufferEntries == 0)
        fatal("writeBufferEntries must be >= 1");
    if (tlbEntries == 0)
        fatal("tlbEntries must be >= 1");
    if (hibContexts == 0)
        fatal("hibContexts must be >= 1");
    if (shards == 0)
        fatal("shards must be >= 1");
    fault.validate();
}

System::System(const Config &cfg)
    : _config(cfg), _rng(cfg.seed),
      _arena(std::make_unique<net::PacketArena>())
{
    _config.validate();
    _tracer.setEnabled(cfg.tracePackets);
    _tracer.setSampleShift(cfg.traceSampleShift);
}

System::~System() = default;

} // namespace tg

/**
 * @file
 * Deterministic pseudo-random number generator (xoshiro256**).
 *
 * Every stochastic decision in the simulator draws from a seeded Rng so
 * that runs are exactly reproducible.  Components that need independent
 * streams fork() a child generator.
 */

#ifndef TELEGRAPHOS_SIM_RANDOM_HPP
#define TELEGRAPHOS_SIM_RANDOM_HPP

#include <array>
#include <cstdint>

namespace tg {

/**
 * xoshiro256** generator with splitmix64 seeding.
 *
 * Small, fast and statistically solid; avoids std::mt19937's
 * implementation-defined seeding behaviour across platforms.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x7e1e67a9705ULL) { reseed(seed); }

    /** Re-seed the stream. */
    void reseed(std::uint64_t seed);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) using rejection sampling. */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli trial with probability @p p. */
    bool chance(double p) { return uniform() < p; }

    /** Geometric-ish exponential deviate with mean @p mean (> 0). */
    double exponential(double mean);

    /** Fork an independent child stream (deterministic function of state). */
    Rng fork();

    /** Raw generator state (checkpointing, DESIGN.md section 14.5). */
    std::array<std::uint64_t, 4>
    state() const
    {
        return {_s[0], _s[1], _s[2], _s[3]};
    }

    /** Restore a previously captured state; the stream continues
     *  bit-for-bit from where state() observed it. */
    void
    setState(const std::array<std::uint64_t, 4> &s)
    {
        for (int i = 0; i < 4; ++i)
            _s[i] = s[static_cast<std::size_t>(i)];
    }

  private:
    std::uint64_t _s[4];
};

} // namespace tg

#endif // TELEGRAPHOS_SIM_RANDOM_HPP

/**
 * @file
 * Deterministic event queue implementation.
 */

#include "sim/event_queue.hpp"

#include <utility>

#include "sim/log.hpp"

namespace tg {

void
EventQueue::scheduleAbs(Tick when, Callback cb)
{
    if (when < _now)
        panic("event scheduled in the past: when=%llu now=%llu",
              (unsigned long long)when, (unsigned long long)_now);
    _heap.push(Entry{when, _seq++, std::move(cb)});
}

void
EventQueue::pop_and_fire()
{
    // Move the callback out before popping so the entry can safely
    // schedule further events (which may reallocate the heap).
    Entry e = std::move(const_cast<Entry &>(_heap.top()));
    _heap.pop();
    TG_AUDIT(e.when >= _now,
             "event queue time went backwards: firing %llu at now=%llu",
             (unsigned long long)e.when, (unsigned long long)_now);
    _now = e.when;
    ++_executed;
    _trace.mix(e.when);
    _trace.mix(e.seq);
    e.cb();
}

std::uint64_t
EventQueue::run(std::uint64_t max_events)
{
    std::uint64_t n = 0;
    while (!_heap.empty() && n < max_events) {
        pop_and_fire();
        ++n;
    }
    return n;
}

std::uint64_t
EventQueue::runUntil(Tick limit)
{
    std::uint64_t n = 0;
    while (!_heap.empty() && _heap.top().when <= limit) {
        pop_and_fire();
        ++n;
    }
    if (_now < limit)
        _now = limit;
    return n;
}

} // namespace tg

/**
 * @file
 * Ladder/calendar event queue implementation.
 *
 * Ordering invariant: the ladder never holds an event whose tick lies
 * inside the wheel window.  The window base only moves in spill-guarded
 * steps (advanceWindow), and it moves *before* any callback at the new
 * time runs, so every ladder entry for a tick reaches its bucket before
 * any direct schedule for that tick can append — per-bucket FIFO order
 * is therefore exactly (when, seq) order.
 */

#include "sim/event_queue.hpp"

#include <algorithm>
#include <bit>
#include <utility>

#include "sim/log.hpp"

namespace tg {

void
EventQueue::scheduleAbs(Tick when, Callback cb)
{
    if (when < _now) {
        TG_AUDIT(false, "event scheduled in the past: when=%llu now=%llu",
                 (unsigned long long)when, (unsigned long long)_now);
        when = _now; // audits off: clamp rather than fire out of order
    }
    if (inWheel(when)) {
        pushWheel(when, _seq++, std::move(cb));
    } else {
        _ladder.push_back(LadderEntry{when, _seq++, std::move(cb)});
        std::push_heap(_ladder.begin(), _ladder.end(), FiresLater{});
    }
}

void
EventQueue::pushWheel(Tick when, std::uint64_t seq, Event cb)
{
    const std::size_t idx = when & kWheelMask;
    Bucket &b = _wheel[idx];
    b.seqs.push_back(seq);
    b.cbs.push_back(std::move(cb));
    _occupied[idx / 64] |= std::uint64_t(1) << (idx % 64);
    ++_wheelCount;
}

void
EventQueue::spill()
{
    while (!_ladder.empty() && inWheel(_ladder.front().when)) {
        std::pop_heap(_ladder.begin(), _ladder.end(), FiresLater{});
        LadderEntry e = std::move(_ladder.back());
        _ladder.pop_back();
        pushWheel(e.when, e.seq, std::move(e.cb));
    }
}

void
EventQueue::advanceWindow(Tick base)
{
    // Buckets index by absolute tick (when & mask), so events already in
    // the wheel stay valid across the move; only the containment window
    // shifts, admitting ladder entries that now fall inside it.
    _base = base;
    spill();
}

std::size_t
EventQueue::firstOccupied() const
{
    const std::size_t start = _base & kWheelMask;
    const std::size_t word0 = start / 64;
    const std::uint64_t high =
        _occupied[word0] & (~std::uint64_t(0) << (start % 64));
    if (high != 0)
        return word0 * 64 + std::size_t(std::countr_zero(high));
    for (std::size_t k = 1; k < kBitmapWords; ++k) {
        const std::size_t w = (word0 + k) & (kBitmapWords - 1);
        if (_occupied[w] != 0)
            return w * 64 + std::size_t(std::countr_zero(_occupied[w]));
    }
    const std::uint64_t low =
        _occupied[word0] & ~(~std::uint64_t(0) << (start % 64));
    return word0 * 64 + std::size_t(std::countr_zero(low));
}

Tick
EventQueue::nextWhen() const
{
    // Wheel events lie in [_base, _base + W), ladder events at or beyond
    // _base + W, so a non-empty wheel always holds the earliest event.
    if (_wheelCount != 0) {
        const std::size_t idx = firstOccupied();
        return _base + ((idx - (_base & kWheelMask)) & kWheelMask);
    }
    return _ladder.front().when;
}

void
EventQueue::pop_and_fire()
{
    if (_wheelCount == 0) {
        // Wheel drained: jump the window straight to the next ladder
        // tick instead of sweeping empty buckets one lap at a time.
        advanceWindow(_ladder.front().when);
    }

    const std::size_t idx = firstOccupied();
    const Tick when = _base + ((idx - (_base & kWheelMask)) & kWheelMask);

    // Advance the window *before* firing: callbacks at the new time may
    // schedule into ticks the old window did not cover, and any ladder
    // entries for those ticks (necessarily older seq) must reach their
    // buckets first to keep FIFO order == seq order.
    if (when > _now) {
        _now = when;
        advanceWindow(when);
    }

    Bucket &b = _wheel[idx];
    const std::uint64_t seq = b.seqs[b.head];
    Event cb = std::move(b.cbs[b.head]);
    ++b.head;
    if (b.head == b.cbs.size()) {
        // Fully drained: clear (capacity retained — bucket storage is
        // recycled lap after lap) and drop the occupancy bit before the
        // callback runs, since it may schedule back into this bucket.
        b.seqs.clear();
        b.cbs.clear();
        b.head = 0;
        _occupied[idx / 64] &= ~(std::uint64_t(1) << (idx % 64));
    }
    --_wheelCount;

    ++_executed;
    _trace.mix(when);
    _trace.mix(seq);
    cb();
}

std::uint64_t
EventQueue::run(std::uint64_t max_events)
{
    std::uint64_t n = 0;
    while (!empty() && n < max_events) {
        pop_and_fire();
        ++n;
    }
    return n;
}

std::uint64_t
EventQueue::runUntil(Tick limit)
{
    std::uint64_t n = 0;
    while (!empty() && nextWhen() <= limit) {
        pop_and_fire();
        ++n;
    }
    if (_now < limit) {
        _now = limit;
        advanceWindow(limit);
    }
    return n;
}

} // namespace tg

/**
 * @file
 * panic/fatal/warn/inform and the per-component trace
 * switchboard.
 */

#include "sim/log.hpp"

#include <cstdio>
#include <cstdlib>
#include <set>

namespace tg {

namespace {

void
vreport(const char *tag, const char *fmt, va_list ap)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
}

std::set<std::string> &
traceSet()
{
    // Trace selection is written only during single-threaded setup
    // (CLI parsing), then read-only while the engine runs.
    static std::set<std::string> s; // tglint: shard(shared-guarded)
    return s;
}

bool traceAll = false; // tglint: shard(shared-guarded) setup-time only

} // namespace

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("warn", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("info", fmt, ap);
    va_end(ap);
}

bool Trace::_any = false; // tglint: shard(shared-guarded)

void
Trace::enable(const std::string &component)
{
    if (component == "all")
        traceAll = true;
    else
        traceSet().insert(component);
    _any = true;
}

void
Trace::disableAll()
{
    traceAll = false;
    traceSet().clear();
    _any = false;
}

bool
Trace::enabled(const std::string &component)
{
    return traceAll || traceSet().count(component) > 0;
}

void
Trace::log(Tick now, const std::string &component, const char *fmt, ...)
{
    if (!enabled(component))
        return;
    std::fprintf(stderr, "%12llu: %s: ", (unsigned long long)now,
                 component.c_str());
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "\n");
}

} // namespace tg

/**
 * @file
 * SimObject: common base for every named component in the simulation.
 */

#ifndef TELEGRAPHOS_SIM_SIM_OBJECT_HPP
#define TELEGRAPHOS_SIM_SIM_OBJECT_HPP

#include <string>

#include "sim/log.hpp"
#include "sim/system.hpp"

namespace tg {

/**
 * Base class giving components a hierarchical name and access to the
 * shared System (event queue, config, RNG, stats).
 */
class SimObject
{
  public:
    SimObject(System &sys, std::string name);
    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    const std::string &name() const { return _name; }
    System &system() { return _sys; }
    const Config &config() const { return _sys.config(); }
    Tick now() const { return _sys.now(); }

    /** Schedule @p cb @p delta ticks from now on the shared queue. */
    void schedule(Tick delta, EventQueue::Callback cb);

  protected:
    System &_sys;
    std::string _name;
};

} // namespace tg

#endif // TELEGRAPHOS_SIM_SIM_OBJECT_HPP

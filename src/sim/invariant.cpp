/**
 * @file
 * Audit-layer global state: the TG_AUDIT runtime gate.
 */

#include "sim/invariant.hpp"

namespace tg::audit {

namespace {
bool g_enabled = true;
} // namespace

bool
enabled()
{
    return g_enabled;
}

void
setEnabled(bool on)
{
    g_enabled = on;
}

} // namespace tg::audit

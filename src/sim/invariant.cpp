/**
 * @file
 * Audit-layer global state: the TG_AUDIT runtime gate.
 */

#include "sim/invariant.hpp"

namespace tg::audit {

namespace {
// Flipped only by tests and single-threaded setup, never mid-run.
bool g_enabled = true; // tglint: shard(shared-guarded)
} // namespace

bool
enabled()
{
    return g_enabled;
}

void
setEnabled(bool on)
{
    g_enabled = on;
}

} // namespace tg::audit

/**
 * @file
 * Runtime audit layer: TG_AUDIT-gated invariant checks and the FNV trace
 * hash behind the determinism contract (DESIGN.md section 7).
 *
 * The simulator's whole experimental method rests on two properties:
 *
 *  1. *Determinism* — same configuration + seed => bit-identical run.
 *     TraceHash folds every fired event (and every packet crossing a HIB
 *     boundary) into one 64-bit FNV-1a accumulator, so two runs can be
 *     compared exhaustively by comparing one number.
 *
 *  2. *Conservation* — nothing is silently lost.  PacketLedger counts
 *     packets at the HIB injection/consumption boundaries and at the
 *     reliability layer's permanent-failure exit, maintaining
 *     injected == delivered + dropped + in-flight at every instant.
 *
 * TG_AUDIT(cond, ...) panics when an invariant is violated.  Checks are
 * compiled in by default and gated by a cheap global flag (audit::
 * setEnabled); defining TG_NO_AUDIT compiles them out entirely for
 * maximum-speed sweeps.
 */

#ifndef TELEGRAPHOS_SIM_INVARIANT_HPP
#define TELEGRAPHOS_SIM_INVARIANT_HPP

#include <cstdint>
#include <string>

#include "sim/log.hpp"

namespace tg::audit {

/** True when TG_AUDIT checks fire (default: on). */
bool enabled();

/** Globally enable/disable TG_AUDIT checks (perf sweeps switch off). */
void setEnabled(bool on);

} // namespace tg::audit

/**
 * Assert a simulator invariant: panic with a printf-style message when
 * @p cond is false and auditing is enabled.  Free of side effects when
 * disabled; compiled out entirely under TG_NO_AUDIT.
 */
#ifdef TG_NO_AUDIT
#define TG_AUDIT(cond, ...) ((void)0)
#else
#define TG_AUDIT(cond, ...)                                                  \
    do {                                                                     \
        if (::tg::audit::enabled() && !(cond))                               \
            ::tg::panic(__VA_ARGS__);                                        \
    } while (0)
#endif

namespace tg::audit {

/**
 * FNV-1a 64-bit accumulator over the run's observable history.
 *
 * Mixed inputs: (tick, sequence) of every fired event, plus the
 * end-to-end fields of every packet injected into and consumed from the
 * network.  Equal hashes over two complete runs mean equal traces for
 * every practical purpose; unequal hashes pinpoint divergence.
 */
class TraceHash
{
  public:
    static constexpr std::uint64_t kOffset = 0xcbf29ce484222325ULL;
    static constexpr std::uint64_t kPrime = 0x100000001b3ULL;

    /** Fold one 64-bit word, byte by byte (FNV-1a). */
    void
    mix(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            _h ^= (v >> (i * 8)) & 0xff;
            _h *= kPrime;
        }
        ++_mixed;
    }

    /** Current digest. */
    std::uint64_t value() const { return _h; }

    /** Number of words folded in so far. */
    std::uint64_t mixed() const { return _mixed; }

    void
    reset()
    {
        _h = kOffset;
        _mixed = 0;
    }

    /** Restore a previously observed accumulator state (checkpoint
     *  restore, DESIGN.md section 14.5): subsequent mixes continue the
     *  original stream bit-for-bit. */
    void
    restore(std::uint64_t h, std::uint64_t mixed)
    {
        _h = h;
        _mixed = mixed;
    }

  private:
    std::uint64_t _h = kOffset;
    std::uint64_t _mixed = 0;
};

/**
 * Canonical merge of per-LP trace hashes (DESIGN.md section 13.3).
 *
 * Folds each accumulator's (value, mixed) pair into a fresh FNV-1a
 * stream in index order.  Because each per-LP hash sees only its own
 * LP's history and the fold order is the LP order — never the shard or
 * thread layout — the merged digest is invariant under re-partitioning:
 * byte-identical at any shard count and any worker-thread count.
 */
inline std::uint64_t
mergeTraceHashes(const TraceHash *hashes, std::size_t n)
{
    TraceHash merged;
    for (std::size_t i = 0; i < n; ++i) {
        merged.mix(hashes[i].value());
        merged.mix(hashes[i].mixed());
    }
    return merged.value();
}

/**
 * Cluster-wide packet conservation ledger.
 *
 * Counting boundaries:
 *  - onInjected():  a HIB handed a packet to the network (Hib::inject)
 *  - onDelivered(): a HIB consumed a packet from its ingress FIFO
 *  - onDropped():   the link reliability layer permanently failed it
 *
 * Invariant (checked on every transition while auditing is enabled):
 * delivered + dropped never exceeds injected, i.e. the network never
 * manufactures packets; at quiescence the in-flight population is zero.
 */
struct PacketLedger
{
    std::uint64_t injected = 0;
    std::uint64_t delivered = 0;
    std::uint64_t dropped = 0;

    void onInjected() { ++injected; }

    void
    onDelivered()
    {
        ++delivered;
        TG_AUDIT(delivered + dropped <= injected,
                 "packet conservation violated: delivered=%llu dropped=%llu "
                 "injected=%llu",
                 (unsigned long long)delivered, (unsigned long long)dropped,
                 (unsigned long long)injected);
    }

    void
    onDropped()
    {
        ++dropped;
        TG_AUDIT(delivered + dropped <= injected,
                 "packet conservation violated: delivered=%llu dropped=%llu "
                 "injected=%llu",
                 (unsigned long long)delivered, (unsigned long long)dropped,
                 (unsigned long long)injected);
    }

    /** Packets currently inside the network (queues, wires, backlogs). */
    std::uint64_t inFlight() const { return injected - delivered - dropped; }

    /**
     * Quiescence check: with no event pending, every injected packet must
     * be accounted for.  @return true when conserved; otherwise false
     * with an explanation in @p why (when non-null).
     */
    bool
    quiescent(std::string *why = nullptr) const
    {
        if (inFlight() == 0)
            return true;
        if (why)
            *why = "in-flight packets at quiescence: injected=" +
                   std::to_string(injected) +
                   " delivered=" + std::to_string(delivered) +
                   " dropped=" + std::to_string(dropped);
        return false;
    }
};

} // namespace tg::audit

#endif // TELEGRAPHOS_SIM_INVARIANT_HPP

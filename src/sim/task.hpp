/**
 * @file
 * Lazy coroutine task type used to write simulated programs.
 *
 * Workloads in this reproduction are ordinary C++20 coroutines: they
 * co_await simulated memory operations (which suspend until the modelled
 * hardware completes them) and may co_await sub-tasks (locks, barriers,
 * library routines).  Nested awaits use symmetric transfer so arbitrarily
 * deep call chains cost no stack.
 *
 * Tasks are lazy: nothing runs until the task is awaited or start()ed.
 * A top-level task is start()ed by the Cpu model with a completion
 * callback that fires at final suspension.
 */

#ifndef TELEGRAPHOS_SIM_TASK_HPP
#define TELEGRAPHOS_SIM_TASK_HPP

#include <coroutine>
#include <exception>
#include <utility>

#include "sim/event.hpp"
#include "sim/log.hpp"

namespace tg {

template <typename T>
class Task;

namespace detail {

/** Promise parts independent of the result type. */
class PromiseBase
{
  public:
    std::suspend_always initial_suspend() noexcept { return {}; }

    /**
     * At final suspension either resume the awaiting parent (symmetric
     * transfer) or, for a top-level task, invoke the completion callback.
     */
    struct FinalAwaiter
    {
        bool await_ready() noexcept { return false; }

        template <typename Promise>
        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<Promise> h) noexcept
        {
            PromiseBase &p = h.promise();
            if (p._continuation)
                return p._continuation;
            if (p._onDone) {
                // Move to a local first: the callback may destroy the
                // Task (and with it this promise and _onDone itself).
                Fn<void()> f = std::move(p._onDone);
                f();
            }
            return std::noop_coroutine();
        }

        void await_resume() noexcept {}
    };

    FinalAwaiter final_suspend() noexcept { return {}; }

    void unhandled_exception() { _exception = std::current_exception(); }

    void setContinuation(std::coroutine_handle<> c) { _continuation = c; }
    void setOnDone(Fn<void()> f) { _onDone = std::move(f); }

    void
    rethrowIfFailed()
    {
        if (_exception)
            std::rethrow_exception(_exception);
    }

  private:
    std::coroutine_handle<> _continuation;
    Fn<void()> _onDone;
    std::exception_ptr _exception;
};

} // namespace detail

/**
 * A lazily-started coroutine returning T (or void).
 *
 * Move-only owner of the coroutine frame; destroying a Task destroys the
 * frame (which must be suspended — either never started or finished).
 */
template <typename T = void>
class Task
{
  public:
    class promise_type : public detail::PromiseBase
    {
      public:
        Task
        get_return_object()
        {
            return Task(
                std::coroutine_handle<promise_type>::from_promise(*this));
        }

        void return_value(T v) { _value = std::move(v); }

        T
        take()
        {
            rethrowIfFailed();
            return std::move(_value);
        }

      private:
        T _value{};
    };

    using Handle = std::coroutine_handle<promise_type>;

    Task() = default;
    explicit Task(Handle h) : _h(h) {}
    Task(Task &&o) noexcept : _h(std::exchange(o._h, {})) {}

    Task &
    operator=(Task &&o) noexcept
    {
        if (this != &o) {
            destroy();
            _h = std::exchange(o._h, {});
        }
        return *this;
    }

    ~Task() { destroy(); }

    bool valid() const { return static_cast<bool>(_h); }
    bool done() const { return !_h || _h.done(); }

    /** Start a top-level task; @p on_done fires at final suspension. */
    void
    start(Fn<void()> on_done)
    {
        if (!_h)
            panic("Task::start on empty task");
        _h.promise().setOnDone(std::move(on_done));
        _h.resume();
    }

    /** Result of a finished task (rethrows stored exceptions). */
    T result() { return _h.promise().take(); }

    /** Awaiter: lazily starts the child, resumes parent on completion. */
    auto
    operator co_await() &&
    {
        struct Awaiter
        {
            Handle h;
            bool await_ready() const { return !h || h.done(); }

            std::coroutine_handle<>
            await_suspend(std::coroutine_handle<> parent)
            {
                h.promise().setContinuation(parent);
                return h; // symmetric transfer: start the child now
            }

            T await_resume() { return h.promise().take(); }
        };
        return Awaiter{_h};
    }

  private:
    void
    destroy()
    {
        if (_h) {
            _h.destroy();
            _h = {};
        }
    }

    Handle _h;
};

/** Specialisation for tasks that produce no value. */
template <>
class Task<void>
{
  public:
    class promise_type : public detail::PromiseBase
    {
      public:
        Task
        get_return_object()
        {
            return Task(
                std::coroutine_handle<promise_type>::from_promise(*this));
        }

        void return_void() {}
        void take() { rethrowIfFailed(); }
    };

    using Handle = std::coroutine_handle<promise_type>;

    Task() = default;
    explicit Task(Handle h) : _h(h) {}
    Task(Task &&o) noexcept : _h(std::exchange(o._h, {})) {}

    Task &
    operator=(Task &&o) noexcept
    {
        if (this != &o) {
            destroy();
            _h = std::exchange(o._h, {});
        }
        return *this;
    }

    ~Task() { destroy(); }

    bool valid() const { return static_cast<bool>(_h); }
    bool done() const { return !_h || _h.done(); }

    void
    start(Fn<void()> on_done)
    {
        if (!_h)
            panic("Task::start on empty task");
        _h.promise().setOnDone(std::move(on_done));
        _h.resume();
    }

    void result() { _h.promise().take(); }

    auto
    operator co_await() &&
    {
        struct Awaiter
        {
            Handle h;
            bool await_ready() const { return !h || h.done(); }

            std::coroutine_handle<>
            await_suspend(std::coroutine_handle<> parent)
            {
                h.promise().setContinuation(parent);
                return h;
            }

            void await_resume() { h.promise().take(); }
        };
        return Awaiter{_h};
    }

  private:
    void
    destroy()
    {
        if (_h) {
            _h.destroy();
            _h = {};
        }
    }

    Handle _h;
};

} // namespace tg

#endif // TELEGRAPHOS_SIM_TASK_HPP

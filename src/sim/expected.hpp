/**
 * @file
 * tg::Expected — result-or-error return type for user-facing validation.
 *
 * The simulator distinguishes two failure classes (sim/log.hpp): internal
 * invariant violations (panic/fatal, the model's own bug) and bad *user*
 * input (an impossible topology, a zero-node cluster).  The latter must
 * be reportable to the caller without killing the process — a test
 * driver sweeping configurations, or a host program embedding the
 * simulator, wants to inspect the rejection and move on.
 *
 * Expected<T, E> is a deliberately small value-or-error carrier (no
 * exceptions, no <expected> dependency) used by TopologySpec::validate()
 * and Cluster::build().  ConfigError is the standard error payload.
 */

#ifndef TELEGRAPHOS_SIM_EXPECTED_HPP
#define TELEGRAPHOS_SIM_EXPECTED_HPP

#include <string>
#include <utility>

#include "sim/log.hpp"

namespace tg {

/** Why a user-supplied configuration was rejected. */
struct ConfigError
{
    std::string message;
};

/** Holds either a T (success) or an E (rejection). */
template <typename T, typename E>
class Expected
{
  public:
    Expected(T value) : _value(std::move(value)), _ok(true) {}
    Expected(E error) : _error(std::move(error)), _ok(false) {}

    /** True when a value is present. */
    bool ok() const { return _ok; }
    explicit operator bool() const { return _ok; }

    /** The value; panics when called on an error (check ok() first). */
    T &
    value()
    {
        if (!_ok)
            panic("Expected::value() on an error result");
        return _value;
    }

    const T &
    value() const
    {
        if (!_ok)
            panic("Expected::value() on an error result");
        return _value;
    }

    /** The error; panics when called on a success. */
    const E &
    error() const
    {
        if (_ok)
            panic("Expected::error() on a success result");
        return _error;
    }

    /** Move the value out (for move-only payloads like unique_ptr). */
    T
    take()
    {
        if (!_ok)
            panic("Expected::take() on an error result");
        return std::move(_value);
    }

  private:
    T _value{};
    E _error{};
    bool _ok;
};

/** Specialisation for operations that produce no value. */
template <typename E>
class Expected<void, E>
{
  public:
    Expected() : _ok(true) {}
    Expected(E error) : _error(std::move(error)), _ok(false) {}

    bool ok() const { return _ok; }
    explicit operator bool() const { return _ok; }

    const E &
    error() const
    {
        if (_ok)
            panic("Expected::error() on a success result");
        return _error;
    }

  private:
    E _error{};
    bool _ok;
};

} // namespace tg

#endif // TELEGRAPHOS_SIM_EXPECTED_HPP

/**
 * @file
 * Packet-lifecycle tracer: streaming aggregation, bounded retention,
 * breakdown derivation and JSON exports.
 */

#include "sim/trace.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace tg::trace {

namespace {

/** Deterministic decimal rendering for JSON / table output. */
std::string
fmt(double v)
{
    std::ostringstream os;
    os << std::setprecision(12) << v;
    return os.str();
}

/** JSON-escape a component or kind name (names are plain ASCII). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

/** Index of the log2 bucket holding @p v (bucket b covers [2^b, 2^{b+1})
 *  with 0 in bucket 0). */
std::size_t
log2Bucket(Tick v)
{
    std::size_t b = 0;
    while (v > 1) {
        v >>= 1;
        ++b;
    }
    return b;
}

} // namespace

const char *
spanName(Span s)
{
    switch (s) {
    case Span::CpuIssue: return "cpu_issue";
    case Span::TcGrant: return "tc_grant";
    case Span::HibLaunch: return "hib_launch";
    case Span::LinkTx: return "link_tx";
    case Span::LinkRx: return "link_rx";
    case Span::SwitchFwd: return "switch_fwd";
    case Span::HibHandle: return "hib_handle";
    case Span::Completion: return "completion";
    case Span::FenceStart: return "fence_start";
    case Span::FenceWake: return "fence_wake";
    }
    return "?";
}

const char *
opKindName(OpKind k)
{
    switch (k) {
    case OpKind::RemoteWrite: return "write";
    case OpKind::RemoteRead: return "read";
    case OpKind::RemoteAtomic: return "atomic";
    case OpKind::RemoteCopy: return "copy";
    case OpKind::Fence: return "fence";
    case OpKind::Coherence: return "coherence";
    case OpKind::Software: return "software";
    case OpKind::CollBarrier: return "coll_barrier";
    case OpKind::CollBcast: return "coll_bcast";
    case OpKind::CollReduce: return "coll_reduce";
    case OpKind::Other: return "other";
    }
    return "?";
}

double
OpBreakdown::rowSumTicks() const
{
    double sum = 0;
    for (const auto &r : rows)
        sum += r.meanTicks;
    return sum;
}

const OpBreakdown *
Breakdown::of(OpKind kind) const
{
    for (const auto &op : ops)
        if (op.kind == kind)
            return &op;
    return nullptr;
}

void
Breakdown::print(std::ostream &os) const
{
    for (const auto &op : ops) {
        os << "-- breakdown: " << opKindName(op.kind) << " (" << op.ops
           << " ops, " << std::fixed << std::setprecision(2) << op.meanHops
           << std::defaultfloat << std::setprecision(6)
           << " hops/op) --\n";
        os << "  " << std::left << std::setw(12) << "component"
           << std::right << std::setw(10) << "count" << std::setw(12)
           << "mean(us)" << std::setw(9) << "share" << "\n";
        for (const auto &r : op.rows) {
            double share =
                op.totalTicks > 0 ? 100.0 * r.meanTicks / op.totalTicks : 0.0;
            os << "  " << std::left << std::setw(12) << spanName(r.span)
               << std::right << std::setw(10) << r.count << std::setw(12)
               << std::fixed << std::setprecision(3)
               << r.meanTicks / kTicksPerUs << std::setw(8)
               << std::setprecision(1) << share << "%"
               << std::defaultfloat << std::setprecision(6) << "\n";
        }
        os << "  " << std::left << std::setw(12) << "total" << std::right
           << std::setw(10) << "" << std::setw(12) << std::fixed
           << std::setprecision(3) << op.totalTicks / kTicksPerUs
           << std::defaultfloat << std::setprecision(6) << "\n";
    }
}

std::string
Breakdown::toJson() const
{
    std::ostringstream os;
    os << "{\"schema\":\"tg-breakdown-v1\",\"ops\":[";
    bool firstOp = true;
    for (const auto &op : ops) {
        if (!firstOp)
            os << ",";
        firstOp = false;
        os << "{\"kind\":\"" << opKindName(op.kind) << "\",\"ops\":" << op.ops
           << ",\"total_us\":" << fmt(op.totalTicks / kTicksPerUs)
           << ",\"mean_hops\":" << fmt(op.meanHops) << ",\"components\":[";
        bool firstRow = true;
        for (const auto &r : op.rows) {
            if (!firstRow)
                os << ",";
            firstRow = false;
            os << "{\"span\":\"" << spanName(r.span)
               << "\",\"count\":" << r.count
               << ",\"mean_us\":" << fmt(r.meanTicks / kTicksPerUs) << "}";
        }
        os << "]}";
    }
    os << "]}";
    return os.str();
}

std::uint16_t
Tracer::registerComponent(const std::string &name)
{
    _comps.push_back(name);
    return static_cast<std::uint16_t>(_comps.size() - 1);
}

std::uint64_t
Tracer::beginOp(OpKind kind)
{
    if (!_enabled)
        return 0;
    // The id is consumed whether or not the op is sampled: numbering is
    // a function of the workload alone, never of the sampling shift.
    // Unsampled ops still get their (real) id back — callers tag packets
    // with it so downstream layers know the op already began — but no
    // open-op state is kept and record() drops their events.
    const std::uint64_t id = _nextId++;
    if (!sampled(id, _sampleShift))
        return id;
    if (_open.size() >= _openCap) {
        // Deterministic eviction: the oldest (smallest-id) open op is
        // force-retired into the aggregates.
        auto oldest = _open.begin();
        retire(oldest->first, oldest->second);
        _open.erase(oldest);
        ++_evictedOps;
    }
    _open.emplace(id, OpState{kind, 0, 0, 0, 0});
    return id;
}

OpKind
Tracer::kindOf(std::uint64_t id) const
{
    auto it = _open.find(id);
    return it == _open.end() ? OpKind::Other : it->second.kind;
}

void
Tracer::recordImpl(std::uint64_t id, Span sp, Tick t, std::uint16_t comp,
                   std::uint64_t aux)
{
    ++_recorded;

    // Bounded raw window: drop the oldest half in one move when full.
    // Aggregation below streams regardless, so the breakdown still
    // covers the whole run.
    if (_events.size() >= _eventCap) {
        const std::size_t half = _eventCap / 2 + 1;
        _events.erase(_events.begin(),
                      _events.begin() +
                          static_cast<std::ptrdiff_t>(half));
        _droppedWindow += half;
    }
    _events.push_back(TraceEvent{id, sp, comp, t, aux});

    auto it = _open.find(id);
    if (it == _open.end()) {
        // The op was evicted (or the id never came from beginOp): the
        // event stays in the raw window but no longer aggregates.
        ++_lateEvents;
        return;
    }
    OpState &st = it->second;
    if (st.boundaries == 0) {
        st.first = st.last = t;
        st.boundaries = 1;
    } else {
        Cell &c = _cells[static_cast<std::size_t>(st.kind)]
                        [static_cast<std::size_t>(sp)];
        c.ticks += t - st.last;
        ++c.count;
        st.last = t;
        ++st.boundaries;
    }
    if (sp == Span::SwitchFwd)
        ++st.hops;
}

void
Tracer::pushLifetime(KindAgg &agg, Tick lifetime)
{
    if (agg.exact.size() < _lifetimeCap)
        agg.exact.push_back(lifetime);
    else {
        ++agg.logBuckets[log2Bucket(lifetime)];
        ++agg.sketched;
    }
}

void
Tracer::retire(std::uint64_t id, const OpState &st)
{
    (void)id;
    if (st.boundaries < 2)
        return;
    KindAgg &agg = _agg[static_cast<std::size_t>(st.kind)];
    ++agg.ops;
    agg.hops += st.hops;
    pushLifetime(agg, st.last - st.first);
}

Breakdown
Tracer::breakdown() const
{
    // Open ops with >= 2 boundaries count exactly like retired ones;
    // their span deltas already streamed into the cells at record time.
    std::uint64_t openOps[kNumKinds] = {};
    std::uint64_t openHops[kNumKinds] = {};
    for (const auto &[id, st] : _open) {
        if (st.boundaries < 2)
            continue;
        const auto k = static_cast<std::size_t>(st.kind);
        ++openOps[k];
        openHops[k] += st.hops;
    }

    Breakdown bd;
    for (std::size_t k = 0; k < kNumKinds; ++k) {
        const std::uint64_t ops = _agg[k].ops + openOps[k];
        if (ops == 0)
            continue;
        OpBreakdown op;
        op.kind = static_cast<OpKind>(k);
        op.ops = ops;
        double n = static_cast<double>(ops);
        op.meanHops =
            static_cast<double>(_agg[k].hops + openHops[k]) / n;
        for (std::size_t s = 0; s < kNumSpans; ++s) {
            const Cell &cell = _cells[k][s];
            if (cell.count == 0)
                continue;
            BreakdownRow row;
            row.span = static_cast<Span>(s);
            row.count = cell.count;
            row.meanTicks = static_cast<double>(cell.ticks) / n;
            op.rows.push_back(row);
        }
        // Define the total as the row sum so the decomposition is exact
        // even in floating point (acceptance: components sum to totals).
        op.totalTicks = op.rowSumTicks();
        bd.ops.push_back(op);
    }
    return bd;
}

std::vector<Tick>
Tracer::opLifetimes(OpKind kind) const
{
    const auto k = static_cast<std::size_t>(kind);
    std::vector<Tick> out = _agg[k].exact;
    for (const auto &[id, st] : _open)
        if (st.kind == kind && st.boundaries >= 2)
            out.push_back(st.last - st.first);
    std::sort(out.begin(), out.end());
    return out;
}

double
Tracer::lifetimeQuantile(OpKind kind, double q) const
{
    const auto k = static_cast<std::size_t>(kind);
    const std::vector<Tick> exact = opLifetimes(kind);
    const std::uint64_t sketched = _agg[k].sketched;
    const std::uint64_t total = exact.size() + sketched;
    if (total == 0)
        return 0.0;
    if (!(q > 0.0))
        q = 0.0;
    if (q > 1.0)
        q = 1.0;

    if (sketched == 0) {
        // Exact mode: linear interpolation between order statistics
        // (same convention as Sampler::quantile).
        if (exact.size() == 1 || q == 0.0)
            return static_cast<double>(exact.front());
        if (q >= 1.0)
            return static_cast<double>(exact.back());
        double pos = q * static_cast<double>(exact.size() - 1);
        std::size_t lo = static_cast<std::size_t>(pos);
        double frac = pos - static_cast<double>(lo);
        if (lo + 1 >= exact.size())
            return static_cast<double>(exact[lo]);
        return static_cast<double>(exact[lo]) +
               frac * static_cast<double>(exact[lo + 1] - exact[lo]);
    }

    // Spilled mode: merge the exact samples into a copy of the log2
    // sketch and interpolate inside the bucket holding the target rank.
    std::array<std::uint64_t, 64> buckets = _agg[k].logBuckets;
    for (Tick v : exact)
        ++buckets[log2Bucket(v)];
    const double rank = q * static_cast<double>(total - 1);
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < buckets.size(); ++b) {
        if (buckets[b] == 0)
            continue;
        if (static_cast<double>(seen + buckets[b]) > rank) {
            const double lo = b == 0 ? 0.0
                                     : static_cast<double>(Tick(1) << b);
            const double hi = static_cast<double>(Tick(1) << (b + 1));
            const double within =
                (rank - static_cast<double>(seen)) /
                static_cast<double>(buckets[b]);
            return lo + within * (hi - lo);
        }
        seen += buckets[b];
    }
    return static_cast<double>(Tick(1) << 63);
}

void
Tracer::writeChromeTrace(std::ostream &os) const
{
    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
          "\"args\":{\"name\":\"telegraphos\"}}";

    auto compName = [&](std::uint16_t c) -> std::string {
        return c < _comps.size() ? _comps[c] : "?";
    };

    std::map<std::uint64_t, std::vector<std::size_t>> byOp;
    for (std::size_t i = 0; i < _events.size(); ++i)
        byOp[_events[i].id].push_back(i);

    for (const auto &[id, idxs] : byOp) {
        const char *kind = opKindName(kindOf(id));
        os << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":"
           << id << ",\"args\":{\"name\":\"" << kind << "#" << id << "\"}}";
        // First boundary as an instant event, every later boundary as a
        // complete ("X") event spanning from the previous boundary.
        for (std::size_t i = 0; i < idxs.size(); ++i) {
            const TraceEvent &ev = _events[idxs[i]];
            if (i == 0) {
                os << ",\n{\"name\":\"" << spanName(ev.span)
                   << "\",\"cat\":\"" << kind
                   << "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":"
                   << fmt(static_cast<double>(ev.tick) / kTicksPerUs)
                   << ",\"pid\":0,\"tid\":" << id << ",\"args\":{\"comp\":\""
                   << jsonEscape(compName(ev.comp)) << "\"}}";
                continue;
            }
            const TraceEvent &prev = _events[idxs[i - 1]];
            os << ",\n{\"name\":\"" << spanName(ev.span) << "\",\"cat\":\""
               << kind << "\",\"ph\":\"X\",\"ts\":"
               << fmt(static_cast<double>(prev.tick) / kTicksPerUs)
               << ",\"dur\":"
               << fmt(static_cast<double>(ev.tick - prev.tick) / kTicksPerUs)
               << ",\"pid\":0,\"tid\":" << id << ",\"args\":{\"comp\":\""
               << jsonEscape(compName(ev.comp)) << "\",\"aux\":" << ev.aux
               << "}}";
        }
    }
    os << "\n]}\n";
}

void
Tracer::setRetainedEventCap(std::size_t cap)
{
    _eventCap = std::max<std::size_t>(cap, 2);
    if (_events.size() > _eventCap) {
        const std::size_t drop = _events.size() - _eventCap;
        _events.erase(_events.begin(),
                      _events.begin() + static_cast<std::ptrdiff_t>(drop));
        _droppedWindow += drop;
        _events.shrink_to_fit();
    }
}

void
Tracer::setOpenOpCap(std::size_t cap)
{
    _openCap = std::max<std::size_t>(cap, 1);
    while (_open.size() > _openCap) {
        auto oldest = _open.begin();
        retire(oldest->first, oldest->second);
        _open.erase(oldest);
        ++_evictedOps;
    }
}

void
Tracer::setLifetimeSampleCap(std::size_t cap)
{
    _lifetimeCap = std::max<std::size_t>(cap, 1);
}

std::size_t
Tracer::approxBytes() const
{
    // Red-black tree nodes carry ~3 pointers + color next to the pair.
    constexpr std::size_t kMapNodeOverhead = 4 * sizeof(void *);
    std::size_t bytes = _events.capacity() * sizeof(TraceEvent);
    bytes += _open.size() *
             (sizeof(std::uint64_t) + sizeof(OpState) + kMapNodeOverhead);
    for (const KindAgg &agg : _agg) {
        bytes += agg.exact.capacity() * sizeof(Tick);
        bytes += sizeof(agg.logBuckets);
    }
    for (const std::string &c : _comps)
        bytes += sizeof(std::string) + c.capacity();
    return bytes;
}

void
Tracer::reset()
{
    _events.clear();
    _events.shrink_to_fit();
    _open.clear();
    for (auto &row : _cells)
        for (auto &cell : row)
            cell = Cell{};
    for (KindAgg &agg : _agg)
        agg = KindAgg{};
    _recorded = _droppedWindow = _evictedOps = _lateEvents = 0;
    _nextId = 1;
}

} // namespace tg::trace

/**
 * @file
 * Packet-lifecycle tracer: breakdown derivation and JSON exports.
 */

#include "sim/trace.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace tg::trace {

namespace {

/** Deterministic decimal rendering for JSON / table output. */
std::string
fmt(double v)
{
    std::ostringstream os;
    os << std::setprecision(12) << v;
    return os.str();
}

/** JSON-escape a component or kind name (names are plain ASCII). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

} // namespace

const char *
spanName(Span s)
{
    switch (s) {
    case Span::CpuIssue: return "cpu_issue";
    case Span::TcGrant: return "tc_grant";
    case Span::HibLaunch: return "hib_launch";
    case Span::LinkTx: return "link_tx";
    case Span::LinkRx: return "link_rx";
    case Span::SwitchFwd: return "switch_fwd";
    case Span::HibHandle: return "hib_handle";
    case Span::Completion: return "completion";
    case Span::FenceStart: return "fence_start";
    case Span::FenceWake: return "fence_wake";
    }
    return "?";
}

const char *
opKindName(OpKind k)
{
    switch (k) {
    case OpKind::RemoteWrite: return "write";
    case OpKind::RemoteRead: return "read";
    case OpKind::RemoteAtomic: return "atomic";
    case OpKind::RemoteCopy: return "copy";
    case OpKind::Fence: return "fence";
    case OpKind::Coherence: return "coherence";
    case OpKind::Software: return "software";
    case OpKind::Other: return "other";
    }
    return "?";
}

double
OpBreakdown::rowSumTicks() const
{
    double sum = 0;
    for (const auto &r : rows)
        sum += r.meanTicks;
    return sum;
}

const OpBreakdown *
Breakdown::of(OpKind kind) const
{
    for (const auto &op : ops)
        if (op.kind == kind)
            return &op;
    return nullptr;
}

void
Breakdown::print(std::ostream &os) const
{
    for (const auto &op : ops) {
        os << "-- breakdown: " << opKindName(op.kind) << " (" << op.ops
           << " ops, " << std::fixed << std::setprecision(2) << op.meanHops
           << std::defaultfloat << std::setprecision(6)
           << " hops/op) --\n";
        os << "  " << std::left << std::setw(12) << "component"
           << std::right << std::setw(10) << "count" << std::setw(12)
           << "mean(us)" << std::setw(9) << "share" << "\n";
        for (const auto &r : op.rows) {
            double share =
                op.totalTicks > 0 ? 100.0 * r.meanTicks / op.totalTicks : 0.0;
            os << "  " << std::left << std::setw(12) << spanName(r.span)
               << std::right << std::setw(10) << r.count << std::setw(12)
               << std::fixed << std::setprecision(3)
               << r.meanTicks / kTicksPerUs << std::setw(8)
               << std::setprecision(1) << share << "%"
               << std::defaultfloat << std::setprecision(6) << "\n";
        }
        os << "  " << std::left << std::setw(12) << "total" << std::right
           << std::setw(10) << "" << std::setw(12) << std::fixed
           << std::setprecision(3) << op.totalTicks / kTicksPerUs
           << std::defaultfloat << std::setprecision(6) << "\n";
    }
}

std::string
Breakdown::toJson() const
{
    std::ostringstream os;
    os << "{\"schema\":\"tg-breakdown-v1\",\"ops\":[";
    bool firstOp = true;
    for (const auto &op : ops) {
        if (!firstOp)
            os << ",";
        firstOp = false;
        os << "{\"kind\":\"" << opKindName(op.kind) << "\",\"ops\":" << op.ops
           << ",\"total_us\":" << fmt(op.totalTicks / kTicksPerUs)
           << ",\"mean_hops\":" << fmt(op.meanHops) << ",\"components\":[";
        bool firstRow = true;
        for (const auto &r : op.rows) {
            if (!firstRow)
                os << ",";
            firstRow = false;
            os << "{\"span\":\"" << spanName(r.span)
               << "\",\"count\":" << r.count
               << ",\"mean_us\":" << fmt(r.meanTicks / kTicksPerUs) << "}";
        }
        os << "]}";
    }
    os << "]}";
    return os.str();
}

std::uint16_t
Tracer::registerComponent(const std::string &name)
{
    _comps.push_back(name);
    return static_cast<std::uint16_t>(_comps.size() - 1);
}

std::uint64_t
Tracer::beginOp(OpKind kind)
{
    if (!_enabled)
        return 0;
    std::uint64_t id = _nextId++;
    _opKind[id] = kind;
    return id;
}

OpKind
Tracer::kindOf(std::uint64_t id) const
{
    auto it = _opKind.find(id);
    return it == _opKind.end() ? OpKind::Other : it->second;
}

Breakdown
Tracer::breakdown() const
{
    // Per-op event indices, in recording (= chronological) order.
    std::map<std::uint64_t, std::vector<std::size_t>> byOp;
    for (std::size_t i = 0; i < _events.size(); ++i)
        byOp[_events[i].id].push_back(i);

    // Per (kind, arriving span): total delta ticks + crossing count.
    struct Cell
    {
        std::uint64_t ticks = 0;
        std::uint64_t count = 0;
    };
    std::map<int, std::map<int, Cell>> cells; // kind -> span -> cell
    std::map<int, std::uint64_t> opCount;     // kind -> ops
    std::map<int, std::uint64_t> hopCount;    // kind -> switch traversals

    for (const auto &[id, idxs] : byOp) {
        if (idxs.size() < 2)
            continue;
        int kind = static_cast<int>(kindOf(id));
        ++opCount[kind];
        for (std::size_t i = 1; i < idxs.size(); ++i) {
            const TraceEvent &prev = _events[idxs[i - 1]];
            const TraceEvent &cur = _events[idxs[i]];
            Cell &c = cells[kind][static_cast<int>(cur.span)];
            c.ticks += cur.tick - prev.tick;
            ++c.count;
        }
        for (std::size_t idx : idxs)
            if (_events[idx].span == Span::SwitchFwd)
                ++hopCount[kind];
    }

    Breakdown bd;
    for (const auto &[kind, spans] : cells) {
        OpBreakdown op;
        op.kind = static_cast<OpKind>(kind);
        op.ops = opCount[kind];
        double n = static_cast<double>(op.ops);
        op.meanHops = static_cast<double>(hopCount[kind]) / n;
        for (const auto &[span, cell] : spans) {
            BreakdownRow row;
            row.span = static_cast<Span>(span);
            row.count = cell.count;
            row.meanTicks = static_cast<double>(cell.ticks) / n;
            op.rows.push_back(row);
        }
        // Define the total as the row sum so the decomposition is exact
        // even in floating point (acceptance: components sum to totals).
        op.totalTicks = op.rowSumTicks();
        bd.ops.push_back(op);
    }
    return bd;
}

std::vector<Tick>
Tracer::opLifetimes(OpKind kind) const
{
    std::map<std::uint64_t, std::pair<Tick, Tick>> range; // id -> first,last
    std::map<std::uint64_t, std::size_t> seen;
    for (const TraceEvent &ev : _events) {
        auto [it, fresh] = range.try_emplace(ev.id, ev.tick, ev.tick);
        if (!fresh)
            it->second.second = ev.tick;
        ++seen[ev.id];
    }
    std::vector<Tick> out;
    for (const auto &[id, fl] : range)
        if (seen[id] >= 2 && kindOf(id) == kind)
            out.push_back(fl.second - fl.first);
    std::sort(out.begin(), out.end());
    return out;
}

void
Tracer::writeChromeTrace(std::ostream &os) const
{
    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
          "\"args\":{\"name\":\"telegraphos\"}}";

    auto compName = [&](std::uint16_t c) -> std::string {
        return c < _comps.size() ? _comps[c] : "?";
    };

    std::map<std::uint64_t, std::vector<std::size_t>> byOp;
    for (std::size_t i = 0; i < _events.size(); ++i)
        byOp[_events[i].id].push_back(i);

    for (const auto &[id, idxs] : byOp) {
        const char *kind = opKindName(kindOf(id));
        os << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":"
           << id << ",\"args\":{\"name\":\"" << kind << "#" << id << "\"}}";
        // First boundary as an instant event, every later boundary as a
        // complete ("X") event spanning from the previous boundary.
        for (std::size_t i = 0; i < idxs.size(); ++i) {
            const TraceEvent &ev = _events[idxs[i]];
            if (i == 0) {
                os << ",\n{\"name\":\"" << spanName(ev.span)
                   << "\",\"cat\":\"" << kind
                   << "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":"
                   << fmt(static_cast<double>(ev.tick) / kTicksPerUs)
                   << ",\"pid\":0,\"tid\":" << id << ",\"args\":{\"comp\":\""
                   << jsonEscape(compName(ev.comp)) << "\"}}";
                continue;
            }
            const TraceEvent &prev = _events[idxs[i - 1]];
            os << ",\n{\"name\":\"" << spanName(ev.span) << "\",\"cat\":\""
               << kind << "\",\"ph\":\"X\",\"ts\":"
               << fmt(static_cast<double>(prev.tick) / kTicksPerUs)
               << ",\"dur\":"
               << fmt(static_cast<double>(ev.tick - prev.tick) / kTicksPerUs)
               << ",\"pid\":0,\"tid\":" << id << ",\"args\":{\"comp\":\""
               << jsonEscape(compName(ev.comp)) << "\",\"aux\":" << ev.aux
               << "}}";
        }
    }
    os << "\n]}\n";
}

void
Tracer::reset()
{
    _events.clear();
    _opKind.clear();
    _nextId = 1;
}

} // namespace tg::trace

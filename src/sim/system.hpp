/**
 * @file
 * System: the root object owning the event queue, configuration, RNG and
 * statistics registry shared by every component of one simulation.
 */

#ifndef TELEGRAPHOS_SIM_SYSTEM_HPP
#define TELEGRAPHOS_SIM_SYSTEM_HPP

#include <memory>
#include <string>

#include "sim/config.hpp"
#include "sim/event_queue.hpp"
#include "sim/invariant.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"
#include "sim/types.hpp"

namespace tg::net {
class PacketArena;
}

namespace tg {

/**
 * One simulation universe.
 *
 * All SimObjects hold a reference to their System; the System outlives
 * them (it is created first and destroyed last by the Cluster).
 */
class System
{
  public:
    explicit System(const Config &cfg);
    ~System();

    EventQueue &events() { return _events; }
    const Config &config() const { return _config; }
    Rng &rng() { return _rng; }
    StatRegistry &stats() { return _stats; }

    /** Packet conservation ledger (audit layer, DESIGN.md section 7). */
    audit::PacketLedger &ledger() { return _ledger; }
    const audit::PacketLedger &ledger() const { return _ledger; }

    /** Packet-lifecycle tracer (DESIGN.md section 8). */
    trace::Tracer &tracer() { return _tracer; }
    const trace::Tracer &tracer() const { return _tracer; }

    /** Pooled in-flight packet storage shared by the whole datapath
     *  (DESIGN.md section 14).  One arena per simulation universe so
     *  handles stay valid across every queue/link/switch boundary. */
    net::PacketArena &arena() { return *_arena; }
    const net::PacketArena &arena() const { return *_arena; }

    Tick now() const { return _events.now(); }

  private:
    Config _config;
    EventQueue _events;
    Rng _rng;
    StatRegistry _stats;
    audit::PacketLedger _ledger;
    trace::Tracer _tracer;
    std::unique_ptr<net::PacketArena> _arena;
};

} // namespace tg

#endif // TELEGRAPHOS_SIM_SYSTEM_HPP

/**
 * @file
 * Deterministic discrete-event queue: two-level ladder/calendar scheduler.
 *
 * Events scheduled for the same tick fire in scheduling order (a
 * monotonically increasing sequence number breaks ties), so a simulation
 * with a fixed seed is bit-for-bit reproducible.
 *
 * Structure (DESIGN.md section 9):
 *
 *  - a *timing wheel* of per-tick FIFO buckets covering the near-term
 *    window [now, now + kWheelTicks): O(1) schedule and pop for the
 *    short link / TurboChannel / HIB delays that dominate the event mix;
 *  - a sorted *overflow ladder* (binary min-heap on (when, seq)) for
 *    far-future events — retransmit timeouts, down-windows, OS costs,
 *    page-sized serializations — spilled into the wheel as the window
 *    advances over them.
 *
 * The exact (when, seq) total order of the original binary-heap engine
 * is preserved, so same-seed trace hashes are byte-identical.  Bucket
 * vectors retain their capacity across drains and closures recycle
 * through the tg::Event pool, so steady-state execution performs zero
 * heap allocations per event.
 */

#ifndef TELEGRAPHOS_SIM_EVENT_QUEUE_HPP
#define TELEGRAPHOS_SIM_EVENT_QUEUE_HPP

#include <array>
#include <cstdint>
#include <vector>

#include "sim/event.hpp"
#include "sim/invariant.hpp"
#include "sim/types.hpp"

namespace tg {

/**
 * The global event queue driving the simulation.
 *
 * Components schedule closures at absolute or relative ticks; run() drains
 * the queue until it is empty or a limit is reached.  There is exactly one
 * EventQueue per System.
 */
class EventQueue
{
  public:
    using Callback = Event;

    /** Width of the near-term timing wheel, in ticks (one bucket each). */
    static constexpr std::size_t kWheelTicks = 4096;

    EventQueue() : _wheel(kWheelTicks) {}
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /** Schedule @p cb at absolute tick @p when (must be >= now()). */
    void scheduleAbs(Tick when, Callback cb);

    /** Schedule @p cb @p delta ticks from now. */
    void schedule(Tick delta, Callback cb) { scheduleAbs(_now + delta, std::move(cb)); }

    /**
     * Run until the queue is empty or @p max_events have fired.
     * @return number of events executed.
     */
    std::uint64_t run(std::uint64_t max_events = ~std::uint64_t(0));

    /**
     * Run until simulated time reaches @p limit (events at exactly @p limit
     * still fire) or the queue drains.
     * @return number of events executed.
     */
    std::uint64_t runUntil(Tick limit);

    /** True when no event is pending. */
    bool empty() const { return _wheelCount == 0 && _ladder.empty(); }

    /** Number of pending events. */
    std::size_t pending() const { return _wheelCount + _ladder.size(); }

    /** Total events executed since construction. */
    std::uint64_t executed() const { return _executed; }

    /** Earliest pending tick, or kMaxTick when the queue is empty.  The
     *  sharded engine's coordinator uses this to skip empty epochs. */
    Tick nextPending() const { return empty() ? kMaxTick : nextWhen(); }

    /**
     * Trace-hash accumulator over the run: every fired event mixes
     * (when, seq); components mix packet fields at the HIB boundaries.
     * Comparing values across two same-seed runs proves/refutes
     * bit-for-bit determinism (DESIGN.md section 7).
     */
    audit::TraceHash &trace() { return _trace; }
    const audit::TraceHash &trace() const { return _trace; }

    /**
     * Restore the clock after a checkpoint (DESIGN.md section 14.5).
     * Only legal while the queue is empty: a quiescent checkpoint never
     * has pending events, so the clock, the tie-break sequence counter
     * and the executed count are the queue's entire surviving state.
     */
    void
    restoreClock(Tick now, std::uint64_t seq, std::uint64_t executed)
    {
        TG_AUDIT(empty(), "restoreClock with %zu pending events",
                 pending());
        _now = _base = now;
        _seq = seq;
        _executed = executed;
    }

  private:
    static constexpr std::size_t kWheelMask = kWheelTicks - 1;
    static constexpr std::size_t kBitmapWords = kWheelTicks / 64;

    /** One wheel slot: same-tick events in FIFO (= seq) order.  The
     *  vector is drained via a head cursor and cleared with capacity
     *  retained, so bucket storage is recycled across laps. */
    struct Bucket
    {
        std::vector<std::uint64_t> seqs;
        std::vector<Event> cbs;
        std::size_t head = 0;
    };

    struct LadderEntry
    {
        Tick when;
        std::uint64_t seq;
        Event cb;
    };

    /** Heap comparator: true when @p a fires after @p b (min on top). */
    struct FiresLater
    {
        bool
        operator()(const LadderEntry &a, const LadderEntry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /** True when @p when lands in the wheel window [base, base+W).
     *  Callers guarantee when >= _base, so the subtraction is safe. */
    bool inWheel(Tick when) const { return when - _base < kWheelTicks; }

    void pushWheel(Tick when, std::uint64_t seq, Event cb);

    /** Move ladder events now inside the wheel window into their buckets
     *  (in (when, seq) order, so bucket FIFO order stays correct). */
    void spill();

    /** Re-anchor the window at @p base (>= _now) and spill. */
    void advanceWindow(Tick base);

    /** Earliest pending tick; queue must be non-empty. */
    Tick nextWhen() const;

    /** Bitmap scan for the first occupied bucket at or after the window
     *  base; the wheel must be non-empty. */
    std::size_t firstOccupied() const;

    void pop_and_fire();

    std::vector<Bucket> _wheel;
    std::array<std::uint64_t, kBitmapWords> _occupied{};
    std::size_t _wheelCount = 0;
    std::vector<LadderEntry> _ladder; // binary min-heap via std::*_heap
    Tick _now = 0;
    Tick _base = 0; ///< wheel window start (== _now between events)
    std::uint64_t _seq = 0;
    std::uint64_t _executed = 0;
    audit::TraceHash _trace;
};

#ifdef TG_REFERENCE_HEAP

/**
 * Reference implementation: the original single binary heap, kept for
 * differential tests only (compile with -DTG_REFERENCE_HEAP).  Pops by
 * value via std::pop_heap — no const_cast of a priority_queue top.
 * Must fire in exactly the same (when, seq) order as EventQueue.
 */
class ReferenceEventQueue
{
  public:
    using Callback = Event;

    ReferenceEventQueue() = default;
    ReferenceEventQueue(const ReferenceEventQueue &) = delete;
    ReferenceEventQueue &operator=(const ReferenceEventQueue &) = delete;

    Tick now() const { return _now; }

    void
    scheduleAbs(Tick when, Callback cb)
    {
        if (when < _now) {
            TG_AUDIT(false, "event scheduled in the past: when=%llu now=%llu",
                     (unsigned long long)when, (unsigned long long)_now);
            when = _now;
        }
        _heap.push_back(Entry{when, _seq++, std::move(cb)});
        std::push_heap(_heap.begin(), _heap.end(), Later{});
    }

    void schedule(Tick delta, Callback cb) { scheduleAbs(_now + delta, std::move(cb)); }

    std::uint64_t
    run(std::uint64_t max_events = ~std::uint64_t(0))
    {
        std::uint64_t n = 0;
        while (!_heap.empty() && n < max_events) {
            pop_and_fire();
            ++n;
        }
        return n;
    }

    std::uint64_t
    runUntil(Tick limit)
    {
        std::uint64_t n = 0;
        while (!_heap.empty() && _heap.front().when <= limit) {
            pop_and_fire();
            ++n;
        }
        if (_now < limit)
            _now = limit;
        return n;
    }

    bool empty() const { return _heap.empty(); }
    std::size_t pending() const { return _heap.size(); }
    std::uint64_t executed() const { return _executed; }

    audit::TraceHash &trace() { return _trace; }
    const audit::TraceHash &trace() const { return _trace; }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Event cb;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    void
    pop_and_fire()
    {
        std::pop_heap(_heap.begin(), _heap.end(), Later{});
        Entry e = std::move(_heap.back());
        _heap.pop_back();
        TG_AUDIT(e.when >= _now,
                 "event queue time went backwards: firing %llu at now=%llu",
                 (unsigned long long)e.when, (unsigned long long)_now);
        _now = e.when;
        ++_executed;
        _trace.mix(e.when);
        _trace.mix(e.seq);
        e.cb();
    }

    std::vector<Entry> _heap;
    Tick _now = 0;
    std::uint64_t _seq = 0;
    std::uint64_t _executed = 0;
    audit::TraceHash _trace;
};

#endif // TG_REFERENCE_HEAP

} // namespace tg

#endif // TELEGRAPHOS_SIM_EVENT_QUEUE_HPP

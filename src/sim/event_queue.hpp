/**
 * @file
 * Deterministic discrete-event queue.
 *
 * Events scheduled for the same tick fire in scheduling order (a
 * monotonically increasing sequence number breaks ties), so a simulation
 * with a fixed seed is bit-for-bit reproducible.
 */

#ifndef TELEGRAPHOS_SIM_EVENT_QUEUE_HPP
#define TELEGRAPHOS_SIM_EVENT_QUEUE_HPP

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/invariant.hpp"
#include "sim/types.hpp"

namespace tg {

/**
 * The global event queue driving the simulation.
 *
 * Components schedule closures at absolute or relative ticks; run() drains
 * the queue until it is empty or a limit is reached.  There is exactly one
 * EventQueue per System.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /** Schedule @p cb at absolute tick @p when (must be >= now()). */
    void scheduleAbs(Tick when, Callback cb);

    /** Schedule @p cb @p delta ticks from now. */
    void schedule(Tick delta, Callback cb) { scheduleAbs(_now + delta, std::move(cb)); }

    /**
     * Run until the queue is empty or @p max_events have fired.
     * @return number of events executed.
     */
    std::uint64_t run(std::uint64_t max_events = ~std::uint64_t(0));

    /**
     * Run until simulated time reaches @p limit (events at exactly @p limit
     * still fire) or the queue drains.
     * @return number of events executed.
     */
    std::uint64_t runUntil(Tick limit);

    /** True when no event is pending. */
    bool empty() const { return _heap.empty(); }

    /** Number of pending events. */
    std::size_t pending() const { return _heap.size(); }

    /** Total events executed since construction. */
    std::uint64_t executed() const { return _executed; }

    /**
     * Trace-hash accumulator over the run: every fired event mixes
     * (when, seq); components mix packet fields at the HIB boundaries.
     * Comparing values across two same-seed runs proves/refutes
     * bit-for-bit determinism (DESIGN.md section 7).
     */
    audit::TraceHash &trace() { return _trace; }
    const audit::TraceHash &trace() const { return _trace; }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    void pop_and_fire();

    std::priority_queue<Entry, std::vector<Entry>, Later> _heap;
    Tick _now = 0;
    std::uint64_t _seq = 0;
    std::uint64_t _executed = 0;
    audit::TraceHash _trace;
};

} // namespace tg

#endif // TELEGRAPHOS_SIM_EVENT_QUEUE_HPP

/**
 * @file
 * Naive eager-update multicast protocol — the strawman of Figure 2.
 *
 * Every writer multicasts its updates directly to all other copies, with
 * no serializing owner.  With a single writer (or synchronized writers)
 * this is the cheapest update scheme; with concurrent writers the copies
 * of a page can permanently diverge because updates are applied in
 * different orders at different nodes (paper section 2.3, Figure 2).
 * Bench F2 demonstrates exactly that divergence.
 */

#ifndef TELEGRAPHOS_COHERENCE_NAIVE_MULTICAST_HPP
#define TELEGRAPHOS_COHERENCE_NAIVE_MULTICAST_HPP

#include "coherence/protocol.hpp"

namespace tg::coherence {

/** Ownerless direct multicast (inconsistent under concurrent writers). */
class NaiveMulticastProtocol : public Protocol
{
  public:
    NaiveMulticastProtocol(System &sys, Fabric &fabric);

    void localWrite(NodeId n, PageEntry &e, PAddr local_addr, Word value,
                    Fn<void()> done) override;

    void remoteWriteAtHome(NodeId home, PageEntry &e,
                           const net::Packet &pkt) override;

    bool handlePacket(NodeId n, const net::Packet &pkt) override;

  private:
    void multicastFrom(NodeId src, PageEntry &e, PAddr home_addr, Word value,
                       bool track);
};

} // namespace tg::coherence

#endif // TELEGRAPHOS_COHERENCE_NAIVE_MULTICAST_HPP

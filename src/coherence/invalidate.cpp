/**
 * @file
 * Page-level invalidation protocol.
 */

#include "coherence/invalidate.hpp"

#include <vector>

#include "hib/hib.hpp"

namespace tg::coherence {

using net::Packet;
using net::PacketType;

InvalidateProtocol::InvalidateProtocol(System &sys, Fabric &fabric)
    : Protocol(sys, "proto.inval", fabric)
{
    _kind = ProtocolKind::Invalidate;
}

void
InvalidateProtocol::localWrite(NodeId n, PageEntry &e, PAddr local_addr,
                               Word value, Fn<void()> done)
{
    applyToCopy(n, e, homeAddrOf(e, n, local_addr), value, n);
    if (e.copies.size() == 1 && e.hasCopy(n)) {
        done(); // already exclusive
        return;
    }

    // Collect the other holders now; the copyset shrinks as acks arrive.
    std::vector<NodeId> others;
    for (const auto &[node, frame] : e.copies) {
        (void)frame;
        if (node != n)
            others.push_back(node);
    }

    const auto key = std::make_pair(n, e.home);
    if (_pending.count(key))
        panic("concurrent invalidation rounds by node %u", unsigned(n));
    _pending[key] = PendingInv{others.size(), std::move(done)};
    ++_invalidations;

    // The write fault traps into the OS, which issues the invalidations.
    // The invalidation carries the writer's frame so the losers can be
    // remapped to remote-access the surviving exclusive copy.
    hib::Hib &hib = _fabric.hibOf(n);
    const PAddr writer_frame = e.copyFrame(n);
    schedule(config().osTrap,
             [this, &hib, home = e.home, writer_frame, others] {
                 for (NodeId m : others) {
                     Packet inv;
                     inv.type = PacketType::InvReq;
                     inv.dst = m;
                     inv.addr = home;
                     inv.addr2 = writer_frame;
                     inv.payloadBytes = 0;
                     hib.inject(std::move(inv), /*track=*/false);
                 }
             });
}

bool
InvalidateProtocol::handlePacket(NodeId n, const net::Packet &pkt)
{
    if (pkt.type == PacketType::InvReq) {
        PageEntry *e =
            _fabric.directory().byHome(_fabric.directory().pageOf(pkt.addr));
        hib::Hib &hib = _fabric.hibOf(n);
        if (e && e->hasCopy(n)) {
            // Drop our copy: the fabric remaps the virtual pages to
            // remote-access the writer's surviving copy and flushes TLBs
            // (the OS side of the story).
            _fabric.onCopyInvalidated(*e, n, pkt.addr2 ? pkt.addr2 : e->home);
            _fabric.directory().removeCopy(*e, n);
        }
        Packet ack;
        ack.type = PacketType::InvAck;
        ack.dst = pkt.src;
        ack.addr = pkt.addr;
        ack.payloadBytes = 0;
        // Invalidation is handled by the OS: charge the interrupt path.
        schedule(config().osInterrupt, [&hib, ack]() mutable {
            hib.inject(std::move(ack), /*track=*/false);
        });
        return true;
    }

    if (pkt.type == PacketType::InvAck) {
        const auto key =
            std::make_pair(n, _fabric.directory().pageOf(pkt.addr));
        auto it = _pending.find(key);
        if (it == _pending.end())
            return true; // stale ack
        if (--it->second.waiting == 0) {
            auto done = std::move(it->second.done);
            _pending.erase(it);
            done();
        }
        return true;
    }

    return false;
}

} // namespace tg::coherence

/**
 * @file
 * Naive eager-multicast protocol (figure 2
 * inconsistency demonstrator).
 */

#include "coherence/naive_multicast.hpp"

#include "hib/hib.hpp"

namespace tg::coherence {

using net::Packet;
using net::PacketType;

NaiveMulticastProtocol::NaiveMulticastProtocol(System &sys, Fabric &fabric)
    : Protocol(sys, "proto.naive", fabric)
{
    _kind = ProtocolKind::Naive;
}

void
NaiveMulticastProtocol::multicastFrom(NodeId src, PageEntry &e,
                                      PAddr home_addr, Word value, bool track)
{
    hib::Hib &hib = _fabric.hibOf(src);
    for (const auto &[node, frame] : e.copies) {
        (void)frame;
        if (node == src)
            continue;
        Packet upd;
        upd.type = PacketType::Update;
        upd.dst = node;
        upd.addr = home_addr;
        upd.value = value;
        upd.origin = src;
        upd.seq = hib.nextSeq();
        hib.inject(std::move(upd), track);
    }
}

void
NaiveMulticastProtocol::localWrite(NodeId n, PageEntry &e, PAddr local_addr,
                                   Word value, Fn<void()> done)
{
    const PAddr home_addr = homeAddrOf(e, n, local_addr);
    applyToCopy(n, e, home_addr, value, n);
    multicastFrom(n, e, home_addr, value, /*track=*/true);
    done();
}

void
NaiveMulticastProtocol::remoteWriteAtHome(NodeId home, PageEntry &e,
                                          const net::Packet &pkt)
{
    multicastFrom(home, e, pkt.addr, pkt.value, /*track=*/true);
}

bool
NaiveMulticastProtocol::handlePacket(NodeId n, const net::Packet &pkt)
{
    if (pkt.type != PacketType::Update)
        return false;
    PageEntry *e =
        _fabric.directory().byHome(_fabric.directory().pageOf(pkt.addr));
    if (!e)
        return false;

    // Applied unconditionally and in arrival order: with concurrent
    // writers different nodes can end up with different final values.
    if (e->hasCopy(n))
        applyToCopy(n, *e, pkt.addr, pkt.value, pkt.origin);

    Packet ack;
    ack.type = PacketType::UpdateAck;
    ack.dst = pkt.origin;
    ack.payloadBytes = 0;
    _fabric.hibOf(n).inject(std::move(ack), /*track=*/false);
    return true;
}

} // namespace tg::coherence

/**
 * @file
 * Coherence protocol interface.
 *
 * A Protocol decides how stores to replicated shared pages propagate.
 * The Cpu performs the local copy update (rule 1(i) of section 2.3.3)
 * and then hands the store to the page's protocol; incoming coherence
 * packets are dispatched to the protocol by the receiving HIB.
 */

#ifndef TELEGRAPHOS_COHERENCE_PROTOCOL_HPP
#define TELEGRAPHOS_COHERENCE_PROTOCOL_HPP

#include <string>

#include "coherence/directory.hpp"
#include "net/packet.hpp"
#include "sim/event.hpp"
#include "sim/sim_object.hpp"

namespace tg::hib {
class Hib;
}
namespace tg::node {
class MainMemory;
}

namespace tg::coherence {

/**
 * What protocols need from the rest of the machine.  Implemented by the
 * Cluster; keeps the coherence layer free of API-layer dependencies.
 */
class Fabric
{
  public:
    virtual ~Fabric() = default;

    virtual hib::Hib &hibOf(NodeId n) = 0;
    virtual node::MainMemory &memOf(NodeId n) = 0;
    virtual Directory &directory() = 0;
    virtual System &system() = 0;

    /**
     * A protocol removed @p n's copy of @p e (invalidation): the OS must
     * remap the affected virtual pages at @p n to remote access against
     * @p target_frame (the surviving authoritative copy — the exclusive
     * writer's frame) and flush TLBs.  The fabric knows the segments, so
     * it does the remap.
     */
    virtual void onCopyInvalidated(PageEntry &e, NodeId n,
                                   PAddr target_frame) = 0;
};

/** Base class of all coherence protocols. */
class Protocol : public SimObject
{
  public:
    Protocol(System &sys, const std::string &name, Fabric &fabric);

    /**
     * A store by node @p n's CPU hit its local copy of page @p e.  The
     * protocol performs the local apply itself (rule 1(i) of section
     * 2.3.3 makes the apply, the counter increment and the forward one
     * atomic store operation — so a counter-cache stall delays all
     * three, and no incoming update can slip between them).
     * @param local_addr global PA of the word in n's local copy
     * @param done       release the processor (protocols may delay this,
     *                   e.g. on a full counter cache)
     */
    virtual void localWrite(NodeId n, PageEntry &e, PAddr local_addr,
                            Word value, Fn<void()> done) = 0;

    /**
     * A remote WriteReq arrived at the page's home and was applied there.
     * Default: nothing extra (the Hib already wrote + acked).  Update
     * protocols propagate to the other copies here.
     */
    virtual void remoteWriteAtHome(NodeId home, PageEntry &e,
                                   const net::Packet &pkt);

    /**
     * A coherence packet (Update / WriteOwner / RingUpdate / InvReq /
     * InvAck) arrived at node @p n.
     * @return true when consumed.
     */
    virtual bool handlePacket(NodeId n, const net::Packet &pkt) = 0;

    /** A new copy of @p e appeared at @p n (hook for table maintenance). */
    virtual void onCopyAdded(PageEntry &e, NodeId n);

    ProtocolKind kind() const { return _kind; }

  protected:
    /**
     * Write @p value into @p n's copy of @p e at page offset of
     * @p home_addr and notify observers.  Storage-level; timing is
     * charged by the caller's path.
     */
    void applyToCopy(NodeId n, PageEntry &e, PAddr home_addr, Word value,
                     NodeId origin);

    /** Home-relative address of @p local_addr (a word in @p n's copy). */
    PAddr homeAddrOf(PageEntry &e, NodeId n, PAddr local_addr) const;

    Fabric &_fabric;
    ProtocolKind _kind = ProtocolKind::None;
};

} // namespace tg::coherence

#endif // TELEGRAPHOS_COHERENCE_PROTOCOL_HPP

/**
 * @file
 * Shared-page directory.
 *
 * Records, for every shared page that has replicas: its home (owner)
 * frame, the owner node, the per-node local copy frames, and the
 * coherence protocol governing it.  The paper's owner-based scheme keeps
 * the full copy list only at the owner (section 2.3.1); we centralize the
 * *bookkeeping* for simulation convenience but the protocols only consult
 * fields their hardware would hold locally, and all costs are charged on
 * the distributed paths.
 *
 * The directory also carries a write-observation hook used by tests and
 * benches to record the exact sequence of values each node's copy goes
 * through (this is how the Figure 2 / Galactica "1,2,1" experiments
 * observe inconsistency).
 */

#ifndef TELEGRAPHOS_COHERENCE_DIRECTORY_HPP
#define TELEGRAPHOS_COHERENCE_DIRECTORY_HPP

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "sim/sim_object.hpp"

namespace tg::coherence {

class Protocol;

/** Coherence policy selector for a shared page. */
enum class ProtocolKind
{
    None,         ///< no replicas: plain remote reads/writes
    Naive,        ///< direct eager multicast from every writer (fig. 2)
    OwnerCounter, ///< the paper's owner + pending-counter protocol (2.3.3)
    GalacticaRing,///< Galactica Net style ring updates with back-off (2.4)
    Invalidate,   ///< page-level invalidation on write
};

const char *protocolKindName(ProtocolKind k);

/** Directory state of one replicated page. */
struct PageEntry
{
    PAddr home = 0;    ///< global PA page base of the owner copy
    NodeId owner = 0;  ///< owner node (defines update order, section 2.3.1)
    ProtocolKind kind = ProtocolKind::None;
    Protocol *protocol = nullptr; ///< non-owning; set by the cluster

    /** node -> global PA page base of that node's local copy.  The owner
     *  appears here too, mapping to home. */
    std::map<NodeId, PAddr> copies;

    /** Sharing-ring order for the Galactica protocol. */
    std::vector<NodeId> ring;

    /** Offset of @p global_addr (which must lie in some copy) in the page. */
    PAddr offsetOfAddr(PAddr global_addr, std::uint32_t page_bytes) const
    {
        return global_addr % page_bytes;
    }

    bool hasCopy(NodeId n) const { return copies.count(n) != 0; }

    /** Local copy frame of @p n (panics if absent). */
    PAddr copyFrame(NodeId n) const;

    /** Next node after @p n in the sharing ring. */
    NodeId ringNext(NodeId n) const;
};

/** Observation record of one applied update (test/bench hook). */
struct ApplyEvent
{
    Tick when;
    NodeId node;     ///< whose copy changed
    PAddr homeAddr;  ///< home-relative identity of the word
    Word value;
    NodeId origin;   ///< node whose store caused this
};

/** The cluster-wide page directory. */
class Directory : public SimObject
{
  public:
    Directory(System &sys, const std::string &name);
    ~Directory() override;

    /** Register a replicated page rooted at @p home_frame. */
    PageEntry &create(PAddr home_frame, NodeId owner, ProtocolKind kind,
                      Protocol *protocol);

    /** Remove an entry entirely. */
    void destroy(PAddr home_frame);

    /** Record that @p node holds a copy at @p frame. */
    void addCopy(PageEntry &e, NodeId node, PAddr frame);

    /** Remove @p node's copy. */
    void removeCopy(PageEntry &e, NodeId node);

    /** Entry whose home page is @p home_frame (nullptr if none). */
    PageEntry *byHome(PAddr home_frame);

    /** Entry that has a copy (home included) at page @p frame. */
    PageEntry *byFrame(PAddr frame);

    /** Entry containing global address @p addr through any copy. */
    PageEntry *byAddr(PAddr addr);

    /** All entries in ascending home order (checkpointing, DESIGN.md
     *  section 14.5). */
    std::vector<const PageEntry *> entries() const;

    /**
     * Checkpoint restore: force the entry for @p home_frame to the
     * captured owner/copies/ring, creating it with @p kind and
     * @p protocol when the setup replay did not (runtime-created pages,
     * e.g. replicatePageLive on a fresh home).  The frame index is
     * rebuilt so byFrame/byAddr lookups stay consistent.
     */
    PageEntry &restoreEntry(PAddr home_frame, NodeId owner,
                            ProtocolKind kind, Protocol *protocol,
                            const std::map<NodeId, PAddr> &copies,
                            const std::vector<NodeId> &ring);

    /** Register a write-observation hook (appended; all fire). */
    void observe(std::function<void(const ApplyEvent &)> cb);

    /** Notify observers that a copy was updated. */
    void notifyApply(NodeId node, PAddr home_addr, Word value, NodeId origin);

    std::uint32_t pageBytes() const { return config().pageBytes; }

    /** Page base of @p addr. */
    PAddr pageOf(PAddr addr) const { return addr - (addr % pageBytes()); }

  private:
    // Ordered maps by contract (DESIGN.md section 7): any future walk
    // over directory state must enumerate pages deterministically.
    std::map<PAddr, std::unique_ptr<PageEntry>> _byHome;
    std::map<PAddr, PageEntry *> _byFrame;
    std::vector<std::function<void(const ApplyEvent &)>> _observers;
};

} // namespace tg::coherence

#endif // TELEGRAPHOS_COHERENCE_DIRECTORY_HPP

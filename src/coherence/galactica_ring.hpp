/**
 * @file
 * Galactica Net style ring-update protocol (paper section 2.4, ref [15]).
 *
 * All holders of a page form a sharing ring.  A writer applies its update
 * locally and sends it around the ring; each node applies it and forwards
 * it; the update dies when it returns to its origin.  When two writers
 * collide, both eventually observe the other's update circulating; the
 * lower-priority one (larger node id here) *backs off* by adopting the
 * winner's value and circulating a corrective update once its own update
 * completes the loop.
 *
 * All copies converge to the winner's value, but a third node can observe
 * the value sequence "1, 2, 1" — a sequence that is not a valid program
 * order under any consistency model, which is exactly the anomaly the
 * paper contrasts its counter protocol against.  Bench S4 measures it.
 */

#ifndef TELEGRAPHOS_COHERENCE_GALACTICA_RING_HPP
#define TELEGRAPHOS_COHERENCE_GALACTICA_RING_HPP

#include <map>

#include "coherence/protocol.hpp"

namespace tg::coherence {

/** Ring-circulated updates with priority back-off. */
class GalacticaRingProtocol : public Protocol
{
  public:
    GalacticaRingProtocol(System &sys, Fabric &fabric);

    void localWrite(NodeId n, PageEntry &e, PAddr local_addr, Word value,
                    Fn<void()> done) override;

    bool handlePacket(NodeId n, const net::Packet &pkt) override;

    void onCopyAdded(PageEntry &e, NodeId n) override;

    std::uint64_t backoffs() const { return _backoffs; }
    std::uint64_t correctives() const { return _correctives; }

  private:
    struct PendingWrite
    {
        Word value = 0;
        bool backoff = false;   ///< lost a conflict: re-issue winner value
        Word winnerValue = 0;
    };

    void forward(NodeId n, PageEntry &e, const net::Packet &pkt);
    void sendRing(NodeId from, PageEntry &e, PAddr home_addr, Word value,
                  bool corrective);

    /** (node, home word address) -> pending local write. */
    std::map<std::pair<NodeId, PAddr>, PendingWrite> _pending;
    std::uint64_t _backoffs = 0;
    std::uint64_t _correctives = 0;
};

} // namespace tg::coherence

#endif // TELEGRAPHOS_COHERENCE_GALACTICA_RING_HPP

/**
 * @file
 * Page-level invalidate protocol (the alternative of section 2.3.6).
 *
 * Telegraphos leaves the update-vs-invalidate decision to software; this
 * protocol models the invalidate choice: a store to a page with other
 * copies traps to the OS, which invalidates every other copy (their
 * virtual pages are remapped to remote access and TLBs flushed) before
 * the writer proceeds with an exclusive copy.  Readers that lost their
 * copy fall back to Telegraphos remote reads — or re-replicate when the
 * access-counter alarms say it is worth it.
 *
 * Bench A3 compares this protocol against the update protocols on
 * producer/consumer versus migratory sharing patterns.
 */

#ifndef TELEGRAPHOS_COHERENCE_INVALIDATE_HPP
#define TELEGRAPHOS_COHERENCE_INVALIDATE_HPP

#include <map>

#include "coherence/protocol.hpp"

namespace tg::coherence {

/** Write-invalidate at page granularity, OS-assisted. */
class InvalidateProtocol : public Protocol
{
  public:
    InvalidateProtocol(System &sys, Fabric &fabric);

    void localWrite(NodeId n, PageEntry &e, PAddr local_addr, Word value,
                    Fn<void()> done) override;

    bool handlePacket(NodeId n, const net::Packet &pkt) override;

    std::uint64_t invalidations() const { return _invalidations; }

  private:
    struct PendingInv
    {
        std::size_t waiting = 0;
        Fn<void()> done;
    };

    /** (writer node, home page) -> in-flight invalidation round. */
    std::map<std::pair<NodeId, PAddr>, PendingInv> _pending;
    std::uint64_t _invalidations = 0;
};

} // namespace tg::coherence

#endif // TELEGRAPHOS_COHERENCE_INVALIDATE_HPP

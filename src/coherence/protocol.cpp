/**
 * @file
 * Protocol base class plumbing shared by every
 * coherence scheme.
 */

#include "coherence/protocol.hpp"

#include "hib/hib.hpp"
#include "node/address.hpp"

namespace tg::coherence {

Protocol::Protocol(System &sys, const std::string &name, Fabric &fabric)
    : SimObject(sys, name), _fabric(fabric)
{
}

void
Protocol::remoteWriteAtHome(NodeId, PageEntry &, const net::Packet &)
{
}

void
Protocol::onCopyAdded(PageEntry &, NodeId)
{
}

void
Protocol::applyToCopy(NodeId n, PageEntry &e, PAddr home_addr, Word value,
                      NodeId origin)
{
    const PAddr offset = home_addr % _fabric.directory().pageBytes();
    const PAddr local = e.copyFrame(n) + offset;
    _fabric.memOf(n).write(node::offsetOf(local), value);
    _fabric.directory().notifyApply(n, home_addr, value, origin);
}

PAddr
Protocol::homeAddrOf(PageEntry &e, NodeId n, PAddr local_addr) const
{
    (void)n;
    return e.home + (local_addr % _fabric.directory().pageBytes());
}

} // namespace tg::coherence

/**
 * @file
 * Galactica Net style ring-update protocol
 * with back-off (paper section 2.4).
 */

#include "coherence/galactica_ring.hpp"

#include <algorithm>

#include "hib/hib.hpp"

namespace tg::coherence {

using net::Packet;
using net::PacketType;

namespace {
/** ticket field: 0 = normal ring update, 1 = corrective re-update. */
constexpr std::uint64_t kCorrective = 1;
} // namespace

GalacticaRingProtocol::GalacticaRingProtocol(System &sys, Fabric &fabric)
    : Protocol(sys, "proto.galactica", fabric)
{
    _kind = ProtocolKind::GalacticaRing;
}

void
GalacticaRingProtocol::onCopyAdded(PageEntry &e, NodeId n)
{
    if (std::find(e.ring.begin(), e.ring.end(), n) == e.ring.end())
        e.ring.push_back(n);
}

void
GalacticaRingProtocol::sendRing(NodeId from, PageEntry &e, PAddr home_addr,
                                Word value, bool corrective)
{
    hib::Hib &hib = _fabric.hibOf(from);
    Packet pkt;
    pkt.type = PacketType::RingUpdate;
    pkt.dst = e.ringNext(from);
    pkt.addr = home_addr;
    pkt.value = value;
    pkt.origin = from;
    pkt.seq = hib.nextSeq();
    pkt.ticket = corrective ? kCorrective : 0;
    hib.inject(std::move(pkt), /*track=*/true);
}

void
GalacticaRingProtocol::localWrite(NodeId n, PageEntry &e, PAddr local_addr,
                                  Word value, Fn<void()> done)
{
    const PAddr home_addr = homeAddrOf(e, n, local_addr);
    applyToCopy(n, e, home_addr, value, n);
    if (e.ring.size() < 2) {
        done();
        return;
    }
    _pending[{n, home_addr}] = PendingWrite{value, false, 0};
    sendRing(n, e, home_addr, value, /*corrective=*/false);
    done();
}

void
GalacticaRingProtocol::forward(NodeId n, PageEntry &e, const net::Packet &pkt)
{
    hib::Hib &hib = _fabric.hibOf(n);
    Packet fwd = pkt;
    fwd.dst = e.ringNext(n);
    hib.inject(std::move(fwd), /*track=*/false);
}

bool
GalacticaRingProtocol::handlePacket(NodeId n, const net::Packet &pkt)
{
    if (pkt.type != PacketType::RingUpdate)
        return false;
    PageEntry *ep =
        _fabric.directory().byHome(_fabric.directory().pageOf(pkt.addr));
    if (!ep)
        return false;
    PageEntry &e = *ep;
    hib::Hib &hib = _fabric.hibOf(n);

    if (pkt.origin == n) {
        // Our update completed the loop.
        hib.outstanding().complete();
        if (pkt.ticket == kCorrective)
            return true;
        auto it = _pending.find({n, pkt.addr});
        if (it != _pending.end()) {
            const PendingWrite pw = it->second;
            _pending.erase(it);
            if (pw.backoff) {
                // We lost the conflict: adopt the winner's value and
                // circulate a corrective update ("the lowest priority
                // processor will back off", section 2.4).
                ++_correctives;
                applyToCopy(n, e, pkt.addr, pw.winnerValue, n);
                sendRing(n, e, pkt.addr, pw.winnerValue,
                         /*corrective=*/true);
            }
        }
        return true;
    }

    if (pkt.ticket == kCorrective) {
        if (e.hasCopy(n))
            applyToCopy(n, e, pkt.addr, pkt.value, pkt.origin);
        forward(n, e, pkt);
        return true;
    }

    auto mine = _pending.find({n, pkt.addr});
    if (mine != _pending.end()) {
        // Conflict: two writers to the same word are circulating.
        if (pkt.origin < n) {
            // Incoming writer has higher priority: back off.
            ++_backoffs;
            mine->second.backoff = true;
            mine->second.winnerValue = pkt.value;
            if (e.hasCopy(n))
                applyToCopy(n, e, pkt.addr, pkt.value, pkt.origin);
        }
        // Lower-priority incoming update is ignored locally; it still
        // circulates so its origin learns about the conflict.
    } else if (e.hasCopy(n)) {
        applyToCopy(n, e, pkt.addr, pkt.value, pkt.origin);
    }

    forward(n, e, pkt);
    return true;
}

} // namespace tg::coherence

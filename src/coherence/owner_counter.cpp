/**
 * @file
 * The paper's owner + pending-counter update
 * protocol (section 2.3).
 */

#include "coherence/owner_counter.hpp"

#include "hib/hib.hpp"

namespace tg::coherence {

using net::Packet;
using net::PacketType;

OwnerCounterProtocol::OwnerCounterProtocol(System &sys, Fabric &fabric)
    : Protocol(sys, "proto.owner", fabric)
{
    _kind = ProtocolKind::OwnerCounter;
}

void
OwnerCounterProtocol::ownerMulticast(PageEntry &e, PAddr home_addr,
                                     Word value, NodeId origin,
                                     bool track_at_owner)
{
    hib::Hib &owner_hib = _fabric.hibOf(e.owner);
    for (const auto &[node, frame] : e.copies) {
        (void)frame;
        if (node == e.owner)
            continue;
        Packet upd;
        upd.type = PacketType::Update;
        upd.dst = node;
        upd.addr = home_addr;
        upd.value = value;
        upd.origin = origin;
        upd.seq = owner_hib.nextSeq();
        owner_hib.inject(std::move(upd), track_at_owner);
        ++_reflected;
    }
}

void
OwnerCounterProtocol::localWrite(NodeId n, PageEntry &e, PAddr local_addr,
                                 Word value, Fn<void()> done)
{
    const PAddr home_addr = homeAddrOf(e, n, local_addr);

    if (n == e.owner) {
        // The owner's own stores are already in order: apply locally and
        // reflect to all copies.  Acks from the receivers drain the
        // owner's outstanding counter.
        applyToCopy(n, e, home_addr, value, n);
        const std::size_t others = e.copies.size() - 1;
        if (others > 0) {
            _fabric.hibOf(n).outstanding().add(others);
            ownerMulticast(e, home_addr, value, n, /*track_at_owner=*/false);
        }
        done();
        return;
    }

    hib::Hib &hib = _fabric.hibOf(n);
    auto send = [this, &hib, &e, home_addr, value, n,
                 done = std::move(done)] {
        // Rule 1, atomically once the counter slot is held: (i) update
        // the local copy, (ii) the counter is incremented (by our
        // caller), (iii) send the new value to the owner.
        applyToCopy(n, e, home_addr, value, n);
        // Expected completions: our own reflected update (1) plus
        // UpdateAcks from every other non-owner copy holder.
        hib.outstanding().add(e.copies.size() - 1);
        Packet pkt;
        pkt.type = PacketType::WriteOwner;
        pkt.dst = e.owner;
        pkt.addr = home_addr;
        pkt.value = value;
        pkt.origin = n;
        pkt.seq = hib.nextSeq();
        hib.inject(std::move(pkt), /*track=*/false);
        done();
    };

    if (!hib.counterCache().enabled()) {
        // Telegraphos I: no pending-write counters; the 2.3.2 hazard is
        // accepted (bench S1 demonstrates it).
        send();
        return;
    }
    // Rule 1: increment the pending counter (may stall on a full CAM).
    hib.counterCache().increment(home_addr, std::move(send));
}

void
OwnerCounterProtocol::remoteWriteAtHome(NodeId home, PageEntry &e,
                                        const net::Packet &pkt)
{
    // A plain remote write from a non-copy-holder reached the home: the
    // owner serializes it like any other update and reflects it.  Acks
    // drain the owner's counter (the writer only awaits its WriteAck).
    (void)home;
    const std::size_t others = e.copies.size() - 1;
    if (others > 0) {
        _fabric.hibOf(e.owner).outstanding().add(others);
        ownerMulticast(e, pkt.addr, pkt.value, e.owner,
                       /*track_at_owner=*/false);
    }
}

bool
OwnerCounterProtocol::handlePacket(NodeId n, const net::Packet &pkt)
{
    hib::Hib &hib = _fabric.hibOf(n);

    if (pkt.type == PacketType::WriteOwner) {
        if (n != pkt.dst || n != _fabric.directory().byHome(
                                _fabric.directory().pageOf(pkt.addr))->owner)
            panic("WriteOwner received by non-owner %u", unsigned(n));
        PageEntry &e = *_fabric.directory().byHome(
            _fabric.directory().pageOf(pkt.addr));
        // Apply at the owner: this defines the global order (2.3.1).
        applyToCopy(n, e, pkt.addr, pkt.value, pkt.origin);
        ownerMulticast(e, pkt.addr, pkt.value, pkt.origin,
                       /*track_at_owner=*/false);
        return true;
    }

    if (pkt.type != PacketType::Update)
        return false;

    PageEntry *e =
        _fabric.directory().byHome(_fabric.directory().pageOf(pkt.addr));
    if (!e)
        return false;

    if (pkt.origin == n) {
        hib.outstanding().complete();
        if (hib.counterCache().enabled()) {
            // Rule 2: our own reflected write returned — ignore the
            // value and decrement the pending counter.
            hib.counterCache().decrement(pkt.addr);
            ++_ignored;
        } else if (e->hasCopy(n)) {
            // Telegraphos I (no counters): the reflected write is applied
            // like any other — this is exactly the section 2.3.2 hazard
            // (a reflected old value can land on top of a newer one).
            applyToCopy(n, *e, pkt.addr, pkt.value, pkt.origin);
        }
        return true;
    }

    const bool pending = hib.counterCache().enabled() &&
                         hib.counterCache().count(pkt.addr) > 0;
    if (pending) {
        // Rule 3: a newer local value exists; the incoming update is
        // older by construction — ignore it.
        ++_ignored;
    } else if (e->hasCopy(n)) {
        applyToCopy(n, *e, pkt.addr, pkt.value, pkt.origin);
    }

    Packet ack;
    ack.type = PacketType::UpdateAck;
    ack.dst = pkt.origin;
    ack.payloadBytes = 0;
    hib.inject(std::move(ack), /*track=*/false);
    return true;
}

} // namespace tg::coherence

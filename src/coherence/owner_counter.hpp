/**
 * @file
 * The paper's novel counter-based coherent update protocol
 * (sections 2.3.1 - 2.3.4).
 *
 * Every page has one owner node that defines the global order of updates.
 * A store by a non-owner (i) updates the local copy, (ii) increments the
 * per-word pending-write counter, and (iii) forwards the value to the
 * owner; the owner applies it and multicasts *reflected writes* to every
 * copy, in arrival order.  A node ignores incoming updates to words whose
 * pending counter is non-zero, and decrements the counter when its own
 * reflected write returns.  This guarantees each node sees a subset of
 * the owner's value sequence, in the owner's order — no "1,2,1"
 * anomalies and no lost read-your-writes (sections 2.3.2, 2.4).
 *
 * With the counter cache disabled (Telegraphos I) the counter steps are
 * skipped entirely, exposing exactly the hazards the paper describes for
 * prototype I (applications then need synchronization between concurrent
 * writes to be correct).
 */

#ifndef TELEGRAPHOS_COHERENCE_OWNER_COUNTER_HPP
#define TELEGRAPHOS_COHERENCE_OWNER_COUNTER_HPP

#include "coherence/protocol.hpp"

namespace tg::coherence {

/** Owner-serialized, counter-filtered update protocol. */
class OwnerCounterProtocol : public Protocol
{
  public:
    OwnerCounterProtocol(System &sys, Fabric &fabric);

    void localWrite(NodeId n, PageEntry &e, PAddr local_addr, Word value,
                    Fn<void()> done) override;

    void remoteWriteAtHome(NodeId home, PageEntry &e,
                           const net::Packet &pkt) override;

    bool handlePacket(NodeId n, const net::Packet &pkt) override;

    std::uint64_t ignoredUpdates() const { return _ignored; }
    std::uint64_t reflectedWrites() const { return _reflected; }

  private:
    /** Owner multicasts one update to every copy except itself. */
    void ownerMulticast(PageEntry &e, PAddr home_addr, Word value,
                        NodeId origin, bool track_at_owner);

    std::uint64_t _ignored = 0;
    std::uint64_t _reflected = 0;
};

} // namespace tg::coherence

#endif // TELEGRAPHOS_COHERENCE_OWNER_COUNTER_HPP
